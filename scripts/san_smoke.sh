#!/bin/sh
# san_smoke.sh — end-to-end check of the hazard analyzer (clsan).
#
# Three gates:
#   1. The full suite under `oclbench -e all -san` must be clean (exit
#      0, "clean" verdict) — every finding on registered kernels is a
#      false positive by definition.
#   2. `clsan -inject` must exit 1 and report all three hazard classes
#      (data race, barrier divergence, async hazard) on the seeded-bug
#      corpus — proving the analyzer actually detects, not just stays
#      quiet.
#   3. The machine-readable report must parse and carry the schema
#      marker, so downstream tooling can rely on it.
#
# Invoked by `make san-smoke`; expects to run from the repo root.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$GO" build -o "$TMP/oclbench" ./cmd/oclbench
"$GO" build -o "$TMP/clsan" ./cmd/clsan

# Gate 1: the registered suite analyzes clean, and the hazard report
# artifact is written alongside the ordinary suite output.
"$TMP/oclbench" -e all -par 4 -timeout 5m -san -san-json "$TMP/clean.json" \
    >"$TMP/suite.out" 2>"$TMP/suite.err"
grep -q 'clsan: .* clean$' "$TMP/suite.out" || {
    echo "san-smoke: suite -san did not report clean" >&2
    tail -n 5 "$TMP/suite.out" >&2
    exit 1
}
grep -q '"clean": true' "$TMP/clean.json"

# Gate 2: the seeded-bug corpus trips every class and fails the exit
# status. (|| true captures the expected non-zero exit under set -e.)
STATUS=0
"$TMP/clsan" -inject >"$TMP/inject.out" 2>&1 || STATUS=$?
[ "$STATUS" -eq 1 ] || {
    echo "san-smoke: clsan -inject exited $STATUS, want 1" >&2
    cat "$TMP/inject.out" >&2
    exit 1
}
for class in data-race barrier-divergence async-hazard; do
    grep -q "$class" "$TMP/inject.out" || {
        echo "san-smoke: corpus run missing a $class finding" >&2
        cat "$TMP/inject.out" >&2
        exit 1
    }
done

# Gate 3: the JSON report round-trips with the expected schema.
STATUS=0
"$TMP/clsan" -inject -json >"$TMP/inject.json" 2>/dev/null || STATUS=$?
[ "$STATUS" -eq 1 ]
grep -q '"schema": 1' "$TMP/inject.json"
grep -q '"clean": false' "$TMP/inject.json"

echo "san-smoke: ok"
