#!/bin/sh
# obs_smoke.sh — end-to-end check of the live observability plane.
#
# Runs the full suite with -serve on a kernel-picked port, scrapes
# /healthz and /metrics while the suite lingers, validates the scrape
# as OpenMetrics (cldiff -validate runs the strict parser), requires a
# histogram with cumulative buckets, then records a second run and
# gates the pair with `cldiff -gate 20`. The simulated metrics are
# deterministic, so only the runner.* host wall-clock keys differ run
# to run — they are excluded via -ignore, and the gate must pass.
#
# Invoked by `make obs-smoke`; expects to run from the repo root.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"; [ -n "${SUITE_PID:-}" ] && kill "$SUITE_PID" 2>/dev/null || true' EXIT

"$GO" build -o "$TMP/oclbench" ./cmd/oclbench
"$GO" build -o "$TMP/cldiff" ./cmd/cldiff

# First run: serve the observability plane, linger after the suite so
# the scrape below never races suite completion.
"$TMP/oclbench" -e all -par 4 -timeout 5m \
    -serve 127.0.0.1:0 -linger 30s \
    -snapshot-json "$TMP/run_a.json" \
    >/dev/null 2>"$TMP/serve.log" &
SUITE_PID=$!

# The bound port is announced on stderr as http://127.0.0.1:PORT.
BASE=
for _ in $(seq 1 100); do
    BASE=$(sed -n 's/.*\(http:\/\/[0-9.]*:[0-9]*\).*/\1/p' "$TMP/serve.log" | head -n 1)
    [ -n "$BASE" ] && break
    sleep 0.1
done
[ -n "$BASE" ] || { echo "obs-smoke: server never announced its URL" >&2; cat "$TMP/serve.log" >&2; exit 1; }

# Health must come up, then stay up for the whole scrape.
for _ in $(seq 1 100); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -qx ok

# Wait for the snapshot artifact, proving the suite itself completed
# (scrapes during the run were already exercised by the poll above).
for _ in $(seq 1 300); do
    [ -s "$TMP/run_a.json" ] && break
    sleep 0.1
done
[ -s "$TMP/run_a.json" ] || { echo "obs-smoke: suite never wrote its snapshot" >&2; exit 1; }

# Scrape /metrics and validate it with the strict OpenMetrics parser.
curl -fsS "$BASE/metrics" >"$TMP/metrics.txt"
"$TMP/cldiff" -validate "$TMP/metrics.txt"
grep -q '_bucket{le="+Inf"}' "$TMP/metrics.txt" || {
    echo "obs-smoke: no cumulative histogram in /metrics" >&2; exit 1; }
grep -q '^# EOF' "$TMP/metrics.txt"
curl -fsS "$BASE/snapshot" | grep -q '"hists"'

kill "$SUITE_PID" 2>/dev/null || true
wait "$SUITE_PID" 2>/dev/null || true
SUITE_PID=

# Second run, no server needed: just the snapshot artifact.
"$TMP/oclbench" -e all -par 4 -timeout 5m -snapshot-json "$TMP/run_b.json" >/dev/null 2>&1

# Back-to-back runs must attribute to ~zero once the host wall-clock
# runner.* keys are excluded; gate at +20%.
"$TMP/cldiff" -gate 20 -ignore '^runner\.' "$TMP/run_a.json" "$TMP/run_b.json"

echo "obs-smoke: ok"
