#!/bin/sh
# matrix_smoke.sh — end-to-end smoke of the trace-once / replay-many
# portability matrix: run the 3x3 grid through the replay pipeline and
# through the -noreplay execute-per-device baseline, and require the two
# reports to be byte-identical (the pipeline's central promise). Sized
# to finish well inside CI's patience (~seconds).
set -eu

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

go build -o "$OUT/oclbench" ./cmd/oclbench

"$OUT/oclbench" -e matrix -matrixn 3 > "$OUT/replay.txt"
"$OUT/oclbench" -e matrix -matrixn 3 -noreplay > "$OUT/noreplay.txt"

if ! cmp -s "$OUT/replay.txt" "$OUT/noreplay.txt"; then
    echo "matrix_smoke: FAIL — replay and -noreplay reports differ" >&2
    diff -u "$OUT/replay.txt" "$OUT/noreplay.txt" >&2 || true
    exit 1
fi

# The report must actually contain the matrix (not an empty render).
grep -q "portability" "$OUT/replay.txt"
grep -q "Replayed runtime" "$OUT/replay.txt"

echo "matrix_smoke: OK — 3x3 replay and -noreplay reports byte-identical"
