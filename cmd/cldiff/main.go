// Command cldiff attributes performance changes between two recorded
// runs. It loads two observability artifacts — metrics snapshot JSON
// (oclbench -snapshot-json, or GET /snapshot from a -serve endpoint)
// or Chrome trace JSON (oclbench -trace-json, or GET /trace) — aligns
// spans by track/name path and metrics by key, and prints a sorted
// attribution table: per-key old/new time, Δns, Δ%, and each key's
// share of the total regression.
//
// Usage:
//
//	cldiff old.json new.json               # full attribution table
//	cldiff -top 10 old.json new.json       # largest 10 regressions
//	cldiff -gate 20 old.json new.json      # CI gate: exit 1 when the
//	                                       # total regressed > 20%
//	cldiff -ignore '^runner\.' a.json b.json
//	                                       # drop host-wall-clock keys
//	                                       # that vary run to run
//	cldiff -validate metrics.txt           # validate an OpenMetrics
//	                                       # exposition (e.g. a curl of
//	                                       # /metrics) and exit
//
// Exit status: 0 on success (gate not exceeded), 1 when -gate trips,
// 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"clperf/internal/obs"
	"clperf/internal/obs/diff"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		gate     = flag.Float64("gate", 0, "fail (exit 1) when the total regression exceeds this percent (0 = report only)")
		top      = flag.Int("top", 0, "print only the N largest regressions (0 = all)")
		ignore   = flag.String("ignore", "", "drop keys matching this regexp before alignment")
		validate = flag.String("validate", "", "validate an OpenMetrics exposition file and exit (use '-' for stdin)")
	)
	flag.Parse()

	if *validate != "" {
		return validateExpo(*validate)
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: cldiff [flags] OLD.json NEW.json (see -h)")
		return 2
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)

	var ignoreRE *regexp.Regexp
	if *ignore != "" {
		re, err := regexp.Compile(*ignore)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cldiff: -ignore: %v\n", err)
			return 2
		}
		ignoreRE = re
	}

	res, err := diff.AttributeFiles(oldPath, newPath, ignoreRE)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cldiff: %v\n", err)
		return 2
	}

	fmt.Printf("cldiff: %s -> %s (%d aligned keys, basis: %s)\n\n",
		oldPath, newPath, len(res.Rows), res.Basis)
	res.WriteText(os.Stdout, *top)

	if *gate > 0 {
		if res.Exceeds(*gate) {
			fmt.Fprintf(os.Stderr, "\ncldiff: total regression %+.1f%% exceeds gate %.1f%%\n",
				res.DeltaPct, *gate)
			return 1
		}
		fmt.Printf("\ngate ok: total %+.1f%% within %.1f%%\n", res.DeltaPct, *gate)
	}
	return 0
}

// validateExpo checks an OpenMetrics exposition document (a /metrics
// scrape) against the obs parser's invariants.
func validateExpo(path string) int {
	f := os.Stdin
	if path != "-" {
		var err error
		f, err = os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cldiff: -validate: %v\n", err)
			return 2
		}
		defer f.Close()
	}
	if err := obs.ValidateExposition(f); err != nil {
		fmt.Fprintf(os.Stderr, "cldiff: %s: invalid exposition: %v\n", path, err)
		return 1
	}
	fmt.Printf("%s: valid OpenMetrics exposition\n", path)
	return 0
}
