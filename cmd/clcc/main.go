// Command clcc is the kernel compiler explorer: it compiles OpenCL C
// source (from a file or stdin) with the built-in parser, runs the
// simplification passes, and reports what the device compilers of the
// paper would see — the op profile, the dependence critical path and ILP,
// both vectorization verdicts, and the CPU/GPU cost estimates.
//
// Usage:
//
//	clcc kernel.cl
//	clcc -kernel square -global 1048576 -local 256 kernel.cl
//	echo '__kernel void f(__global float *a) { a[get_global_id(0)] = 1.0f; }' | clcc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/gpu"
	"clperf/internal/ir"
)

func main() {
	var (
		kernelName = flag.String("kernel", "", "kernel to analyze (default: the only one)")
		global     = flag.Int("global", 1<<20, "global work size (dimension 0)")
		local      = flag.Int("local", 256, "local work size (dimension 0; 0 = NULL)")
		dump       = flag.Bool("dump", false, "print the simplified IR as pseudo-OpenCL-C")
	)
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}

	k, err := ir.ParseKernel(string(src), *kernelName)
	if err != nil {
		fatal(err)
	}
	k = ir.Simplify(k)

	nd := ir.Range1D(*global, *local)
	if k.WorkDim >= 2 {
		// Square-ish 2-D split for 2-D kernels.
		side := 1
		for side*side < *global {
			side *= 2
		}
		l := *local
		if l > 16 {
			l = 16
		}
		if l < 1 {
			l = 1
		}
		nd = ir.Range2D(side, side, l, l)
	}

	cpuDev := cpu.New(arch.XeonE5645())
	gpuDev := gpu.New(arch.GTX580())
	resolved := cpuDev.ResolveLocal(nd)

	fmt.Printf("kernel %s (work dim %d), launch %s\n\n", k.Name, k.WorkDim, resolved)
	if *dump {
		fmt.Println(ir.Format(k))
	}

	args := ir.NewArgs()
	prof, err := ir.ProfileKernel(k, args, resolved, cpuDev.A.Lat, ir.MaxBranch)
	if err != nil {
		fatal(err)
	}
	fmt.Println("per-workitem profile:")
	for c := ir.OpClass(0); c < ir.NumOpClasses; c++ {
		if prof.Counts[c] > 0 {
			fmt.Printf("  %-12s %g\n", c, prof.Counts[c])
		}
	}
	fmt.Printf("  flops        %g\n", prof.Counts.Flops())
	fmt.Printf("  critical path %.0f cycles, ILP %.2f\n", prof.SerialCycles, prof.ILP(cpuDev.A.Lat))
	if prof.TripApprox {
		fmt.Println("  (some loop trip counts were estimated)")
	}

	vec, err := ir.VectorizeOpenCL(k, args, resolved)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nOpenCL implicit vectorizer (across workitems):")
	if vec.Vectorized {
		fmt.Printf("  vectorized; %.0f%% of memory accesses packed\n", 100*vec.PackedFrac)
	} else {
		fmt.Printf("  scalar: %s\n", vec.ScalarReason)
	}

	const induction = "loop_i"
	body := ir.SubstGlobalID(k.Body, 0, ir.Vi(induction))
	loopVec := ir.VectorizeLoop(body, induction, ir.NewStaticEnv(resolved, args), nil)
	fmt.Println("loop vectorizer (OpenMP port, across iterations):")
	if loopVec.Vectorized {
		fmt.Println("  vectorized")
	} else {
		fmt.Printf("  scalar: %s\n", loopVec.Reason)
	}

	// Cost estimates need only geometry; bind zero-filled buffers of a
	// plausible size for the analyzers.
	for _, name := range k.BufferNames() {
		p, _ := k.Param(name)
		args.Bind(name, ir.NewBuffer(name, p.Elem, *global*4))
	}
	for _, p := range k.Params {
		if p.Kind == ir.ScalarParam {
			args.SetScalar(p.Name, 16)
		}
	}
	cres, err := cpuDev.Estimate(k, args, nd)
	if err != nil {
		fatal(err)
	}
	gres, err := gpuDev.Estimate(k, args, nd)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nestimates:")
	fmt.Printf("  %-28s %-12v (width %d, %d groups on %d workers)\n",
		cpuDev.Name(), cres.Time, cres.Cost.Width, cres.Groups, cres.Workers)
	fmt.Printf("  %-28s %-12v (occupancy %.0f%%)\n",
		gpuDev.Name(), gres.Time, 100*gres.Occupancy)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clcc:", err)
	os.Exit(1)
}
