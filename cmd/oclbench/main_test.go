package main

// CLI-level tests: run() is driven exactly as main drives it, with
// argv and output streams injected. Dependent flags given without the
// flag that activates them are usage errors — exit 2, message on
// stderr, and nothing executed.

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestDependentFlagUsageErrors(t *testing.T) {
	cases := []struct {
		name    string
		argv    []string
		wantMsg string
	}{
		{"san-json without san", []string{"-san-json", "report.json"}, "-san-json requires -san"},
		{"linger without serve", []string{"-linger", "30s"}, "-linger requires -serve"},
		{"both missing prerequisites", []string{"-san-json", "r.json", "-linger", "1s"}, "-san-json requires -san"},
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.argv, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantMsg) {
				t.Fatalf("stderr %q does not contain %q", stderr.String(), tc.wantMsg)
			}
			if stdout.Len() != 0 {
				t.Fatalf("usage error produced stdout output: %q", stdout.String())
			}
		})
	}
}

func TestCheckFlagDeps(t *testing.T) {
	if err := checkFlagDeps(true, "r.json", "", 0); err != nil {
		t.Errorf("-san -san-json: unexpected error %v", err)
	}
	if err := checkFlagDeps(false, "", ":9188", 30*time.Second); err != nil {
		t.Errorf("-serve -linger: unexpected error %v", err)
	}
	if err := checkFlagDeps(false, "", "", 0); err != nil {
		t.Errorf("no flags: unexpected error %v", err)
	}
	if err := checkFlagDeps(false, "r.json", "", 0); err == nil {
		t.Error("-san-json without -san: expected error")
	}
	if err := checkFlagDeps(false, "", "", time.Second); err == nil {
		t.Error("-linger without -serve: expected error")
	}
}

func TestListFlagStillWorks(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fig1") {
		t.Fatalf("-list output lacks experiment ids: %q", stdout.String())
	}
}
