// Command oclbench regenerates the paper's tables and figures.
//
// Usage:
//
//	oclbench -e fig1            # one experiment
//	oclbench -e all             # every table and figure, in paper order
//	oclbench -e all -par 8      # same suite on 8 workers; output is
//	                            # byte-identical to the serial run
//	oclbench -e all -timeout 1m # bound each experiment's wall time
//	oclbench -list              # list experiment ids
//	oclbench -e fig3 -csv       # CSV instead of aligned text
//	oclbench -trace out.json    # replay the quickstart workload and write
//	                            # Chrome trace-event JSON (Perfetto,
//	                            # chrome://tracing): queue commands plus
//	                            # one track per simulated worker
//	oclbench -e fig6 -metrics   # print the metrics snapshot after the run
//	oclbench -e fig9 -cachestats
//	                            # print the simulated cache hierarchy's
//	                            # per-core hit-rate table after the run
//	oclbench -e all -nocache    # disable the memoized estimate layer
//	                            # (internal/search) for an A/B baseline;
//	                            # reports are identical with it on or off
//	oclbench -e all -cpuprofile cpu.pprof -memprofile mem.pprof
//	                            # write pprof profiles of the run; inspect
//	                            # with `go tool pprof -top cpu.pprof`
//	oclbench -e all -par 4 -serve :9188
//	                            # expose the live observability plane
//	                            # while the suite runs: GET /metrics
//	                            # (OpenMetrics), /snapshot (JSON),
//	                            # /trace (Chrome JSON), /healthz —
//	                            # scrape-safe mid-suite; add -linger 30s
//	                            # to keep serving after the suite ends
//	oclbench -e all -snapshot-json run.json -trace-json run.trace.json
//	                            # record the merged metrics snapshot and
//	                            # Chrome trace to files for cmd/cldiff
//	                            # run-to-run attribution
//	oclbench -e matrix          # kernels x devices portability matrix
//	                            # over the extended CPU zoo, priced
//	                            # through the trace-once / replay-many
//	                            # pipeline (internal/replay); standalone,
//	                            # not part of -e all
//	oclbench -e matrix -noreplay
//	                            # same matrix, executing once per device
//	                            # instead of replaying one trace — the
//	                            # A/B baseline; output is byte-identical
//	oclbench -e matrix -matrixn 3
//	                            # truncate the grid to 3x3 (CI smoke)
//	oclbench -e all -san        # after the suite, replay every kernel
//	                            # under the happens-before hazard
//	                            # analyzer (races, barrier divergence,
//	                            # undeclared async edges); findings are
//	                            # printed and fail the run; add
//	                            # -san-json report.json for the
//	                            # machine-readable report
//
// Failures are isolated: a failing experiment is reported on stderr and
// the remaining artifacts still run; the exit status is 1 only after
// every experiment has been attempted and at least one failed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"clperf/internal/experiments"
	"clperf/internal/harness"
	"clperf/internal/obs"
	"clperf/internal/obs/serve"
	"clperf/internal/san"
)

// main defers to run so profile flushing (deferred there) survives
// non-zero exits: os.Exit would skip deferred writes.
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses argv against its own FlagSet and executes the suite,
// writing to the supplied streams — the shape the CLI tests drive
// directly. Dependent flags are validated up front: an unusable
// combination is a usage error (exit 2) before any experiment runs.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("oclbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id       = fs.String("e", "all", "experiment id (table1..table5, fig1..fig11, all)")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		csv      = fs.Bool("csv", false, "emit CSV tables")
		verbose  = fs.Bool("v", false, "verbose reports")
		traceOut = fs.String("trace", "", "replay the quickstart workload and write Chrome trace-event JSON to this file")
		metrics  = fs.Bool("metrics", false, "print a metrics snapshot table after the run")
		cacheTab = fs.Bool("cachestats", false, "print the per-core cache hit-rate table after the run (implies observability)")
		par      = fs.Int("par", 1, "run experiments on N concurrent workers (output stays in paper order)")
		timeout  = fs.Duration("timeout", 0, "per-experiment wall-clock timeout (0 = none)")
		nocache  = fs.Bool("nocache", false, "disable the memoized model-evaluation layer (A/B baseline; results are identical either way)")
		nopred   = fs.Bool("nopredict", false, "disable the learned cost predictor's search pruning (A/B baseline; results are identical either way)")
		topk     = fs.Int("topk", 0, "predictor-pruned search keeps this many candidates per search (0 = default 8)")
		noreplay = fs.Bool("noreplay", false, "disable the trace-once / replay-many pipeline: matrix-style sweeps execute per device (A/B baseline; results are identical either way)")
		matrixn  = fs.Int("matrixn", 0, "truncate the portability matrix to its first N kernels and N devices (0 = full grid)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile at exit to this file")
		srvAddr  = fs.String("serve", "", "serve the live observability endpoints (/metrics /snapshot /trace /healthz) on this address while the suite runs")
		linger   = fs.Duration("linger", 0, "with -serve, keep serving this long after the suite completes")
		snapOut  = fs.String("snapshot-json", "", "write the merged metrics snapshot JSON to this file after the run (cldiff input)")
		traceSte = fs.String("trace-json", "", "write the merged suite Chrome trace JSON to this file after the run (cldiff input)")
		sanMode  = fs.Bool("san", false, "after the suite, replay every registered kernel and the async pipeline under the happens-before hazard analyzer; findings fail the run")
		sanJSON  = fs.String("san-json", "", "with -san, also write the machine-readable analyzer report to this file")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if err := checkFlagDeps(*sanMode, *sanJSON, *srvAddr, *linger); err != nil {
		fmt.Fprintf(stderr, "oclbench: %v\n", err)
		fs.Usage()
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "oclbench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "oclbench: -cpuprofile: %v\n", err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "oclbench: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // flush pending frees so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "oclbench: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Standalone() {
			fmt.Fprintf(stdout, "%-8s %s (standalone: not part of -e all)\n", e.ID, e.Title)
		}
		return 0
	}

	if *traceOut != "" {
		if err := writeQuickstartTrace(*traceOut, *metrics, stdout); err != nil {
			fmt.Fprintf(stderr, "oclbench: %v\n", err)
			return 1
		}
		return 0
	}

	var exps []harness.Experiment
	if *id == "all" {
		exps = experiments.All()
	} else {
		e, err := experiments.ByID(*id)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		exps = []harness.Experiment{e}
	}

	observe := *metrics || *cacheTab || *srvAddr != "" || *snapOut != "" || *traceSte != ""
	runner := harness.NewRunner(harness.RunnerOptions{
		Parallel: *par,
		Timeout:  *timeout,
		Observe:  observe,
		Base: harness.Options{Verbose: *verbose, NoCache: *nocache, NoPredict: *nopred,
			TopK: *topk, NoReplay: *noreplay, MatrixN: *matrixn},
	})

	var srv *serve.Server
	if *srvAddr != "" {
		var err error
		srv, err = serve.Start(*srvAddr, runner.Live)
		if err != nil {
			fmt.Fprintf(stderr, "oclbench: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "oclbench: serving /metrics /snapshot /trace /healthz on %s\n", srv.URL())
	}

	sum := runner.Run(context.Background(), exps)

	for _, r := range sum.Results {
		if r.Err != nil {
			fmt.Fprintf(stderr, "oclbench: %s: %v\n", r.ID, r.Err)
			continue
		}
		if *csv {
			for _, t := range r.Report.Tables {
				t.RenderCSV(stdout)
			}
			for _, f := range r.Report.Figures {
				f.Table().RenderCSV(stdout)
			}
			continue
		}
		r.Report.Render(stdout)
	}
	if *metrics || *cacheTab {
		snap := sum.Rec.Registry().Snapshot()
		var tables []*harness.Table
		if *metrics {
			tables = append(tables, harness.MetricsTable(snap))
		}
		if *cacheTab {
			tables = append(tables, harness.CacheStatsTable(snap))
		}
		for _, tbl := range tables {
			if *csv {
				tbl.RenderCSV(stdout)
			} else {
				tbl.Render(stdout)
			}
		}
	}
	if *snapOut != "" {
		if err := writeSnapshotJSON(*snapOut, sum.Rec); err != nil {
			fmt.Fprintf(stderr, "oclbench: -snapshot-json: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "oclbench: wrote metrics snapshot %s\n", *snapOut)
	}
	if *traceSte != "" {
		if err := writeTraceJSON(*traceSte, sum.Rec); err != nil {
			fmt.Fprintf(stderr, "oclbench: -trace-json: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "oclbench: wrote suite trace %s\n", *traceSte)
	}
	sanFindings := 0
	if *sanMode {
		rep, err := san.AnalyzeSuite()
		if err != nil {
			fmt.Fprintf(stderr, "oclbench: -san: %v\n", err)
			return 2
		}
		rep.Record(sum.Rec) // counters + spans land in the merged plane
		if *sanJSON != "" {
			f, err := os.Create(*sanJSON)
			if err != nil {
				fmt.Fprintf(stderr, "oclbench: -san-json: %v\n", err)
				return 2
			}
			werr := rep.WriteJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintf(stderr, "oclbench: -san-json: %v\n", werr)
				return 2
			}
			fmt.Fprintf(stderr, "oclbench: wrote hazard report %s\n", *sanJSON)
		}
		rep.WriteText(stdout)
		sanFindings = len(rep.Findings())
	}
	if srv != nil && *linger > 0 {
		fmt.Fprintf(stderr, "oclbench: suite done; serving %s for another %v\n", srv.URL(), *linger)
		time.Sleep(*linger)
	}
	if failed := sum.Failed(); len(failed) > 0 {
		ids := make([]string, len(failed))
		for i, r := range failed {
			ids[i] = r.ID
		}
		fmt.Fprintf(stderr, "oclbench: %d/%d experiments failed: %s (wall %v)\n",
			len(failed), len(sum.Results), strings.Join(ids, ", "), sum.Wall.Round(time.Millisecond))
		return 1
	}
	if sanFindings > 0 {
		fmt.Fprintf(stderr, "oclbench: -san: %d hazard finding(s)\n", sanFindings)
		return 1
	}
	return 0
}

// checkFlagDeps rejects flag combinations where a dependent flag was
// given without the flag that activates it: the alternative is silently
// ignoring (or, worse, half-honoring) the request.
func checkFlagDeps(san bool, sanJSON, srvAddr string, linger time.Duration) error {
	if sanJSON != "" && !san {
		return errors.New("-san-json requires -san")
	}
	if linger != 0 && srvAddr == "" {
		return errors.New("-linger requires -serve")
	}
	return nil
}

// writeSnapshotJSON records the merged registry snapshot as the JSON
// artifact cmd/cldiff aligns metrics from.
func writeSnapshotJSON(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(rec.Registry().Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraceJSON records the merged recorder's spans as Chrome trace
// JSON — loadable in Perfetto and alignable by cmd/cldiff.
func writeTraceJSON(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.Chrome(1, "clperf suite").WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeQuickstartTrace replays the quickstart vector-add workload under
// full observability and writes the merged Chrome trace: pid 1 is the
// runtime (queue commands with kernel phase children, device launches),
// pid 2 the reconstructed schedule with one track per worker.
func writeQuickstartTrace(path string, metrics bool, stdout io.Writer) error {
	rec := obs.NewRecorder()
	tl, err := harness.RunQuickstart(rec, 0)
	if err != nil {
		return err
	}
	ct := rec.Chrome(1, "clperf runtime")
	tl.AppendChrome(ct, 2)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ct.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: quickstart vectoradd over %d items, %d workers, makespan %v\n",
		path, harness.QuickstartN, tl.Workers, tl.Makespan)
	fmt.Fprintln(stdout, "load it in https://ui.perfetto.dev or chrome://tracing")
	if metrics {
		harness.MetricsTable(rec.Registry().Snapshot()).Render(stdout)
	}
	return f.Close()
}
