// Command oclbench regenerates the paper's tables and figures.
//
// Usage:
//
//	oclbench -e fig1          # one experiment
//	oclbench -e all           # every table and figure, in paper order
//	oclbench -list            # list experiment ids
//	oclbench -e fig3 -csv     # CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"

	"clperf/internal/experiments"
	"clperf/internal/harness"
)

func main() {
	var (
		id      = flag.String("e", "all", "experiment id (table1..table5, fig1..fig11, all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		csv     = flag.Bool("csv", false, "emit CSV tables")
		verbose = flag.Bool("v", false, "verbose reports")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var exps []harness.Experiment
	if *id == "all" {
		exps = experiments.All()
	} else {
		e, err := experiments.ByID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	opts := harness.Options{Verbose: *verbose}
	for _, e := range exps {
		rep, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oclbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *csv {
			for _, t := range rep.Tables {
				t.RenderCSV(os.Stdout)
			}
			for _, f := range rep.Figures {
				f.Table().RenderCSV(os.Stdout)
			}
			continue
		}
		rep.Render(os.Stdout)
	}
}
