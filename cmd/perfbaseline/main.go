// Command perfbaseline times the repo's hot paths and writes a JSON
// baseline for cross-PR comparison (committed as BENCH_pr10.json). It
// measures the same session workloads as the root Tune/Partition
// benchmarks — cached versus the uncached serial seed behavior — one
// full experiment-suite run (with and without the observability
// recorder, so recording overhead is itself a tracked, gated metric),
// both compiled execution engines (v1 closure, v2 lane-batched) against
// the tree-walk oracle on the BenchmarkExecRange kernels, the sharded
// cache simulator against the serial reference on a synthetic traced
// stream, and the learned-cost-predictor tune pruning against the full
// exhaustive search (the BenchmarkTunePredict* workload, plus a
// worst-case tuned-quality check across the whole kernel registry),
// recording the cache hit rates and speedups alongside the wall times.
// The exec2_* speedups (v2 over v1) are the vectorizer gate and
// tune_predict_speedup / tune_quality_pct are the predictor gates:
// benchcompare fails when exec2 drops below 2x, the pruned tune stops
// being 5x faster than the full search, or the pruned tune's result
// drifts more than 5% above the full search's optimum.
//
// v7 adds the trace-once / replay-many matrix workload
// (internal/replay): one compute-dense launch priced on the full
// 8-device arch.MatrixZoo, executing once per device (the -noreplay
// baseline) versus capturing one trace and replaying it on every
// device's cache simulator. matrix_replay_speedup is gated by
// benchcompare at an absolute 5x floor.
//
// The legacy tune_*/partition_* session metrics keep the predictor
// disabled so they stay comparable with pre-predictor baselines: they
// isolate the memoization layer, not the pruning.
//
// Usage:
//
//	perfbaseline              # write BENCH_pr10.json
//	perfbaseline -o out.json  # write elsewhere
//	perfbaseline -reps 5      # median of 5 repetitions per workload
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"clperf/internal/arch"
	"clperf/internal/cache"
	"clperf/internal/core"
	"clperf/internal/cpu"
	"clperf/internal/experiments"
	"clperf/internal/gpu"
	"clperf/internal/harness"
	"clperf/internal/hetero"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/replay"
)

// sessionPasses mirrors the root benchmarks: one cold search plus two
// revisits, the workload memoization exists for.
const sessionPasses = 3

// Baseline is the committed JSON shape. Times are nanoseconds (medians
// over -reps runs); rates are hits/(hits+misses) of the final run.
type Baseline struct {
	Schema     string `json:"schema"`
	CreatedAt  string `json:"created_at"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	TuneCachedNs         int64   `json:"tune_cached_ns"`
	TuneUncachedSerialNs int64   `json:"tune_uncached_serial_ns"`
	TuneSpeedup          float64 `json:"tune_speedup"`
	TuneCacheHitRate     float64 `json:"tune_cache_hit_rate"`
	PartCachedNs         int64   `json:"partition_cached_ns"`
	PartUncachedSerialNs int64   `json:"partition_uncached_serial_ns"`
	PartSpeedup          float64 `json:"partition_speedup"`
	PartCPUCacheHitRate  float64 `json:"partition_cpu_cache_hit_rate"`
	SuiteNs              int64   `json:"suite_ns"`
	SuiteExperiments     int     `json:"suite_experiments"`

	// Execution-engine medians: the v1 closure engine versus the
	// retained tree-walk oracle on the BenchmarkExecRange workloads.
	ExecMatmulNs         int64   `json:"exec_matmul_ns"`
	ExecMatmulOracleNs   int64   `json:"exec_matmul_oracle_ns"`
	ExecMatmulSpeedup    float64 `json:"exec_matmul_speedup"`
	ExecBinomialNs       int64   `json:"exec_binomial_ns"`
	ExecBinomialOracleNs int64   `json:"exec_binomial_oracle_ns"`
	ExecBinomialSpeedup  float64 `json:"exec_binomial_speedup"`

	// v5: lane-batched engine-v2 medians on the same launches, with the
	// v2-over-v1 speedups — the SIMD-style vectorization payoff the
	// paper's Figures 10-11 describe. benchcompare gates these speedups
	// against an absolute 2x floor.
	Exec2MatmulNs        int64   `json:"exec2_matmul_ns"`
	Exec2MatmulSpeedup   float64 `json:"exec2_matmul_speedup"`
	Exec2BinomialNs      int64   `json:"exec2_binomial_ns"`
	Exec2BinomialSpeedup float64 `json:"exec2_binomial_speedup"`

	// Cache-simulator medians: the two-phase sharded engine versus the
	// serial reference on the same synthetic traced stream (the
	// BenchmarkCacheSim workloads).
	CachesimShardedNs int64   `json:"cachesim_sharded_ns"`
	CachesimSerialNs  int64   `json:"cachesim_serial_ns"`
	CachesimSpeedup   float64 `json:"cachesim_speedup"`

	// v6: learned-cost-predictor medians — one cold divisor-rich tune
	// (Square at global 720720, 121 workgroup candidates per coarsening
	// factor) with the full exhaustive search versus the predictor-pruned
	// top-k search, the speedup between them (gated at an absolute 5x
	// floor), and the worst-case tuned-result drift of the pruned search
	// versus the full search across every registered kernel at its
	// default configuration (gated at an absolute 5% budget).
	TuneFullNs         int64   `json:"tune_full_ns"`
	TuneTopkNs         int64   `json:"tune_topk_ns"`
	TunePredictSpeedup float64 `json:"tune_predict_speedup"`
	TuneQualityPct     float64 `json:"tune_quality_pct"`

	// v7: trace-once / replay-many matrix medians — the portability
	// matrix's inner loop (one compute-dense launch priced on all 8
	// arch.MatrixZoo devices), naive execute-per-device versus one
	// captured trace replayed on every device's cache simulator
	// (bitwise-identical results, property-tested in internal/replay).
	// The speedup is gated at an absolute 5x floor.
	MatrixNaiveNs       int64   `json:"matrix_naive_ns"`
	MatrixReplayNs      int64   `json:"matrix_replay_ns"`
	MatrixReplaySpeedup float64 `json:"matrix_replay_speedup"`

	// Observability cost: the same suite run with every experiment on a
	// private recorder merged into the suite view (oclbench -metrics /
	// -serve path), and the overhead relative to the recorder-off run.
	// benchcompare fails the gate when the overhead exceeds its 5%
	// budget.
	SuiteObsNs     int64   `json:"suite_obs_ns"`
	ObsOverheadPct float64 `json:"obs_overhead_pct"`
}

func main() {
	out := flag.String("o", "BENCH_pr10.json", "output path")
	reps := flag.Int("reps", 3, "repetitions per workload (median is reported)")
	flag.Parse()

	b := Baseline{
		Schema:     "clperf/perfbaseline/v7",
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Warm both paths once untimed: the first calls pay one-off costs
	// (heap growth, the per-kernel digest memo) that would otherwise
	// land entirely on whichever arm runs first.
	tuneSession(true)
	tuneSession(false)
	partitionSession(true)
	partitionSession(false)

	var hitRate float64
	b.TuneCachedNs = median(*reps, func() { hitRate = tuneSession(true) })
	b.TuneCacheHitRate = hitRate
	b.TuneUncachedSerialNs = median(*reps, func() { tuneSession(false) })
	b.TuneSpeedup = ratio(b.TuneUncachedSerialNs, b.TuneCachedNs)

	b.PartCachedNs = median(*reps, func() { hitRate = partitionSession(true) })
	b.PartCPUCacheHitRate = hitRate
	b.PartUncachedSerialNs = median(*reps, func() { partitionSession(false) })
	b.PartSpeedup = ratio(b.PartUncachedSerialNs, b.PartCachedNs)

	b.ExecMatmulNs, b.Exec2MatmulNs, b.ExecMatmulOracleNs = execTriple(*reps, execMatmul)
	b.ExecMatmulSpeedup = ratio(b.ExecMatmulOracleNs, b.ExecMatmulNs)
	b.Exec2MatmulSpeedup = ratio(b.ExecMatmulNs, b.Exec2MatmulNs)
	b.ExecBinomialNs, b.Exec2BinomialNs, b.ExecBinomialOracleNs = execTriple(*reps, execBinomial)
	b.ExecBinomialSpeedup = ratio(b.ExecBinomialOracleNs, b.ExecBinomialNs)
	b.Exec2BinomialSpeedup = ratio(b.ExecBinomialNs, b.Exec2BinomialNs)

	b.CachesimShardedNs, b.CachesimSerialNs = cachesimPair(*reps)
	b.CachesimSpeedup = ratio(b.CachesimSerialNs, b.CachesimShardedNs)

	// Predictor workload: warm both arms once (feature memo, digest
	// memo), then take medians. Warming the pruned arm first charges the
	// one-off feature extraction to neither timed arm, matching how a
	// session amortizes it.
	tunePredict(true)
	tunePredict(false)
	b.TuneTopkNs = median(*reps, func() { tunePredict(true) })
	b.TuneFullNs = median(*reps, func() { tunePredict(false) })
	b.TunePredictSpeedup = ratio(b.TuneFullNs, b.TuneTopkNs)
	b.TuneQualityPct = tuneQualityPct()

	// Matrix workload: warm once (compiles the kernel, grows the trace
	// buffers), then alternate the arms.
	matrixRun(false)
	b.MatrixNaiveNs = median(*reps, func() { matrixRun(true) })
	b.MatrixReplayNs = median(*reps, func() { matrixRun(false) })
	b.MatrixReplaySpeedup = ratio(b.MatrixNaiveNs, b.MatrixReplayNs)

	exps := experiments.All()
	b.SuiteExperiments = len(exps)
	suiteRun := func(observe bool) {
		r := harness.NewRunner(harness.RunnerOptions{Parallel: 4, Observe: observe})
		sum := r.Run(context.Background(), exps)
		if failed := sum.Failed(); len(failed) > 0 {
			fatal(fmt.Errorf("%d experiments failed, first %s: %v",
				len(failed), failed[0].ID, failed[0].Err))
		}
		if observe && sum.Rec.Len() == 0 {
			fatal(fmt.Errorf("observed suite recorded no spans"))
		}
	}
	// One untimed warmup so the off/on comparison below is between
	// warm runs: the very first suite execution pays one-time costs
	// (page faults, allocator growth) that would otherwise be charged
	// entirely to whichever arm runs first.
	suiteRun(false)
	// Suite wall time on a shared host is noisy (load from neighbors
	// dwarfs the recorder's actual cost), so the overhead estimate is
	// paired: alternate recorder-off / recorder-on runs back to back
	// and take the median of the per-pair overheads. Pairing cancels
	// slow load drift that independent medians would charge to one arm.
	pairs := *reps
	if pairs > 5 {
		pairs = 5 // the suite is the most expensive workload; cap the reps
	}
	offs := make([]int64, pairs)
	ons := make([]int64, pairs)
	pcts := make([]float64, pairs)
	for i := 0; i < pairs; i++ {
		offs[i] = median(1, func() { suiteRun(false) })
		ons[i] = median(1, func() { suiteRun(true) })
		pcts[i] = 100 * float64(ons[i]-offs[i]) / float64(offs[i])
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	sort.Slice(ons, func(i, j int) bool { return ons[i] < ons[j] })
	sort.Float64s(pcts)
	b.SuiteNs = offs[pairs/2]
	b.SuiteObsNs = ons[pairs/2]
	// Median of paired overheads, not the ratio of the two medians: the
	// medians may come from different pairs and then embed cross-pair
	// load drift.
	b.ObsOverheadPct = pcts[pairs/2]

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&b); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: tune %.2fx (hit rate %.0f%%), partition %.2fx (hit rate %.0f%%), exec matmul %.2fx binomial %.2fx, v2/v1 matmul %.2fx binomial %.2fx, cachesim %.2fx, predictor %.2fx (quality %+.2f%%), matrix replay %.2fx, suite %v (obs %v, %+.1f%% overhead)\n",
		*out, b.TuneSpeedup, 100*b.TuneCacheHitRate,
		b.PartSpeedup, 100*b.PartCPUCacheHitRate,
		b.ExecMatmulSpeedup, b.ExecBinomialSpeedup,
		b.Exec2MatmulSpeedup, b.Exec2BinomialSpeedup, b.CachesimSpeedup,
		b.TunePredictSpeedup, b.TuneQualityPct, b.MatrixReplaySpeedup,
		time.Duration(b.SuiteNs).Round(time.Millisecond),
		time.Duration(b.SuiteObsNs).Round(time.Millisecond), b.ObsOverheadPct)
}

// execMatmul and execBinomial mirror the root BenchmarkExecRange
// workloads (the paper's 16x16 matmul tiling and the 255-step binomial
// tree) so the committed baseline and `go test -bench ExecRange` track
// the same numbers.
var (
	execMatmul = execCase{
		app: kernels.MatrixMul(),
		nd:  ir.Range2D(96, 64, 16, 16),
	}
	execBinomial = execCase{
		app: kernels.BinomialOption(),
		nd:  ir.Range1D(255*16, 255),
	}
)

type execCase struct {
	app *kernels.App
	nd  ir.NDRange
}

// execTriple returns the median wall times of the v1 closure engine,
// the v2 lane-batched engine, and the tree-walk oracle on the same
// launch. Arguments are built once per case (setup, not measured) and
// reused: the kernels overwrite their outputs, so repetitions do
// identical work.
func execTriple(reps int, c execCase) (v1Ns, v2Ns, oracleNs int64) {
	args := c.app.Make(c.nd)
	run := func(exec func(*ir.Kernel, *ir.Args, ir.NDRange, ir.ExecOptions) error, opts ir.ExecOptions) int64 {
		if err := exec(c.app.Kernel, args, c.nd, opts); err != nil {
			fatal(err) // warm pass: compile once so the engine arm times execution
		}
		return median(reps, func() {
			if err := exec(c.app.Kernel, args, c.nd, opts); err != nil {
				fatal(err)
			}
		})
	}
	v1Ns = run(ir.ExecRange, ir.ExecOptions{Engine: ir.EngineV1})
	v2Ns = run(ir.ExecRange, ir.ExecOptions{Engine: ir.EngineV2})
	oracleNs = run(ir.ExecRangeOracle, ir.ExecOptions{})
	return v1Ns, v2Ns, oracleNs
}

// tuneApp and partApp are built once: argument allocation (large
// filled buffers) is setup, not part of the measured search.
var (
	tuneApp  = kernels.BinomialOption()
	tuneND   = tuneApp.Configs[0]
	tuneArgs = tuneApp.Make(tuneND)

	partApp  = kernels.BlackScholes()
	partND   = partApp.Configs[0]
	partArgs = partApp.Make(partND)
)

// tuneSession runs the Binomialoption tuning session and returns the
// evaluator's final hit rate (zero when uncached). The predictor stays
// off: this metric isolates the memoization layer against the uncached
// serial seed, and must stay comparable with pre-predictor baselines.
func tuneSession(cached bool) float64 {
	app, nd, args := tuneApp, tuneND, tuneArgs
	ad := core.NewAdvisor(nil)
	ad.Pred = nil
	if !cached {
		ad.Eval.Cache = nil
		ad.Eval.Workers = 1
	}
	for pass := 0; pass < sessionPasses; pass++ {
		if _, err := ad.Tune(app.Kernel, args, nd); err != nil {
			fatal(err)
		}
	}
	return ad.Eval.Stats().HitRate()
}

// partitionSession runs the BlackScholes partition sweep with endpoint
// baselines and returns the CPU evaluator's final hit rate.
func partitionSession(cached bool) float64 {
	app, nd, args := partApp, partND, partArgs
	p := hetero.NewPartitioner(cpu.New(arch.XeonE5645()), gpu.New(arch.GTX580()))
	p.Pred = nil // isolate the memoization layer, as in tuneSession
	if !cached {
		p.CPUEval.Cache, p.GPUEval.Cache = nil, nil
		p.CPUEval.Workers, p.GPUEval.Workers = 1, 1
	}
	for pass := 0; pass < sessionPasses; pass++ {
		if _, err := p.Partition(app.Kernel, args, nd); err != nil {
			fatal(err)
		}
		if _, err := p.PriceFrac(app.Kernel, args, nd, 1, 1); err != nil {
			fatal(err)
		}
		if _, err := p.PriceFrac(app.Kernel, args, nd, 0, 1); err != nil {
			fatal(err)
		}
	}
	return p.CPUEval.Stats().HitRate()
}

// matrixDevs/matrixApp are the trace-once / replay-many workload: the
// full 8-device zoo the portability matrix sweeps, priced for one
// compute-dense launch. Binomialoption is the representative kernel on
// purpose — its 255-step local-memory tree makes execution dwarf cache
// simulation, which is the regime the replay pipeline exists for (the
// access-heavy kernels bound the win at the sim/exec ratio instead).
// Arguments are built once: the kernel overwrites its outputs, so
// repetitions do identical work on both arms.
var (
	matrixDevs = func() []*cpu.Device {
		zoo := arch.MatrixZoo()
		devs := make([]*cpu.Device, len(zoo))
		for i, a := range zoo {
			devs[i] = cpu.New(a)
		}
		return devs
	}()
	matrixApp  = kernels.BinomialOption()
	matrixND   = ir.Range1D(255*256, 255)
	matrixArgs = matrixApp.Make(matrixND)
)

// matrixRun prices the matrix workload on every zoo device: naive
// executes once per device (the pre-replay behavior), otherwise one
// capture plus per-device replays. No memo cache: repetitions must pay
// the full pipeline, not a lookup.
func matrixRun(naive bool) {
	_, _, err := replay.PinnedAll(matrixDevs, matrixApp.Kernel, matrixArgs, matrixND,
		replay.Options{NoReplay: naive})
	if err != nil {
		fatal(err)
	}
}

// predictApp is the predictor benchmark workload, shared with the root
// BenchmarkTunePredict*: a divisor-rich 1-D launch (720720 has 121
// divisors up to the 1024 workgroup cap) where the exhaustive search
// prices every divisor per coarsening factor and the pruned search
// prices only the top-k survivors.
var (
	predictApp  = kernels.Square()
	predictND   = ir.Range1D(720720, 0)
	predictArgs = predictApp.Make(predictND)
)

// tunePredict runs one cold divisor-rich tune (fresh advisor, fresh
// estimate cache) with the predictor on or off.
func tunePredict(predicted bool) {
	ad := core.NewAdvisor(nil)
	if !predicted {
		ad.Pred = nil
	}
	if _, err := ad.Tune(predictApp.Kernel, predictArgs, predictND); err != nil {
		fatal(err)
	}
}

// tuneQualityPct returns the worst-case tuned-time drift of the pruned
// search versus the full search across every registered kernel at its
// default configuration on the paper's CPU — the predictor's quality
// metric, gated by benchcompare at an absolute 5% budget (the same
// bound TestPrunedTuneWithin5PctAcrossZoo enforces across the device
// zoo).
func tuneQualityPct() float64 {
	worst := 0.0
	for _, app := range kernels.Registry() {
		nd := app.DefaultConfig()
		args := app.Make(nd)

		full := core.NewAdvisor(nil)
		full.Pred = nil
		ftr, err := full.Tune(app.Kernel, args, nd)
		if err != nil {
			fatal(fmt.Errorf("%s: full tune: %w", app.Name, err))
		}
		pruned := core.NewAdvisor(nil)
		ptr, err := pruned.Tune(app.Kernel, args, nd)
		if err != nil {
			fatal(fmt.Errorf("%s: pruned tune: %w", app.Name, err))
		}
		if drift := 100 * (float64(ptr.Time)/float64(ftr.Time) - 1); drift > worst {
			worst = drift
		}
	}
	return worst
}

// median times fn reps times and returns the median wall clock in ns.
func median(reps int, fn func()) int64 {
	if reps < 1 {
		reps = 1
	}
	times := make([]int64, reps)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = time.Since(start).Nanoseconds()
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[reps/2]
}

func ratio(base, now int64) float64 {
	if now == 0 {
		return 0
	}
	return float64(base) / float64(now)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfbaseline:", err)
	os.Exit(1)
}

// cachesimTrace is the synthetic traced stream for the cache-simulator
// benchmark (the same stream as BenchmarkCacheSim* in the root package):
// per-core sequential sweeps over a private 32 KiB window, so phase-1
// private-level probes dominate and the shared-L3 replay stays short —
// the regime the sharded engine is built for. Deterministic, so the two
// arms and repeated baseline runs replay byte-identical streams.
func cachesimTrace() (coreOf func(int) int, batches [][]ir.Access) {
	const (
		groups   = 512
		perGroup = 2048
		window   = 32 << 10 // bytes per core
	)
	cores := arch.XeonE5645().PhysicalCores()
	batches = make([][]ir.Access, groups)
	for g := range batches {
		core := g % cores
		base := int64(core+1) << 20
		recs := make([]ir.Access, perGroup)
		for i := range recs {
			recs[i] = ir.Access{
				Addr:  base + int64((g*perGroup+i*4)%window),
				Size:  4,
				Write: i%4 == 0,
			}
		}
		batches[g] = recs
	}
	return func(g int) int { return g % cores }, batches
}

// cachesimPair returns the median wall time of the sharded engine and of
// the serial reference replaying the same stream. The hierarchy is built
// once per arm and Reset between reps so only simulation is timed, not
// the ~3 MB line-array allocation both arms share.
func cachesimPair(reps int) (shardedNs, serialNs int64) {
	coreOf, batches := cachesimTrace()
	run := func(mk func(*cache.Hierarchy) cache.Sim) int64 {
		h := cache.NewHierarchy(arch.XeonE5645())
		return median(reps, func() {
			h.Reset()
			sim := mk(h)
			for g, recs := range batches {
				sim.BeginGroup(g)
				sim.AccessBatch(g, recs)
			}
			sim.Finish()
		})
	}
	shardedNs = run(func(h *cache.Hierarchy) cache.Sim {
		return cache.NewSharded(h, coreOf, cache.StoreWriteFactor)
	})
	serialNs = run(func(h *cache.Hierarchy) cache.Sim {
		return cache.NewSerial(h, coreOf, cache.StoreWriteFactor)
	})
	return shardedNs, serialNs
}
