// Command clprof replays a workload or paper experiment under full
// observability and dumps what the runtime saw: a Chrome trace-event
// JSON file (Perfetto / chrome://tracing), a plain-text span tree with
// hot-path highlighting, a metrics snapshot table, and CSV for figure
// pipelines.
//
// Usage:
//
//	clprof -e quickstart -trace out.json   # replay quickstart, dump trace
//	clprof -e fig3 -metrics                # replay Figure 3, metrics table
//	clprof -e fig6 -tree                   # span tree of every launch
//	clprof -e table2 -spans spans.csv -mcsv metrics.csv
//	clprof -e quickstart -enqlat 500 -metrics   # 500ns enqueue latency
package main

import (
	"flag"
	"fmt"
	"os"

	"clperf/internal/experiments"
	"clperf/internal/harness"
	"clperf/internal/obs"
	"clperf/internal/units"
)

func main() {
	var (
		id       = flag.String("e", "quickstart", `what to replay: "quickstart" or an experiment id (table1..fig11, ext*)`)
		traceOut = flag.String("trace", "", "write Chrome trace-event JSON to this file")
		tree     = flag.Bool("tree", false, "print the span tree (hot paths flagged)")
		hotFrac  = flag.Float64("hot", 0.5, "hot-path threshold as a fraction of the root span")
		metrics  = flag.Bool("metrics", false, "print the metrics snapshot table")
		spansCSV = flag.String("spans", "", "write all spans as CSV to this file")
		mCSV     = flag.String("mcsv", "", "write the metrics snapshot as CSV to this file")
		enqLat   = flag.Float64("enqlat", 0, "modeled enqueue latency in ns (quickstart replay only)")
	)
	flag.Parse()

	if !*tree && !*metrics && *traceOut == "" && *spansCSV == "" && *mCSV == "" {
		*metrics = true // bare clprof still prints something useful
	}

	rec := obs.NewRecorder()
	if err := replay(*id, rec, units.Duration(*enqLat)); err != nil {
		fmt.Fprintf(os.Stderr, "clprof: %v\n", err)
		os.Exit(1)
	}

	if *traceOut != "" {
		if err := writeFile(*traceOut, func(f *os.File) error {
			return rec.Chrome(1, "clperf runtime").WriteJSON(f)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "clprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d spans); load it in https://ui.perfetto.dev\n", *traceOut, rec.Len())
	}
	if *spansCSV != "" {
		if err := writeFile(*spansCSV, func(f *os.File) error {
			rec.WriteSpansCSV(f)
			return nil
		}); err != nil {
			fmt.Fprintf(os.Stderr, "clprof: %v\n", err)
			os.Exit(1)
		}
	}
	if *mCSV != "" {
		if err := writeFile(*mCSV, func(f *os.File) error {
			rec.Registry().Snapshot().WriteCSV(f)
			return nil
		}); err != nil {
			fmt.Fprintf(os.Stderr, "clprof: %v\n", err)
			os.Exit(1)
		}
	}
	if *tree {
		rec.WriteTree(os.Stdout, *hotFrac)
	}
	if *metrics {
		harness.MetricsTable(rec.Registry().Snapshot()).Render(os.Stdout)
	}
}

// replay runs the named workload with rec attached. The quickstart
// replay exercises the cl runtime (queue spans, transfer metrics, the
// schedule timeline); experiment replays record every device-model
// launch the experiment prices.
func replay(id string, rec *obs.Recorder, enqLat units.Duration) error {
	if id == "quickstart" {
		tl, err := harness.RunQuickstart(rec, enqLat)
		if err != nil {
			return err
		}
		fmt.Printf("replayed quickstart: vectoradd over %d items, makespan %v\n",
			harness.QuickstartN, tl.Makespan)
		return nil
	}
	e, err := experiments.ByID(id)
	if err != nil {
		return err
	}
	rep, err := e.Run(harness.Options{Obs: rec})
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	fmt.Printf("replayed %s — %s (%d launches priced)\n",
		rep.ID, rep.Title, int(rec.Registry().Counter("cpu.launches")+rec.Registry().Counter("gpu.launches")))
	return nil
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
