// Command advisor runs the clperf performance advisor (internal/core) on a
// named benchmark kernel at a chosen launch configuration, printing the
// time breakdown, the paper's findings, and — with -tune — the best launch
// parameters the model can find.
//
// Usage:
//
//	advisor -list
//	advisor -app Square -global 100000
//	advisor -app Matrixmul -local 4x4 -tune
//	advisor -app Matrixmul -tune -serve :9189 -linger 30s
//	                       # expose the run's observability plane over
//	                       # HTTP (/metrics /snapshot /trace /healthz)
//	                       # and keep serving 30s after the analysis
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"clperf/internal/core"
	"clperf/internal/harness"
	"clperf/internal/kernels"
	"clperf/internal/obs"
	"clperf/internal/obs/serve"
	"clperf/internal/trace"
)

func main() {
	var (
		appName  = flag.String("app", "Square", "benchmark name from Table II")
		global   = flag.String("global", "", "global size, e.g. 100000 or 1280x1280 (default: app's first config)")
		local    = flag.String("local", "", "local size, e.g. 256 or 16x16 (default: app's config, or NULL)")
		tune     = flag.Bool("tune", false, "search workgroup size and coarsening for the best configuration")
		timeline = flag.Bool("timeline", false, "render the workgroup schedule as an ASCII Gantt chart")
		list     = flag.Bool("list", false, "list benchmark names and exit")
		nocache  = flag.Bool("nocache", false, "disable the memoized estimate cache (A/B baseline; results are identical either way)")
		nopred   = flag.Bool("nopredict", false, "disable the learned cost predictor: tuning searches every candidate exhaustively (A/B baseline)")
		topk     = flag.Int("topk", 0, "predictor-pruned search keeps this many candidates per search (0 = default 8)")
		metrics  = flag.Bool("metrics", false, "print the observability metrics snapshot (incl. search cache counters) after the run")
		srvAddr  = flag.String("serve", "", "serve the live observability endpoints (/metrics /snapshot /trace /healthz) on this address during the run")
		linger   = flag.Duration("linger", 0, "with -serve, keep serving this long after the analysis completes")
	)
	flag.Parse()

	if *list {
		for _, a := range kernels.Registry() {
			fmt.Printf("%-16s kernel %-16s default %v\n", a.Name, a.Kernel.Name, a.DefaultConfig())
		}
		return
	}

	app, err := kernels.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	nd := app.DefaultConfig()
	if *global != "" {
		dims, err := parseSize(*global)
		if err != nil {
			fatal(err)
		}
		nd.Global = dims
	}
	if *local != "" {
		dims, err := parseSize(*local)
		if err != nil {
			fatal(err)
		}
		nd.Local = dims
	}

	args := app.Make(nd)
	ad := core.NewAdvisor(nil)
	if *nocache {
		ad.Eval.Cache = nil
	}
	if *nopred {
		ad.Pred = nil
	}
	ad.TopK = *topk
	var rec *obs.Recorder
	if *metrics || *srvAddr != "" {
		rec = obs.NewRecorder()
		ad.Dev.Obs = rec
		// The device now records span streams whose order must match the
		// evaluation order; keep the search serial.
		ad.Eval.Workers = 1
	}
	if *srvAddr != "" {
		srv, err := serve.Start(*srvAddr, func() *obs.Recorder { return rec })
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "advisor: serving /metrics /snapshot /trace /healthz on %s\n", srv.URL())
		if *linger > 0 {
			defer func() {
				fmt.Fprintf(os.Stderr, "advisor: analysis done; serving %s for another %v\n", srv.URL(), *linger)
				time.Sleep(*linger)
			}()
		}
	}
	rep, err := ad.Analyze(app.Kernel, args, nd)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Render())

	if *timeline {
		tl, err := trace.CPU(ad.Dev, app.Kernel, args, nd)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		tl.Render(os.Stdout, 100)
	}

	if *tune {
		tr, err := ad.Tune(app.Kernel, args, nd)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ntuned: %s, coarsening x%d -> %v (%.2fx over baseline %v)\n",
			tr.ND, tr.Coarsen, tr.Time, tr.Gain(), tr.Baseline)
		if s := ad.Eval.Stats(); s.Hits+s.Misses > 0 {
			fmt.Printf("search cache: %d evaluations, %d hits (%.0f%% hit rate)\n",
				s.Misses, s.Hits, 100*s.HitRate())
		}
	}

	if *metrics {
		fmt.Println()
		harness.MetricsTable(rec.Registry().Snapshot()).Render(os.Stdout)
	}
}

func parseSize(s string) ([3]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	var dims [3]int
	if len(parts) > 3 {
		return dims, fmt.Errorf("size %q has more than 3 dimensions", s)
	}
	dims = [3]int{1, 1, 1}
	if len(parts) == 1 {
		dims[1], dims[2] = 1, 1
	}
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return dims, fmt.Errorf("size %q: %v", s, err)
		}
		dims[i] = v
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "advisor:", err)
	os.Exit(1)
}
