// Command clsan is the happens-before hazard analyzer: it replays the
// benchmark suite's kernels through the lane-attributed trace oracle and
// a double-buffered out-of-order pipeline through the event-graph
// checker, and reports intra-workgroup data races, barrier divergence,
// and async commands whose conflicts carry no declared wait-list edge.
//
// Usage:
//
//	clsan                  # analyze the full registered suite
//	clsan -json            # machine-readable report on stdout
//	clsan -inject          # analyze the seeded-bug corpus instead —
//	                       # the self-test CI runs to prove detection
//	clsan -snapshot-json F # also write the analyzer's obs metrics
//
// Exit status: 0 when the analysis is clean, 1 when findings were
// reported, 2 on analysis errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"clperf/internal/obs"
	"clperf/internal/san"
)

// writeSnapshotJSON dumps the recorder's metrics snapshot, the same
// artifact oclbench -snapshot-json emits (cldiff input).
func writeSnapshotJSON(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(rec.Registry().Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut  = flag.Bool("json", false, "emit the machine-readable JSON report instead of the table")
		inject   = flag.Bool("inject", false, "analyze the seeded-bug corpus (expects findings; exit 1 proves detection)")
		snapshot = flag.String("snapshot-json", "", "write the analyzer's metrics snapshot to this file")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: clsan [-json] [-inject] [-snapshot-json FILE] (see -h)")
		return 2
	}

	analyze := san.AnalyzeSuite
	if *inject {
		analyze = san.AnalyzeCorpus
	}
	rep, err := analyze()
	if err != nil {
		fmt.Fprintf(os.Stderr, "clsan: %v\n", err)
		return 2
	}

	rec := obs.NewRecorder()
	rep.Record(rec)
	if *snapshot != "" {
		if err := writeSnapshotJSON(*snapshot, rec); err != nil {
			fmt.Fprintf(os.Stderr, "clsan: write snapshot: %v\n", err)
			return 2
		}
	}

	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "clsan: %v\n", err)
			return 2
		}
	} else {
		rep.WriteText(os.Stdout)
	}
	if !rep.Clean {
		return 1
	}
	return 0
}
