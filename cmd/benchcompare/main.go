// Command benchcompare gates perf regressions between committed
// perfbaseline snapshots (BENCH_pr*.json). It compares the wall-time
// metrics of a new baseline against an older one and exits non-zero
// when any gated metric regressed by more than the tolerance.
//
// Gated metrics: suite_ns, the exec_*_ns / exec2_*_ns engine times, and
// cachesim_sharded_ns (when both files carry them — older schemas
// predate the execution engine and the sharded cache simulator), plus
// obs_overhead_pct against its own absolute 5% budget (observability
// must stay nearly free), plus the exec2_*_speedup ratios against an
// absolute 2x floor: the lane-batched engine must stay at least twice
// as fast as v1 on the matmul and binomial workloads, the vectorization
// payoff the paper's Figures 10-11 report. The learned-cost-predictor
// gates are absolute too: tune_predict_speedup must stay above its 5x
// floor (the pruned search's payoff over the exhaustive one) and
// tune_quality_pct under its 5% budget (the pruned tune's worst-case
// drift above the full search's optimum across the registry). The
// trace-once / replay-many gate is absolute as well:
// matrix_replay_speedup must stay above its 5x floor (replaying one
// captured trace on the 8-device zoo versus executing per device), and
// matrix_replay_ns is gated against the old baseline like the other
// wall times. Other
// speedup ratios (exec, cachesim) and hit rates are reported but not
// gated: they compare two measured arms and are noisy in both
// directions.
//
// With -explain, a suite_ns regression is attributed instead of just
// reported: the flag takes two observability artifacts (snapshot or
// trace JSON recorded with oclbench -snapshot-json/-trace-json) and
// runs the internal/obs/diff span/metric alignment on them, printing
// which kernels or experiments the regression actually lives in.
//
// Usage:
//
//	benchcompare -old BENCH_pr5.json -new BENCH_pr6.json
//	benchcompare -new BENCH_pr6.json -old auto   # latest other BENCH_pr*.json
//	benchcompare -tolerance 0.2                  # fail above +20% (default)
//	benchcompare -new BENCH_pr6.json -explain old_snap.json,new_snap.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"clperf/internal/obs/diff"
)

// metrics is the schema-tolerant view of a perfbaseline file: only the
// fields benchcompare inspects, so v1 files (no exec_*) parse fine.
type metrics struct {
	Schema           string `json:"schema"`
	CreatedAt        string `json:"created_at"`
	SuiteNs          int64  `json:"suite_ns"`
	ExecMatmulNs     int64  `json:"exec_matmul_ns"`
	ExecBinomialNs   int64  `json:"exec_binomial_ns"`
	CachesimShardNs  int64  `json:"cachesim_sharded_ns"`
	CachesimSerialNs int64  `json:"cachesim_serial_ns"`
	TuneCachedNs     int64  `json:"tune_cached_ns"`
	PartCachedNs     int64  `json:"partition_cached_ns"`
	SuiteExperiments int    `json:"suite_experiments"`

	// v4 observability-cost fields: the suite timed with the merged
	// recorder on, and the recording overhead as a percentage of the
	// recorder-off wall time.
	SuiteObsNs     int64   `json:"suite_obs_ns"`
	ObsOverheadPct float64 `json:"obs_overhead_pct"`

	// v5 engine-v2 fields: lane-batched engine times and the v2-over-v1
	// speedups gated against the absolute 2x floor.
	Exec2MatmulNs        int64   `json:"exec2_matmul_ns"`
	Exec2MatmulSpeedup   float64 `json:"exec2_matmul_speedup"`
	Exec2BinomialNs      int64   `json:"exec2_binomial_ns"`
	Exec2BinomialSpeedup float64 `json:"exec2_binomial_speedup"`

	// v6 learned-cost-predictor fields: the divisor-rich tune with the
	// full exhaustive search versus the predictor-pruned search, their
	// speedup (gated against the absolute 5x floor), and the worst-case
	// tuned-result drift across the registry (gated against the absolute
	// 5% budget).
	TuneFullNs         int64   `json:"tune_full_ns"`
	TuneTopkNs         int64   `json:"tune_topk_ns"`
	TunePredictSpeedup float64 `json:"tune_predict_speedup"`
	TuneQualityPct     float64 `json:"tune_quality_pct"`

	// v7 trace-once / replay-many fields: the matrix workload executed
	// once per zoo device versus one captured trace replayed on every
	// device, and their speedup (gated against the absolute 5x floor).
	MatrixNaiveNs       int64   `json:"matrix_naive_ns"`
	MatrixReplayNs      int64   `json:"matrix_replay_ns"`
	MatrixReplaySpeedup float64 `json:"matrix_replay_speedup"`
}

// obsOverheadBudgetPct is the absolute ceiling on recording overhead:
// observability that costs more than this fraction of suite wall time
// fails the gate regardless of the previous baseline.
const obsOverheadBudgetPct = 5.0

// exec2SpeedupFloor is the absolute floor on the lane-batched engine's
// v2-over-v1 speedup: below 2x, the SIMD-style restructuring has lost
// its reason to exist and the gate fails regardless of the old baseline.
const exec2SpeedupFloor = 2.0

// tunePredictSpeedupFloor is the absolute floor on the predictor-pruned
// tune's speedup over the full exhaustive search on the divisor-rich
// workload; below 5x the pruning has stopped paying for itself.
const tunePredictSpeedupFloor = 5.0

// tuneQualityBudgetPct is the absolute ceiling on the pruned tune's
// worst-case drift above the full search's optimum across the kernel
// registry: pruning that costs more than 5% of tuned performance fails
// regardless of the old baseline.
const tuneQualityBudgetPct = 5.0

// matrixReplaySpeedupFloor is the absolute floor on the trace-once /
// replay-many pipeline's payoff over executing the matrix workload once
// per zoo device; below 5x at 8 devices the replay path has stopped
// earning its complexity.
const matrixReplaySpeedupFloor = 5.0

func main() {
	oldPath := flag.String("old", "auto", "old baseline JSON, or 'auto' to pick the latest other BENCH_pr*.json")
	newPath := flag.String("new", "BENCH_pr10.json", "new baseline JSON")
	tol := flag.Float64("tolerance", 0.20, "allowed fractional slowdown before failing (0.20 = +20%)")
	explain := flag.String("explain", "", "on regression, attribute it: OLD,NEW observability artifacts (snapshot or trace JSON) for internal/obs/diff")
	flag.Parse()

	if *oldPath == "auto" {
		p, err := latestOther(*newPath)
		if err != nil {
			fatal(err)
		}
		*oldPath = p
	}

	oldM, err := read(*oldPath)
	if err != nil {
		fatal(err)
	}
	newM, err := read(*newPath)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("comparing %s (%s) -> %s (%s), tolerance +%.0f%%\n",
		*oldPath, oldM.Schema, *newPath, newM.Schema, 100**tol)

	failed := 0
	check := func(name string, oldNs, newNs int64) {
		// A metric absent from either file (zero) is skipped, not failed:
		// older schemas predate the execution-engine metrics.
		if oldNs == 0 || newNs == 0 {
			fmt.Printf("  %-18s skipped (absent from %s)\n", name,
				map[bool]string{true: "old", false: "new"}[oldNs == 0])
			return
		}
		change := float64(newNs-oldNs) / float64(oldNs)
		status := "ok"
		if change > *tol {
			status = "FAIL"
			failed++
		}
		fmt.Printf("  %-18s %12v -> %12v  %+6.1f%%  %s\n", name,
			time.Duration(oldNs).Round(time.Microsecond),
			time.Duration(newNs).Round(time.Microsecond),
			100*change, status)
	}
	check("suite_ns", oldM.SuiteNs, newM.SuiteNs)
	check("exec_matmul_ns", oldM.ExecMatmulNs, newM.ExecMatmulNs)
	check("exec_binomial_ns", oldM.ExecBinomialNs, newM.ExecBinomialNs)
	check("exec2_matmul_ns", oldM.Exec2MatmulNs, newM.Exec2MatmulNs)
	check("exec2_binomial_ns", oldM.Exec2BinomialNs, newM.Exec2BinomialNs)
	check("cachesim_sharded_ns", oldM.CachesimShardNs, newM.CachesimShardNs)
	// The lane-batched engine's speedup over v1 gates against an absolute
	// floor, not the old baseline: below 2x the vectorized engine has
	// regressed to parity and the restructuring is broken.
	checkFloor := func(name string, speedup, floor float64) {
		if speedup == 0 {
			fmt.Printf("  %-18s skipped (absent from new)\n", name)
			return
		}
		status := "ok"
		if speedup < floor {
			status = "FAIL"
			failed++
		}
		fmt.Printf("  %-18s %27.2fx (floor %.1fx)  %s\n", name, speedup, floor, status)
	}
	checkFloor("exec2_matmul_speedup", newM.Exec2MatmulSpeedup, exec2SpeedupFloor)
	checkFloor("exec2_binomial_speedup", newM.Exec2BinomialSpeedup, exec2SpeedupFloor)
	// The learned-cost-predictor gates: the pruned tune must stay 5x
	// faster than the exhaustive search on the divisor-rich workload and
	// within 5% of its optimum across the registry — both absolute, so a
	// baseline that slowly degrades cannot grandfather a broken predictor.
	check("tune_topk_ns", oldM.TuneTopkNs, newM.TuneTopkNs)
	checkFloor("tune_predict_speedup", newM.TunePredictSpeedup, tunePredictSpeedupFloor)
	// The trace-once / replay-many gates: replaying one captured trace on
	// the 8-device zoo must stay at least 5x faster than executing per
	// device, and the replay arm itself must not creep up.
	check("matrix_replay_ns", oldM.MatrixReplayNs, newM.MatrixReplayNs)
	checkFloor("matrix_replay_speedup", newM.MatrixReplaySpeedup, matrixReplaySpeedupFloor)
	if newM.TuneFullNs != 0 {
		status := "ok"
		if newM.TuneQualityPct > tuneQualityBudgetPct {
			status = "FAIL"
			failed++
		}
		fmt.Printf("  %-18s %26.2f%% (budget %.0f%%)  %s\n",
			"tune_quality_pct", newM.TuneQualityPct, tuneQualityBudgetPct, status)
	}
	// The serial reference arm is informational only: it is the oracle the
	// sharded engine is differentially tested against, not a code path the
	// suite spends time in.
	if oldM.CachesimSerialNs != 0 && newM.CachesimSerialNs != 0 {
		fmt.Printf("  %-18s %12v -> %12v  (reference arm, not gated)\n", "cachesim_serial_ns",
			time.Duration(oldM.CachesimSerialNs).Round(time.Microsecond),
			time.Duration(newM.CachesimSerialNs).Round(time.Microsecond))
	}
	// Observability cost gates against an absolute budget, not the old
	// baseline: recording must stay nearly free however it trends.
	if newM.SuiteObsNs != 0 {
		status := "ok"
		if newM.ObsOverheadPct > obsOverheadBudgetPct {
			status = "FAIL"
			failed++
		}
		fmt.Printf("  %-18s %12v (recorder on)  overhead %+5.1f%% (budget %.0f%%)  %s\n",
			"suite_obs_ns", time.Duration(newM.SuiteObsNs).Round(time.Microsecond),
			newM.ObsOverheadPct, obsOverheadBudgetPct, status)
	}

	if failed > 0 {
		if *explain != "" {
			if err := explainRegression(*explain); err != nil {
				fmt.Fprintf(os.Stderr, "benchcompare: -explain: %v\n", err)
			}
		}
		fmt.Fprintf(os.Stderr, "benchcompare: %d metric(s) regressed more than %.0f%%\n", failed, 100**tol)
		os.Exit(1)
	}
	fmt.Println("no gated regressions")
}

// explainRegression attributes a failed gate across the spans/metrics
// of two recorded runs via internal/obs/diff — the same alignment
// cmd/cldiff performs, triggered only when a BENCH key actually
// regressed.
func explainRegression(spec string) error {
	oldObs, newObs, ok := strings.Cut(spec, ",")
	if !ok || oldObs == "" || newObs == "" {
		return fmt.Errorf("want OLD.json,NEW.json, got %q", spec)
	}
	res, err := diff.AttributeFiles(oldObs, newObs, regexp.MustCompile(`^runner\.`))
	if err != nil {
		return err
	}
	fmt.Printf("\nregression attribution (%s -> %s, basis: %s):\n", oldObs, newObs, res.Basis)
	res.WriteText(os.Stdout, 15)
	return nil
}

// latestOther returns the BENCH_pr<N>.json (in newPath's directory) with
// the highest N, excluding newPath itself — the previous PR's baseline.
func latestOther(newPath string) (string, error) {
	dir := filepath.Dir(newPath)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	re := regexp.MustCompile(`^BENCH_pr(\d+)\.json$`)
	best, bestN := "", -1
	for _, e := range ents {
		m := re.FindStringSubmatch(e.Name())
		if m == nil || e.Name() == filepath.Base(newPath) {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > bestN {
			bestN, best = n, filepath.Join(dir, e.Name())
		}
	}
	if best == "" {
		return "", fmt.Errorf("benchcompare: no other BENCH_pr*.json found in %s", dir)
	}
	return best, nil
}

func read(path string) (*metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(1)
}
