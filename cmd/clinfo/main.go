// Command clinfo prints the simulated OpenCL platforms and devices — the
// repository's equivalent of the paper's Table I environment listing.
package main

import (
	"fmt"

	"clperf/internal/cl"
)

func main() {
	for _, p := range cl.Platforms() {
		fmt.Printf("Platform: %s (%s)\n", p.Name, p.Vendor)
		for _, d := range p.Devices {
			fmt.Printf("  Device: %s\n", d.Name())
			fmt.Printf("    Type:               %s\n", d.Type)
			fmt.Printf("    Max compute units:  %d\n", d.ComputeUnits())
			fmt.Printf("    FP peak:            %v\n", d.PeakFlops())
			switch d.Type {
			case cl.DeviceCPU:
				a := d.CPU.A
				fmt.Printf("    Clock:              %v\n", a.Clock)
				fmt.Printf("    SIMD:               %s (%d lanes)\n", a.SIMDName, a.SIMDWidth)
				fmt.Printf("    Caches L1D/L2/L3:   %v/%v/%v\n", a.L1D.Size, a.L2.Size, a.L3.Size)
				fmt.Printf("    Memory bandwidth:   %v\n", a.MemBandwidth)
			case cl.DeviceGPU:
				a := d.GPU.A
				fmt.Printf("    Shader clock:       %v\n", a.Clock)
				fmt.Printf("    SMs x lanes:        %d x %d\n", a.SMs, a.LanesPerSM)
				fmt.Printf("    Shared mem per SM:  %v\n", a.SharedMemPerSM)
				fmt.Printf("    Memory bandwidth:   %v\n", a.MemBandwidth)
				fmt.Printf("    PCIe bandwidth:     %v (pinned %v)\n", a.PCIeBandwidth, a.PinnedBandwidth)
			}
		}
		fmt.Println()
	}
}
