package clperf

// One benchmark per paper artifact: BenchmarkTable1..BenchmarkTable5 and
// BenchmarkFig1..BenchmarkFig11 each regenerate the corresponding table or
// figure through internal/experiments, so
//
//	go test -bench=Fig6 -benchmem
//
// reproduces (and times) exactly what `oclbench -e fig6` prints. The
// Benchmark*Model functions below additionally microbenchmark the
// simulation substrate itself.

import (
	"context"
	"fmt"
	"testing"

	"clperf/internal/arch"
	"clperf/internal/cache"
	"clperf/internal/core"
	"clperf/internal/cpu"
	"clperf/internal/experiments"
	"clperf/internal/gpu"
	"clperf/internal/harness"
	"clperf/internal/hetero"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

func benchExperiment(b *testing.B, id string) {
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(harness.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 && len(rep.Figures) == 0 {
			b.Fatal("empty report")
		}
	}
}

// Tables I-V.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Figures 1-11.

func BenchmarkFig1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// Extensions and ablations beyond the paper's artifacts.

func BenchmarkExtAffinity(b *testing.B) { benchExperiment(b, "ext-affinity") }
func BenchmarkExtHetero(b *testing.B)   { benchExperiment(b, "ext-hetero") }
func BenchmarkExtScaling(b *testing.B)  { benchExperiment(b, "ext-scaling") }
func BenchmarkExtSIMD(b *testing.B)     { benchExperiment(b, "ext-simd") }
func BenchmarkExtRoofline(b *testing.B) { benchExperiment(b, "ext-roofline") }
func BenchmarkAblation(b *testing.B)    { benchExperiment(b, "ablation") }

// BenchmarkSuite runs the whole 22-artifact suite through the
// concurrent harness.Runner at several worker counts:
//
//	go test -bench=Suite -benchtime=1x
//
// times a full `oclbench -e all -par N` equivalent and exercises the
// parallel path (private recorders, deterministic merge, worker pool)
// end to end.
func BenchmarkSuite(b *testing.B) {
	exps := experiments.All()
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			r := harness.NewRunner(harness.RunnerOptions{Parallel: par, Observe: true})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sum := r.Run(context.Background(), exps)
				if failed := sum.Failed(); len(failed) > 0 {
					b.Fatalf("%d experiments failed, first: %s: %v",
						len(failed), failed[0].ID, failed[0].Err)
				}
			}
		})
	}
}

// Search-layer benchmarks: the memoized, parallel model-evaluation layer
// (internal/search) versus the uncached serial seed behavior it
// replaced. A cold search prices each distinct configuration exactly
// once either way, so the layer's payoff is on *revisits* — the
// sessions these benchmarks measure: tune, inspect, retune (the advisor
// workflow) and partition, then price the endpoint splits and refine
// (the ext-hetero workflow). The cached arm runs its evaluator pool at
// the default width; the uncached arm is pinned serial, matching the
// seed. Byte-identical cache-on/off results are asserted by
// TestTuneCacheOnOffIdentical and TestPartitionCacheOnOffIdentical.
//
//	go test -bench='Tune|Partition' -benchtime=1x
//
// is the CI benchmark smoke (make bench-smoke).

// tuneSessionPasses is how many times the session revisits the search:
// pass 1 is cold, later passes model iterative retuning and hit the
// cache (or, uncached, re-price everything — the seed behavior).
const tuneSessionPasses = 3

func benchTuneSession(b *testing.B, cached bool) {
	app := kernels.BinomialOption()
	nd := app.Configs[0]
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ad := core.NewAdvisor(nil)
		// Predictor off: these benchmarks isolate the memoization layer
		// against the uncached serial seed and stay comparable across
		// baselines; BenchmarkTunePredict* measures the pruning.
		ad.Pred = nil
		if !cached {
			ad.Eval.Cache = nil
			ad.Eval.Workers = 1
		}
		var prev *core.TuneResult
		for pass := 0; pass < tuneSessionPasses; pass++ {
			tr, err := ad.Tune(app.Kernel, args, nd)
			if err != nil {
				b.Fatal(err)
			}
			if prev != nil && tr.Time != prev.Time {
				b.Fatalf("retune drifted: %v vs %v", tr.Time, prev.Time)
			}
			prev = tr
		}
	}
}

// BenchmarkTuneCached tunes Binomialoption (the headline workgroup-search
// fix: 48 divisor candidates at global 255000) three times through the
// memoizing evaluator; passes 2-3 are pure cache hits.
func BenchmarkTuneCached(b *testing.B) { benchTuneSession(b, true) }

// BenchmarkTuneUncachedSerial is the seed-equivalent baseline: no cache,
// one worker, every pass re-estimates every candidate from scratch.
func BenchmarkTuneUncachedSerial(b *testing.B) { benchTuneSession(b, false) }

func benchPartitionSession(b *testing.B, cached bool) {
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := hetero.NewPartitioner(cpu.New(arch.XeonE5645()), gpu.New(arch.GTX580()))
		p.Pred = nil // isolate the memoization layer, as in benchTuneSession
		if !cached {
			p.CPUEval.Cache, p.GPUEval.Cache = nil, nil
			p.CPUEval.Workers, p.GPUEval.Workers = 1, 1
		}
		for pass := 0; pass < tuneSessionPasses; pass++ {
			if _, err := p.Partition(app.Kernel, args, nd); err != nil {
				b.Fatal(err)
			}
			// The single-device baselines ext-hetero also prices; with
			// the cache on these are hits against the partition sweep.
			if _, err := p.PriceFrac(app.Kernel, args, nd, 1, 1); err != nil {
				b.Fatal(err)
			}
			if _, err := p.PriceFrac(app.Kernel, args, nd, 0, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPartitionCached sweeps the CPU/GPU split and its endpoint
// baselines three times with the shared memoization cache.
func BenchmarkPartitionCached(b *testing.B) { benchPartitionSession(b, true) }

// BenchmarkPartitionUncachedSerial is the seed-equivalent baseline.
func BenchmarkPartitionUncachedSerial(b *testing.B) { benchPartitionSession(b, false) }

// benchTunePredict runs one cold divisor-rich tune per iteration —
// Square at global 720720, whose 121 divisors up to the 1024 workgroup
// cap make the exhaustive search price >600 candidates across the
// coarsening factors — with the learned cost predictor on or off. The
// same workload backs perfbaseline's tune_full_ns / tune_topk_ns pair,
// gated by benchcompare at a 5x speedup floor; the pruned search's
// result quality is pinned by TestPrunedTuneWithin5PctAcrossZoo and the
// tune_quality_pct gate.
func benchTunePredict(b *testing.B, predicted bool) {
	app := kernels.Square()
	nd := ir.Range1D(720720, 0)
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ad := core.NewAdvisor(nil)
		if !predicted {
			ad.Pred = nil
		}
		if _, err := ad.Tune(app.Kernel, args, nd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTunePredictTopK is the predictor-pruned search: every
// candidate scored by the linear model, only the top-k survivors (plus
// the requested configuration) priced exactly.
func BenchmarkTunePredictTopK(b *testing.B) { benchTunePredict(b, true) }

// BenchmarkTunePredictFull is the exhaustive baseline (-nopredict).
func BenchmarkTunePredictFull(b *testing.B) { benchTunePredict(b, false) }

// Substrate microbenchmarks: how fast the simulator itself is.

// BenchmarkModelCPUEstimate measures one static CPU launch estimate
// (profile + vectorization + scheduling model).
func BenchmarkModelCPUEstimate(b *testing.B) {
	d := cpu.New(arch.XeonE5645())
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Estimate(app.Kernel, args, nd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelGPUEstimate measures one static GPU launch estimate.
func BenchmarkModelGPUEstimate(b *testing.B) {
	d := gpu.New(arch.GTX580())
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Estimate(app.Kernel, args, nd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures functional lockstep execution throughput
// (workitems per second), the cost of every correctness check in the repo.
func BenchmarkInterpreter(b *testing.B) {
	app := kernels.VectorAdd()
	nd := ir.Range1D(1<<16, 256)
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(nd.GlobalItems()) * 12)
}

// BenchmarkInterpreterBarriers measures lockstep execution with barriers
// and local memory (the reduction kernel).
func BenchmarkInterpreterBarriers(b *testing.B) {
	app := kernels.Reduction()
	nd := ir.Range1D(1<<15, 256)
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecRange compares the execution engines — the lane-batched
// SIMD-style v2 (engine2, the ExecRange default), the PR-4 closure
// engine v1, and the retained tree-walking oracle — on the two most
// interpreter-bound apps: the local-memory blocked Matrixmul and the
// loop-heavy Binomialoption.
//
//	go test -bench=ExecRange -benchtime=1x
//
// The v2/v1 ratio is the PR-8 tentpole speedup; cmd/perfbaseline
// records it as exec2_* in BENCH_pr8.json (v1/oracle remains exec_*).
func BenchmarkExecRange(b *testing.B) {
	cases := []struct {
		name string
		app  *kernels.App
		nd   ir.NDRange
	}{
		{"Matrixmul", kernels.MatrixMul(), ir.Range2D(96, 64, 16, 16)},
		{"Binomialoption", kernels.BinomialOption(), ir.Range1D(255*16, 255)},
	}
	engines := []struct {
		name string
		run  func(*kernels.App, *ir.Args, ir.NDRange) error
	}{
		{"v2", func(app *kernels.App, args *ir.Args, nd ir.NDRange) error {
			return ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{Engine: ir.EngineV2})
		}},
		{"v1", func(app *kernels.App, args *ir.Args, nd ir.NDRange) error {
			return ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{Engine: ir.EngineV1})
		}},
		{"oracle", func(app *kernels.App, args *ir.Args, nd ir.NDRange) error {
			return ir.ExecRangeOracle(app.Kernel, args, nd, ir.ExecOptions{})
		}},
	}
	for _, c := range cases {
		args := c.app.Make(c.nd)
		for _, e := range engines {
			b.Run(c.name+"/"+e.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := e.run(c.app, args, c.nd); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCacheHierarchy measures the cache simulator's access rate.
func BenchmarkCacheHierarchy(b *testing.B) {
	h := cache.NewHierarchy(arch.XeonE5645())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(i%12, int64(i*64)&0xFFFFFF, 4, i%4 == 0)
	}
}

// BenchmarkProfile measures static kernel profiling.
func BenchmarkProfile(b *testing.B) {
	a := arch.XeonE5645()
	app := kernels.MatrixMul()
	nd := app.Configs[0]
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ir.ProfileKernel(app.Kernel, args, nd, a.Lat, ir.MaxBranch); err != nil {
			b.Fatal(err)
		}
	}
}

// cacheSimBenchTrace mirrors cmd/perfbaseline's synthetic traced stream:
// per-core sequential sweeps over a private 32 KiB window, the regime the
// sharded simulator's phase-1 parallelism targets.
func cacheSimBenchTrace() (coreOf func(int) int, batches [][]ir.Access) {
	const (
		groups   = 512
		perGroup = 2048
		window   = 32 << 10
	)
	cores := arch.XeonE5645().PhysicalCores()
	batches = make([][]ir.Access, groups)
	for g := range batches {
		core := g % cores
		base := int64(core+1) << 20
		recs := make([]ir.Access, perGroup)
		for i := range recs {
			recs[i] = ir.Access{
				Addr:  base + int64((g*perGroup+i*4)%window),
				Size:  4,
				Write: i%4 == 0,
			}
		}
		batches[g] = recs
	}
	return func(g int) int { return g % cores }, batches
}

func benchCacheSim(b *testing.B, mk func(*cache.Hierarchy) cache.Sim) {
	_, batches := cacheSimBenchTrace()
	h := cache.NewHierarchy(arch.XeonE5645())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		sim := mk(h)
		for g, recs := range batches {
			sim.BeginGroup(g)
			sim.AccessBatch(g, recs)
		}
		sim.Finish()
	}
}

// BenchmarkCacheSimSharded measures the two-phase sharded simulator on
// the synthetic stream; BenchmarkCacheSimSerial is the serial reference
// on the identical stream (their outputs are bit-identical — see the
// internal/cache property tests).
func BenchmarkCacheSimSharded(b *testing.B) {
	coreOf, _ := cacheSimBenchTrace()
	benchCacheSim(b, func(h *cache.Hierarchy) cache.Sim {
		return cache.NewSharded(h, coreOf, cache.StoreWriteFactor)
	})
}

func BenchmarkCacheSimSerial(b *testing.B) {
	coreOf, _ := cacheSimBenchTrace()
	benchCacheSim(b, func(h *cache.Hierarchy) cache.Sim {
		return cache.NewSerial(h, coreOf, cache.StoreWriteFactor)
	})
}
