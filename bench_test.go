package clperf

// One benchmark per paper artifact: BenchmarkTable1..BenchmarkTable5 and
// BenchmarkFig1..BenchmarkFig11 each regenerate the corresponding table or
// figure through internal/experiments, so
//
//	go test -bench=Fig6 -benchmem
//
// reproduces (and times) exactly what `oclbench -e fig6` prints. The
// Benchmark*Model functions below additionally microbenchmark the
// simulation substrate itself.

import (
	"context"
	"fmt"
	"testing"

	"clperf/internal/arch"
	"clperf/internal/cache"
	"clperf/internal/cpu"
	"clperf/internal/experiments"
	"clperf/internal/gpu"
	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

func benchExperiment(b *testing.B, id string) {
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(harness.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 && len(rep.Figures) == 0 {
			b.Fatal("empty report")
		}
	}
}

// Tables I-V.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Figures 1-11.

func BenchmarkFig1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// Extensions and ablations beyond the paper's artifacts.

func BenchmarkExtAffinity(b *testing.B) { benchExperiment(b, "ext-affinity") }
func BenchmarkExtHetero(b *testing.B)   { benchExperiment(b, "ext-hetero") }
func BenchmarkExtScaling(b *testing.B)  { benchExperiment(b, "ext-scaling") }
func BenchmarkExtSIMD(b *testing.B)     { benchExperiment(b, "ext-simd") }
func BenchmarkExtRoofline(b *testing.B) { benchExperiment(b, "ext-roofline") }
func BenchmarkAblation(b *testing.B)    { benchExperiment(b, "ablation") }

// BenchmarkSuite runs the whole 22-artifact suite through the
// concurrent harness.Runner at several worker counts:
//
//	go test -bench=Suite -benchtime=1x
//
// times a full `oclbench -e all -par N` equivalent and exercises the
// parallel path (private recorders, deterministic merge, worker pool)
// end to end.
func BenchmarkSuite(b *testing.B) {
	exps := experiments.All()
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			r := harness.NewRunner(harness.RunnerOptions{Parallel: par, Observe: true})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sum := r.Run(context.Background(), exps)
				if failed := sum.Failed(); len(failed) > 0 {
					b.Fatalf("%d experiments failed, first: %s: %v",
						len(failed), failed[0].ID, failed[0].Err)
				}
			}
		})
	}
}

// Substrate microbenchmarks: how fast the simulator itself is.

// BenchmarkModelCPUEstimate measures one static CPU launch estimate
// (profile + vectorization + scheduling model).
func BenchmarkModelCPUEstimate(b *testing.B) {
	d := cpu.New(arch.XeonE5645())
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Estimate(app.Kernel, args, nd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelGPUEstimate measures one static GPU launch estimate.
func BenchmarkModelGPUEstimate(b *testing.B) {
	d := gpu.New(arch.GTX580())
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Estimate(app.Kernel, args, nd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures functional lockstep execution throughput
// (workitems per second), the cost of every correctness check in the repo.
func BenchmarkInterpreter(b *testing.B) {
	app := kernels.VectorAdd()
	nd := ir.Range1D(1<<16, 256)
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(nd.GlobalItems()) * 12)
}

// BenchmarkInterpreterBarriers measures lockstep execution with barriers
// and local memory (the reduction kernel).
func BenchmarkInterpreterBarriers(b *testing.B) {
	app := kernels.Reduction()
	nd := ir.Range1D(1<<15, 256)
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHierarchy measures the cache simulator's access rate.
func BenchmarkCacheHierarchy(b *testing.B) {
	h := cache.NewHierarchy(arch.XeonE5645())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(i%12, int64(i*64)&0xFFFFFF, 4, i%4 == 0)
	}
}

// BenchmarkProfile measures static kernel profiling.
func BenchmarkProfile(b *testing.B) {
	a := arch.XeonE5645()
	app := kernels.MatrixMul()
	nd := app.Configs[0]
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ir.ProfileKernel(app.Kernel, args, nd, a.Lat, ir.MaxBranch); err != nil {
			b.Fatal(err)
		}
	}
}
