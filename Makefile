GO ?= go

.PHONY: all build vet test race bench ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs/

# The gate CI runs: everything must build, vet clean, and pass under
# the race detector.
ci: build vet race
