GO ?= go

.PHONY: all build vet test race bench smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs/

# Exercise the concurrent suite path end to end: every artifact on 4
# workers, with a per-experiment timeout as a hang backstop.
smoke:
	$(GO) run ./cmd/oclbench -e all -par 4 -timeout 5m > /dev/null

# The gate CI runs: everything must build, vet clean, pass under the
# race detector, and survive a concurrent full-suite run.
ci: build vet race smoke
