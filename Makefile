GO ?= go

.PHONY: all build vet test race bench bench-smoke baseline bench-compare smoke obs-smoke san-smoke matrix-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs/

# One pass over the search-layer, cache-simulator, and execution-engine
# benchmarks (cached+parallel vs the uncached serial seed path; sharded
# vs serial cache sim; lane-batched v2 vs per-item v1) as a CI smoke —
# -benchtime=1x just proves they run and agree, it does not time them.
bench-smoke:
	$(GO) test -bench='Tune|Partition|CacheSim|ExecRange' -benchtime=1x -run=^$$ .

# Regenerate the committed perf baseline (BENCH_pr10.json).
baseline:
	$(GO) run ./cmd/perfbaseline -reps 9

# Gate on perf regressions: fail if suite_ns or the exec_*_ns /
# exec2_*_ns engine times in the newest baseline regressed >20% vs the
# previous BENCH_pr*, if observability overhead exceeds its absolute 5%
# budget, if the lane-batched engine's v2-over-v1 speedup drops below
# its absolute 2x floor on matmul or binomial, if the learned cost
# predictor's pruned tune falls under its 5x speedup floor or over its
# 5% worst-case quality budget, or if the trace-once / replay-many
# matrix pipeline falls under its 5x speedup floor over the
# execute-per-device baseline.
bench-compare:
	$(GO) run ./cmd/benchcompare -new BENCH_pr10.json -old auto

# Exercise the concurrent suite path end to end: every artifact on 4
# workers, with a per-experiment timeout as a hang backstop.
smoke:
	$(GO) run ./cmd/oclbench -e all -par 4 -timeout 5m > /dev/null

# End-to-end observability smoke: unit-test the exposition parser and
# endpoints, then run the suite with -serve, curl /metrics + /healthz,
# validate the scrape as OpenMetrics, and gate two back-to-back runs
# with `cldiff -gate 20` (host wall-clock runner.* keys excluded).
obs-smoke:
	$(GO) test -count=1 ./internal/obs/...
	sh scripts/obs_smoke.sh

# End-to-end hazard-analyzer smoke: the registered suite must analyze
# clean under `oclbench -san`, and the seeded-bug corpus (`clsan
# -inject`) must trip all three hazard classes with exit 1.
san-smoke:
	$(GO) test -count=1 ./internal/san/...
	sh scripts/san_smoke.sh

# End-to-end portability-matrix smoke: the 3x3 grid priced through the
# trace-once / replay-many pipeline must render byte-identical to the
# -noreplay execute-per-device baseline.
matrix-smoke:
	$(GO) test -count=1 ./internal/replay/...
	sh scripts/matrix_smoke.sh

# The gate CI runs: everything must build, vet clean, pass under the
# race detector, survive a concurrent full-suite run, execute the
# search-layer benchmarks once, hold the committed perf baseline (incl.
# the engine-v2 2x floor and the replay 5x floor), keep the live
# observability plane scrapeable and diffable end to end, hold the
# hazard analyzer's zero-false-positive / full-detection contract, and
# keep the replayed portability matrix byte-identical to per-device
# execution.
ci: build vet race smoke bench-smoke bench-compare obs-smoke san-smoke matrix-smoke
