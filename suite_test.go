package clperf

// Suite-level properties of the concurrent runner over the real
// experiment registry: `-e all -par N` must be indistinguishable from a
// serial run — byte-identical rendered reports and equal merged
// recorder contents (the runner's own wall-clock metrics excepted).

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"clperf/internal/experiments"
	"clperf/internal/harness"
	"clperf/internal/obs"
)

// renderAll renders every report the way cmd/oclbench does.
func renderAll(t *testing.T, sum *harness.Summary) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range sum.Results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		r.Report.Render(&buf)
	}
	return buf.Bytes()
}

// stripHostMetrics drops the runner's host wall-clock self-metrics; all
// remaining metrics live on the simulated clock and must be identical
// across worker counts.
func stripHostMetrics(s obs.Snapshot) obs.Snapshot {
	var out obs.Snapshot
	for _, m := range s.Counters {
		if !strings.HasPrefix(m.Name, "runner.") {
			out.Counters = append(out.Counters, m)
		}
	}
	for _, m := range s.Gauges {
		if !strings.HasPrefix(m.Name, "runner.") {
			out.Gauges = append(out.Gauges, m)
		}
	}
	for _, h := range s.Hists {
		if !strings.HasPrefix(h.Name, "runner.") {
			out.Hists = append(out.Hists, h)
		}
	}
	return out
}

func TestSuiteParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite twice is slow")
	}
	exps := experiments.All()
	serial := harness.NewRunner(harness.RunnerOptions{Parallel: 1, Observe: true}).
		Run(context.Background(), exps)
	wantOut := renderAll(t, serial)
	wantSnap := stripHostMetrics(serial.Rec.Registry().Snapshot())
	wantSpans := serial.Rec.Spans()

	par := harness.NewRunner(harness.RunnerOptions{Parallel: 8, Observe: true}).
		Run(context.Background(), exps)
	gotOut := renderAll(t, par)
	if !bytes.Equal(gotOut, wantOut) {
		t.Error("par=8 report output differs from serial run")
	}
	if got := stripHostMetrics(par.Rec.Registry().Snapshot()); !reflect.DeepEqual(got, wantSnap) {
		t.Error("par=8 merged metrics snapshot differs from serial run")
	}
	if !reflect.DeepEqual(par.Rec.Spans(), wantSpans) {
		t.Error("par=8 merged span stream differs from serial run")
	}
}
