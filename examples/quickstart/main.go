// Quickstart: the clperf equivalent of a first OpenCL host program.
//
// It picks the simulated CPU platform, builds a vector-addition kernel,
// moves data with the mapping API (the paper's recommendation), launches
// the kernel over an NDRange, validates the results and prints the
// simulated timing.
package main

import (
	"fmt"
	"log"

	"clperf/internal/cl"
	"clperf/internal/ir"
)

// The kernel is ordinary OpenCL C source, compiled by the built-in parser
// exactly as clCreateProgramWithSource would.
const source = `
__kernel void vectoradd(__global float *a, __global float *b, __global float *c) {
    int i = get_global_id(0);
    c[i] = a[i] + b[i];
}
`

func main() {
	const n = 1 << 16

	// Platform and device discovery, clGetPlatformIDs-style.
	dev := cl.CPUDevice()
	fmt.Printf("device: %s (%d compute units, %v peak)\n",
		dev.Name(), dev.ComputeUnits(), dev.PeakFlops())

	ctx := cl.NewContext(dev)
	queue := cl.NewQueue(ctx)

	// Build the program from source and create the kernel.
	program, err := ctx.CreateProgramWithSource(source)
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := program.CreateKernel("vectoradd")
	if err != nil {
		log.Fatal(err)
	}

	// Allocate buffers with access flags, as with clCreateBuffer.
	a, err := ctx.CreateBuffer(cl.MemReadOnly, ir.F32, n)
	if err != nil {
		log.Fatal(err)
	}
	b, err := ctx.CreateBuffer(cl.MemReadOnly, ir.F32, n)
	if err != nil {
		log.Fatal(err)
	}
	c, err := ctx.CreateBuffer(cl.MemWriteOnly, ir.F32, n)
	if err != nil {
		log.Fatal(err)
	}

	// Initialize inputs through the mapping API: on a CPU device this
	// returns a pointer, no copy (section III-D of the paper).
	va, _, err := queue.EnqueueMapBuffer(a, cl.MapWrite)
	if err != nil {
		log.Fatal(err)
	}
	vb, _, err := queue.EnqueueMapBuffer(b, cl.MapWrite)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		va[i] = float64(i)
		vb[i] = float64(2 * i)
	}
	if _, err := queue.EnqueueUnmapBuffer(a); err != nil {
		log.Fatal(err)
	}
	if _, err := queue.EnqueueUnmapBuffer(b); err != nil {
		log.Fatal(err)
	}

	// Bind arguments and launch, as with clSetKernelArg +
	// clEnqueueNDRangeKernel. An explicit workgroup size of 256 follows the
	// paper's guideline 1 (large workgroups on CPUs).
	for name, buf := range map[string]*cl.Buffer{"a": a, "b": b, "c": c} {
		if err := kernel.SetBufferArg(name, buf); err != nil {
			log.Fatal(err)
		}
	}
	ev, err := queue.EnqueueNDRangeKernel(kernel, ir.Range1D(n, 256))
	if err != nil {
		log.Fatal(err)
	}

	// Read results back through a mapping and validate.
	vc, _, err := queue.EnqueueMapBuffer(c, cl.MapRead)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if vc[i] != float64(3*i) {
			log.Fatalf("c[%d] = %v, want %v", i, vc[i], 3*i)
		}
	}
	if _, err := queue.EnqueueUnmapBuffer(c); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("vectoradd over %d elements: kernel %v, total queue time %v\n",
		n, ev.Time(), queue.Now())
	fmt.Println("results validated: c[i] == a[i] + b[i] for all i")
}
