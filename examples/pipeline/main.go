// Pipeline: a multi-kernel application on one command queue — square the
// input, then reduce it to a sum — showing how clperf's event timestamps
// profile each stage exactly as CL_QUEUE_PROFILING_ENABLE would, and how a
// dependent pipeline keeps intermediate data on the device with no
// transfers between stages.
package main

import (
	"fmt"
	"log"
	"math"

	"clperf/internal/cl"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

func main() {
	const (
		n     = 1 << 20
		local = 256
	)
	dev := cl.CPUDevice()
	ctx := cl.NewContext(dev)
	q := cl.NewQueue(ctx)

	square, err := ctx.CreateKernel(kernels.SquareKernel())
	if err != nil {
		log.Fatal(err)
	}
	reduce, err := ctx.CreateKernel(kernels.ReductionKernel())
	if err != nil {
		log.Fatal(err)
	}

	in, err := ctx.CreateBuffer(cl.MemReadOnly, ir.F32, n)
	if err != nil {
		log.Fatal(err)
	}
	squared, err := ctx.CreateBuffer(cl.MemReadWrite, ir.F32, n)
	if err != nil {
		log.Fatal(err)
	}
	partial, err := ctx.CreateBuffer(cl.MemWriteOnly, ir.F32, n/local)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 0: initialize the input through a mapping.
	view, _, err := q.EnqueueMapBuffer(in, cl.MapWrite)
	if err != nil {
		log.Fatal(err)
	}
	var wantSum float64
	for i := range view {
		view[i] = float64(i%100) * 0.01
		x := float32(view[i])
		wantSum += float64(x * x)
	}
	if _, err := q.EnqueueUnmapBuffer(in); err != nil {
		log.Fatal(err)
	}

	// Stage 1: squared = in^2.
	if err := square.SetBufferArg("in", in); err != nil {
		log.Fatal(err)
	}
	if err := square.SetBufferArg("out", squared); err != nil {
		log.Fatal(err)
	}
	ev1, err := q.EnqueueNDRangeKernel(square, ir.Range1D(n, local))
	if err != nil {
		log.Fatal(err)
	}

	// Stage 2: per-workgroup tree reduction of the squares.
	if err := reduce.SetBufferArg("in", squared); err != nil {
		log.Fatal(err)
	}
	if err := reduce.SetBufferArg("partial", partial); err != nil {
		log.Fatal(err)
	}
	if err := reduce.SetScalarArg("levels", 8); err != nil { // log2(256)
		log.Fatal(err)
	}
	ev2, err := q.EnqueueNDRangeKernel(reduce, ir.Range1D(n, local))
	if err != nil {
		log.Fatal(err)
	}

	// Final partial sum on the host, through a mapping.
	parts, _, err := q.EnqueueMapBuffer(partial, cl.MapRead)
	if err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, p := range parts {
		sum += p
	}
	if _, err := q.EnqueueUnmapBuffer(partial); err != nil {
		log.Fatal(err)
	}

	if math.Abs(sum-wantSum) > 1e-6*wantSum {
		log.Fatalf("sum = %v, want %v", sum, wantSum)
	}
	fmt.Printf("sum of squares over %d elements = %.4f (validated)\n", n, sum)
	fmt.Printf("stage timings: square %v, reduce %v, whole queue %v\n",
		ev1.Time(), ev2.Time(), q.Now())
	fmt.Println("\nevent log:")
	for _, ev := range q.Events() {
		fmt.Printf("  %-40s start %-10v end %-10v (%v)\n",
			ev.Command, ev.Start, ev.End, ev.Duration())
	}
}
