// Tuning: use the clperf advisor (the paper's guidelines as a library) to
// diagnose and fix a naive launch configuration.
//
// The starting point is the worst case from the paper's Figure 3: a large
// NDRange with one-workitem workgroups. The advisor quantifies the
// scheduling overhead, recommends a workgroup size, and Tune searches
// workgroup size and workitem coarsening jointly.
package main

import (
	"fmt"
	"log"

	"clperf/internal/core"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

func main() {
	app := kernels.Square()
	nd := ir.Range1D(1_000_000, 1) // one workitem per workgroup: Figure 3's case_1
	args := app.Make(nd)

	ad := core.NewAdvisor(nil)

	fmt.Println("--- naive launch ---")
	rep, err := ad.Analyze(app.Kernel, args, nd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())

	fmt.Println("\n--- tuned launch ---")
	tr, err := ad.Tune(app.Kernel, args, nd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen geometry: %s, coarsening x%d\n", tr.ND, tr.Coarsen)
	fmt.Printf("estimated time: %v -> %v (%.1fx)\n", tr.Baseline, tr.Time, tr.Gain())

	tuned, err := ad.Analyze(tr.Kernel, args, tr.ND)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tuned.Render())

	// Guideline 4: transfers should map, not copy.
	fmt.Println("\n--- transfer advice ---")
	fmt.Println(ad.TransferAdvice(int64(args.Buffers["in"].Bytes())))
}
