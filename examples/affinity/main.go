// Affinity: the paper's section III-E experiment as a program.
//
// Two dependent OpenMP parallel-for regions run over eight cores with a
// persistent simulated cache hierarchy: Vector Addition produces c, Vector
// Multiplication consumes it. With an aligned thread->core mapping the
// consumer finds its chunk in the producer core's private caches; the
// misaligned mapping pays shared-L3 round trips — the reason the paper
// argues OpenCL should expose affinity.
package main

import (
	"fmt"
	"log"

	"clperf/internal/arch"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/omp"
	"clperf/internal/units"
)

const (
	threads = 8
	chunk   = 16384 // floats per core per buffer (64 KiB)
)

func main() {
	aligned, err := run([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		log.Fatal(err)
	}
	misaligned, err := run([]int{1, 2, 3, 4, 5, 6, 7, 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computation 2, aligned mapping:    %v\n", aligned)
	fmt.Printf("computation 2, misaligned mapping: %v\n", misaligned)
	fmt.Printf("misaligned penalty: +%.1f%%\n",
		100*(misaligned.Seconds()/aligned.Seconds()-1))
}

func run(secondAffinity []int) (units.Duration, error) {
	rt := omp.New(arch.XeonE5645())
	rt.NumThreads = threads
	rt.ProcBind = true // OMP_PROC_BIND=true
	rt.CPUAffinity = []int{0, 1, 2, 3, 4, 5, 6, 7}
	rt.EnableCacheSim()

	n := threads * chunk
	a := ir.NewBufferF32("a", n)
	b := ir.NewBufferF32("b", n)
	c := ir.NewBufferF32("c", n)
	d := ir.NewBufferF32("d", n)
	kernels.FillUniform(a, 1, -1, 1)
	kernels.FillUniform(b, 2, -1, 1)
	base := int64(1 << 22)
	for _, buf := range []*ir.Buffer{a, b, c, d} {
		buf.Base = base
		base += buf.Bytes() + 4096
	}

	// Computation 1: c = a + b.
	addArgs := ir.NewArgs().Bind("a", a).Bind("b", b).Bind("c", c)
	if _, err := rt.ParallelFor(kernels.VectorAddKernel(), addArgs, n, omp.Static); err != nil {
		return 0, err
	}

	// Computation 2: d = c * c, with the mapping under test
	// (GOMP_CPU_AFFINITY).
	rt.CPUAffinity = secondAffinity
	mulArgs := ir.NewArgs().Bind("a", c).Bind("b", c).Bind("c", d)
	res, err := rt.ParallelFor(kernels.VectorMulKernel(), mulArgs, n, omp.Static)
	if err != nil {
		return 0, err
	}

	// Functional sanity: d really is c squared.
	for i := 0; i < n; i += 1000 {
		want := float64(float32(c.Get(i)) * float32(c.Get(i)))
		if d.Get(i) != want {
			return 0, fmt.Errorf("d[%d] = %v, want %v", i, d.Get(i), want)
		}
	}
	return res.Time, nil
}
