// Blackscholes: a complete option-pricing application on both simulated
// devices, exercising the decisions the paper's evaluation covers — where
// to run, how to move the data, and what the workgroup size should be.
//
// It prices a grid of European options on the CPU and the GPU, compares
// Equation (1) application throughput (kernel + transfer) for the copy and
// map transfer APIs, and validates the results against the host-side
// Black-Scholes formula.
package main

import (
	"fmt"
	"log"

	"clperf/internal/cl"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/units"
)

func main() {
	app := kernels.BlackScholes()
	nd := app.Configs[0] // 1280x1280 options, 16x16 workgroups
	n := nd.GlobalItems()
	args := app.Make(nd)
	flops := 40.0 * float64(n) // ballpark per-option flop count for reporting

	fmt.Printf("pricing %d options (%s)\n\n", n, nd)
	for _, dev := range []*cl.Device{cl.CPUDevice(), cl.GPUDevice()} {
		for _, api := range []string{"copy", "map"} {
			kernelT, transferT, err := run(dev, app, args, nd, api)
			if err != nil {
				log.Fatal(err)
			}
			appThr := units.ThroughputOf(flops, kernelT+transferT)
			fmt.Printf("%-28s %-5s kernel %-10v transfer %-10v app throughput %v\n",
				dev.Name(), api, kernelT, transferT, appThr)
		}
	}

	// Validate once, functionally, against the reference formula.
	if err := ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{Parallel: 8}); err != nil {
		log.Fatal(err)
	}
	if err := app.Check(args, nd); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresults validated against the host-side Black-Scholes formula")
}

// run executes the app once on dev with the chosen transfer API, returning
// kernel and transfer times.
func run(dev *cl.Device, app *kernels.App, args *ir.Args, nd ir.NDRange, api string) (kernel, transfer units.Duration, err error) {
	ctx := cl.NewContext(dev)
	q := cl.NewQueue(ctx)
	q.SetFunctional(false) // timing model only; validation happens separately

	k, err := ctx.CreateKernel(app.Kernel)
	if err != nil {
		return 0, 0, err
	}
	inputs := []string{"price", "strike", "years"}
	outputs := []string{"call", "put"}

	bufs := map[string]*cl.Buffer{}
	for _, name := range append(append([]string{}, inputs...), outputs...) {
		flags := cl.MemReadOnly
		if name == "call" || name == "put" {
			flags = cl.MemWriteOnly
		}
		b, err := ctx.CreateBuffer(flags, ir.F32, args.Buffers[name].Len())
		if err != nil {
			return 0, 0, err
		}
		bufs[name] = b
		if err := k.SetBufferArg(name, b); err != nil {
			return 0, 0, err
		}
	}

	for _, name := range inputs {
		src := args.Buffers[name].Data
		if api == "copy" {
			if _, err := q.EnqueueWriteBuffer(bufs[name], src); err != nil {
				return 0, 0, err
			}
			continue
		}
		view, _, err := q.EnqueueMapBuffer(bufs[name], cl.MapWrite)
		if err != nil {
			return 0, 0, err
		}
		copy(view, src)
		if _, err := q.EnqueueUnmapBuffer(bufs[name]); err != nil {
			return 0, 0, err
		}
	}

	ke, err := q.EnqueueNDRangeKernel(k, nd)
	if err != nil {
		return 0, 0, err
	}

	for _, name := range outputs {
		dst := make([]float64, bufs[name].Len())
		if api == "copy" {
			if _, err := q.EnqueueReadBuffer(bufs[name], dst); err != nil {
				return 0, 0, err
			}
			continue
		}
		if _, _, err := q.EnqueueMapBuffer(bufs[name], cl.MapRead); err != nil {
			return 0, 0, err
		}
		if _, err := q.EnqueueUnmapBuffer(bufs[name]); err != nil {
			return 0, 0, err
		}
	}

	kernel = ke.Time()
	for _, ev := range q.Events() {
		if ev.Command != "clEnqueueNDRangeKernel:"+app.Kernel.Name {
			transfer += ev.Duration()
		}
	}
	return kernel, transfer, nil
}
