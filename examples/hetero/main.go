// Hetero: CPU+GPU co-execution — the scenario the paper's introduction
// motivates ("CPUs can also be utilized to increase the performance of
// OpenCL applications by using both CPUs and GPUs").
//
// The static partitioner prices every split of the NDRange on both device
// models (PCIe traffic charged to the GPU share), picks the
// makespan-minimizing one, then really executes both halves against the
// shared buffers and validates the result.
package main

import (
	"fmt"
	"log"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/gpu"
	"clperf/internal/hetero"
	"clperf/internal/kernels"
)

func main() {
	p := hetero.NewPartitioner(cpu.New(arch.XeonE5645()), gpu.New(arch.GTX580()))

	apps := []*kernels.App{
		kernels.Square(),
		kernels.VectorAdd(),
		kernels.MatrixMulNaive(),
		kernels.BlackScholes(),
	}
	for _, app := range apps {
		nd := app.Configs[0]
		args := app.Make(nd)
		split, err := p.Partition(app.Kernel, args, nd)
		if err != nil {
			log.Fatalf("%s: %v", app.Name, err)
		}
		fmt.Printf("%-16s %s\n", app.Name, split)
	}

	// Execute one split for real and check the results.
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	args := app.Make(nd)
	split, err := p.Partition(app.Kernel, args, nd)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Execute(app.Kernel, args, nd, split); err != nil {
		log.Fatal(err)
	}
	if err := app.Check(args, nd); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nco-executed %s across both devices; results validated\n", app.Name)
}
