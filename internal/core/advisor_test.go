package core

import (
	"strings"
	"testing"

	"clperf/internal/ir"
	"clperf/internal/kernels"
)

func findRule(rep *Report, rule Rule) *Finding {
	for i := range rep.Findings {
		if rep.Findings[i].Rule == rule {
			return &rep.Findings[i]
		}
	}
	return nil
}

func TestAdvisorFlagsTinyWorkgroups(t *testing.T) {
	ad := NewAdvisor(nil)
	app := kernels.Square()
	nd := ir.Range1D(1<<20, 1)
	rep, err := ad.Analyze(app.Kernel, app.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	f := findRule(rep, RuleWorkgroupSize)
	if f == nil {
		t.Fatal("expected a workgroup-size finding for 1-item groups")
	}
	if f.Gain < 2 {
		t.Errorf("gain = %.2f, want >= 2", f.Gain)
	}
	if findRule(rep, RuleCoarsening) == nil {
		t.Error("square's tiny per-item work should trigger coarsening advice")
	}
	if v := findRule(rep, RuleVectorization); v == nil {
		t.Error("1-wide workgroups should trigger the lane-width warning")
	}
}

func TestAdvisorQuietOnGoodConfig(t *testing.T) {
	ad := NewAdvisor(nil)
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	rep, err := ad.Analyze(app.Kernel, app.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	if f := findRule(rep, RuleWorkgroupSize); f != nil && f.Gain > 1.3 {
		t.Errorf("well-configured blackscholes should not need workgroup advice: %v", f)
	}
	// Blackscholes calls libm, so the vectorization warning is expected and
	// correct.
	v := findRule(rep, RuleVectorization)
	if v == nil || !strings.Contains(v.Message, "math library") {
		t.Errorf("blackscholes should carry the scalar-libm warning, got %v", v)
	}
}

func TestAdvisorMemoryBound(t *testing.T) {
	// Uncoarsened vectoradd is runtime-overhead bound (the paper's point);
	// once coarsened, the DRAM bandwidth floor takes over and the advisor
	// must say so.
	ad := NewAdvisor(nil)
	app := kernels.VectorAdd()
	nd := ir.Range1D(11440000, 0)
	args := app.Make(nd)
	ck, err := kernels.Coarsen(app.Kernel, 80)
	if err != nil {
		t.Fatal(err)
	}
	cnd, err := kernels.CoarsenRange(nd, 80)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ad.Analyze(ck, args, cnd)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Breakdown.MemoryBound {
		t.Error("coarsened 11M-element vectoradd must be bandwidth-bound")
	}
	if findRule(rep, RuleMemoryBound) == nil {
		t.Error("expected memory-bound note")
	}
}

func TestTransferAdvice(t *testing.T) {
	ad := NewAdvisor(nil)
	f := ad.TransferAdvice(64 << 20)
	if f.Rule != RuleTransferAPI || f.Gain <= 1 {
		t.Errorf("transfer advice = %+v", f)
	}
	if !strings.Contains(f.Message, "prefer mapping") {
		t.Errorf("message = %q", f.Message)
	}
}

func TestBestWorkgroupRespectsDivisibility(t *testing.T) {
	ad := NewAdvisor(nil)
	app := kernels.Square()
	nd := ir.Range1D(10000, 0)
	best, tm, err := ad.BestWorkgroup(app.Kernel, app.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Fatal("best time must be positive")
	}
	if best.Global[0]%best.Local[0] != 0 {
		t.Fatalf("chosen local %d does not divide %d", best.Local[0], best.Global[0])
	}
}

func TestTuneImproves(t *testing.T) {
	ad := NewAdvisor(nil)
	app := kernels.Square()
	nd := ir.Range1D(1<<20, 1)
	args := app.Make(nd)
	tr, err := ad.Tune(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Gain() < 3 {
		t.Errorf("tuning a 1-item-group square should gain >= 3x, got %.2f", tr.Gain())
	}
	if tr.Time > tr.Baseline {
		t.Error("tuned time above baseline")
	}
	// The tuned kernel still computes the right thing.
	if err := ir.ExecRange(tr.Kernel, args, tr.ND, ir.ExecOptions{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	in, out := args.Buffers["in"], args.Buffers["out"]
	for i := 0; i < 1<<20; i += 4099 {
		x := float32(in.Get(i))
		if out.Get(i) != float64(x*x) {
			t.Fatalf("tuned kernel wrong at %d", i)
		}
	}
}

// Tune must fall back to workgroup search when coarsening is impossible.
func TestTuneBarrierKernel(t *testing.T) {
	ad := NewAdvisor(nil)
	app := kernels.Reduction()
	nd := ir.Range1D(1<<16, 64)
	tr, err := ad.Tune(app.Kernel, app.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Coarsen != 1 {
		t.Errorf("barrier kernels cannot coarsen, got factor %d", tr.Coarsen)
	}
}

func TestReportRender(t *testing.T) {
	ad := NewAdvisor(nil)
	app := kernels.Square()
	nd := ir.Range1D(4096, 1)
	rep, err := ad.Analyze(app.Kernel, app.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{"kernel square", "dispatch", "ILP"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSeverityOrdering(t *testing.T) {
	fs := []Finding{
		{Rule: RuleILP, Severity: Info, Gain: 9},
		{Rule: RuleCoarsening, Severity: Warning, Gain: 2},
		{Rule: RuleWorkgroupSize, Severity: Advice, Gain: 5},
	}
	sortFindings(fs)
	if fs[0].Severity != Warning || fs[2].Severity != Info {
		t.Errorf("ordering wrong: %+v", fs)
	}
}

func TestRooflinePlacement(t *testing.T) {
	ad := NewAdvisor(nil)

	// VectorAdd: ~1 flop per 12 bytes — memory-side of the roofline.
	va := kernels.VectorAdd()
	nd := ir.Range1D(1<<20, 256)
	rep, err := ad.Analyze(va.Kernel, va.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Breakdown.OperationalIntensity > 0.2 {
		t.Errorf("vectoradd intensity = %.3f flops/byte, want < 0.2",
			rep.Breakdown.OperationalIntensity)
	}
	if rep.Breakdown.AttainableGFlops >= 230 {
		t.Errorf("memory-bound kernel cannot attain peak: %.1f",
			rep.Breakdown.AttainableGFlops)
	}

	// Blackscholes: tens of flops per loaded byte — compute side.
	bs := kernels.BlackScholes()
	bnd := bs.Configs[0]
	brep, err := ad.Analyze(bs.Kernel, bs.Make(bnd), bnd)
	if err != nil {
		t.Fatal(err)
	}
	if brep.Breakdown.OperationalIntensity < 1 {
		t.Errorf("blackscholes intensity = %.3f, want > 1",
			brep.Breakdown.OperationalIntensity)
	}
	if brep.Breakdown.AttainableGFlops < 3*rep.Breakdown.AttainableGFlops {
		t.Errorf("compute-side kernel should sit far above vectoradd on the roofline: %.1f vs %.1f",
			brep.Breakdown.AttainableGFlops, rep.Breakdown.AttainableGFlops)
	}
	if !strings.Contains(brep.Render(), "roofline") {
		t.Error("report must include the roofline line")
	}
}
