package core

import (
	"reflect"
	"testing"

	"clperf/internal/ir"
	"clperf/internal/kernels"
)

func TestDivisorsLE(t *testing.T) {
	cases := []struct {
		n, limit int
		want     []int
	}{
		{12, 12, []int{1, 2, 3, 4, 6, 12}},
		{12, 5, []int{1, 2, 3, 4}},
		{7, 1024, []int{1, 7}},
		{1, 1024, []int{1}},
		{0, 1024, []int{1}},
	}
	for _, c := range cases {
		if got := divisorsLE(c.n, c.limit); !reflect.DeepEqual(got, c.want) {
			t.Errorf("divisorsLE(%d, %d) = %v, want %v", c.n, c.limit, got, c.want)
		}
	}
}

// The headline bug: for the paper's Binomialoption geometry (global
// 255000, Table II) the old power-of-two enumeration offered only
// {1,2,4,8} and could never express the paper's own local size of 255.
func TestWorkgroupCandidatesCoverAllDivisors(t *testing.T) {
	nd := ir.Range1D(255000, 0)
	candidates := workgroupCandidates(nd, 1024)
	seen := map[int]bool{}
	for _, c := range candidates {
		l := c.Local[0]
		if l < 1 || l > 1024 {
			t.Fatalf("candidate local %d out of range", l)
		}
		if 255000%l != 0 {
			t.Fatalf("candidate local %d does not divide 255000", l)
		}
		if seen[l] {
			t.Fatalf("duplicate candidate %d", l)
		}
		seen[l] = true
	}
	for _, want := range []int{1, 8, 255, 500, 1000} {
		if !seen[want] {
			t.Errorf("divisor %d missing from candidates", want)
		}
	}
	if seen[1024] {
		t.Error("1024 does not divide 255000 but was offered")
	}
}

func TestWorkgroupCandidatesRespectDeviceMax(t *testing.T) {
	for _, c := range workgroupCandidates(ir.Range1D(255000, 0), 256) {
		if c.Local[0] > 256 {
			t.Fatalf("candidate %d exceeds device max 256", c.Local[0])
		}
	}
}

func TestWorkgroupCandidates2D(t *testing.T) {
	nd := ir.Range2D(1024, 768, 0, 0)
	for _, c := range workgroupCandidates(nd, 1024) {
		e, f := c.Local[0], c.Local[1]
		if 1024%e != 0 || 768%f != 0 {
			t.Fatalf("candidate %dx%d does not divide 1024x768", e, f)
		}
		if e*f > 1024 {
			t.Fatalf("candidate %dx%d exceeds 1024 items", e, f)
		}
	}
}

// Acceptance criterion: Tune on Binomialoption (global 255000) must
// consider the paper's local size 255 and return a configuration at
// least as fast as the paper's.
func TestTuneBinomialReachesPaperConfig(t *testing.T) {
	ad := NewAdvisor(nil)
	app := kernels.BinomialOption()
	paper := app.Configs[0] // 255000 / 255
	args := app.Make(paper)

	found := false
	for _, c := range workgroupCandidates(paper, ad.Dev.MaxWorkgroup()) {
		if c.Local[0] == 255 {
			found = true
		}
	}
	if !found {
		t.Fatal("local size 255 not among Binomialoption candidates")
	}

	paperRes, err := ad.Dev.Estimate(app.Kernel, args, paper)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ad.Tune(app.Kernel, args, paper)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Time > paperRes.Time {
		t.Errorf("tuned config %s (%v) is slower than the paper's 255 (%v)",
			tr.ND, tr.Time, paperRes.Time)
	}
}

// BestWorkgroup must never return a configuration slower than the
// caller's own geometry — the requested local size is itself a
// candidate.
func TestBestWorkgroupNeverRegresses(t *testing.T) {
	ad := NewAdvisor(nil)
	apps := []*kernels.App{kernels.Square(), kernels.Reduction(), kernels.BinomialOption()}
	for _, app := range apps {
		for _, nd := range app.Configs {
			args := app.Make(nd)
			req, err := ad.Dev.Estimate(app.Kernel, args, nd)
			if err != nil {
				continue
			}
			_, best, err := ad.BestWorkgroup(app.Kernel, args, nd)
			if err != nil {
				t.Fatalf("%s %s: %v", app.Name, nd, err)
			}
			if best > req.Time {
				t.Errorf("%s %s: BestWorkgroup time %v regresses the requested %v",
					app.Name, nd, best, req.Time)
			}
		}
	}
}

// Property: across the registry, Tune never reports Time > Baseline,
// and the tuned configuration re-Estimates to exactly the reported
// Time (the model is deterministic; the tuner must report what the
// model says, not something it interpolated).
func TestTunePropertiesAcrossRegistry(t *testing.T) {
	ad := NewAdvisor(nil)
	for _, app := range kernels.Registry() {
		nd := app.DefaultConfig()
		args := app.Make(nd)
		tr, err := ad.Tune(app.Kernel, args, nd)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if tr.Time > tr.Baseline {
			t.Errorf("%s: tuned time %v above baseline %v", app.Name, tr.Time, tr.Baseline)
		}
		re, err := ad.Dev.Estimate(tr.Kernel, args, tr.ND)
		if err != nil {
			t.Fatalf("%s: re-estimate: %v", app.Name, err)
		}
		if re.Time != tr.Time {
			t.Errorf("%s: reported %v but re-estimates to %v", app.Name, tr.Time, re.Time)
		}
	}
}

// Property: cached parallel search and uncached serial search return
// identical tuning results (run under -race in CI, exercising the
// worker pool).
func TestTuneCacheOnOffIdentical(t *testing.T) {
	for _, app := range []*kernels.App{kernels.Square(), kernels.BinomialOption(), kernels.MatrixMul()} {
		nd := app.DefaultConfig()
		args := app.Make(nd)

		cached := NewAdvisor(nil)
		trC, err := cached.Tune(app.Kernel, args, nd)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		uncached := NewAdvisor(nil)
		uncached.Eval = nil // direct serial estimation
		trU, err := uncached.Tune(app.Kernel, args, nd)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}

		if trC.ND != trU.ND || trC.Coarsen != trU.Coarsen ||
			trC.Time != trU.Time || trC.Baseline != trU.Baseline {
			t.Errorf("%s: cache-on %+v != cache-off %+v", app.Name, trC, trU)
		}
		if ir.Format(trC.Kernel) != ir.Format(trU.Kernel) {
			t.Errorf("%s: tuned kernels differ between cache-on and cache-off", app.Name)
		}
		if s := cached.Eval.Stats(); s.Hits == 0 {
			t.Errorf("%s: cached Tune recorded no hits (%+v)", app.Name, s)
		}
	}
}
