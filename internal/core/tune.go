package core

import (
	"fmt"
	"sort"

	"clperf/internal/cpu"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/predict"
	"clperf/internal/search"
	"clperf/internal/units"
)

// maxEnumLocal caps enumerated workgroup sizes even on devices that
// would accept more: beyond 1024 workitems per group the model's search
// space grows without any configuration the paper's runtimes accept.
const maxEnumLocal = 1024

// BestWorkgroup searches workgroup sizes for the launch and returns the
// fastest one under the model, holding the global size fixed. Every
// divisor of the global size up to min(1024, device max workgroup size)
// is tried, and the caller's own geometry is always among the
// candidates, so the result is never slower than the input: at worst
// the input configuration itself comes back.
func (ad *Advisor) BestWorkgroup(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (ir.NDRange, units.Duration, error) {
	// The requested geometry leads the candidate list (with NULL local
	// resolved the way the runtime would) so ties and regressions both
	// settle in its favor.
	requested := ad.Dev.ResolveLocal(nd)
	candidates := append([]ir.NDRange{requested}, workgroupCandidates(nd, ad.Dev.MaxWorkgroup())...)
	candidates = ad.pruneCandidates(k, args, requested, candidates)

	launches := make([]search.Launch, len(candidates))
	for i, c := range candidates {
		launches[i] = search.Launch{Kernel: k, Args: args, ND: c}
	}
	results, errs := ad.estimateAll("wg:"+k.Name, launches)

	var (
		best     ir.NDRange
		bestTime units.Duration
		found    bool
	)
	for i, res := range results {
		if errs[i] != nil {
			continue
		}
		if !found || res.Time < bestTime {
			best, bestTime, found = candidates[i], res.Time, true
		}
	}
	if !found {
		return nd, 0, fmt.Errorf("core: no valid workgroup size for %s", nd)
	}
	return best, bestTime, nil
}

// pruneCandidates applies the learned cost predictor: one feature
// extraction at the requested geometry (memoized across the tune's
// candidate loop), pure-arithmetic scoring of every candidate, and a
// top-k cut that always keeps the requested configuration (index 0) so
// tuning can never regress the caller's own geometry. Multi-dimensional
// searches additionally keep a per-edge cover (dimCover) as insurance
// against the frozen-geometry features mis-ranking a whole row of the
// candidate grid. The survivors are
// returned in their original order, preserving the exact search's
// first-wins tie-breaking over the surviving subset. Full search is the
// fallback whenever the predictor is absent, the candidate set is
// already within budget, or feature extraction fails.
func (ad *Advisor) pruneCandidates(k *ir.Kernel, args *ir.Args, requested ir.NDRange, candidates []ir.NDRange) []ir.NDRange {
	if ad.Pred == nil {
		return candidates
	}
	topk := ad.TopK
	if topk <= 0 {
		topk = predict.DefaultK
	}
	if len(candidates) <= topk+1 {
		return candidates
	}
	f, err := ir.ExtractFeatures(k, args, requested)
	if err != nil {
		return candidates
	}
	footprint := predict.ArgBytes(args)
	scores := make([]float64, len(candidates))
	for i, c := range candidates {
		scores[i] = ad.Pred.Score(predict.Input{
			F: f, Arch: ad.Dev.A, ND: c,
			Footprint: footprint, ForceScalar: ad.Dev.ForceScalar,
		})
	}
	keep := predict.TopK(scores, topk, dimCover(candidates, scores)...)
	out := make([]ir.NDRange, len(keep))
	for i, idx := range keep {
		out[i] = candidates[idx]
	}
	if ad.Eval != nil {
		ad.Eval.NotePruned(len(candidates), len(out))
	}
	return out
}

// dimCover returns the always-keep indices for a pruned multi-dimensional
// search: index 0 (the requested configuration) plus, for 2-D ranges, the
// best-scored candidate along each distinct local edge (every local[0]
// row and local[1] column). Features are extracted once at the requested
// geometry, so a kernel whose loop bounds follow get_local_size — the
// blocked matrixMul's tile loops — can mis-rank entire rows of the 2-D
// candidate grid; covering every edge with its own cheapest member keeps
// at least one exact evaluation in each, bounding the damage to the
// model's within-row error. 1-D searches need no cover (each candidate
// is its own row, and the cover would defeat the cut).
func dimCover(candidates []ir.NDRange, scores []float64) []int {
	keep := []int{0}
	if len(candidates) == 0 || candidates[0].Dims() < 2 {
		return keep
	}
	bestRow := map[int]int{}
	bestCol := map[int]int{}
	for i, c := range candidates {
		r, cl := c.Local[0], c.Local[1]
		if j, ok := bestRow[r]; !ok || scores[i] < scores[j] {
			bestRow[r] = i
		}
		if j, ok := bestCol[cl]; !ok || scores[i] < scores[j] {
			bestCol[cl] = i
		}
	}
	for _, i := range bestRow {
		keep = append(keep, i)
	}
	for _, i := range bestCol {
		keep = append(keep, i)
	}
	return keep
}

// workgroupCandidates enumerates the legal workgroup geometries for nd:
// every divisor of each searched dimension's global size, capped at
// min(maxEnumLocal, maxWG) workitems per group. OpenCL 1.x requires the
// local size to divide the global size exactly, so divisors are the
// complete candidate set — the paper's Binomialoption local size of 255
// (global 255000) is as reachable as any power of two.
func workgroupCandidates(nd ir.NDRange, maxWG int) []ir.NDRange {
	limit := maxEnumLocal
	if maxWG > 0 && maxWG < limit {
		limit = maxWG
	}
	g0 := nd.Global[0]
	if g0 == 0 {
		g0 = 1
	}
	if nd.Dims() >= 2 {
		g1 := nd.Global[1]
		if g1 == 0 {
			g1 = 1
		}
		d0 := divisorsLE(g0, limit)
		d1 := divisorsLE(g1, limit)
		// Count the surviving pairs first so the slice is allocated once;
		// d1 is ascending, so each row's cut-off is a prefix length.
		n := 0
		for _, e := range d0 {
			for _, f := range d1 {
				if e*f > limit {
					break
				}
				n++
			}
		}
		out := make([]ir.NDRange, 0, n)
		seen := make(map[[3]int]struct{}, n)
		for _, e := range d0 {
			for _, f := range d1 {
				if e*f > limit {
					break
				}
				local := [3]int{e, f, 1}
				if _, dup := seen[local]; dup {
					continue
				}
				seen[local] = struct{}{}
				out = append(out, nd.WithLocal(local))
			}
		}
		return out
	}
	// 1-D: divisorsLE is ascending and duplicate-free, so the divisor
	// list maps straight onto the candidate list.
	d0 := divisorsLE(g0, limit)
	out := make([]ir.NDRange, len(d0))
	for i, l := range d0 {
		out[i] = nd.WithLocal([3]int{l, 1, 1})
	}
	return out
}

// divisorsLE returns every divisor of n that is <= limit, ascending.
func divisorsLE(n, limit int) []int {
	if n < 1 {
		return []int{1}
	}
	var ds []int
	for i := 1; i*i <= n; i++ {
		if n%i != 0 {
			continue
		}
		if i <= limit {
			ds = append(ds, i)
		}
		if j := n / i; j != i && j <= limit {
			ds = append(ds, j)
		}
	}
	sort.Ints(ds)
	return ds
}

// TuneResult is the outcome of a full launch-parameter search.
type TuneResult struct {
	// Baseline is the time at the requested configuration.
	Baseline units.Duration
	// ND is the chosen geometry (after coarsening).
	ND ir.NDRange
	// Coarsen is the chosen workitems-per-item factor (1 = none).
	Coarsen int
	// Kernel is the transformed kernel to launch.
	Kernel *ir.Kernel
	// Time is the model's estimate for the tuned configuration.
	Time units.Duration
}

// Gain returns the estimated speedup of the tuned configuration.
func (t *TuneResult) Gain() float64 {
	if t.Time <= 0 {
		return 1
	}
	return float64(t.Baseline) / float64(t.Time)
}

// Tune searches workgroup sizes and coarsening factors jointly, returning
// the best configuration the model can find — the automated version of the
// paper's hand-tuning in sections III-B. The result never regresses the
// requested configuration: Time <= Baseline always, with equality when no
// candidate improves on it.
func (ad *Advisor) Tune(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*TuneResult, error) {
	base, err := ad.estimate(k, args, nd)
	if err != nil {
		return nil, err
	}
	result := &TuneResult{
		Baseline: base.Time,
		ND:       base.ND,
		Coarsen:  1,
		Kernel:   k,
		Time:     base.Time,
	}
	for _, factor := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		ck := k
		cnd := nd
		if factor > 1 {
			var err error
			// A factor that doesn't apply — the kernel is structurally
			// uncoarsenable or the factor doesn't divide the global size —
			// just excludes this point from the search; later factors may
			// still divide evenly, so both failures skip, never abort.
			ck, err = kernels.Coarsen(k, factor)
			if err != nil {
				continue
			}
			cnd, err = kernels.CoarsenRange(nd, factor)
			if err != nil {
				continue
			}
		}
		best, t, err := ad.BestWorkgroup(ck, args, cnd)
		if err != nil {
			continue
		}
		if t < result.Time {
			result.ND = best
			result.Coarsen = factor
			result.Kernel = ck
			result.Time = t
		}
	}
	return result, nil
}

// estimate prices one launch through the advisor's evaluator (direct
// device estimation when no evaluator is attached).
func (ad *Advisor) estimate(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*cpu.Result, error) {
	if ad.Eval != nil {
		return ad.Eval.Estimate(k, args, nd)
	}
	return ad.Dev.Estimate(k, args, nd)
}

// estimateAll prices a candidate set, in parallel when an evaluator is
// attached and serially otherwise.
func (ad *Advisor) estimateAll(label string, launches []search.Launch) ([]*cpu.Result, []error) {
	if ad.Eval != nil {
		return ad.Eval.EstimateAll(label, launches)
	}
	res := make([]*cpu.Result, len(launches))
	errs := make([]error, len(launches))
	for i, l := range launches {
		res[i], errs[i] = ad.Dev.Estimate(l.Kernel, l.Args, l.ND)
	}
	return res, errs
}
