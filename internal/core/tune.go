package core

import (
	"fmt"
	"sort"

	"clperf/internal/cpu"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/search"
	"clperf/internal/units"
)

// maxEnumLocal caps enumerated workgroup sizes even on devices that
// would accept more: beyond 1024 workitems per group the model's search
// space grows without any configuration the paper's runtimes accept.
const maxEnumLocal = 1024

// BestWorkgroup searches workgroup sizes for the launch and returns the
// fastest one under the model, holding the global size fixed. Every
// divisor of the global size up to min(1024, device max workgroup size)
// is tried, and the caller's own geometry is always among the
// candidates, so the result is never slower than the input: at worst
// the input configuration itself comes back.
func (ad *Advisor) BestWorkgroup(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (ir.NDRange, units.Duration, error) {
	// The requested geometry leads the candidate list (with NULL local
	// resolved the way the runtime would) so ties and regressions both
	// settle in its favor.
	requested := ad.Dev.ResolveLocal(nd)
	candidates := append([]ir.NDRange{requested}, workgroupCandidates(nd, ad.Dev.MaxWorkgroup())...)

	launches := make([]search.Launch, len(candidates))
	for i, c := range candidates {
		launches[i] = search.Launch{Kernel: k, Args: args, ND: c}
	}
	results, errs := ad.estimateAll("wg:"+k.Name, launches)

	var (
		best     ir.NDRange
		bestTime units.Duration
		found    bool
	)
	for i, res := range results {
		if errs[i] != nil {
			continue
		}
		if !found || res.Time < bestTime {
			best, bestTime, found = candidates[i], res.Time, true
		}
	}
	if !found {
		return nd, 0, fmt.Errorf("core: no valid workgroup size for %s", nd)
	}
	return best, bestTime, nil
}

// workgroupCandidates enumerates the legal workgroup geometries for nd:
// every divisor of each searched dimension's global size, capped at
// min(maxEnumLocal, maxWG) workitems per group. OpenCL 1.x requires the
// local size to divide the global size exactly, so divisors are the
// complete candidate set — the paper's Binomialoption local size of 255
// (global 255000) is as reachable as any power of two.
func workgroupCandidates(nd ir.NDRange, maxWG int) []ir.NDRange {
	limit := maxEnumLocal
	if maxWG > 0 && maxWG < limit {
		limit = maxWG
	}
	g0 := nd.Global[0]
	if g0 == 0 {
		g0 = 1
	}
	var out []ir.NDRange
	if nd.Dims() >= 2 {
		g1 := nd.Global[1]
		if g1 == 0 {
			g1 = 1
		}
		for _, e := range divisorsLE(g0, limit) {
			for _, f := range divisorsLE(g1, limit) {
				if e*f <= limit {
					out = append(out, nd.WithLocal([3]int{e, f, 1}))
				}
			}
		}
		return out
	}
	for _, l := range divisorsLE(g0, limit) {
		out = append(out, nd.WithLocal([3]int{l, 1, 1}))
	}
	return out
}

// divisorsLE returns every divisor of n that is <= limit, ascending.
func divisorsLE(n, limit int) []int {
	if n < 1 {
		return []int{1}
	}
	var ds []int
	for i := 1; i*i <= n; i++ {
		if n%i != 0 {
			continue
		}
		if i <= limit {
			ds = append(ds, i)
		}
		if j := n / i; j != i && j <= limit {
			ds = append(ds, j)
		}
	}
	sort.Ints(ds)
	return ds
}

// TuneResult is the outcome of a full launch-parameter search.
type TuneResult struct {
	// Baseline is the time at the requested configuration.
	Baseline units.Duration
	// ND is the chosen geometry (after coarsening).
	ND ir.NDRange
	// Coarsen is the chosen workitems-per-item factor (1 = none).
	Coarsen int
	// Kernel is the transformed kernel to launch.
	Kernel *ir.Kernel
	// Time is the model's estimate for the tuned configuration.
	Time units.Duration
}

// Gain returns the estimated speedup of the tuned configuration.
func (t *TuneResult) Gain() float64 {
	if t.Time <= 0 {
		return 1
	}
	return float64(t.Baseline) / float64(t.Time)
}

// Tune searches workgroup sizes and coarsening factors jointly, returning
// the best configuration the model can find — the automated version of the
// paper's hand-tuning in sections III-B. The result never regresses the
// requested configuration: Time <= Baseline always, with equality when no
// candidate improves on it.
func (ad *Advisor) Tune(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*TuneResult, error) {
	base, err := ad.estimate(k, args, nd)
	if err != nil {
		return nil, err
	}
	result := &TuneResult{
		Baseline: base.Time,
		ND:       base.ND,
		Coarsen:  1,
		Kernel:   k,
		Time:     base.Time,
	}
	for _, factor := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		ck := k
		cnd := nd
		if factor > 1 {
			var err error
			// A factor that doesn't apply — the kernel is structurally
			// uncoarsenable or the factor doesn't divide the global size —
			// just excludes this point from the search; later factors may
			// still divide evenly, so both failures skip, never abort.
			ck, err = kernels.Coarsen(k, factor)
			if err != nil {
				continue
			}
			cnd, err = kernels.CoarsenRange(nd, factor)
			if err != nil {
				continue
			}
		}
		best, t, err := ad.BestWorkgroup(ck, args, cnd)
		if err != nil {
			continue
		}
		if t < result.Time {
			result.ND = best
			result.Coarsen = factor
			result.Kernel = ck
			result.Time = t
		}
	}
	return result, nil
}

// estimate prices one launch through the advisor's evaluator (direct
// device estimation when no evaluator is attached).
func (ad *Advisor) estimate(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*cpu.Result, error) {
	if ad.Eval != nil {
		return ad.Eval.Estimate(k, args, nd)
	}
	return ad.Dev.Estimate(k, args, nd)
}

// estimateAll prices a candidate set, in parallel when an evaluator is
// attached and serially otherwise.
func (ad *Advisor) estimateAll(label string, launches []search.Launch) ([]*cpu.Result, []error) {
	if ad.Eval != nil {
		return ad.Eval.EstimateAll(label, launches)
	}
	res := make([]*cpu.Result, len(launches))
	errs := make([]error, len(launches))
	for i, l := range launches {
		res[i], errs[i] = ad.Dev.Estimate(l.Kernel, l.Args, l.ND)
	}
	return res, errs
}
