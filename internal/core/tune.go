package core

import (
	"fmt"

	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/units"
)

// BestWorkgroup searches workgroup sizes for the launch and returns the
// fastest one under the model, holding the global size fixed. For 2-D
// kernels square-ish tiles are tried; for 1-D kernels powers of two up to
// 1024 (all clipped to divisors of the global size).
func (ad *Advisor) BestWorkgroup(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (ir.NDRange, units.Duration, error) {
	candidates := workgroupCandidates(nd)
	var (
		best     ir.NDRange
		bestTime units.Duration
		found    bool
	)
	for _, c := range candidates {
		res, err := ad.Dev.Estimate(k, args, c)
		if err != nil {
			continue
		}
		if !found || res.Time < bestTime {
			best, bestTime, found = c, res.Time, true
		}
	}
	if !found {
		return nd, 0, fmt.Errorf("core: no valid workgroup size for %s", nd)
	}
	return best, bestTime, nil
}

func workgroupCandidates(nd ir.NDRange) []ir.NDRange {
	var out []ir.NDRange
	g0 := nd.Global[0]
	if g0 == 0 {
		g0 = 1
	}
	if nd.Dims() >= 2 {
		g1 := nd.Global[1]
		for _, e := range []int{1, 2, 4, 8, 16, 32} {
			for _, f := range []int{1, 2, 4, 8, 16, 32} {
				if g0%e == 0 && g1%f == 0 && e*f <= 1024 {
					out = append(out, nd.WithLocal([3]int{e, f, 1}))
				}
			}
		}
		return out
	}
	for l := 1; l <= 1024; l *= 2 {
		if l <= g0 && g0%l == 0 {
			out = append(out, nd.WithLocal([3]int{l, 1, 1}))
		}
	}
	// Non-power-of-two globals: include the largest divisors too.
	for _, l := range []int{g0, g0 / 2, g0 / 4} {
		if l >= 1 && l <= 1024 && g0%l == 0 {
			out = append(out, nd.WithLocal([3]int{l, 1, 1}))
		}
	}
	return out
}

// TuneResult is the outcome of a full launch-parameter search.
type TuneResult struct {
	// Baseline is the time at the requested configuration.
	Baseline units.Duration
	// ND is the chosen geometry (after coarsening).
	ND ir.NDRange
	// Coarsen is the chosen workitems-per-item factor (1 = none).
	Coarsen int
	// Kernel is the transformed kernel to launch.
	Kernel *ir.Kernel
	// Time is the model's estimate for the tuned configuration.
	Time units.Duration
}

// Gain returns the estimated speedup of the tuned configuration.
func (t *TuneResult) Gain() float64 {
	if t.Time <= 0 {
		return 1
	}
	return float64(t.Baseline) / float64(t.Time)
}

// Tune searches workgroup sizes and coarsening factors jointly, returning
// the best configuration the model can find — the automated version of the
// paper's hand-tuning in sections III-B.
func (ad *Advisor) Tune(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*TuneResult, error) {
	base, err := ad.Dev.Estimate(k, args, nd)
	if err != nil {
		return nil, err
	}
	result := &TuneResult{
		Baseline: base.Time,
		ND:       base.ND,
		Coarsen:  1,
		Kernel:   k,
		Time:     base.Time,
	}
	for _, factor := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		ck := k
		cnd := nd
		if factor > 1 {
			var err error
			ck, err = kernels.Coarsen(k, factor)
			if err != nil {
				break // kernel not coarsenable; workgroup search only
			}
			cnd, err = kernels.CoarsenRange(nd, factor)
			if err != nil {
				continue
			}
		}
		best, t, err := ad.BestWorkgroup(ck, args, cnd)
		if err != nil {
			continue
		}
		if t < result.Time {
			result.ND = best
			result.Coarsen = factor
			result.Kernel = ck
			result.Time = t
		}
	}
	return result, nil
}
