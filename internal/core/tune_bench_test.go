package core

import (
	"testing"

	"clperf/internal/ir"
)

// The enumeration feeds every Tune call (11 coarsening factors x one
// candidate set each), so its allocation behavior is on the tuner's hot
// path. 255000 is the paper's Binomialoption global size — the largest
// 1-D divisor set in the suite — and 1024x768 the densest 2-D grid.
func BenchmarkWorkgroupCandidates(b *testing.B) {
	b.Run("1d-binomial", func(b *testing.B) {
		nd := ir.Range1D(255000, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(workgroupCandidates(nd, 1024)) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
	b.Run("2d-matmul", func(b *testing.B) {
		nd := ir.Range2D(1024, 768, 0, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(workgroupCandidates(nd, 1024)) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
}

// The candidate list must stay duplicate-free in 2-D too (the 1-D case
// is pinned by TestWorkgroupCandidatesCoverAllDivisors).
func TestWorkgroupCandidates2DNoDuplicates(t *testing.T) {
	nd := ir.Range2D(1024, 768, 0, 0)
	seen := map[[3]int]bool{}
	for _, c := range workgroupCandidates(nd, 1024) {
		if seen[c.Local] {
			t.Fatalf("duplicate candidate %v", c.Local)
		}
		seen[c.Local] = true
	}
}
