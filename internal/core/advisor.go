// Package core is the paper's contribution as a library: a performance
// model and advisor for OpenCL-style kernels on multicore CPUs.
//
// Given a kernel, its arguments and a launch geometry, Analyze prices the
// launch on the CPU device model, decomposes where the time goes
// (scheduling overhead, compute, memory bandwidth, transfer) and emits the
// paper's five findings as quantified, actionable advice:
//
//  1. large workgroups amortize scheduling overhead (section III-B);
//  2. workitem coarsening amortizes per-item overhead (section III-B);
//  3. independent instructions (ILP) keep the out-of-order core busy
//     (section III-C);
//  4. mapping APIs beat explicit copies for host<->device data
//     (section III-D);
//  5. implicit vectorization needs SIMD-friendly kernels — no atomics, no
//     scalar math-library calls, unit-stride accesses (section III-F).
//
// Tune (tune.go) turns the advice into action by searching launch
// parameters against the model.
package core

import (
	"fmt"
	"sort"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/predict"
	"clperf/internal/search"
	"clperf/internal/units"
)

// Rule identifies which of the paper's guidelines a finding instantiates.
type Rule int

// Rules, in paper order.
const (
	RuleWorkgroupSize Rule = iota
	RuleCoarsening
	RuleILP
	RuleTransferAPI
	RuleVectorization
	RuleAffinity
	RuleMemoryBound
)

var ruleNames = map[Rule]string{
	RuleWorkgroupSize: "workgroup-size",
	RuleCoarsening:    "workitem-coarsening",
	RuleILP:           "instruction-level-parallelism",
	RuleTransferAPI:   "transfer-api",
	RuleVectorization: "vectorization",
	RuleAffinity:      "affinity",
	RuleMemoryBound:   "memory-bound",
}

// String returns the rule's slug.
func (r Rule) String() string { return ruleNames[r] }

// Severity grades a finding.
type Severity int

// Severities.
const (
	Info Severity = iota
	Advice
	Warning
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case Warning:
		return "warning"
	case Advice:
		return "advice"
	default:
		return "info"
	}
}

// Finding is one quantified observation about a launch.
type Finding struct {
	Rule     Rule
	Severity Severity
	Message  string
	// Gain estimates the speedup factor available by following the advice
	// (1 when purely informational).
	Gain float64
}

// String formats the finding.
func (f Finding) String() string {
	if f.Gain > 1.001 {
		return fmt.Sprintf("[%s] %s: %s (est. %.2fx)", f.Severity, f.Rule, f.Message, f.Gain)
	}
	return fmt.Sprintf("[%s] %s: %s", f.Severity, f.Rule, f.Message)
}

// Breakdown decomposes a launch's simulated time.
type Breakdown struct {
	// DispatchShare is the fraction spent scheduling workgroups.
	DispatchShare float64
	// OverheadShare is the fraction spent on per-workitem runtime
	// bookkeeping.
	OverheadShare float64
	// MemoryBound reports that the bandwidth floor, not compute, sets the
	// kernel time.
	MemoryBound bool
	// ILP is the kernel's instruction-level parallelism.
	ILP float64
	// SerialBound reports that the dependence chain, not issue throughput,
	// dominates the per-packet cost.
	SerialBound bool
	// Vectorized and Width describe the implicit vectorizer's outcome.
	Vectorized bool
	Width      int
	// PackedFrac is the fraction of memory operations that vectorize into
	// packed accesses.
	PackedFrac float64
	// OperationalIntensity is flops per byte of memory traffic; with
	// AttainableGFlops it places the kernel on the device's roofline.
	OperationalIntensity float64
	// AttainableGFlops is the roofline bound min(peak, intensity*bandwidth)
	// for this kernel on this device.
	AttainableGFlops float64
}

// Report is the advisor's output for one launch.
type Report struct {
	Kernel     string
	ND         ir.NDRange
	Time       units.Duration
	Throughput units.Throughput
	Breakdown  Breakdown
	Findings   []Finding
	// Result is the underlying device-model result.
	Result *cpu.Result
}

// Render returns a human-readable report.
func (r *Report) Render() string {
	s := fmt.Sprintf("kernel %s over %s: %v (%v)\n", r.Kernel, r.ND, r.Time, r.Throughput)
	b := r.Breakdown
	s += fmt.Sprintf("  dispatch %.1f%%, per-item overhead %.1f%%, ILP %.2f, vector width %d, packed accesses %.0f%%\n",
		100*b.DispatchShare, 100*b.OverheadShare, b.ILP, b.Width, 100*b.PackedFrac)
	s += fmt.Sprintf("  roofline: %.2f flops/byte -> attainable %.1f GFlop/s (achieved %.1f)\n",
		b.OperationalIntensity, b.AttainableGFlops, r.Throughput.GFlops())
	for _, f := range r.Findings {
		s += "  " + f.String() + "\n"
	}
	return s
}

// Advisor prices launches and produces findings against one CPU.
type Advisor struct {
	Dev *cpu.Device
	// Eval memoizes and parallelizes Dev.Estimate for the advisor's
	// searches (BestWorkgroup, Tune, Analyze). NewAdvisor attaches one;
	// nil falls back to direct serial estimation. Set Eval.Cache = nil to
	// keep the worker pool but disable memoization (the -nocache A/B
	// path), or Eval.Workers = 1 to force serial evaluation when the
	// device records onto an order-sensitive recorder.
	Eval *search.Evaluator[*cpu.Result]
	// Pred, when set, prunes workgroup searches: every candidate is
	// scored by the learned cost predictor and only the TopK survivors
	// (plus the requested configuration, which is never dropped) go
	// through the exact model. Nil runs the full exhaustive search — the
	// -nopredict A/B path, byte-identical to the pre-predictor tuner.
	Pred *predict.Predictor
	// TopK is the surviving candidate count (predict.DefaultK when 0).
	TopK int
}

// NewAdvisor returns an advisor for the paper's CPU (or any other arch),
// with a memoized parallel evaluator and the default learned cost
// predictor attached.
func NewAdvisor(a *arch.CPU) *Advisor {
	if a == nil {
		a = arch.XeonE5645()
	}
	ad := &Advisor{Dev: cpu.New(a), Pred: predict.Default()}
	ad.Eval = search.NewEvaluator(ad.Dev.Fingerprint, ad.Dev.Estimate,
		search.NewCache(0), func() *obs.Recorder { return ad.Dev.Obs })
	return ad
}

// Analyze prices the launch and derives findings. Buffers in args may be
// unfilled; only geometry, types and scalar values are consulted.
func (ad *Advisor) Analyze(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*Report, error) {
	res, err := ad.estimate(k, args, nd)
	if err != nil {
		return nil, err
	}
	a := ad.Dev.A
	cost := res.Cost
	rep := &Report{
		Kernel:     k.Name,
		ND:         res.ND,
		Time:       res.Time,
		Throughput: res.Throughput(),
		Result:     res,
	}

	packet := cost.PacketCycles(1)
	b := &rep.Breakdown
	b.DispatchShare = clamp01(float64(res.Dispatch) / float64(res.Time))
	b.OverheadShare = clamp01(cost.Overhead / (packet + 1e-12) *
		float64(res.Compute-res.Dispatch) / float64(res.Time))
	b.MemoryBound = res.MemFloor >= res.Compute
	b.ILP = cost.Profile.ILP(a.Lat)
	b.SerialBound = cost.SerialCycles > (cost.IssueCycles + cost.Overhead)
	b.Vectorized = cost.Vec != nil && cost.Vec.Vectorized
	b.Width = cost.Width
	if cost.Vec != nil {
		b.PackedFrac = cost.Vec.PackedFrac
	}

	// Roofline placement: flops per byte against the device's memory
	// bandwidth and FP peak.
	if cost.TrafficPerItem > 0 {
		b.OperationalIntensity = cost.Profile.Counts.Flops() / cost.TrafficPerItem
		attainable := b.OperationalIntensity * float64(a.MemBandwidth)
		if peak := float64(a.PeakFlops()); attainable > peak {
			attainable = peak
		}
		b.AttainableGFlops = attainable / 1e9
	} else {
		b.AttainableGFlops = float64(a.PeakFlops()) / 1e9
	}

	ad.findScheduling(rep, k, args, nd)
	ad.findILP(rep)
	ad.findVectorization(rep, nd)
	if b.MemoryBound {
		rep.Findings = append(rep.Findings, Finding{
			Rule: RuleMemoryBound, Severity: Info, Gain: 1,
			Message: fmt.Sprintf("kernel is bandwidth-bound (floor %v vs compute %v); launch tuning cannot help beyond the floor",
				res.MemFloor, res.Compute),
		})
	}
	sortFindings(rep.Findings)
	return rep, nil
}

func (ad *Advisor) findScheduling(rep *Report, k *ir.Kernel, args *ir.Args, nd ir.NDRange) {
	// Workgroup size: compare against the best size the model finds.
	best, bestTime, err := ad.BestWorkgroup(k, args, nd)
	if err == nil && bestTime > 0 {
		gain := float64(rep.Time) / float64(bestTime)
		if gain > 1.05 {
			sev := Advice
			if gain > 1.5 {
				sev = Warning
			}
			msg := fmt.Sprintf("workgroup size %s is below the optimum; use %s", localString(rep.ND), localString(best))
			if rep.ND.LocalNull() {
				msg = fmt.Sprintf("NULL workgroup size resolves to %s; set %s explicitly", localString(rep.ND), localString(best))
			}
			rep.Findings = append(rep.Findings, Finding{
				Rule: RuleWorkgroupSize, Severity: sev, Message: msg, Gain: gain,
			})
		}
	}

	// Coarsening: small per-item work drowns in per-item overhead.
	cost := rep.Result.Cost
	work := cost.IssueCycles
	if work > 0 && cost.Overhead/work > 0.5 {
		rep.Findings = append(rep.Findings, Finding{
			Rule:     RuleCoarsening,
			Severity: Advice,
			Message: fmt.Sprintf("per-workitem work (%.0f cycles) is small next to runtime overhead (%.0f cycles); coalesce several workitems into one",
				work, cost.Overhead),
			Gain: (work + cost.Overhead) / work,
		})
	}
}

func (ad *Advisor) findILP(rep *Report) {
	b := rep.Breakdown
	if b.SerialBound && b.ILP < 2 && !b.MemoryBound {
		cost := rep.Result.Cost
		gain := cost.SerialCycles / maxf(cost.IssueCycles+cost.Overhead, 1)
		rep.Findings = append(rep.Findings, Finding{
			Rule:     RuleILP,
			Severity: Advice,
			Message: fmt.Sprintf("dependence chain (%.0f cycles) dominates issue (%.0f); restructure for independent instruction streams",
				cost.SerialCycles, cost.IssueCycles),
			Gain: gain,
		})
	}
}

func (ad *Advisor) findVectorization(rep *Report, nd ir.NDRange) {
	vec := rep.Result.Cost.Vec
	if vec == nil {
		return
	}
	if !vec.Vectorized {
		rep.Findings = append(rep.Findings, Finding{
			Rule:     RuleVectorization,
			Severity: Warning,
			Message:  fmt.Sprintf("kernel does not vectorize: %s", vec.ScalarReason),
			Gain:     float64(ad.Dev.A.SIMDWidth),
		})
		return
	}
	if l0 := rep.ND.Local[0]; l0 > 0 && l0 < ad.Dev.A.SIMDWidth {
		rep.Findings = append(rep.Findings, Finding{
			Rule:     RuleVectorization,
			Severity: Warning,
			Message: fmt.Sprintf("workgroup dimension 0 is %d, narrower than the %d-lane SIMD unit; lanes go idle",
				l0, ad.Dev.A.SIMDWidth),
			Gain: float64(ad.Dev.A.SIMDWidth) / float64(l0),
		})
	}
	if vec.PackedFrac < 0.75 {
		rep.Findings = append(rep.Findings, Finding{
			Rule:     RuleVectorization,
			Severity: Advice,
			Message: fmt.Sprintf("only %.0f%% of memory accesses are unit-stride; strided/gathered accesses fall back to scalar element loads",
				100*vec.PackedFrac),
			Gain: 1,
		})
	}
}

// TransferAdvice compares the copy and map APIs for moving n bytes to or
// from the device, instantiating guideline 4.
func (ad *Advisor) TransferAdvice(n int64) Finding {
	a := ad.Dev.A
	copyT := a.CopyOverhead + a.CopyBandwidth.Transfer(units.ByteSize(n))
	mapT := a.MapOverhead
	gain := float64(copyT) / float64(mapT)
	return Finding{
		Rule:     RuleTransferAPI,
		Severity: Advice,
		Message: fmt.Sprintf("moving %v: clEnqueueRead/WriteBuffer costs %v, clEnqueueMapBuffer %v; prefer mapping",
			units.ByteSize(n), copyT, mapT),
		Gain: gain,
	}
}

func localString(nd ir.NDRange) string {
	if nd.LocalNull() {
		return "NULL"
	}
	d := nd.Dims()
	s := ""
	for i := 0; i < d; i++ {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(maxi(nd.Local[i], 1))
	}
	return s
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		return fs[i].Gain > fs[j].Gain
	})
}
