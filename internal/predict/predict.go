// Package predict implements the learned cost predictor that prunes the
// tuner's exhaustive workgroup search: a stdlib-only linear regression
// over architecture-independent kernel features (ir.ExtractFeatures,
// per Johnston et al.'s AIWC characterization) crossed with the arch
// parameters of the target CPU (per Chilukuri & Milthorpe's
// regression-based OpenCL performance prediction, PAPERS.md).
//
// The model form is a weighted sum of physically-motivated basis terms
// that mirror the exact cost model's arithmetic — per-worker dispatch,
// issue-bound packet cycles, dependence-bound cycles, barrier crossings
// with cache-spill indicators, a bandwidth floor — so the fitted weights
// land near 1 and the predictor ranks candidates the way Device.Estimate
// does, at a fraction of the cost: one feature extraction per kernel,
// then pure arithmetic per candidate geometry.
//
// Tuners score every candidate with Score, keep the TopK survivors
// (always retaining the requested configuration, so tuning never
// regresses), and re-rank only those through the exact model. The
// checked-in coefficients (coeffs.go) are fit offline over the device
// zoo (arch.CPUZoo) and the registered kernels by cmd/clfit; Fit is
// deterministic, so refits reproduce the file bit for bit.
package predict

import (
	"math"
	"sort"

	"clperf/internal/arch"
	"clperf/internal/ir"
	"clperf/internal/units"
)

// NumTerms is the length of the basis vector; coefficient files record
// against these positions (see Basis for the order).
const NumTerms = 10

// DefaultK is the number of candidates the predictor keeps for exact
// re-ranking when the caller does not choose one.
const DefaultK = 8

// Input is one (kernel, device, geometry) scoring query. The NDRange
// must have its local size resolved.
type Input struct {
	F    *ir.Features
	Arch *arch.CPU
	ND   ir.NDRange
	// Footprint is the total bytes of bound buffers: it selects the
	// bandwidth-floor tier exactly as the device model does.
	Footprint int64
	// ForceScalar mirrors the device's vectorizer-off ablation knob.
	ForceScalar bool
}

// Basis maps one query to the model's basis terms, every one in
// nanoseconds (so fitted weights are dimensionless and near 1):
//
//	0: constant
//	1: per-worker workgroup dispatch
//	2: issue-bound packet cycles (port pressure by op class)
//	3: dependence-bound cycles (unit-latency serial depth after OoO overlap)
//	4: per-packet runtime bookkeeping
//	5: scalar math-library serialization
//	6: atomic serialization
//	7: barrier crossings with the cache-spill multiplier
//	8: bandwidth floor (L3 or DRAM by footprint)
//	9: fixed launch overhead
func Basis(in Input) [NumTerms]float64 {
	f, a, nd := in.F, in.Arch, in.ND

	groups := nd.NumGroups()
	items := nd.GroupItems()
	logical, phys := a.LogicalCores(), a.PhysicalCores()
	workers := groups
	if workers > logical {
		workers = logical
	}
	issueShare := 1.0
	if workers > phys {
		issueShare = a.SMTYield
	}
	perWorker := float64(groups) / float64(workers)
	if perWorker < 1 {
		perWorker = 1
	}

	// Packet width under the implicit vectorizer: workitems pack along
	// dimension 0 unless the kernel is structurally scalar.
	width := 1
	if f.Vectorizable && !in.ForceScalar {
		width = a.SIMDWidth
		if l0 := nd.Local[0]; l0 > 0 && l0 < width {
			width = l0
		}
	}
	w := float64(width)
	packets := math.Ceil(float64(items) / w)

	// Issue-port pressure per packet, in the exact model's vocabulary:
	// divides and specials occupy the multiply port for several slots,
	// packed memory sites issue one vector access, the rest gather one
	// lane at a time.
	cnt := f.Ops
	mulOps := cnt[ir.OpFMul] + cnt[ir.OpFMA] + cnt[ir.OpFDiv]*10 + cnt[ir.OpSpecial]*12
	addOps := cnt[ir.OpFAdd] + cnt[ir.OpFMA]
	intOps := cnt[ir.OpInt] + cnt[ir.OpCmp] + cnt[ir.OpSelect]
	memOps := (f.UnitSites + f.UniformSites) + (f.StridedSites+f.GatherSites)*w
	localOps := cnt[ir.OpLocalLoad] + cnt[ir.OpLocalStore]
	totalOps := mulOps + addOps + intOps + memOps + localOps
	issue := math.Max(mulOps, addOps)
	issue = math.Max(issue, (memOps+localOps)/a.MemPipes)
	issue = math.Max(issue, totalOps/a.IssueWidth)

	// Out-of-order overlap of the (unit-latency) dependence chain.
	overlap := 1.0
	if totalOps > 0 {
		overlap = a.OoOWindow / totalOps
	}
	overlap = math.Min(math.Max(overlap, 1), 8)

	cyc := func(n float64) float64 { return float64(a.Clock.Cycles(n)) }
	packet := perWorker * packets

	var t [NumTerms]float64
	t[0] = 1
	t[1] = perWorker * float64(a.GroupDispatch)
	t[2] = packet * cyc(issue/issueShare)
	t[3] = packet * cyc(f.SerialDepth/overlap)
	t[4] = packet * cyc(a.ItemOverhead/issueShare)
	t[5] = packet * cyc(cnt[ir.OpLibm]*140*w/issueShare)
	t[6] = packet * cyc(cnt[ir.OpAtomic]*a.Lat[ir.OpAtomic]*w/issueShare)

	if f.Barriers > 0 {
		state := int64(items)*a.BarrierContext + f.LocalBytes
		mult := 1.0
		switch {
		case state > int64(a.L2.Size):
			mult = 10
		case state > int64(a.L1D.Size):
			mult = 4
		}
		t[7] = perWorker * cyc(f.Barriers*(a.BarrierCost+float64(items)*a.BarrierItemCost*mult))
	}

	traffic := f.TrafficPerItem * float64(nd.GlobalItems())
	bw := a.MemBandwidth
	if in.Footprint > 0 && in.Footprint <= int64(a.L3.Size) {
		bw = a.L3Bandwidth
	}
	t[8] = float64(bw.Transfer(units.ByteSize(traffic)))

	t[9] = float64(a.LaunchOverhead)
	return t
}

// Predictor scores launch candidates with a fitted weight vector.
type Predictor struct {
	W [NumTerms]float64
}

// New returns a predictor over explicit weights (len must be NumTerms).
func New(w []float64) *Predictor {
	p := &Predictor{}
	copy(p.W[:], w)
	return p
}

// Default returns the predictor with the checked-in coefficients
// (coeffs.go, fit by cmd/clfit over the zoo and the registry).
func Default() *Predictor {
	return New(defaultWeights[:])
}

// Score predicts the launch cost in nanoseconds. Only the ordering of
// scores matters to the tuner; negative predictions (possible for an
// affine model far outside its training range) are clamped to zero.
func (p *Predictor) Score(in Input) float64 {
	b := Basis(in)
	s := 0.0
	for i, w := range p.W {
		s += w * b[i]
	}
	if s < 0 {
		return 0
	}
	return s
}

// TopK returns the indices of the k lowest scores plus every index in
// keep, ascending — the order the candidates arrived in, so downstream
// first-wins tie-breaking over the surviving subset matches a full
// search whenever the optimum survives. Ties on score break toward the
// lower index. k <= 0 means keep everything.
func TopK(scores []float64, k int, keep ...int) []int {
	n := len(scores)
	if k <= 0 || k >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] < scores[order[b]]
		}
		return order[a] < order[b]
	})
	chosen := make(map[int]bool, k+len(keep))
	for _, i := range order[:k] {
		chosen[i] = true
	}
	for _, i := range keep {
		if i >= 0 && i < n {
			chosen[i] = true
		}
	}
	out := make([]int, 0, len(chosen))
	for i := 0; i < n; i++ {
		if chosen[i] {
			out = append(out, i)
		}
	}
	return out
}

// ArgBytes returns the total bytes of bound buffers — the footprint the
// bandwidth-floor tier keys on, identical to the device model's view.
func ArgBytes(args *ir.Args) int64 {
	if args == nil {
		return 0
	}
	var n int64
	for _, b := range args.Buffers {
		if b != nil {
			n += b.Bytes()
		}
	}
	return n
}
