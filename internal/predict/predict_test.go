package predict

import (
	"testing"

	"clperf/internal/arch"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

func TestTopKKeepsAllWhenKCoversSet(t *testing.T) {
	scores := []float64{5, 3, 4, 1, 2}
	for _, k := range []int{0, -1, 5, 6, 100} {
		got := TopK(scores, k)
		if len(got) != len(scores) {
			t.Fatalf("TopK(k=%d) kept %d of %d", k, len(got), len(scores))
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("TopK(k=%d) = %v; want identity order", k, got)
			}
		}
	}
}

func TestTopKSelectsCheapestAscending(t *testing.T) {
	scores := []float64{50, 10, 40, 20, 30}
	got := TopK(scores, 2)
	// Cheapest two are indices 1 (10) and 3 (20); output must be ascending
	// by index, not by score.
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("TopK = %v; want [1 3]", got)
	}
}

func TestTopKTieBreaksToLowerIndex(t *testing.T) {
	scores := []float64{7, 7, 7, 7}
	got := TopK(scores, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("TopK on ties = %v; want [0 1]", got)
	}
}

func TestTopKAlwaysRetainsKeepIndices(t *testing.T) {
	// Index 0 is by far the most expensive candidate; the keep list must
	// force it through anyway (the requested-config guarantee).
	scores := []float64{1e12, 1, 2, 3, 4, 5}
	got := TopK(scores, 2, 0)
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(got) != 3 {
		t.Fatalf("TopK with keep = %v; want 3 survivors", got)
	}
	prev := -1
	for _, idx := range got {
		if !want[idx] {
			t.Fatalf("TopK with keep = %v; unexpected index %d", got, idx)
		}
		if idx <= prev {
			t.Fatalf("TopK with keep = %v; not ascending", got)
		}
		prev = idx
	}
}

func TestScoreDeterministicAndNonNegative(t *testing.T) {
	app := kernels.BlackScholes()
	nd := app.DefaultConfig()
	args := app.Make(nd)
	f, err := ir.ExtractFeatures(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	p := Default()
	in := Input{F: f, Arch: arch.XeonE5645(), ND: nd, Footprint: ArgBytes(args)}
	first := p.Score(in)
	if first < 0 {
		t.Fatalf("Score = %v; want >= 0", first)
	}
	for i := 0; i < 10; i++ {
		if got := p.Score(in); got != first {
			t.Fatalf("Score drifted: %v then %v", first, got)
		}
	}
}

// TestFitReproducesCheckedInCoefficients is the in-tree twin of
// `clfit -check`: the training population and the normal-equations solve
// are fully deterministic, so refitting must reproduce coeffs.go bit for
// bit. Any drift means the model, zoo or kernel registry changed without
// regenerating the file.
func TestFitReproducesCheckedInCoefficients(t *testing.T) {
	samples, err := TrainingSet()
	if err != nil {
		t.Fatal(err)
	}
	w, d, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if got := Default().W; got != w {
		t.Fatalf("checked-in coefficients do not reproduce:\n  checked in: %v\n  refit:      %v\nregenerate with: go run ./cmd/clfit > internal/predict/coeffs.go", got, w)
	}
	if d.R2 < 0.9 {
		t.Fatalf("fit quality collapsed: R2 = %v", d.R2)
	}
}
