// Package predict_test holds the pruning-quality property tests: they
// drive core.Advisor (which imports predict), so they live outside the
// predict package to keep the import graph acyclic.
package predict_test

import (
	"testing"

	"clperf/internal/arch"
	"clperf/internal/core"
	"clperf/internal/kernels"
	"clperf/internal/obs"
)

// TestPrunedTuneWithin5PctAcrossZoo is the acceptance property for the
// learned cost predictor: on every registered kernel and every zoo
// device, the predictor-pruned tune must land on a configuration whose
// exact modeled cost is within 5% of the full exhaustive search's
// optimum. The full search is the Pred == nil path (-nopredict).
func TestPrunedTuneWithin5PctAcrossZoo(t *testing.T) {
	for _, a := range arch.CPUZoo() {
		for _, app := range kernels.Registry() {
			nd := app.DefaultConfig()
			args := app.Make(nd)

			full := core.NewAdvisor(a)
			full.Pred = nil
			ftr, err := full.Tune(app.Kernel, args, nd)
			if err != nil {
				t.Fatalf("%s on %s: full tune: %v", app.Name, a.Name, err)
			}

			pruned := core.NewAdvisor(a)
			ptr, err := pruned.Tune(app.Kernel, args, nd)
			if err != nil {
				t.Fatalf("%s on %s: pruned tune: %v", app.Name, a.Name, err)
			}

			if ptr.Time > ptr.Baseline {
				t.Errorf("%s on %s: pruned tune regressed the requested config: %v > %v",
					app.Name, a.Name, ptr.Time, ptr.Baseline)
			}
			if float64(ptr.Time) > 1.05*float64(ftr.Time) {
				t.Errorf("%s on %s: pruned tune %v (%s coarsen %d) is %.1f%% above full-search optimum %v (%s coarsen %d)",
					app.Name, a.Name,
					ptr.Time, ptr.ND, ptr.Coarsen,
					100*(float64(ptr.Time)/float64(ftr.Time)-1),
					ftr.Time, ftr.ND, ftr.Coarsen)
			}
		}
	}
}

// TestPrunedTuneMatchesFullWhenKCoversAll pins the pass-through
// invariant: a top-k cut wide enough to admit every candidate must
// reproduce the full search exactly, not merely within tolerance.
func TestPrunedTuneMatchesFullWhenKCoversAll(t *testing.T) {
	for _, app := range kernels.Registry() {
		nd := app.DefaultConfig()
		args := app.Make(nd)

		full := core.NewAdvisor(nil)
		full.Pred = nil
		ftr, err := full.Tune(app.Kernel, args, nd)
		if err != nil {
			t.Fatalf("%s: full tune: %v", app.Name, err)
		}

		wide := core.NewAdvisor(nil)
		wide.TopK = 1 << 20
		wtr, err := wide.Tune(app.Kernel, args, nd)
		if err != nil {
			t.Fatalf("%s: wide tune: %v", app.Name, err)
		}

		if wtr.Time != ftr.Time || wtr.ND != ftr.ND || wtr.Coarsen != ftr.Coarsen {
			t.Errorf("%s: k-covers-all tune diverged from full search: got (%v, %s, coarsen %d), want (%v, %s, coarsen %d)",
				app.Name, wtr.Time, wtr.ND, wtr.Coarsen, ftr.Time, ftr.ND, ftr.Coarsen)
		}
	}
}

// TestPrunedSearchRecordsCounters checks that every predictor cut is
// accounted on the evaluator's recorder: scored - kept == pruned, and a
// default tune over a large candidate set actually prunes.
func TestPrunedSearchRecordsCounters(t *testing.T) {
	app := kernels.BinomialOption() // global 255000: 32 divisor candidates
	nd := app.DefaultConfig()
	args := app.Make(nd)

	ad := core.NewAdvisor(nil)
	rec := obs.NewRecorder()
	ad.Dev.Obs = rec
	if _, err := ad.Tune(app.Kernel, args, nd); err != nil {
		t.Fatal(err)
	}

	reg := rec.Registry()
	scored := reg.Counter("search.predictor.scored")
	kept := reg.Counter("search.predictor.kept")
	pruned := reg.Counter("search.pruned")
	if scored <= 0 || kept <= 0 {
		t.Fatalf("predictor counters missing: scored=%v kept=%v", scored, kept)
	}
	if pruned != scored-kept {
		t.Fatalf("search.pruned=%v; want scored-kept=%v", pruned, scored-kept)
	}
	if pruned <= 0 {
		t.Fatalf("default tune over %s pruned nothing (scored=%v kept=%v)", app.Name, scored, kept)
	}

	// The -nopredict path must not touch the predictor counters.
	off := core.NewAdvisor(nil)
	off.Pred = nil
	offRec := obs.NewRecorder()
	off.Dev.Obs = offRec
	if _, err := off.Tune(app.Kernel, args, nd); err != nil {
		t.Fatal(err)
	}
	if got := offRec.Registry().Counter("search.predictor.scored"); got != 0 {
		t.Fatalf("full search recorded predictor counters: scored=%v", got)
	}

	if kept > scored {
		t.Fatalf("kept %v exceeds scored %v", kept, scored)
	}
}
