package predict

import (
	"fmt"
	"math"
	"sort"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

// This file builds the training set and fits the model: weighted least
// squares over every (registered kernel, zoo device, sampled workgroup
// geometry, coarsening factor) combination, labeled by the exact
// Device.Estimate. Everything is deterministic — fixed registry and zoo
// order, sorted candidate enumeration, pivoted Gaussian elimination with
// no randomness — so a refit reproduces the checked-in coefficients bit
// for bit (cmd/clfit -check gates exactly that).

// Sample is one training row.
type Sample struct {
	Kernel string
	Device string
	ND     ir.NDRange
	Basis  [NumTerms]float64
	// LabelNs is the exact model's time for the launch.
	LabelNs float64
}

// maxGeomPerSearch caps how many workgroup geometries one (kernel,
// factor, device) contributes, sampled evenly across the sorted
// candidate list so both tiny and maximal groups are represented.
const maxGeomPerSearch = 12

// coarsenFactors are the workitem-coarsening variants included in
// training: the tuner prices coarsened kernels too, and their op mixes
// differ from the originals'.
var coarsenFactors = []int{1, 4, 16}

// TrainingSet builds the full deterministic training population over
// the registered kernels and the CPU zoo.
func TrainingSet() ([]Sample, error) {
	var out []Sample
	for _, app := range kernels.Registry() {
		nd := app.DefaultConfig()
		args := app.Make(nd)
		for _, factor := range coarsenFactors {
			k, cnd := app.Kernel, nd
			if factor > 1 {
				var err error
				if k, err = kernels.Coarsen(app.Kernel, factor); err != nil {
					continue
				}
				if cnd, err = kernels.CoarsenRange(nd, factor); err != nil {
					continue
				}
			}
			for _, a := range arch.CPUZoo() {
				dev := cpu.New(a)
				for _, cand := range sampleGeometries(dev.ResolveLocal(cnd), a.MaxWorkgroup) {
					f, err := ir.ExtractFeatures(k, args, cand)
					if err != nil {
						return nil, fmt.Errorf("features %s: %w", app.Name, err)
					}
					res, err := dev.Estimate(k, args, cand)
					if err != nil {
						continue // illegal geometry on this device
					}
					out = append(out, Sample{
						Kernel:  app.Name,
						Device:  a.Name,
						ND:      cand,
						Basis:   Basis(Input{F: f, Arch: a, ND: cand, Footprint: ArgBytes(args)}),
						LabelNs: float64(res.Time),
					})
				}
			}
		}
	}
	return out, nil
}

// sampleGeometries enumerates the candidate workgroup geometries for nd
// the way the tuner does (every divisor up to min(1024, maxWG)), then
// samples maxGeomPerSearch of them evenly across the sorted list.
func sampleGeometries(nd ir.NDRange, maxWG int) []ir.NDRange {
	limit := 1024
	if maxWG > 0 && maxWG < limit {
		limit = maxWG
	}
	g0 := nd.Global[0]
	if g0 == 0 {
		g0 = 1
	}
	var cands []ir.NDRange
	if nd.Dims() >= 2 {
		g1 := nd.Global[1]
		if g1 == 0 {
			g1 = 1
		}
		for _, e := range divisorsUpTo(g0, limit) {
			for _, f := range divisorsUpTo(g1, limit) {
				if e*f <= limit {
					cands = append(cands, nd.WithLocal([3]int{e, f, 1}))
				}
			}
		}
	} else {
		for _, l := range divisorsUpTo(g0, limit) {
			cands = append(cands, nd.WithLocal([3]int{l, 1, 1}))
		}
	}
	if len(cands) <= maxGeomPerSearch {
		return cands
	}
	out := make([]ir.NDRange, 0, maxGeomPerSearch)
	for i := 0; i < maxGeomPerSearch; i++ {
		out = append(out, cands[i*(len(cands)-1)/(maxGeomPerSearch-1)])
	}
	return out
}

func divisorsUpTo(n, limit int) []int {
	if n < 1 {
		return []int{1}
	}
	var ds []int
	for i := 1; i*i <= n; i++ {
		if n%i != 0 {
			continue
		}
		if i <= limit {
			ds = append(ds, i)
		}
		if j := n / i; j != i && j <= limit {
			ds = append(ds, j)
		}
	}
	sort.Ints(ds)
	return ds
}

// Diag summarizes a fit for provenance records.
type Diag struct {
	Rows int
	// R2 is the coefficient of determination in relative-error space
	// (the space the fit weights, since labels span microseconds to
	// milliseconds across the zoo).
	R2 float64
	// MaxRelErr and MeanRelErr measure |pred-label|/label over the set.
	MaxRelErr  float64
	MeanRelErr float64
}

// Fit solves the weighted least-squares problem over the samples: rows
// are weighted 1/label so the fit minimizes relative error across label
// magnitudes, with a tiny scale-adaptive ridge for numerical stability
// on collinear terms. Deterministic: same samples, same weights.
func Fit(samples []Sample) ([NumTerms]float64, Diag, error) {
	var w [NumTerms]float64
	if len(samples) < NumTerms {
		return w, Diag{}, fmt.Errorf("predict: %d samples for %d terms", len(samples), NumTerms)
	}

	// Normal equations A w = b with A = X'WX, b = X'Wy.
	var A [NumTerms][NumTerms]float64
	var b [NumTerms]float64
	for _, s := range samples {
		if s.LabelNs <= 0 {
			continue
		}
		wt := 1 / s.LabelNs
		for i := 0; i < NumTerms; i++ {
			for j := 0; j < NumTerms; j++ {
				A[i][j] += wt * s.Basis[i] * s.Basis[j]
			}
			b[i] += wt * s.Basis[i] * s.LabelNs
		}
	}
	for i := 0; i < NumTerms; i++ {
		A[i][i] += 1e-9 * (A[i][i] + 1)
	}

	sol, err := solve(A, b)
	if err != nil {
		return w, Diag{}, err
	}
	w = sol

	d := Diag{Rows: len(samples)}
	var ssRes, ssTot, mean float64
	n := 0.0
	for _, s := range samples {
		if s.LabelNs <= 0 {
			continue
		}
		mean += math.Log(s.LabelNs)
		n++
	}
	if n > 0 {
		mean /= n
	}
	for _, s := range samples {
		if s.LabelNs <= 0 {
			continue
		}
		pred := 0.0
		for i, wi := range w {
			pred += wi * s.Basis[i]
		}
		rel := math.Abs(pred-s.LabelNs) / s.LabelNs
		if rel > d.MaxRelErr {
			d.MaxRelErr = rel
		}
		d.MeanRelErr += rel
		ssRes += rel * rel
		lt := math.Log(s.LabelNs) - mean
		ssTot += lt * lt
	}
	if n > 0 {
		d.MeanRelErr /= n
	}
	if ssTot > 0 {
		d.R2 = 1 - ssRes/ssTot
	}
	return w, d, nil
}

// solve runs Gaussian elimination with partial pivoting on the
// NumTerms x NumTerms system.
func solve(A [NumTerms][NumTerms]float64, b [NumTerms]float64) ([NumTerms]float64, error) {
	var x [NumTerms]float64
	n := NumTerms
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if math.Abs(A[piv][col]) < 1e-300 {
			return x, fmt.Errorf("predict: singular normal matrix at column %d", col)
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= A[r][c] * x[c]
		}
		x[r] = s / A[r][r]
	}
	return x, nil
}
