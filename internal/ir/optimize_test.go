package ir

import (
	"math"
	"math/rand"
	"testing"
)

func TestFoldConstants(t *testing.T) {
	cases := []struct {
		in   Expr
		want string
	}{
		{Add(F(2), F(3)), "5f"},
		{Muli(I(4), I(5)), "20"},
		{Mul(V("x"), F(1)), "x"},
		{Mul(F(1), V("x")), "x"},
		{Addi(V("i"), I(0)), "i"},
		{Muli(V("i"), I(0)), "0"},
		{Div(V("x"), F(1)), "x"},
		{Select{Cond: I(1), Then: V("a"), Else: V("b")}, "a"},
		{Select{Cond: I(0), Then: V("a"), Else: V("b")}, "b"},
		{Call1(Sqrt, F(16)), "4f"},
		{ToInt{X: F(3.9)}, "3"},
		{ToFloat{X: I(7)}, "7f"},
		{Bin{Op: LtI, X: I(2), Y: I(5)}, "1"},
	}
	for _, c := range cases {
		got := FormatExpr(foldExpr(c.in))
		if got != c.want {
			t.Errorf("fold(%s) = %s, want %s", FormatExpr(c.in), got, c.want)
		}
	}
	// x*0 must NOT fold for floats (NaN/Inf semantics).
	if got := FormatExpr(foldExpr(Mul(V("x"), F(0)))); got == "0f" {
		t.Error("float x*0 must not fold")
	}
}

func TestSimplifyRemovesDeadCode(t *testing.T) {
	k := &Kernel{
		Name:    "dead",
		WorkDim: 1,
		Params:  []Param{Buf("out")},
		Body: []Stmt{
			Set("unused", Add(F(1), F(2))), // never read
			Set("x", F(5)),
			If{Cond: I(1), Then: []Stmt{Set("y", Mul(V("x"), F(2)))}}, // const cond
			For{Var: "t", Start: I(3), End: I(3), Step: I(1), // empty loop
				Body: []Stmt{Set("z", F(9))}},
			StoreF("out", Gid(0), V("y")),
		},
	}
	s := Simplify(k)
	counts := map[string]int{}
	walkStmts(s.Body, func(st Stmt) {
		switch st := st.(type) {
		case Assign:
			counts["assign:"+st.Dst]++
		case If:
			counts["if"]++
		case For:
			counts["for"]++
		}
	})
	if counts["assign:unused"] != 0 {
		t.Error("dead assignment survived")
	}
	if counts["assign:z"] != 0 || counts["for"] != 0 {
		t.Error("empty loop survived")
	}
	if counts["if"] != 0 {
		t.Error("constant if survived")
	}
	if counts["assign:y"] != 1 {
		t.Error("live assignment removed")
	}
	if err := Validate(s); err != nil {
		t.Fatalf("simplified kernel invalid: %v", err)
	}
}

func TestSimplifyShrinksParsedKernel(t *testing.T) {
	k := mustParse(t, `
	__kernel void waste(__global float *out) {
		float a = 2.0f * 3.0f + 1.0f;
		float dead = a * 100.0f;
		int i = get_global_id(0);
		out[i] = a * 1.0f + 0.0f * 0.0f;
	}`)
	s := Simplify(k)
	before, after := 0, 0
	count := func(stmts []Stmt, n *int) {
		walkStmts(stmts, func(Stmt) { *n++ })
	}
	count(k.Body, &before)
	count(s.Body, &after)
	if after >= before {
		t.Fatalf("Simplify did not shrink: %d -> %d statements", before, after)
	}
}

// Property: Simplify preserves semantics bit-for-bit on random kernels.
func TestSimplifyPreservesSemantics(t *testing.T) {
	const (
		trials = 40
		n      = 64
		local  = 16
	)
	rng := rand.New(rand.NewSource(42))
	gen := &kernelGen{rng: rng, inBufs: []string{"in0", "in1"}, n: n}
	for trial := 0; trial < trials; trial++ {
		k := gen.generate()
		s := Simplify(k)
		if err := Validate(s); err != nil {
			t.Fatalf("trial %d: simplified kernel invalid: %v\n%s", trial, err, Format(s))
		}
		mk := func() *Args {
			in0 := NewBufferF32("in0", n)
			in1 := NewBufferF32("in1", n)
			out := NewBufferF32("out", n)
			for i := 0; i < n; i++ {
				in0.Set(i, float64(i%13)-6)
				in1.Set(i, float64(i%17)*0.5-4)
			}
			return NewArgs().Bind("in0", in0).Bind("in1", in1).Bind("out", out)
		}
		orig, opt := mk(), mk()
		if err := ExecRange(k, orig, Range1D(n, local), ExecOptions{}); err != nil {
			t.Fatalf("trial %d original: %v", trial, err)
		}
		if err := ExecRange(s, opt, Range1D(n, local), ExecOptions{}); err != nil {
			t.Fatalf("trial %d simplified: %v", trial, err)
		}
		a, b := orig.Buffers["out"], opt.Buffers["out"]
		for i := 0; i < n; i++ {
			x, y := a.Get(i), b.Get(i)
			if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
				t.Fatalf("trial %d: out[%d] %v vs %v\noriginal:\n%s\nsimplified:\n%s",
					trial, i, x, y, Format(k), Format(s))
			}
		}
	}
}

// Simplified kernels must profile identically or cheaper.
func TestSimplifyNeverCostsMore(t *testing.T) {
	lat := testLat()
	nd := Range1D(256, 64)
	k := mustParse(t, `
	__kernel void poly(__global float *in, __global float *out) {
		int i = get_global_id(0);
		float x = in[i];
		float c = 1.0f + 1.0f;
		out[i] = (x * 1.0f + 0.0f) * c;
	}`)
	p0, err := ProfileKernel(k, NewArgs(), nd, lat, MaxBranch)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := ProfileKernel(Simplify(k), NewArgs(), nd, lat, MaxBranch)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Counts.Total() > p0.Counts.Total() {
		t.Fatalf("simplified op count %v exceeds original %v",
			p1.Counts.Total(), p0.Counts.Total())
	}
	if p1.Counts.Flops() >= p0.Counts.Flops() {
		t.Fatalf("simplify should remove the identity flops: %v vs %v",
			p1.Counts.Flops(), p0.Counts.Flops())
	}
}
