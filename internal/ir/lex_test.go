package ir

import (
	"strings"
	"testing"
)

func lexTexts(t *testing.T, src string) []string {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			out = append(out, tk.text)
		}
	}
	return out
}

func TestLexBasics(t *testing.T) {
	got := lexTexts(t, "int i = get_global_id(0);")
	want := []string{"int", "i", "=", "get_global_id", "(", "0", ")", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("tokens = %v", got)
	}
}

func TestLexComments(t *testing.T) {
	src := `
	// line comment with symbols +-*/
	a = 1; /* block
	         comment */ b = 2;
	#pragma OPENCL EXTENSION whatever
	c = 3;`
	got := lexTexts(t, src)
	joined := strings.Join(got, " ")
	if strings.Contains(joined, "comment") || strings.Contains(joined, "pragma") {
		t.Fatalf("comments leaked: %v", got)
	}
	for _, name := range []string{"a", "b", "c"} {
		if !strings.Contains(joined, name) {
			t.Fatalf("missing %s in %v", name, got)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":      "42",
		"3.5":     "3.5",
		"1.0f":    "1.0f",
		"2e3":     "2e3",
		"1.5e-2":  "1.5e-2",
		".25":     ".25",
		"6.02E23": "6.02E23",
	}
	for src, want := range cases {
		toks, err := lex(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if toks[0].kind != tokNumber || toks[0].text != want {
			t.Errorf("%q -> %v", src, toks[0])
		}
	}
	if _, err := lex("1e"); err == nil {
		t.Error("malformed exponent must fail")
	}
}

func TestLexMultiCharOperators(t *testing.T) {
	got := lexTexts(t, "a<<=1; b>>2; c<=d; e&&f; g+=h; i++;")
	joined := " " + strings.Join(got, " ") + " "
	for _, op := range []string{"<<=", ">>", "<=", "&&", "+=", "++"} {
		if !strings.Contains(joined, " "+op+" ") {
			t.Errorf("operator %q not tokenized as one token: %v", op, got)
		}
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	if _, err := lex("a /* never closes"); err == nil {
		t.Fatal("unterminated block comment must fail")
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := lex("a\nbb\n  ccc")
	if err != nil {
		t.Fatal(err)
	}
	wantLines := []int{1, 2, 3}
	for i, want := range wantLines {
		if toks[i].line != want {
			t.Errorf("token %d on line %d, want %d", i, toks[i].line, want)
		}
	}
}
