package ir

import (
	"math"
	"testing"
)

// squareKernel returns out[i] = in[i] * in[i].
func squareKernel() *Kernel {
	return &Kernel{
		Name:    "square",
		WorkDim: 1,
		Params:  []Param{Buf("in"), Buf("out")},
		Body: []Stmt{
			Set("i", Gid(0)),
			Set("x", LoadF("in", Vi("i"))),
			StoreF("out", Vi("i"), Mul(V("x"), V("x"))),
		},
	}
}

func runKernel(t *testing.T, k *Kernel, args *Args, nd NDRange) {
	t.Helper()
	if err := ExecRange(k, args, nd, ExecOptions{}); err != nil {
		t.Fatalf("ExecRange(%s): %v", k.Name, err)
	}
}

func TestExecSquare(t *testing.T) {
	const n = 1024
	in := NewBufferF32("in", n)
	out := NewBufferF32("out", n)
	for i := 0; i < n; i++ {
		in.Set(i, float64(i)*0.5)
	}
	args := NewArgs().Bind("in", in).Bind("out", out)
	runKernel(t, squareKernel(), args, Range1D(n, 64))
	for i := 0; i < n; i++ {
		want := float64(float32(float64(float32(float64(i)*0.5)) * float64(float32(float64(i)*0.5))))
		if out.Get(i) != want {
			t.Fatalf("out[%d] = %v, want %v", i, out.Get(i), want)
		}
	}
}

func TestExecSquareParallelMatchesSerial(t *testing.T) {
	const n = 4096
	mk := func(parallel int) []float64 {
		in := NewBufferF32("in", n)
		out := NewBufferF32("out", n)
		for i := 0; i < n; i++ {
			in.Set(i, float64(i%97)*0.25)
		}
		args := NewArgs().Bind("in", in).Bind("out", out)
		if err := ExecRange(squareKernel(), args, Range1D(n, 128), ExecOptions{Parallel: parallel}); err != nil {
			t.Fatalf("ExecRange: %v", err)
		}
		return out.Snapshot()
	}
	serial := mk(0)
	par := mk(8)
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("parallel execution diverged at %d: %v vs %v", i, serial[i], par[i])
		}
	}
}

func TestExecLoopAccumulation(t *testing.T) {
	// out[g] = sum_{j<16} a[g*16+j]
	k := &Kernel{
		Name:    "rowsum",
		WorkDim: 1,
		Params:  []Param{Buf("a"), Buf("out")},
		Body: []Stmt{
			Set("acc", F(0)),
			Loop("j", I(0), I(16),
				Set("acc", Add(V("acc"), LoadF("a", Addi(Muli(Gid(0), I(16)), Vi("j"))))),
			),
			StoreF("out", Gid(0), V("acc")),
		},
	}
	const n = 32
	a := NewBufferF32("a", n*16)
	out := NewBufferF32("out", n)
	for i := range a.Data {
		a.Set(i, 1)
	}
	runKernel(t, k, NewArgs().Bind("a", a).Bind("out", out), Range1D(n, 8))
	for g := 0; g < n; g++ {
		if out.Get(g) != 16 {
			t.Fatalf("out[%d] = %v, want 16", g, out.Get(g))
		}
	}
}

func TestExecDivergentIf(t *testing.T) {
	// Even gids write 1, odd gids write 2.
	k := &Kernel{
		Name:    "parity",
		WorkDim: 1,
		Params:  []Param{Buf("out")},
		Body: []Stmt{
			If{
				Cond: Bin{Op: EqI, X: Modi(Gid(0), I(2)), Y: I(0)},
				Then: []Stmt{StoreF("out", Gid(0), F(1))},
				Else: []Stmt{StoreF("out", Gid(0), F(2))},
			},
		},
	}
	const n = 64
	out := NewBufferF32("out", n)
	runKernel(t, k, NewArgs().Bind("out", out), Range1D(n, 16))
	for i := 0; i < n; i++ {
		want := 1.0
		if i%2 == 1 {
			want = 2
		}
		if out.Get(i) != want {
			t.Fatalf("out[%d] = %v, want %v", i, out.Get(i), want)
		}
	}
}

func TestExecLocalMemoryAndBarrier(t *testing.T) {
	// Workgroup-local reversal: out[group*L + (L-1-lid)] = in[gid].
	k := &Kernel{
		Name:    "reverse",
		WorkDim: 1,
		Params:  []Param{Buf("in"), Buf("out")},
		Locals:  []LocalArray{{Name: "tile", Elem: F32, Size: Lsz(0)}},
		Body: []Stmt{
			LStoreF("tile", Lid(0), LoadF("in", Gid(0))),
			Barrier{},
			StoreF("out", Gid(0),
				LLoadF("tile", Subi(Subi(Lsz(0), I(1)), Lid(0)))),
		},
	}
	const n, l = 64, 16
	in := NewBufferF32("in", n)
	out := NewBufferF32("out", n)
	for i := 0; i < n; i++ {
		in.Set(i, float64(i))
	}
	runKernel(t, k, NewArgs().Bind("in", in).Bind("out", out), Range1D(n, l))
	for i := 0; i < n; i++ {
		group := i / l
		lid := i % l
		want := float64(group*l + (l - 1 - lid))
		if out.Get(i) != want {
			t.Fatalf("out[%d] = %v, want %v", i, out.Get(i), want)
		}
	}
}

func TestExecAtomicAddHistogram(t *testing.T) {
	// Per-group histogram of in[gid] % 4, flushed by lid 0..3.
	k := &Kernel{
		Name:    "hist4",
		WorkDim: 1,
		Params:  []Param{BufI("in"), BufI("out")},
		Locals:  []LocalArray{{Name: "bins", Elem: I32, Size: I(4)}},
		Body: []Stmt{
			AtomicAdd{Arr: "bins", Index: Modi(LoadI("in", Gid(0)), I(4)), Val: I(1)},
			Barrier{},
			When(Bin{Op: LtI, X: Lid(0), Y: I(4)},
				Store{Buf: "out", Index: Addi(Muli(Grp(0), I(4)), Lid(0)),
					Val: LLoadF("bins", Lid(0))},
			),
		},
	}
	const n, l = 64, 32
	in := NewBufferI32("in", n)
	out := NewBufferI32("out", (n/l)*4)
	for i := 0; i < n; i++ {
		in.Set(i, float64(i))
	}
	// NOTE: LLoadF on an I32 local array reads the raw value; counts are
	// integral so this is exact.
	runKernel(t, k, NewArgs().Bind("in", in).Bind("out", out), Range1D(n, l))
	for g := 0; g < n/l; g++ {
		for b := 0; b < 4; b++ {
			if got := out.Get(g*4 + b); got != 8 {
				t.Fatalf("group %d bin %d = %v, want 8", g, b, got)
			}
		}
	}
}

func TestExec2DGlobalIDs(t *testing.T) {
	// out[y*W+x] = x + 100*y
	k := &Kernel{
		Name:    "coords",
		WorkDim: 2,
		Params:  []Param{Buf("out")},
		Body: []Stmt{
			StoreF("out", Addi(Muli(Gid(1), Gsz(0)), Gid(0)),
				Add(ToFloat{X: Gid(0)}, Mul(F(100), ToFloat{X: Gid(1)}))),
		},
	}
	const w, h = 32, 8
	out := NewBufferF32("out", w*h)
	runKernel(t, k, NewArgs().Bind("out", out), Range2D(w, h, 8, 4))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if got, want := out.Get(y*w+x), float64(x+100*y); got != want {
				t.Fatalf("out[%d,%d] = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestExecScalarParams(t *testing.T) {
	k := &Kernel{
		Name:    "saxpy",
		WorkDim: 1,
		Params:  []Param{Scalar("alpha"), Buf("x"), Buf("y")},
		Body: []Stmt{
			StoreF("y", Gid(0),
				Add(Mul(P("alpha"), LoadF("x", Gid(0))), LoadF("y", Gid(0)))),
		},
	}
	const n = 128
	x := NewBufferF32("x", n)
	y := NewBufferF32("y", n)
	for i := 0; i < n; i++ {
		x.Set(i, 2)
		y.Set(i, 1)
	}
	args := NewArgs().Bind("x", x).Bind("y", y).SetScalar("alpha", 3)
	runKernel(t, k, args, Range1D(n, 32))
	for i := 0; i < n; i++ {
		if y.Get(i) != 7 {
			t.Fatalf("y[%d] = %v, want 7", i, y.Get(i))
		}
	}
}

func TestExecErrors(t *testing.T) {
	k := squareKernel()
	in := NewBufferF32("in", 16)
	out := NewBufferF32("out", 8) // too small: stores out of bounds
	args := NewArgs().Bind("in", in).Bind("out", out)
	if err := ExecRange(k, args, Range1D(16, 8), ExecOptions{}); err == nil {
		t.Fatal("expected out-of-bounds store error")
	}

	// Unbound buffer.
	if err := ExecRange(k, NewArgs().Bind("in", in), Range1D(16, 8), ExecOptions{}); err == nil {
		t.Fatal("expected unbound buffer error")
	}

	// NULL local size must be rejected at this layer.
	if err := ExecRange(k, args, Range1D(16, 0), ExecOptions{}); err == nil {
		t.Fatal("expected unresolved local size error")
	}

	// Local size must divide global size.
	bad := Range1D(10, 4)
	if err := bad.Validate(); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestExecMathBuiltins(t *testing.T) {
	k := &Kernel{
		Name:    "mathops",
		WorkDim: 1,
		Params:  []Param{Buf("in"), Buf("out")},
		Body: []Stmt{
			Set("x", LoadF("in", Gid(0))),
			StoreF("out", Gid(0),
				Add(Call1(Sqrt, V("x")), Add(Call1(Exp, F(0)), Call1(Cos, F(0))))),
		},
	}
	in := NewBufferF32("in", 4)
	out := NewBufferF32("out", 4)
	in.Fill(4)
	runKernel(t, k, NewArgs().Bind("in", in).Bind("out", out), Range1D(4, 4))
	for i := 0; i < 4; i++ {
		if math.Abs(out.Get(i)-4) > 1e-5 { // sqrt(4)+exp(0)+cos(0) = 2+1+1
			t.Fatalf("out[%d] = %v, want 4", i, out.Get(i))
		}
	}
}
