package ir

import (
	"fmt"
	"math"
)

// Buffer is a linear global-memory object, the functional backing store of
// a cl.Buffer. Values are held as float64 for uniform interpretation; F32
// buffers round every store through float32 so results match a
// single-precision device, and I32 buffers hold integral values.
type Buffer struct {
	Name string
	Elem Type
	Data []float64
	// Base is the simulated byte address of element 0, assigned by the
	// allocator that owns the buffer. The cache models derive access
	// addresses from it.
	Base int64
}

// NewBuffer allocates an n-element buffer of the given element type.
func NewBuffer(name string, elem Type, n int) *Buffer {
	return &Buffer{Name: name, Elem: elem, Data: make([]float64, n)}
}

// NewBufferF32 allocates an n-element float buffer.
func NewBufferF32(name string, n int) *Buffer { return NewBuffer(name, F32, n) }

// NewBufferI32 allocates an n-element integer buffer.
func NewBufferI32(name string, n int) *Buffer { return NewBuffer(name, I32, n) }

// FromF32 builds a float buffer from src (values rounded to float32).
func FromF32(name string, src []float64) *Buffer {
	b := NewBufferF32(name, len(src))
	for i, v := range src {
		b.Data[i] = float64(float32(v))
	}
	return b
}

// Len returns the number of elements.
func (b *Buffer) Len() int { return len(b.Data) }

// Bytes returns the buffer size in bytes.
func (b *Buffer) Bytes() int64 { return int64(len(b.Data)) * b.Elem.Size() }

// Get returns element i.
func (b *Buffer) Get(i int) float64 { return b.Data[i] }

// Set writes element i, rounding according to the element type.
func (b *Buffer) Set(i int, v float64) { b.Data[i] = b.round(v) }

// Fill sets every element to v.
func (b *Buffer) Fill(v float64) {
	v = b.round(v)
	for i := range b.Data {
		b.Data[i] = v
	}
}

// CopyFrom copies min(len) elements from src, applying rounding.
func (b *Buffer) CopyFrom(src []float64) {
	n := len(src)
	if n > len(b.Data) {
		n = len(b.Data)
	}
	for i := 0; i < n; i++ {
		b.Data[i] = b.round(src[i])
	}
}

// Snapshot returns a copy of the contents.
func (b *Buffer) Snapshot() []float64 {
	out := make([]float64, len(b.Data))
	copy(out, b.Data)
	return out
}

// Addr returns the simulated byte address of element i.
func (b *Buffer) Addr(i int) int64 { return b.Base + int64(i)*b.Elem.Size() }

func (b *Buffer) round(v float64) float64 {
	switch b.Elem {
	case F32:
		return float64(float32(v))
	case I32:
		return math.Trunc(v)
	}
	return v
}

// String describes the buffer for diagnostics.
func (b *Buffer) String() string {
	return fmt.Sprintf("%s %s[%d]", b.Elem, b.Name, len(b.Data))
}
