package ir

import "math"

// Simplify returns an optimized copy of the kernel: constants folded,
// algebraic identities applied and dead scalar assignments removed — the
// cleanups a kernel compiler performs before analysis, so parsed kernels
// profile like hand-built ones. Semantics are preserved exactly (the
// differential fuzz test in optimize_test.go enforces bit-equality).
func Simplify(k *Kernel) *Kernel {
	out := &Kernel{
		Name:    k.Name,
		WorkDim: k.WorkDim,
		Params:  k.Params,
		Locals:  k.Locals,
		Body:    simplifyStmts(k.Body),
	}
	out.Body = eliminateDead(out.Body)
	return out
}

func simplifyStmts(stmts []Stmt) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case Assign:
			out = append(out, Assign{Dst: s.Dst, Val: foldExpr(s.Val)})
		case Store:
			out = append(out, Store{Buf: s.Buf, Index: foldExpr(s.Index), Val: foldExpr(s.Val)})
		case LocalStore:
			out = append(out, LocalStore{Arr: s.Arr, Index: foldExpr(s.Index), Val: foldExpr(s.Val)})
		case AtomicAdd:
			out = append(out, AtomicAdd{Arr: s.Arr, Index: foldExpr(s.Index), Val: foldExpr(s.Val)})
		case If:
			cond := foldExpr(s.Cond)
			// A constant condition selects one arm statically.
			if c, ok := cond.(ConstInt); ok {
				if c.V != 0 {
					out = append(out, simplifyStmts(s.Then)...)
				} else {
					out = append(out, simplifyStmts(s.Else)...)
				}
				continue
			}
			if c, ok := cond.(ConstFloat); ok {
				if c.V != 0 {
					out = append(out, simplifyStmts(s.Then)...)
				} else {
					out = append(out, simplifyStmts(s.Else)...)
				}
				continue
			}
			out = append(out, If{Cond: cond, Then: simplifyStmts(s.Then), Else: simplifyStmts(s.Else)})
		case For:
			start, end := foldExpr(s.Start), foldExpr(s.End)
			// A provably empty loop disappears.
			if sv, ok1 := constVal(start); ok1 {
				if ev, ok2 := constVal(end); ok2 && ev <= sv {
					continue
				}
			}
			out = append(out, For{
				Var: s.Var, Start: start, End: end, Step: foldExpr(s.Step),
				Body: simplifyStmts(s.Body),
			})
		default:
			out = append(out, s)
		}
	}
	return out
}

func constVal(e Expr) (float64, bool) {
	switch e := e.(type) {
	case ConstInt:
		return float64(e.V), true
	case ConstFloat:
		return e.V, true
	}
	return 0, false
}

func isConstZero(e Expr) bool  { v, ok := constVal(e); return ok && v == 0 }
func isConstOne(e Expr) bool   { v, ok := constVal(e); return ok && v == 1 }
func isFloatConst(e Expr) bool { _, ok := e.(ConstFloat); return ok }

// foldExpr recursively folds constants and applies safe identities.
func foldExpr(e Expr) Expr {
	switch e := e.(type) {
	case Bin:
		x, y := foldExpr(e.X), foldExpr(e.Y)
		folded := Bin{Op: e.Op, X: x, Y: y}
		// Constant operands: evaluate with the interpreter's own kernel so
		// the fold is bit-identical to runtime behaviour.
		if vx, okx := constVal(x); okx {
			if vy, oky := constVal(y); oky {
				out := [1]float64{}
				evalBin(e.Op, []float64{vx}, []float64{vy}, out[:])
				return literalFor(folded.Type(), out[0])
			}
		}
		// Identities. Note x*0 is NOT folded for floats: 0*Inf and 0*NaN
		// must keep their runtime values.
		switch e.Op {
		case AddF, AddI:
			if isConstZero(x) && !isFloatConst(x) {
				return y
			}
			if isConstZero(y) && !isFloatConst(y) {
				return x
			}
			// float +0 is identity-safe except for -0 + 0; since literal
			// zeros here are +0 and +0 + x == x bit-for-bit for all x except
			// x == -0 (yielding +0), be conservative and keep float adds.
		case SubI:
			if isConstZero(y) {
				return x
			}
		case MulF, MulI:
			if isConstOne(x) {
				return y
			}
			if isConstOne(y) {
				return x
			}
			if e.Op == MulI && (isConstZero(x) || isConstZero(y)) {
				return I(0)
			}
		case DivF, DivI:
			if isConstOne(y) {
				return x
			}
		}
		return folded
	case Call:
		args := make([]Expr, len(e.Args))
		allConst := true
		vals := make([]float64, len(e.Args))
		for i, a := range e.Args {
			args[i] = foldExpr(a)
			if v, ok := constVal(args[i]); ok {
				vals[i] = v
			} else {
				allConst = false
			}
		}
		if allConst {
			if v, ok := foldCall(e.Fn, vals); ok {
				return F(v)
			}
		}
		return Call{Fn: e.Fn, Args: args}
	case Load:
		return Load{Buf: e.Buf, Index: foldExpr(e.Index), Elem: e.Elem}
	case LocalLoad:
		return LocalLoad{Arr: e.Arr, Index: foldExpr(e.Index), Elem: e.Elem}
	case Select:
		c := foldExpr(e.Cond)
		if v, ok := constVal(c); ok {
			if v != 0 {
				return foldExpr(e.Then)
			}
			return foldExpr(e.Else)
		}
		return Select{Cond: c, Then: foldExpr(e.Then), Else: foldExpr(e.Else)}
	case ToFloat:
		x := foldExpr(e.X)
		if v, ok := constVal(x); ok {
			return F(v)
		}
		return ToFloat{X: x}
	case ToInt:
		x := foldExpr(e.X)
		if v, ok := constVal(x); ok {
			return I(int64(math.Trunc(v)))
		}
		return ToInt{X: x}
	default:
		return e
	}
}

// literalFor builds the literal matching the expression's static type,
// replicating the interpreter's assignment rounding.
func literalFor(ty Type, v float64) Expr {
	if ty == I32 {
		return I(int64(math.Trunc(v)))
	}
	return F(v)
}

func foldCall(fn Builtin, vals []float64) (float64, bool) {
	switch fn {
	case FMA:
		return vals[0]*vals[1] + vals[2], true
	case Sqrt:
		return math.Sqrt(vals[0]), true
	case Rsqrt:
		return 1 / math.Sqrt(vals[0]), true
	case Fabs:
		return math.Abs(vals[0]), true
	case Floor:
		return math.Floor(vals[0]), true
	case Exp:
		return math.Exp(vals[0]), true
	case Log:
		return math.Log(vals[0]), true
	case Sin:
		return math.Sin(vals[0]), true
	case Cos:
		return math.Cos(vals[0]), true
	}
	return 0, false
}

// eliminateDead removes scalar assignments whose values are never read.
// It is conservative: any read anywhere (including control-flow bounds and
// nested regions) keeps every assignment to that variable, so conditional
// and loop-carried uses stay intact.
func eliminateDead(stmts []Stmt) []Stmt {
	used := map[string]bool{}
	collect := func(e Expr) {
		walkExpr(e, func(e Expr) {
			if v, ok := e.(VarRef); ok {
				used[v.Name] = true
			}
		})
	}
	walkStmts(stmts, func(s Stmt) {
		switch s := s.(type) {
		case Assign:
			collect(s.Val)
		case Store:
			collect(s.Index)
			collect(s.Val)
		case LocalStore:
			collect(s.Index)
			collect(s.Val)
		case AtomicAdd:
			collect(s.Index)
			collect(s.Val)
		case If:
			collect(s.Cond)
		case For:
			collect(s.Start)
			collect(s.End)
			collect(s.Step)
		}
	})
	var prune func(ss []Stmt) []Stmt
	prune = func(ss []Stmt) []Stmt {
		var out []Stmt
		for _, s := range ss {
			switch s := s.(type) {
			case Assign:
				if !used[s.Dst] {
					continue
				}
				out = append(out, s)
			case If:
				out = append(out, If{Cond: s.Cond, Then: prune(s.Then), Else: prune(s.Else)})
			case For:
				out = append(out, For{Var: s.Var, Start: s.Start, End: s.End,
					Step: s.Step, Body: prune(s.Body)})
			default:
				out = append(out, s)
			}
		}
		return out
	}
	return prune(stmts)
}
