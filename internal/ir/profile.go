package ir

import "math"

// OpClass classifies dynamic operations for counting and pricing.
type OpClass int

// Operation classes.
const (
	OpFAdd       OpClass = iota // float add/sub/min/max
	OpFMul                      // float multiply
	OpFDiv                      // float divide
	OpFMA                       // fused multiply-add (2 flops)
	OpSpecial                   // sqrt/exp/log/sin/cos and friends
	OpInt                       // integer ALU op
	OpCmp                       // comparison
	OpSelect                    // branchless select
	OpLoad                      // global memory load
	OpStore                     // global memory store
	OpLocalLoad                 // local (scratchpad/cache-resident) load
	OpLocalStore                // local store
	OpAtomic                    // local atomic read-modify-write
	OpBarrier                   // workgroup barrier
	OpLibm                      // scalar math-library call (exp/log/sin/cos)
	NumOpClasses                // sentinel
)

var opClassNames = [NumOpClasses]string{
	"fadd", "fmul", "fdiv", "fma", "special", "int", "cmp", "select",
	"load", "store", "local-load", "local-store", "atomic", "barrier", "libm",
}

// String returns the class name.
func (c OpClass) String() string {
	if c >= 0 && c < NumOpClasses {
		return opClassNames[c]
	}
	return "op?"
}

// OpCounts holds dynamic operation counts per workitem, by class.
type OpCounts [NumOpClasses]float64

// Add accumulates o into c.
func (c *OpCounts) Add(o OpCounts) {
	for i := range c {
		c[i] += o[i]
	}
}

// AddScaled accumulates s*o into c.
func (c *OpCounts) AddScaled(o OpCounts, s float64) {
	for i := range c {
		c[i] += o[i] * s
	}
}

// MaxWith sets c to the elementwise maximum of c and o.
func (c *OpCounts) MaxWith(o OpCounts) {
	for i := range c {
		c[i] = math.Max(c[i], o[i])
	}
}

// Flops returns the floating-point operation count (FMA counts as two).
func (c OpCounts) Flops() float64 {
	return c[OpFAdd] + c[OpFMul] + c[OpFDiv] + 2*c[OpFMA] + c[OpSpecial] + c[OpLibm]
}

// GlobalMemOps returns the number of global loads plus stores.
func (c OpCounts) GlobalMemOps() float64 { return c[OpLoad] + c[OpStore] }

// Total returns the total dynamic operation count across all classes.
func (c OpCounts) Total() float64 {
	t := 0.0
	for _, v := range c {
		t += v
	}
	return t
}

// LatencyTable gives the result latency in cycles for each op class.
// Devices supply their own tables (internal/arch presets).
type LatencyTable [NumOpClasses]float64

// BranchMode selects how diverging branches are costed.
type BranchMode int

// Branch costing modes.
const (
	// MaxBranch prices an if as the more expensive arm: a CPU workitem
	// executes one arm only.
	MaxBranch BranchMode = iota
	// SumBranch prices an if as both arms: a diverged GPU warp serializes
	// through both.
	SumBranch
)

// Stride describes the per-+1-workitem (or per-iteration) movement of a
// memory access index, in elements.
type Stride struct {
	Known bool
	Elems int64 // meaningful when Known; 0 means the access is uniform
}

// Unit reports a contiguous unit-stride access.
func (s Stride) Unit() bool { return s.Known && (s.Elems == 1 || s.Elems == -1) }

// Uniform reports an access whose address does not depend on the probe
// variable at all.
func (s Stride) Uniform() bool { return s.Known && s.Elems == 0 }

// AccessSite summarizes one static global-memory access site at a given
// launch configuration.
type AccessSite struct {
	Buf     string
	Write   bool
	PerItem float64 // dynamic executions per workitem
	Stride  Stride  // w.r.t. get_global_id(0)
	// LoopVariant reports that the address moves across the enclosing
	// loop's iterations; invariant sites touch one location per workitem
	// however often they execute.
	LoopVariant bool
}

// Profile is the static per-workitem cost summary of a kernel at a launch
// configuration: the input to every device timing model.
type Profile struct {
	// Counts are dynamic operation counts for one workitem.
	Counts OpCounts
	// SerialCycles is the latency-weighted dependence critical path for one
	// workitem: the minimum time the workitem needs regardless of issue
	// width. The ratio Counts vs SerialCycles is exactly the kernel's ILP.
	SerialCycles float64
	// Accesses lists the kernel's global memory access sites.
	Accesses []AccessSite
	// TripApprox reports that some loop trip count was not statically
	// resolvable and a default estimate was used.
	TripApprox bool
	// LoopTrips is the total number of loop iterations one workitem
	// executes (each contributes one induction update and one compare to
	// Counts). Devices whose compilers unroll counted loops (GPUs) subtract
	// this bookkeeping.
	LoopTrips float64
}

// ILP returns the instruction-level parallelism of the workitem under the
// latency table used to build the profile: latency-weighted work divided by
// the critical path. By construction it is at least 1 for non-empty kernels.
func (p *Profile) ILP(lat LatencyTable) float64 {
	if p.SerialCycles <= 0 {
		return 1
	}
	work := 0.0
	for c := OpClass(0); c < NumOpClasses; c++ {
		work += p.Counts[c] * lat[c]
	}
	ilp := work / p.SerialCycles
	if ilp < 1 {
		return 1
	}
	return ilp
}

// defaultTrip is used when a loop bound cannot be resolved statically.
const defaultTrip = 8

// ProfileKernel statically profiles one representative workitem of k
// launched over nd with args. The local size must be resolved.
func ProfileKernel(k *Kernel, args *Args, nd NDRange, lat LatencyTable, mode BranchMode) (*Profile, error) {
	if err := Validate(k); err != nil {
		return nil, err
	}
	env := NewStaticEnv(nd, args)
	pr := &profiler{
		lat:  lat,
		mode: mode,
		se:   &staticEval{env: env, varVal: map[string]float64{}},
		defs: newDefTracker(),
	}
	res := pr.block(k.Body, newDepths())
	prof := &Profile{
		Counts:       res.counts,
		SerialCycles: res.maxDepth,
		Accesses:     res.accesses,
		TripApprox:   pr.tripApprox,
		LoopTrips:    res.loopTrips,
	}
	return prof, nil
}

// depths tracks per-variable readiness times within a region.
type depths struct {
	vars map[string]float64
	// readBeforeWrite marks variables whose first touch in the region was a
	// read: candidates for loop-carried recurrences.
	readBeforeWrite map[string]bool
	assigned        map[string]bool
}

func newDepths() *depths {
	return &depths{
		vars:            map[string]float64{},
		readBeforeWrite: map[string]bool{},
		assigned:        map[string]bool{},
	}
}

func (d *depths) clone() *depths {
	c := newDepths()
	for k, v := range d.vars {
		c.vars[k] = v
	}
	for k, v := range d.assigned {
		c.assigned[k] = v
	}
	return c
}

// blockResult is the cost of executing a statement list once.
type blockResult struct {
	counts    OpCounts
	maxDepth  float64
	accesses  []AccessSite
	loopTrips float64
}

type profiler struct {
	lat        LatencyTable
	mode       BranchMode
	se         *staticEval
	defs       *defTracker
	tripApprox bool
	loopVars   []string
}

func (pr *profiler) block(stmts []Stmt, d *depths) blockResult {
	var res blockResult
	for _, s := range stmts {
		pr.stmt(s, d, &res)
	}
	return res
}

func (pr *profiler) stmt(s Stmt, d *depths, res *blockResult) {
	switch s := s.(type) {
	case Assign:
		dep := pr.expr(s.Val, d, res)
		d.vars[s.Dst] = dep
		d.assigned[s.Dst] = true
		pr.defs.assign(s.Dst, s.Val)
		bump(res, dep)

	case Store:
		di := pr.expr(s.Index, d, res)
		dv := pr.expr(s.Val, d, res)
		res.counts[OpStore]++
		site := AccessSite{Buf: s.Buf, Write: true, PerItem: 1,
			Stride: pr.stride(s.Index), LoopVariant: pr.loopVariant(s.Index)}
		res.accesses = append(res.accesses, site)
		bump(res, math.Max(di, dv))

	case LocalStore:
		di := pr.expr(s.Index, d, res)
		dv := pr.expr(s.Val, d, res)
		res.counts[OpLocalStore]++
		bump(res, math.Max(di, dv))

	case AtomicAdd:
		di := pr.expr(s.Index, d, res)
		dv := pr.expr(s.Val, d, res)
		res.counts[OpAtomic]++
		bump(res, math.Max(di, dv)+pr.lat[OpAtomic])

	case Barrier:
		res.counts[OpBarrier]++

	case If:
		dc := pr.expr(s.Cond, d, res)
		dThen := d.clone()
		dElse := d.clone()
		thenRes := pr.block(s.Then, dThen)
		elseRes := pr.block(s.Else, dElse)
		switch pr.mode {
		case MaxBranch:
			var m OpCounts
			m = thenRes.counts
			m.MaxWith(elseRes.counts)
			res.counts.Add(m)
			res.loopTrips += math.Max(thenRes.loopTrips, elseRes.loopTrips)
		case SumBranch:
			res.counts.Add(thenRes.counts)
			res.counts.Add(elseRes.counts)
			res.loopTrips += thenRes.loopTrips + elseRes.loopTrips
		}
		// Access sites from both arms are kept (conservative for footprint).
		res.accesses = append(res.accesses, thenRes.accesses...)
		res.accesses = append(res.accesses, elseRes.accesses...)
		// Merge variable depths: a consumer must wait for whichever arm
		// defined the value, plus the condition.
		for _, db := range []*depths{dThen, dElse} {
			for name, v := range db.vars {
				if v+dc > d.vars[name] {
					d.vars[name] = v + dc
				}
				if db.assigned[name] {
					d.assigned[name] = true
				}
			}
		}
		// Conditionally-assigned variables no longer have a single static
		// definition.
		walkStmts(s.Then, func(st Stmt) {
			if a, ok := st.(Assign); ok {
				pr.defs.invalidate(a.Dst)
			}
		})
		walkStmts(s.Else, func(st Stmt) {
			if a, ok := st.(Assign); ok {
				pr.defs.invalidate(a.Dst)
			}
		})
		bump(res, dc+math.Max(thenRes.maxDepth, elseRes.maxDepth))

	case For:
		pr.forStmt(s, d, res)
	}
}

func (pr *profiler) forStmt(s For, d *depths, res *blockResult) {
	dStart := pr.expr(s.Start, d, res)
	dEnd := pr.expr(s.End, d, res)
	dStep := pr.expr(s.Step, d, res)
	entry := math.Max(dStart, math.Max(dEnd, dStep))

	trips := pr.tripCount(s)
	if trips <= 0 {
		return
	}

	// Estimate the loop variable at its midpoint for nested analyses.
	start, okS := pr.se.eval(s.Start)
	step, okP := pr.se.eval(s.Step)
	if !okS {
		start = 0
	}
	if !okP || step == 0 {
		step = 1
	}
	prevVal, hadVal := pr.se.varVal[s.Var]
	pr.se.varVal[s.Var] = math.Trunc(start + step*math.Floor(trips/2))
	pr.defs.invalidate(s.Var)
	pr.loopVars = append(pr.loopVars, s.Var)

	// Analyze one iteration with fresh depth zero so carried-recurrence
	// lengths are measured relative to the iteration start.
	body := newDepths()
	body.vars[s.Var] = 0
	body.assigned[s.Var] = true
	iter := pr.block(s.Body, body)

	pr.loopVars = pr.loopVars[:len(pr.loopVars)-1]
	if hadVal {
		pr.se.varVal[s.Var] = prevVal
	} else {
		delete(pr.se.varVal, s.Var)
	}

	// Loop-carried recurrence: a variable read before it is written in the
	// body advances by its per-iteration depth every trip.
	carried := 0.0
	for name := range body.readBeforeWrite {
		if body.assigned[name] && body.vars[name] > carried {
			carried = body.vars[name]
		}
	}

	// Counts: body per iteration × trips, plus the induction update and
	// compare each trip.
	res.counts.AddScaled(iter.counts, trips)
	res.counts[OpInt] += trips
	res.counts[OpCmp] += trips
	res.loopTrips += trips * (1 + iter.loopTrips)
	for _, a := range iter.accesses {
		a.PerItem *= trips
		res.accesses = append(res.accesses, a)
	}

	// Variables assigned inside the loop have iteration-dependent values.
	walkStmts(s.Body, func(st Stmt) {
		if a, ok := st.(Assign); ok {
			pr.defs.invalidate(a.Dst)
		}
	})

	// Serial time: pipeline fill (one iteration's depth) plus the carried
	// chain advanced once per remaining trip. Fully independent iterations
	// (carried == 0) overlap completely.
	loopSerial := iter.maxDepth + (trips-1)*carried
	exit := entry + loopSerial
	for name := range body.assigned {
		if name == s.Var {
			continue
		}
		if exit > d.vars[name] {
			d.vars[name] = exit
		}
		d.assigned[name] = true
	}
	d.vars[s.Var] = entry
	d.assigned[s.Var] = true
	bump(res, exit)
}

// tripCount statically estimates a loop's trip count.
func (pr *profiler) tripCount(s For) float64 {
	start, okS := pr.se.eval(s.Start)
	end, okE := pr.se.eval(s.End)
	step, okP := pr.se.eval(s.Step)
	if !okS || !okE || !okP || step <= 0 {
		pr.tripApprox = true
		return defaultTrip
	}
	if end <= start {
		return 0
	}
	return math.Ceil((end - start) / step)
}

// expr accumulates counts for e and returns its readiness depth.
func (pr *profiler) expr(e Expr, d *depths, res *blockResult) float64 {
	switch e := e.(type) {
	case ConstFloat, ConstInt, ParamRef, ID:
		return 0
	case VarRef:
		if !d.assigned[e.Name] {
			d.readBeforeWrite[e.Name] = true
		}
		return d.vars[e.Name]
	case Bin:
		dx := pr.expr(e.X, d, res)
		dy := pr.expr(e.Y, d, res)
		cls := classifyBin(e.Op)
		res.counts[cls]++
		return math.Max(dx, dy) + pr.lat[cls]
	case Call:
		dep := 0.0
		for _, a := range e.Args {
			dep = math.Max(dep, pr.expr(a, d, res))
		}
		cls := builtinClass(e.Fn)
		res.counts[cls]++
		return dep + pr.lat[cls]
	case Load:
		di := pr.expr(e.Index, d, res)
		res.counts[OpLoad]++
		res.accesses = append(res.accesses, AccessSite{Buf: e.Buf, PerItem: 1,
			Stride: pr.stride(e.Index), LoopVariant: pr.loopVariant(e.Index)})
		return di + pr.lat[OpLoad]
	case LocalLoad:
		di := pr.expr(e.Index, d, res)
		res.counts[OpLocalLoad]++
		return di + pr.lat[OpLocalLoad]
	case Select:
		dc := pr.expr(e.Cond, d, res)
		dt := pr.expr(e.Then, d, res)
		df := pr.expr(e.Else, d, res)
		res.counts[OpSelect]++
		return math.Max(dc, math.Max(dt, df)) + pr.lat[OpSelect]
	case ToFloat:
		return pr.expr(e.X, d, res) + pr.lat[OpInt]
	case ToInt:
		return pr.expr(e.X, d, res) + pr.lat[OpInt]
	}
	return 0
}

// builtinClass maps a builtin to its op class: hardware-pipelined square
// roots stay OpSpecial, transcendental functions lower to math-library
// calls (OpLibm), sign/round tweaks are cheap adder-pipe ops.
func builtinClass(b Builtin) OpClass {
	switch b {
	case FMA:
		return OpFMA
	case Fabs, Floor:
		return OpFAdd
	case Exp, Log, Sin, Cos:
		return OpLibm
	default: // Sqrt, Rsqrt
		return OpSpecial
	}
}

func classifyBin(op BinOp) OpClass {
	switch op {
	case AddF, SubF, MinF, MaxF:
		return OpFAdd
	case MulF:
		return OpFMul
	case DivF:
		return OpFDiv
	default:
		if op.IsCompare() {
			return OpCmp
		}
		return OpInt
	}
}

// stride measures the movement of an index expression per +1 of
// get_global_id(0) by finite differencing at two probe points; inconsistent
// deltas or data-dependent indices yield Stride{Known: false}. Scalar
// temporaries are forward-substituted first so "i = gid; a[i]" probes
// correctly.
func (pr *profiler) stride(index Expr) Stride {
	index = pr.defs.resolve(index)
	return probeStride(index, pr.se, func(se *staticEval, delta float64) {
		se.probeDim = 0
		se.gidDelta = delta
	})
}

// probeStride evaluates index at perturbations 0, +1 and +7 of the probe
// variable and checks affinity.
func probeStride(index Expr, se *staticEval, set func(*staticEval, float64)) Stride {
	defer set(se, 0)
	set(se, 0)
	v0, ok0 := se.eval(index)
	set(se, 1)
	v1, ok1 := se.eval(index)
	set(se, 7)
	v7, ok7 := se.eval(index)
	if !ok0 || !ok1 || !ok7 {
		return Stride{}
	}
	d1 := v1 - v0
	d7 := v7 - v0
	if d1*7 != d7 || d1 != math.Trunc(d1) {
		return Stride{}
	}
	return Stride{Known: true, Elems: int64(d1)}
}

func bump(res *blockResult, depth float64) {
	if depth > res.maxDepth {
		res.maxDepth = depth
	}
}

// loopVariant reports whether the (forward-substituted) index expression
// reads any enclosing loop variable, i.e. whether the access address moves
// across iterations.
func (pr *profiler) loopVariant(index Expr) bool {
	if len(pr.loopVars) == 0 {
		return false
	}
	resolved := pr.defs.resolve(index)
	variant := false
	walkExpr(resolved, func(e Expr) {
		if v, ok := e.(VarRef); ok {
			for _, lv := range pr.loopVars {
				if v.Name == lv {
					variant = true
				}
			}
		}
	})
	return variant
}
