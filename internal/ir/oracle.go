package ir

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// This file retains the original tree-walking lockstep interpreter as a
// reference oracle. ExecRange now runs the closure-compiled engine
// (compile.go / engine.go); the oracle keeps the old behavior bit for
// bit — it recompiles on every call, resolves names through maps, emits
// one Tracer call per access, and forces serial execution while tracing
// — so differential tests can assert the engine produces byte-identical
// buffers and an identical access stream. It is not on any production
// path.

// ExecRangeOracle functionally executes the kernel with the retained
// tree-walking interpreter. Semantics match ExecRange; performance does
// not. When opts.Tracer is set, execution is forced serial and the
// tracer receives one Access call per memory access, interleaved with
// evaluation (the engine instead buffers per group and flushes batches).
func ExecRangeOracle(k *Kernel, args *Args, nd NDRange, opts ExecOptions) error {
	if err := nd.Validate(); err != nil {
		return err
	}
	if nd.LocalNull() {
		return fmt.Errorf("ir: ExecRange %s: local size must be resolved", k.Name)
	}
	if err := Validate(k); err != nil {
		return err
	}
	if err := checkArgs(k, args); err != nil {
		return err
	}
	if opts.Hazards {
		if _, ok := opts.Tracer.(MarkTracer); !ok {
			return fmt.Errorf("ir: ExecRangeOracle %s: hazard tracing requires a MarkTracer", k.Name)
		}
	}
	prog, err := compileOracle(k)
	if err != nil {
		return err
	}
	ngroups := nd.NumGroups()
	run := func(lo, hi int, tr Tracer) error {
		ex := newOracleExec(prog, k, args, nd, tr)
		ex.hazards = opts.Hazards && tr != nil
		for g := lo; g < hi; g++ {
			if opts.Groups != nil && !opts.Groups(g) {
				continue
			}
			if err := ex.runGroup(g); err != nil {
				return err
			}
		}
		return nil
	}

	workers := opts.Parallel
	if opts.Tracer != nil || workers <= 1 || ngroups == 1 {
		return run(0, ngroups, opts.Tracer)
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ngroups {
		workers = ngroups
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	chunk := (ngroups + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > ngroups {
			hi = ngroups
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := run(lo, hi, nil); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	return firstErr
}

// oracleProgram is the interpreter's compiled form of a kernel: variable
// names resolved to dense slots (the body itself stays a tree).
type oracleProgram struct {
	slots  map[string]int
	nslots int
}

func compileOracle(k *Kernel) (*oracleProgram, error) {
	p := &oracleProgram{slots: map[string]int{}}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case Assign:
				p.slot(s.Dst)
			case For:
				p.slot(s.Var)
				walk(s.Body)
			case If:
				walk(s.Then)
				walk(s.Else)
			}
		}
	}
	walk(k.Body)
	return p, nil
}

func (p *oracleProgram) slot(name string) int {
	if s, ok := p.slots[name]; ok {
		return s
	}
	s := p.nslots
	p.slots[name] = s
	p.nslots++
	return s
}

// oracleExec holds the lockstep execution state for one worker: it is reused
// across the workgroups that worker executes.
type oracleExec struct {
	prog   *oracleProgram
	k      *Kernel
	args   *Args
	nd     NDRange
	tracer Tracer
	// mark is the tracer's MarkTracer extension, when implemented: barrier
	// markers (always) and hazard-annotated records (hazard mode) go
	// through it. hazards switches every memory record to Mark delivery
	// with Kind/Lane populated. barSeq numbers the running group's
	// barriers; localIdx maps a __local array name to its index in
	// k.Locals order (the high half of a KindLocal record's address).
	mark     MarkTracer
	hazards  bool
	barSeq   int64
	localIdx map[string]int32

	n    int // workitems per group
	gid  [3][]float64
	lid  [3][]float64
	grp  [3]float64
	vals [][]float64 // [slot][item]

	locals map[string][]float64

	pool     [][]float64
	poolNext int
	bpool    [][]bool
	bpoolNxt int
}

func newOracleExec(prog *oracleProgram, k *Kernel, args *Args, nd NDRange, tr Tracer) *oracleExec {
	n := nd.GroupItems()
	ex := &oracleExec{prog: prog, k: k, args: args, nd: nd, tracer: tr, n: n}
	for d := 0; d < 3; d++ {
		ex.gid[d] = make([]float64, n)
		ex.lid[d] = make([]float64, n)
	}
	ex.vals = make([][]float64, prog.nslots)
	for i := range ex.vals {
		ex.vals[i] = make([]float64, n)
	}
	ex.locals = map[string][]float64{}
	ex.mark, _ = tr.(MarkTracer)
	ex.localIdx = make(map[string]int32, len(k.Locals))
	for i, la := range k.Locals {
		ex.localIdx[la.Name] = int32(i)
	}
	return ex
}

// localAddr encodes a __local cell as a synthetic address: array index in
// the high half, element index in the low half. Local records carry their
// own Kind, so this space never collides with global buffer addresses.
func (ex *oracleExec) localAddr(arr string, j int) int64 {
	return int64(ex.localIdx[arr])<<32 | int64(j)
}

func (ex *oracleExec) getF() []float64 {
	if ex.poolNext < len(ex.pool) {
		b := ex.pool[ex.poolNext]
		ex.poolNext++
		return b
	}
	b := make([]float64, ex.n)
	ex.pool = append(ex.pool, b)
	ex.poolNext++
	return b
}

func (ex *oracleExec) putF(n int) { ex.poolNext -= n }

func (ex *oracleExec) getB() []bool {
	if ex.bpoolNxt < len(ex.bpool) {
		b := ex.bpool[ex.bpoolNxt]
		ex.bpoolNxt++
		return b
	}
	b := make([]bool, ex.n)
	ex.bpool = append(ex.bpool, b)
	ex.bpoolNxt++
	return b
}

func (ex *oracleExec) putB(n int) { ex.bpoolNxt -= n }

func (ex *oracleExec) fail(format string, args ...any) {
	panic(execError{fmt.Errorf("ir: kernel %s: "+format, append([]any{ex.k.Name}, args...)...)})
}

// runGroup executes workgroup g in lockstep.
func (ex *oracleExec) runGroup(g int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ee, ok := r.(execError); ok {
				err = ee.err
				return
			}
			panic(r)
		}
	}()

	coord := ex.nd.GroupCoord(g)
	lx, ly := ex.nd.Local[0], ex.nd.Local[1]
	if lx == 0 {
		lx = 1
	}
	if ly == 0 {
		ly = 1
	}
	for i := 0; i < ex.n; i++ {
		l0 := i % lx
		l1 := (i / lx) % ly
		l2 := i / (lx * ly)
		ex.lid[0][i] = float64(l0)
		ex.lid[1][i] = float64(l1)
		ex.lid[2][i] = float64(l2)
		ex.gid[0][i] = float64(coord[0]*lx + l0)
		ex.gid[1][i] = float64(coord[1]*ly + l1)
		ex.gid[2][i] = float64(coord[2]*max(ex.nd.Local[2], 1) + l2)
	}
	for d := 0; d < 3; d++ {
		ex.grp[d] = float64(coord[d])
	}

	// Zero the variable slots: a variable read before any (taken) assignment
	// is defined to be 0, and slot arrays are reused across the groups a
	// worker executes.
	for _, slot := range ex.vals {
		for i := range slot {
			slot[i] = 0
		}
	}

	// (Re)initialize local arrays: fresh per group, like OpenCL __local.
	for _, la := range ex.k.Locals {
		size := ex.uniformInt(la.Size)
		if size < 0 || size > 1<<28 {
			ex.fail("local array %s has invalid size %d", la.Name, size)
		}
		arr := ex.locals[la.Name]
		if int64(len(arr)) != size {
			arr = make([]float64, size)
			ex.locals[la.Name] = arr
		}
		for i := range arr {
			arr[i] = 0
		}
	}

	if ex.tracer != nil {
		ex.tracer.BeginGroup(g)
	}
	ex.barSeq = 0

	mask := ex.getB()
	for i := range mask {
		mask[i] = true
	}
	// Mask off out-of-range items (global size not divisible by local size
	// never happens post-Validate, but dimension padding can).
	for i := 0; i < ex.n; i++ {
		for d := 0; d < 3; d++ {
			gmax := ex.nd.Global[d]
			if gmax == 0 {
				gmax = 1
			}
			if int(ex.gid[d][i]) >= gmax {
				mask[i] = false
			}
		}
	}
	ex.execStmts(ex.k.Body, mask)
	ex.putB(1)
	return nil
}

// uniformInt evaluates an expression that must be workitem-independent
// (local array sizes) using lane 0.
func (ex *oracleExec) uniformInt(e Expr) int64 {
	t := ex.getF()
	ex.eval(e, t)
	v := int64(t[0])
	ex.putF(1)
	return v
}

func (ex *oracleExec) execStmts(stmts []Stmt, mask []bool) {
	for _, s := range stmts {
		ex.execStmt(s, mask)
	}
}

func (ex *oracleExec) execStmt(s Stmt, mask []bool) {
	switch s := s.(type) {
	case Assign:
		t := ex.getF()
		ex.eval(s.Val, t)
		dst := ex.vals[ex.prog.slots[s.Dst]]
		if s.Val.Type() == F32 {
			for i, m := range mask {
				if m {
					dst[i] = float64(float32(t[i]))
				}
			}
		} else {
			for i, m := range mask {
				if m {
					dst[i] = math.Trunc(t[i])
				}
			}
		}
		ex.putF(1)

	case Store:
		buf := ex.args.Buffers[s.Buf]
		idx := ex.getF()
		val := ex.getF()
		ex.eval(s.Index, idx)
		ex.eval(s.Val, val)
		for i, m := range mask {
			if !m {
				continue
			}
			j := int(idx[i])
			if j < 0 || j >= len(buf.Data) {
				ex.fail("store %s[%d] out of bounds (len %d)", s.Buf, j, len(buf.Data))
			}
			buf.Set(j, val[i])
			if ex.hazards {
				ex.mark.Mark(Access{Addr: buf.Addr(j), Size: buf.Elem.Size(),
					Write: true, Lane: int32(i)})
			} else if ex.tracer != nil {
				ex.tracer.Access(buf.Addr(j), buf.Elem.Size(), true)
			}
		}
		ex.putF(2)

	case LocalStore:
		arr := ex.locals[s.Arr]
		idx := ex.getF()
		val := ex.getF()
		ex.eval(s.Index, idx)
		ex.eval(s.Val, val)
		for i, m := range mask {
			if !m {
				continue
			}
			j := int(idx[i])
			if j < 0 || j >= len(arr) {
				ex.fail("local store %s[%d] out of bounds (len %d)", s.Arr, j, len(arr))
			}
			arr[j] = float64(float32(val[i]))
			if ex.hazards {
				ex.mark.Mark(Access{Kind: KindLocal, Addr: ex.localAddr(s.Arr, j),
					Size: 8, Write: true, Lane: int32(i)})
			}
		}
		ex.putF(2)

	case AtomicAdd:
		arr := ex.locals[s.Arr]
		idx := ex.getF()
		val := ex.getF()
		ex.eval(s.Index, idx)
		ex.eval(s.Val, val)
		for i, m := range mask {
			if !m {
				continue
			}
			j := int(idx[i])
			if j < 0 || j >= len(arr) {
				ex.fail("atomic add %s[%d] out of bounds (len %d)", s.Arr, j, len(arr))
			}
			arr[j] += val[i]
			if ex.hazards {
				ex.mark.Mark(Access{Kind: KindLocalAtomic, Addr: ex.localAddr(s.Arr, j),
					Size: 8, Write: true, Lane: int32(i)})
			}
		}
		ex.putF(2)

	case If:
		cond := ex.getF()
		ex.eval(s.Cond, cond)
		thenMask := ex.getB()
		elseMask := ex.getB()
		for i, m := range mask {
			taken := m && cond[i] != 0
			thenMask[i] = taken
			elseMask[i] = m && !taken
		}
		if len(s.Then) > 0 && anyActive(thenMask) {
			ex.execStmts(s.Then, thenMask)
		}
		if len(s.Else) > 0 && anyActive(elseMask) {
			ex.execStmts(s.Else, elseMask)
		}
		ex.putB(2)
		ex.putF(1)

	case For:
		slot := ex.prog.slots[s.Var]
		v := ex.vals[slot]
		start := ex.getF()
		ex.eval(s.Start, start)
		for i, m := range mask {
			if m {
				v[i] = math.Trunc(start[i])
			}
		}
		ex.putF(1)

		loopMask := ex.getB()
		copy(loopMask, mask)
		end := ex.getF()
		step := ex.getF()
		for iter := 0; ; iter++ {
			if iter >= maxLoopIter {
				ex.fail("loop over %s exceeded %d iterations", s.Var, maxLoopIter)
			}
			ex.eval(s.End, end)
			live := false
			for i, m := range loopMask {
				if m && v[i] < end[i] {
					live = true
				} else {
					loopMask[i] = false
				}
			}
			if !live {
				break
			}
			ex.execStmts(s.Body, loopMask)
			ex.eval(s.Step, step)
			for i, m := range loopMask {
				if m {
					v[i] = math.Trunc(v[i] + step[i])
				}
			}
		}
		ex.putF(2)
		ex.putB(1)

	case Barrier:
		// Lockstep execution keeps all workitems aligned, so a barrier under
		// (validated) uniform control flow is a no-op functionally. Tracers
		// with the MarkTracer extension still see it as a stream marker
		// (ordinal + lanes arrived), mirroring the engine's buffered record;
		// in hazard mode a count below the group size is exactly what the
		// analyzer reports as barrier divergence.
		if ex.mark != nil {
			active := 0
			for _, m := range mask {
				if m {
					active++
				}
			}
			ex.mark.Mark(Access{Kind: KindBarrier, Addr: ex.barSeq, Size: int64(active)})
			ex.barSeq++
		}

	default:
		ex.fail("unknown statement %T", s)
	}
}

// eval evaluates e for every lane into out (len == group size). Inactive
// lanes may receive garbage values; callers only consume active lanes.
func (ex *oracleExec) eval(e Expr, out []float64) {
	switch e := e.(type) {
	case ConstFloat:
		for i := range out {
			out[i] = e.V
		}
	case ConstInt:
		v := float64(e.V)
		for i := range out {
			out[i] = v
		}
	case VarRef:
		slot, ok := ex.prog.slots[e.Name]
		if !ok {
			ex.fail("read of undefined variable %q", e.Name)
		}
		copy(out, ex.vals[slot])
	case ParamRef:
		v, ok := ex.args.Scalars[e.Name]
		if !ok {
			ex.fail("read of unbound scalar parameter %q", e.Name)
		}
		for i := range out {
			out[i] = v
		}
	case ID:
		ex.evalID(e, out)
	case Bin:
		x := ex.getF()
		ex.eval(e.X, x)
		y := ex.getF()
		ex.eval(e.Y, y)
		evalBin(e.Op, x, y, out)
		ex.putF(2)
	case Call:
		ex.evalCall(e, out)
	case Load:
		buf, ok := ex.args.Buffers[e.Buf]
		if !ok {
			ex.fail("load from unbound buffer %q", e.Buf)
		}
		idx := ex.getF()
		ex.eval(e.Index, idx)
		for i := range out {
			j := int(idx[i])
			if j < 0 || j >= len(buf.Data) {
				// Inactive lanes may compute wild indices; clamp rather than
				// fail so divergent code behaves. Active-lane OOB surfaces in
				// tests as wrong results only if the kernel is buggy, so also
				// guard stores (which do fail hard).
				continue
			}
			out[i] = buf.Data[j]
			if ex.hazards {
				ex.mark.Mark(Access{Addr: buf.Addr(j), Size: buf.Elem.Size(),
					Lane: int32(i)})
			} else if ex.tracer != nil {
				ex.tracer.Access(buf.Addr(j), buf.Elem.Size(), false)
			}
		}
		ex.putF(1)
	case LocalLoad:
		arr, ok := ex.locals[e.Arr]
		if !ok {
			ex.fail("load from undeclared local array %q", e.Arr)
		}
		idx := ex.getF()
		ex.eval(e.Index, idx)
		for i := range out {
			j := int(idx[i])
			if j < 0 || j >= len(arr) {
				continue
			}
			out[i] = arr[j]
			if ex.hazards {
				ex.mark.Mark(Access{Kind: KindLocal, Addr: ex.localAddr(e.Arr, j),
					Size: 8, Lane: int32(i)})
			}
		}
		ex.putF(1)
	case Select:
		c := ex.getF()
		t := ex.getF()
		f := ex.getF()
		ex.eval(e.Cond, c)
		ex.eval(e.Then, t)
		ex.eval(e.Else, f)
		for i := range out {
			if c[i] != 0 {
				out[i] = t[i]
			} else {
				out[i] = f[i]
			}
		}
		ex.putF(3)
	case ToFloat:
		ex.eval(e.X, out)
	case ToInt:
		ex.eval(e.X, out)
		for i := range out {
			out[i] = math.Trunc(out[i])
		}
	default:
		ex.fail("unknown expression %T", e)
	}
}

func (ex *oracleExec) evalID(e ID, out []float64) {
	d := e.Dim
	if d < 0 || d > 2 {
		ex.fail("%s dimension %d out of range", e.Fn, d)
	}
	switch e.Fn {
	case GlobalID:
		copy(out, ex.gid[d])
	case LocalID:
		copy(out, ex.lid[d])
	case GroupID:
		for i := range out {
			out[i] = ex.grp[d]
		}
	case GlobalSize:
		v := float64(max(ex.nd.Global[d], 1))
		for i := range out {
			out[i] = v
		}
	case LocalSize:
		v := float64(max(ex.nd.Local[d], 1))
		for i := range out {
			out[i] = v
		}
	case NumGroups:
		v := float64(ex.nd.GroupCounts()[d])
		for i := range out {
			out[i] = v
		}
	}
}

func (ex *oracleExec) evalCall(e Call, out []float64) {
	if len(e.Args) != e.Fn.NumArgs() {
		ex.fail("%s expects %d args, got %d", e.Fn, e.Fn.NumArgs(), len(e.Args))
	}
	if e.Fn == FMA {
		a := ex.getF()
		b := ex.getF()
		c := ex.getF()
		ex.eval(e.Args[0], a)
		ex.eval(e.Args[1], b)
		ex.eval(e.Args[2], c)
		for i := range out {
			out[i] = a[i]*b[i] + c[i]
		}
		ex.putF(3)
		return
	}
	x := ex.getF()
	ex.eval(e.Args[0], x)
	switch e.Fn {
	case Sqrt:
		for i := range out {
			out[i] = math.Sqrt(x[i])
		}
	case Rsqrt:
		for i := range out {
			out[i] = 1 / math.Sqrt(x[i])
		}
	case Exp:
		for i := range out {
			out[i] = math.Exp(x[i])
		}
	case Log:
		for i := range out {
			out[i] = math.Log(x[i])
		}
	case Sin:
		for i := range out {
			out[i] = math.Sin(x[i])
		}
	case Cos:
		for i := range out {
			out[i] = math.Cos(x[i])
		}
	case Fabs:
		for i := range out {
			out[i] = math.Abs(x[i])
		}
	case Floor:
		for i := range out {
			out[i] = math.Floor(x[i])
		}
	default:
		ex.fail("unknown builtin %v", e.Fn)
	}
	ex.putF(1)
}
