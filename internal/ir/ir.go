// Package ir defines the kernel intermediate representation used by every
// device model in clperf.
//
// Kernels are written once as small structured programs (expressions,
// assignments, loops, branches, barriers, local memory) and are then
//
//   - executed functionally by the lockstep interpreter (Exec*), producing
//     real results that tests compare against reference Go implementations;
//   - analyzed statically (Profile, ILP, Vectorize*) so the CPU and GPU
//     timing models can price a workitem the way the Intel and NVIDIA
//     OpenCL compilers of the paper would have compiled it.
//
// The IR is deliberately structured (no goto, loops and branches are trees)
// which makes the SIMT-style lockstep execution and the two vectorization
// legality models straightforward and deterministic.
package ir

import "fmt"

// Type is the scalar element type of a value, buffer or parameter.
type Type uint8

// Scalar types. The interpreter computes in float64/int64; F32 buffers
// round-trip through float32 so single-precision kernels behave like the
// paper's SSE 4.2 single-precision workloads.
const (
	F32 Type = iota // 32-bit floating point
	I32             // 32-bit integer
)

// Size returns the size of one element in bytes, used by the memory models.
func (t Type) Size() int64 { return 4 }

// String returns the OpenCL-ish name of the type.
func (t Type) String() string {
	switch t {
	case F32:
		return "float"
	case I32:
		return "int"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// BinOp identifies a binary operator.
type BinOp uint8

// Binary operators. Integer and float variants are distinguished so the
// analyzers can count flops separately from address arithmetic.
//
// DivI and ModI semantics are pinned (and differentially enforced across
// both engines and the oracle):
//
//   - A divisor that is exactly 0 yields 0 — no trap, matching OpenCL C
//     6.3(j), where integer division by zero is undefined and we choose
//     the deterministic all-zeros result. The guard tests the raw
//     operand: a fractional divisor in (-1, 1) truncates to zero and
//     divides anyway, giving ±Inf (DivI) / NaN (ModI) like the float ops.
//   - Negative operands truncate toward zero (C99/OpenCL `/`), and the
//     remainder takes the sign of the dividend (C99 `%`): -7/2 == -3,
//     -7%2 == -1, 7%-2 == 1.
const (
	AddF BinOp = iota // x + y (float)
	SubF              // x - y (float)
	MulF              // x * y (float)
	DivF              // x / y (float)
	MinF              // min(x, y) (float)
	MaxF              // max(x, y) (float)
	AddI              // x + y (int)
	SubI              // x - y (int)
	MulI              // x * y (int)
	DivI              // x / y (int)
	ModI              // x % y (int)
	AndI              // x & y (int)
	OrI               // x | y (int)
	ShlI              // x << y (int)
	ShrI              // x >> y (int)
	LtF               // x < y (float), yields 0/1
	LeF               // x <= y
	GtF               // x > y
	GeF               // x >= y
	EqF               // x == y
	LtI               // x < y (int)
	LeI               // x <= y (int)
	GtI               // x > y (int)
	GeI               // x >= y (int)
	EqI               // x == y (int)
	NeI               // x != y (int)
)

// IsFloat reports whether the operator is a floating-point arithmetic op
// (counted as a flop by the profilers).
func (op BinOp) IsFloat() bool {
	switch op {
	case AddF, SubF, MulF, DivF, MinF, MaxF:
		return true
	}
	return false
}

// IsCompare reports whether the operator is a comparison.
func (op BinOp) IsCompare() bool { return op >= LtF }

// Valid reports whether op is a defined operator. Corrupted or
// hand-built IR can carry out-of-range op codes; Validate (and,
// defensively, both compilers) rejects them up front so an unknown
// operator can never silently evaluate to 0.
func (op BinOp) Valid() bool { return op <= NeI }

var binOpNames = [...]string{
	AddF: "+.", SubF: "-.", MulF: "*.", DivF: "/.", MinF: "min", MaxF: "max",
	AddI: "+", SubI: "-", MulI: "*", DivI: "/", ModI: "%",
	AndI: "&", OrI: "|", ShlI: "<<", ShrI: ">>",
	LtF: "<.", LeF: "<=.", GtF: ">.", GeF: ">=.", EqF: "==.",
	LtI: "<", LeI: "<=", GtI: ">", GeI: ">=", EqI: "==", NeI: "!=",
}

// String returns the printable operator symbol.
func (op BinOp) String() string {
	if int(op) < len(binOpNames) && binOpNames[op] != "" {
		return binOpNames[op]
	}
	return fmt.Sprintf("BinOp(%d)", uint8(op))
}

// Builtin identifies a math builtin callable from kernels.
type Builtin uint8

// Builtins map to the OpenCL built-in math library; the device latency
// tables price them as multi-cycle "special function" operations.
const (
	Sqrt Builtin = iota
	Rsqrt
	Exp
	Log
	Sin
	Cos
	Fabs
	Floor
	FMA // fused multiply-add: fma(a, b, c) = a*b + c
)

var builtinNames = [...]string{
	Sqrt: "sqrt", Rsqrt: "rsqrt", Exp: "exp", Log: "log",
	Sin: "sin", Cos: "cos", Fabs: "fabs", Floor: "floor", FMA: "fma",
}

// String returns the builtin's OpenCL name.
func (b Builtin) String() string {
	if int(b) < len(builtinNames) {
		return builtinNames[b]
	}
	return fmt.Sprintf("Builtin(%d)", uint8(b))
}

// Vectorizable reports whether the 2012-era CPU vector ISA can evaluate
// the builtin in SIMD registers (sqrtps/rsqrtps and friends). The
// transcendentals lower to scalar math-library calls instead and block
// implicit vectorization.
func (b Builtin) Vectorizable() bool {
	switch b {
	case Exp, Log, Sin, Cos:
		return false
	}
	return true
}

// NumArgs returns the builtin's arity.
func (b Builtin) NumArgs() int {
	if b == FMA {
		return 3
	}
	return 1
}

// Valid reports whether b is a defined builtin (see BinOp.Valid).
func (b Builtin) Valid() bool { return b <= FMA }

// IDFunc identifies a workitem identity function (get_global_id and
// friends in OpenCL C).
type IDFunc uint8

// Workitem identity functions.
const (
	GlobalID   IDFunc = iota // get_global_id(dim)
	LocalID                  // get_local_id(dim)
	GroupID                  // get_group_id(dim)
	GlobalSize               // get_global_size(dim)
	LocalSize                // get_local_size(dim)
	NumGroups                // get_num_groups(dim)
)

var idFuncNames = [...]string{
	GlobalID: "get_global_id", LocalID: "get_local_id", GroupID: "get_group_id",
	GlobalSize: "get_global_size", LocalSize: "get_local_size", NumGroups: "get_num_groups",
}

// String returns the OpenCL name of the identity function.
func (f IDFunc) String() string {
	if int(f) < len(idFuncNames) {
		return idFuncNames[f]
	}
	return fmt.Sprintf("IDFunc(%d)", uint8(f))
}

// Uniform reports whether the function yields the same value for every
// workitem in a workgroup (used by divergence analysis).
func (f IDFunc) Uniform() bool {
	switch f {
	case GroupID, GlobalSize, LocalSize, NumGroups:
		return true
	}
	return false
}
