package ir

// Expr is an expression tree node. Expressions are pure: all side effects
// (stores, barriers) are statements.
type Expr interface {
	exprNode()
	// Type returns the scalar type the expression evaluates to.
	Type() Type
}

// ConstFloat is a floating-point literal.
type ConstFloat struct{ V float64 }

// ConstInt is an integer literal.
type ConstInt struct{ V int64 }

// VarRef reads a scalar local variable or loop variable.
type VarRef struct {
	Name string
	Ty   Type
}

// ParamRef reads a scalar kernel parameter set at launch time.
type ParamRef struct {
	Name string
	Ty   Type
}

// ID reads a workitem identity value, e.g. get_global_id(0).
type ID struct {
	Fn  IDFunc
	Dim int
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	X, Y Expr
}

// Call invokes a math builtin.
type Call struct {
	Fn   Builtin
	Args []Expr
}

// Load reads global memory: Buf[Index].
type Load struct {
	Buf   string
	Index Expr
	Elem  Type
}

// LocalLoad reads workgroup-local memory (OpenCL __local): Arr[Index].
type LocalLoad struct {
	Arr   string
	Index Expr
	Elem  Type
}

// Select is a branchless conditional: Cond != 0 ? Then : Else.
type Select struct {
	Cond, Then, Else Expr
}

// ToFloat converts an integer expression to float.
type ToFloat struct{ X Expr }

// ToInt converts a float expression to int (truncating).
type ToInt struct{ X Expr }

func (ConstFloat) exprNode() {}
func (ConstInt) exprNode()   {}
func (VarRef) exprNode()     {}
func (ParamRef) exprNode()   {}
func (ID) exprNode()         {}
func (Bin) exprNode()        {}
func (Call) exprNode()       {}
func (Load) exprNode()       {}
func (LocalLoad) exprNode()  {}
func (Select) exprNode()     {}
func (ToFloat) exprNode()    {}
func (ToInt) exprNode()      {}

// Type implementations.

// Type returns F32.
func (ConstFloat) Type() Type { return F32 }

// Type returns I32.
func (ConstInt) Type() Type { return I32 }

// Type returns the variable's declared type.
func (e VarRef) Type() Type { return e.Ty }

// Type returns the parameter's declared type.
func (e ParamRef) Type() Type { return e.Ty }

// Type returns I32: all identity functions yield integers.
func (ID) Type() Type { return I32 }

// Type returns the result type implied by the operator.
func (e Bin) Type() Type {
	switch e.Op {
	case AddF, SubF, MulF, DivF, MinF, MaxF:
		return F32
	default:
		return I32 // integer arithmetic and all comparisons
	}
}

// Type returns F32: all builtins operate on floats.
func (Call) Type() Type { return F32 }

// Type returns the buffer's element type.
func (e Load) Type() Type { return e.Elem }

// Type returns the local array's element type.
func (e LocalLoad) Type() Type { return e.Elem }

// Type returns the type of the Then arm.
func (e Select) Type() Type { return e.Then.Type() }

// Type returns F32.
func (ToFloat) Type() Type { return F32 }

// Type returns I32.
func (ToInt) Type() Type { return I32 }

// Constructor helpers. These keep kernel definitions compact and readable;
// see internal/kernels for usage.

// F returns a float literal.
func F(v float64) Expr { return ConstFloat{V: v} }

// I returns an integer literal.
func I(v int64) Expr { return ConstInt{V: v} }

// V reads the float variable named name.
func V(name string) Expr { return VarRef{Name: name, Ty: F32} }

// Vi reads the integer variable named name.
func Vi(name string) Expr { return VarRef{Name: name, Ty: I32} }

// P reads the float scalar parameter named name.
func P(name string) Expr { return ParamRef{Name: name, Ty: F32} }

// Pi reads the integer scalar parameter named name.
func Pi(name string) Expr { return ParamRef{Name: name, Ty: I32} }

// Gid returns get_global_id(dim).
func Gid(dim int) Expr { return ID{Fn: GlobalID, Dim: dim} }

// Lid returns get_local_id(dim).
func Lid(dim int) Expr { return ID{Fn: LocalID, Dim: dim} }

// Grp returns get_group_id(dim).
func Grp(dim int) Expr { return ID{Fn: GroupID, Dim: dim} }

// Gsz returns get_global_size(dim).
func Gsz(dim int) Expr { return ID{Fn: GlobalSize, Dim: dim} }

// Lsz returns get_local_size(dim).
func Lsz(dim int) Expr { return ID{Fn: LocalSize, Dim: dim} }

// Ngrp returns get_num_groups(dim).
func Ngrp(dim int) Expr { return ID{Fn: NumGroups, Dim: dim} }

// Add returns x + y (float).
func Add(x, y Expr) Expr { return Bin{Op: AddF, X: x, Y: y} }

// Sub returns x - y (float).
func Sub(x, y Expr) Expr { return Bin{Op: SubF, X: x, Y: y} }

// Mul returns x * y (float).
func Mul(x, y Expr) Expr { return Bin{Op: MulF, X: x, Y: y} }

// Div returns x / y (float).
func Div(x, y Expr) Expr { return Bin{Op: DivF, X: x, Y: y} }

// Addi returns x + y (int).
func Addi(x, y Expr) Expr { return Bin{Op: AddI, X: x, Y: y} }

// Subi returns x - y (int).
func Subi(x, y Expr) Expr { return Bin{Op: SubI, X: x, Y: y} }

// Muli returns x * y (int).
func Muli(x, y Expr) Expr { return Bin{Op: MulI, X: x, Y: y} }

// Divi returns x / y (int).
func Divi(x, y Expr) Expr { return Bin{Op: DivI, X: x, Y: y} }

// Modi returns x % y (int).
func Modi(x, y Expr) Expr { return Bin{Op: ModI, X: x, Y: y} }

// LoadF reads float buffer buf at index.
func LoadF(buf string, index Expr) Expr { return Load{Buf: buf, Index: index, Elem: F32} }

// LoadI reads integer buffer buf at index.
func LoadI(buf string, index Expr) Expr { return Load{Buf: buf, Index: index, Elem: I32} }

// LLoadF reads float local array arr at index.
func LLoadF(arr string, index Expr) Expr { return LocalLoad{Arr: arr, Index: index, Elem: F32} }

// Fma returns fma(a, b, c) = a*b + c.
func Fma(a, b, c Expr) Expr { return Call{Fn: FMA, Args: []Expr{a, b, c}} }

// Call1 invokes a unary builtin.
func Call1(fn Builtin, x Expr) Expr { return Call{Fn: fn, Args: []Expr{x}} }
