package ir

// Pinned DivI/ModI semantics (see the BinOp docs in ir.go): zero
// divisors yield 0, negative quotients truncate toward zero, remainders
// take the dividend's sign, and a fractional divisor that truncates to
// zero divides anyway (±Inf / NaN). The corpus kernel below hits every
// case — including zero divisors on lanes that are masked OFF, which
// both engines still evaluate group-wide and must not trap on — and all
// three executors must agree bit-for-bit.

import (
	"math"
	"testing"
)

func TestDivModIntSemantics(t *testing.T) {
	const n = 8
	num := []float64{7, -7, 7, -7, 5, 0, -5, 3}
	den := []float64{2, 2, -2, -2, 0, 0, 0.5, 0.5}

	// The expected values, lane by lane (f32 rounding is exact here).
	wantQ := []float64{3, -3, -3, 3, 0, 0, math.Inf(-1), math.Inf(1)}
	wantR := []float64{1, -1, 1, -1, 0, 0, math.NaN(), math.NaN()}

	k := &Kernel{
		Name:    "divmod",
		WorkDim: 1,
		Params:  []Param{Buf("num"), Buf("den"), Buf("q"), Buf("r"), Buf("m")},
		Body: []Stmt{
			StoreF("q", Gid(0), Divi(LoadF("num", Gid(0)), LoadF("den", Gid(0)))),
			StoreF("r", Gid(0), Modi(LoadF("num", Gid(0)), LoadF("den", Gid(0)))),
			// Divergent branch: only lanes 0..3 store, but the division is
			// evaluated for the whole group — the zero divisors on the
			// inactive lanes 4..5 must quietly produce 0, not a trap.
			If{
				Cond: Bin{Op: LtI, X: Lid(0), Y: I(4)},
				Then: []Stmt{
					StoreF("m", Gid(0), Divi(LoadF("num", Gid(0)), LoadF("den", Gid(0)))),
				},
			},
		},
	}

	mk := func() *Args {
		a := NewArgs()
		nb := NewBufferF32("num", n)
		db := NewBufferF32("den", n)
		for i := 0; i < n; i++ {
			nb.Set(i, num[i])
			db.Set(i, den[i])
		}
		return a.Bind("num", nb).Bind("den", db).
			Bind("q", NewBufferF32("q", n)).
			Bind("r", NewBufferF32("r", n)).
			Bind("m", NewBufferF32("m", n))
	}
	nd := Range1D(n, n)

	oracle := mk()
	if err := ExecRangeOracle(k, oracle, nd, ExecOptions{}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	eq := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	for i := 0; i < n; i++ {
		if got := oracle.Buffers["q"].Get(i); !eq(got, wantQ[i]) {
			t.Errorf("q[%d] = %v, want %v", i, got, wantQ[i])
		}
		if got := oracle.Buffers["r"].Get(i); !eq(got, wantR[i]) {
			t.Errorf("r[%d] = %v, want %v", i, got, wantR[i])
		}
		wm := 0.0
		if i < 4 {
			wm = wantQ[i]
		}
		if got := oracle.Buffers["m"].Get(i); !eq(got, wm) {
			t.Errorf("m[%d] = %v, want %v", i, got, wm)
		}
	}

	for _, eng := range []struct {
		name string
		sel  EngineSel
	}{{"v1", EngineV1}, {"v2", EngineV2}} {
		for _, par := range []int{0, 4} {
			args := mk()
			if err := ExecRange(k, args, nd, ExecOptions{Engine: eng.sel, Parallel: par}); err != nil {
				t.Fatalf("%s parallel=%d: %v", eng.name, par, err)
			}
			for _, buf := range []string{"q", "r", "m"} {
				for i := 0; i < n; i++ {
					g, w := args.Buffers[buf].Get(i), oracle.Buffers[buf].Get(i)
					if !eq(g, w) {
						t.Errorf("%s parallel=%d: %s[%d] = %v, oracle %v",
							eng.name, par, buf, i, g, w)
					}
				}
			}
		}
	}
}
