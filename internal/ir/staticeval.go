package ir

import "math"

// StaticEnv positions a representative workitem for static analysis: loop
// trip counts, access strides and op counts are evaluated against it.
type StaticEnv struct {
	ND      NDRange
	Scalars map[string]float64
	// GIDFraction in [0,1) places the representative workitem within the
	// global range (0.5 when zero-valued via NewStaticEnv).
	GIDFraction float64
}

// NewStaticEnv builds a static environment for the launch described by nd
// and args (args may be nil).
func NewStaticEnv(nd NDRange, args *Args) *StaticEnv {
	env := &StaticEnv{ND: nd, Scalars: map[string]float64{}, GIDFraction: 0.5}
	if args != nil {
		for k, v := range args.Scalars {
			env.Scalars[k] = v
		}
	}
	return env
}

// gid returns the representative global id for dimension d, offset by delta
// (delta is used by the stride prober).
func (env *StaticEnv) gid(d int, delta float64) float64 {
	g := env.ND.Global[d]
	if g == 0 {
		g = 1
	}
	base := math.Floor(float64(g) * env.GIDFraction)
	if base >= float64(g) {
		base = float64(g) - 1
	}
	return base + delta
}

// EvalStatic evaluates e in env with no variable bindings, reporting
// whether the value is statically known.
func EvalStatic(e Expr, env *StaticEnv) (float64, bool) {
	se := &staticEval{env: env, varVal: map[string]float64{}}
	return se.eval(e)
}

// staticEval evaluates expressions numerically at analysis time. gidDelta
// perturbs get_global_id(probeDim) so strides can be measured by finite
// differencing; varVal carries loop-variable estimates of enclosing loops.
type staticEval struct {
	env      *StaticEnv
	varVal   map[string]float64
	probeDim int
	gidDelta float64
	// loopDeltaVar, when non-empty, perturbs the named loop variable instead
	// of a global id (used for OpenMP loop-stride probing).
	loopDeltaVar string
	loopDelta    float64
}

// eval returns the value and whether it is statically known. Loads from
// memory are unknown.
func (se *staticEval) eval(e Expr) (float64, bool) {
	switch e := e.(type) {
	case ConstFloat:
		return e.V, true
	case ConstInt:
		return float64(e.V), true
	case VarRef:
		v, ok := se.varVal[e.Name]
		if !ok {
			return 0, false
		}
		if e.Name == se.loopDeltaVar {
			v += se.loopDelta
		}
		return v, true
	case ParamRef:
		v, ok := se.env.Scalars[e.Name]
		return v, ok
	case ID:
		return se.evalID(e)
	case Bin:
		x, okx := se.eval(e.X)
		y, oky := se.eval(e.Y)
		if !okx || !oky {
			return 0, false
		}
		out := [1]float64{}
		evalBin(e.Op, []float64{x}, []float64{y}, out[:])
		return out[0], true
	case Call:
		return se.evalCall(e)
	case Select:
		c, okc := se.eval(e.Cond)
		if !okc {
			return 0, false
		}
		if c != 0 {
			return se.eval(e.Then)
		}
		return se.eval(e.Else)
	case ToFloat:
		return se.eval(e.X)
	case ToInt:
		v, ok := se.eval(e.X)
		return math.Trunc(v), ok
	case Load, LocalLoad:
		return 0, false
	}
	return 0, false
}

func (se *staticEval) evalID(e ID) (float64, bool) {
	d := e.Dim
	if d < 0 || d > 2 {
		return 0, false
	}
	nd := se.env.ND
	lsz := nd.Local[d]
	if lsz == 0 {
		lsz = 1
	}
	gsz := nd.Global[d]
	if gsz == 0 {
		gsz = 1
	}
	delta := 0.0
	if d == se.probeDim {
		delta = se.gidDelta
	}
	switch e.Fn {
	case GlobalID:
		return se.env.gid(d, delta), true
	case LocalID:
		g := se.env.gid(d, delta)
		return math.Mod(g, float64(lsz)), true
	case GroupID:
		g := se.env.gid(d, delta)
		return math.Floor(g / float64(lsz)), true
	case GlobalSize:
		return float64(gsz), true
	case LocalSize:
		return float64(lsz), true
	case NumGroups:
		return float64((gsz + lsz - 1) / lsz), true
	}
	return 0, false
}

func (se *staticEval) evalCall(e Call) (float64, bool) {
	if e.Fn == FMA && len(e.Args) == 3 {
		a, oka := se.eval(e.Args[0])
		b, okb := se.eval(e.Args[1])
		c, okc := se.eval(e.Args[2])
		if oka && okb && okc {
			return a*b + c, true
		}
		return 0, false
	}
	if len(e.Args) != 1 {
		return 0, false
	}
	x, ok := se.eval(e.Args[0])
	if !ok {
		return 0, false
	}
	switch e.Fn {
	case Sqrt:
		return math.Sqrt(x), true
	case Rsqrt:
		return 1 / math.Sqrt(x), true
	case Exp:
		return math.Exp(x), true
	case Log:
		return math.Log(x), true
	case Sin:
		return math.Sin(x), true
	case Cos:
		return math.Cos(x), true
	case Fabs:
		return math.Abs(x), true
	case Floor:
		return math.Floor(x), true
	}
	return 0, false
}
