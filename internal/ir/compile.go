package ir

import (
	"fmt"
	"math"
	"sync"
)

// This file lowers a kernel to its compiled form: a flat sequence of
// slot-indexed closures. Compilation runs once per kernel (cached by
// canonical-print digest, see compiledProgram); execution then touches no
// AST nodes, no name maps and no type switches. The lowering performs:
//
//   - name resolution: variables, __local arrays, buffers and scalar
//     parameters become dense slot indices;
//   - uniformity inference: variables whose every definition is
//     lane-invariant under uniform control flow are stored as one scalar
//     per group instead of one value per lane, and uniform loops run as
//     scalar loops;
//   - constant folding: operator trees over literals collapse to a single
//     value at compile time;
//   - liveness: only variable slots that may be read before their first
//     unconditional full-mask definition are zeroed per group.
//
// Semantics are defined by the retained tree-walk interpreter in
// oracle.go; differential tests assert byte-identical buffers and
// identical traced access streams against it.

// uniFn evaluates a lane-invariant expression to its per-group scalar.
type uniFn func(ex *engineExec) float64

// vecFn evaluates an expression for every lane of the group into out
// (len == group size). Inactive lanes may receive garbage values; callers
// only consume active lanes.
type vecFn func(ex *engineExec, out []float64)

// stmtFn executes one lowered statement under the given lane mask.
type stmtFn func(ex *engineExec, mask []bool)

// cexpr is a compiled expression: exactly one of uni (lane-invariant) or
// vec (per-lane) is set. Constants additionally carry their folded value
// so parent nodes can fold further.
type cexpr struct {
	ty      Type
	uni     uniFn
	vec     vecFn
	isConst bool
	cval    float64
	// src, when non-nil, returns a slice that directly holds the
	// expression's per-lane values (variable slots, gid/lid tables) —
	// consumers may read it without copying, within the same statement.
	// Set only alongside vec, and only for trace-free leaf expressions.
	src func(ex *engineExec) []float64
}

// uniform reports whether the expression is lane-invariant.
func (c cexpr) uniform() bool { return c.vec == nil }

// grab returns the expression's per-lane values: a zero-copy view when
// the expression is a direct source, else a pool scratch filled via into.
// The second result is the number of scratch buffers claimed; callers
// must ex.putF that many when done with the slice.
func (c cexpr) grab(ex *engineExec) ([]float64, int) {
	if c.src != nil {
		return c.src(ex), 0
	}
	t := ex.getF()
	c.into(ex, t)
	return t, 1
}

// into evaluates the expression into out, splatting lane-invariant
// values. Splatting reproduces the oracle exactly: the tree-walk
// evaluates uniform subtrees per lane to the same value in every lane.
func (c cexpr) into(ex *engineExec, out []float64) {
	if c.vec != nil {
		c.vec(ex, out)
		return
	}
	v := c.uni(ex)
	for i := range out {
		out[i] = v
	}
}

func constCexpr(ty Type, v float64) cexpr {
	return cexpr{ty: ty, isConst: true, cval: v, uni: func(*engineExec) float64 { return v }}
}

// progLocal is a compiled __local array declaration: its size expression
// is evaluated per group (workgroup geometry in scope) with lane-0
// semantics, exactly like the oracle's uniformInt.
type progLocal struct {
	name string
	size cexpr
}

// program is the compiled, immutable form of a kernel. It is shared by
// every launch of the kernel (cached by digest) and by all concurrent
// workers of a launch: all mutable state lives in engineExec.
type program struct {
	digest  string
	name    string
	nvslots int // per-lane variable slots
	nuslots int // per-group (uniform) variable slots
	// zeroSlots lists the vector slots that may be read before an
	// unconditional full-mask definition; only these are zeroed per group
	// (a read before any taken assignment is defined to be 0). Uniform
	// slots are always zeroed — the array is tiny.
	zeroSlots []int
	buffers   []string // buffer parameter names in declaration order
	scalars   []string // scalar parameter names in declaration order
	locals    []progLocal
	body      []stmtFn
}

// ---- program cache ----

// progCacheCap bounds the compiled-program cache. Tuner sweeps revisit a
// handful of coarsening variants per kernel; 4096 distinct kernels is far
// beyond any workload here, so eviction is a crude full reset rather than
// an LRU.
const progCacheCap = 4096

var progCache = struct {
	sync.Mutex
	m map[string]*progEntry
}{m: map[string]*progEntry{}}

type progEntry struct {
	done chan struct{}
	prog *program
	err  error
}

// compiledProgram returns the kernel's compiled program, validating and
// compiling at most once per canonical-print digest (single-flight:
// concurrent launches of the same kernel share one compilation).
func compiledProgram(k *Kernel) (*program, error) {
	d := Digest(k)
	progCache.Lock()
	if e, ok := progCache.m[d]; ok {
		progCache.Unlock()
		<-e.done
		return e.prog, e.err
	}
	if len(progCache.m) >= progCacheCap {
		progCache.m = make(map[string]*progEntry)
	}
	e := &progEntry{done: make(chan struct{})}
	progCache.m[d] = e
	progCache.Unlock()

	if err := Validate(k); err != nil {
		e.err = err
	} else {
		e.prog, e.err = compileKernel(k, d)
	}
	close(e.done)
	return e.prog, e.err
}

// ---- compiler ----

type compiler struct {
	k          *Kernel
	uniformVar map[string]bool
	vslot      map[string]int
	uslot      map[string]int
	nvslots    int
	nuslots    int
	bufIdx     map[string]int
	bufElem    map[string]Type
	scalIdx    map[string]int
	locIdx     map[string]int
}

func (c *compiler) errf(format string, args ...any) error {
	return fmt.Errorf("ir: kernel %s: "+format, append([]any{c.k.Name}, args...)...)
}

// newCompiler runs the engine-independent front end — name resolution,
// uniformity inference, slot assignment — shared by the v1 and v2 (see
// compile2.go) lowerings. The returned buffer/scalar name lists are in
// parameter order, matching the index maps.
func newCompiler(k *Kernel) (c *compiler, buffers, scalars []string) {
	c = &compiler{
		k:       k,
		vslot:   map[string]int{},
		uslot:   map[string]int{},
		bufIdx:  map[string]int{},
		bufElem: map[string]Type{},
		scalIdx: map[string]int{},
		locIdx:  map[string]int{},
	}
	for _, prm := range k.Params {
		switch prm.Kind {
		case BufferParam:
			c.bufIdx[prm.Name] = len(buffers)
			c.bufElem[prm.Name] = prm.Elem
			buffers = append(buffers, prm.Name)
		case ScalarParam:
			c.scalIdx[prm.Name] = len(scalars)
			scalars = append(scalars, prm.Name)
		}
	}
	for i, la := range k.Locals {
		c.locIdx[la.Name] = i
	}
	c.inferUniform()
	c.assignSlots(k.Body)
	return c, buffers, scalars
}

func compileKernel(k *Kernel, digest string) (*program, error) {
	c, buffers, scalars := newCompiler(k)
	p := &program{digest: digest, name: k.Name, buffers: buffers, scalars: scalars}

	for _, la := range k.Locals {
		size, err := c.compileExpr(la.Size)
		if err != nil {
			return nil, err
		}
		p.locals = append(p.locals, progLocal{name: la.Name, size: size})
	}

	body, err := c.compileStmts(k.Body)
	if err != nil {
		return nil, err
	}
	p.body = body
	p.nvslots = c.nvslots
	p.nuslots = c.nuslots
	p.zeroSlots = c.liveZeroSlots(k.Body)
	return p, nil
}

// inferUniform classifies every variable: uniform iff all of its
// definitions assign a lane-invariant value under uniform control flow.
// This is the whole-kernel fixpoint of the validator's flow-sensitive
// exprUniform — a variable reassigned divergently anywhere is stored
// per-lane everywhere, which is always safe (uniform values splat).
func (c *compiler) inferUniform() {
	c.uniformVar = map[string]bool{}
	walkStmts(c.k.Body, func(s Stmt) {
		switch s := s.(type) {
		case Assign:
			c.uniformVar[s.Dst] = true
		case For:
			c.uniformVar[s.Var] = true
		}
	})
	for changed := true; changed; {
		changed = false
		demote := func(name string) {
			if c.uniformVar[name] {
				c.uniformVar[name] = false
				changed = true
			}
		}
		var walk func(stmts []Stmt, uniformFlow bool)
		walk = func(stmts []Stmt, uniformFlow bool) {
			for _, s := range stmts {
				switch s := s.(type) {
				case Assign:
					if !(uniformFlow && c.exprUniform(s.Val)) {
						demote(s.Dst)
					}
				case If:
					inner := uniformFlow && c.exprUniform(s.Cond)
					walk(s.Then, inner)
					walk(s.Else, inner)
				case For:
					if !(uniformFlow && c.exprUniform(s.Start) &&
						c.exprUniform(s.End) && c.exprUniform(s.Step)) {
						demote(s.Var)
					}
					walk(s.Body, uniformFlow && c.uniformVar[s.Var])
				}
			}
		}
		walk(c.k.Body, true)
	}
}

// exprUniform reports whether e is lane-invariant under the current
// variable classification. Memory reads are conservatively per-lane.
func (c *compiler) exprUniform(e Expr) bool {
	u := true
	walkExpr(e, func(e Expr) {
		switch e := e.(type) {
		case ID:
			if !e.Fn.Uniform() {
				u = false
			}
		case VarRef:
			if !c.uniformVar[e.Name] {
				u = false
			}
		case Load, LocalLoad:
			u = false
		}
	})
	return u
}

// assignSlots numbers variables densely in definition order, uniform and
// per-lane variables separately. Definition order makes slot numbering —
// and hence the compiled program — deterministic for a given kernel.
func (c *compiler) assignSlots(stmts []Stmt) {
	define := func(name string) {
		if c.uniformVar[name] {
			if _, ok := c.uslot[name]; !ok {
				c.uslot[name] = c.nuslots
				c.nuslots++
			}
			return
		}
		if _, ok := c.vslot[name]; !ok {
			c.vslot[name] = c.nvslots
			c.nvslots++
		}
	}
	walkStmts(stmts, func(s Stmt) {
		switch s := s.(type) {
		case Assign:
			define(s.Dst)
		case For:
			define(s.Var)
		}
	})
}

// liveZeroSlots returns the vector slots that must be zeroed at group
// start: every slot with some read not preceded by an unconditional
// full-mask definition. Only top-level assignments (and top-level For
// start writes) define all lanes — post-Validate the root mask is full —
// so only those let the zeroing be skipped; a definition inside any
// branch or loop body either may not execute or writes a subset of
// lanes, and stale lanes from the previous group would be observable
// (expressions evaluate all lanes, and Load traces inactive lanes too).
func (c *compiler) liveZeroSlots(body []Stmt) []int {
	need := make([]bool, c.nvslots)
	fullDef := make([]bool, c.nvslots)
	scanExpr := func(e Expr) {
		walkExpr(e, func(e Expr) {
			if v, ok := e.(VarRef); ok {
				if s, isVec := c.vslot[v.Name]; isVec && !fullDef[s] {
					need[s] = true
				}
			}
		})
	}
	var scanReads func(stmts []Stmt)
	scanReads = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case Assign:
				scanExpr(s.Val)
			case Store:
				scanExpr(s.Index)
				scanExpr(s.Val)
			case LocalStore:
				scanExpr(s.Index)
				scanExpr(s.Val)
			case AtomicAdd:
				scanExpr(s.Index)
				scanExpr(s.Val)
			case If:
				scanExpr(s.Cond)
				scanReads(s.Then)
				scanReads(s.Else)
			case For:
				scanExpr(s.Start)
				scanExpr(s.End)
				scanReads(s.Body)
				scanExpr(s.Step)
			}
		}
	}
	for _, s := range body {
		switch s := s.(type) {
		case Assign:
			scanExpr(s.Val)
			if slot, ok := c.vslot[s.Dst]; ok {
				fullDef[slot] = true
			}
		case Store:
			scanExpr(s.Index)
			scanExpr(s.Val)
		case LocalStore:
			scanExpr(s.Index)
			scanExpr(s.Val)
		case AtomicAdd:
			scanExpr(s.Index)
			scanExpr(s.Val)
		case If:
			scanExpr(s.Cond)
			scanReads(s.Then)
			scanReads(s.Else)
		case For:
			// The start value is written to the loop variable with the full
			// mask before the first condition check, unconditionally.
			scanExpr(s.Start)
			if slot, ok := c.vslot[s.Var]; ok {
				fullDef[slot] = true
			}
			scanExpr(s.End)
			scanReads(s.Body)
			scanExpr(s.Step)
		}
	}
	var slots []int
	for s, n := range need {
		if n {
			slots = append(slots, s)
		}
	}
	return slots
}

// ---- statement lowering ----

func (c *compiler) compileStmts(stmts []Stmt) ([]stmtFn, error) {
	var fns []stmtFn
	for _, s := range stmts {
		f, err := c.compileStmt(s)
		if err != nil {
			return nil, err
		}
		if f != nil {
			fns = append(fns, f)
		}
	}
	return fns, nil
}

func (c *compiler) compileStmt(s Stmt) (stmtFn, error) {
	switch s := s.(type) {
	case Assign:
		return c.compileAssign(s)
	case Store:
		return c.compileStore(s)
	case LocalStore:
		return c.compileLocalStore(s)
	case AtomicAdd:
		return c.compileAtomicAdd(s)
	case If:
		return c.compileIf(s)
	case For:
		return c.compileFor(s)
	case Barrier:
		// Lockstep execution keeps all workitems aligned, so a barrier under
		// (validated) uniform control flow is a no-op functionally. Traced
		// runs still need it in the stream: downstream analyzers (internal/
		// san) segment a group's accesses into barrier-separated epochs, so
		// the closure emits a KindBarrier marker carrying the barrier's
		// dynamic ordinal and the number of lanes that reached it. The
		// compiled program is shared between traced and untraced launches
		// (cached by digest), so the tracing check is at run time; untraced
		// runs pay one predictable branch per barrier per group.
		return func(ex *engineExec, mask []bool) {
			if !ex.tracing {
				return
			}
			active := ex.n
			if !ex.isFull(mask) {
				active = 0
				for _, m := range mask {
					if m {
						active++
					}
				}
			}
			ex.tb = append(ex.tb, Access{
				Kind: KindBarrier,
				Addr: ex.barSeq,
				Size: int64(active),
			})
			ex.barSeq++
		}, nil
	default:
		return nil, c.errf("unknown statement %T", s)
	}
}

func (c *compiler) compileAssign(s Assign) (stmtFn, error) {
	val, err := c.compileExpr(s.Val)
	if err != nil {
		return nil, err
	}
	isF := s.Val.Type() == F32
	if c.uniformVar[s.Dst] {
		// Uniform destination: every definition is lane-invariant under
		// uniform flow, so the statement runs with all lanes active (or not
		// at all) and one scalar write replaces the masked lane loop.
		slot := c.uslot[s.Dst]
		u := val.uni
		if isF {
			return func(ex *engineExec, mask []bool) {
				ex.uvals[slot] = float64(float32(u(ex)))
			}, nil
		}
		return func(ex *engineExec, mask []bool) {
			ex.uvals[slot] = math.Trunc(u(ex))
		}, nil
	}
	slot := c.vslot[s.Dst]
	if val.uniform() {
		u := val.uni
		if isF {
			return func(ex *engineExec, mask []bool) {
				v := float64(float32(u(ex)))
				dst := ex.vals[slot]
				if ex.isFull(mask) {
					for i := range dst {
						dst[i] = v
					}
					return
				}
				for i, m := range mask {
					if m {
						dst[i] = v
					}
				}
			}, nil
		}
		return func(ex *engineExec, mask []bool) {
			v := math.Trunc(u(ex))
			dst := ex.vals[slot]
			if ex.isFull(mask) {
				for i := range dst {
					dst[i] = v
				}
				return
			}
			for i, m := range mask {
				if m {
					dst[i] = v
				}
			}
		}, nil
	}
	// Per-lane value: read it through grab (zero-copy for direct sources —
	// self-assignment aliasing is fine, the rounding is elementwise) and
	// skip the mask test under the full root mask.
	if isF {
		return func(ex *engineExec, mask []bool) {
			t, nt := val.grab(ex)
			dst := ex.vals[slot]
			if ex.isFull(mask) {
				for i := range dst {
					dst[i] = float64(float32(t[i]))
				}
			} else {
				for i, m := range mask {
					if m {
						dst[i] = float64(float32(t[i]))
					}
				}
			}
			ex.putF(nt)
		}, nil
	}
	return func(ex *engineExec, mask []bool) {
		t, nt := val.grab(ex)
		dst := ex.vals[slot]
		if ex.isFull(mask) {
			for i := range dst {
				dst[i] = math.Trunc(t[i])
			}
		} else {
			for i, m := range mask {
				if m {
					dst[i] = math.Trunc(t[i])
				}
			}
		}
		ex.putF(nt)
	}, nil
}

func (c *compiler) compileStore(s Store) (stmtFn, error) {
	bi, ok := c.bufIdx[s.Buf]
	if !ok {
		return nil, c.errf("store to unknown buffer %q", s.Buf)
	}
	idx, err := c.compileExpr(s.Index)
	if err != nil {
		return nil, err
	}
	val, err := c.compileExpr(s.Val)
	if err != nil {
		return nil, err
	}
	name := s.Buf
	size := c.bufElem[s.Buf].Size()
	if idx.uniform() {
		iu := idx.uni
		// The index carries no loads (uniform), so hoisting it emits the
		// same trace; writes still happen per active lane like the oracle.
		if val.uniform() {
			vu := val.uni
			return func(ex *engineExec, mask []bool) {
				buf := ex.bufs[bi]
				j := int(iu(ex))
				v := vu(ex)
				for _, m := range mask {
					if !m {
						continue
					}
					if j < 0 || j >= len(buf.Data) {
						ex.fail("store %s[%d] out of bounds (len %d)", name, j, len(buf.Data))
					}
					buf.Set(j, v)
					if ex.tracing {
						ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: size, Write: true})
					}
				}
			}, nil
		}
		vv := val.vec
		return func(ex *engineExec, mask []bool) {
			buf := ex.bufs[bi]
			j := int(iu(ex))
			t := ex.getF()
			vv(ex, t)
			for i, m := range mask {
				if !m {
					continue
				}
				if j < 0 || j >= len(buf.Data) {
					ex.fail("store %s[%d] out of bounds (len %d)", name, j, len(buf.Data))
				}
				buf.Set(j, t[i])
				if ex.tracing {
					ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: size, Write: true})
				}
			}
			ex.putF(1)
		}, nil
	}
	if p := c.indexPlan(s.Index); p != nil {
		// The plan is trace-free, so computing the index inside the lane
		// loop preserves the value stream relative to val's loads.
		return func(ex *engineExec, mask []bool) {
			buf := ex.bufs[bi]
			si, a, b, s2 := p.setup(ex)
			vs, nv := val.grab(ex)
			for i, m := range mask {
				if !m {
					continue
				}
				var j int
				if s2 == nil {
					j = int(math.Trunc(si[i])*a + b)
				} else {
					j = int(math.Trunc(si[i])*a + math.Trunc(s2[i]))
				}
				if j < 0 || j >= len(buf.Data) {
					ex.fail("store %s[%d] out of bounds (len %d)", name, j, len(buf.Data))
				}
				buf.Set(j, vs[i])
				if ex.tracing {
					ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: size, Write: true})
				}
			}
			ex.putF(nv)
		}, nil
	}
	return func(ex *engineExec, mask []bool) {
		buf := ex.bufs[bi]
		is, ni := idx.grab(ex)
		vs, nv := val.grab(ex)
		for i, m := range mask {
			if !m {
				continue
			}
			j := int(is[i])
			if j < 0 || j >= len(buf.Data) {
				ex.fail("store %s[%d] out of bounds (len %d)", name, j, len(buf.Data))
			}
			buf.Set(j, vs[i])
			if ex.tracing {
				ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: size, Write: true})
			}
		}
		ex.putF(ni + nv)
	}, nil
}

func (c *compiler) compileLocalStore(s LocalStore) (stmtFn, error) {
	li, ok := c.locIdx[s.Arr]
	if !ok {
		return nil, c.errf("store to undeclared local array %q", s.Arr)
	}
	idx, err := c.compileExpr(s.Index)
	if err != nil {
		return nil, err
	}
	val, err := c.compileExpr(s.Val)
	if err != nil {
		return nil, err
	}
	name := s.Arr
	if idx.uniform() && val.uniform() {
		iu, vu := idx.uni, val.uni
		// Statements only execute with at least one active lane (the root
		// mask is full post-Validate and If/For guard on anyActive), so the
		// oracle's per-active-lane writes of the same value to the same
		// element collapse to one write.
		return func(ex *engineExec, mask []bool) {
			arr := ex.locals[li]
			j := int(iu(ex))
			if j < 0 || j >= len(arr) {
				ex.fail("local store %s[%d] out of bounds (len %d)", name, j, len(arr))
			}
			arr[j] = float64(float32(vu(ex)))
		}, nil
	}
	if p := c.indexPlan(s.Index); p != nil {
		return func(ex *engineExec, mask []bool) {
			arr := ex.locals[li]
			si, a, b, s2 := p.setup(ex)
			vs, nv := val.grab(ex)
			for i, m := range mask {
				if !m {
					continue
				}
				var j int
				if s2 == nil {
					j = int(math.Trunc(si[i])*a + b)
				} else {
					j = int(math.Trunc(si[i])*a + math.Trunc(s2[i]))
				}
				if j < 0 || j >= len(arr) {
					ex.fail("local store %s[%d] out of bounds (len %d)", name, j, len(arr))
				}
				arr[j] = float64(float32(vs[i]))
			}
			ex.putF(nv)
		}, nil
	}
	return func(ex *engineExec, mask []bool) {
		arr := ex.locals[li]
		is, ni := idx.grab(ex)
		vs, nv := val.grab(ex)
		for i, m := range mask {
			if !m {
				continue
			}
			j := int(is[i])
			if j < 0 || j >= len(arr) {
				ex.fail("local store %s[%d] out of bounds (len %d)", name, j, len(arr))
			}
			arr[j] = float64(float32(vs[i]))
		}
		ex.putF(ni + nv)
	}, nil
}

func (c *compiler) compileAtomicAdd(s AtomicAdd) (stmtFn, error) {
	li, ok := c.locIdx[s.Arr]
	if !ok {
		return nil, c.errf("atomic add to undeclared local array %q", s.Arr)
	}
	idx, err := c.compileExpr(s.Index)
	if err != nil {
		return nil, err
	}
	val, err := c.compileExpr(s.Val)
	if err != nil {
		return nil, err
	}
	name := s.Arr
	// No collapsed fast path: repeated adds to one element must apply in
	// lane order for bit-identical float rounding.
	return func(ex *engineExec, mask []bool) {
		arr := ex.locals[li]
		is, ni := idx.grab(ex)
		vs, nv := val.grab(ex)
		for i, m := range mask {
			if !m {
				continue
			}
			j := int(is[i])
			if j < 0 || j >= len(arr) {
				ex.fail("atomic add %s[%d] out of bounds (len %d)", name, j, len(arr))
			}
			arr[j] += vs[i]
		}
		ex.putF(ni + nv)
	}, nil
}

func (c *compiler) compileIf(s If) (stmtFn, error) {
	cond, err := c.compileExpr(s.Cond)
	if err != nil {
		return nil, err
	}
	thenFns, err := c.compileStmts(s.Then)
	if err != nil {
		return nil, err
	}
	elseFns, err := c.compileStmts(s.Else)
	if err != nil {
		return nil, err
	}
	if cond.uniform() {
		// Uniform condition: all active lanes agree, so the branch masks are
		// the incoming mask or empty — a scalar branch, no mask build.
		u := cond.uni
		return func(ex *engineExec, mask []bool) {
			if u(ex) != 0 {
				for _, f := range thenFns {
					f(ex, mask)
				}
			} else {
				for _, f := range elseFns {
					f(ex, mask)
				}
			}
		}, nil
	}
	// Divergent condition: build branch masks in one pass, fused with the
	// any-active scan, and skip the else mask entirely for the common
	// else-less If. The condition may contain loads, so it always
	// evaluates (for the trace) even when both branches are empty.
	hasThen, hasElse := len(thenFns) > 0, len(elseFns) > 0
	switch {
	case hasThen && !hasElse:
		return func(ex *engineExec, mask []bool) {
			cb, nc := cond.grab(ex)
			thenMask := ex.getB()
			any := false
			for i, m := range mask {
				t := m && cb[i] != 0
				thenMask[i] = t
				if t {
					any = true
				}
			}
			if any {
				for _, f := range thenFns {
					f(ex, thenMask)
				}
			}
			ex.putB(1)
			ex.putF(nc)
		}, nil
	case !hasThen && hasElse:
		return func(ex *engineExec, mask []bool) {
			cb, nc := cond.grab(ex)
			elseMask := ex.getB()
			any := false
			for i, m := range mask {
				e := m && cb[i] == 0
				elseMask[i] = e
				if e {
					any = true
				}
			}
			if any {
				for _, f := range elseFns {
					f(ex, elseMask)
				}
			}
			ex.putB(1)
			ex.putF(nc)
		}, nil
	case !hasThen && !hasElse:
		return func(ex *engineExec, mask []bool) {
			cb, nc := cond.grab(ex)
			_ = cb
			ex.putF(nc)
		}, nil
	default:
		return func(ex *engineExec, mask []bool) {
			cb, nc := cond.grab(ex)
			thenMask := ex.getB()
			elseMask := ex.getB()
			anyT, anyE := false, false
			for i, m := range mask {
				t := m && cb[i] != 0
				e := m && !t
				thenMask[i] = t
				elseMask[i] = e
				if t {
					anyT = true
				}
				if e {
					anyE = true
				}
			}
			if anyT {
				for _, f := range thenFns {
					f(ex, thenMask)
				}
			}
			if anyE {
				for _, f := range elseFns {
					f(ex, elseMask)
				}
			}
			ex.putB(2)
			ex.putF(nc)
		}, nil
	}
}

func (c *compiler) compileFor(s For) (stmtFn, error) {
	start, err := c.compileExpr(s.Start)
	if err != nil {
		return nil, err
	}
	end, err := c.compileExpr(s.End)
	if err != nil {
		return nil, err
	}
	step, err := c.compileExpr(s.Step)
	if err != nil {
		return nil, err
	}
	bodyFns, err := c.compileStmts(s.Body)
	if err != nil {
		return nil, err
	}
	name := s.Var
	if c.uniformVar[s.Var] {
		// Uniform loop: bounds are lane-invariant and the enclosing flow is
		// uniform, so all active lanes iterate in lockstep — the loop
		// variable and condition run as scalars. Bound expressions carry no
		// loads (uniform), so re-evaluating them per iteration as scalars
		// emits exactly the oracle's (empty) trace for the loop machinery.
		uslot := c.uslot[s.Var]
		su, eu, tu := start.uni, end.uni, step.uni
		return func(ex *engineExec, mask []bool) {
			v := math.Trunc(su(ex))
			ex.uvals[uslot] = v
			for iter := 0; ; iter++ {
				if iter >= maxLoopIter {
					ex.fail("loop over %s exceeded %d iterations", name, maxLoopIter)
				}
				if !(v < eu(ex)) {
					break
				}
				for _, f := range bodyFns {
					f(ex, mask)
				}
				v = math.Trunc(v + tu(ex))
				ex.uvals[uslot] = v
			}
		}, nil
	}
	// Divergent loop (per-lane trip counts). Lane-invariant bounds still
	// evaluate as scalars — a splatted bound compares bitwise-identically
	// lane by lane, and uniform expressions carry no loads so the trace is
	// unchanged.
	slot := c.vslot[s.Var]
	return func(ex *engineExec, mask []bool) {
		v := ex.vals[slot]
		if start.uniform() {
			x := math.Trunc(start.uni(ex))
			if ex.isFull(mask) {
				for i := range v {
					v[i] = x
				}
			} else {
				for i, m := range mask {
					if m {
						v[i] = x
					}
				}
			}
		} else {
			st := ex.getF()
			start.vec(ex, st)
			for i, m := range mask {
				if m {
					v[i] = math.Trunc(st[i])
				}
			}
			ex.putF(1)
		}

		loopMask := ex.getB()
		copy(loopMask, mask)
		var eb, sb []float64
		if !end.uniform() {
			eb = ex.getF()
		}
		if !step.uniform() {
			sb = ex.getF()
		}
		for iter := 0; ; iter++ {
			if iter >= maxLoopIter {
				ex.fail("loop over %s exceeded %d iterations", name, maxLoopIter)
			}
			live := false
			if eb == nil {
				e := end.uni(ex)
				for i, m := range loopMask {
					if m && v[i] < e {
						live = true
					} else {
						loopMask[i] = false
					}
				}
			} else {
				end.vec(ex, eb)
				for i, m := range loopMask {
					if m && v[i] < eb[i] {
						live = true
					} else {
						loopMask[i] = false
					}
				}
			}
			if !live {
				break
			}
			for _, f := range bodyFns {
				f(ex, loopMask)
			}
			if sb == nil {
				t := step.uni(ex)
				for i, m := range loopMask {
					if m {
						v[i] = math.Trunc(v[i] + t)
					}
				}
			} else {
				step.vec(ex, sb)
				for i, m := range loopMask {
					if m {
						v[i] = math.Trunc(v[i] + sb[i])
					}
				}
			}
		}
		if eb != nil {
			ex.putF(1)
		}
		if sb != nil {
			ex.putF(1)
		}
		ex.putB(1)
	}, nil
}

// ---- fused index plans ----

// idxPlan is a fused single-pass index computation for gather/scatter
// loops: j[i] = Trunc(src[i])*scale + off, where off is a uniform scalar
// or a second per-lane source (off2). Detecting the common AddI/MulI
// index shapes here lets loads and local stores compute the index inside
// their own lane loop — no scratch buffers, no separate evalBin passes.
//
// Bit-exactness: the fused formula IS the unfused per-lane arithmetic.
// MulI(x,u) evaluates Trunc(x)*Trunc(u); the enclosing AddI re-truncates
// that product, but a product of integral float64s is always integral
// (float spacing above 2^52 is >= 1), so the Trunc is the identity and
// dropping it cannot change the value. x*1 == x and commuted AddI/MulI
// operands are bitwise-equal in IEEE 754, covering the mirrored matches
// and the defaulted scale. Source leaves and uniform subexpressions are
// trace-free, so fusing cannot reorder or drop trace records.
type idxPlan struct {
	src   func(*engineExec) []float64
	scale uniFn                       // nil: 1
	off   uniFn                       // nil: 0
	off2  func(*engineExec) []float64 // per-lane additive term, excludes off
}

// setup evaluates the plan's uniform parts once per use.
func (p *idxPlan) setup(ex *engineExec) (s []float64, a, b float64, s2 []float64) {
	s = p.src(ex)
	a, b = 1, 0
	if p.scale != nil {
		a = math.Trunc(p.scale(ex))
	}
	if p.off != nil {
		b = math.Trunc(p.off(ex))
	}
	if p.off2 != nil {
		s2 = p.off2(ex)
	}
	return
}

// planSrcOf returns a direct per-lane view for source-leaf expressions.
func (c *compiler) planSrcOf(e Expr) func(*engineExec) []float64 {
	switch v := e.(type) {
	case VarRef:
		if !c.uniformVar[v.Name] {
			if slot, ok := c.vslot[v.Name]; ok {
				return func(ex *engineExec) []float64 { return ex.vals[slot] }
			}
		}
	case ID:
		if v.Dim >= 0 && v.Dim <= 2 {
			d := v.Dim
			switch v.Fn {
			case GlobalID:
				return func(ex *engineExec) []float64 { return ex.gid[d] }
			case LocalID:
				return func(ex *engineExec) []float64 { return ex.lid[d] }
			}
		}
	}
	return nil
}

// indexPlan matches e against the fusable index shapes, returning nil
// when e needs the general evaluation path.
func (c *compiler) indexPlan(e Expr) *idxPlan {
	uniOf := func(e Expr) uniFn {
		if !c.exprUniform(e) {
			return nil
		}
		ce, err := c.compileExpr(e)
		if err != nil || !ce.uniform() {
			return nil
		}
		return ce.uni
	}
	mulOf := func(e Expr) (func(*engineExec) []float64, uniFn) {
		b, ok := e.(Bin)
		if !ok || b.Op != MulI {
			return nil, nil
		}
		if s := c.planSrcOf(b.X); s != nil {
			if u := uniOf(b.Y); u != nil {
				return s, u
			}
		}
		if s := c.planSrcOf(b.Y); s != nil {
			if u := uniOf(b.X); u != nil {
				return s, u
			}
		}
		return nil, nil
	}
	if b, ok := e.(Bin); ok && b.Op == AddI {
		try := func(x, y Expr) *idxPlan {
			var p idxPlan
			if s, u := mulOf(x); s != nil {
				p.src, p.scale = s, u
			} else if s := c.planSrcOf(x); s != nil {
				p.src = s
			} else {
				return nil
			}
			if u := uniOf(y); u != nil {
				p.off = u
				return &p
			}
			if s2 := c.planSrcOf(y); s2 != nil {
				p.off2 = s2
				return &p
			}
			return nil
		}
		if p := try(b.X, b.Y); p != nil {
			return p
		}
		if p := try(b.Y, b.X); p != nil {
			return p
		}
		return nil
	}
	if s, u := mulOf(e); s != nil {
		return &idxPlan{src: s, scale: u}
	}
	return nil
}

// ---- expression lowering ----

func (c *compiler) compileExpr(e Expr) (cexpr, error) {
	switch e := e.(type) {
	case ConstFloat:
		return constCexpr(F32, e.V), nil
	case ConstInt:
		return constCexpr(I32, float64(e.V)), nil
	case VarRef:
		if c.uniformVar[e.Name] {
			slot, ok := c.uslot[e.Name]
			if !ok {
				return cexpr{}, c.errf("read of undefined variable %q", e.Name)
			}
			return cexpr{ty: e.Ty, uni: func(ex *engineExec) float64 { return ex.uvals[slot] }}, nil
		}
		slot, ok := c.vslot[e.Name]
		if !ok {
			return cexpr{}, c.errf("read of undefined variable %q", e.Name)
		}
		return cexpr{
			ty:  e.Ty,
			vec: func(ex *engineExec, out []float64) { copy(out, ex.vals[slot]) },
			src: func(ex *engineExec) []float64 { return ex.vals[slot] },
		}, nil
	case ParamRef:
		idx, ok := c.scalIdx[e.Name]
		if !ok {
			return cexpr{}, c.errf("read of unbound scalar parameter %q", e.Name)
		}
		return cexpr{ty: e.Ty, uni: func(ex *engineExec) float64 { return ex.scalars[idx] }}, nil
	case ID:
		return c.compileID(e)
	case Bin:
		return c.compileBin(e)
	case Call:
		return c.compileCall(e)
	case Load:
		return c.compileLoad(e)
	case LocalLoad:
		return c.compileLocalLoad(e)
	case Select:
		return c.compileSelect(e)
	case ToFloat:
		x, err := c.compileExpr(e.X)
		if err != nil {
			return cexpr{}, err
		}
		x.ty = F32
		return x, nil
	case ToInt:
		x, err := c.compileExpr(e.X)
		if err != nil {
			return cexpr{}, err
		}
		if x.isConst {
			return constCexpr(I32, math.Trunc(x.cval)), nil
		}
		if x.uniform() {
			u := x.uni
			return cexpr{ty: I32, uni: func(ex *engineExec) float64 { return math.Trunc(u(ex)) }}, nil
		}
		vec := x.vec
		return cexpr{ty: I32, vec: func(ex *engineExec, out []float64) {
			vec(ex, out)
			for i := range out {
				out[i] = math.Trunc(out[i])
			}
		}}, nil
	default:
		return cexpr{}, c.errf("unknown expression %T", e)
	}
}

func (c *compiler) compileID(e ID) (cexpr, error) {
	d := e.Dim
	if d < 0 || d > 2 {
		return cexpr{}, c.errf("%s dimension %d out of range", e.Fn, d)
	}
	switch e.Fn {
	case GlobalID:
		return cexpr{
			ty:  I32,
			vec: func(ex *engineExec, out []float64) { copy(out, ex.gid[d]) },
			src: func(ex *engineExec) []float64 { return ex.gid[d] },
		}, nil
	case LocalID:
		return cexpr{
			ty:  I32,
			vec: func(ex *engineExec, out []float64) { copy(out, ex.lid[d]) },
			src: func(ex *engineExec) []float64 { return ex.lid[d] },
		}, nil
	case GroupID:
		return cexpr{ty: I32, uni: func(ex *engineExec) float64 { return ex.grp[d] }}, nil
	case GlobalSize:
		return cexpr{ty: I32, uni: func(ex *engineExec) float64 { return ex.gsz[d] }}, nil
	case LocalSize:
		return cexpr{ty: I32, uni: func(ex *engineExec) float64 { return ex.lsz[d] }}, nil
	case NumGroups:
		return cexpr{ty: I32, uni: func(ex *engineExec) float64 { return ex.ngr[d] }}, nil
	}
	return cexpr{}, c.errf("unknown id function %v", e.Fn)
}

func (c *compiler) compileBin(e Bin) (cexpr, error) {
	if !e.Op.Valid() {
		// Normally caught by Validate; kept as a defense for direct
		// compile paths so a corrupted op can never reach binScalarOp.
		return cexpr{}, c.errf("unknown binary operator %s in %s", e.Op, FormatExpr(e))
	}
	x, err := c.compileExpr(e.X)
	if err != nil {
		return cexpr{}, err
	}
	y, err := c.compileExpr(e.Y)
	if err != nil {
		return cexpr{}, err
	}
	ty := e.Type()
	f := binScalarOp(e.Op)
	if x.isConst && y.isConst {
		return constCexpr(ty, f(x.cval, y.cval)), nil
	}
	if x.uniform() && y.uniform() {
		xu, yu := x.uni, y.uni
		return cexpr{ty: ty, uni: func(ex *engineExec) float64 {
			return f(xu(ex), yu(ex))
		}}, nil
	}
	// At least one side is per-lane. Evaluation stays in oracle trace
	// order — loads in X trace before loads in Y — but uniform sides run
	// through the scalar-operand kernels (no splat buffer), direct sources
	// are read in place (no copy), and the per-lane side lands in out so
	// the op can run in place (elementwise, so aliasing is safe). Uniform
	// and source operands are trace-free, which is what makes reordering
	// their evaluation around the other side unobservable.
	op := e.Op
	switch {
	case x.uniform():
		xu := x.uni
		if y.src != nil {
			ysrc := y.src
			return cexpr{ty: ty, vec: func(ex *engineExec, out []float64) {
				evalBinSV(op, xu(ex), ysrc(ex), out)
			}}, nil
		}
		yv := y.vec
		return cexpr{ty: ty, vec: func(ex *engineExec, out []float64) {
			xs := xu(ex)
			yv(ex, out)
			evalBinSV(op, xs, out, out)
		}}, nil
	case y.uniform():
		yu := y.uni
		if x.src != nil {
			xsrc := x.src
			return cexpr{ty: ty, vec: func(ex *engineExec, out []float64) {
				evalBinVS(op, xsrc(ex), yu(ex), out)
			}}, nil
		}
		xv := x.vec
		return cexpr{ty: ty, vec: func(ex *engineExec, out []float64) {
			xv(ex, out)
			evalBinVS(op, out, yu(ex), out)
		}}, nil
	case x.src != nil && y.src != nil:
		xsrc, ysrc := x.src, y.src
		return cexpr{ty: ty, vec: func(ex *engineExec, out []float64) {
			evalBin(op, xsrc(ex), ysrc(ex), out)
		}}, nil
	case x.src != nil:
		xsrc, yv := x.src, y.vec
		return cexpr{ty: ty, vec: func(ex *engineExec, out []float64) {
			yv(ex, out)
			evalBin(op, xsrc(ex), out, out)
		}}, nil
	case y.src != nil:
		xv, ysrc := x.vec, y.src
		return cexpr{ty: ty, vec: func(ex *engineExec, out []float64) {
			xv(ex, out)
			evalBin(op, out, ysrc(ex), out)
		}}, nil
	default:
		xv, yv := x.vec, y.vec
		return cexpr{ty: ty, vec: func(ex *engineExec, out []float64) {
			xv(ex, out)
			ys := ex.getF()
			yv(ex, ys)
			evalBin(op, out, ys, out)
			ex.putF(1)
		}}, nil
	}
}

func (c *compiler) compileCall(e Call) (cexpr, error) {
	if len(e.Args) != e.Fn.NumArgs() {
		return cexpr{}, c.errf("%s expects %d args, got %d", e.Fn, e.Fn.NumArgs(), len(e.Args))
	}
	if e.Fn == FMA {
		a, err := c.compileExpr(e.Args[0])
		if err != nil {
			return cexpr{}, err
		}
		b, err := c.compileExpr(e.Args[1])
		if err != nil {
			return cexpr{}, err
		}
		cc, err := c.compileExpr(e.Args[2])
		if err != nil {
			return cexpr{}, err
		}
		if a.isConst && b.isConst && cc.isConst {
			return constCexpr(F32, a.cval*b.cval+cc.cval), nil
		}
		if a.uniform() && b.uniform() && cc.uniform() {
			au, bu, cu := a.uni, b.uni, cc.uni
			return cexpr{ty: F32, uni: func(ex *engineExec) float64 {
				return au(ex)*bu(ex) + cu(ex)
			}}, nil
		}
		return cexpr{ty: F32, vec: func(ex *engineExec, out []float64) {
			as, na := a.grab(ex)
			bs, nb := b.grab(ex)
			cs, nc := cc.grab(ex)
			for i := range out {
				out[i] = as[i]*bs[i] + cs[i]
			}
			ex.putF(na + nb + nc)
		}}, nil
	}
	f := builtinScalarOp(e.Fn)
	if f == nil {
		return cexpr{}, c.errf("unknown builtin %v", e.Fn)
	}
	x, err := c.compileExpr(e.Args[0])
	if err != nil {
		return cexpr{}, err
	}
	if x.isConst {
		return constCexpr(F32, f(x.cval)), nil
	}
	if x.uniform() {
		u := x.uni
		return cexpr{ty: F32, uni: func(ex *engineExec) float64 { return f(u(ex)) }}, nil
	}
	fn := e.Fn
	if x.src != nil {
		xsrc := x.src
		return cexpr{ty: F32, vec: func(ex *engineExec, out []float64) {
			builtinVec(fn, xsrc(ex), out)
		}}, nil
	}
	// Evaluate the operand into out and apply the builtin in place
	// (elementwise, so the aliasing is safe).
	vec := x.vec
	return cexpr{ty: F32, vec: func(ex *engineExec, out []float64) {
		vec(ex, out)
		builtinVec(fn, out, out)
	}}, nil
}

func (c *compiler) compileLoad(e Load) (cexpr, error) {
	bi, ok := c.bufIdx[e.Buf]
	if !ok {
		return cexpr{}, c.errf("load from unbound buffer %q", e.Buf)
	}
	idx, err := c.compileExpr(e.Index)
	if err != nil {
		return cexpr{}, err
	}
	size := c.bufElem[e.Buf].Size()
	if idx.uniform() {
		iu := idx.uni
		// Uniform index: one bounds check and one memory read, splat the
		// value. The oracle traces the (identical) access once per lane, so
		// the buffered trace repeats the record len(out) times.
		return cexpr{ty: e.Elem, vec: func(ex *engineExec, out []float64) {
			buf := ex.bufs[bi]
			j := int(iu(ex))
			if j < 0 || j >= len(buf.Data) {
				// Out-of-range lanes leave out untouched, like the oracle's
				// per-lane clamp.
				return
			}
			v := buf.Data[j]
			for i := range out {
				out[i] = v
			}
			if ex.tracing {
				a := Access{Addr: buf.Addr(j), Size: size}
				for range out {
					ex.tb = append(ex.tb, a)
				}
			}
		}}, nil
	}
	if p := c.indexPlan(e.Index); p != nil {
		// Fused gather: the index is computed inside the lane loop from the
		// plan's views, skipping the separate index-evaluation passes.
		return cexpr{ty: e.Elem, vec: func(ex *engineExec, out []float64) {
			buf := ex.bufs[bi]
			data := buf.Data
			s, a, b, s2 := p.setup(ex)
			switch {
			case s2 == nil && !ex.tracing:
				for i := range out {
					j := int(math.Trunc(s[i])*a + b)
					if j < 0 || j >= len(data) {
						continue
					}
					out[i] = data[j]
				}
			case s2 == nil:
				for i := range out {
					j := int(math.Trunc(s[i])*a + b)
					if j < 0 || j >= len(data) {
						continue
					}
					out[i] = data[j]
					ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: size})
				}
			case !ex.tracing:
				for i := range out {
					j := int(math.Trunc(s[i])*a + math.Trunc(s2[i]))
					if j < 0 || j >= len(data) {
						continue
					}
					out[i] = data[j]
				}
			default:
				for i := range out {
					j := int(math.Trunc(s[i])*a + math.Trunc(s2[i]))
					if j < 0 || j >= len(data) {
						continue
					}
					out[i] = data[j]
					ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: size})
				}
			}
		}}, nil
	}
	return cexpr{ty: e.Elem, vec: func(ex *engineExec, out []float64) {
		buf := ex.bufs[bi]
		t, nt := idx.grab(ex)
		data := buf.Data
		if ex.tracing {
			for i := range out {
				j := int(t[i])
				if j < 0 || j >= len(data) {
					continue
				}
				out[i] = data[j]
				ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: size})
			}
		} else {
			for i := range out {
				j := int(t[i])
				if j < 0 || j >= len(data) {
					continue
				}
				out[i] = data[j]
			}
		}
		ex.putF(nt)
	}}, nil
}

func (c *compiler) compileLocalLoad(e LocalLoad) (cexpr, error) {
	li, ok := c.locIdx[e.Arr]
	if !ok {
		return cexpr{}, c.errf("load from undeclared local array %q", e.Arr)
	}
	idx, err := c.compileExpr(e.Index)
	if err != nil {
		return cexpr{}, err
	}
	if idx.uniform() {
		iu := idx.uni
		return cexpr{ty: e.Elem, vec: func(ex *engineExec, out []float64) {
			arr := ex.locals[li]
			j := int(iu(ex))
			if j < 0 || j >= len(arr) {
				return
			}
			v := arr[j]
			for i := range out {
				out[i] = v
			}
		}}, nil
	}
	if p := c.indexPlan(e.Index); p != nil {
		return cexpr{ty: e.Elem, vec: func(ex *engineExec, out []float64) {
			arr := ex.locals[li]
			s, a, b, s2 := p.setup(ex)
			if s2 == nil {
				for i := range out {
					j := int(math.Trunc(s[i])*a + b)
					if j < 0 || j >= len(arr) {
						continue
					}
					out[i] = arr[j]
				}
			} else {
				for i := range out {
					j := int(math.Trunc(s[i])*a + math.Trunc(s2[i]))
					if j < 0 || j >= len(arr) {
						continue
					}
					out[i] = arr[j]
				}
			}
		}}, nil
	}
	return cexpr{ty: e.Elem, vec: func(ex *engineExec, out []float64) {
		arr := ex.locals[li]
		t, nt := idx.grab(ex)
		for i := range out {
			j := int(t[i])
			if j < 0 || j >= len(arr) {
				continue
			}
			out[i] = arr[j]
		}
		ex.putF(nt)
	}}, nil
}

func (c *compiler) compileSelect(e Select) (cexpr, error) {
	cnd, err := c.compileExpr(e.Cond)
	if err != nil {
		return cexpr{}, err
	}
	thn, err := c.compileExpr(e.Then)
	if err != nil {
		return cexpr{}, err
	}
	els, err := c.compileExpr(e.Else)
	if err != nil {
		return cexpr{}, err
	}
	ty := e.Then.Type()
	if cnd.isConst && thn.isConst && els.isConst {
		if cnd.cval != 0 {
			return constCexpr(ty, thn.cval), nil
		}
		return constCexpr(ty, els.cval), nil
	}
	if cnd.uniform() && thn.uniform() && els.uniform() {
		cu, tu, eu := cnd.uni, thn.uni, els.uni
		// All three arms evaluate, like the oracle (Select is branchless).
		return cexpr{ty: ty, uni: func(ex *engineExec) float64 {
			cv := cu(ex)
			tv := tu(ex)
			ev := eu(ex)
			if cv != 0 {
				return tv
			}
			return ev
		}}, nil
	}
	return cexpr{ty: ty, vec: func(ex *engineExec, out []float64) {
		cs, nc := cnd.grab(ex)
		ts, nt := thn.grab(ex)
		fs, nf := els.grab(ex)
		for i := range out {
			if cs[i] != 0 {
				out[i] = ts[i]
			} else {
				out[i] = fs[i]
			}
		}
		ex.putF(nc + nt + nf)
	}}, nil
}

// ---- scalar operator kernels ----

// binScalarOp returns the scalar form of evalBin's per-lane body for op;
// it must match evalBin bit for bit (note DivI/ModI test the raw divisor
// before truncating, exactly like the vector kernels).
func binScalarOp(op BinOp) func(x, y float64) float64 {
	switch op {
	case AddF:
		return func(x, y float64) float64 { return x + y }
	case SubF:
		return func(x, y float64) float64 { return x - y }
	case MulF:
		return func(x, y float64) float64 { return x * y }
	case DivF:
		return func(x, y float64) float64 { return x / y }
	case MinF:
		return math.Min
	case MaxF:
		return math.Max
	case AddI:
		return func(x, y float64) float64 { return math.Trunc(x) + math.Trunc(y) }
	case SubI:
		return func(x, y float64) float64 { return math.Trunc(x) - math.Trunc(y) }
	case MulI:
		return func(x, y float64) float64 { return math.Trunc(x) * math.Trunc(y) }
	case DivI:
		return func(x, y float64) float64 {
			if y != 0 {
				return math.Trunc(math.Trunc(x) / math.Trunc(y))
			}
			return 0
		}
	case ModI:
		return func(x, y float64) float64 {
			if y != 0 {
				return math.Mod(math.Trunc(x), math.Trunc(y))
			}
			return 0
		}
	case AndI:
		return func(x, y float64) float64 { return float64(int64(x) & int64(y)) }
	case OrI:
		return func(x, y float64) float64 { return float64(int64(x) | int64(y)) }
	case ShlI:
		return func(x, y float64) float64 { return float64(int64(x) << uint(int64(y)&63)) }
	case ShrI:
		return func(x, y float64) float64 { return float64(int64(x) >> uint(int64(y)&63)) }
	case LtF, LtI:
		return func(x, y float64) float64 { return b2f(x < y) }
	case LeF, LeI:
		return func(x, y float64) float64 { return b2f(x <= y) }
	case GtF, GtI:
		return func(x, y float64) float64 { return b2f(x > y) }
	case GeF, GeI:
		return func(x, y float64) float64 { return b2f(x >= y) }
	case EqF, EqI:
		return func(x, y float64) float64 { return b2f(x == y) }
	case NeI:
		return func(x, y float64) float64 { return b2f(x != y) }
	}
	// Unreachable for IR that passed Validate: unknown operators are
	// rejected at compile time (BinOp.Valid), never evaluated to 0.
	panic(fmt.Sprintf("ir: binScalarOp: unknown operator %s", op))
}

// builtinScalarOp returns the scalar form of the unary builtin, or nil if
// the builtin is unknown.
func builtinScalarOp(fn Builtin) func(float64) float64 {
	switch fn {
	case Sqrt:
		return math.Sqrt
	case Rsqrt:
		return func(x float64) float64 { return 1 / math.Sqrt(x) }
	case Exp:
		return math.Exp
	case Log:
		return math.Log
	case Sin:
		return math.Sin
	case Cos:
		return math.Cos
	case Fabs:
		return math.Abs
	case Floor:
		return math.Floor
	}
	return nil
}

// builtinVec applies the unary builtin lane-wise, mirroring the oracle's
// evalCall loops.
func builtinVec(fn Builtin, x, out []float64) {
	switch fn {
	case Sqrt:
		for i := range out {
			out[i] = math.Sqrt(x[i])
		}
	case Rsqrt:
		for i := range out {
			out[i] = 1 / math.Sqrt(x[i])
		}
	case Exp:
		for i := range out {
			out[i] = math.Exp(x[i])
		}
	case Log:
		for i := range out {
			out[i] = math.Log(x[i])
		}
	case Sin:
		for i := range out {
			out[i] = math.Sin(x[i])
		}
	case Cos:
		for i := range out {
			out[i] = math.Cos(x[i])
		}
	case Fabs:
		for i := range out {
			out[i] = math.Abs(x[i])
		}
	case Floor:
		for i := range out {
			out[i] = math.Floor(x[i])
		}
	}
}
