package ir

// Regression tests for corrupted-IR rejection. Out-of-range BinOp and
// Builtin codes (possible only in hand-built or corrupted trees — the
// parser can't produce them) used to slip through validation and reach
// binScalarOp/evalBin, which evaluated every unknown operator to 0:
// deterministic but silently wrong. They must now fail compilation in
// both engines AND in the tree-walking oracle, with the offending
// expression printed in the error for position.

import (
	"strings"
	"testing"
)

func TestInvalidOpRejectedEverywhere(t *testing.T) {
	cases := []struct {
		name    string
		body    []Stmt
		wantSub string
	}{
		{
			name: "bad binop",
			body: []Stmt{
				StoreF("out", Gid(0), Bin{Op: BinOp(250), X: F(1), Y: F(2)}),
			},
			wantSub: "unknown binary operator",
		},
		{
			name: "bad binop nested in branch",
			body: []Stmt{
				If{
					Cond: Bin{Op: LtF, X: ToFloat{X: Gid(0)}, Y: F(4)},
					Then: []Stmt{Set("v", Bin{Op: BinOp(99), X: F(1), Y: F(1)})},
				},
			},
			wantSub: "unknown binary operator",
		},
		{
			name: "bad builtin",
			body: []Stmt{
				StoreF("out", Gid(0), Call{Fn: Builtin(250), Args: []Expr{F(1)}}),
			},
			wantSub: "unknown builtin",
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			k := &Kernel{
				Name:    "corrupt",
				WorkDim: 1,
				Params:  []Param{Buf("out")},
				Body:    tc.body,
			}
			mk := func() *Args { return NewArgs().Bind("out", NewBufferF32("out", 8)) }
			nd := Range1D(8, 8)

			check := func(label string, err error) {
				t.Helper()
				if err == nil {
					t.Fatalf("%s: corrupted kernel executed without error", label)
				}
				if !strings.Contains(err.Error(), tc.wantSub) {
					t.Fatalf("%s: error %q does not mention %q", label, err, tc.wantSub)
				}
				// Positioned: the offending expression is printed.
				if !strings.Contains(err.Error(), " in ") {
					t.Fatalf("%s: error %q lacks the offending expression", label, err)
				}
				if !strings.Contains(err.Error(), "corrupt") {
					t.Fatalf("%s: error %q lacks the kernel name", label, err)
				}
			}

			check("engine v1", ExecRange(k, mk(), nd, ExecOptions{Engine: EngineV1}))
			check("engine v2", ExecRange(k, mk(), nd, ExecOptions{Engine: EngineV2}))
			check("oracle", ExecRangeOracle(k, mk(), nd, ExecOptions{}))
			check("validate", Validate(k))
		})
	}
}
