package ir

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Tracer observes the global-memory access stream of functional execution.
// The CPU cache-accurate mode implements it to drive the cache hierarchy
// with the kernel's real addresses.
//
// The engine buffers each workgroup's accesses and flushes them after the
// group completes, in ascending group order — one BeginGroup call followed
// by that group's accesses — so the observed stream is identical whether
// workgroups executed serially or in parallel. All Tracer methods are
// invoked from a single goroutine; implementations need no locking.
type Tracer interface {
	// BeginGroup announces that the following accesses belong to the
	// workgroup with the given linear index.
	BeginGroup(group int)
	// Access reports one global-memory access of size bytes at addr.
	Access(addr int64, size int64, write bool)
}

// AccessKind classifies a trace record. The zero value is a plain
// global-memory access, so code that fills only Addr/Size/Write keeps its
// historical meaning.
type AccessKind uint8

const (
	// KindGlobal is a global-memory (__global buffer) access.
	KindGlobal AccessKind = iota
	// KindLocal is a __local array access (hazard mode only).
	KindLocal
	// KindLocalAtomic is an atomic __local update (hazard mode only).
	// Same-cell atomic/atomic pairs are race-free by definition.
	KindLocalAtomic
	// KindBarrier marks a workgroup barrier in the stream: Addr is the
	// barrier's dynamic ordinal within the group (0-based) and Size the
	// number of lanes that reached it. It is not a memory access.
	KindBarrier
)

// Access is one buffered trace record. The engine collects these per
// workgroup and flushes them to the Tracer in group order. Kind
// distinguishes memory accesses from barrier markers; Lane is the
// workitem's linear index within its group and is only populated in
// hazard mode (ExecOptions.Hazards), where the analyzer needs to tell
// workitems apart.
type Access struct {
	Addr  int64
	Size  int64
	Write bool
	Kind  AccessKind
	Lane  int32
}

// BatchTracer is an optional Tracer extension: tracers that implement it
// receive each workgroup's accesses as one slice (after the BeginGroup
// call for that group) instead of one Access call per record, saving an
// interface call per access. The slice is only valid for the duration of
// the call; implementations must not retain it.
type BatchTracer interface {
	Tracer
	// AccessBatch reports all accesses of workgroup group, in program order.
	// The slice may contain non-KindGlobal marker records (barriers);
	// implementations that only model memory must skip them.
	AccessBatch(group int, recs []Access)
}

// MarkTracer is an optional Tracer extension for non-global records.
// Tracers that implement it receive barrier markers — and, in hazard
// mode, __local and lane-annotated records — via Mark, interleaved in
// program order with the Access stream. Tracers without it see only the
// plain global-memory stream through Access (batch delivery is
// unaffected: AccessBatch always carries every record).
type MarkTracer interface {
	Tracer
	// Mark reports one non-global record (rec.Kind != KindGlobal), or, in
	// hazard mode, any record with hazard annotations.
	Mark(rec Access)
}

// EngineSel selects which compiled execution engine ExecRange uses.
type EngineSel uint8

const (
	// EngineAuto picks the default engine (currently v2, the lane-batched
	// SIMD-style engine).
	EngineAuto EngineSel = iota
	// EngineV1 forces the PR-4 closure engine (one lane-vector op per
	// closure call). Kept selectable for differential testing and A/B
	// benchmarking.
	EngineV1
	// EngineV2 forces the lane-batched engine (engine2.go/compile2.go).
	EngineV2
)

// ExecOptions controls functional execution of an NDRange.
type ExecOptions struct {
	// Parallel is the number of concurrent workers executing workgroups.
	// 0 or 1 executes serially. Tracing no longer forces serial execution:
	// workgroups run concurrently and their buffered access streams are
	// flushed to the Tracer in group order, so the observed stream is the
	// same as a serial run.
	Parallel int
	// Tracer, when non-nil, receives every global memory access.
	Tracer Tracer
	// Groups, when non-nil, selects which linear workgroup indices to
	// execute (sampled tracing). nil executes all groups.
	Groups func(g int) bool
	// Hazards enables hazard-analysis tracing (internal/san): every
	// record — global, __local, atomic, barrier — is delivered through the
	// tracer's MarkTracer extension with Kind and Lane populated, and
	// global loads record all in-bounds lanes. Only ExecRangeOracle
	// supports it (the compiled engine fuses accesses and cannot attribute
	// lanes); ExecRange rejects it.
	Hazards bool
	// Engine selects the execution engine. Both engines are bitwise
	// identical (buffers and trace streams) to ExecRangeOracle; they
	// differ only in speed.
	Engine EngineSel
}

// GroupCounts returns the number of workgroups in each dimension.
func (r NDRange) GroupCounts() [3]int {
	var c [3]int
	for i := 0; i < 3; i++ {
		g, l := r.Global[i], r.Local[i]
		if g == 0 {
			g = 1
		}
		if l == 0 {
			l = 1
		}
		c[i] = (g + l - 1) / l
	}
	return c
}

// GroupCoord converts a linear workgroup index into per-dimension
// coordinates (x fastest).
func (r NDRange) GroupCoord(g int) [3]int {
	c := r.GroupCounts()
	return [3]int{g % c[0], (g / c[0]) % c[1], g / (c[0] * c[1])}
}

// maxLoopIter bounds any single For loop; exceeding it aborts execution
// with an error rather than hanging the process.
const maxLoopIter = 1 << 27

// ExecRange functionally executes the kernel over the whole NDRange,
// writing real results into the bound buffers. The local size must be
// resolved (non-NULL); device layers pick defaults before calling.
//
// Execution uses the closure-compiled engine: the kernel body is lowered
// once to slot-indexed closures (see compile.go) and the compiled program
// is cached by the kernel's canonical-print digest, so repeated launches
// — tuner sweeps, suite repetitions — never recompile. The retained
// tree-walking interpreter is available as ExecRangeOracle for
// differential testing.
func ExecRange(k *Kernel, args *Args, nd NDRange, opts ExecOptions) error {
	if err := nd.Validate(); err != nil {
		return err
	}
	if nd.LocalNull() {
		return fmt.Errorf("ir: ExecRange %s: local size must be resolved", k.Name)
	}
	if opts.Hazards {
		return fmt.Errorf("ir: ExecRange %s: hazard tracing requires ExecRangeOracle", k.Name)
	}
	// Compile for the selected engine; both caches are digest-keyed and
	// single-flight. newEngine constructs one per-worker runner.
	var newEngine func(tracing bool) engineRunner
	if opts.Engine == EngineV1 {
		prog, err := compiledProgram(k)
		if err != nil {
			return err
		}
		newEngine = func(tracing bool) engineRunner { return newEngineExec(prog, args, nd, tracing) }
	} else {
		prog, err := compiledProgram2(k)
		if err != nil {
			return err
		}
		newEngine = func(tracing bool) engineRunner { return newExec2(prog, args, nd, tracing) }
	}
	if err := checkArgs(k, args); err != nil {
		return err
	}

	ngroups := nd.NumGroups()
	workers := opts.Parallel
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > ngroups {
		workers = ngroups
	}

	if opts.Tracer != nil {
		if workers <= 1 || ngroups == 1 {
			return runTracedSerial(newEngine, opts, ngroups)
		}
		return runTracedParallel(newEngine, opts, ngroups, workers)
	}

	run := func(lo, hi int) error {
		ex := newEngine(false)
		for g := lo; g < hi; g++ {
			if opts.Groups != nil && !opts.Groups(g) {
				continue
			}
			if err := ex.runGroup(g); err != nil {
				return err
			}
		}
		return nil
	}
	if workers <= 1 || ngroups == 1 {
		return run(0, ngroups)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	chunk := (ngroups + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > ngroups {
			hi = ngroups
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := run(lo, hi); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	return firstErr
}

// flushGroup delivers one workgroup's buffered access records to the
// tracer: BeginGroup, then the records (as one batch when supported).
// bt and mt are the results of single up-front type assertions so the
// per-group cost is one branch, not one assertion. On the streaming path
// non-global marker records (barriers) go through Mark when the tracer
// supports it and are dropped otherwise, so memory-only tracers keep
// seeing exactly the access stream they always did.
func flushGroup(tr Tracer, bt BatchTracer, mt MarkTracer, g int, recs []Access) {
	tr.BeginGroup(g)
	if bt != nil {
		bt.AccessBatch(g, recs)
		return
	}
	for _, a := range recs {
		if a.Kind == KindGlobal {
			tr.Access(a.Addr, a.Size, a.Write)
		} else if mt != nil {
			mt.Mark(a)
		}
	}
}

// engineRunner is the per-worker execution surface shared by both
// compiled engines: untraced group execution, and traced execution into
// a caller-recycled record buffer. The trace drivers below are engine-
// agnostic; only construction (and compilation) differs.
type engineRunner interface {
	// runGroup executes workgroup g without touching the trace buffer.
	runGroup(g int) error
	// runTraced executes workgroup g, buffering its accesses into buf
	// (reset to length 0 first) and returning the filled buffer. A failed
	// group returns its partial buffer, which the caller must not flush.
	runTraced(g int, buf []Access) ([]Access, error)
}

// runTracedSerial executes groups in order on one engine, flushing each
// group's access buffer as soon as the group completes. A group that
// fails flushes nothing (the launch is aborted anyway).
func runTracedSerial(newEngine func(tracing bool) engineRunner, opts ExecOptions, ngroups int) error {
	bt, _ := opts.Tracer.(BatchTracer)
	mt, _ := opts.Tracer.(MarkTracer)
	ex := newEngine(true)
	var buf []Access
	for g := 0; g < ngroups; g++ {
		if opts.Groups != nil && !opts.Groups(g) {
			continue
		}
		recs, err := ex.runTraced(g, buf)
		if err != nil {
			return err
		}
		flushGroup(opts.Tracer, bt, mt, g, recs)
		buf = recs
	}
	return nil
}

// tracedResult carries one executed workgroup from a worker to the
// flusher: its position in the selected-group sequence, its buffered
// accesses, and its error, if any.
type tracedResult struct {
	idx  int // index into the selected-group sequence
	g    int // linear workgroup id
	recs []Access
	err  error
}

// runTracedParallel executes workgroups concurrently while presenting the
// tracer with exactly the serial access stream: workers buffer each
// group's accesses and a single flusher goroutine (this one) replays the
// buffers in group order. A bounded free list of record buffers caps how
// far execution can run ahead of flushing. On the first in-order error,
// flushing stops — the tracer sees exactly the groups a serial run would
// have completed before the failure — while remaining results are still
// drained so no worker blocks.
func runTracedParallel(newEngine func(tracing bool) engineRunner, opts ExecOptions, ngroups, workers int) error {
	// Materialize the selected groups so workers and flusher agree on the
	// dense sequence even under a sparse opts.Groups filter.
	selected := make([]int, 0, ngroups)
	for g := 0; g < ngroups; g++ {
		if opts.Groups == nil || opts.Groups(g) {
			selected = append(selected, g)
		}
	}
	if len(selected) == 0 {
		return nil
	}
	if workers > len(selected) {
		workers = len(selected)
	}

	bt, _ := opts.Tracer.(BatchTracer)
	mt, _ := opts.Tracer.(MarkTracer)
	nbuf := workers * 2
	free := make(chan []Access, nbuf)
	for i := 0; i < nbuf; i++ {
		free <- nil
	}
	results := make(chan tracedResult, nbuf)

	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex := newEngine(true)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(selected) {
					return
				}
				buf := <-free
				recs, err := ex.runTraced(selected[i], buf)
				results <- tracedResult{idx: i, g: selected[i], recs: recs, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Single-threaded in-order flush: buffer out-of-order arrivals, flush
	// runs of consecutive indices, recycle buffers immediately.
	pending := make(map[int]tracedResult, nbuf)
	flushNext := 0
	var firstErr error
	for r := range results {
		pending[r.idx] = r
		for {
			p, ok := pending[flushNext]
			if !ok {
				break
			}
			delete(pending, flushNext)
			if firstErr == nil {
				if p.err != nil {
					firstErr = p.err
				} else {
					flushGroup(opts.Tracer, bt, mt, p.g, p.recs)
				}
			}
			free <- p.recs
			flushNext++
		}
	}
	return firstErr
}

func checkArgs(k *Kernel, args *Args) error {
	for _, p := range k.Params {
		switch p.Kind {
		case BufferParam:
			b, ok := args.Buffers[p.Name]
			if !ok || b == nil {
				return fmt.Errorf("ir: kernel %s: buffer argument %q not bound", k.Name, p.Name)
			}
			if b.Elem != p.Elem {
				return fmt.Errorf("ir: kernel %s: buffer %q is %s, parameter wants %s",
					k.Name, p.Name, b.Elem, p.Elem)
			}
		case ScalarParam:
			if _, ok := args.Scalars[p.Name]; !ok {
				return fmt.Errorf("ir: kernel %s: scalar argument %q not set", k.Name, p.Name)
			}
		}
	}
	return nil
}

// execError aborts interpretation via panic/recover with a descriptive
// message (out-of-bounds access, unbound name).
type execError struct{ err error }

func anyActive(mask []bool) bool {
	for _, m := range mask {
		if m {
			return true
		}
	}
	return false
}

func evalBin(op BinOp, x, y, out []float64) {
	switch op {
	case AddF:
		for i := range out {
			out[i] = x[i] + y[i]
		}
	case SubF:
		for i := range out {
			out[i] = x[i] - y[i]
		}
	case MulF:
		for i := range out {
			out[i] = x[i] * y[i]
		}
	case DivF:
		for i := range out {
			out[i] = x[i] / y[i]
		}
	case MinF:
		for i := range out {
			out[i] = math.Min(x[i], y[i])
		}
	case MaxF:
		for i := range out {
			out[i] = math.Max(x[i], y[i])
		}
	case AddI:
		for i := range out {
			out[i] = math.Trunc(x[i]) + math.Trunc(y[i])
		}
	case SubI:
		for i := range out {
			out[i] = math.Trunc(x[i]) - math.Trunc(y[i])
		}
	case MulI:
		for i := range out {
			out[i] = math.Trunc(x[i]) * math.Trunc(y[i])
		}
	case DivI:
		for i := range out {
			if y[i] != 0 {
				out[i] = math.Trunc(math.Trunc(x[i]) / math.Trunc(y[i]))
			} else {
				out[i] = 0
			}
		}
	case ModI:
		for i := range out {
			if y[i] != 0 {
				out[i] = math.Mod(math.Trunc(x[i]), math.Trunc(y[i]))
			} else {
				out[i] = 0
			}
		}
	case AndI:
		for i := range out {
			out[i] = float64(int64(x[i]) & int64(y[i]))
		}
	case OrI:
		for i := range out {
			out[i] = float64(int64(x[i]) | int64(y[i]))
		}
	case ShlI:
		for i := range out {
			out[i] = float64(int64(x[i]) << uint(int64(y[i])&63))
		}
	case ShrI:
		for i := range out {
			out[i] = float64(int64(x[i]) >> uint(int64(y[i])&63))
		}
	case LtF, LtI:
		for i := range out {
			out[i] = b2f(x[i] < y[i])
		}
	case LeF, LeI:
		for i := range out {
			out[i] = b2f(x[i] <= y[i])
		}
	case GtF, GtI:
		for i := range out {
			out[i] = b2f(x[i] > y[i])
		}
	case GeF, GeI:
		for i := range out {
			out[i] = b2f(x[i] >= y[i])
		}
	case EqF, EqI:
		for i := range out {
			out[i] = b2f(x[i] == y[i])
		}
	case NeI:
		for i := range out {
			out[i] = b2f(x[i] != y[i])
		}
	}
}

// evalBinSV is evalBin with a lane-invariant left operand: out[i] =
// op(x, y[i]) without materializing the splatted x. Each case must be
// bit-identical to evalBin's body with x[i] == x for every lane.
func evalBinSV(op BinOp, x float64, y, out []float64) {
	switch op {
	case AddF:
		for i := range out {
			out[i] = x + y[i]
		}
	case SubF:
		for i := range out {
			out[i] = x - y[i]
		}
	case MulF:
		for i := range out {
			out[i] = x * y[i]
		}
	case DivF:
		for i := range out {
			out[i] = x / y[i]
		}
	case MinF:
		for i := range out {
			out[i] = math.Min(x, y[i])
		}
	case MaxF:
		for i := range out {
			out[i] = math.Max(x, y[i])
		}
	case AddI:
		tx := math.Trunc(x)
		for i := range out {
			out[i] = tx + math.Trunc(y[i])
		}
	case SubI:
		tx := math.Trunc(x)
		for i := range out {
			out[i] = tx - math.Trunc(y[i])
		}
	case MulI:
		tx := math.Trunc(x)
		for i := range out {
			out[i] = tx * math.Trunc(y[i])
		}
	case DivI:
		tx := math.Trunc(x)
		for i := range out {
			if y[i] != 0 {
				out[i] = math.Trunc(tx / math.Trunc(y[i]))
			} else {
				out[i] = 0
			}
		}
	case ModI:
		tx := math.Trunc(x)
		for i := range out {
			if y[i] != 0 {
				out[i] = math.Mod(tx, math.Trunc(y[i]))
			} else {
				out[i] = 0
			}
		}
	case AndI:
		ix := int64(x)
		for i := range out {
			out[i] = float64(ix & int64(y[i]))
		}
	case OrI:
		ix := int64(x)
		for i := range out {
			out[i] = float64(ix | int64(y[i]))
		}
	case ShlI:
		ix := int64(x)
		for i := range out {
			out[i] = float64(ix << uint(int64(y[i])&63))
		}
	case ShrI:
		ix := int64(x)
		for i := range out {
			out[i] = float64(ix >> uint(int64(y[i])&63))
		}
	case LtF, LtI:
		for i := range out {
			out[i] = b2f(x < y[i])
		}
	case LeF, LeI:
		for i := range out {
			out[i] = b2f(x <= y[i])
		}
	case GtF, GtI:
		for i := range out {
			out[i] = b2f(x > y[i])
		}
	case GeF, GeI:
		for i := range out {
			out[i] = b2f(x >= y[i])
		}
	case EqF, EqI:
		for i := range out {
			out[i] = b2f(x == y[i])
		}
	case NeI:
		for i := range out {
			out[i] = b2f(x != y[i])
		}
	}
}

// evalBinVS is evalBin with a lane-invariant right operand: out[i] =
// op(x[i], y), bit-identical to evalBin with y[i] == y for every lane.
func evalBinVS(op BinOp, x []float64, y float64, out []float64) {
	switch op {
	case AddF:
		for i := range out {
			out[i] = x[i] + y
		}
	case SubF:
		for i := range out {
			out[i] = x[i] - y
		}
	case MulF:
		for i := range out {
			out[i] = x[i] * y
		}
	case DivF:
		for i := range out {
			out[i] = x[i] / y
		}
	case MinF:
		for i := range out {
			out[i] = math.Min(x[i], y)
		}
	case MaxF:
		for i := range out {
			out[i] = math.Max(x[i], y)
		}
	case AddI:
		ty := math.Trunc(y)
		for i := range out {
			out[i] = math.Trunc(x[i]) + ty
		}
	case SubI:
		ty := math.Trunc(y)
		for i := range out {
			out[i] = math.Trunc(x[i]) - ty
		}
	case MulI:
		ty := math.Trunc(y)
		for i := range out {
			out[i] = math.Trunc(x[i]) * ty
		}
	case DivI:
		if y != 0 {
			ty := math.Trunc(y)
			for i := range out {
				out[i] = math.Trunc(math.Trunc(x[i]) / ty)
			}
		} else {
			for i := range out {
				out[i] = 0
			}
		}
	case ModI:
		if y != 0 {
			ty := math.Trunc(y)
			for i := range out {
				out[i] = math.Mod(math.Trunc(x[i]), ty)
			}
		} else {
			for i := range out {
				out[i] = 0
			}
		}
	case AndI:
		iy := int64(y)
		for i := range out {
			out[i] = float64(int64(x[i]) & iy)
		}
	case OrI:
		iy := int64(y)
		for i := range out {
			out[i] = float64(int64(x[i]) | iy)
		}
	case ShlI:
		sh := uint(int64(y) & 63)
		for i := range out {
			out[i] = float64(int64(x[i]) << sh)
		}
	case ShrI:
		sh := uint(int64(y) & 63)
		for i := range out {
			out[i] = float64(int64(x[i]) >> sh)
		}
	case LtF, LtI:
		for i := range out {
			out[i] = b2f(x[i] < y)
		}
	case LeF, LeI:
		for i := range out {
			out[i] = b2f(x[i] <= y)
		}
	case GtF, GtI:
		for i := range out {
			out[i] = b2f(x[i] > y)
		}
	case GeF, GeI:
		for i := range out {
			out[i] = b2f(x[i] >= y)
		}
	case EqF, EqI:
		for i := range out {
			out[i] = b2f(x[i] == y)
		}
	case NeI:
		for i := range out {
			out[i] = b2f(x[i] != y)
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
