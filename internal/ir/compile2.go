package ir

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// This file lowers a kernel for engine v2 (engine2.go). The front-end
// analyses (name resolution, uniformity inference, slot assignment,
// liveness) are shared with the v1 lowering via newCompiler; the
// differences are all in the back end:
//
//   - expressions compile to grpGet closures that evaluate the whole
//     group per call into flat padded slabs (a depth-allocated register
//     file), so each op is one closure invocation running unconditional
//     flat loops — no per-lane mask branches, no scratch pools;
//   - divergence is byte-per-block bitmasks with branchless masked-select
//     assignment over 8-lane block views;
//   - a fused multiply-add peephole rewrites AddF/SubF-over-MulF into a
//     single pass (the explicit float64(a*b) conversion keeps the product
//     rounding, so the value is bit-identical to the two-op form and the
//     Go compiler may not contract it into a hardware FMA), and fused
//     local-gather loops collapse gather + multiply chains;
//   - affine gather plans with uniform scales over gid/lid hoist to
//     per-group base slabs (loop-invariant address precomputation).
//
// Because every op evaluates the whole group in one call and ops are
// invoked in source traversal order, trace records append to ex.tb
// directly in the oracle's op-major order: index loads before value
// loads before a store's own writes, left operands before right.
//
// Bit-exactness against oracle.go is load-bearing everywhere below;
// comments flag each place a reordering or refactoring is only legal
// because some part is trace-free or value-preserving.

// uni2Fn evaluates a lane-invariant expression to its per-group scalar.
type uni2Fn func(ex *exec2) float64

// grpGet evaluates an expression for the whole group: the result is
// either a direct view into SoA storage (source leaves) or ex.regs[d]
// filled by the call, always ex.np long. Pad lanes may hold garbage;
// consumers only use lanes the oracle semantics make observable.
type grpGet func(ex *exec2) []float64

// setup2Fn runs once per root evaluation, staging uniform values (gather
// offsets/scales, scalar operands) into ex.ustash so hot loops read a
// float instead of re-walking a uniform expression tree. Uniform
// expressions are side-effect- and trace-free, so hoisting them to the
// root preamble is unobservable.
type setup2Fn func(ex *exec2)

// stmt2Fn executes one lowered statement under the given block bitmasks.
// Callers guarantee at least one active lane (statement-level control
// flow skips fully-inactive branches and loops, exactly like v1 and the
// oracle).
type stmt2Fn func(ex *exec2, mask []uint8)

// cexpr2 is a compiled expression: exactly one of uni or get is set.
type cexpr2 struct {
	ty      Type
	isConst bool
	cval    float64
	uni     uni2Fn
	get     grpGet
	isSrc   bool // get returns a storage view; never write through it

	// intoF, when non-nil, evaluates the whole group straight into dst
	// with the assignment's float32 store rounding fused in: each lane
	// holds float64(float32(v)) of the value get would produce, with the
	// identical loads in the identical order (same trace records).
	// Populated only for hot fused shapes; compileAssign2's full-mask
	// path uses it to skip the intermediate register slab and the
	// separate rounding pass.
	intoF func(ex *exec2, dst []float64)
}

func (ce *cexpr2) uniform() bool { return ce.uni != nil }

func const2(ty Type, v float64) cexpr2 {
	return cexpr2{ty: ty, isConst: true, cval: v, uni: func(*exec2) float64 { return v }}
}

// root2 is a statement operand with its staging thunks.
type root2 struct {
	ce     cexpr2
	setups []setup2Fn
}

func (r *root2) prep(ex *exec2) {
	for _, s := range r.setups {
		s(ex)
	}
}

// progLocal2 is a compiled __local declaration for engine v2.
type progLocal2 struct {
	name string
	size root2
}

// basePlan2 is a loop-invariant gather base: per group, engine v2
// precomputes bases[p][i] = src[i]*Trunc(scale) where src is a gid/lid
// table and scale is built only from constants, scalar params and launch
// geometry (bakeSafe). Ids are integral, so the unfused formula's
// Trunc(src) is the identity and the baked product is bit-identical.
type basePlan2 struct {
	fn    IDFunc
	dim   int
	scale uni2Fn
}

// program2 is the compiled, immutable engine-v2 form of a kernel.
type program2 struct {
	name      string
	nvslots   int
	nuslots   int
	nregs     int // expression register file size
	nstash    int // uniform staging slots
	zeroSlots []int
	buffers   []string
	scalars   []string
	locals    []progLocal2
	bases     []basePlan2
	body      []stmt2Fn
}

// ---- program cache (single-flight, digest-keyed, mirrors progCache) ----

var prog2Cache = struct {
	sync.Mutex
	m map[string]*prog2Entry
}{m: map[string]*prog2Entry{}}

type prog2Entry struct {
	done chan struct{}
	prog *program2
	err  error
}

func compiledProgram2(k *Kernel) (*program2, error) {
	d := Digest(k)
	prog2Cache.Lock()
	if e, ok := prog2Cache.m[d]; ok {
		prog2Cache.Unlock()
		<-e.done
		return e.prog, e.err
	}
	if len(prog2Cache.m) >= progCacheCap {
		prog2Cache.m = make(map[string]*prog2Entry)
	}
	e := &prog2Entry{done: make(chan struct{})}
	prog2Cache.m[d] = e
	prog2Cache.Unlock()

	if err := Validate(k); err != nil {
		e.err = err
	} else {
		e.prog, e.err = compileKernel2(k)
	}
	close(e.done)
	return e.prog, e.err
}

// ---- compiler ----

type compiler2 struct {
	*compiler
	p        *program2
	setups   []setup2Fn // staging thunks of the root being compiled
	nregs    int
	nstash   int
	baseKeys map[string]int // dedup key -> index into p.bases
}

func compileKernel2(k *Kernel) (*program2, error) {
	c, buffers, scalars := newCompiler(k)
	p := &program2{name: k.Name, buffers: buffers, scalars: scalars}
	c2 := &compiler2{compiler: c, p: p, baseKeys: map[string]int{}}

	for _, la := range k.Locals {
		size, err := c2.compileRoot(la.Size)
		if err != nil {
			return nil, err
		}
		p.locals = append(p.locals, progLocal2{name: la.Name, size: size})
	}

	body, err := c2.compileStmts2(k.Body)
	if err != nil {
		return nil, err
	}
	p.body = body
	p.nvslots = c.nvslots
	p.nuslots = c.nuslots
	p.zeroSlots = c.liveZeroSlots(k.Body)
	p.nregs = c2.nregs
	p.nstash = c2.nstash
	return p, nil
}

func (c2 *compiler2) touchReg(d int) {
	if d+1 > c2.nregs {
		c2.nregs = d + 1
	}
}

func (c2 *compiler2) allocStash() int {
	s := c2.nstash
	c2.nstash++
	return s
}

// beginRoot/endRoot bracket the compilation of one statement's operand
// set: setups accumulated in between belong to that statement.
func (c2 *compiler2) beginRoot() (saved []setup2Fn) {
	saved = c2.setups
	c2.setups = nil
	return
}

func (c2 *compiler2) endRoot(saved []setup2Fn) []setup2Fn {
	setups := c2.setups
	c2.setups = saved
	return setups
}

func (c2 *compiler2) compileRoot(e Expr) (root2, error) {
	saved := c2.beginRoot()
	ce, err := c2.compileExpr2(e, 0)
	setups := c2.endRoot(saved)
	return root2{ce: ce, setups: setups}, err
}

// uniVal stages a uniform operand: constants become captured values,
// everything else is written to a stash slot once per root evaluation.
func (c2 *compiler2) uniVal(ce cexpr2) func(*exec2) float64 {
	if ce.isConst {
		v := ce.cval
		return func(*exec2) float64 { return v }
	}
	u := ce.uni
	os := c2.allocStash()
	c2.setups = append(c2.setups, func(ex *exec2) { ex.ustash[os] = u(ex) })
	return func(ex *exec2) float64 { return ex.ustash[os] }
}

// asGet adapts any compiled expression to a grpGet, splatting uniforms.
// Splatting reproduces the oracle exactly: uniform subtrees evaluate to
// the same value in every lane.
func (c2 *compiler2) asGet(ce cexpr2, d int) grpGet {
	if ce.uni == nil {
		return ce.get
	}
	f := c2.uniVal(ce)
	c2.touchReg(d)
	return func(ex *exec2) []float64 {
		v := f(ex)
		out := ex.regs[d][:ex.hi]
		for i := range out {
			out[i] = v
		}
		return out
	}
}

// blk returns the 8-lane block view at block b of a flat slab.
func blk(s []float64, b int) *vreg { return (*vreg)(s[b*laneW:]) }

// ---- branchless masked writes ----

// Lane selection is a bitwise blend: keep is all-ones for active lanes.
// Inactive lanes are rewritten with their own value, which is observably
// identical to v1's skip (one goroutine owns a group's state).

func selSplat(d *vreg, v float64, m uint8) {
	nv := math.Float64bits(v)
	for i := 0; i < laneW; i++ {
		keep := -uint64(m >> uint(i) & 1)
		d[i] = math.Float64frombits(nv&keep | math.Float64bits(d[i])&^keep)
	}
}

func selWriteF(d, v *vreg, m uint8) {
	for i := 0; i < laneW; i++ {
		keep := -uint64(m >> uint(i) & 1)
		nv := math.Float64bits(float64(float32(v[i])))
		d[i] = math.Float64frombits(nv&keep | math.Float64bits(d[i])&^keep)
	}
}

func selWriteI(d, v *vreg, m uint8) {
	for i := 0; i < laneW; i++ {
		keep := -uint64(m >> uint(i) & 1)
		nv := math.Float64bits(math.Trunc(v[i]))
		d[i] = math.Float64frombits(nv&keep | math.Float64bits(d[i])&^keep)
	}
}

// selStepU applies the For-step update v = Trunc(v+t) to active lanes.
func selStepU(d *vreg, t float64, m uint8) {
	for i := 0; i < laneW; i++ {
		keep := -uint64(m >> uint(i) & 1)
		nv := math.Float64bits(math.Trunc(d[i] + t))
		d[i] = math.Float64frombits(nv&keep | math.Float64bits(d[i])&^keep)
	}
}

func selStepV(d, s *vreg, m uint8) {
	for i := 0; i < laneW; i++ {
		keep := -uint64(m >> uint(i) & 1)
		nv := math.Float64bits(math.Trunc(d[i] + s[i]))
		d[i] = math.Float64frombits(nv&keep | math.Float64bits(d[i])&^keep)
	}
}

// nzMask returns the bitmask of lanes where c is nonzero.
func nzMask(c *vreg) uint8 {
	var m uint8
	for i := 0; i < laneW; i++ {
		if c[i] != 0 {
			m |= 1 << uint(i)
		}
	}
	return m
}

// ---- statement lowering ----

func (c2 *compiler2) compileStmts2(stmts []Stmt) ([]stmt2Fn, error) {
	var fns []stmt2Fn
	for _, s := range stmts {
		f, err := c2.compileStmt2(s)
		if err != nil {
			return nil, err
		}
		if f != nil {
			fns = append(fns, f)
		}
	}
	return fns, nil
}

func (c2 *compiler2) compileStmt2(s Stmt) (stmt2Fn, error) {
	switch s := s.(type) {
	case Assign:
		return c2.compileAssign2(s)
	case Store:
		return c2.compileStore2(s)
	case LocalStore:
		return c2.compileLocalStore2(s)
	case AtomicAdd:
		return c2.compileAtomicAdd2(s)
	case If:
		return c2.compileIf2(s)
	case For:
		return c2.compileFor2(s)
	case Barrier:
		// Same contract as v1: a no-op functionally, a KindBarrier marker
		// carrying the dynamic ordinal and active-lane count when traced.
		return func(ex *exec2, mask []uint8) {
			if !ex.tracing {
				return
			}
			ex.tb = append(ex.tb, Access{
				Kind: KindBarrier,
				Addr: ex.barSeq,
				Size: int64(ex.activeCount(mask)),
			})
			ex.barSeq++
		}, nil
	default:
		return nil, c2.errf("unknown statement %T", s)
	}
}

func (c2 *compiler2) compileAssign2(s Assign) (stmt2Fn, error) {
	val, err := c2.compileRoot(s.Val)
	if err != nil {
		return nil, err
	}
	isF := s.Val.Type() == F32
	if c2.uniformVar[s.Dst] {
		slot := c2.uslot[s.Dst]
		u := val.ce.uni
		if isF {
			return func(ex *exec2, mask []uint8) {
				ex.uvals[slot] = float64(float32(u(ex)))
			}, nil
		}
		return func(ex *exec2, mask []uint8) {
			ex.uvals[slot] = math.Trunc(u(ex))
		}, nil
	}
	slot := c2.vslot[s.Dst]
	if val.ce.uniform() {
		// Uniform value: no loads possible, so no traces; splat with the
		// branchless select (full blocks write all lanes, pads included —
		// pad values are never observable).
		u := val.ce.uni
		return func(ex *exec2, mask []uint8) {
			v := u(ex)
			if isF {
				v = float64(float32(v))
			} else {
				v = math.Trunc(v)
			}
			dst := ex.vals[slot]
			if ex.isFull(mask) {
				for i := range dst {
					dst[i] = v
				}
				return
			}
			hb := ex.hi / laneW
			for b := 0; b < hb; b++ {
				if m := mask[b]; m != 0 {
					selSplat(blk(dst, b), v, m)
				}
			}
		}, nil
	}
	get := val.ce.get
	// Fused hot path: a value shape that can evaluate straight into the
	// destination slot with the f32 store rounding folded into its own
	// lane loop (same loads, same trace records) skips the register slab
	// round-trip entirely when every lane is active.
	if intoF := val.ce.intoF; intoF != nil && isF {
		return func(ex *exec2, mask []uint8) {
			val.prep(ex)
			if ex.isFull(mask) {
				intoF(ex, ex.vals[slot])
				return
			}
			v := get(ex)
			dst := ex.vals[slot]
			hb := ex.hi / laneW
			for b := 0; b < hb; b++ {
				m := mask[b]
				if m == 0 {
					continue
				}
				d, sv := blk(dst, b), blk(v, b)
				if m == 0xff {
					for i := 0; i < laneW; i++ {
						d[i] = float64(float32(sv[i]))
					}
				} else {
					selWriteF(d, sv, m)
				}
			}
		}, nil
	}
	return func(ex *exec2, mask []uint8) {
		val.prep(ex)
		v := get(ex) // whole group, like the oracle (inactive lanes too)
		dst := ex.vals[slot]
		if ex.isFull(mask) {
			v = v[:len(dst)]
			if isF {
				for i := range dst {
					dst[i] = float64(float32(v[i]))
				}
			} else {
				for i := range dst {
					dst[i] = math.Trunc(v[i])
				}
			}
			return
		}
		hb := ex.hi / laneW
		for b := 0; b < hb; b++ {
			m := mask[b]
			if m == 0 {
				continue
			}
			d, sv := blk(dst, b), blk(v, b)
			if m == 0xff {
				if isF {
					for i := 0; i < laneW; i++ {
						d[i] = float64(float32(sv[i]))
					}
				} else {
					for i := 0; i < laneW; i++ {
						d[i] = math.Trunc(sv[i])
					}
				}
			} else if isF {
				selWriteF(d, sv, m)
			} else {
				selWriteI(d, sv, m)
			}
		}
	}, nil
}

// scatterKind abstracts the three scatter statements' targets so one
// lowering covers Store/LocalStore/AtomicAdd. Global stores trace and
// round via Buffer.Set; local stores round to float32; atomic adds
// accumulate raw.
type scatterKind int

const (
	scatGlobal scatterKind = iota
	scatLocal
	scatAtomic
)

// compileScatter2 lowers a masked scatter. Group-wide evaluation gives
// the oracle's phase order for free: the index expression evaluates
// fully (tracing its loads), then the value expression (tracing its
// loads), then the writes happen block-ascending, lane-ascending with
// their own trace records — so value expressions that read the written
// buffer or local array see the pre-store state, exactly like v1.
func (c2 *compiler2) compileScatter2(kind scatterKind, target int, name string, elemSize int64, index, valE Expr) (stmt2Fn, error) {
	saved := c2.beginRoot()

	var idxU uni2Fn
	var p *plan2
	var idxGet grpGet
	if c2.exprUniform(index) {
		ce, err := c2.compileExpr2(index, 0)
		if err != nil {
			return nil, err
		}
		idxU = ce.uni
	} else if p = c2.plan2Of(index); p == nil {
		ce, err := c2.compileExpr2(index, 0)
		if err != nil {
			return nil, err
		}
		idxGet = ce.get
	}

	valBase := c2.nregs // disjoint from every index register
	vce, err := c2.compileExpr2(valE, valBase)
	if err != nil {
		return nil, err
	}
	var valU func(*exec2) float64
	var valGet grpGet
	if vce.uniform() {
		valU = c2.uniVal(vce)
	} else {
		valGet = vce.get
	}
	setups := c2.endRoot(saved)

	failFmt := map[scatterKind]string{
		scatGlobal: "store %s[%d] out of bounds (len %d)",
		scatLocal:  "local store %s[%d] out of bounds (len %d)",
		scatAtomic: "atomic add %s[%d] out of bounds (len %d)",
	}[kind]
	global := kind == scatGlobal

	// The hot scatter shape — planned index, vector value — gets
	// specialized write loops with the index plan unpacked inline, so the
	// per-lane body carries no closure-variant switches. Same phase
	// order, write order, bounds message and rounding as the generic
	// path below.
	if p != nil && valGet != nil && kind != scatAtomic {
		return func(ex *exec2, mask []uint8) {
			for _, f := range setups {
				f(ex)
			}
			ps, bkd, pa, po, ps2 := p.setup(ex)
			vs := valGet(ex)
			var buf *Buffer
			var arr []float64
			var bound int
			if global {
				buf = ex.bufs[target]
				bound = len(buf.Data)
			} else {
				arr = ex.locals[target]
				bound = len(arr)
			}
			hb := ex.hi / laneW
			for b := 0; b < hb; b++ {
				m := mask[b]
				if m == 0 {
					continue
				}
				base := b * laneW
				if m == 0xff {
					for i := base; i < base+laneW; i++ {
						v := po
						if ps2 != nil {
							v += math.Trunc(ps2[i])
						}
						var j int
						if bkd {
							j = int(ps[i] + v)
						} else {
							j = int(math.Trunc(ps[i])*pa + v)
						}
						if uint(j) >= uint(bound) {
							ex.fail(failFmt, name, j, bound)
						}
						if global {
							buf.Set(j, vs[i])
							if ex.tracing {
								ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: elemSize, Write: true})
							}
						} else {
							arr[j] = float64(float32(vs[i]))
						}
					}
					continue
				}
				for bm := m; bm != 0; bm &= bm - 1 {
					i := base + bits.TrailingZeros8(bm)
					v := po
					if ps2 != nil {
						v += math.Trunc(ps2[i])
					}
					var j int
					if bkd {
						j = int(ps[i] + v)
					} else {
						j = int(math.Trunc(ps[i])*pa + v)
					}
					if uint(j) >= uint(bound) {
						ex.fail(failFmt, name, j, bound)
					}
					if global {
						buf.Set(j, vs[i])
						if ex.tracing {
							ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: elemSize, Write: true})
						}
					} else {
						arr[j] = float64(float32(vs[i]))
					}
				}
			}
		}, nil
	}

	return func(ex *exec2, mask []uint8) {
		for _, f := range setups {
			f(ex)
		}

		// Evaluation phase, oracle order: index loads, then value loads.
		var is, vs []float64
		if idxGet != nil {
			is = idxGet(ex)
		}
		var ps, ps2 []float64
		var bkd bool
		var pa, po float64
		if p != nil {
			ps, bkd, pa, po, ps2 = p.setup(ex)
		}
		if valGet != nil {
			vs = valGet(ex)
		}

		var ju int
		if idxU != nil {
			ju = int(idxU(ex))
		}
		var vu float64
		if valU != nil {
			vu = valU(ex)
		}

		var buf *Buffer
		var arr []float64
		var bound int
		if global {
			buf = ex.bufs[target]
			bound = len(buf.Data)
		} else {
			arr = ex.locals[target]
			bound = len(arr)
		}

		// Write phase: block-ascending, lane-ascending — v1's order,
		// including the partial writes preserved before a bounds panic.
		// Full blocks skip the bit iteration.
		hb := ex.hi / laneW
		for b := 0; b < hb; b++ {
			m := mask[b]
			if m == 0 {
				continue
			}
			base := b * laneW
			if m == 0xff {
				for i := 0; i < laneW; i++ {
					var j int
					switch {
					case idxU != nil:
						j = ju
					case p != nil:
						j = planJ(ps, ps2, base+i, bkd, pa, po)
					default:
						j = int(is[base+i])
					}
					if j < 0 || j >= bound {
						ex.fail(failFmt, name, j, bound)
					}
					v := vu
					if vs != nil {
						v = vs[base+i]
					}
					switch kind {
					case scatGlobal:
						buf.Set(j, v)
						if ex.tracing {
							ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: elemSize, Write: true})
						}
					case scatLocal:
						arr[j] = float64(float32(v))
					case scatAtomic:
						arr[j] += v
					}
				}
				continue
			}
			for bm := m; bm != 0; bm &= bm - 1 {
				i := bits.TrailingZeros8(bm)
				var j int
				switch {
				case idxU != nil:
					j = ju
				case p != nil:
					j = planJ(ps, ps2, base+i, bkd, pa, po)
				default:
					j = int(is[base+i])
				}
				if j < 0 || j >= bound {
					ex.fail(failFmt, name, j, bound)
				}
				v := vu
				if vs != nil {
					v = vs[base+i]
				}
				switch kind {
				case scatGlobal:
					buf.Set(j, v)
					if ex.tracing {
						ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: elemSize, Write: true})
					}
				case scatLocal:
					arr[j] = float64(float32(v))
				case scatAtomic:
					arr[j] += v
				}
			}
		}
	}, nil
}

func (c2 *compiler2) compileStore2(s Store) (stmt2Fn, error) {
	bi, ok := c2.bufIdx[s.Buf]
	if !ok {
		return nil, c2.errf("store to unknown buffer %q", s.Buf)
	}
	return c2.compileScatter2(scatGlobal, bi, s.Buf, c2.bufElem[s.Buf].Size(), s.Index, s.Val)
}

func (c2 *compiler2) compileLocalStore2(s LocalStore) (stmt2Fn, error) {
	li, ok := c2.locIdx[s.Arr]
	if !ok {
		return nil, c2.errf("store to undeclared local array %q", s.Arr)
	}
	// v1 collapses uniform-index/uniform-value local stores to one write
	// (all active lanes write the same value to the same element); the
	// scatter path would write once per active lane — same final state,
	// but collapse anyway to keep the common broadcast-store cheap.
	if c2.exprUniform(s.Index) && c2.exprUniform(s.Val) {
		saved := c2.beginRoot()
		ice, err := c2.compileExpr2(s.Index, 0)
		if err != nil {
			return nil, err
		}
		vce, err := c2.compileExpr2(s.Val, 0)
		if err != nil {
			return nil, err
		}
		c2.endRoot(saved) // uniform exprs stage nothing
		iu, vu := ice.uni, vce.uni
		name := s.Arr
		return func(ex *exec2, mask []uint8) {
			arr := ex.locals[li]
			j := int(iu(ex))
			if j < 0 || j >= len(arr) {
				ex.fail("local store %s[%d] out of bounds (len %d)", name, j, len(arr))
			}
			arr[j] = float64(float32(vu(ex)))
		}, nil
	}
	return c2.compileScatter2(scatLocal, li, s.Arr, 0, s.Index, s.Val)
}

func (c2 *compiler2) compileAtomicAdd2(s AtomicAdd) (stmt2Fn, error) {
	li, ok := c2.locIdx[s.Arr]
	if !ok {
		return nil, c2.errf("atomic add to undeclared local array %q", s.Arr)
	}
	// No collapsed fast path: repeated adds to one element must apply in
	// lane order for bit-identical float rounding.
	return c2.compileScatter2(scatAtomic, li, s.Arr, 0, s.Index, s.Val)
}

// cmpMask2 is a divergent If condition fused to direct mask bits: the
// comparison's 0/1 slab is never materialized. bitsAll is one of the
// cmpAll* kernels below, selected at compile time for the comparison
// kind and operand shapes: <, <= and == cover everything, with the
// remaining comparisons reduced by operand swap (bools only, so
// NaN-safe) and complement (NeI under the branch mask ≡ !EqI).
type cmpMask2 struct {
	setups   []setup2Fn
	xu, yu   func(*exec2) float64 // uniform operand (nil when vector)
	xg, yg   grpGet
	bitsAll  cmpAllFn
	neg      bool
	swap     bool
	hasLoads bool // vector operands may trace; uniform sides never do

	// prefixKind is set (1: <, 2: <=) when the effective comparison is
	// get_local_id(0) against the uniform prefixU. In groups where lid0
	// is ascending (exec2.lid0Asc) the mask is then a lane prefix whose
	// length comes from one threshold computation instead of a whole-
	// group scan — the shape of a shrinking-triangle reduction loop.
	prefixKind uint8
	prefixU    func(*exec2) float64
}

// cmpAllFn fills nz[b] with the comparison bits of block b (lane i ->
// bit i, matching nzMask). Unused operand parameters depend on the
// variant: a uniform side reads the scalar, a vector side the slab.
type cmpAllFn func(xs, ys []float64, xu, yu float64, nz []uint8)

func cmpAllLtVV(xs, ys []float64, _, _ float64, nz []uint8) {
	for b := range nz {
		xb, yb := (*vreg)(xs[b*laneW:]), (*vreg)(ys[b*laneW:])
		var r uint8
		for i := 0; i < laneW; i++ {
			if xb[i] < yb[i] {
				r |= 1 << uint(i)
			}
		}
		nz[b] = r
	}
}

func cmpAllLeVV(xs, ys []float64, _, _ float64, nz []uint8) {
	for b := range nz {
		xb, yb := (*vreg)(xs[b*laneW:]), (*vreg)(ys[b*laneW:])
		var r uint8
		for i := 0; i < laneW; i++ {
			if xb[i] <= yb[i] {
				r |= 1 << uint(i)
			}
		}
		nz[b] = r
	}
}

func cmpAllEqVV(xs, ys []float64, _, _ float64, nz []uint8) {
	for b := range nz {
		xb, yb := (*vreg)(xs[b*laneW:]), (*vreg)(ys[b*laneW:])
		var r uint8
		for i := 0; i < laneW; i++ {
			if xb[i] == yb[i] {
				r |= 1 << uint(i)
			}
		}
		nz[b] = r
	}
}

func cmpAllLtVS(xs, _ []float64, _, yu float64, nz []uint8) {
	for b := range nz {
		xb := (*vreg)(xs[b*laneW:])
		var r uint8
		for i := 0; i < laneW; i++ {
			if xb[i] < yu {
				r |= 1 << uint(i)
			}
		}
		nz[b] = r
	}
}

func cmpAllLeVS(xs, _ []float64, _, yu float64, nz []uint8) {
	for b := range nz {
		xb := (*vreg)(xs[b*laneW:])
		var r uint8
		for i := 0; i < laneW; i++ {
			if xb[i] <= yu {
				r |= 1 << uint(i)
			}
		}
		nz[b] = r
	}
}

func cmpAllEqVS(xs, _ []float64, _, yu float64, nz []uint8) {
	for b := range nz {
		xb := (*vreg)(xs[b*laneW:])
		var r uint8
		for i := 0; i < laneW; i++ {
			if xb[i] == yu {
				r |= 1 << uint(i)
			}
		}
		nz[b] = r
	}
}

func cmpAllLtSV(_, ys []float64, xu, _ float64, nz []uint8) {
	for b := range nz {
		yb := (*vreg)(ys[b*laneW:])
		var r uint8
		for i := 0; i < laneW; i++ {
			if xu < yb[i] {
				r |= 1 << uint(i)
			}
		}
		nz[b] = r
	}
}

func cmpAllLeSV(_, ys []float64, xu, _ float64, nz []uint8) {
	for b := range nz {
		yb := (*vreg)(ys[b*laneW:])
		var r uint8
		for i := 0; i < laneW; i++ {
			if xu <= yb[i] {
				r |= 1 << uint(i)
			}
		}
		nz[b] = r
	}
}

func cmpAllEqSV(_, ys []float64, xu, _ float64, nz []uint8) {
	for b := range nz {
		yb := (*vreg)(ys[b*laneW:])
		var r uint8
		for i := 0; i < laneW; i++ {
			if xu == yb[i] {
				r |= 1 << uint(i)
			}
		}
		nz[b] = r
	}
}

func (c2 *compiler2) compileCmpMask(b Bin) (*cmpMask2, error) {
	saved := c2.beginRoot()
	x, err := c2.compileExpr2(b.X, 1)
	if err != nil {
		return nil, err
	}
	y, err := c2.compileExpr2(b.Y, 2)
	if err != nil {
		return nil, err
	}
	cm := &cmpMask2{}
	var kind uint8
	switch b.Op {
	case LtF, LtI:
		kind = 0
	case LeF, LeI:
		kind = 1
	case GtF, GtI:
		kind, cm.swap = 0, true
	case GeF, GeI:
		kind, cm.swap = 1, true
	case EqF, EqI:
		kind = 2
	case NeI:
		kind, cm.neg = 2, true
	}
	if x.uniform() {
		cm.xu = c2.uniVal(x)
	} else {
		cm.xg = x.get
	}
	if y.uniform() {
		cm.yu = c2.uniVal(y)
	} else {
		cm.yg = y.get
	}
	// The effective left side after the compile-time swap determines the
	// operand-shape variant (both uniform would make the whole condition
	// uniform, which the caller handles on the scalar path).
	lhsUni, rhsUni := x.uniform(), y.uniform()
	if cm.swap {
		lhsUni, rhsUni = rhsUni, lhsUni
	}
	table := [3][3]cmpAllFn{
		{cmpAllLtVV, cmpAllLtVS, cmpAllLtSV},
		{cmpAllLeVV, cmpAllLeVS, cmpAllLeSV},
		{cmpAllEqVV, cmpAllEqVS, cmpAllEqSV},
	}
	shape := 0
	if rhsUni {
		shape = 1
	} else if lhsUni {
		shape = 2
	}
	cm.bitsAll = table[kind][shape]
	lhsE, rhsU := b.X, cm.yu
	if cm.swap {
		lhsE, rhsU = b.Y, cm.xu
	}
	if id, ok := lhsE.(ID); ok && id.Fn == LocalID && id.Dim == 0 &&
		kind <= 1 && !cm.neg && rhsU != nil {
		cm.prefixKind = kind + 1
		cm.prefixU = rhsU
	}
	hasLoads := false
	walkExpr(b, func(e Expr) {
		switch e.(type) {
		case Load:
			hasLoads = true
		}
	})
	cm.hasLoads = hasLoads
	cm.setups = c2.endRoot(saved)
	return cm, nil
}

func (c2 *compiler2) compileIf2(s If) (stmt2Fn, error) {
	// Divergent comparison conditions fuse to direct mask bits; anything
	// else (uniform, or a non-comparison truth value) goes through the
	// generic nonzero-slab path.
	var cond root2
	var cm *cmpMask2
	var err error
	if b, ok := s.Cond.(Bin); ok && b.Op.IsCompare() && !c2.exprUniform(s.Cond) {
		cm, err = c2.compileCmpMask(b)
	} else {
		cond, err = c2.compileRoot(s.Cond)
	}
	if err != nil {
		return nil, err
	}
	thenFns, err := c2.compileStmts2(s.Then)
	if err != nil {
		return nil, err
	}
	elseFns, err := c2.compileStmts2(s.Else)
	if err != nil {
		return nil, err
	}
	if cm == nil && cond.ce.uniform() {
		u := cond.ce.uni
		return func(ex *exec2, mask []uint8) {
			if u(ex) != 0 {
				for _, f := range thenFns {
					f(ex, mask)
				}
			} else {
				for _, f := range elseFns {
					f(ex, mask)
				}
			}
		}, nil
	}
	hasThen, hasElse := len(thenFns) > 0, len(elseFns) > 0
	if !hasThen && !hasElse {
		// Branchless either way; the condition only matters for the trace
		// records of any loads it contains.
		if cm != nil {
			if !cm.hasLoads {
				return func(ex *exec2, mask []uint8) {}, nil
			}
			xg, yg := cm.xg, cm.yg
			setups := cm.setups
			return func(ex *exec2, mask []uint8) {
				if !ex.tracing {
					return
				}
				for _, f := range setups {
					f(ex)
				}
				if xg != nil {
					xg(ex)
				}
				if yg != nil {
					yg(ex)
				}
			}, nil
		}
		get := cond.ce.get
		return func(ex *exec2, mask []uint8) {
			if !ex.tracing {
				return
			}
			cond.prep(ex)
			get(ex)
		}, nil
	}
	if cm != nil {
		bitsAll := cm.bitsAll
		usePrefix := cm.prefixKind != 0 && !cm.hasLoads
		return func(ex *exec2, mask []uint8) {
			if usePrefix && ex.lid0Asc {
				// lid0[i] == i, so the comparison holds on exactly the
				// first cnt lanes; the threshold replaces the group scan.
				// Operand evaluation is skipped: neither side can trace
				// (no loads) and neither has side effects.
				for _, f := range cm.setups {
					f(ex)
				}
				t := cm.prefixU(ex)
				var c float64
				if cm.prefixKind == 1 {
					c = math.Ceil(t) // #{i : i < t}
				} else {
					c = math.Floor(t) + 1 // #{i : i <= t}
				}
				cnt := 0
				if c >= float64(ex.n) {
					cnt = ex.n
				} else if c > 0 { // NaN and negatives fall to 0
					cnt = int(c)
				}
				var tm, em []uint8
				nmasks := 0
				if hasThen {
					tm = ex.getM()
					nmasks++
				}
				if hasElse {
					em = ex.getM()
					nmasks++
				}
				hb := ex.hi / laneW
				fb := cnt / laneW
				pr := tailMask(cnt % laneW)
				// Without an else branch only prefix blocks matter; the
				// unwritten tail of tm is never read (branch statements
				// bound their scans by the shrunken hi). Tracing pins hi,
				// so the branch then scans every block — write them all.
				bt := hb
				if !hasElse && !ex.tracing && fb+1 < bt {
					bt = fb + 1
				}
				anyT, anyE := false, false
				lastT, lastE := 0, 0
				for b := 0; b < bt; b++ {
					m := mask[b]
					var nz uint8
					if b < fb {
						nz = 0xff
					} else if b == fb {
						nz = pr
					}
					if hasThen {
						t := m & nz
						tm[b] = t
						if t != 0 {
							anyT = true
							lastT = b
						}
					}
					if hasElse {
						e := m &^ nz
						em[b] = e
						if e != 0 {
							anyE = true
							lastE = b
						}
					}
				}
				runBranches(ex, thenFns, elseFns, tm, em, anyT, anyE, lastT, lastE)
				ex.putM(nmasks)
				return
			}
			for _, f := range cm.setups {
				f(ex)
			}
			// Operands evaluate whole-group in source order (x then y),
			// exactly like the unfused comparison — same trace records.
			var xs, ys []float64
			var xu, yu float64
			if cm.xg != nil {
				xs = cm.xg(ex)
			} else {
				xu = cm.xu(ex)
			}
			if cm.yg != nil {
				ys = cm.yg(ex)
			} else {
				yu = cm.yu(ex)
			}
			if cm.swap {
				xs, ys = ys, xs
				xu, yu = yu, xu
			}
			var tm, em []uint8
			nmasks := 0
			if hasThen {
				tm = ex.getM()
				nmasks++
			}
			if hasElse {
				em = ex.getM()
				nmasks++
			}
			// All active bits of mask sit below ex.hi, so blocks past hb
			// contribute nothing; tm/em are only defined up to hb, which
			// covers every consumer (child branches bound hi lower still).
			hb := ex.hi / laneW
			nzb := ex.nzbuf[:hb]
			bitsAll(xs, ys, xu, yu, nzb)
			anyT, anyE := false, false
			lastT, lastE := 0, 0
			neg := cm.neg
			for b := 0; b < hb; b++ {
				m := mask[b]
				nz := nzb[b]
				if neg {
					nz = ^nz
				}
				if hasThen {
					t := m & nz
					tm[b] = t
					if t != 0 {
						anyT = true
						lastT = b
					}
				}
				if hasElse {
					e := m &^ nz
					em[b] = e
					if e != 0 {
						anyE = true
						lastE = b
					}
				}
			}
			runBranches(ex, thenFns, elseFns, tm, em, anyT, anyE, lastT, lastE)
			ex.putM(nmasks)
		}, nil
	}
	get := cond.ce.get
	return func(ex *exec2, mask []uint8) {
		cond.prep(ex)
		cs := get(ex)
		var tm, em []uint8
		nmasks := 0
		if hasThen {
			tm = ex.getM()
			nmasks++
		}
		if hasElse {
			em = ex.getM()
			nmasks++
		}
		anyT, anyE := false, false
		lastT, lastE := 0, 0
		hb := ex.hi / laneW
		for b := 0; b < hb; b++ {
			m := mask[b]
			var nz uint8
			if m != 0 {
				nz = nzMask(blk(cs, b))
			}
			if hasThen {
				t := m & nz
				tm[b] = t
				if t != 0 {
					anyT = true
					lastT = b
				}
			}
			if hasElse {
				e := m &^ nz
				em[b] = e
				if e != 0 {
					anyE = true
					lastE = b
				}
			}
		}
		runBranches(ex, thenFns, elseFns, tm, em, anyT, anyE, lastT, lastE)
		ex.putM(nmasks)
	}, nil
}

// runBranches executes the taken branches of a divergent If, bounding
// expression evaluation to each branch's active lane prefix (traced runs
// keep hi pinned: traced loads record all real lanes).
func runBranches(ex *exec2, thenFns, elseFns []stmt2Fn, tm, em []uint8, anyT, anyE bool, lastT, lastE int) {
	savedHi := ex.hi
	if anyT {
		if !ex.tracing {
			ex.hi = (lastT + 1) * laneW
		}
		for _, f := range thenFns {
			f(ex, tm)
		}
		ex.hi = savedHi
	}
	if anyE {
		if !ex.tracing {
			ex.hi = (lastE + 1) * laneW
		}
		for _, f := range elseFns {
			f(ex, em)
		}
		ex.hi = savedHi
	}
}

func (c2 *compiler2) compileFor2(s For) (stmt2Fn, error) {
	start, err := c2.compileRoot(s.Start)
	if err != nil {
		return nil, err
	}
	end, err := c2.compileRoot(s.End)
	if err != nil {
		return nil, err
	}
	step, err := c2.compileRoot(s.Step)
	if err != nil {
		return nil, err
	}
	bodyFns, err := c2.compileStmts2(s.Body)
	if err != nil {
		return nil, err
	}
	name := s.Var
	if c2.uniformVar[s.Var] {
		// Uniform loop: scalar control flow, identical to v1.
		uslot := c2.uslot[s.Var]
		su, eu, tu := start.ce.uni, end.ce.uni, step.ce.uni
		return func(ex *exec2, mask []uint8) {
			v := math.Trunc(su(ex))
			ex.uvals[uslot] = v
			for iter := 0; ; iter++ {
				if iter >= maxLoopIter {
					ex.fail("loop over %s exceeded %d iterations", name, maxLoopIter)
				}
				if !(v < eu(ex)) {
					break
				}
				for _, f := range bodyFns {
					f(ex, mask)
				}
				v = math.Trunc(v + tu(ex))
				ex.uvals[uslot] = v
			}
		}, nil
	}
	// Divergent loop: per-lane trip counts under a narrowing bitmask.
	slot := c2.vslot[s.Var]
	return func(ex *exec2, mask []uint8) {
		v := ex.vals[slot]

		// Start: masked truncating write.
		start.prep(ex)
		hb := ex.hi / laneW
		if su := start.ce.uni; su != nil {
			x := math.Trunc(su(ex))
			if ex.isFull(mask) {
				for i := range v {
					v[i] = x
				}
			} else {
				for b := 0; b < hb; b++ {
					if m := mask[b]; m != 0 {
						selSplat(blk(v, b), x, m)
					}
				}
			}
		} else {
			sv := start.ce.get(ex)
			for b := 0; b < hb; b++ {
				if m := mask[b]; m != 0 {
					selWriteI(blk(v, b), blk(sv, b), m)
				}
			}
		}

		lm := ex.getM()
		copy(lm, mask)
		savedHi := ex.hi
		for iter := 0; ; iter++ {
			if iter >= maxLoopIter {
				ex.fail("loop over %s exceeded %d iterations", name, maxLoopIter)
			}
			// Condition: evaluate End for the whole group (tracing its
			// loads), narrow the mask to lanes still below the bound.
			end.prep(ex)
			live := false
			lastL := 0
			// lm's live blocks all sit below the current bound: at entry it
			// copies mask (live bits < hi), and each narrowing pass only
			// keeps bits it visited.
			hb = ex.hi / laneW
			if eu := end.ce.uni; eu != nil {
				e := eu(ex)
				for b := 0; b < hb; b++ {
					m := lm[b]
					if m == 0 {
						continue
					}
					vb := blk(v, b)
					var lt uint8
					for i := 0; i < laneW; i++ {
						if vb[i] < e {
							lt |= 1 << uint(i)
						}
					}
					nm := m & lt
					lm[b] = nm
					if nm != 0 {
						live = true
						lastL = b
					}
				}
			} else {
				es := end.ce.get(ex)
				for b := 0; b < hb; b++ {
					m := lm[b]
					if m == 0 {
						continue
					}
					eb, vb := blk(es, b), blk(v, b)
					var lt uint8
					for i := 0; i < laneW; i++ {
						if vb[i] < eb[i] {
							lt |= 1 << uint(i)
						}
					}
					nm := m & lt
					lm[b] = nm
					if nm != 0 {
						live = true
						lastL = b
					}
				}
			}
			if !live {
				break
			}
			// Bound evaluation to the live lane prefix for the body and
			// step; the next condition only tests still-live lanes, so the
			// shrunken bound carries over soundly.
			if !ex.tracing {
				ex.hi = (lastL + 1) * laneW
			}
			for _, f := range bodyFns {
				f(ex, lm)
			}
			// Step: masked v = Trunc(v + step).
			step.prep(ex)
			sb := ex.hi / laneW
			if tu := step.ce.uni; tu != nil {
				t := tu(ex)
				for b := 0; b < sb; b++ {
					if m := lm[b]; m != 0 {
						selStepU(blk(v, b), t, m)
					}
				}
			} else {
				ts := step.ce.get(ex)
				for b := 0; b < sb; b++ {
					if m := lm[b]; m != 0 {
						selStepV(blk(v, b), blk(ts, b), m)
					}
				}
			}
		}
		ex.hi = savedHi
		ex.putM(1)
	}, nil
}

// ---- fused index plans ----

// plan2 is the engine-v2 form of idxPlan (see compile.go for the
// bit-exactness argument). When bkd is set the base is already scaled —
// either a per-group baked slab (basePlan2) or a raw gid/lid view whose
// Trunc and *1 are identities — so j = int(base[i] + off); otherwise
// j = int(Trunc(src[i])*scale + off). off2, when present, replaces off
// and is always truncated, exactly like v1.
type plan2 struct {
	base  func(*exec2) []float64
	bkd   bool
	scale func(*exec2) float64 // nil: 1 (only meaningful when !bkd)
	off   func(*exec2) float64 // nil: 0
	off2  func(*exec2) []float64
}

func (p *plan2) setup(ex *exec2) (s []float64, bkd bool, a, o float64, s2 []float64) {
	s = p.base(ex)
	bkd = p.bkd
	a, o = 1, 0
	if p.scale != nil {
		a = p.scale(ex)
	}
	if p.off != nil {
		o = p.off(ex)
	}
	if p.off2 != nil {
		s2 = p.off2(ex)
	}
	return
}

// planJ computes one lane's index; formulas are v1's, with the Trunc/*1
// dropped only where they are identities (pre-scaled or integral bases).
// The uniform offset and second source may now coexist: every term is
// integral (Trunc'd leaves; sums and products of integral floats stay
// integral), so the regrouped sum is exact wherever the nested AddI/MulI
// chain is — the shared 2^53 caveat of all index plans.
func planJ(s, s2 []float64, i int, bkd bool, a, o float64) int {
	v := o
	if s2 != nil {
		v += math.Trunc(s2[i])
	}
	if bkd {
		return int(s[i] + v)
	}
	return int(math.Trunc(s[i])*a + v)
}

// planSrc2Of returns a per-lane slab view for source-leaf expressions.
func (c2 *compiler2) planSrc2Of(e Expr) (view func(*exec2) []float64, isID bool, fn IDFunc, dim int) {
	switch v := e.(type) {
	case VarRef:
		if !c2.uniformVar[v.Name] {
			if slot, ok := c2.vslot[v.Name]; ok {
				return func(ex *exec2) []float64 { return ex.vals[slot] }, false, 0, 0
			}
		}
	case ID:
		if v.Dim >= 0 && v.Dim <= 2 {
			d := v.Dim
			switch v.Fn {
			case GlobalID:
				return func(ex *exec2) []float64 { return ex.gid[d] }, true, GlobalID, d
			case LocalID:
				return func(ex *exec2) []float64 { return ex.lid[d] }, true, LocalID, d
			}
		}
	}
	return nil, false, 0, 0
}

// bakeSafe reports whether a uniform scale expression can move to group
// start: it must read only constants, scalar params and launch geometry —
// uniform variables (ex.uvals) and loads change during the group body.
func bakeSafe(e Expr) bool {
	safe := true
	walkExpr(e, func(e Expr) {
		switch e.(type) {
		case VarRef, Load, LocalLoad:
			safe = false
		}
	})
	return safe
}

// planScalar stages a plan scale/offset: Trunc'd once per root evaluation
// (v1 Truncs in idxPlan.setup, same frequency and values).
func (c2 *compiler2) planScalar(ce cexpr2) func(*exec2) float64 {
	if ce.isConst {
		v := math.Trunc(ce.cval)
		return func(*exec2) float64 { return v }
	}
	u := ce.uni
	os := c2.allocStash()
	c2.setups = append(c2.setups, func(ex *exec2) { ex.ustash[os] = math.Trunc(u(ex)) })
	return func(ex *exec2) float64 { return ex.ustash[os] }
}

// registerBase dedups baked gather bases by id source + scale print.
func (c2 *compiler2) registerBase(fn IDFunc, dim int, scaleE Expr, scale uni2Fn) int {
	key := fmt.Sprintf("%v.%d|%s", fn, dim, FormatExpr(scaleE))
	if pi, ok := c2.baseKeys[key]; ok {
		return pi
	}
	pi := len(c2.p.bases)
	c2.p.bases = append(c2.p.bases, basePlan2{fn: fn, dim: dim, scale: scale})
	c2.baseKeys[key] = pi
	return pi
}

// plan2Of matches e against fusable affine index shapes. It flattens a
// nested AddI tree into at most one scaled source (Trunc(src)*scale,
// distributing the scale over one inner uniform+source AddI), one
// unscaled second source, and any number of uniform addends, then emits
// the plan2 formula. Every regrouping step is over integral terms
// (AddI/MulI Trunc their operands, and sums/products of integral floats
// stay integral), so the flattened sum matches the nested chain exactly
// wherever that chain itself is exact (below 2^53 — the shared caveat of
// all index plans, v1's included).
func (c2 *compiler2) plan2Of(e Expr) *plan2 {
	uniOf := func(e Expr) (cexpr2, bool) {
		if !c2.exprUniform(e) {
			return cexpr2{}, false
		}
		ce, err := c2.compileExpr2(e, 0)
		if err != nil || ce.uni == nil {
			return cexpr2{}, false
		}
		return ce, true
	}
	// srcPart carries a matched source with its optional scale.
	type srcPart struct {
		view  func(*exec2) []float64
		isID  bool
		fn    IDFunc
		dim   int
		scale *cexpr2
		scalE Expr
	}
	// mulOf matches src*uniform products. A (uniform + src)*uniform
	// product distributes: Trunc((u+s)*k) = Trunc(u)*Trunc(k) +
	// Trunc(s)*Trunc(k) exactly (all integral), returning the u*k part as
	// an extra uniform addend.
	mulOf := func(e Expr) (*srcPart, *cexpr2) {
		b, ok := e.(Bin)
		if !ok || b.Op != MulI {
			return nil, nil
		}
		match := func(x, y Expr) (*srcPart, *cexpr2) {
			u, ok := uniOf(y)
			if !ok {
				return nil, nil
			}
			if view, isID, fn, dim := c2.planSrc2Of(x); view != nil {
				return &srcPart{view: view, isID: isID, fn: fn, dim: dim, scale: &u, scalE: y}, nil
			}
			if ab, ok := x.(Bin); ok && ab.Op == AddI {
				dist := func(ue, se Expr) (*srcPart, *cexpr2) {
					u2, ok := uniOf(ue)
					if !ok {
						return nil, nil
					}
					view, isID, fn, dim := c2.planSrc2Of(se)
					if view == nil {
						return nil, nil
					}
					return &srcPart{view: view, isID: isID, fn: fn, dim: dim, scale: &u, scalE: y}, &u2
				}
				if sp, ex := dist(ab.X, ab.Y); sp != nil {
					return sp, ex
				}
				return dist(ab.Y, ab.X)
			}
			return nil, nil
		}
		if sp, ex := match(b.X, b.Y); sp != nil {
			return sp, ex
		}
		return match(b.Y, b.X)
	}

	// Flatten the AddI tree into the affine accumulator.
	var sp *srcPart
	var spExtra *cexpr2 // distributed uniform addend, still to be scaled
	var s2 func(*exec2) []float64
	var uterms []cexpr2
	ok := true
	var add func(Expr)
	add = func(e Expr) {
		if !ok {
			return
		}
		if u, isU := uniOf(e); isU {
			uterms = append(uterms, u)
			return
		}
		if b, isB := e.(Bin); isB && b.Op == AddI {
			add(b.X)
			add(b.Y)
			return
		}
		if m, extra := mulOf(e); m != nil {
			if sp != nil {
				if sp.scale != nil || s2 != nil {
					ok = false // at most one scaled and one unscaled source
					return
				}
				s2 = sp.view // demote the earlier unscaled source
			}
			sp, spExtra = m, extra
			return
		}
		if view, isID, fn, dim := c2.planSrc2Of(e); view != nil {
			switch {
			case sp == nil:
				sp = &srcPart{view: view, isID: isID, fn: fn, dim: dim}
			case s2 == nil:
				s2 = view
			default:
				ok = false
			}
			return
		}
		ok = false
	}
	add(e)
	if !ok || sp == nil {
		return nil
	}

	p := &plan2{off2: s2}
	switch {
	case sp.scale == nil:
		// Unscaled: raw view. Ids are integral and v1's *1 is exact for
		// every float64, so the pre-scaled fast path applies to id
		// sources; VarRef slots can hold non-integral F32 values, so
		// they stay on the trunc path with scale 1.
		if sp.isID {
			p.base, p.bkd = sp.view, true
		} else {
			p.base = sp.view
		}
	case sp.isID && bakeSafe(sp.scalE):
		pi := c2.registerBase(sp.fn, sp.dim, sp.scalE, sp.scale.uni)
		p.base = func(ex *exec2) []float64 { return ex.bases[pi] }
		p.bkd = true
	default:
		p.base = sp.view
		p.scale = c2.planScalar(*sp.scale)
	}
	var offFns []func(*exec2) float64
	for _, u := range uterms {
		offFns = append(offFns, c2.planScalar(u))
	}
	if spExtra != nil {
		uf := c2.planScalar(*spExtra)
		sf := c2.planScalar(*sp.scale)
		offFns = append(offFns, func(ex *exec2) float64 { return uf(ex) * sf(ex) })
	}
	switch len(offFns) {
	case 0:
	case 1:
		p.off = offFns[0]
	default:
		fns := offFns
		p.off = func(ex *exec2) float64 {
			v := 0.0
			for _, f := range fns {
				v += f(ex)
			}
			return v
		}
	}
	return p
}

// simpleLocalGather recognizes the hot fusable shape: a LocalLoad whose
// index is pre-scaled-base + scalar-offset (or a bare source view, which
// is the same with offset 0 — identical through int()). Local loads are
// trace-free, so fusing them into arithmetic loops cannot perturb the
// trace stream.
func (c2 *compiler2) simpleLocalGather(e Expr) (li int, base func(*exec2) []float64, off func(*exec2) float64, ok bool) {
	ll, isLL := e.(LocalLoad)
	if !isLL {
		return 0, nil, nil, false
	}
	li, found := c2.locIdx[ll.Arr]
	if !found {
		return 0, nil, nil, false
	}
	if c2.exprUniform(ll.Index) {
		return 0, nil, nil, false
	}
	if p := c2.plan2Of(ll.Index); p != nil {
		if p.bkd && p.off2 == nil {
			off = p.off
			if off == nil {
				off = func(*exec2) float64 { return 0 }
			}
			return li, p.base, off, true
		}
		return 0, nil, nil, false
	}
	if view, _, _, _ := c2.planSrc2Of(ll.Index); view != nil {
		return li, view, func(*exec2) float64 { return 0 }, true
	}
	return 0, nil, nil, false
}

// ---- expression lowering ----

func (c2 *compiler2) compileExpr2(e Expr, d int) (cexpr2, error) {
	switch e := e.(type) {
	case ConstFloat:
		return const2(F32, e.V), nil
	case ConstInt:
		return const2(I32, float64(e.V)), nil
	case VarRef:
		if c2.uniformVar[e.Name] {
			slot, ok := c2.uslot[e.Name]
			if !ok {
				return cexpr2{}, c2.errf("read of undefined variable %q", e.Name)
			}
			return cexpr2{ty: e.Ty, uni: func(ex *exec2) float64 { return ex.uvals[slot] }}, nil
		}
		slot, ok := c2.vslot[e.Name]
		if !ok {
			return cexpr2{}, c2.errf("read of undefined variable %q", e.Name)
		}
		return cexpr2{
			ty:    e.Ty,
			isSrc: true,
			get:   func(ex *exec2) []float64 { return ex.vals[slot] },
		}, nil
	case ParamRef:
		idx, ok := c2.scalIdx[e.Name]
		if !ok {
			return cexpr2{}, c2.errf("read of unbound scalar parameter %q", e.Name)
		}
		return cexpr2{ty: e.Ty, uni: func(ex *exec2) float64 { return ex.scalars[idx] }}, nil
	case ID:
		return c2.compileID2(e)
	case Bin:
		return c2.compileBin2(e, d)
	case Call:
		return c2.compileCall2(e, d)
	case Load:
		return c2.compileLoad2(e, d)
	case LocalLoad:
		return c2.compileLocalLoad2(e, d)
	case Select:
		return c2.compileSelect2(e, d)
	case ToFloat:
		x, err := c2.compileExpr2(e.X, d)
		if err != nil {
			return cexpr2{}, err
		}
		x.ty = F32
		return x, nil
	case ToInt:
		x, err := c2.compileExpr2(e.X, d+1)
		if err != nil {
			return cexpr2{}, err
		}
		if x.isConst {
			return const2(I32, math.Trunc(x.cval)), nil
		}
		if x.uniform() {
			u := x.uni
			return cexpr2{ty: I32, uni: func(ex *exec2) float64 { return math.Trunc(u(ex)) }}, nil
		}
		xg := x.get
		c2.touchReg(d)
		return cexpr2{ty: I32, get: func(ex *exec2) []float64 {
			xs := xg(ex)
			out := ex.regs[d][:ex.hi]
			xs = xs[:len(out)]
			for i := range out {
				out[i] = math.Trunc(xs[i])
			}
			return out
		}}, nil
	default:
		return cexpr2{}, c2.errf("unknown expression %T", e)
	}
}

func (c2 *compiler2) compileID2(e ID) (cexpr2, error) {
	d := e.Dim
	if d < 0 || d > 2 {
		return cexpr2{}, c2.errf("%s dimension %d out of range", e.Fn, d)
	}
	switch e.Fn {
	case GlobalID:
		return cexpr2{ty: I32, isSrc: true,
			get: func(ex *exec2) []float64 { return ex.gid[d] }}, nil
	case LocalID:
		return cexpr2{ty: I32, isSrc: true,
			get: func(ex *exec2) []float64 { return ex.lid[d] }}, nil
	case GroupID:
		return cexpr2{ty: I32, uni: func(ex *exec2) float64 { return ex.grp[d] }}, nil
	case GlobalSize:
		return cexpr2{ty: I32, uni: func(ex *exec2) float64 { return ex.gsz[d] }}, nil
	case LocalSize:
		return cexpr2{ty: I32, uni: func(ex *exec2) float64 { return ex.lsz[d] }}, nil
	case NumGroups:
		return cexpr2{ty: I32, uni: func(ex *exec2) float64 { return ex.ngr[d] }}, nil
	}
	return cexpr2{}, c2.errf("unknown id function %v", e.Fn)
}

func (c2 *compiler2) compileBin2(e Bin, d int) (cexpr2, error) {
	if !e.Op.Valid() {
		return cexpr2{}, c2.errf("unknown binary operator %v in %s", e.Op, FormatExpr(e))
	}
	// FMA peephole: AddF/SubF over a MulF child fuses into one pass. Only
	// the four non-commuted shapes are rewritten — float add is not
	// NaN-payload-commutative, so operand sides are preserved exactly.
	if e.Op == AddF || e.Op == SubF {
		if m, ok := e.X.(Bin); ok && m.Op == MulF {
			return c2.compileFMA2(m.X, m.Y, e.Y, true, e.Op == SubF, d)
		}
		if m, ok := e.Y.(Bin); ok && m.Op == MulF {
			return c2.compileFMA2(m.X, m.Y, e.X, false, e.Op == SubF, d)
		}
	}
	// Fused uniform×local-gather multiply (the binomial hot shape): one
	// pass instead of gather + scalar-operand multiply.
	if e.Op == MulF {
		if c2.exprUniform(e.X) {
			if li, base, off, ok := c2.simpleLocalGather(e.Y); ok {
				xce, err := c2.compileExpr2(e.X, 0)
				if err != nil {
					return cexpr2{}, err
				}
				xf := c2.uniVal(xce)
				c2.touchReg(d)
				return cexpr2{ty: F32, get: func(ex *exec2) []float64 {
					arr := ex.locals[li]
					sb := base(ex)
					o := off(ex)
					xv := xf(ex)
					out := ex.regs[d][:ex.hi]
					sb = sb[:len(out)]
					for i := range out {
						var g float64
						if j := int(sb[i] + o); uint(j) < uint(len(arr)) {
							g = arr[j]
						}
						out[i] = xv * g
					}
					return out
				}}, nil
			}
		} else if c2.exprUniform(e.Y) {
			if li, base, off, ok := c2.simpleLocalGather(e.X); ok {
				yce, err := c2.compileExpr2(e.Y, 0)
				if err != nil {
					return cexpr2{}, err
				}
				yf := c2.uniVal(yce)
				c2.touchReg(d)
				return cexpr2{ty: F32, get: func(ex *exec2) []float64 {
					arr := ex.locals[li]
					sb := base(ex)
					o := off(ex)
					yv := yf(ex)
					out := ex.regs[d][:ex.hi]
					sb = sb[:len(out)]
					for i := range out {
						var g float64
						if j := int(sb[i] + o); uint(j) < uint(len(arr)) {
							g = arr[j]
						}
						out[i] = g * yv
					}
					return out
				}}, nil
			}
		}
	}
	x, err := c2.compileExpr2(e.X, d+1)
	if err != nil {
		return cexpr2{}, err
	}
	y, err := c2.compileExpr2(e.Y, d+2)
	if err != nil {
		return cexpr2{}, err
	}
	ty := e.Type()
	op := e.Op
	if x.isConst && y.isConst {
		return const2(ty, binScalarOp(op)(x.cval, y.cval)), nil
	}
	if x.uniform() && y.uniform() {
		f := binScalarOp(op)
		xu, yu := x.uni, y.uni
		return cexpr2{ty: ty, uni: func(ex *exec2) float64 {
			return f(xu(ex), yu(ex))
		}}, nil
	}
	c2.touchReg(d)
	switch {
	case x.uniform():
		// The uniform side is trace-free, so evaluating it after the
		// vector side is unobservable.
		xf := c2.uniVal(x)
		yg := y.get
		return cexpr2{ty: ty, get: func(ex *exec2) []float64 {
			ys := yg(ex)
			out := ex.regs[d][:ex.hi]
			evalBinSV(op, xf(ex), ys[:len(out)], out)
			return out
		}}, nil
	case y.uniform():
		yf := c2.uniVal(y)
		xg := x.get
		return cexpr2{ty: ty, get: func(ex *exec2) []float64 {
			xs := xg(ex)
			out := ex.regs[d][:ex.hi]
			evalBinVS(op, xs[:len(out)], yf(ex), out)
			return out
		}}, nil
	default:
		xg, yg := x.get, y.get
		return cexpr2{ty: ty, get: func(ex *exec2) []float64 {
			xs := xg(ex)
			ys := yg(ex)
			out := ex.regs[d][:ex.hi]
			evalBin(op, xs[:len(out)], ys[:len(out)], out)
			return out
		}}, nil
	}
}

// compileFMA2 lowers AddF/SubF over MulF as a single pass. mulLeft tells
// which side of the add/sub the product sat on; operand order inside the
// product and around the add/sub is preserved exactly. The explicit
// float64(a*b) conversion forces the product rounding the two-op form
// performs, so the result is bit-identical to v1/oracle and the Go
// compiler is forbidden from contracting it into a hardware FMA.
//
// Sub-expressions compile AND evaluate in source traversal order (c
// first when the product is on the right) so trace records append in
// the oracle's left-to-right load order. Register depths follow the
// SAME order: an operand evaluated earlier gets a shallower register,
// because later operands' subtrees use every depth below their own and
// would clobber a deeper already-computed result.
func (c2 *compiler2) compileFMA2(aE, bE, cE Expr, mulLeft, sub bool, d int) (cexpr2, error) {
	// Probe the fused-gather shapes first: local gathers are trace-free,
	// so fusing them away cannot perturb the trace stream.
	liA, baseA, offA, gaOK := c2.simpleLocalGather(aE)
	liB, baseB, offB, gbOK := c2.simpleLocalGather(bE)
	aUni, bUni := c2.exprUniform(aE), c2.exprUniform(bE)

	// Depths in evaluation order: a,b,c for mulLeft; c,a,b otherwise.
	da, db, dc := d+1, d+2, d+3
	if !mulLeft {
		dc, da, db = d+1, d+2, d+3
	}
	var a, b, cc cexpr2
	var err error
	compileC := func() bool {
		cc, err = c2.compileExpr2(cE, dc)
		return err == nil
	}
	compileA := func() bool {
		a, err = c2.compileExpr2(aE, da)
		return err == nil
	}
	compileB := func() bool {
		b, err = c2.compileExpr2(bE, db)
		return err == nil
	}

	// Hot fused forms: gather×gather (matmul accumulate) and
	// uniform×gather (binomial lattice step), all local and trace-free.
	// Out-of-bounds gather lanes read 0 — such lanes are never observable
	// (see the don't-care invariant in compile.go's plan comment).
	if gaOK && gbOK {
		if !compileC() {
			return cexpr2{}, err
		}
		cg := c2.asGet(cc, dc)
		c2.touchReg(d)
		return cexpr2{ty: F32, get: func(ex *exec2) []float64 {
			la, lb := ex.locals[liA], ex.locals[liB]
			sa, sb := baseA(ex), baseB(ex)
			oa, ob := offA(ex), offB(ex)
			cs := cg(ex)
			out := ex.regs[d][:ex.hi]
			sa, sb, cs = sa[:len(out)], sb[:len(out)], cs[:len(out)]
			for i := range out {
				var va, vb float64
				if j := int(sa[i] + oa); uint(j) < uint(len(la)) {
					va = la[j]
				}
				if j := int(sb[i] + ob); uint(j) < uint(len(lb)) {
					vb = lb[j]
				}
				out[i] = fmaCombine(va, vb, cs[i], mulLeft, sub)
			}
			return out
		}, intoF: func(ex *exec2, dst []float64) {
			// cs may alias dst (acc = gather*gather + acc): lane i reads
			// cs[i] before writing dst[i], so the aliasing is harmless.
			la, lb := ex.locals[liA], ex.locals[liB]
			sa, sb := baseA(ex), baseB(ex)
			oa, ob := offA(ex), offB(ex)
			cs := cg(ex)
			sa, sb, cs = sa[:len(dst)], sb[:len(dst)], cs[:len(dst)]
			for i := range dst {
				var va, vb float64
				if j := int(sa[i] + oa); uint(j) < uint(len(la)) {
					va = la[j]
				}
				if j := int(sb[i] + ob); uint(j) < uint(len(lb)) {
					vb = lb[j]
				}
				dst[i] = float64(float32(fmaCombine(va, vb, cs[i], mulLeft, sub)))
			}
		}}, nil
	}
	if aUni && gbOK {
		if mulLeft {
			if !compileA() || !compileC() {
				return cexpr2{}, err
			}
		} else if !compileC() || !compileA() {
			return cexpr2{}, err
		}
		af := c2.uniVal(a)
		cg := c2.asGet(cc, dc)
		c2.touchReg(d)
		return cexpr2{ty: F32, get: func(ex *exec2) []float64 {
			lb := ex.locals[liB]
			sb := baseB(ex)
			ob := offB(ex)
			av := af(ex)
			cs := cg(ex)
			out := ex.regs[d][:ex.hi]
			sb, cs = sb[:len(out)], cs[:len(out)]
			for i := range out {
				var vb float64
				if j := int(sb[i] + ob); uint(j) < uint(len(lb)) {
					vb = lb[j]
				}
				out[i] = fmaCombine(av, vb, cs[i], mulLeft, sub)
			}
			return out
		}, intoF: func(ex *exec2, dst []float64) {
			lb := ex.locals[liB]
			sb := baseB(ex)
			ob := offB(ex)
			av := af(ex)
			cs := cg(ex)
			sb, cs = sb[:len(dst)], cs[:len(dst)]
			for i := range dst {
				var vb float64
				if j := int(sb[i] + ob); uint(j) < uint(len(lb)) {
					vb = lb[j]
				}
				dst[i] = float64(float32(fmaCombine(av, vb, cs[i], mulLeft, sub)))
			}
		}}, nil
	}
	if gaOK && bUni {
		if mulLeft {
			if !compileB() || !compileC() {
				return cexpr2{}, err
			}
		} else if !compileC() || !compileB() {
			return cexpr2{}, err
		}
		bf := c2.uniVal(b)
		cg := c2.asGet(cc, dc)
		c2.touchReg(d)
		return cexpr2{ty: F32, get: func(ex *exec2) []float64 {
			la := ex.locals[liA]
			sa := baseA(ex)
			oa := offA(ex)
			bv := bf(ex)
			cs := cg(ex)
			out := ex.regs[d][:ex.hi]
			sa, cs = sa[:len(out)], cs[:len(out)]
			for i := range out {
				var va float64
				if j := int(sa[i] + oa); uint(j) < uint(len(la)) {
					va = la[j]
				}
				out[i] = fmaCombine(va, bv, cs[i], mulLeft, sub)
			}
			return out
		}, intoF: func(ex *exec2, dst []float64) {
			la := ex.locals[liA]
			sa := baseA(ex)
			oa := offA(ex)
			bv := bf(ex)
			cs := cg(ex)
			sa, cs = sa[:len(dst)], cs[:len(dst)]
			for i := range dst {
				var va float64
				if j := int(sa[i] + oa); uint(j) < uint(len(la)) {
					va = la[j]
				}
				dst[i] = float64(float32(fmaCombine(va, bv, cs[i], mulLeft, sub)))
			}
		}}, nil
	}

	// Generic single pass: compile in traversal order.
	if mulLeft {
		if !compileA() || !compileB() || !compileC() {
			return cexpr2{}, err
		}
	} else if !compileC() || !compileA() || !compileB() {
		return cexpr2{}, err
	}
	addOp := AddF
	if sub {
		addOp = SubF
	}
	if a.isConst && b.isConst && cc.isConst {
		m := binScalarOp(MulF)(a.cval, b.cval)
		f := binScalarOp(addOp)
		if mulLeft {
			return const2(F32, f(m, cc.cval)), nil
		}
		return const2(F32, f(cc.cval, m)), nil
	}
	if a.uniform() && b.uniform() && cc.uniform() {
		au, bu, cu := a.uni, b.uni, cc.uni
		switch {
		case mulLeft && !sub:
			return cexpr2{ty: F32, uni: func(ex *exec2) float64 { return float64(au(ex)*bu(ex)) + cu(ex) }}, nil
		case mulLeft:
			return cexpr2{ty: F32, uni: func(ex *exec2) float64 { return float64(au(ex)*bu(ex)) - cu(ex) }}, nil
		case !sub:
			return cexpr2{ty: F32, uni: func(ex *exec2) float64 { return cu(ex) + float64(au(ex)*bu(ex)) }}, nil
		default:
			return cexpr2{ty: F32, uni: func(ex *exec2) float64 { return cu(ex) - float64(au(ex)*bu(ex)) }}, nil
		}
	}
	ag := c2.asGet(a, da)
	bg := c2.asGet(b, db)
	cg := c2.asGet(cc, dc)
	c2.touchReg(d)
	return cexpr2{ty: F32, get: func(ex *exec2) []float64 {
		var as, bs, cs []float64
		if mulLeft {
			as, bs, cs = ag(ex), bg(ex), cg(ex)
		} else {
			cs = cg(ex)
			as, bs = ag(ex), bg(ex)
		}
		out := ex.regs[d][:ex.hi]
		as, bs, cs = as[:len(out)], bs[:len(out)], cs[:len(out)]
		for i := range out {
			out[i] = fmaCombine(as[i], bs[i], cs[i], mulLeft, sub)
		}
		return out
	}}, nil
}

// fmaCombine is the peephole's lane body; mulLeft/sub are compile-time
// constants at every call site, so the branches predict perfectly.
func fmaCombine(a, b, c float64, mulLeft, sub bool) float64 {
	m := float64(a * b) // explicit conversion: rounds the product, never contracted
	if mulLeft {
		if sub {
			return m - c
		}
		return m + c
	}
	if sub {
		return c - m
	}
	return c + m
}

func (c2 *compiler2) compileCall2(e Call, d int) (cexpr2, error) {
	if len(e.Args) != e.Fn.NumArgs() {
		return cexpr2{}, c2.errf("%s expects %d args, got %d", e.Fn, e.Fn.NumArgs(), len(e.Args))
	}
	if e.Fn == FMA {
		a, err := c2.compileExpr2(e.Args[0], d+1)
		if err != nil {
			return cexpr2{}, err
		}
		b, err := c2.compileExpr2(e.Args[1], d+2)
		if err != nil {
			return cexpr2{}, err
		}
		cc, err := c2.compileExpr2(e.Args[2], d+3)
		if err != nil {
			return cexpr2{}, err
		}
		if a.isConst && b.isConst && cc.isConst {
			return const2(F32, a.cval*b.cval+cc.cval), nil
		}
		if a.uniform() && b.uniform() && cc.uniform() {
			au, bu, cu := a.uni, b.uni, cc.uni
			return cexpr2{ty: F32, uni: func(ex *exec2) float64 {
				return au(ex)*bu(ex) + cu(ex)
			}}, nil
		}
		// The FMA builtin keeps the oracle's exact expression shape
		// (a*b + c, no conversion) for bit-identity on every platform.
		ag := c2.asGet(a, d+1)
		bg := c2.asGet(b, d+2)
		cg := c2.asGet(cc, d+3)
		c2.touchReg(d)
		return cexpr2{ty: F32, get: func(ex *exec2) []float64 {
			as := ag(ex)
			bs := bg(ex)
			cs := cg(ex)
			out := ex.regs[d][:ex.hi]
			as, bs, cs = as[:len(out)], bs[:len(out)], cs[:len(out)]
			for i := range out {
				out[i] = as[i]*bs[i] + cs[i]
			}
			return out
		}}, nil
	}
	f := builtinScalarOp(e.Fn)
	if f == nil {
		return cexpr2{}, c2.errf("unknown builtin %v", e.Fn)
	}
	x, err := c2.compileExpr2(e.Args[0], d+1)
	if err != nil {
		return cexpr2{}, err
	}
	if x.isConst {
		return const2(F32, f(x.cval)), nil
	}
	if x.uniform() {
		u := x.uni
		return cexpr2{ty: F32, uni: func(ex *exec2) float64 { return f(u(ex)) }}, nil
	}
	fn := e.Fn
	xg := x.get
	c2.touchReg(d)
	return cexpr2{ty: F32, get: func(ex *exec2) []float64 {
		xs := xg(ex)
		out := ex.regs[d][:ex.hi]
		builtinVec(fn, xs[:len(out)], out)
		return out
	}}, nil
}

func (c2 *compiler2) compileLoad2(e Load, d int) (cexpr2, error) {
	bi, ok := c2.bufIdx[e.Buf]
	if !ok {
		return cexpr2{}, c2.errf("load from unbound buffer %q", e.Buf)
	}
	size := c2.bufElem[e.Buf].Size()
	c2.touchReg(d)
	if c2.exprUniform(e.Index) {
		ice, err := c2.compileExpr2(e.Index, 0)
		if err != nil {
			return cexpr2{}, err
		}
		jf := c2.uniVal(ice)
		// Uniform index: one read, splat; the oracle traces the identical
		// record once per (real) lane — and returns before tracing when
		// the index is out of range, leaving lanes untouched.
		return cexpr2{ty: e.Elem, get: func(ex *exec2) []float64 {
			buf := ex.bufs[bi]
			out := ex.regs[d][:ex.hi]
			j := int(jf(ex))
			if j < 0 || j >= len(buf.Data) {
				return out
			}
			v := buf.Data[j]
			for i := range out {
				out[i] = v
			}
			if ex.tracing {
				a := Access{Addr: buf.Addr(j), Size: size}
				for n := ex.n; n > 0; n-- {
					ex.tb = append(ex.tb, a)
				}
			}
			return out
		}}, nil
	}
	if p := c2.plan2Of(e.Index); p != nil {
		return cexpr2{ty: e.Elem, get: func(ex *exec2) []float64 {
			buf := ex.bufs[bi]
			data := buf.Data
			s, bkd, a, o, s2 := p.setup(ex)
			out := ex.regs[d][:ex.hi]
			if ex.tracing {
				for i := 0; i < ex.n; i++ {
					j := planJ(s, s2, i, bkd, a, o)
					if j < 0 || j >= len(data) {
						continue
					}
					out[i] = data[j]
					ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: size})
				}
			} else {
				s = s[:len(out)]
				for i := range out {
					j := planJ(s, s2, i, bkd, a, o)
					if uint(j) < uint(len(data)) {
						out[i] = data[j]
					}
				}
			}
			return out
		}}, nil
	}
	ice, err := c2.compileExpr2(e.Index, d+1)
	if err != nil {
		return cexpr2{}, err
	}
	ig := ice.get
	return cexpr2{ty: e.Elem, get: func(ex *exec2) []float64 {
		buf := ex.bufs[bi]
		data := buf.Data
		is := ig(ex)
		out := ex.regs[d][:ex.hi]
		if ex.tracing {
			for i := 0; i < ex.n; i++ {
				j := int(is[i])
				if j < 0 || j >= len(data) {
					continue
				}
				out[i] = data[j]
				ex.tb = append(ex.tb, Access{Addr: buf.Addr(j), Size: size})
			}
		} else {
			is = is[:len(out)]
			for i := range out {
				j := int(is[i])
				if uint(j) < uint(len(data)) {
					out[i] = data[j]
				}
			}
		}
		return out
	}}, nil
}

func (c2 *compiler2) compileLocalLoad2(e LocalLoad, d int) (cexpr2, error) {
	li, ok := c2.locIdx[e.Arr]
	if !ok {
		return cexpr2{}, c2.errf("load from undeclared local array %q", e.Arr)
	}
	c2.touchReg(d)
	// Local loads never trace (hazard mode is oracle-only), so every path
	// here is a plain gather over all padded lanes.
	if c2.exprUniform(e.Index) {
		ice, err := c2.compileExpr2(e.Index, 0)
		if err != nil {
			return cexpr2{}, err
		}
		jf := c2.uniVal(ice)
		return cexpr2{ty: e.Elem, get: func(ex *exec2) []float64 {
			arr := ex.locals[li]
			out := ex.regs[d][:ex.hi]
			j := int(jf(ex))
			if j < 0 || j >= len(arr) {
				return out
			}
			v := arr[j]
			for i := range out {
				out[i] = v
			}
			return out
		}}, nil
	}
	if p := c2.plan2Of(e.Index); p != nil {
		return cexpr2{ty: e.Elem, get: func(ex *exec2) []float64 {
			arr := ex.locals[li]
			s, bkd, a, o, s2 := p.setup(ex)
			out := ex.regs[d][:ex.hi]
			s = s[:len(out)]
			for i := range out {
				j := planJ(s, s2, i, bkd, a, o)
				if uint(j) < uint(len(arr)) {
					out[i] = arr[j]
				}
			}
			return out
		}}, nil
	}
	ice, err := c2.compileExpr2(e.Index, d+1)
	if err != nil {
		return cexpr2{}, err
	}
	ig := ice.get
	return cexpr2{ty: e.Elem, get: func(ex *exec2) []float64 {
		arr := ex.locals[li]
		is := ig(ex)
		out := ex.regs[d][:ex.hi]
		is = is[:len(out)]
		for i := range out {
			j := int(is[i])
			if uint(j) < uint(len(arr)) {
				out[i] = arr[j]
			}
		}
		return out
	}}, nil
}

func (c2 *compiler2) compileSelect2(e Select, d int) (cexpr2, error) {
	cnd, err := c2.compileExpr2(e.Cond, d+1)
	if err != nil {
		return cexpr2{}, err
	}
	thn, err := c2.compileExpr2(e.Then, d+2)
	if err != nil {
		return cexpr2{}, err
	}
	els, err := c2.compileExpr2(e.Else, d+3)
	if err != nil {
		return cexpr2{}, err
	}
	ty := e.Then.Type()
	if cnd.isConst && thn.isConst && els.isConst {
		if cnd.cval != 0 {
			return const2(ty, thn.cval), nil
		}
		return const2(ty, els.cval), nil
	}
	if cnd.uniform() && thn.uniform() && els.uniform() {
		cu, tu, eu := cnd.uni, thn.uni, els.uni
		// All three arms evaluate, like the oracle (Select is branchless).
		return cexpr2{ty: ty, uni: func(ex *exec2) float64 {
			cv := cu(ex)
			tv := tu(ex)
			ev := eu(ex)
			if cv != 0 {
				return tv
			}
			return ev
		}}, nil
	}
	cg := c2.asGet(cnd, d+1)
	tg := c2.asGet(thn, d+2)
	eg := c2.asGet(els, d+3)
	c2.touchReg(d)
	return cexpr2{ty: ty, get: func(ex *exec2) []float64 {
		cs := cg(ex)
		ts := tg(ex)
		fs := eg(ex)
		out := ex.regs[d][:ex.hi]
		cs, ts, fs = cs[:len(out)], ts[:len(out)], fs[:len(out)]
		for i := range out {
			if cs[i] != 0 {
				out[i] = ts[i]
			} else {
				out[i] = fs[i]
			}
		}
		return out
	}}, nil
}
