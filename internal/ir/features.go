package ir

import (
	"fmt"
	"sort"
	"sync"
)

// This file exports an AIWC-style architecture-independent feature
// vector per kernel launch (Johnston et al.'s workload characterization,
// see PAPERS.md): the opcode mix by class, global/local load-store
// counts with their stride classes from the fused index plans, branch
// and barrier structure, and a per-workitem traffic proxy. The vector is
// the input to the learned cost predictor (internal/predict), which
// combines it with arch parameters to rank candidate workgroup
// geometries without running the exact device model on each.

// Features is the architecture-independent characterization of one
// kernel at one launch configuration. Every field is derived from a
// static profile under a unit latency table, so two extractions of the
// same (kernel, args, NDRange) are bitwise identical regardless of
// device, goroutine, or iteration order.
type Features struct {
	// Ops are dynamic operation counts for one workitem, by class.
	Ops OpCounts
	// SerialDepth is the unit-latency dependence critical path of one
	// workitem: every op costs 1, so the value counts chained ops, not
	// cycles — an ILP proxy no architecture leaks into.
	SerialDepth float64
	// LoopTrips is the total loop iterations one workitem executes.
	LoopTrips float64
	// TripApprox reports that a loop bound was not statically resolvable
	// and a default estimate entered the counts.
	TripApprox bool
	// Branches is the static count of If sites (divergence potential).
	Branches float64
	// Barriers is the dynamic barrier count per workitem.
	Barriers float64

	// Global-memory access structure, weighted by executions per
	// workitem, classified by inter-workitem stride.
	UnitSites    float64 // contiguous (|stride| == 1 element)
	UniformSites float64 // workitem-invariant address
	StridedSites float64 // known non-unit stride
	GatherSites  float64 // data-dependent / unknown stride
	Loads        float64 // dynamic global loads per workitem
	Stores       float64 // dynamic global stores per workitem

	// TrafficPerItem is the per-workitem bytes-moved proxy under the
	// standard 64-byte-line utilization model: unit strides stream whole
	// lines usefully, large or unknown strides waste most of each line,
	// uniform accesses stay resident. Loop-invariant sites count once
	// per buffer (they touch one location however often they execute).
	TrafficPerItem float64
	// LocalBytes is the __local footprint per workgroup.
	LocalBytes int64

	// Vectorizable reports whether the OpenCL implicit (cross-workitem)
	// vectorizer accepts the kernel: atomics and scalar math-library
	// calls force scalar code (the paper's section III-F legality rule).
	Vectorizable bool
}

// ArithmeticIntensity returns flops per byte of the traffic proxy — the
// roofline x-coordinate of the workload.
func (f *Features) ArithmeticIntensity() float64 {
	if f.TrafficPerItem <= 0 {
		return f.Ops.Flops()
	}
	return f.Ops.Flops() / f.TrafficPerItem
}

// Vector flattens the features into a fixed-order []float64 (booleans as
// 0/1). The order is part of the predictor's model contract: coefficient
// files record against these positions.
func (f *Features) Vector() []float64 {
	v := make([]float64, 0, int(NumOpClasses)+14)
	for c := OpClass(0); c < NumOpClasses; c++ {
		v = append(v, f.Ops[c])
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return append(v,
		f.SerialDepth, f.LoopTrips, b2f(f.TripApprox), f.Branches,
		f.Barriers, f.UnitSites, f.UniformSites, f.StridedSites,
		f.GatherSites, f.Loads, f.Stores, f.TrafficPerItem,
		float64(f.LocalBytes), b2f(f.Vectorizable))
}

// unitLat is the all-ones latency table the extractor profiles under:
// SerialDepth then counts chained operations, free of any device's
// latency choices.
var unitLat = func() LatencyTable {
	var t LatencyTable
	for i := range t {
		t[i] = 1
	}
	return t
}()

// ExtractFeatures characterizes one representative workitem of k
// launched over nd with args. The local size must be resolved (it can
// enter loop bounds via get_local_size). Results are memoized per
// (kernel digest, args shape, nd), so tuners extracting features for
// every candidate pay the profiling cost once per distinct geometry.
func ExtractFeatures(k *Kernel, args *Args, nd NDRange) (*Features, error) {
	ck := featureKey(k, args, nd)
	if f, ok := featureCache.Load(ck); ok {
		return f.(*Features), nil
	}
	f, err := extractFeatures(k, args, nd)
	if err != nil {
		return nil, err
	}
	featureCache.Store(ck, f)
	return f, nil
}

// featureCache memoizes ExtractFeatures. Entries are small (a few
// hundred bytes) and the key space is bounded by distinct (kernel,
// shape, geometry) triples in a process, so no eviction is needed.
var featureCache sync.Map // string -> *Features

// featureKey builds the memo key: the kernel's content digest (shared
// with the compile and search caches, so digest reuse keeps the feature
// cache warm across kernel pointer identities), the argument shapes and
// scalar values, and the launch geometry.
func featureKey(k *Kernel, args *Args, nd NDRange) string {
	return Digest(k) + "|" + argsShape(args) + "|" + nd.String()
}

// argsShape canonically encodes the profile-relevant view of args:
// buffer element types and lengths (addresses and contents don't enter
// the static profile) plus scalar values, in sorted name order.
func argsShape(args *Args) string {
	if args == nil {
		return ""
	}
	names := make([]string, 0, len(args.Buffers))
	for name := range args.Buffers {
		names = append(names, name)
	}
	sort.Strings(names)
	s := ""
	for _, name := range names {
		b := args.Buffers[name]
		if b == nil {
			continue
		}
		s += fmt.Sprintf("b:%s=%s:%d;", name, b.Elem, b.Len())
	}
	scalars := make([]string, 0, len(args.Scalars))
	for name := range args.Scalars {
		scalars = append(scalars, name)
	}
	sort.Strings(scalars)
	for _, name := range scalars {
		s += fmt.Sprintf("s:%s=%g;", name, args.Scalars[name])
	}
	return s
}

func extractFeatures(k *Kernel, args *Args, nd NDRange) (*Features, error) {
	prof, err := ProfileKernel(k, args, nd, unitLat, MaxBranch)
	if err != nil {
		return nil, err
	}
	f := &Features{
		Ops:         prof.Counts,
		SerialDepth: prof.SerialCycles,
		LoopTrips:   prof.LoopTrips,
		TripApprox:  prof.TripApprox,
		Barriers:    prof.Counts[OpBarrier],
		Loads:       prof.Counts[OpLoad],
		Stores:      prof.Counts[OpStore],
	}

	// Stride-classified access structure and the line-utilization
	// traffic proxy. Loop-variant sites generate traffic per execution;
	// invariant sites touch one location per workitem however often they
	// run, and repeated invariant sites on one buffer share lines, so
	// their contribution is the per-buffer maximum.
	perBuf := map[string]float64{}
	for _, s := range prof.Accesses {
		switch {
		case s.Stride.Uniform():
			f.UniformSites += s.PerItem
		case s.Stride.Unit():
			f.UnitSites += s.PerItem
		case s.Stride.Known:
			f.StridedSites += s.PerItem
		default:
			f.GatherSites += s.PerItem
		}
		t := featureTraffic(s.Stride)
		if s.LoopVariant {
			f.TrafficPerItem += s.PerItem * t
		} else if t > perBuf[s.Buf] {
			perBuf[s.Buf] = t
		}
	}
	// Per-buffer invariant traffic, in name order for float determinism.
	bufs := make([]string, 0, len(perBuf))
	for b := range perBuf {
		bufs = append(bufs, b)
	}
	sort.Strings(bufs)
	for _, b := range bufs {
		f.TrafficPerItem += perBuf[b]
	}

	// Static branch-site count (divergence potential).
	walkStmts(k.Body, func(s Stmt) {
		if _, ok := s.(If); ok {
			f.Branches++
		}
	})

	// __local footprint per workgroup.
	se := NewStaticEnv(nd, args)
	for _, l := range k.Locals {
		if n, ok := EvalStatic(l.Size, se); ok {
			f.LocalBytes += int64(n) * l.Elem.Size()
		}
	}

	// Implicit-vectorizer legality, matching VectorizeOpenCL's
	// structural rules exactly: atomics and scalar math-library calls
	// force scalar code wherever they appear, even in branches or loops
	// the dynamic counts miss.
	f.Vectorizable = true
	walkStmts(k.Body, func(s Stmt) {
		if _, ok := s.(AtomicAdd); ok {
			f.Vectorizable = false
		}
	})
	if _, scalar := callsScalarLibm(k.Body); scalar {
		f.Vectorizable = false
	}

	return f, nil
}

// featureTraffic estimates bytes of traffic per dynamic access for a
// site with the given inter-workitem stride, under the 64-byte-line /
// 4-byte-element utilization model (architecture-independent: every
// cache the suite models shares the line size).
func featureTraffic(s Stride) float64 {
	const (
		line = 64
		elem = 4
	)
	switch {
	case s.Uniform():
		return 0
	case s.Unit():
		return elem
	case !s.Known:
		return line
	default:
		b := float64(s.Elems) * elem
		if b < 0 {
			b = -b
		}
		if b > line {
			return line
		}
		return b
	}
}
