package ir

import (
	"math"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Kernel {
	t.Helper()
	k, err := ParseKernel(src, "")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return k
}

func TestParseSquare(t *testing.T) {
	k := mustParse(t, `
		// the classic first kernel
		__kernel void square(__global float *in, __global float *out) {
			int i = get_global_id(0);
			float x = in[i];
			out[i] = x * x;
		}
	`)
	if k.Name != "square" || k.WorkDim != 1 || len(k.Params) != 2 {
		t.Fatalf("kernel header wrong: %+v", k)
	}
	const n = 256
	in := NewBufferF32("in", n)
	out := NewBufferF32("out", n)
	for i := 0; i < n; i++ {
		in.Set(i, float64(i)*0.5)
	}
	args := NewArgs().Bind("in", in).Bind("out", out)
	if err := ExecRange(k, args, Range1D(n, 64), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x := float32(in.Get(i))
		if out.Get(i) != float64(x*x) {
			t.Fatalf("out[%d] = %v", i, out.Get(i))
		}
	}
}

// A parsed kernel must behave identically to its hand-built twin.
func TestParseDifferentialVsBuilt(t *testing.T) {
	src := `
	__kernel void saxpy(float alpha, __global float *x, __global float *y) {
		int i = get_global_id(0);
		y[i] = alpha * x[i] + y[i];
	}`
	parsed := mustParse(t, src)

	built := &Kernel{
		Name:    "saxpy",
		WorkDim: 1,
		Params:  []Param{Scalar("alpha"), Buf("x"), Buf("y")},
		Body: []Stmt{
			Set("i", Gid(0)),
			StoreF("y", Vi("i"),
				Add(Mul(P("alpha"), LoadF("x", Vi("i"))), LoadF("y", Vi("i")))),
		},
	}

	const n = 512
	run := func(k *Kernel) []float64 {
		x := NewBufferF32("x", n)
		y := NewBufferF32("y", n)
		for i := 0; i < n; i++ {
			x.Set(i, float64(i)*0.25)
			y.Set(i, float64(n-i)*0.5)
		}
		args := NewArgs().Bind("x", x).Bind("y", y).SetScalar("alpha", 1.5)
		if err := ExecRange(k, args, Range1D(n, 64), ExecOptions{}); err != nil {
			t.Fatal(err)
		}
		return y.Snapshot()
	}
	a, b := run(parsed), run(built)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parsed and built kernels differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestParseControlFlow(t *testing.T) {
	k := mustParse(t, `
	__kernel void clampsum(__global float *a, __global float *out, int n) {
		int i = get_global_id(0);
		float acc = 0.0f;
		for (int j = 0; j < n; j++) {
			float v = a[i * n + j];
			if (v > 0.0f) {
				acc += v;
			} else if (v < -1.0f) {
				acc -= 1.0f;
			} else {
				acc += v * 0.5f;
			}
		}
		out[i] = acc;
	}`)
	const items, inner = 32, 8
	a := NewBufferF32("a", items*inner)
	out := NewBufferF32("out", items)
	for i := range a.Data {
		a.Set(i, float64(i%7)-3)
	}
	args := NewArgs().Bind("a", a).Bind("out", out).SetScalar("n", inner)
	if err := ExecRange(k, args, Range1D(items, 8), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < items; i++ {
		acc := float32(0)
		for j := 0; j < inner; j++ {
			v := float32(a.Get(i*inner + j))
			switch {
			case v > 0:
				acc += v
			case v < -1:
				acc -= 1
			default:
				acc += v * 0.5
			}
		}
		if math.Abs(out.Get(i)-float64(acc)) > 1e-5 {
			t.Fatalf("out[%d] = %v, want %v", i, out.Get(i), acc)
		}
	}
}

func TestParseLocalAndBarrier(t *testing.T) {
	k := mustParse(t, `
	__kernel void reverse(__global float *in, __global float *out) {
		__local float tile[64];
		int lid = get_local_id(0);
		tile[lid] = in[get_global_id(0)];
		barrier(CLK_LOCAL_MEM_FENCE);
		out[get_global_id(0)] = tile[get_local_size(0) - 1 - lid];
	}`)
	const n, l = 128, 64
	in := NewBufferF32("in", n)
	out := NewBufferF32("out", n)
	for i := 0; i < n; i++ {
		in.Set(i, float64(i))
	}
	args := NewArgs().Bind("in", in).Bind("out", out)
	if err := ExecRange(k, args, Range1D(n, l), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		group, lid := i/l, i%l
		if want := float64(group*l + (l - 1 - lid)); out.Get(i) != want {
			t.Fatalf("out[%d] = %v, want %v", i, out.Get(i), want)
		}
	}
}

func TestParseAtomicHistogram(t *testing.T) {
	k := mustParse(t, `
	__kernel void hist(__global int *in, __global int *partial) {
		__local int bins[16];
		for (int t = get_local_id(0); t < 16; t += get_local_size(0)) {
			bins[t] = 0;
		}
		barrier(CLK_LOCAL_MEM_FENCE);
		atomic_add(&bins[in[get_global_id(0)] & 15], 1);
		barrier(CLK_LOCAL_MEM_FENCE);
		for (int t = get_local_id(0); t < 16; t += get_local_size(0)) {
			partial[get_group_id(0) * 16 + t] = bins[t];
		}
	}`)
	const n, l = 256, 64
	in := NewBufferI32("in", n)
	partial := NewBufferI32("partial", (n/l)*16)
	for i := 0; i < n; i++ {
		in.Set(i, float64(i))
	}
	args := NewArgs().Bind("in", in).Bind("partial", partial)
	if err := ExecRange(k, args, Range1D(n, l), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := 0; i < partial.Len(); i++ {
		total += partial.Get(i)
	}
	if total != n {
		t.Fatalf("histogram population %v, want %v", total, n)
	}
}

func TestParse2DAndBuiltins(t *testing.T) {
	k := mustParse(t, `
	__kernel void norm(__global float *out, int w) {
		int x = get_global_id(0);
		int y = get_global_id(1);
		out[y * w + x] = sqrt((float)(x * x + y * y)) + fmin(1.0f, fabs(-2.0f));
	}`)
	if k.WorkDim != 2 {
		t.Fatalf("WorkDim = %d, want 2 (uses get_global_id(1))", k.WorkDim)
	}
	const w, h = 16, 8
	out := NewBufferF32("out", w*h)
	args := NewArgs().Bind("out", out).SetScalar("w", w)
	if err := ExecRange(k, args, Range2D(w, h, 4, 4), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			want := math.Sqrt(float64(x*x+y*y)) + 1
			if math.Abs(out.Get(y*w+x)-want) > 1e-4 {
				t.Fatalf("out[%d,%d] = %v, want %v", x, y, out.Get(y*w+x), want)
			}
		}
	}
}

func TestParseOperatorsAndTernary(t *testing.T) {
	k := mustParse(t, `
	__kernel void ops(__global int *in, __global float *out) {
		int i = get_global_id(0);
		int v = in[i];
		int sel = (v % 3 == 0) && (v > 2) || (v == 1);
		int bits = ((v << 2) >> 1) & 12 | 1;
		out[i] = sel ? (float)(bits) : -1.0f;
	}`)
	const n = 32
	in := NewBufferI32("in", n)
	out := NewBufferF32("out", n)
	for i := 0; i < n; i++ {
		in.Set(i, float64(i))
	}
	args := NewArgs().Bind("in", in).Bind("out", out)
	if err := ExecRange(k, args, Range1D(n, 8), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v := i
		sel := (v%3 == 0 && v > 2) || v == 1
		bits := ((v<<2)>>1)&12 | 1
		want := -1.0
		if sel {
			want = float64(bits)
		}
		if out.Get(i) != want {
			t.Fatalf("out[%d] = %v, want %v", i, out.Get(i), want)
		}
	}
}

func TestParseMultipleKernels(t *testing.T) {
	src := `
	__kernel void first(__global float *a) { a[get_global_id(0)] = 1.0f; }
	__kernel void second(__global float *a) { a[get_global_id(0)] = 2.0f; }
	`
	ks, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 || ks[0].Name != "first" || ks[1].Name != "second" {
		t.Fatalf("kernels = %v", ks)
	}
	if _, err := ParseKernel(src, "second"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseKernel(src, ""); err == nil {
		t.Fatal("ambiguous ParseKernel must fail")
	}
	if _, err := ParseKernel(src, "third"); err == nil {
		t.Fatal("missing kernel must fail")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", "  ", "no __kernel"},
		{"early return", `__kernel void f(__global float *a) {
			if (get_global_id(0) > 4) { return; }
			a[get_global_id(0)] = 1.0f; }`, "return"},
		{"unknown ident", `__kernel void f(__global float *a) { a[0] = b; }`, "unknown identifier"},
		{"unknown func", `__kernel void f(__global float *a) { a[0] = frob(1.0f); }`, "unknown function"},
		{"float mod", `__kernel void f(__global float *a) { a[0] = 1.0f % 2.0f; }`, "integer operands"},
		{"bad loop", `__kernel void f(__global float *a) {
			for (int i = 0; i > 10; i++) { a[i] = 1.0f; } }`, "loop condition"},
		{"unterminated", `__kernel void f(__global float *a) { a[0] = 1.0f;`, "unterminated"},
		{"while", `__kernel void f(__global float *a) { while (1) { } }`, "unexpected"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestParseCompoundAssignOnBuffers(t *testing.T) {
	k := mustParse(t, `
	__kernel void accumulate(__global float *a, __global float *b) {
		int i = get_global_id(0);
		a[i] += b[i];
		a[i] *= 2.0f;
	}`)
	const n = 64
	a := NewBufferF32("a", n)
	b := NewBufferF32("b", n)
	for i := 0; i < n; i++ {
		a.Set(i, 1)
		b.Set(i, float64(i))
	}
	args := NewArgs().Bind("a", a).Bind("b", b)
	if err := ExecRange(k, args, Range1D(n, 16), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if want := (1 + float64(i)) * 2; a.Get(i) != want {
			t.Fatalf("a[%d] = %v, want %v", i, a.Get(i), want)
		}
	}
}

// The parsed figure-11 kernel must get the same vectorization verdicts as
// the hand-built MBench2.
func TestParsedKernelAnalyses(t *testing.T) {
	k := mustParse(t, `
	__kernel void mb2(__global float *a, __global float *b) {
		a[get_global_id(0)] = a[get_global_id(0)] * b[get_global_id(0)];
		a[get_global_id(0)] = a[get_global_id(0)] * b[get_global_id(0)];
	}`)
	nd := Range1D(1024, 64)
	rep, err := VectorizeOpenCL(k, NewArgs(), nd)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Vectorized {
		t.Fatalf("parsed RMW kernel should vectorize under OpenCL: %s", rep.ScalarReason)
	}
	body := SubstGlobalID(k.Body, 0, Vi("i"))
	loopRep := VectorizeLoop(body, "i", NewStaticEnv(nd, nil), nil)
	if loopRep.Vectorized {
		t.Fatal("parsed RMW kernel must fail the loop vectorizer")
	}
}
