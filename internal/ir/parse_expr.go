package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Expression parsing by precedence climbing. Every production returns the
// expression plus the highest workitem dimension referenced (so the kernel's
// WorkDim can be inferred).

// binLevels lists binary operators from loosest to tightest.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

// expr parses a full expression including the ternary conditional.
func (p *parser) expr() (Expr, int, error) {
	cond, d1, err := p.binLevel(0)
	if err != nil {
		return nil, 0, err
	}
	if !p.atPunct("?") {
		return cond, d1, nil
	}
	p.next()
	thenE, d2, err := p.expr()
	if err != nil {
		return nil, 0, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, 0, err
	}
	elseE, d3, err := p.expr()
	if err != nil {
		return nil, 0, err
	}
	// Unify arm types so Select's type is meaningful.
	if isF(thenE) || isF(elseE) {
		thenE, elseE = coerce(thenE, F32), coerce(elseE, F32)
	}
	return Select{Cond: cond, Then: thenE, Else: elseE}, maxi2(d1, maxi2(d2, d3)), nil
}

func (p *parser) binLevel(level int) (Expr, int, error) {
	if level >= len(binLevels) {
		return p.unary()
	}
	left, dim, err := p.binLevel(level + 1)
	if err != nil {
		return nil, 0, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct || !contains(binLevels[level], t.text) {
			return left, dim, nil
		}
		p.next()
		right, d2, err := p.binLevel(level + 1)
		if err != nil {
			return nil, 0, err
		}
		left, err = p.binary(t.text, left, right)
		if err != nil {
			return nil, 0, err
		}
		dim = maxi2(dim, d2)
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func isF(e Expr) bool { return e.Type() == F32 }

// coerce inserts an explicit conversion when e's type differs from ty.
func coerce(e Expr, ty Type) Expr {
	if e.Type() == ty {
		return e
	}
	if ty == F32 {
		return ToFloat{X: e}
	}
	return ToInt{X: e}
}

// binary builds the typed IR operator for a C operator and operand types.
func (p *parser) binary(op string, x, y Expr) (Expr, error) {
	f := isF(x) || isF(y)
	pick := func(fop, iop BinOp) (Expr, error) {
		if f {
			return Bin{Op: fop, X: x, Y: y}, nil
		}
		return Bin{Op: iop, X: x, Y: y}, nil
	}
	intOnly := func(iop BinOp) (Expr, error) {
		if f {
			return nil, p.errf("operator %q needs integer operands", op)
		}
		return Bin{Op: iop, X: x, Y: y}, nil
	}
	switch op {
	case "+":
		return pick(AddF, AddI)
	case "-":
		return pick(SubF, SubI)
	case "*":
		return pick(MulF, MulI)
	case "/":
		return pick(DivF, DivI)
	case "%":
		return intOnly(ModI)
	case "<":
		return pick(LtF, LtI)
	case "<=":
		return pick(LeF, LeI)
	case ">":
		return pick(GtF, GtI)
	case ">=":
		return pick(GeF, GeI)
	case "==":
		return pick(EqF, EqI)
	case "!=":
		// NeI compares raw values and is correct for floats too.
		return Bin{Op: NeI, X: x, Y: y}, nil
	case "<<":
		return intOnly(ShlI)
	case ">>":
		return intOnly(ShrI)
	case "&", "&&":
		return intOnly(AndI)
	case "|", "||":
		return intOnly(OrI)
	}
	return nil, p.errf("unsupported operator %q", op)
}

func (p *parser) unary() (Expr, int, error) {
	switch {
	case p.atPunct("-"):
		p.next()
		x, dim, err := p.unary()
		if err != nil {
			return nil, 0, err
		}
		if isF(x) {
			return Sub(F(0), x), dim, nil
		}
		return Subi(I(0), x), dim, nil
	case p.atPunct("+"):
		p.next()
		return p.unary()
	case p.atPunct("!"):
		p.next()
		x, dim, err := p.unary()
		if err != nil {
			return nil, 0, err
		}
		return Bin{Op: EqI, X: x, Y: I(0)}, dim, nil
	case p.atPunct("("):
		// Cast or parenthesized expression.
		if ty, ok := parseType(p.toks[p.pos+1].text); ok &&
			p.toks[p.pos+1].kind == tokIdent &&
			p.toks[p.pos+2].kind == tokPunct && p.toks[p.pos+2].text == ")" {
			p.next()
			p.next()
			p.next()
			x, dim, err := p.unary()
			if err != nil {
				return nil, 0, err
			}
			return coerce(x, ty), dim, nil
		}
		p.next()
		e, dim, err := p.expr()
		if err != nil {
			return nil, 0, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, 0, err
		}
		return e, dim, nil
	}
	return p.primary()
}

// idFuncs maps get_* names to identity functions.
var idFuncs = map[string]IDFunc{
	"get_global_id":   GlobalID,
	"get_local_id":    LocalID,
	"get_group_id":    GroupID,
	"get_global_size": GlobalSize,
	"get_local_size":  LocalSize,
	"get_num_groups":  NumGroups,
}

// builtinFuncs maps math function names to builtins.
var builtinFuncs = map[string]Builtin{
	"sqrt": Sqrt, "native_sqrt": Sqrt,
	"rsqrt": Rsqrt, "native_rsqrt": Rsqrt,
	"exp": Exp, "native_exp": Exp,
	"log": Log, "native_log": Log,
	"sin": Sin, "native_sin": Sin,
	"cos": Cos, "native_cos": Cos,
	"fabs":  Fabs,
	"floor": Floor,
	"fma":   FMA, "mad": FMA,
}

func (p *parser) primary() (Expr, int, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		text := t.text
		isFloat := strings.ContainsAny(text, ".eEfF")
		text = strings.TrimRight(text, "fF")
		if isFloat {
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("ir: line %d: bad float literal %q", t.line, t.text)
			}
			return F(v), 0, nil
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("ir: line %d: bad integer literal %q", t.line, t.text)
		}
		return I(v), 0, nil

	case tokIdent:
		name := p.next().text

		// Function call.
		if p.atPunct("(") {
			return p.call(name)
		}

		// Array indexing.
		if p.atPunct("[") {
			p.next()
			idx, dim, err := p.expr()
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, 0, err
			}
			e, err := p.indexed(name, idx)
			if err != nil {
				return nil, 0, err
			}
			return e, dim, nil
		}

		// Scalar symbol.
		if ty, ok := p.vars[name]; ok {
			return VarRef{Name: name, Ty: ty}, 0, nil
		}
		if ty, ok := p.scalars[name]; ok {
			return ParamRef{Name: name, Ty: ty}, 0, nil
		}
		return nil, 0, p.errf("unknown identifier %q", name)
	}
	return nil, 0, p.errf("expected expression")
}

func (p *parser) call(name string) (Expr, int, error) {
	p.next() // '('
	var (
		args []Expr
		dim  int
	)
	for !p.atPunct(")") {
		a, d, err := p.expr()
		if err != nil {
			return nil, 0, err
		}
		args = append(args, a)
		dim = maxi2(dim, d)
		if p.atPunct(",") {
			p.next()
		}
	}
	p.next() // ')'

	if fn, ok := idFuncs[name]; ok {
		if len(args) != 1 {
			return nil, 0, p.errf("%s takes one dimension argument", name)
		}
		c, ok := args[0].(ConstInt)
		if !ok {
			return nil, 0, p.errf("%s needs a constant dimension", name)
		}
		return ID{Fn: fn, Dim: int(c.V)}, int(c.V), nil
	}
	if fn, ok := builtinFuncs[name]; ok {
		if len(args) != fn.NumArgs() {
			return nil, 0, p.errf("%s takes %d arguments", name, fn.NumArgs())
		}
		for i := range args {
			args[i] = coerce(args[i], F32)
		}
		return Call{Fn: fn, Args: args}, dim, nil
	}
	switch name {
	case "min", "fmin":
		if len(args) != 2 {
			return nil, 0, p.errf("%s takes two arguments", name)
		}
		return Bin{Op: MinF, X: coerce(args[0], F32), Y: coerce(args[1], F32)}, dim, nil
	case "max", "fmax":
		if len(args) != 2 {
			return nil, 0, p.errf("%s takes two arguments", name)
		}
		return Bin{Op: MaxF, X: coerce(args[0], F32), Y: coerce(args[1], F32)}, dim, nil
	}
	return nil, 0, p.errf("unknown function %q", name)
}
