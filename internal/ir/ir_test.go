package ir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNDRangeGeometry(t *testing.T) {
	nd := Range2D(64, 32, 8, 4)
	if nd.Dims() != 2 {
		t.Errorf("Dims = %d", nd.Dims())
	}
	if nd.GlobalItems() != 2048 {
		t.Errorf("GlobalItems = %d", nd.GlobalItems())
	}
	if nd.GroupItems() != 32 {
		t.Errorf("GroupItems = %d", nd.GroupItems())
	}
	if nd.NumGroups() != 64 {
		t.Errorf("NumGroups = %d", nd.NumGroups())
	}
	if c := nd.GroupCounts(); c != [3]int{8, 8, 1} {
		t.Errorf("GroupCounts = %v", c)
	}
	if got := nd.GroupCoord(9); got != [3]int{1, 1, 0} {
		t.Errorf("GroupCoord(9) = %v", got)
	}
	if s := nd.String(); s != "64x32/8x4" {
		t.Errorf("String = %q", s)
	}
	if s := Range1D(100, 0).String(); s != "100/NULL" {
		t.Errorf("NULL String = %q", s)
	}
}

func TestNDRangeValidate(t *testing.T) {
	if err := Range1D(100, 10).Validate(); err != nil {
		t.Error(err)
	}
	if err := Range1D(100, 7).Validate(); err == nil {
		t.Error("7 does not divide 100")
	}
	if err := (NDRange{}).Validate(); err == nil {
		t.Error("empty range must fail")
	}
	if err := (NDRange{Global: [3]int{-1, 1, 1}}).Validate(); err == nil {
		t.Error("negative size must fail")
	}
	// NULL local is valid; group queries panic until resolved.
	nd := Range1D(100, 0)
	if err := nd.Validate(); err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("GroupItems on NULL local must panic")
		}
	}()
	nd.GroupItems()
}

// Property: GroupCoord inverts the linear group index.
func TestGroupCoordRoundTrip(t *testing.T) {
	prop := func(a, b, c uint8) bool {
		nd := Range2D(int(a%8+1)*4, int(b%8+1)*2, 4, 2)
		g := int(c) % nd.NumGroups()
		coord := nd.GroupCoord(g)
		counts := nd.GroupCounts()
		back := coord[0] + coord[1]*counts[0] + coord[2]*counts[0]*counts[1]
		return back == g
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBufferRounding(t *testing.T) {
	f := NewBufferF32("f", 4)
	f.Set(0, 0.1) // not representable in float32
	if f.Get(0) == 0.1 {
		t.Error("F32 buffer must round through float32")
	}
	if f.Get(0) != float64(float32(0.1)) {
		t.Errorf("got %v", f.Get(0))
	}
	i := NewBufferI32("i", 4)
	i.Set(0, 3.7)
	if i.Get(0) != 3 {
		t.Errorf("I32 buffer must truncate: %v", i.Get(0))
	}
}

func TestBufferHelpers(t *testing.T) {
	b := FromF32("b", []float64{1, 2, 3})
	if b.Len() != 3 || b.Bytes() != 12 {
		t.Errorf("len/bytes = %d/%d", b.Len(), b.Bytes())
	}
	b.Base = 1000
	if b.Addr(2) != 1008 {
		t.Errorf("Addr(2) = %d", b.Addr(2))
	}
	b.Fill(7)
	snap := b.Snapshot()
	b.Set(0, 9)
	if snap[0] != 7 {
		t.Error("Snapshot must copy")
	}
	b.CopyFrom([]float64{1, 2})
	if b.Get(0) != 1 || b.Get(2) != 7 {
		t.Errorf("CopyFrom partial: %v", b.Data)
	}
	if !strings.Contains(b.String(), "b[3]") {
		t.Errorf("String = %q", b.String())
	}
}

func TestArgsClone(t *testing.T) {
	a := NewArgs().Bind("x", NewBufferF32("x", 4)).SetScalar("s", 2)
	c := a.Clone()
	c.SetScalar("s", 3)
	if a.Scalars["s"] != 2 {
		t.Error("Clone must copy scalar map")
	}
	if c.Buffers["x"] != a.Buffers["x"] {
		t.Error("Clone shares buffers")
	}
	a.SetScalar("a1", 1).SetScalar("b2", 2)
	names := a.ScalarNames()
	if len(names) != 3 || names[0] != "a1" {
		t.Errorf("ScalarNames = %v", names)
	}
}

func TestSubstVars(t *testing.T) {
	defs := map[string]Expr{"i": Gid(0)}
	e := SubstVars(Add(V("i"), V("j")), defs)
	s := FormatExpr(e)
	if !strings.Contains(s, "get_global_id(0)") || !strings.Contains(s, "j") {
		t.Errorf("SubstVars = %s", s)
	}
	// Oversized substitutions are abandoned.
	big := Expr(F(1))
	for i := 0; i < maxSubstNodes; i++ {
		big = Add(big, F(1))
	}
	out := SubstVars(V("x"), map[string]Expr{"x": big})
	if _, ok := out.(VarRef); !ok {
		t.Error("oversized substitution must return the original expression")
	}
}

func TestDefTrackerInvalidation(t *testing.T) {
	tr := newDefTracker()
	tr.assign("a", Gid(0))
	tr.assign("b", Muli(V("a"), I(2)))
	resolved := FormatExpr(tr.resolve(Vi("b")))
	if !strings.Contains(resolved, "get_global_id(0)") {
		t.Errorf("chained resolution broken: %s", resolved)
	}
	tr.invalidate("b")
	if FormatExpr(tr.resolve(Vi("b"))) != "b" {
		t.Error("invalidate must drop the definition")
	}
}

func TestStaticEvalIDs(t *testing.T) {
	env := NewStaticEnv(Range2D(64, 32, 8, 4), nil)
	se := &staticEval{env: env, varVal: map[string]float64{}}
	for _, c := range []struct {
		e    Expr
		want float64
	}{
		{Gsz(0), 64},
		{Gsz(1), 32},
		{Lsz(0), 8},
		{Ngrp(0), 8},
		{I(5), 5},
		{F(2.5), 2.5},
		{Add(F(1), F(2)), 3},
		{Call1(Sqrt, F(9)), 3},
		{Fma(F(2), F(3), F(4)), 10},
		{Select{Cond: I(1), Then: F(7), Else: F(8)}, 7},
		{ToInt{X: F(3.9)}, 3},
	} {
		got, ok := se.eval(c.e)
		if !ok || got != c.want {
			t.Errorf("eval(%s) = %v,%v, want %v", FormatExpr(c.e), got, ok, c.want)
		}
	}
	// Loads are unknown.
	if _, ok := se.eval(LoadF("a", I(0))); ok {
		t.Error("loads must be statically unknown")
	}
	// EvalStatic is the public wrapper.
	if v, ok := EvalStatic(Muli(Lsz(0), Lsz(1)), env); !ok || v != 32 {
		t.Errorf("EvalStatic = %v,%v", v, ok)
	}
}

func TestGIDFraction(t *testing.T) {
	env := NewStaticEnv(Range1D(100, 10), nil)
	se := &staticEval{env: env, varVal: map[string]float64{}}
	gid, _ := se.eval(Gid(0))
	if gid != 50 {
		t.Errorf("representative gid = %v, want 50 (midpoint)", gid)
	}
	lid, _ := se.eval(Lid(0))
	if lid != 0 {
		t.Errorf("lid = %v, want 0 (50 %% 10)", lid)
	}
	grp, _ := se.eval(Grp(0))
	if grp != 5 {
		t.Errorf("group = %v, want 5", grp)
	}
}

func TestProfileILPAccessor(t *testing.T) {
	lat := testLat()
	p, err := ProfileKernel(ilpKernel(4, 64), NewArgs(), Range1D(256, 64), lat, MaxBranch)
	if err != nil {
		t.Fatal(err)
	}
	if ilp := p.ILP(lat); ilp < 2 {
		t.Errorf("ILP(4 chains) = %v, want >= 2", ilp)
	}
	if p.LoopTrips != 64 {
		t.Errorf("LoopTrips = %v, want 64", p.LoopTrips)
	}
	empty := &Profile{}
	if empty.ILP(lat) != 1 {
		t.Error("empty profile ILP must be 1")
	}
}

func TestSubstGlobalIDInAllNodes(t *testing.T) {
	k := &Kernel{
		Name:    "all",
		WorkDim: 1,
		Params:  []Param{Buf("a"), BufI("idx")},
		Locals:  []LocalArray{{Name: "l", Elem: F32, Size: I(16)}},
		Body: []Stmt{
			Assign{Dst: "x", Val: Select{Cond: Gid(0), Then: ToFloat{X: Gid(0)}, Else: F(0)}},
			If{Cond: Bin{Op: LtI, X: Gid(0), Y: I(4)},
				Then: []Stmt{LocalStore{Arr: "l", Index: Modi(Gid(0), I(16)), Val: V("x")}},
				Else: []Stmt{AtomicAdd{Arr: "l", Index: I(0), Val: ToFloat{X: Gid(0)}}}},
			For{Var: "t", Start: Gid(0), End: Addi(Gid(0), I(1)), Step: I(1),
				Body: []Stmt{Store{Buf: "a", Index: Vi("t"), Val: LLoadF("l", I(0))}}},
		},
	}
	out := SubstGlobalID(k.Body, 0, Vi("q"))
	count := 0
	walkStmts(out, func(s Stmt) {
		switch s := s.(type) {
		case Assign:
			walkExpr(s.Val, func(e Expr) {
				if id, ok := e.(ID); ok && id.Fn == GlobalID {
					count++
				}
			})
		}
	})
	var any bool
	walkStmts(out, func(s Stmt) {
		exprs := []Expr{}
		switch s := s.(type) {
		case Assign:
			exprs = append(exprs, s.Val)
		case Store:
			exprs = append(exprs, s.Index, s.Val)
		case LocalStore:
			exprs = append(exprs, s.Index, s.Val)
		case AtomicAdd:
			exprs = append(exprs, s.Index, s.Val)
		case If:
			exprs = append(exprs, s.Cond)
		case For:
			exprs = append(exprs, s.Start, s.End, s.Step)
		}
		for _, e := range exprs {
			walkExpr(e, func(e Expr) {
				if id, ok := e.(ID); ok && id.Fn == GlobalID && id.Dim == 0 {
					any = true
				}
			})
		}
	})
	if any {
		t.Error("SubstGlobalID left a get_global_id(0) behind")
	}
}

func TestFormatExprCoverage(t *testing.T) {
	exprs := map[string]Expr{
		"(a + b)":           Add(V("a"), V("b")),
		"fma(a, b, c)":      Fma(V("a"), V("b"), V("c")),
		"(int)(x)":          ToInt{X: V("x")},
		"(float)(i)":        ToFloat{X: Vi("i")},
		"(c ? a : b)":       Select{Cond: V("c"), Then: V("a"), Else: V("b")},
		"arr[3]":            LLoadF("arr", I(3)),
		"get_local_size(1)": Lsz(1),
		"(a % 4)":           Modi(V("a"), I(4)),
	}
	for want, e := range exprs {
		if got := FormatExpr(e); got != want {
			t.Errorf("FormatExpr = %q, want %q", got, want)
		}
	}
}

func TestBuiltinProperties(t *testing.T) {
	if Sqrt.NumArgs() != 1 || FMA.NumArgs() != 3 {
		t.Error("arities wrong")
	}
	if !Sqrt.Vectorizable() || Exp.Vectorizable() {
		t.Error("vectorizability wrong")
	}
	for b := Sqrt; b <= FMA; b++ {
		if b.String() == "" || strings.Contains(b.String(), "Builtin(") {
			t.Errorf("missing name for builtin %d", b)
		}
	}
}

func TestOpClassNames(t *testing.T) {
	for c := OpClass(0); c < NumOpClasses; c++ {
		if c.String() == "" || c.String() == "op?" {
			t.Errorf("class %d has no name", c)
		}
	}
	if OpClass(99).String() != "op?" {
		t.Error("out-of-range class must print op?")
	}
}

// Property: the interpreter and the static evaluator agree on pure
// arithmetic expressions.
func TestStaticEvalMatchesInterpreter(t *testing.T) {
	prop := func(a, b int16, op uint8) bool {
		x, y := float64(a%100), float64(b%100)
		ops := []BinOp{AddF, SubF, MulF, MinF, MaxF}
		o := ops[int(op)%len(ops)]
		e := Bin{Op: o, X: F(x), Y: F(y)}

		env := NewStaticEnv(Range1D(16, 4), nil)
		se := &staticEval{env: env, varVal: map[string]float64{}}
		sv, ok := se.eval(e)
		if !ok {
			return false
		}

		k := &Kernel{Name: "p", WorkDim: 1, Params: []Param{Buf("o")},
			Body: []Stmt{StoreF("o", Gid(0), e)}}
		out := NewBufferF32("o", 16)
		if err := ExecRange(k, NewArgs().Bind("o", out), Range1D(16, 4), ExecOptions{}); err != nil {
			return false
		}
		return math.Abs(out.Get(0)-float64(float32(sv))) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExec3D(t *testing.T) {
	k := &Kernel{
		Name:    "idx3d",
		WorkDim: 3,
		Params:  []Param{Buf("out")},
		Body: []Stmt{
			Set("i", Addi(Gid(0),
				Addi(Muli(Gid(1), Gsz(0)),
					Muli(Gid(2), Muli(Gsz(0), Gsz(1)))))),
			StoreF("out", Vi("i"),
				Add(ToFloat{X: Gid(0)},
					Add(Mul(F(100), ToFloat{X: Gid(1)}),
						Mul(F(10000), ToFloat{X: Gid(2)})))),
		},
	}
	const x, y, z = 8, 4, 2
	out := NewBufferF32("out", x*y*z)
	nd := Range3D(x, y, z, 4, 2, 1)
	if err := ExecRange(k, NewArgs().Bind("out", out), nd, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for k3 := 0; k3 < z; k3++ {
		for j := 0; j < y; j++ {
			for i := 0; i < x; i++ {
				want := float64(i + 100*j + 10000*k3)
				if got := out.Get(i + j*x + k3*x*y); got != want {
					t.Fatalf("out[%d,%d,%d] = %v, want %v", i, j, k3, got, want)
				}
			}
		}
	}
	if nd.Dims() != 3 || nd.GlobalItems() != x*y*z || nd.NumGroups() != 2*2*2 {
		t.Fatalf("geometry wrong: %v", nd)
	}
}
