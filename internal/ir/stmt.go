package ir

// Stmt is a statement node. Statement lists execute in order; control flow
// is structured (For and If are trees, there is no goto), which is what
// makes lockstep SIMT execution and vectorization analysis tractable.
type Stmt interface{ stmtNode() }

// Assign writes a scalar local variable: Dst = Val. Assigning a variable
// declares it on first use; its type is Val's type and must not change.
type Assign struct {
	Dst string
	Val Expr
}

// Store writes global memory: Buf[Index] = Val.
type Store struct {
	Buf   string
	Index Expr
	Val   Expr
}

// LocalStore writes workgroup-local memory: Arr[Index] = Val.
type LocalStore struct {
	Arr   string
	Index Expr
	Val   Expr
}

// AtomicAdd performs an atomic read-modify-write on local memory:
// Arr[Index] += Val. It models OpenCL's atomic_add on __local int/float
// counters (used by Histogram); atomics force scalar execution in the
// vectorization models.
type AtomicAdd struct {
	Arr   string
	Index Expr
	Val   Expr
}

// For is a counted loop:
//
//	for Var = Start; Var < End; Var += Step { Body }
//
// Var is an integer loop variable visible inside Body.
type For struct {
	Var   string
	Start Expr
	End   Expr
	Step  Expr
	Body  []Stmt
}

// If executes Then when Cond != 0, otherwise Else (which may be nil).
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// Barrier synchronizes all workitems of a workgroup
// (barrier(CLK_LOCAL_MEM_FENCE) in OpenCL C). Valid only under uniform
// control flow; the validator rejects barriers inside divergent branches.
type Barrier struct{}

func (Assign) stmtNode()     {}
func (Store) stmtNode()      {}
func (LocalStore) stmtNode() {}
func (AtomicAdd) stmtNode()  {}
func (For) stmtNode()        {}
func (If) stmtNode()         {}
func (Barrier) stmtNode()    {}

// Set returns an assignment statement.
func Set(dst string, val Expr) Stmt { return Assign{Dst: dst, Val: val} }

// StoreF returns a global float store statement.
func StoreF(buf string, index, val Expr) Stmt { return Store{Buf: buf, Index: index, Val: val} }

// LStoreF returns a local float store statement.
func LStoreF(arr string, index, val Expr) Stmt { return LocalStore{Arr: arr, Index: index, Val: val} }

// Loop returns a counted loop statement with step 1.
func Loop(v string, start, end Expr, body ...Stmt) Stmt {
	return For{Var: v, Start: start, End: end, Step: I(1), Body: body}
}

// When returns an if-without-else statement.
func When(cond Expr, body ...Stmt) Stmt { return If{Cond: cond, Then: body} }
