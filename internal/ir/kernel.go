package ir

import (
	"fmt"
	"sort"
)

// ParamKind distinguishes buffer parameters from scalar parameters.
type ParamKind uint8

// Parameter kinds.
const (
	BufferParam ParamKind = iota // global memory object (cl_mem)
	ScalarParam                  // value argument set with clSetKernelArg
)

// Param declares a kernel parameter.
type Param struct {
	Name string
	Kind ParamKind
	Elem Type // element type (buffer) or value type (scalar)
}

// Buf declares a buffer parameter of float elements.
func Buf(name string) Param { return Param{Name: name, Kind: BufferParam, Elem: F32} }

// BufI declares a buffer parameter of integer elements.
func BufI(name string) Param { return Param{Name: name, Kind: BufferParam, Elem: I32} }

// Scalar declares a float scalar parameter.
func Scalar(name string) Param { return Param{Name: name, Kind: ScalarParam, Elem: F32} }

// ScalarI declares an integer scalar parameter.
func ScalarI(name string) Param { return Param{Name: name, Kind: ScalarParam, Elem: I32} }

// LocalArray declares a workgroup-local (__local) array. Size is evaluated
// at launch time with the workgroup geometry known, so tiles sized by
// get_local_size work naturally.
type LocalArray struct {
	Name string
	Elem Type
	Size Expr
}

// Kernel is a complete device function: the unit compiled, launched over an
// NDRange, analyzed and priced by the device models.
type Kernel struct {
	Name    string
	WorkDim int // 1, 2 or 3
	Params  []Param
	Locals  []LocalArray
	Body    []Stmt
}

// Param returns the named parameter, or false if absent.
func (k *Kernel) Param(name string) (Param, bool) {
	for _, p := range k.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Local returns the named local array declaration, or false if absent.
func (k *Kernel) Local(name string) (LocalArray, bool) {
	for _, l := range k.Locals {
		if l.Name == name {
			return l, true
		}
	}
	return LocalArray{}, false
}

// BufferNames returns the kernel's buffer parameter names in declaration
// order.
func (k *Kernel) BufferNames() []string {
	var names []string
	for _, p := range k.Params {
		if p.Kind == BufferParam {
			names = append(names, p.Name)
		}
	}
	return names
}

// NDRange is a launch geometry: a 1–3 dimensional global range partitioned
// into workgroups, exactly as passed to clEnqueueNDRangeKernel.
type NDRange struct {
	Global [3]int // global work size per dimension; unused dims are 1
	Local  [3]int // workgroup size per dimension; all zero means "NULL"
}

// Range1D returns a 1-dimensional NDRange. local 0 means the implementation
// picks the workgroup size (the NULL argument in the paper).
func Range1D(global, local int) NDRange {
	if local == 0 {
		return NDRange{Global: [3]int{global, 1, 1}}
	}
	return NDRange{Global: [3]int{global, 1, 1}, Local: [3]int{local, 1, 1}}
}

// Range2D returns a 2-dimensional NDRange. A zero lx means NULL local size.
func Range2D(gx, gy, lx, ly int) NDRange {
	if lx == 0 {
		return NDRange{Global: [3]int{gx, gy, 1}}
	}
	return NDRange{Global: [3]int{gx, gy, 1}, Local: [3]int{lx, ly, 1}}
}

// Range3D returns a 3-dimensional NDRange. A zero lx means NULL local size.
func Range3D(gx, gy, gz, lx, ly, lz int) NDRange {
	if lx == 0 {
		return NDRange{Global: [3]int{gx, gy, gz}}
	}
	return NDRange{Global: [3]int{gx, gy, gz}, Local: [3]int{lx, ly, lz}}
}

// Dims returns the number of dimensions with a global size greater than one,
// at minimum 1.
func (r NDRange) Dims() int {
	d := 1
	for i := 1; i < 3; i++ {
		if r.Global[i] > 1 {
			d = i + 1
		}
	}
	return d
}

// GlobalItems returns the total number of workitems.
func (r NDRange) GlobalItems() int {
	n := 1
	for _, g := range r.Global {
		if g > 1 {
			n *= g
		}
	}
	return n
}

// LocalNull reports whether the workgroup size was left to the
// implementation (local_work_size == NULL).
func (r NDRange) LocalNull() bool {
	return r.Local[0] == 0 && r.Local[1] == 0 && r.Local[2] == 0
}

// GroupItems returns the number of workitems per workgroup. It panics if the
// local size is NULL; resolve it with WithLocal first.
func (r NDRange) GroupItems() int {
	if r.LocalNull() {
		panic("ir: GroupItems on NDRange with NULL local size")
	}
	n := 1
	for i := 0; i < 3; i++ {
		if r.Local[i] > 0 {
			n *= r.Local[i]
		}
	}
	return n
}

// NumGroups returns the total number of workgroups. It panics if the local
// size is NULL.
func (r NDRange) NumGroups() int {
	if r.LocalNull() {
		panic("ir: NumGroups on NDRange with NULL local size")
	}
	n := 1
	for i := 0; i < 3; i++ {
		g, l := r.Global[i], r.Local[i]
		if g == 0 {
			g = 1
		}
		if l == 0 {
			l = 1
		}
		n *= (g + l - 1) / l
	}
	return n
}

// WithLocal returns a copy of r with the local size set per dimension.
// Zero entries default to 1 except dimension 0 which defaults to local0.
func (r NDRange) WithLocal(local [3]int) NDRange {
	r.Local = local
	return r
}

// Validate checks that the geometry is well formed and that the local size
// divides the global size, matching the OpenCL 1.x requirement.
func (r NDRange) Validate() error {
	for i := 0; i < 3; i++ {
		if r.Global[i] < 0 || r.Local[i] < 0 {
			return fmt.Errorf("ir: negative size in NDRange dim %d", i)
		}
	}
	if r.Global[0] < 1 {
		return fmt.Errorf("ir: empty NDRange")
	}
	if r.LocalNull() {
		return nil
	}
	for i := 0; i < 3; i++ {
		g, l := r.Global[i], r.Local[i]
		if g == 0 {
			g = 1
		}
		if l == 0 {
			l = 1
		}
		if g%l != 0 {
			return fmt.Errorf("ir: local size %d does not divide global size %d in dim %d", l, g, i)
		}
	}
	return nil
}

// String formats the range like "1024x1024/16x16".
func (r NDRange) String() string {
	d := r.Dims()
	s := ""
	for i := 0; i < d; i++ {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(r.Global[i])
	}
	if r.LocalNull() {
		return s + "/NULL"
	}
	s += "/"
	for i := 0; i < d; i++ {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(r.Local[i])
	}
	return s
}

// Args carries the launch-time argument values for a kernel: buffer bindings
// and scalar values.
type Args struct {
	Buffers map[string]*Buffer
	Scalars map[string]float64
}

// NewArgs returns an empty argument set.
func NewArgs() *Args {
	return &Args{Buffers: map[string]*Buffer{}, Scalars: map[string]float64{}}
}

// Bind attaches a buffer to the named buffer parameter and returns the
// receiver for chaining.
func (a *Args) Bind(name string, b *Buffer) *Args {
	a.Buffers[name] = b
	return a
}

// SetScalar sets the named scalar parameter and returns the receiver.
func (a *Args) SetScalar(name string, v float64) *Args {
	a.Scalars[name] = v
	return a
}

// Clone returns a shallow copy (buffers shared, scalar map copied).
func (a *Args) Clone() *Args {
	c := NewArgs()
	for k, v := range a.Buffers {
		c.Buffers[k] = v
	}
	for k, v := range a.Scalars {
		c.Scalars[k] = v
	}
	return c
}

// ScalarNames returns the bound scalar names, sorted for deterministic
// iteration.
func (a *Args) ScalarNames() []string {
	names := make([]string, 0, len(a.Scalars))
	for k := range a.Scalars {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
