package ir_test

import (
	"reflect"
	"testing"

	"clperf/internal/ir"
	"clperf/internal/kernels"
)

// Property: feature extraction is deterministic — two extractions of the
// same launch are bitwise equal, both through the memo cache and when
// the kernel is re-parsed into a fresh pointer (digest reuse keeps the
// key stable, and a cold extraction must reproduce the cached value).
func TestFeaturesDeterministic(t *testing.T) {
	for _, app := range kernels.Registry() {
		nd := app.DefaultConfig()
		args := app.Make(nd)

		f1, err := ir.ExtractFeatures(app.Kernel, args, nd)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		f2, err := ir.ExtractFeatures(app.Kernel, args, nd)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if !reflect.DeepEqual(f1, f2) {
			t.Errorf("%s: repeated extraction differs:\n%+v\n%+v", app.Name, f1, f2)
		}
		if !reflect.DeepEqual(f1.Vector(), f2.Vector()) {
			t.Errorf("%s: vectors differ between extractions", app.Name)
		}

		// A fresh App carries a structurally identical kernel behind a new
		// pointer: the digest-keyed memo must treat it as the same kernel,
		// and its features must be bitwise equal.
		fresh := findApp(t, app.Name)
		if ir.Digest(fresh.Kernel) != ir.Digest(app.Kernel) {
			t.Fatalf("%s: fresh registry kernel digests differently", app.Name)
		}
		f3, err := ir.ExtractFeatures(fresh.Kernel, fresh.Make(nd), nd)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if !reflect.DeepEqual(f1, f3) {
			t.Errorf("%s: extraction differs across kernel instances:\n%+v\n%+v",
				app.Name, f1, f3)
		}
	}
}

func findApp(t *testing.T, name string) *kernels.App {
	t.Helper()
	for _, app := range kernels.Registry() {
		if app.Name == name {
			return app
		}
	}
	t.Fatalf("app %s not in registry", name)
	return nil
}

// The memo returns the identical *Features for repeated extractions of
// one launch — candidate loops in the tuner pay profiling once.
func TestFeaturesMemoized(t *testing.T) {
	app := kernels.MatrixMul()
	nd := app.DefaultConfig()
	args := app.Make(nd)
	f1, err := ir.ExtractFeatures(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ir.ExtractFeatures(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("repeated extraction did not return the memoized *Features")
	}
	// A different geometry is a different key.
	nd2 := nd.WithLocal([3]int{1, 1, 1})
	f3, err := ir.ExtractFeatures(app.Kernel, args, nd2)
	if err != nil {
		t.Fatal(err)
	}
	if f1 == f3 {
		t.Error("distinct geometries shared one memo entry")
	}
}

// Spot-check the extracted structure on kernels whose shape is known by
// construction: Square is a pure streaming kernel, Histogram carries
// atomics (unvectorizable), BlackScholes leans on libm, Reduction uses
// local memory and barriers.
func TestFeaturesStructure(t *testing.T) {
	get := func(app *kernels.App) *ir.Features {
		t.Helper()
		nd := app.DefaultConfig()
		f, err := ir.ExtractFeatures(app.Kernel, app.Make(nd), nd)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		return f
	}

	sq := get(kernels.Square())
	if !sq.Vectorizable {
		t.Error("Square should vectorize")
	}
	if sq.UnitSites == 0 || sq.GatherSites != 0 {
		t.Errorf("Square wants unit-stride streaming, got unit=%v gather=%v",
			sq.UnitSites, sq.GatherSites)
	}
	if sq.Barriers != 0 {
		t.Errorf("Square has no barriers, got %v", sq.Barriers)
	}

	hist := get(kernels.Histogram())
	if hist.Vectorizable {
		t.Error("Histogram performs atomics and must not vectorize")
	}
	if hist.Ops[ir.OpAtomic] == 0 {
		t.Error("Histogram atomic count is zero")
	}

	bs := get(kernels.BlackScholes())
	if bs.Ops[ir.OpLibm] == 0 {
		t.Error("BlackScholes libm count is zero")
	}
	if bs.Vectorizable {
		t.Error("BlackScholes calls scalar libm and must not vectorize")
	}

	red := get(kernels.Reduction())
	if red.Barriers == 0 {
		t.Error("Reduction barrier count is zero")
	}
	if red.LocalBytes == 0 {
		t.Error("Reduction local footprint is zero")
	}

	mm := get(kernels.MatrixMul())
	if mm.LoopTrips == 0 {
		t.Error("MatrixMul loop trips is zero")
	}
	if mm.ArithmeticIntensity() <= 0 {
		t.Error("MatrixMul arithmetic intensity not positive")
	}
}

// The flattened vector must carry every field: changing any feature
// changes the vector (guards against a field being forgotten when the
// model contract evolves).
func TestFeaturesVectorCoversFields(t *testing.T) {
	f := &ir.Features{}
	base := f.Vector()
	want := int(ir.NumOpClasses) + 14
	if len(base) != want {
		t.Fatalf("vector length %d, want %d", len(base), want)
	}
	g := &ir.Features{
		SerialDepth: 1, LoopTrips: 2, TripApprox: true, Branches: 3,
		Barriers: 4, UnitSites: 5, UniformSites: 6, StridedSites: 7,
		GatherSites: 8, Loads: 9, Stores: 10, TrafficPerItem: 11,
		LocalBytes: 12, Vectorizable: true,
	}
	for i := ir.OpClass(0); i < ir.NumOpClasses; i++ {
		g.Ops[i] = float64(i) + 1
	}
	v := g.Vector()
	for i := range v {
		if v[i] == base[i] && v[i] == 0 {
			t.Errorf("vector position %d unchanged by a fully-populated Features", i)
		}
	}
}
