package ir

import (
	"math"
	"testing"
)

// testLat is a simple latency table for analysis tests.
func testLat() LatencyTable {
	var lat LatencyTable
	lat[OpFAdd] = 3
	lat[OpFMul] = 5
	lat[OpFDiv] = 20
	lat[OpFMA] = 5
	lat[OpSpecial] = 20
	lat[OpInt] = 1
	lat[OpCmp] = 1
	lat[OpSelect] = 2
	lat[OpLoad] = 4
	lat[OpLocalLoad] = 4
	lat[OpLocalStore] = 1
	lat[OpAtomic] = 20
	return lat
}

// ilpKernel builds a loop of trips iterations with `chains` independent
// multiply recurrences — the paper's Figure 6 microbenchmark.
func ilpKernel(chains, trips int) *Kernel {
	body := []Stmt{}
	for c := 0; c < chains; c++ {
		name := "acc" + string(rune('a'+c))
		body = append(body, Set(name, Mul(V(name), V("b"))))
	}
	stmts := []Stmt{Set("b", LoadF("in", Gid(0)))}
	for c := 0; c < chains; c++ {
		name := "acc" + string(rune('a'+c))
		stmts = append(stmts, Set(name, F(1)))
	}
	stmts = append(stmts, For{Var: "j", Start: I(0), End: I(int64(trips)), Step: I(1), Body: body})
	sum := Expr(V("acca"))
	for c := 1; c < chains; c++ {
		sum = Add(sum, V("acc"+string(rune('a'+c))))
	}
	stmts = append(stmts, StoreF("out", Gid(0), sum))
	return &Kernel{
		Name:    "ilp",
		WorkDim: 1,
		Params:  []Param{Buf("in"), Buf("out")},
		Body:    stmts,
	}
}

func TestProfileILPChains(t *testing.T) {
	lat := testLat()
	nd := Range1D(1024, 64)
	args := NewArgs()

	const trips = 100
	var prev float64
	for chains := 1; chains <= 4; chains++ {
		p, err := ProfileKernel(ilpKernel(chains, trips), args, nd, lat, MaxBranch)
		if err != nil {
			t.Fatalf("ProfileKernel(chains=%d): %v", chains, err)
		}
		// The carried chain is one FMUL (5 cycles) regardless of the number
		// of parallel chains, so SerialCycles stays ~constant...
		if chains == 1 {
			prev = p.SerialCycles
		} else if math.Abs(p.SerialCycles-prev) > 0.15*prev {
			t.Fatalf("chains=%d: SerialCycles %v deviates from %v", chains, p.SerialCycles, prev)
		}
		// ...while the FMUL count grows linearly, so ILP grows linearly.
		wantMuls := float64(chains * trips)
		if p.Counts[OpFMul] != wantMuls {
			t.Fatalf("chains=%d: fmul count %v, want %v", chains, p.Counts[OpFMul], wantMuls)
		}
		minSerial := float64(trips) * lat[OpFMul]
		if p.SerialCycles < minSerial {
			t.Fatalf("chains=%d: SerialCycles %v < carried chain %v", chains, p.SerialCycles, minSerial)
		}
	}

	p1, _ := ProfileKernel(ilpKernel(1, trips), args, nd, lat, MaxBranch)
	p4, _ := ProfileKernel(ilpKernel(4, trips), args, nd, lat, MaxBranch)
	if r := p4.ILP(lat) / p1.ILP(lat); r < 2.5 {
		t.Fatalf("ILP(4 chains)/ILP(1 chain) = %v, want >= 2.5", r)
	}
}

func TestProfileCountsSquare(t *testing.T) {
	p, err := ProfileKernel(squareKernel(), NewArgs(), Range1D(1024, 64), testLat(), MaxBranch)
	if err != nil {
		t.Fatal(err)
	}
	if p.Counts[OpFMul] != 1 || p.Counts[OpLoad] != 1 || p.Counts[OpStore] != 1 {
		t.Fatalf("unexpected counts: %+v", p.Counts)
	}
	if p.Counts.Flops() != 1 {
		t.Fatalf("Flops = %v, want 1", p.Counts.Flops())
	}
	// load(4) + fmul(5)
	if p.SerialCycles != 9 {
		t.Fatalf("SerialCycles = %v, want 9", p.SerialCycles)
	}
}

func TestProfileLoopTripCounts(t *testing.T) {
	k := &Kernel{
		Name:    "trip",
		WorkDim: 1,
		Params:  []Param{Buf("out"), ScalarI("n")},
		Body: []Stmt{
			Set("acc", F(0)),
			Loop("j", I(0), Pi("n"),
				Set("acc", Add(V("acc"), F(1))),
			),
			StoreF("out", Gid(0), V("acc")),
		},
	}
	args := NewArgs().SetScalar("n", 37)
	p, err := ProfileKernel(k, args, Range1D(64, 8), testLat(), MaxBranch)
	if err != nil {
		t.Fatal(err)
	}
	if p.Counts[OpFAdd] != 37 {
		t.Fatalf("fadd count %v, want 37", p.Counts[OpFAdd])
	}
	if p.TripApprox {
		t.Fatal("trip count should be exact with the scalar bound")
	}
	// Loop-carried accumulator: serial grows with trips.
	if p.SerialCycles < 37*3 {
		t.Fatalf("SerialCycles = %v, want >= %v", p.SerialCycles, 37*3)
	}
}

func TestProfileBranchModes(t *testing.T) {
	k := &Kernel{
		Name:    "branchy",
		WorkDim: 1,
		Params:  []Param{Buf("out")},
		Body: []Stmt{
			If{
				Cond: Bin{Op: LtI, X: Modi(Gid(0), I(2)), Y: I(1)},
				Then: []Stmt{Set("v", Mul(Mul(F(2), F(3)), F(4)))},
				Else: []Stmt{Set("v", Mul(F(2), F(3)))},
			},
			StoreF("out", Gid(0), V("v")),
		},
	}
	pm, err := ProfileKernel(k, NewArgs(), Range1D(64, 8), testLat(), MaxBranch)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := ProfileKernel(k, NewArgs(), Range1D(64, 8), testLat(), SumBranch)
	if err != nil {
		t.Fatal(err)
	}
	// MaxBranch: one arm (elementwise max -> 1 fmul + 1 fadd here since the
	// arms use different classes). SumBranch: both arms.
	if got := pm.Counts[OpFMul] + pm.Counts[OpFAdd]; got != 2 {
		t.Fatalf("MaxBranch arm count %v, want 2", got)
	}
	if ps.Counts.Total() <= pm.Counts.Total() {
		t.Fatalf("SumBranch total %v should exceed MaxBranch total %v",
			ps.Counts.Total(), pm.Counts.Total())
	}
}

func TestAccessStrides(t *testing.T) {
	k := &Kernel{
		Name:    "strides",
		WorkDim: 1,
		Params:  []Param{Buf("a"), Buf("b"), Buf("c"), Buf("idx"), Buf("out")},
		Body: []Stmt{
			Set("x", LoadF("a", Gid(0))),                           // unit
			Set("y", LoadF("b", Muli(Gid(0), I(4)))),               // stride 4
			Set("z", LoadF("c", I(7))),                             // uniform
			Set("w", LoadF("out", ToInt{X: LoadF("idx", Gid(0))})), // gather
			StoreF("out", Gid(0), Add(Add(V("x"), V("y")), Add(V("z"), V("w")))),
		},
	}
	p, err := ProfileKernel(k, NewArgs(), Range1D(1024, 64), testLat(), MaxBranch)
	if err != nil {
		t.Fatal(err)
	}
	byBuf := map[string]Stride{}
	for _, a := range p.Accesses {
		if !a.Write {
			byBuf[a.Buf] = a.Stride
		}
	}
	if !byBuf["a"].Unit() {
		t.Fatalf("a: want unit stride, got %+v", byBuf["a"])
	}
	if s := byBuf["b"]; !s.Known || s.Elems != 4 {
		t.Fatalf("b: want stride 4, got %+v", s)
	}
	if !byBuf["c"].Uniform() {
		t.Fatalf("c: want uniform, got %+v", byBuf["c"])
	}
	if byBuf["out"].Known {
		t.Fatalf("out (gathered): want unknown stride, got %+v", byBuf["out"])
	}
}

func TestVectorizeOpenCLModel(t *testing.T) {
	rep, err := VectorizeOpenCL(squareKernel(), NewArgs(), Range1D(1024, 64))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Vectorized {
		t.Fatalf("square should vectorize: %s", rep.ScalarReason)
	}
	if rep.PackedFrac != 1 {
		t.Fatalf("PackedFrac = %v, want 1", rep.PackedFrac)
	}

	// A kernel with an intra-workitem dependent chain still vectorizes in
	// the OpenCL model (the Figure 11 point).
	rep2, err := VectorizeOpenCL(ilpKernel(1, 6), NewArgs(), Range1D(1024, 64))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Vectorized {
		t.Fatalf("dependent-chain kernel should still vectorize across workitems: %s", rep2.ScalarReason)
	}

	// Atomics force scalar execution.
	hist := &Kernel{
		Name:    "h",
		WorkDim: 1,
		Params:  []Param{BufI("in")},
		Locals:  []LocalArray{{Name: "bins", Elem: I32, Size: I(4)}},
		Body: []Stmt{
			AtomicAdd{Arr: "bins", Index: Modi(LoadI("in", Gid(0)), I(4)), Val: I(1)},
		},
	}
	rep3, err := VectorizeOpenCL(hist, NewArgs(), Range1D(1024, 64))
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Vectorized {
		t.Fatal("atomic kernel must not vectorize")
	}
}

func TestVectorizeLoopModel(t *testing.T) {
	env := NewStaticEnv(Range1D(1024, 64), nil)

	// Simple elementwise loop: vectorizable.
	simple := []Stmt{
		Set("x", LoadF("a", Vi("i"))),
		StoreF("b", Vi("i"), Mul(V("x"), V("x"))),
	}
	if rep := VectorizeLoop(simple, "i", env, nil); !rep.Vectorized {
		t.Fatalf("simple loop should vectorize, got: %s", rep.Reason)
	}

	// Figure 11: read-modify-write chain through memory within an iteration
	// defeats the loop vectorizer.
	fig11 := []Stmt{
		StoreF("a", Vi("i"), Mul(LoadF("a", Vi("i")), LoadF("b", Vi("i")))),
		StoreF("a", Vi("i"), Mul(LoadF("a", Vi("i")), LoadF("b", Vi("i")))),
	}
	rep := VectorizeLoop(fig11, "i", env, nil)
	if rep.Vectorized {
		t.Fatal("figure-11 loop must not vectorize in the OpenMP model")
	}

	// Non-unit stride defeats it too.
	strided := []Stmt{
		StoreF("b", Vi("i"), LoadF("a", Muli(Vi("i"), I(2)))),
	}
	if rep := VectorizeLoop(strided, "i", env, nil); rep.Vectorized {
		t.Fatal("strided loop must not vectorize")
	}

	// Control flow defeats it.
	branchy := []Stmt{
		When(Bin{Op: LtI, X: Vi("i"), Y: I(10)},
			StoreF("b", Vi("i"), F(1))),
	}
	if rep := VectorizeLoop(branchy, "i", env, nil); rep.Vectorized {
		t.Fatal("loop with control flow must not vectorize")
	}

	// Scalar recurrence defeats it.
	recur := []Stmt{
		Set("acc", Add(V("acc"), LoadF("a", Vi("i")))),
		StoreF("b", Vi("i"), V("acc")),
	}
	if rep := VectorizeLoop(recur, "i", env, nil); rep.Vectorized {
		t.Fatal("loop with scalar recurrence must not vectorize")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		k    *Kernel
	}{
		{"undefined var", &Kernel{Name: "t", WorkDim: 1, Params: []Param{Buf("o")},
			Body: []Stmt{StoreF("o", Gid(0), V("nope"))}}},
		{"unknown buffer", &Kernel{Name: "t", WorkDim: 1, Params: []Param{Buf("o")},
			Body: []Stmt{StoreF("bad", Gid(0), F(1))}}},
		{"divergent barrier", &Kernel{Name: "t", WorkDim: 1, Params: []Param{Buf("o")},
			Body: []Stmt{When(Bin{Op: LtI, X: Gid(0), Y: I(4)}, Barrier{})}}},
		{"dup param", &Kernel{Name: "t", WorkDim: 1, Params: []Param{Buf("o"), Buf("o")},
			Body: []Stmt{}}},
		{"bad workdim", &Kernel{Name: "t", WorkDim: 0, Params: []Param{Buf("o")},
			Body: []Stmt{}}},
	}
	for _, c := range cases {
		if err := Validate(c.k); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
	if err := Validate(squareKernel()); err != nil {
		t.Errorf("square should validate: %v", err)
	}
}

func TestFormatKernel(t *testing.T) {
	s := Format(squareKernel())
	for _, want := range []string{"__kernel void square", "get_global_id(0)", "out[", "__global float *in"} {
		if !hasSub(s, want) {
			t.Errorf("Format output missing %q:\n%s", want, s)
		}
	}
}

func hasSub(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		})())
}
