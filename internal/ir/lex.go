package ir

import (
	"fmt"
	"strings"
	"unicode"
)

// The lexer for the OpenCL C subset accepted by Parse (parse.go).

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single- or multi-character operator/punctuation
)

type token struct {
	kind tokKind
	text string
	// line/col locate the token for error messages (1-based).
	line, col int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of source"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes kernel source.
type lexer struct {
	src       string
	pos       int
	line, col int
	toks      []token
}

// multi-character operators, longest first.
var multiPunct = []string{
	"<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "++", "--",
}

// lex tokenizes the whole source, stripping // and /* */ comments and
// preprocessor-style lines.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.advance(1)
		case c == ' ' || c == '\t' || c == '\r':
			l.advance(1)
		case c == '#':
			// Skip preprocessor lines (e.g. #pragma).
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.peek(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.peek(1) == '*':
			l.advance(2)
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.peek(1) == '/') {
				l.advance(1)
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("ir: line %d: unterminated block comment", l.line)
			}
			l.advance(2)
		case isIdentStart(rune(c)):
			l.lexIdent()
		case unicode.IsDigit(rune(c)) || (c == '.' && unicode.IsDigit(rune(l.peek(1)))):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		default:
			l.lexPunct()
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line, col: l.col})
	return l.toks, nil
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) emit(kind tokKind, text string, line, col int) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: line, col: col})
}

func isIdentStart(c rune) bool {
	return c == '_' || unicode.IsLetter(c)
}

func isIdentPart(c rune) bool {
	return c == '_' || unicode.IsLetter(c) || unicode.IsDigit(c)
}

func (l *lexer) lexIdent() {
	line, col := l.line, l.col
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.advance(1)
	}
	l.emit(tokIdent, l.src[start:l.pos], line, col)
}

func (l *lexer) lexNumber() error {
	line, col := l.line, l.col
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsDigit(rune(c)):
			l.advance(1)
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.advance(1)
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.advance(1)
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.advance(1)
			}
		case c == 'f' || c == 'F':
			// float suffix terminates the literal
			l.advance(1)
			l.emit(tokNumber, l.src[start:l.pos], line, col)
			return nil
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, "e") || strings.HasSuffix(text, "E") {
		return fmt.Errorf("ir: line %d: malformed number %q", line, text)
	}
	l.emit(tokNumber, text, line, col)
	return nil
}

func (l *lexer) lexPunct() {
	line, col := l.line, l.col
	rest := l.src[l.pos:]
	for _, op := range multiPunct {
		if strings.HasPrefix(rest, op) {
			l.advance(len(op))
			l.emit(tokPunct, op, line, col)
			return
		}
	}
	l.emit(tokPunct, string(l.src[l.pos]), line, col)
	l.advance(1)
}
