package ir

import (
	"fmt"
	"strings"
)

// Parse compiles kernel source written in the OpenCL C subset below into IR
// kernels (one per __kernel function), so programs can be built from source
// strings exactly as with clCreateProgramWithSource:
//
//	__kernel void square(__global float *in, __global float *out) {
//	    int i = get_global_id(0);
//	    float x = in[i];
//	    out[i] = x * x;
//	}
//
// Supported: float/int scalars and __global float*/int* buffers; __local
// arrays; for loops (induction variable, `<` condition, ++/+= step); if/else;
// barrier(...); atomic_add(&local[idx], v); the workitem identity functions;
// the math builtins sqrt/rsqrt/exp/log/sin/cos/fabs/floor/fma/fmin/fmax;
// (float)/(int) casts; the usual C operator set with precedence, where &&,
// ||, ! operate on 0/1 comparison results.
//
// Not supported (rejected with an error): early return, pointers beyond
// buffer indexing, while/do loops, vector types, and user-defined functions
// — the same shape restrictions the structured IR imposes.
func Parse(src string) ([]*Kernel, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var kernels []*Kernel
	for !p.at(tokEOF) {
		k, err := p.kernel()
		if err != nil {
			return nil, err
		}
		kernels = append(kernels, k)
	}
	if len(kernels) == 0 {
		return nil, fmt.Errorf("ir: no __kernel functions in source")
	}
	for _, k := range kernels {
		if err := Validate(k); err != nil {
			return nil, err
		}
	}
	return kernels, nil
}

// ParseKernel parses source and returns the kernel with the given name (or
// the only kernel when name is empty).
func ParseKernel(src, name string) (*Kernel, error) {
	ks, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if name == "" {
		if len(ks) != 1 {
			return nil, fmt.Errorf("ir: source has %d kernels; name one", len(ks))
		}
		return ks[0], nil
	}
	for _, k := range ks {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("ir: no kernel %q in source", name)
}

type parser struct {
	toks []token
	pos  int

	// per-kernel symbol tables
	bufs    map[string]Type
	scalars map[string]Type
	locals  map[string]Type
	vars    map[string]Type
}

func (p *parser) cur() token        { return p.toks[p.pos] }
func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) atIdent(s string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == s
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("ir: line %d: %s (at %s)", t.line, fmt.Sprintf(format, args...), t)
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q", s)
	}
	p.next()
	return nil
}

func (p *parser) expectIdent(s string) error {
	if !p.atIdent(s) {
		return p.errf("expected %q", s)
	}
	p.next()
	return nil
}

func parseType(s string) (Type, bool) {
	switch s {
	case "float":
		return F32, true
	case "int", "uint", "size_t":
		return I32, true
	}
	return 0, false
}

// kernel parses one __kernel function.
func (p *parser) kernel() (*Kernel, error) {
	if p.atIdent("__kernel") || p.atIdent("kernel") {
		p.next()
	} else {
		return nil, p.errf("expected __kernel")
	}
	if err := p.expectIdent("void"); err != nil {
		return nil, err
	}
	if !p.at(tokIdent) {
		return nil, p.errf("expected kernel name")
	}
	name := p.next().text

	p.bufs = map[string]Type{}
	p.scalars = map[string]Type{}
	p.locals = map[string]Type{}
	p.vars = map[string]Type{}

	k := &Kernel{Name: name, WorkDim: 1}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.atPunct(")") {
		param, err := p.param()
		if err != nil {
			return nil, err
		}
		k.Params = append(k.Params, param)
		if p.atPunct(",") {
			p.next()
		}
	}
	p.next() // ')'

	body, localDecls, maxDim, err := p.block(k)
	if err != nil {
		return nil, err
	}
	k.Locals = localDecls
	k.Body = body
	if maxDim >= k.WorkDim {
		k.WorkDim = maxDim + 1
	}
	return k, nil
}

func (p *parser) param() (Param, error) {
	global := false
	for p.atIdent("__global") || p.atIdent("global") || p.atIdent("const") ||
		p.atIdent("__restrict") || p.atIdent("restrict") {
		if strings.Contains(p.cur().text, "global") {
			global = true
		}
		p.next()
	}
	if !p.at(tokIdent) {
		return Param{}, p.errf("expected parameter type")
	}
	ty, ok := parseType(p.next().text)
	if !ok {
		return Param{}, p.errf("unsupported parameter type")
	}
	if p.atPunct("*") {
		p.next()
		global = true
	}
	for p.atIdent("restrict") || p.atIdent("__restrict") || p.atIdent("const") {
		p.next()
	}
	if !p.at(tokIdent) {
		return Param{}, p.errf("expected parameter name")
	}
	name := p.next().text
	if global {
		p.bufs[name] = ty
		return Param{Name: name, Kind: BufferParam, Elem: ty}, nil
	}
	p.scalars[name] = ty
	return Param{Name: name, Kind: ScalarParam, Elem: ty}, nil
}

// block parses `{ stmt* }`, returning statements, any __local declarations
// found (hoisted to the kernel), and the highest workitem dimension used.
func (p *parser) block(k *Kernel) ([]Stmt, []LocalArray, int, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, nil, 0, err
	}
	var (
		stmts  []Stmt
		locals []LocalArray
		maxDim int
	)
	for !p.atPunct("}") {
		if p.at(tokEOF) {
			return nil, nil, 0, p.errf("unterminated block")
		}
		s, ls, dim, err := p.stmt(k)
		if err != nil {
			return nil, nil, 0, err
		}
		stmts = append(stmts, s...)
		locals = append(locals, ls...)
		if dim > maxDim {
			maxDim = dim
		}
	}
	p.next() // '}'
	return stmts, locals, maxDim, nil
}

// stmt parses one statement (possibly expanding to several IR statements).
func (p *parser) stmt(k *Kernel) ([]Stmt, []LocalArray, int, error) {
	switch {
	case p.atPunct("{"):
		return p.block(k)

	case p.atIdent("__local") || p.atIdent("local"):
		p.next()
		if !p.at(tokIdent) {
			return nil, nil, 0, p.errf("expected __local element type")
		}
		ty, ok := parseType(p.next().text)
		if !ok {
			return nil, nil, 0, p.errf("unsupported __local type")
		}
		if !p.at(tokIdent) {
			return nil, nil, 0, p.errf("expected __local array name")
		}
		name := p.next().text
		if err := p.expectPunct("["); err != nil {
			return nil, nil, 0, err
		}
		size, dim, err := p.expr()
		if err != nil {
			return nil, nil, 0, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, nil, 0, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, nil, 0, err
		}
		p.locals[name] = ty
		return nil, []LocalArray{{Name: name, Elem: ty, Size: size}}, dim, nil

	case p.atIdent("barrier"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, nil, 0, err
		}
		depth := 1
		for depth > 0 {
			if p.at(tokEOF) {
				return nil, nil, 0, p.errf("unterminated barrier(...)")
			}
			if p.atPunct("(") {
				depth++
			}
			if p.atPunct(")") {
				depth--
			}
			p.next()
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, nil, 0, err
		}
		return []Stmt{Barrier{}}, nil, 0, nil

	case p.atIdent("atomic_add") || p.atIdent("atom_add"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, nil, 0, err
		}
		if err := p.expectPunct("&"); err != nil {
			return nil, nil, 0, err
		}
		if !p.at(tokIdent) {
			return nil, nil, 0, p.errf("expected local array in atomic_add")
		}
		arr := p.next().text
		if _, ok := p.locals[arr]; !ok {
			return nil, nil, 0, p.errf("atomic_add target %q is not a __local array", arr)
		}
		if err := p.expectPunct("["); err != nil {
			return nil, nil, 0, err
		}
		idx, d1, err := p.expr()
		if err != nil {
			return nil, nil, 0, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, nil, 0, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, nil, 0, err
		}
		val, d2, err := p.expr()
		if err != nil {
			return nil, nil, 0, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, nil, 0, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, nil, 0, err
		}
		return []Stmt{AtomicAdd{Arr: arr, Index: idx, Val: val}}, nil, maxi2(d1, d2), nil

	case p.atIdent("for"):
		return p.forStmt(k)

	case p.atIdent("if"):
		return p.ifStmt(k)

	case p.atIdent("return"):
		return nil, nil, 0, p.errf("early return is not supported; guard the body with if instead")

	case p.atIdent("while") || p.atIdent("do"):
		return nil, nil, 0, p.errf("unexpected %s: only counted for loops are supported", p.cur().text)

	case p.at(tokIdent):
		return p.assignOrStore()
	}
	return nil, nil, 0, p.errf("unexpected statement")
}

// assignOrStore handles `type x = e;`, `x = e;`, `x op= e;`, `buf[i] = e;`
// and `buf[i] op= e;`.
func (p *parser) assignOrStore() ([]Stmt, []LocalArray, int, error) {
	var declared Type
	hasDecl := false
	if ty, ok := parseType(p.cur().text); ok {
		// Could be a typed declaration: `float x = ...`.
		if p.toks[p.pos+1].kind == tokIdent {
			p.next()
			declared, hasDecl = ty, true
		}
	}
	if !p.at(tokIdent) {
		return nil, nil, 0, p.errf("expected identifier")
	}
	name := p.next().text

	// Indexed: store to buffer or local array.
	if p.atPunct("[") {
		p.next()
		idx, d1, err := p.expr()
		if err != nil {
			return nil, nil, 0, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, nil, 0, err
		}
		read := func() (Expr, error) { return p.indexed(name, idx) }
		val, d2, err := p.assignRHS(read)
		if err != nil {
			return nil, nil, 0, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, nil, 0, err
		}
		dim := maxi2(d1, d2)
		if _, ok := p.bufs[name]; ok {
			return []Stmt{Store{Buf: name, Index: idx, Val: val}}, nil, dim, nil
		}
		if _, ok := p.locals[name]; ok {
			return []Stmt{LocalStore{Arr: name, Index: idx, Val: val}}, nil, dim, nil
		}
		return nil, nil, 0, p.errf("store to unknown array %q", name)
	}

	// Scalar assignment.
	read := func() (Expr, error) {
		ty, ok := p.vars[name]
		if !ok {
			return nil, p.errf("compound assignment to undeclared %q", name)
		}
		return VarRef{Name: name, Ty: ty}, nil
	}
	val, dim, err := p.assignRHS(read)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, nil, 0, err
	}
	ty := val.Type()
	if hasDecl {
		ty = declared
	} else if existing, ok := p.vars[name]; ok {
		ty = existing
	}
	val = coerce(val, ty)
	p.vars[name] = ty
	return []Stmt{Assign{Dst: name, Val: val}}, nil, dim, nil
}

// assignRHS parses `= e`, or `op= e` rewritten as current op e. read()
// supplies the current value for compound forms.
func (p *parser) assignRHS(read func() (Expr, error)) (Expr, int, error) {
	t := p.cur()
	if t.kind != tokPunct {
		return nil, 0, p.errf("expected assignment")
	}
	switch t.text {
	case "=":
		p.next()
		return p.expr()
	case "+=", "-=", "*=", "/=", "%=", "&=", "|=", "<<=", ">>=":
		p.next()
		cur, err := read()
		if err != nil {
			return nil, 0, err
		}
		rhs, dim, err := p.expr()
		if err != nil {
			return nil, 0, err
		}
		op := strings.TrimSuffix(t.text, "=")
		e, err := p.binary(op, cur, rhs)
		return e, dim, err
	case "++":
		p.next()
		cur, err := read()
		if err != nil {
			return nil, 0, err
		}
		e, err := p.binary("+", cur, I(1))
		return e, 0, err
	}
	return nil, 0, p.errf("expected assignment operator")
}

// indexed builds a load of name[idx] from the right symbol table.
func (p *parser) indexed(name string, idx Expr) (Expr, error) {
	if ty, ok := p.bufs[name]; ok {
		return Load{Buf: name, Index: idx, Elem: ty}, nil
	}
	if ty, ok := p.locals[name]; ok {
		return LocalLoad{Arr: name, Index: idx, Elem: ty}, nil
	}
	return nil, p.errf("unknown array %q", name)
}

func (p *parser) forStmt(k *Kernel) ([]Stmt, []LocalArray, int, error) {
	p.next() // for
	if err := p.expectPunct("("); err != nil {
		return nil, nil, 0, err
	}
	if ty, ok := parseType(p.cur().text); ok && ty == I32 {
		p.next()
	}
	if !p.at(tokIdent) {
		return nil, nil, 0, p.errf("expected loop variable")
	}
	v := p.next().text
	if err := p.expectPunct("="); err != nil {
		return nil, nil, 0, err
	}
	start, d1, err := p.expr()
	if err != nil {
		return nil, nil, 0, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, nil, 0, err
	}
	if err := p.expectIdent(v); err != nil {
		return nil, nil, 0, p.errf("loop condition must test the loop variable %q", v)
	}
	if err := p.expectPunct("<"); err != nil {
		return nil, nil, 0, p.errf("loop condition must be %s < bound", v)
	}
	end, d2, err := p.expr()
	if err != nil {
		return nil, nil, 0, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, nil, 0, err
	}
	if err := p.expectIdent(v); err != nil {
		return nil, nil, 0, p.errf("loop update must modify %q", v)
	}
	var step Expr
	switch {
	case p.atPunct("++"):
		p.next()
		step = I(1)
	case p.atPunct("+="):
		p.next()
		var d3 int
		step, d3, err = p.expr()
		if err != nil {
			return nil, nil, 0, err
		}
		if d3 > d2 {
			d2 = d3
		}
	default:
		return nil, nil, 0, p.errf("loop update must be %s++ or %s += step", v, v)
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, nil, 0, err
	}

	p.vars[v] = I32
	body, locals, d4, err := p.block(k)
	if err != nil {
		return nil, nil, 0, err
	}
	dim := maxi2(maxi2(d1, d2), d4)
	return []Stmt{For{Var: v, Start: start, End: end, Step: step, Body: body}},
		locals, dim, nil
}

func (p *parser) ifStmt(k *Kernel) ([]Stmt, []LocalArray, int, error) {
	p.next() // if
	if err := p.expectPunct("("); err != nil {
		return nil, nil, 0, err
	}
	cond, d1, err := p.expr()
	if err != nil {
		return nil, nil, 0, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, nil, 0, err
	}
	thenStmts, locals, d2, err := p.block(k)
	if err != nil {
		return nil, nil, 0, err
	}
	var elseStmts []Stmt
	dim := maxi2(d1, d2)
	if p.atIdent("else") {
		p.next()
		if p.atIdent("if") {
			es, ls, d3, err := p.ifStmt(k)
			if err != nil {
				return nil, nil, 0, err
			}
			elseStmts = es
			locals = append(locals, ls...)
			dim = maxi2(dim, d3)
		} else {
			es, ls, d3, err := p.block(k)
			if err != nil {
				return nil, nil, 0, err
			}
			elseStmts = es
			locals = append(locals, ls...)
			dim = maxi2(dim, d3)
		}
	}
	return []Stmt{If{Cond: cond, Then: thenStmts, Else: elseStmts}}, locals, dim, nil
}

func maxi2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
