package ir

// Differential testing of the lockstep (SIMT) interpreter: randomly
// generated barrier-free kernels are executed both by ExecRange and by a
// deliberately simple one-workitem-at-a-time reference interpreter; outputs
// must match bit-for-bit. This exercises the divergence masking, loop
// masking and scratch-pool reuse paths that hand-written tests rarely
// stress.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// refExec executes the kernel for a single workitem, the boring way.
type refExec struct {
	k    *Kernel
	args *Args
	nd   NDRange
	gid  [3]int
	vars map[string]float64
}

func (r *refExec) run() {
	r.vars = map[string]float64{}
	r.stmts(r.k.Body)
}

func (r *refExec) stmts(ss []Stmt) {
	for _, s := range ss {
		switch s := s.(type) {
		case Assign:
			v := r.eval(s.Val)
			if s.Val.Type() == F32 {
				v = float64(float32(v))
			} else {
				v = math.Trunc(v)
			}
			r.vars[s.Dst] = v
		case Store:
			buf := r.args.Buffers[s.Buf]
			buf.Set(int(r.eval(s.Index)), r.eval(s.Val))
		case If:
			if r.eval(s.Cond) != 0 {
				r.stmts(s.Then)
			} else {
				r.stmts(s.Else)
			}
		case For:
			v := math.Trunc(r.eval(s.Start))
			r.vars[s.Var] = v
			for r.vars[s.Var] < r.eval(s.End) {
				r.stmts(s.Body)
				r.vars[s.Var] = math.Trunc(r.vars[s.Var] + r.eval(s.Step))
			}
		default:
			panic("refExec: unsupported statement")
		}
	}
}

// eval mirrors the lockstep interpreter's semantics exactly by reusing
// evalBin for operators.
func (r *refExec) eval(e Expr) float64 {
	switch e := e.(type) {
	case ConstFloat:
		return e.V
	case ConstInt:
		return float64(e.V)
	case VarRef:
		return r.vars[e.Name]
	case ParamRef:
		return r.args.Scalars[e.Name]
	case ID:
		switch e.Fn {
		case GlobalID:
			return float64(r.gid[e.Dim])
		case GlobalSize:
			g := r.nd.Global[e.Dim]
			if g < 1 {
				g = 1
			}
			return float64(g)
		case LocalID:
			return float64(r.gid[e.Dim] % maxi2(r.nd.Local[e.Dim], 1))
		case GroupID:
			return float64(r.gid[e.Dim] / maxi2(r.nd.Local[e.Dim], 1))
		case LocalSize:
			return float64(maxi2(r.nd.Local[e.Dim], 1))
		case NumGroups:
			return float64(r.nd.GroupCounts()[e.Dim])
		}
	case Bin:
		out := [1]float64{}
		evalBin(e.Op, []float64{r.eval(e.X)}, []float64{r.eval(e.Y)}, out[:])
		return out[0]
	case Call:
		switch e.Fn {
		case FMA:
			return r.eval(e.Args[0])*r.eval(e.Args[1]) + r.eval(e.Args[2])
		case Sqrt:
			return math.Sqrt(r.eval(e.Args[0]))
		case Fabs:
			return math.Abs(r.eval(e.Args[0]))
		case Floor:
			return math.Floor(r.eval(e.Args[0]))
		}
		panic("refExec: unsupported builtin")
	case Load:
		buf := r.args.Buffers[e.Buf]
		idx := int(r.eval(e.Index))
		if idx < 0 || idx >= buf.Len() {
			return 0 // matches the interpreter's clamp-on-wild-lane policy
		}
		return buf.Get(idx)
	case Select:
		if r.eval(e.Cond) != 0 {
			return r.eval(e.Then)
		}
		return r.eval(e.Else)
	case ToFloat:
		return r.eval(e.X)
	case ToInt:
		return math.Trunc(r.eval(e.X))
	}
	panic("refExec: unsupported expression")
}

// kernelGen builds random barrier-free kernels.
type kernelGen struct {
	rng     *rand.Rand
	vars    []string
	inBufs  []string
	n       int // buffer length
	loopSeq int // unique loop-variable counter: reusing an enclosing
	// induction variable would build a semantically infinite loop
	// (the inner loop keeps resetting it below the outer bound)
}

func (g *kernelGen) intExpr(depth int) Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return I(int64(g.rng.Intn(7)))
		case 1:
			return Gid(0)
		default:
			return Modi(Gid(0), I(int64(2+g.rng.Intn(6))))
		}
	}
	x, y := g.intExpr(depth-1), g.intExpr(depth-1)
	switch g.rng.Intn(5) {
	case 0:
		return Addi(x, y)
	case 1:
		return Muli(x, Modi(y, I(4)))
	case 2:
		// Divisor may evaluate to zero: pins the engines to the defined
		// DivI zero-divisor result (0) rather than a crash.
		return Divi(x, Modi(y, I(3)))
	case 3:
		return Modi(x, Modi(Addi(y, I(1)), I(5)))
	default:
		return Modi(Addi(x, y), I(int64(3+g.rng.Intn(5))))
	}
}

// index yields an always-in-bounds, non-negative buffer index.
func (g *kernelGen) index() Expr {
	base := g.intExpr(2)
	// abs-free guarantee: operands are non-negative by construction, and a
	// final mod bounds the value.
	return Modi(Bin{Op: AndI, X: base, Y: I(0x7FFFFFFF)}, I(int64(g.n)))
}

func (g *kernelGen) floatExpr(depth int) Expr {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(8) {
		case 0:
			return F(float64(g.rng.Intn(64))/8 - 4)
		case 1:
			if len(g.vars) > 0 {
				return V(g.vars[g.rng.Intn(len(g.vars))])
			}
			return F(1.5)
		case 2:
			return LoadF(g.inBufs[g.rng.Intn(len(g.inBufs))], g.index())
		case 3:
			// Non-finite literals flow through inactive lanes, masked
			// selects and Min/compare chains; both engines must agree
			// bit-for-bit on where they propagate.
			return F(math.NaN())
		case 4:
			return F(math.Inf(1 - 2*g.rng.Intn(2)))
		default:
			return ToFloat{X: g.intExpr(1)}
		}
	}
	x, y := g.floatExpr(depth-1), g.floatExpr(depth-1)
	switch g.rng.Intn(7) {
	case 0:
		return Add(x, y)
	case 1:
		return Sub(x, y)
	case 2:
		return Mul(x, y)
	case 3:
		return Bin{Op: MinF, X: x, Y: y}
	case 4:
		return Call1(Sqrt, Call1(Fabs, x))
	case 5:
		// Division by arbitrary values: zero denominators yield ±Inf/NaN
		// and must round identically through f32 stores everywhere.
		return Div(x, y)
	default:
		return Select{
			Cond: Bin{Op: LtF, X: x, Y: y},
			Then: x,
			Else: y,
		}
	}
}

func (g *kernelGen) boolExpr() Expr {
	ops := []BinOp{LtF, GtF, LeF, GeF}
	return Bin{Op: ops[g.rng.Intn(len(ops))], X: g.floatExpr(2), Y: g.floatExpr(2)}
}

func (g *kernelGen) stmts(depth, count int) []Stmt {
	var out []Stmt
	for i := 0; i < count; i++ {
		switch pick := g.rng.Intn(10); {
		case pick < 4 || depth <= 0:
			name := []string{"v0", "v1", "v2"}[g.rng.Intn(3)]
			out = append(out, Set(name, g.floatExpr(3)))
			g.addVar(name)
		case pick < 6:
			out = append(out, If{
				Cond: g.boolExpr(),
				Then: g.stmts(depth-1, 1+g.rng.Intn(2)),
				Else: g.stmts(depth-1, g.rng.Intn(2)),
			})
		case pick < 8:
			v := fmt.Sprintf("t%d", g.loopSeq)
			g.loopSeq++
			body := g.stmts(depth-1, 1+g.rng.Intn(2))
			out = append(out, For{
				Var:   v,
				Start: I(0),
				End:   I(int64(1 + g.rng.Intn(4))),
				Step:  I(1),
				Body:  body,
			})
			g.addVar(v)
		default:
			out = append(out, StoreF("out", Gid(0), g.floatExpr(2)))
		}
	}
	return out
}

func (g *kernelGen) addVar(name string) {
	for _, v := range g.vars {
		if v == name {
			return
		}
	}
	g.vars = append(g.vars, name)
}

// generate builds one random kernel: assignments, branches, loops and a
// guaranteed final store so the kernel is observable.
func (g *kernelGen) generate() *Kernel {
	g.vars = nil
	body := []Stmt{Set("v0", LoadF("in0", Gid(0)))}
	g.addVar("v0")
	// Depth 3 nests divergence inside divergence (If within If/For within
	// If), stressing mask-stack narrowing and v2's active-prefix bounds.
	body = append(body, g.stmts(3, 3+g.rng.Intn(4))...)
	body = append(body, StoreF("out", Gid(0), g.floatExpr(3)))
	return &Kernel{
		Name:    "fuzz",
		WorkDim: 1,
		Params:  []Param{Buf("in0"), Buf("in1"), Buf("out")},
		Body:    body,
	}
}

func TestLockstepMatchesReference(t *testing.T) {
	const (
		kernelsToTry = 60
		n            = 96 // not a multiple of the local size: padding lanes active
		local        = 16
	)
	rng := rand.New(rand.NewSource(20130415)) // the paper's conference date
	gen := &kernelGen{rng: rng, inBufs: []string{"in0", "in1"}, n: n}

	for trial := 0; trial < kernelsToTry; trial++ {
		k := gen.generate()
		if err := Validate(k); err != nil {
			t.Fatalf("trial %d: generated invalid kernel: %v\n%s", trial, err, Format(k))
		}

		mkArgs := func() *Args {
			in0 := NewBufferF32("in0", n)
			in1 := NewBufferF32("in1", n)
			out := NewBufferF32("out", n)
			for i := 0; i < n; i++ {
				in0.Set(i, float64(rng.Intn(200))/16-6)
				in1.Set(i, float64(rng.Intn(200))/16-6)
			}
			return NewArgs().Bind("in0", in0).Bind("in1", in1).Bind("out", out)
		}
		lock := mkArgs()
		ref := lock.Clone()
		ref.Buffers["in0"] = FromF32("in0", lock.Buffers["in0"].Snapshot())
		ref.Buffers["in1"] = FromF32("in1", lock.Buffers["in1"].Snapshot())
		ref.Buffers["out"] = NewBufferF32("out", n)

		nd := Range1D(n, local)
		if err := ExecRange(k, lock, nd, ExecOptions{}); err != nil {
			t.Fatalf("trial %d: lockstep: %v\n%s", trial, err, Format(k))
		}
		for g := 0; g < n; g++ {
			(&refExec{k: k, args: ref, nd: nd, gid: [3]int{g, 0, 0}}).run()
		}

		lo, ro := lock.Buffers["out"], ref.Buffers["out"]
		for i := 0; i < n; i++ {
			a, b := lo.Get(i), ro.Get(i)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("trial %d: out[%d] lockstep %v vs reference %v\nkernel:\n%s",
					trial, i, a, b, Format(k))
			}
		}
	}
}
