package ir

import (
	"fmt"
	"strings"
)

// Format renders a kernel as pseudo-OpenCL-C for diagnostics and the
// Figure 11 style dumps produced by cmd/oclbench.
func Format(k *Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "__kernel void %s(", k.Name)
	for i, p := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		switch p.Kind {
		case BufferParam:
			fmt.Fprintf(&b, "__global %s *%s", p.Elem, p.Name)
		case ScalarParam:
			fmt.Fprintf(&b, "%s %s", p.Elem, p.Name)
		}
	}
	b.WriteString(") {\n")
	for _, l := range k.Locals {
		fmt.Fprintf(&b, "  __local %s %s[%s];\n", l.Elem, l.Name, FormatExpr(l.Size))
	}
	formatStmts(&b, k.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

func formatStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case Assign:
			fmt.Fprintf(b, "%s%s = %s;\n", ind, s.Dst, FormatExpr(s.Val))
		case Store:
			fmt.Fprintf(b, "%s%s[%s] = %s;\n", ind, s.Buf, FormatExpr(s.Index), FormatExpr(s.Val))
		case LocalStore:
			fmt.Fprintf(b, "%s%s[%s] = %s;\n", ind, s.Arr, FormatExpr(s.Index), FormatExpr(s.Val))
		case AtomicAdd:
			fmt.Fprintf(b, "%satomic_add(&%s[%s], %s);\n", ind, s.Arr, FormatExpr(s.Index), FormatExpr(s.Val))
		case Barrier:
			fmt.Fprintf(b, "%sbarrier(CLK_LOCAL_MEM_FENCE);\n", ind)
		case If:
			fmt.Fprintf(b, "%sif (%s) {\n", ind, FormatExpr(s.Cond))
			formatStmts(b, s.Then, depth+1)
			if len(s.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				formatStmts(b, s.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case For:
			fmt.Fprintf(b, "%sfor (int %s = %s; %s < %s; %s += %s) {\n",
				ind, s.Var, FormatExpr(s.Start), s.Var, FormatExpr(s.End), s.Var, FormatExpr(s.Step))
			formatStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		}
	}
}

// FormatExpr renders an expression as pseudo-C.
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case ConstFloat:
		return fmt.Sprintf("%gf", e.V)
	case ConstInt:
		return fmt.Sprint(e.V)
	case VarRef:
		return e.Name
	case ParamRef:
		return e.Name
	case ID:
		return fmt.Sprintf("%s(%d)", e.Fn, e.Dim)
	case Bin:
		op := strings.TrimSuffix(e.Op.String(), ".")
		return fmt.Sprintf("(%s %s %s)", FormatExpr(e.X), op, FormatExpr(e.Y))
	case Call:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = FormatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(args, ", "))
	case Load:
		return fmt.Sprintf("%s[%s]", e.Buf, FormatExpr(e.Index))
	case LocalLoad:
		return fmt.Sprintf("%s[%s]", e.Arr, FormatExpr(e.Index))
	case Select:
		return fmt.Sprintf("(%s ? %s : %s)", FormatExpr(e.Cond), FormatExpr(e.Then), FormatExpr(e.Else))
	case ToFloat:
		return fmt.Sprintf("(float)(%s)", FormatExpr(e.X))
	case ToInt:
		return fmt.Sprintf("(int)(%s)", FormatExpr(e.X))
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
