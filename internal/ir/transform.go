package ir

// SubstGlobalID rewrites every get_global_id(dim) in the statement list with
// the replacement expression. The OpenMP layer uses it to port a kernel to
// its loop form: workitem identity becomes the loop induction variable,
// exactly the porting the paper performs in section III-F.
func SubstGlobalID(stmts []Stmt, dim int, repl Expr) []Stmt {
	return SubstID(stmts, GlobalID, dim, repl)
}

// SubstID rewrites every occurrence of the identity function fn(dim) with
// the replacement expression (e.g. get_global_size(0) with a constant when
// collapsing a 2-D kernel to a loop).
func SubstID(stmts []Stmt, fn IDFunc, dim int, repl Expr) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = substStmt(s, fn, dim, repl)
	}
	return out
}

func substStmt(s Stmt, fn IDFunc, dim int, repl Expr) Stmt {
	switch s := s.(type) {
	case Assign:
		return Assign{Dst: s.Dst, Val: substExpr(s.Val, fn, dim, repl)}
	case Store:
		return Store{Buf: s.Buf, Index: substExpr(s.Index, fn, dim, repl), Val: substExpr(s.Val, fn, dim, repl)}
	case LocalStore:
		return LocalStore{Arr: s.Arr, Index: substExpr(s.Index, fn, dim, repl), Val: substExpr(s.Val, fn, dim, repl)}
	case AtomicAdd:
		return AtomicAdd{Arr: s.Arr, Index: substExpr(s.Index, fn, dim, repl), Val: substExpr(s.Val, fn, dim, repl)}
	case For:
		return For{
			Var:   s.Var,
			Start: substExpr(s.Start, fn, dim, repl),
			End:   substExpr(s.End, fn, dim, repl),
			Step:  substExpr(s.Step, fn, dim, repl),
			Body:  SubstID(s.Body, fn, dim, repl),
		}
	case If:
		return If{
			Cond: substExpr(s.Cond, fn, dim, repl),
			Then: SubstID(s.Then, fn, dim, repl),
			Else: SubstID(s.Else, fn, dim, repl),
		}
	default:
		return s
	}
}

func substExpr(e Expr, fn IDFunc, dim int, repl Expr) Expr {
	switch e := e.(type) {
	case ID:
		if e.Fn == fn && e.Dim == dim {
			return repl
		}
		return e
	case Bin:
		return Bin{Op: e.Op, X: substExpr(e.X, fn, dim, repl), Y: substExpr(e.Y, fn, dim, repl)}
	case Call:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = substExpr(a, fn, dim, repl)
		}
		return Call{Fn: e.Fn, Args: args}
	case Load:
		return Load{Buf: e.Buf, Index: substExpr(e.Index, fn, dim, repl), Elem: e.Elem}
	case LocalLoad:
		return LocalLoad{Arr: e.Arr, Index: substExpr(e.Index, fn, dim, repl), Elem: e.Elem}
	case Select:
		return Select{
			Cond: substExpr(e.Cond, fn, dim, repl),
			Then: substExpr(e.Then, fn, dim, repl),
			Else: substExpr(e.Else, fn, dim, repl),
		}
	case ToFloat:
		return ToFloat{X: substExpr(e.X, fn, dim, repl)}
	case ToInt:
		return ToInt{X: substExpr(e.X, fn, dim, repl)}
	default:
		return e
	}
}
