package ir

import (
	"sync"
	"testing"
)

func cacheTestKernel() *Kernel {
	return &Kernel{
		Name:    "cachetest",
		WorkDim: 1,
		Params:  []Param{Buf("in"), Buf("out")},
		Body: []Stmt{
			Set("v", Mul(LoadF("in", Gid(0)), F(2))),
			StoreF("out", Gid(0), V("v")),
		},
	}
}

// The program cache is keyed by the canonical-print digest: the same
// kernel pointer and a structurally identical copy must both resolve to
// the same compiled program, so tuner sweeps never recompile.
func TestProgramCacheIdentity(t *testing.T) {
	k1 := cacheTestKernel()
	p1, err := compiledProgram(k1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := compiledProgram(k1)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("same kernel pointer compiled twice")
	}
	k2 := cacheTestKernel() // distinct pointer, same canonical print
	if Digest(k1) != Digest(k2) {
		t.Fatal("structurally identical kernels must share a digest")
	}
	p3, err := compiledProgram(k2)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("same-digest kernel recompiled instead of hitting the cache")
	}
}

// Concurrent first-touch compiles of the same digest must single-flight to
// one program (run with -race to check the cache's synchronization).
func TestProgramCacheSingleFlight(t *testing.T) {
	k := &Kernel{
		Name:    "singleflight",
		WorkDim: 1,
		Params:  []Param{Buf("out")},
		Body:    []Stmt{StoreF("out", Gid(0), ToFloat{X: Gid(0)})},
	}
	const goroutines = 32
	progs := make([]*program, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Fresh copies share the digest but not the pointer memo.
			kc := &Kernel{Name: k.Name, WorkDim: k.WorkDim, Params: k.Params, Body: k.Body}
			p, err := compiledProgram(kc)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if progs[i] != progs[0] {
			t.Fatal("concurrent compiles produced distinct programs")
		}
	}
}

// Variables defined only inside divergent control flow keep their
// zero-on-group-entry semantics: liveness may skip zeroing only for slots
// proven written before read at top level.
func TestSkipZeroingPreservesGroupEntryZero(t *testing.T) {
	const n, local = 64, 16 // 4 groups

	// Uniform variable assigned only in group 0.
	uni := &Kernel{
		Name:    "zero_uni",
		WorkDim: 1,
		Params:  []Param{Buf("out")},
		Body: []Stmt{
			When(Bin{Op: EqI, X: Grp(0), Y: I(0)}, Set("x", F(5))),
			StoreF("out", Gid(0), V("x")),
		},
	}
	// Vector variable assigned only in group 0.
	vec := &Kernel{
		Name:    "zero_vec",
		WorkDim: 1,
		Params:  []Param{Buf("out")},
		Body: []Stmt{
			When(Bin{Op: EqI, X: Grp(0), Y: I(0)}, Set("x", ToFloat{X: Gid(0)})),
			StoreF("out", Gid(0), V("x")),
		},
	}
	for _, k := range []*Kernel{uni, vec} {
		out := NewBufferF32("out", n)
		args := NewArgs().Bind("out", out)
		if err := ExecRange(k, args, Range1D(n, local), ExecOptions{}); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for i := 0; i < n; i++ {
			want := 0.0
			if i < local { // group 0
				want = 5
				if k.Name == "zero_vec" {
					want = float64(i)
				}
			}
			if got := out.Get(i); got != want {
				t.Fatalf("%s: out[%d] = %v, want %v", k.Name, i, got, want)
			}
		}
	}
}

// A variable written unconditionally at top level before any read needs no
// per-group zeroing; liveness must prove it dead-on-entry.
func TestLivenessSkipsProvenSlots(t *testing.T) {
	k := &Kernel{
		Name:    "live",
		WorkDim: 1,
		Params:  []Param{Buf("in"), Buf("out")},
		Body: []Stmt{
			Set("x", LoadF("in", Gid(0))),                            // full top-level def: slot never zeroed
			When(Bin{Op: GtF, X: V("x"), Y: F(0)}, Set("y", V("x"))), // partial def: zeroed
			StoreF("out", Gid(0), Add(V("x"), V("y"))),
		},
	}
	prog, err := compiledProgram(k)
	if err != nil {
		t.Fatal(err)
	}
	// x and y are both per-lane (non-uniform); only y may appear in the
	// zero list.
	if prog.nvslots != 2 {
		t.Fatalf("nvslots = %d, want 2", prog.nvslots)
	}
	if len(prog.zeroSlots) != 1 {
		t.Fatalf("zeroSlots = %v, want exactly the partially-defined slot", prog.zeroSlots)
	}
}

// Constant subexpressions fold at compile time without changing results:
// F32 rounding and integer truncation must match the oracle exactly.
func TestConstantFoldingMatchesOracle(t *testing.T) {
	const n, local = 32, 8
	k := &Kernel{
		Name:    "fold",
		WorkDim: 1,
		Params:  []Param{Buf("out")},
		Body: []Stmt{
			Set("a", Add(F(0.1), F(0.2))),
			Set("b", Divi(I(7), I(2))),
			Set("c", Modi(I(5), I(0))), // guarded: folds to 0, not a crash
			StoreF("out", Gid(0), Add(V("a"), Add(V("b"), V("c")))),
		},
	}
	engine := NewArgs().Bind("out", NewBufferF32("out", n))
	oracle := NewArgs().Bind("out", NewBufferF32("out", n))
	if err := ExecRange(k, engine, Range1D(n, local), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := ExecRangeOracle(k, oracle, Range1D(n, local), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if engine.Buffers["out"].Get(i) != oracle.Buffers["out"].Get(i) {
			t.Fatalf("out[%d]: engine %v, oracle %v",
				i, engine.Buffers["out"].Get(i), oracle.Buffers["out"].Get(i))
		}
	}
}
