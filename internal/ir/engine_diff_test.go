package ir

// Differential testing of both execution engines (v1 closure-compiled,
// v2 lane-batched) against the retained tree-walking oracle
// (ExecRangeOracle): on the randomized fuzz corpus each engine must
// produce byte-identical buffers AND identical traced access streams —
// serially and in parallel, with and without batch delivery, at a local
// size that is a multiple of the v2 lane width and one that leaves a
// partial tail block. The parallel variants exercise the buffered
// in-order flush under -race.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// traceEvent is one recorded tracer callback: either a BeginGroup marker
// or an access record.
type traceEvent struct {
	begin bool
	group int
	acc   Access
}

// recTracer records the exact stream of Tracer calls it observes.
type recTracer struct {
	log []traceEvent
}

func (r *recTracer) BeginGroup(g int) {
	r.log = append(r.log, traceEvent{begin: true, group: g})
}

func (r *recTracer) Access(addr, size int64, write bool) {
	r.log = append(r.log, traceEvent{acc: Access{Addr: addr, Size: size, Write: write}})
}

// Mark records non-global marker records (barriers), so the streaming
// comparison covers them too: the oracle emits markers inline while the
// engine buffers and flushes them, and the merged streams must still be
// identical event for event.
func (r *recTracer) Mark(rec Access) {
	r.log = append(r.log, traceEvent{acc: rec})
}

// recBatchTracer records the same stream through the BatchTracer fast path.
type recBatchTracer struct {
	recTracer
}

func (r *recBatchTracer) AccessBatch(_ int, recs []Access) {
	for _, a := range recs {
		r.log = append(r.log, traceEvent{acc: a})
	}
}

// cloneArgsDeep copies the argument set including buffer contents (Clone
// shares buffers), preserving Base so traced addresses match.
func cloneArgsDeep(a *Args) *Args {
	c := NewArgs()
	for name, b := range a.Buffers {
		c.Buffers[name] = &Buffer{
			Name: b.Name,
			Elem: b.Elem,
			Base: b.Base,
			Data: append([]float64(nil), b.Data...),
		}
	}
	for k, v := range a.Scalars {
		c.Scalars[k] = v
	}
	return c
}

func diffArgs(t *testing.T, label string, got, want *Args, k *Kernel) {
	t.Helper()
	for name, wb := range want.Buffers {
		gb := got.Buffers[name]
		for i := range wb.Data {
			a, b := gb.Data[i], wb.Data[i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("%s: %s[%d] = %v, oracle %v\nkernel:\n%s",
					label, name, i, a, b, Format(k))
			}
		}
	}
}

func diffTrace(t *testing.T, label string, got, want []traceEvent, k *Kernel) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: trace has %d events, oracle %d\nkernel:\n%s",
			label, len(got), len(want), Format(k))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: trace event %d = %+v, oracle %+v\nkernel:\n%s",
				label, i, got[i], want[i], Format(k))
		}
	}
}

// TestEngineMatchesOracle is the main differential property: random
// kernels from the fuzz generator, executed four ways by the compiled
// engine, must match the tree-walk oracle bit-for-bit in both buffer
// contents and traced access stream.
func TestEngineMatchesOracle(t *testing.T) {
	const (
		kernelsToTry = 40
		n            = 96
	)
	rng := rand.New(rand.NewSource(4205))
	gen := &kernelGen{rng: rng, inBufs: []string{"in0", "in1"}, n: n}

	for trial := 0; trial < kernelsToTry; trial++ {
		k := gen.generate()
		if err := Validate(k); err != nil {
			t.Fatalf("trial %d: generated invalid kernel: %v", trial, err)
		}

		proto := NewArgs()
		for bi, name := range []string{"in0", "in1", "out"} {
			buf := NewBufferF32(name, n)
			buf.Base = int64(0x10000 * (bi + 1)) // distinct address ranges
			if name != "out" {
				for i := 0; i < n; i++ {
					buf.Set(i, float64(rng.Intn(200))/16-6)
				}
			}
			proto.Bind(name, buf)
		}

		// local 16 fills whole lane blocks; local 12 leaves a 4-lane tail
		// block, exercising v2's tail masking on every statement.
		for _, local := range []int{16, 12} {
			nd := Range1D(n, local)

			oracleArgs := cloneArgsDeep(proto)
			oracleTr := &recTracer{}
			if err := ExecRangeOracle(k, oracleArgs, nd, ExecOptions{Tracer: oracleTr}); err != nil {
				t.Fatalf("trial %d: oracle: %v\n%s", trial, err, Format(k))
			}

			for _, eng := range []struct {
				name string
				sel  EngineSel
			}{{"v1", EngineV1}, {"v2", EngineV2}} {
				runs := []struct {
					label string
					opts  func(Tracer) ExecOptions
					tr    interface {
						Tracer
						events() []traceEvent
					}
				}{
					{"serial", func(tr Tracer) ExecOptions { return ExecOptions{Tracer: tr, Engine: eng.sel} }, &evTracer{}},
					{"parallel", func(tr Tracer) ExecOptions { return ExecOptions{Tracer: tr, Parallel: 8, Engine: eng.sel} }, &evTracer{}},
					{"parallel batch", func(tr Tracer) ExecOptions { return ExecOptions{Tracer: tr, Parallel: 8, Engine: eng.sel} }, &evBatchTracer{}},
				}
				for _, run := range runs {
					label := fmt.Sprintf("%s local%d %s", eng.name, local, run.label)
					args := cloneArgsDeep(proto)
					if err := ExecRange(k, args, nd, run.opts(run.tr)); err != nil {
						t.Fatalf("trial %d: %s: %v\n%s", trial, label, err, Format(k))
					}
					diffArgs(t, label, args, oracleArgs, k)
					diffTrace(t, label, run.tr.events(), oracleTr.log, k)
				}

				// Untraced parallel run must also match buffers.
				args := cloneArgsDeep(proto)
				if err := ExecRange(k, args, nd, ExecOptions{Parallel: 8, Engine: eng.sel}); err != nil {
					t.Fatalf("trial %d: %s untraced: %v\n%s", trial, eng.name, err, Format(k))
				}
				diffArgs(t, eng.name+" untraced parallel", args, oracleArgs, k)
			}
		}
	}
}

// evTracer/evBatchTracer adapt the recorders to a common interface for the
// table-driven runs above.
type evTracer struct{ recTracer }

func (r *evTracer) events() []traceEvent { return r.log }

type evBatchTracer struct{ recBatchTracer }

func (r *evBatchTracer) events() []traceEvent { return r.log }

// TestEngineTraceSampledGroups checks the Groups filter under parallel
// tracing: only selected groups execute, and they flush in ascending order.
func TestEngineTraceSampledGroups(t *testing.T) {
	const n, local = 256, 16
	k := &Kernel{
		Name:    "sampled",
		WorkDim: 1,
		Params:  []Param{Buf("in"), Buf("out")},
		Body: []Stmt{
			StoreF("out", Gid(0), Add(LoadF("in", Gid(0)), F(1))),
		},
	}
	proto := NewArgs().
		Bind("in", NewBufferF32("in", n)).
		Bind("out", NewBufferF32("out", n))
	for i := 0; i < n; i++ {
		proto.Buffers["in"].Set(i, float64(i))
	}
	sel := func(g int) bool { return g%3 == 0 }

	oracleArgs := cloneArgsDeep(proto)
	oracleTr := &recTracer{}
	if err := ExecRangeOracle(k, oracleArgs, Range1D(n, local),
		ExecOptions{Tracer: oracleTr, Groups: sel}); err != nil {
		t.Fatal(err)
	}

	for _, eng := range []EngineSel{EngineV1, EngineV2} {
		args := cloneArgsDeep(proto)
		tr := &recTracer{}
		if err := ExecRange(k, args, Range1D(n, local),
			ExecOptions{Tracer: tr, Groups: sel, Parallel: 4, Engine: eng}); err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("sampled engine=%d", eng)
		diffArgs(t, label, args, oracleArgs, k)
		diffTrace(t, label, tr.log, oracleTr.log, k)
	}
}

// TestEngineErrorMatchesOracle: a kernel that fails in a late group must
// report the same error as the oracle, and the parallel traced run must
// deliver exactly the groups a serial run would have completed first.
func TestEngineErrorMatchesOracle(t *testing.T) {
	const n, local = 128, 16
	// Group 5 (gids 80..95) stores out of bounds.
	k := &Kernel{
		Name:    "failing",
		WorkDim: 1,
		Params:  []Param{Buf("out")},
		Body: []Stmt{
			If{
				Cond: Bin{Op: EqI, X: Grp(0), Y: I(5)},
				Then: []Stmt{StoreF("out", Addi(Gid(0), I(int64(n))), F(1))},
				Else: []Stmt{StoreF("out", Gid(0), F(2))},
			},
		},
	}
	mk := func() *Args { return NewArgs().Bind("out", NewBufferF32("out", n)) }

	oracleTr := &recTracer{}
	oracleErr := ExecRangeOracle(k, mk(), Range1D(n, local), ExecOptions{Tracer: oracleTr})
	if oracleErr == nil {
		t.Fatal("oracle: expected an error")
	}
	// The oracle streams accesses as they happen, so it emits BeginGroup
	// for the failing group before dying; the engine flushes only completed
	// groups. Compare against the oracle's completed-groups prefix.
	prefix := oracleTr.log
	for i, ev := range prefix {
		if ev.begin && ev.group == 5 {
			prefix = prefix[:i]
			break
		}
	}

	for _, eng := range []EngineSel{EngineV1, EngineV2} {
		for _, par := range []int{0, 8} {
			tr := &recTracer{}
			err := ExecRange(k, mk(), Range1D(n, local), ExecOptions{Tracer: tr, Parallel: par, Engine: eng})
			if err == nil || err.Error() != oracleErr.Error() {
				t.Fatalf("engine=%d parallel=%d: error %v, oracle %v", eng, par, err, oracleErr)
			}
			diffTrace(t, fmt.Sprintf("failing engine=%d", eng), tr.log, prefix, k)
		}
	}
}
