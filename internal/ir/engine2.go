package ir

import (
	"fmt"
	"math"
	"math/bits"
)

// Engine v2: lane-batched SIMD-style execution.
//
// The v1 closure engine (compile.go/engine.go) evaluates one lane-vector
// op per closure call with per-element loops over group-sized scratch
// slices, testing a bool mask per lane. Engine v2 restructures execution
// the way the paper's Figures 10-11 describe the Intel OpenCL compiler
// vectorizing across workitems:
//
//   - structure-of-arrays storage: every per-lane value (variable slots,
//     gid/lid tables, expression registers) is a flat float64 slab padded
//     to a whole number of fixed-width lane blocks (laneW = 8), so every
//     op is one closure call running unconditional flat loops — no
//     per-lane mask branches and no scratch-pool bookkeeping;
//   - lane masks are one bit per lane ([]uint8, one byte per 8-lane
//     block) with tail bits permanently zero, so divergent If/For masking
//     is bit arithmetic and masked assignment is a branchless bitwise
//     select over (*vreg) block views;
//   - expressions evaluate into a compile-time depth-allocated register
//     file (exec2.regs), with a fused multiply-add peephole and fused
//     local-gather loops collapsing the hot accumulate shapes into a
//     single pass;
//   - affine gather plans precompute Trunc(src)*scale once per group into
//     base slabs (exec2.bases), hoisting the per-lane address arithmetic
//     out of For bodies.
//
// Execution remains statement-level lockstep: all lanes of a group move
// through the same statement together, so barriers, __local semantics
// and the oracle's trace order are preserved exactly. Because each op
// evaluates the whole group in one call, trace records append to ex.tb
// in op-major order directly — the oracle's stream shape — with no
// reordering buffers. Differential tests assert byte-identical buffers
// and identical trace streams against ExecRangeOracle.

// laneW is the fixed lane-block width. Eight float64 lanes fill a cache
// line and match one AVX-512 register / two AVX registers, the shape the
// paper's CPU vectorizer targets.
const laneW = 8

// vreg is one lane block: the unit of masked writes. Flat slabs convert
// to block views via (*vreg)(slab[b*laneW:]).
type vreg [laneW]float64

// exec2 is the per-worker runtime state of engine v2. One exec2 executes
// workgroups sequentially; a parallel launch creates one per worker. All
// kernel-shape data lives in the shared immutable program2.
type exec2 struct {
	prog *program2
	nd   NDRange
	n    int // workitems per group
	nb   int // lane blocks per group (ceil(n/laneW))
	np   int // padded lanes (nb*laneW); slab length
	tail int // valid lanes in the last block (1..laneW)

	// lid0Asc reports lid0[i] == i (1D local shape), which makes
	// get_local_id(0) monotone ascending within the group: comparisons
	// against a uniform bound then collapse to prefix masks.
	lid0Asc bool

	// hi is the active lane bound: expression evaluation runs over
	// lanes [0, hi). Divergent If/For shrink it to the last active
	// block of their branch mask (untraced runs only — traced loads
	// record all real lanes, so tracing pins hi at np). Lanes in
	// [hi, np) keep stale register values, which is safe because
	// registers are transient per statement and persistent slots only
	// change under mask bits, all of which are below hi.
	hi int

	gid [3][]float64 // per-lane global ids, rewritten per group (pads: group base)
	lid [3][]float64 // per-lane local ids, launch-invariant (pads: 0)
	grp [3]float64
	gsz [3]float64
	lsz [3]float64
	ngr [3]float64

	vals  [][]float64 // per-lane variable slots [slot][padded lane]
	uvals []float64   // per-group (uniform) variable slots

	// regs is the expression register file: compile-time depth-allocated
	// slabs that expression nodes evaluate into. regs[d] holds the value
	// of the node at depth d; operands of one node use strictly deeper
	// registers, so sibling subtrees never collide.
	regs [][]float64
	// ustash holds per-evaluation uniform values (gather offsets, scalar
	// operands): root setup thunks write it once per statement execution
	// so hot loops read a float instead of re-walking a uniform tree.
	ustash []float64
	// bases holds the per-group precomputed gather bases, one slab per
	// program2.bases plan: bases[p][i] = src[i] * Trunc(scale).
	bases [][]float64

	bufs    []*Buffer
	scalars []float64
	locals  [][]float64

	// nzbuf is scratch for fused comparison masks: one cmpAll* call per
	// divergent If fills it before the combine loop reads it.
	nzbuf []uint8

	// rootMask is the group's full mask: 0xff per block, tail bits zero.
	// Derived masks come from mpool and always AND with their parent, so
	// pad-lane bits can never become active.
	rootMask []uint8
	mpool    [][]uint8
	mpoolNxt int

	// tracing enables access buffering: ops append to tb as they
	// evaluate, which is already the oracle's op-major order because each
	// op processes the whole group per call. barSeq is the running
	// group's barrier ordinal, recorded in KindBarrier markers.
	tracing bool
	tb      []Access
	barSeq  int64
}

func newExec2(prog *program2, args *Args, nd NDRange, tracing bool) *exec2 {
	n := nd.GroupItems()
	nb := (n + laneW - 1) / laneW
	np := nb * laneW
	ex := &exec2{prog: prog, nd: nd, n: n, nb: nb, np: np, tail: n - (nb-1)*laneW, hi: np, tracing: tracing}
	lx, ly := nd.Local[0], nd.Local[1]
	if lx == 0 {
		lx = 1
	}
	if ly == 0 {
		ly = 1
	}
	for d := 0; d < 3; d++ {
		ex.gid[d] = make([]float64, np)
		ex.lid[d] = make([]float64, np)
	}
	for i := 0; i < n; i++ {
		ex.lid[0][i] = float64(i % lx)
		ex.lid[1][i] = float64((i / lx) % ly)
		ex.lid[2][i] = float64(i / (lx * ly))
	}
	ex.lid0Asc = n <= lx
	counts := nd.GroupCounts()
	for d := 0; d < 3; d++ {
		ex.gsz[d] = float64(max(nd.Global[d], 1))
		ex.lsz[d] = float64(max(nd.Local[d], 1))
		ex.ngr[d] = float64(counts[d])
	}

	ex.vals = make([][]float64, prog.nvslots)
	for i := range ex.vals {
		ex.vals[i] = make([]float64, np)
	}
	ex.uvals = make([]float64, prog.nuslots)
	ex.regs = make([][]float64, prog.nregs)
	for i := range ex.regs {
		ex.regs[i] = make([]float64, np)
	}
	ex.ustash = make([]float64, prog.nstash)
	ex.bases = make([][]float64, len(prog.bases))
	for i := range ex.bases {
		ex.bases[i] = make([]float64, np)
	}

	ex.bufs = make([]*Buffer, len(prog.buffers))
	for i, name := range prog.buffers {
		ex.bufs[i] = args.Buffers[name]
	}
	ex.scalars = make([]float64, len(prog.scalars))
	for i, name := range prog.scalars {
		ex.scalars[i] = args.Scalars[name]
	}
	ex.locals = make([][]float64, len(prog.locals))

	ex.nzbuf = make([]uint8, nb)
	ex.rootMask = make([]uint8, nb)
	for b := range ex.rootMask {
		ex.rootMask[b] = 0xff
	}
	ex.rootMask[nb-1] = tailMask(ex.tail)
	return ex
}

// tailMask returns the mask byte with the low `lanes` bits set.
func tailMask(lanes int) uint8 { return uint8(1<<uint(lanes)) - 1 }

func (ex *exec2) getM() []uint8 {
	if ex.mpoolNxt < len(ex.mpool) {
		m := ex.mpool[ex.mpoolNxt]
		ex.mpoolNxt++
		return m
	}
	m := make([]uint8, ex.nb)
	ex.mpool = append(ex.mpool, m)
	ex.mpoolNxt++
	return m
}

func (ex *exec2) putM(n int) { ex.mpoolNxt -= n }

// isFull reports whether mask is the shared root mask (identity check,
// like engineExec.isFull: divergent constructs always allocate fresh
// masks and nb >= 1).
func (ex *exec2) isFull(mask []uint8) bool {
	return &mask[0] == &ex.rootMask[0]
}

func (ex *exec2) fail(format string, args ...any) {
	panic(execError{fmt.Errorf("ir: kernel %s: "+format, append([]any{ex.prog.name}, args...)...)})
}

// activeCount counts the active lanes of a mask.
func (ex *exec2) activeCount(mask []uint8) int {
	if ex.isFull(mask) {
		return ex.n
	}
	n := 0
	for _, m := range mask {
		n += bits.OnesCount8(m)
	}
	return n
}

func anyMask(mask []uint8) bool {
	for _, m := range mask {
		if m != 0 {
			return true
		}
	}
	return false
}

// localSize evaluates a __local array size with lane-0 semantics,
// matching the oracle's uniformInt (which evaluates all lanes and reads
// lane 0, tracing any loads).
func (ex *exec2) localSize(pl *progLocal2) int64 {
	r := &pl.size
	if r.ce.uni != nil {
		return int64(r.ce.uni(ex))
	}
	r.prep(ex)
	return int64(r.ce.get(ex)[0])
}

// runGroup executes workgroup g. When tracing, accesses accumulate in
// ex.tb (the caller resets and flushes it); a failed group's buffer is
// never flushed.
func (ex *exec2) runGroup(g int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ee, ok := r.(execError); ok {
				err = ee.err
				return
			}
			panic(r)
		}
	}()
	// A panic mid-statement leaves mask claims partially made; reset so a
	// worker that continues past a failed group (parallel tracing drains
	// every group) starts clean. Barrier ordinals restart per group.
	ex.mpoolNxt = 0
	ex.barSeq = 0
	ex.hi = ex.np

	coord := ex.nd.GroupCoord(g)
	for d := 0; d < 3; d++ {
		base := float64(coord[d] * max(ex.nd.Local[d], 1))
		lids := ex.lid[d]
		gids := ex.gid[d]
		for i := range gids {
			gids[i] = base + lids[i]
		}
		ex.grp[d] = float64(coord[d])
	}

	// Precompute the per-group gather bases: src * Trunc(scale). Sources
	// are gid/lid tables (integral), so the Trunc(src) of the unfused
	// formula is the identity and the product is bit-identical.
	for pi := range ex.prog.bases {
		bp := &ex.prog.bases[pi]
		a := math.Trunc(bp.scale(ex))
		src := ex.idTable(bp.fn, bp.dim)
		dst := ex.bases[pi]
		for i := range dst {
			dst[i] = src[i] * a
		}
	}

	// Zero the per-group uniform slots unconditionally (tiny), and only
	// the per-lane slots liveness could not prove write-before-read.
	for i := range ex.uvals {
		ex.uvals[i] = 0
	}
	for _, s := range ex.prog.zeroSlots {
		v := ex.vals[s]
		for i := range v {
			v[i] = 0
		}
	}

	// (Re)initialize local arrays: fresh per group, like OpenCL __local.
	for li := range ex.prog.locals {
		pl := &ex.prog.locals[li]
		size := ex.localSize(pl)
		if size < 0 || size > 1<<28 {
			ex.fail("local array %s has invalid size %d", pl.name, size)
		}
		arr := ex.locals[li]
		if int64(len(arr)) != size {
			arr = make([]float64, size)
			ex.locals[li] = arr
		}
		for i := range arr {
			arr[i] = 0
		}
	}

	// The root mask is always full: NDRange.Validate requires the local
	// size to divide the global size (see engineExec.runGroup).
	mask := ex.rootMask
	for _, f := range ex.prog.body {
		f(ex, mask)
	}
	return nil
}

// idTable returns the gid or lid table for a base plan source.
func (ex *exec2) idTable(fn IDFunc, dim int) []float64 {
	if fn == GlobalID {
		return ex.gid[dim]
	}
	return ex.lid[dim]
}

// runTraced implements the traced-runner contract used by exec.go's
// serial and parallel trace drivers.
func (ex *exec2) runTraced(g int, buf []Access) ([]Access, error) {
	ex.tb = buf[:0]
	err := ex.runGroup(g)
	return ex.tb, err
}
