package ir

import (
	"fmt"
	"sort"
)

// Validate checks a kernel for structural errors: duplicate declarations,
// references to unknown parameters or local arrays, reads of variables that
// are never assigned, and barriers under divergent control flow (undefined
// behaviour in OpenCL, rejected here).
func Validate(k *Kernel) error {
	if k.Name == "" {
		return fmt.Errorf("ir: kernel with empty name")
	}
	if k.WorkDim < 1 || k.WorkDim > 3 {
		return fmt.Errorf("ir: kernel %s: work dim %d out of range", k.Name, k.WorkDim)
	}
	v := &validator{k: k, defined: map[string]bool{}, uniform: map[string]bool{}}
	seen := map[string]bool{}
	for _, p := range k.Params {
		if seen[p.Name] {
			return fmt.Errorf("ir: kernel %s: duplicate parameter %q", k.Name, p.Name)
		}
		seen[p.Name] = true
	}
	for _, l := range k.Locals {
		if seen[l.Name] {
			return fmt.Errorf("ir: kernel %s: local array %q collides with another declaration", k.Name, l.Name)
		}
		seen[l.Name] = true
		if err := v.checkExpr(l.Size); err != nil {
			return err
		}
	}
	return v.checkStmts(k.Body, true)
}

type validator struct {
	k       *Kernel
	defined map[string]bool // variables assigned so far
	uniform map[string]bool // variables known workitem-uniform
}

func (v *validator) errf(format string, args ...any) error {
	return fmt.Errorf("ir: kernel %s: "+format, append([]any{v.k.Name}, args...)...)
}

func (v *validator) checkStmts(stmts []Stmt, uniformFlow bool) error {
	for _, s := range stmts {
		if err := v.checkStmt(s, uniformFlow); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) checkStmt(s Stmt, uniformFlow bool) error {
	switch s := s.(type) {
	case Assign:
		if err := v.checkExpr(s.Val); err != nil {
			return err
		}
		if _, isParam := v.k.Param(s.Dst); isParam {
			return v.errf("assignment to parameter %q", s.Dst)
		}
		v.defined[s.Dst] = true
		v.uniform[s.Dst] = uniformFlow && v.exprUniform(s.Val)
		return nil
	case Store:
		p, ok := v.k.Param(s.Buf)
		if !ok || p.Kind != BufferParam {
			return v.errf("store to unknown buffer %q", s.Buf)
		}
		if err := v.checkExpr(s.Index); err != nil {
			return err
		}
		return v.checkExpr(s.Val)
	case LocalStore:
		if _, ok := v.k.Local(s.Arr); !ok {
			return v.errf("store to undeclared local array %q", s.Arr)
		}
		if err := v.checkExpr(s.Index); err != nil {
			return err
		}
		return v.checkExpr(s.Val)
	case AtomicAdd:
		if _, ok := v.k.Local(s.Arr); !ok {
			return v.errf("atomic add to undeclared local array %q", s.Arr)
		}
		if err := v.checkExpr(s.Index); err != nil {
			return err
		}
		return v.checkExpr(s.Val)
	case If:
		if err := v.checkExpr(s.Cond); err != nil {
			return err
		}
		inner := uniformFlow && v.exprUniform(s.Cond)
		if err := v.checkStmts(s.Then, inner); err != nil {
			return err
		}
		return v.checkStmts(s.Else, inner)
	case For:
		for _, e := range []Expr{s.Start, s.End, s.Step} {
			if err := v.checkExpr(e); err != nil {
				return err
			}
		}
		v.defined[s.Var] = true
		v.uniform[s.Var] = uniformFlow &&
			v.exprUniform(s.Start) && v.exprUniform(s.End) && v.exprUniform(s.Step)
		return v.checkStmts(s.Body, uniformFlow && v.uniform[s.Var])
	case Barrier:
		if !uniformFlow {
			return v.errf("barrier inside divergent control flow")
		}
		return nil
	default:
		return v.errf("unknown statement type %T", s)
	}
}

func (v *validator) checkExpr(e Expr) error {
	var err error
	walkExpr(e, func(e Expr) {
		if err != nil {
			return
		}
		switch e := e.(type) {
		case VarRef:
			if !v.defined[e.Name] {
				err = v.errf("read of variable %q before assignment", e.Name)
			}
		case ParamRef:
			p, ok := v.k.Param(e.Name)
			if !ok {
				err = v.errf("reference to unknown parameter %q", e.Name)
			} else if p.Kind != ScalarParam {
				err = v.errf("parameter %q is a buffer, referenced as scalar", e.Name)
			}
		case Load:
			p, ok := v.k.Param(e.Buf)
			if !ok || p.Kind != BufferParam {
				err = v.errf("load from unknown buffer %q", e.Buf)
			}
		case LocalLoad:
			if _, ok := v.k.Local(e.Arr); !ok {
				err = v.errf("load from undeclared local array %q", e.Arr)
			}
		case ID:
			if e.Dim < 0 || e.Dim > 2 {
				err = v.errf("%s(%d): dimension out of range", e.Fn, e.Dim)
			}
		case Call:
			if !e.Fn.Valid() {
				err = v.errf("unknown builtin %s in %s", e.Fn, FormatExpr(e))
			} else if len(e.Args) != e.Fn.NumArgs() {
				err = v.errf("%s expects %d args, got %d", e.Fn, e.Fn.NumArgs(), len(e.Args))
			}
		case Bin:
			// Out-of-range op codes (corrupted or hand-built IR) used to
			// slip through to binScalarOp/evalBin, which evaluated them to
			// 0 — deterministic but silently wrong. Reject them here, with
			// the offending expression printed for position.
			if !e.Op.Valid() {
				err = v.errf("unknown binary operator %s in %s", e.Op, FormatExpr(e))
			}
		}
	})
	return err
}

// exprUniform reports whether e provably evaluates to the same value for
// every workitem of a workgroup.
func (v *validator) exprUniform(e Expr) bool {
	uniform := true
	walkExpr(e, func(e Expr) {
		switch e := e.(type) {
		case ID:
			if !e.Fn.Uniform() {
				uniform = false
			}
		case VarRef:
			if !v.uniform[e.Name] {
				uniform = false
			}
		case Load, LocalLoad:
			// Memory contents are not tracked; be conservative.
			uniform = false
		}
	})
	return uniform
}

// WalkExpr calls fn for e and every sub-expression, pre-order.
func WalkExpr(e Expr, fn func(Expr)) { walkExpr(e, fn) }

// WalkStmts calls fn for every statement in stmts, recursively (pre-order).
func WalkStmts(stmts []Stmt, fn func(Stmt)) { walkStmts(stmts, fn) }

// walkExpr calls fn for e and every sub-expression, pre-order.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case Bin:
		walkExpr(e.X, fn)
		walkExpr(e.Y, fn)
	case Call:
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	case Load:
		walkExpr(e.Index, fn)
	case LocalLoad:
		walkExpr(e.Index, fn)
	case Select:
		walkExpr(e.Cond, fn)
		walkExpr(e.Then, fn)
		walkExpr(e.Else, fn)
	case ToFloat:
		walkExpr(e.X, fn)
	case ToInt:
		walkExpr(e.X, fn)
	}
}

// walkStmts calls fn for every statement in stmts, recursively (pre-order).
func walkStmts(stmts []Stmt, fn func(Stmt)) {
	for _, s := range stmts {
		fn(s)
		switch s := s.(type) {
		case For:
			walkStmts(s.Body, fn)
		case If:
			walkStmts(s.Then, fn)
			walkStmts(s.Else, fn)
		}
	}
}

// BufferAccess returns the names of the global buffers the kernel reads
// (Load) and writes (Store), each de-duplicated and sorted. Command-queue
// layers use it to derive a launch's read/write sets for event-graph
// hazard analysis (internal/san).
func BufferAccess(k *Kernel) (reads, writes []string) {
	rd, wr := map[string]bool{}, map[string]bool{}
	collect := func(e Expr) {
		walkExpr(e, func(e Expr) {
			if l, ok := e.(Load); ok {
				rd[l.Buf] = true
			}
		})
	}
	walkStmts(k.Body, func(s Stmt) {
		switch s := s.(type) {
		case Assign:
			collect(s.Val)
		case Store:
			wr[s.Buf] = true
			collect(s.Index)
			collect(s.Val)
		case LocalStore:
			collect(s.Index)
			collect(s.Val)
		case AtomicAdd:
			collect(s.Index)
			collect(s.Val)
		case If:
			collect(s.Cond)
		case For:
			collect(s.Start)
			collect(s.End)
			collect(s.Step)
		}
	})
	for _, la := range k.Locals {
		collect(la.Size)
	}
	reads = make([]string, 0, len(rd))
	for n := range rd {
		reads = append(reads, n)
	}
	writes = make([]string, 0, len(wr))
	for n := range wr {
		writes = append(writes, n)
	}
	sort.Strings(reads)
	sort.Strings(writes)
	return reads, writes
}
