package ir

import "fmt"

// engineExec is the per-worker runtime state of the compiled engine. One
// engineExec executes workgroups sequentially; a parallel launch creates
// one per worker. All kernel-shape data (slot counts, dense parameter
// tables, lowered body) lives in the shared immutable program.
type engineExec struct {
	prog *program
	nd   NDRange
	n    int // workitems per group

	gid [3][]float64 // per-lane global ids, rewritten per group
	lid [3][]float64 // per-lane local ids, group-invariant
	grp [3]float64
	gsz [3]float64 // float64(get_global_size(d)), launch-invariant
	lsz [3]float64
	ngr [3]float64

	vals  [][]float64 // per-lane variable slots [slot][lane]
	uvals []float64   // per-group (uniform) variable slots

	bufs    []*Buffer   // dense buffer bindings, program.buffers order
	scalars []float64   // dense scalar values, program.scalars order
	locals  [][]float64 // dense __local arrays, program.locals order

	fullMask []bool // all-true root mask (local divides global post-Validate)

	pool     [][]float64
	poolNext int
	bpool    [][]bool
	bpoolNxt int

	// tracing enables access buffering: closures append to tb, the caller
	// flushes tb to the Tracer in group order (see exec.go). barSeq is the
	// running group's barrier ordinal, recorded in KindBarrier markers.
	tracing bool
	tb      []Access
	barSeq  int64
}

func newEngineExec(prog *program, args *Args, nd NDRange, tracing bool) *engineExec {
	n := nd.GroupItems()
	ex := &engineExec{prog: prog, nd: nd, n: n, tracing: tracing}
	lx, ly := nd.Local[0], nd.Local[1]
	if lx == 0 {
		lx = 1
	}
	if ly == 0 {
		ly = 1
	}
	for d := 0; d < 3; d++ {
		ex.gid[d] = make([]float64, n)
		ex.lid[d] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		ex.lid[0][i] = float64(i % lx)
		ex.lid[1][i] = float64((i / lx) % ly)
		ex.lid[2][i] = float64(i / (lx * ly))
	}
	counts := nd.GroupCounts()
	for d := 0; d < 3; d++ {
		ex.gsz[d] = float64(max(nd.Global[d], 1))
		ex.lsz[d] = float64(max(nd.Local[d], 1))
		ex.ngr[d] = float64(counts[d])
	}

	ex.vals = make([][]float64, prog.nvslots)
	for i := range ex.vals {
		ex.vals[i] = make([]float64, n)
	}
	ex.uvals = make([]float64, prog.nuslots)

	ex.bufs = make([]*Buffer, len(prog.buffers))
	for i, name := range prog.buffers {
		ex.bufs[i] = args.Buffers[name]
	}
	ex.scalars = make([]float64, len(prog.scalars))
	for i, name := range prog.scalars {
		ex.scalars[i] = args.Scalars[name]
	}
	ex.locals = make([][]float64, len(prog.locals))

	ex.fullMask = make([]bool, n)
	for i := range ex.fullMask {
		ex.fullMask[i] = true
	}
	return ex
}

func (ex *engineExec) getF() []float64 {
	if ex.poolNext < len(ex.pool) {
		b := ex.pool[ex.poolNext]
		ex.poolNext++
		return b
	}
	b := make([]float64, ex.n)
	ex.pool = append(ex.pool, b)
	ex.poolNext++
	return b
}

func (ex *engineExec) putF(n int) { ex.poolNext -= n }

func (ex *engineExec) getB() []bool {
	if ex.bpoolNxt < len(ex.bpool) {
		b := ex.bpool[ex.bpoolNxt]
		ex.bpoolNxt++
		return b
	}
	b := make([]bool, ex.n)
	ex.bpool = append(ex.bpool, b)
	ex.bpoolNxt++
	return b
}

func (ex *engineExec) putB(n int) { ex.bpoolNxt -= n }

// isFull reports whether mask is the shared all-true root mask, enabling
// unmasked fast paths. Identity (not content) is checked: divergent
// constructs always allocate fresh masks, and group size is >= 1.
func (ex *engineExec) isFull(mask []bool) bool {
	return &mask[0] == &ex.fullMask[0]
}

func (ex *engineExec) fail(format string, args ...any) {
	panic(execError{fmt.Errorf("ir: kernel %s: "+format, append([]any{ex.prog.name}, args...)...)})
}

// localSize evaluates a __local array size with lane-0 semantics,
// matching the oracle's uniformInt.
func (ex *engineExec) localSize(cl progLocal) int64 {
	if cl.size.vec == nil {
		return int64(cl.size.uni(ex))
	}
	t := ex.getF()
	cl.size.vec(ex, t)
	v := int64(t[0])
	ex.putF(1)
	return v
}

// runGroup executes workgroup g. When tracing, accesses accumulate in
// ex.tb (the caller resets and flushes it); a failed group's buffer is
// never flushed.
func (ex *engineExec) runGroup(g int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ee, ok := r.(execError); ok {
				err = ee.err
				return
			}
			panic(r)
		}
	}()
	// A panic mid-statement leaves the scratch stacks partially claimed;
	// reset here so a worker that continues past a failed group (parallel
	// tracing drains every group) starts clean. Barrier ordinals restart
	// per group.
	ex.poolNext, ex.bpoolNxt = 0, 0
	ex.barSeq = 0

	coord := ex.nd.GroupCoord(g)
	for d := 0; d < 3; d++ {
		base := float64(coord[d] * max(ex.nd.Local[d], 1))
		lids := ex.lid[d]
		gids := ex.gid[d]
		for i := range gids {
			gids[i] = base + lids[i]
		}
		ex.grp[d] = float64(coord[d])
	}

	// Zero the per-group uniform slots unconditionally (tiny), and only
	// the per-lane slots liveness could not prove write-before-read.
	for i := range ex.uvals {
		ex.uvals[i] = 0
	}
	for _, s := range ex.prog.zeroSlots {
		v := ex.vals[s]
		for i := range v {
			v[i] = 0
		}
	}

	// (Re)initialize local arrays: fresh per group, like OpenCL __local.
	for li := range ex.prog.locals {
		cl := &ex.prog.locals[li]
		size := ex.localSize(*cl)
		if size < 0 || size > 1<<28 {
			ex.fail("local array %s has invalid size %d", cl.name, size)
		}
		arr := ex.locals[li]
		if int64(len(arr)) != size {
			arr = make([]float64, size)
			ex.locals[li] = arr
		}
		for i := range arr {
			arr[i] = 0
		}
	}

	// The root mask is always full: NDRange.Validate requires the local
	// size to divide the global size, so no lane of any group is out of
	// range (the oracle computes this mask per group and always gets
	// all-true).
	mask := ex.fullMask
	for _, f := range ex.prog.body {
		f(ex, mask)
	}
	return nil
}

// runTraced implements the traced-runner contract used by exec.go's
// serial and parallel trace drivers.
func (ex *engineExec) runTraced(g int, buf []Access) ([]Access, error) {
	ex.tb = buf[:0]
	err := ex.runGroup(g)
	return ex.tb, err
}
