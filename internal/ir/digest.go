package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// kernelDigests memoizes Digest per *Kernel. Formatting and hashing a
// kernel costs about as much as one model evaluation, so recomputing it
// per lookup would erase any cache's advantage; kernels in this codebase
// are immutable once built (Coarsen and the generators return fresh
// values), which makes pointer identity a sound memo key.
var kernelDigests sync.Map // *Kernel -> string

// Digest returns the sha256 hex digest of the kernel's canonical printed
// form (Format). It is the shared content address for every per-kernel
// cache in clperf: the execution engine's compiled-program cache keys on
// it, and internal/search folds it into model-evaluation keys. Two
// kernels that print identically share a digest even when they are
// distinct values (e.g. repeated generator calls).
func Digest(k *Kernel) string {
	if d, ok := kernelDigests.Load(k); ok {
		return d.(string)
	}
	sum := sha256.Sum256([]byte(Format(k)))
	d := hex.EncodeToString(sum[:])
	kernelDigests.Store(k, d)
	return d
}
