package ir

// maxSubstNodes caps forward-substituted expression size so pathological
// kernels cannot blow up analysis time.
const maxSubstNodes = 512

// exprSize returns the node count of e.
func exprSize(e Expr) int {
	n := 0
	walkExpr(e, func(Expr) { n++ })
	return n
}

// SubstVars replaces VarRef nodes that have a definition in defs with that
// definition. It is used by the stride analyses to see through scalar
// temporaries ("i = get_global_id(0); a[i]").
func SubstVars(e Expr, defs map[string]Expr) Expr {
	if len(defs) == 0 {
		return e
	}
	out := substVarsRec(e, defs)
	if exprSize(out) > maxSubstNodes {
		return e
	}
	return out
}

func substVarsRec(e Expr, defs map[string]Expr) Expr {
	switch e := e.(type) {
	case VarRef:
		if d, ok := defs[e.Name]; ok {
			return d
		}
		return e
	case Bin:
		return Bin{Op: e.Op, X: substVarsRec(e.X, defs), Y: substVarsRec(e.Y, defs)}
	case Call:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = substVarsRec(a, defs)
		}
		return Call{Fn: e.Fn, Args: args}
	case Load:
		return Load{Buf: e.Buf, Index: substVarsRec(e.Index, defs), Elem: e.Elem}
	case LocalLoad:
		return LocalLoad{Arr: e.Arr, Index: substVarsRec(e.Index, defs), Elem: e.Elem}
	case Select:
		return Select{
			Cond: substVarsRec(e.Cond, defs),
			Then: substVarsRec(e.Then, defs),
			Else: substVarsRec(e.Else, defs),
		}
	case ToFloat:
		return ToFloat{X: substVarsRec(e.X, defs)}
	case ToInt:
		return ToInt{X: substVarsRec(e.X, defs)}
	default:
		return e
	}
}

// defTracker incrementally maintains forward-substituted definitions of
// scalar variables as an analysis walks statements in order.
type defTracker struct {
	defs map[string]Expr
}

func newDefTracker() *defTracker { return &defTracker{defs: map[string]Expr{}} }

// assign records dst = val (with prior definitions substituted into val).
// Oversized or self-referential definitions invalidate the entry.
func (t *defTracker) assign(dst string, val Expr) {
	sub := substVarsRec(val, t.defs)
	if exprSize(sub) > maxSubstNodes {
		delete(t.defs, dst)
		return
	}
	t.defs[dst] = sub
}

// invalidate drops a variable's definition (loop variables, divergent
// merges).
func (t *defTracker) invalidate(name string) { delete(t.defs, name) }

// resolve substitutes all known definitions into e.
func (t *defTracker) resolve(e Expr) Expr { return SubstVars(e, t.defs) }
