package ir

import "fmt"

// This file implements the two vectorization legality models the paper
// contrasts in section II-E / III-F:
//
//   - The OpenCL kernel compiler vectorizes *across workitems*: lane i of a
//     vector register is workitem i. No dependence checking is needed — the
//     programming model guarantees workitems are independent between
//     barriers — so vectorization succeeds regardless of dependences inside
//     a workitem (the Figure 11 example). Only atomics force scalar code,
//     and per-access efficiency depends on the inter-workitem stride.
//
//   - The OpenMP/loop compiler vectorizes *across loop iterations* by
//     unrolling and packing, and must prove legality: countable loop,
//     single-entry/single-exit straight-line body, contiguous accesses and
//     no (assumed) data dependences. Mirroring the Intel guidance the paper
//     cites, anything it cannot prove makes it give up.

// MemVecSite describes how one memory access site vectorizes.
type MemVecSite struct {
	Buf    string
	Write  bool
	Stride Stride
	// Packed means a single wide load/store covers all lanes (unit or
	// uniform stride). Non-packed sites fall back to gather/scatter.
	Packed  bool
	PerItem float64
}

// CLVecReport is the outcome of the OpenCL implicit (cross-workitem)
// vectorization model.
type CLVecReport struct {
	Vectorized   bool
	ScalarReason string // set when Vectorized is false
	Sites        []MemVecSite
	// PackedFrac is the dynamic fraction of global memory operations that
	// vectorize into packed accesses (weighted by executions per item).
	PackedFrac float64
	// DivergentIfs counts non-uniform branches, which vectorize via masking
	// with reduced lane efficiency.
	DivergentIfs int
}

// VectorizeOpenCL applies the OpenCL implicit vectorization model to k at
// the given launch configuration.
func VectorizeOpenCL(k *Kernel, args *Args, nd NDRange) (*CLVecReport, error) {
	if err := Validate(k); err != nil {
		return nil, err
	}
	rep := &CLVecReport{Vectorized: true}

	hasAtomic := false
	walkStmts(k.Body, func(s Stmt) {
		if _, ok := s.(AtomicAdd); ok {
			hasAtomic = true
		}
	})
	if hasAtomic {
		rep.Vectorized = false
		rep.ScalarReason = "kernel performs atomic operations"
	}
	if fn, ok := callsScalarLibm(k.Body); ok && rep.Vectorized {
		rep.Vectorized = false
		rep.ScalarReason = fmt.Sprintf("kernel calls scalar math library (%s)", fn)
	}

	se := &staticEval{env: NewStaticEnv(nd, args), varVal: map[string]float64{}}
	v := &validator{k: k, defined: map[string]bool{}, uniform: map[string]bool{}}
	defs := newDefTracker()
	var (
		packed, total float64
	)
	var scan func(stmts []Stmt, uniformFlow bool)
	record := func(buf string, index Expr, write bool) {
		st := probeStride(defs.resolve(index), se, func(se *staticEval, d float64) {
			se.probeDim = 0
			se.gidDelta = d
		})
		site := MemVecSite{Buf: buf, Write: write, Stride: st, PerItem: 1,
			Packed: st.Unit() || st.Uniform()}
		rep.Sites = append(rep.Sites, site)
		total++
		if site.Packed {
			packed++
		}
	}
	var scanExpr func(e Expr)
	scanExpr = func(e Expr) {
		walkExpr(e, func(e Expr) {
			if ld, ok := e.(Load); ok {
				record(ld.Buf, ld.Index, false)
			}
		})
	}
	scan = func(stmts []Stmt, uniformFlow bool) {
		for _, s := range stmts {
			switch s := s.(type) {
			case Assign:
				scanExpr(s.Val)
				v.defined[s.Dst] = true
				v.uniform[s.Dst] = uniformFlow && v.exprUniform(s.Val)
				defs.assign(s.Dst, s.Val)
			case Store:
				scanExpr(s.Index)
				scanExpr(s.Val)
				record(s.Buf, s.Index, true)
			case LocalStore:
				scanExpr(s.Index)
				scanExpr(s.Val)
			case AtomicAdd:
				scanExpr(s.Index)
				scanExpr(s.Val)
			case If:
				scanExpr(s.Cond)
				uni := v.exprUniform(s.Cond)
				if !uni {
					rep.DivergentIfs++
				}
				scan(s.Then, uniformFlow && uni)
				scan(s.Else, uniformFlow && uni)
				walkStmts(append(append([]Stmt{}, s.Then...), s.Else...), func(st Stmt) {
					if a, ok := st.(Assign); ok {
						defs.invalidate(a.Dst)
					}
				})
			case For:
				scanExpr(s.Start)
				scanExpr(s.End)
				scanExpr(s.Step)
				v.defined[s.Var] = true
				v.uniform[s.Var] = uniformFlow &&
					v.exprUniform(s.Start) && v.exprUniform(s.End) && v.exprUniform(s.Step)
				defs.invalidate(s.Var)
				// Give the induction variable a representative value so
				// strides of loop-body accesses resolve (the loop variable is
				// workitem-invariant per iteration).
				prev, had := se.varVal[s.Var]
				if start, ok := se.eval(s.Start); ok {
					se.varVal[s.Var] = start
				} else {
					se.varVal[s.Var] = 1
				}
				scan(s.Body, uniformFlow)
				if had {
					se.varVal[s.Var] = prev
				} else {
					delete(se.varVal, s.Var)
				}
				walkStmts(s.Body, func(st Stmt) {
					if a, ok := st.(Assign); ok {
						defs.invalidate(a.Dst)
					}
				})
			}
		}
	}
	scan(k.Body, true)
	if total > 0 {
		rep.PackedFrac = packed / total
	} else {
		rep.PackedFrac = 1
	}
	return rep, nil
}

// LoopVecReport is the outcome of the OpenMP loop vectorization model.
type LoopVecReport struct {
	Vectorized bool
	// Reason is the first legality rule that failed, in the vocabulary of
	// the Intel auto-vectorization guide the paper cites.
	Reason string
}

// VectorizeLoop applies the conservative loop-vectorizer legality model to
// a loop body iterated over loopVar (the OpenMP "parallel for" induction
// variable). The caller supplies the launch-time environment used to
// resolve strides.
func VectorizeLoop(body []Stmt, loopVar string, env *StaticEnv, scalarInit map[string]float64) *LoopVecReport {
	se := &staticEval{env: env, varVal: map[string]float64{}}
	for k2, v := range scalarInit {
		se.varVal[k2] = v
	}
	// A representative value for the induction variable.
	se.varVal[loopVar] = 16

	fail := func(reason string) *LoopVecReport {
		return &LoopVecReport{Vectorized: false, Reason: reason}
	}

	// Rule 1: straight-line control flow — no branches inside the loop.
	cf := false
	barrier := false
	atomic := false
	innerLoop := false
	walkStmts(body, func(s Stmt) {
		switch s.(type) {
		case If:
			cf = true
		case Barrier:
			barrier = true
		case AtomicAdd:
			atomic = true
		case For:
			innerLoop = true
		}
	})
	if cf {
		return fail("control flow inside the loop body")
	}
	if barrier {
		return fail("synchronization inside the loop body")
	}
	if atomic {
		return fail("atomic operation inside the loop body")
	}
	if innerLoop {
		return fail("nested loop: only innermost loops are vectorized")
	}
	if fn, ok := callsScalarLibm(body); ok {
		return fail(fmt.Sprintf("call to scalar math library (%s)", fn))
	}

	// Rule 2: contiguous memory accesses with respect to the induction
	// variable (unit stride or invariant). Scalar temporaries are forward
	// substituted so ported kernels ("i = loopvar; a[i]") probe correctly.
	defs := newDefTracker()
	for _, s := range body {
		if a, ok := s.(Assign); ok {
			defs.assign(a.Dst, a.Val)
		}
	}
	probe := func(index Expr) Stride {
		index = defs.resolve(index)
		return probeStride(index, se, func(se *staticEval, d float64) {
			se.loopDeltaVar = loopVar
			se.loopDelta = d
			if d == 0 {
				se.loopDeltaVar = ""
			}
		})
	}
	var memFail string
	written := map[string]bool{}
	loaded := map[string]bool{}
	rmw := ""
	var scanE func(e Expr)
	scanE = func(e Expr) {
		walkExpr(e, func(e Expr) {
			if ld, ok := e.(Load); ok {
				st := probe(ld.Index)
				if !st.Unit() && !st.Uniform() && memFail == "" {
					memFail = fmt.Sprintf("non-contiguous access to %s", ld.Buf)
				}
				loaded[ld.Buf] = true
				if written[ld.Buf] && rmw == "" {
					rmw = ld.Buf
				}
			}
		})
	}
	for _, s := range body {
		switch s := s.(type) {
		case Assign:
			scanE(s.Val)
		case Store:
			scanE(s.Index)
			scanE(s.Val)
			st := probe(s.Index)
			if !st.Unit() && memFail == "" {
				memFail = fmt.Sprintf("non-contiguous store to %s", s.Buf)
			}
			// Rule 3 (part): a store followed by a load of the same buffer
			// within the iteration is an assumed data dependence — the
			// compiler cannot prove the locations disjoint (Figure 11).
			written[s.Buf] = true
			if loaded[s.Buf] && rmw == "" {
				rmw = s.Buf
			}
		case LocalStore:
			scanE(s.Index)
			scanE(s.Val)
		}
	}
	if memFail != "" {
		return fail(memFail)
	}
	if rmw != "" {
		return fail(fmt.Sprintf("assumed data dependence through %s", rmw))
	}

	// Rule 3 (rest): loop-carried scalar recurrences — a scalar read before
	// it is written advances across iterations and forbids packing.
	assigned := map[string]bool{loopVar: true}
	var carried string
	defined := map[string]bool{}
	// First pass: which scalars does the body assign at all?
	for _, s := range body {
		if a, ok := s.(Assign); ok {
			defined[a.Dst] = true
		}
	}
	for _, s := range body {
		switch s := s.(type) {
		case Assign:
			useBeforeDefFiltered(s.Val, assigned, defined, &carried)
			assigned[s.Dst] = true
		case Store:
			useBeforeDefFiltered(s.Index, assigned, defined, &carried)
			useBeforeDefFiltered(s.Val, assigned, defined, &carried)
		}
	}
	if carried != "" {
		return fail(fmt.Sprintf("loop-carried scalar dependence on %q", carried))
	}
	return &LoopVecReport{Vectorized: true}
}

// useBeforeDefFiltered flags reads of scalars that the body assigns
// somewhere but that have not been assigned yet this iteration — the
// signature of a loop-carried recurrence. Reads of loop-invariant scalars
// (never assigned in the body) are harmless.
func useBeforeDefFiltered(e Expr, assigned, definedInBody map[string]bool, carried *string) {
	walkExpr(e, func(e Expr) {
		if v, ok := e.(VarRef); ok {
			if definedInBody[v.Name] && !assigned[v.Name] && *carried == "" {
				*carried = v.Name
			}
		}
	})
}

// callsScalarLibm reports whether any expression in stmts invokes a
// non-vectorizable math builtin, returning the first offender.
func callsScalarLibm(stmts []Stmt) (Builtin, bool) {
	var found Builtin
	ok := false
	scan := func(e Expr) {
		walkExpr(e, func(e Expr) {
			if c, isCall := e.(Call); isCall && !c.Fn.Vectorizable() && !ok {
				found, ok = c.Fn, true
			}
		})
	}
	walkStmts(stmts, func(s Stmt) {
		switch s := s.(type) {
		case Assign:
			scan(s.Val)
		case Store:
			scan(s.Index)
			scan(s.Val)
		case LocalStore:
			scan(s.Index)
			scan(s.Val)
		case AtomicAdd:
			scan(s.Index)
			scan(s.Val)
		case If:
			scan(s.Cond)
		case For:
			scan(s.Start)
			scan(s.End)
			scan(s.Step)
		}
	})
	return found, ok
}
