package cache

// Differential testing of the two-phase sharded cache simulator against
// the serial reference (the oracle, as ir.ExecRangeOracle is for the
// execution engine): on randomized access streams and on every registered
// kernels application the two must agree bitwise — per-level Stats,
// per-core stall cycles (float bit patterns), and Level probes — with the
// traced execution serial and parallel. CI runs this package under -race,
// so the phase-1 worker handoff is also exercised by the race detector.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"clperf/internal/arch"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

// diffHierarchies fails unless a and b are in bitwise-identical states:
// same per-core L1/L2 stats, same L3 stats, and same Level classification
// for every probe address.
func diffHierarchies(t *testing.T, label string, a, b *Hierarchy, probes []int64) {
	t.Helper()
	if a.Cores() != b.Cores() {
		t.Fatalf("%s: core counts differ: %d vs %d", label, a.Cores(), b.Cores())
	}
	for c := 0; c < a.Cores(); c++ {
		a1, a2 := a.CoreStats(c)
		b1, b2 := b.CoreStats(c)
		if a1 != b1 || a2 != b2 {
			t.Fatalf("%s: core %d stats differ: L1 %+v vs %+v, L2 %+v vs %+v",
				label, c, a1, b1, a2, b2)
		}
	}
	if a.L3Stats() != b.L3Stats() {
		t.Fatalf("%s: L3 stats differ: %+v vs %+v", label, a.L3Stats(), b.L3Stats())
	}
	for _, addr := range probes {
		for c := 0; c < a.Cores(); c++ {
			if la, lb := a.Level(c, addr), b.Level(c, addr); la != lb {
				t.Fatalf("%s: Level(core %d, %#x) = %d vs %d", label, c, addr, la, lb)
			}
		}
	}
}

// diffStalls fails unless the two per-core stall maps carry identical
// float64 bit patterns.
func diffStalls(t *testing.T, label string, got, want map[int]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: stalls for %d cores, oracle %d (%v vs %v)",
			label, len(got), len(want), got, want)
	}
	for c, w := range want {
		g, ok := got[c]
		if !ok {
			t.Fatalf("%s: core %d missing from stalls", label, c)
		}
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%s: core %d stall %v (%#x), oracle %v (%#x)",
				label, c, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
}

// TestShardedMatchesSerialRandomStreams is the stream-level fuzz
// property: random batched access streams with random group->core
// mappings replayed into both simulators must leave bitwise-identical
// hierarchies and stall totals. Address ranges are sized so all four
// outcomes (L1/L2/L3/DRAM) occur.
func TestShardedMatchesSerialRandomStreams(t *testing.T) {
	cpu := arch.XeonE5645()
	for _, mode := range []struct {
		name   string
		inline bool
	}{{"workers", false}, {"inline", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 25; trial++ {
				groups := 1 + rng.Intn(64)
				phys := cpu.PhysicalCores()
				coreMap := make([]int, groups)
				for g := range coreMap {
					coreMap[g] = rng.Intn(phys + 2) // includes out-of-range cores (clamped)
				}
				coreOf := func(g int) int { return coreMap[g] }

				hs := NewHierarchy(cpu)
				hp := NewHierarchy(cpu)
				serial := NewSerial(hs, coreOf, StoreWriteFactor)
				sharded := newSharded(hp, coreOf, StoreWriteFactor, mode.inline)

				var probes []int64
				span := int64(1 << (14 + rng.Intn(10))) // 16 KiB .. 8 MiB working sets
				for g := 0; g < groups; g++ {
					n := rng.Intn(200)
					recs := make([]ir.Access, n)
					for i := range recs {
						addr := rng.Int63n(span)
						size := int64(4 << rng.Intn(2))
						if rng.Intn(16) == 0 {
							size = 60 + rng.Int63n(16) // spans cache lines
						}
						recs[i] = ir.Access{Addr: addr, Size: size, Write: rng.Intn(3) == 0}
						if len(probes) < 64 {
							probes = append(probes, addr)
						}
					}
					serial.BeginGroup(g)
					serial.AccessBatch(g, recs)
					sharded.BeginGroup(g)
					sharded.AccessBatch(g, recs)
				}
				diffStalls(t, "random stream", sharded.Finish(), serial.Finish())
				diffHierarchies(t, "random stream", hp, hs, probes)
			}
		})
	}
}

// kernelTestConfig mirrors the kernels package's shrunken geometries so
// every registered app traces in test time.
func kernelTestConfig(app *kernels.App) ir.NDRange {
	switch app.Name {
	case "Square", "Vectoraddition":
		return ir.Range1D(4096, 64)
	case "Matrixmul", "MatrixmulNaive":
		return ir.Range2D(48, 32, 8, 8)
	case "Reduction":
		return ir.Range1D(8192, 256)
	case "Histogram":
		return ir.Range1D(16384, 128)
	case "Prefixsum":
		return ir.Range1D(1024, 1024)
	case "Blackscholes":
		return ir.Range2D(64, 48, 8, 8)
	case "Binomialoption":
		return ir.Range1D(255*4, 255)
	}
	return app.DefaultConfig()
}

func cloneArgsDeep(a *ir.Args) *ir.Args {
	c := ir.NewArgs()
	for name, b := range a.Buffers {
		c.Buffers[name] = &ir.Buffer{
			Name: b.Name,
			Elem: b.Elem,
			Base: b.Base,
			Data: append([]float64(nil), b.Data...),
		}
	}
	for k, v := range a.Scalars {
		c.Scalars[k] = v
	}
	return c
}

// TestShardedMatchesSerialOnApps traces every registered application
// through both simulators — the serial oracle under serial execution, the
// sharded engine under serial AND parallel execution — and requires
// bitwise-identical outcomes.
func TestShardedMatchesSerialOnApps(t *testing.T) {
	cpu := arch.XeonE5645()
	for _, app := range kernels.Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			nd := kernelTestConfig(app)
			proto := app.Make(nd)
			// Distinct simulated address ranges per buffer, as real launches
			// have.
			base := int64(1 << 21)
			for _, b := range proto.Buffers {
				b.Base = base
				base += b.Bytes() + 4096
			}
			coreOf := func(g int) int { return g % cpu.PhysicalCores() }
			var probes []int64
			for _, b := range proto.Buffers {
				probes = append(probes, b.Base, b.Base+b.Bytes()/2)
			}

			hs := NewHierarchy(cpu)
			serial := NewSerial(hs, coreOf, StoreWriteFactor)
			if err := ir.ExecRange(app.Kernel, cloneArgsDeep(proto), nd,
				ir.ExecOptions{Tracer: serial}); err != nil {
				t.Fatalf("serial: %v", err)
			}
			want := serial.Finish()

			for _, par := range []int{0, 8} {
				for _, inline := range []bool{false, true} {
					hp := NewHierarchy(cpu)
					sharded := newSharded(hp, coreOf, StoreWriteFactor, inline)
					if err := ir.ExecRange(app.Kernel, cloneArgsDeep(proto), nd,
						ir.ExecOptions{Tracer: sharded, Parallel: par}); err != nil {
						t.Fatalf("sharded par=%d inline=%v: %v", par, inline, err)
					}
					label := fmt.Sprintf("sharded par=%d inline=%v", par, inline)
					diffStalls(t, label, sharded.Finish(), want)
					diffHierarchies(t, label, hp, hs, probes)
				}
			}
		})
	}
}

// TestShardedStreamingFallback drives the sharded session through the
// per-access Tracer path (as the tree-walk oracle executor does) and
// checks it against the serial reference.
func TestShardedStreamingFallback(t *testing.T) {
	cpu := arch.XeonE5645()
	app := kernels.VectorAdd()
	nd := ir.Range1D(4096, 64)
	proto := app.Make(nd)
	coreOf := func(g int) int { return g % cpu.PhysicalCores() }

	hs := NewHierarchy(cpu)
	serial := NewSerial(hs, coreOf, StoreWriteFactor)
	if err := ir.ExecRangeOracle(app.Kernel, cloneArgsDeep(proto), nd,
		ir.ExecOptions{Tracer: serial}); err != nil {
		t.Fatal(err)
	}

	want := serial.Finish()
	for _, inline := range []bool{false, true} {
		hp := NewHierarchy(cpu)
		sharded := newSharded(hp, coreOf, StoreWriteFactor, inline)
		if err := ir.ExecRangeOracle(app.Kernel, cloneArgsDeep(proto), nd,
			ir.ExecOptions{Tracer: sharded}); err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("oracle-exec stream inline=%v", inline)
		diffStalls(t, label, sharded.Finish(), want)
		diffHierarchies(t, label, hp, hs, nil)
	}
}

// TestShardedFinishIdempotent: an empty session finishes cleanly (no
// stalls, no hung workers), and repeated Finish calls return the same map.
func TestShardedFinishIdempotent(t *testing.T) {
	for _, inline := range []bool{false, true} {
		h := NewHierarchy(arch.XeonE5645())
		s := newSharded(h, func(int) int { return 0 }, StoreWriteFactor, inline)
		first := s.Finish()
		if len(first) != 0 {
			t.Fatalf("inline=%v: empty session produced stalls: %v", inline, first)
		}
		second := s.Finish()
		if len(second) != 0 {
			t.Fatalf("inline=%v: second Finish differs: %v", inline, second)
		}

		// A non-empty session: Finish twice returns identical totals.
		s2 := newSharded(h, func(int) int { return 0 }, StoreWriteFactor, inline)
		s2.BeginGroup(0)
		s2.AccessBatch(0, []ir.Access{{Addr: 64, Size: 4}, {Addr: 128, Size: 4, Write: true}})
		a := s2.Finish()
		b := s2.Finish()
		if len(a) != 1 || len(b) != 1 ||
			math.Float64bits(a[0]) != math.Float64bits(b[0]) {
			t.Fatalf("inline=%v: Finish not idempotent: %v vs %v", inline, a, b)
		}
	}
}

// TestShardedSessionsPersistState: consecutive sessions on one hierarchy
// see each other's cache residency, exactly like consecutive serial
// launches — the producer/consumer mechanism of the affinity experiment.
func TestShardedSessionsPersistState(t *testing.T) {
	cpu := arch.XeonE5645()
	hs := NewHierarchy(cpu)
	hp := NewHierarchy(cpu)
	coreOf := func(g int) int { return g }
	recs := make([]ir.Access, 256)
	for i := range recs {
		recs[i] = ir.Access{Addr: int64(i * 64), Size: 4}
	}
	for session := 0; session < 3; session++ {
		serial := NewSerial(hs, coreOf, StoreWriteFactor)
		sharded := newSharded(hp, coreOf, StoreWriteFactor, session%2 == 1)
		for g := 0; g < 4; g++ {
			serial.BeginGroup(g)
			serial.AccessBatch(g, recs)
			sharded.BeginGroup(g)
			sharded.AccessBatch(g, recs)
		}
		diffStalls(t, "persistent session", sharded.Finish(), serial.Finish())
	}
	diffHierarchies(t, "persistent session", hp, hs, []int64{0, 64, 4096})
}
