package cache

// Two-phase sharded simulation of a Hierarchy.
//
// The execution engine (ir.ExecRange) runs workgroups concurrently and
// flushes each group's buffered accesses to the tracer in ascending group
// order, so a serial simulator forces the whole access stream through one
// goroutine. But the hierarchy's L1 and L2 are private per physical core:
// a core's private caches observe only the accesses of the groups mapped
// to that core, and their contents never depend on the shared L3 (levels
// fill on every miss regardless of where the line came from). That makes
// the private levels embarrassingly parallel:
//
//   - Phase 1 routes each group's access batch to its core's shard worker,
//     which simulates L1/L2 immediately (overlapping kernel execution) and
//     emits a compact per-access record: the worst privately-resolved line
//     latency, the extra-line count, and the line addresses that missed L2.
//   - Phase 2 (Finish) replays the merged per-core miss streams through
//     the shared L3 serially, in the exact group order the batches arrived
//     in, accumulating per-core stall cycles.
//
// Because L1/L2 probes happen in per-core stream order, L3 probes happen
// in global group order, and stall cycles accumulate access by access in
// the same sequence, every Stats counter, the final cache contents
// (Level/Contains probes), and the floating-point stall totals are
// bit-identical to the serial simulator's. Serial is the differential
// oracle; see the property tests.

import (
	"runtime"

	"clperf/internal/ir"
)

// Sim is a cache simulation session: an ir.Tracer/ir.BatchTracer that
// drives a Hierarchy from a traced kernel execution, plus Finish, which
// completes the simulation and returns the accumulated memory-stall
// cycles per physical core. Both the serial reference (NewSerial) and the
// sharded engine (NewSharded) implement it.
type Sim interface {
	ir.BatchTracer
	// Finish completes the simulation and returns per-core stall cycles.
	// It must be called exactly once after the traced execution ends (it
	// is idempotent; later calls return the same map).
	Finish() map[int]float64
}

// StoreWriteFactor is the fraction of a store's miss latency that the
// store buffer fails to hide: stores charge half their latency, loads all
// of it.
const StoreWriteFactor = 0.5

// Serial is the reference simulator: it feeds the hierarchy one access at
// a time from the tracer goroutine, exactly as the historical per-core
// tracers did — the straightforward, obviously-correct implementation. It
// anchors the sharded engine's differential tests the way the tree-walk
// ExecRangeOracle anchors the compiled execution engine, and like that
// oracle it skips the fast paths (batched AccessRange, sharding) so the
// two implementations stay independent.
type Serial struct {
	h           *Hierarchy
	coreOf      func(group int) int
	writeFactor float64
	core        int
	stalls      map[int]float64
}

// NewSerial returns a serial simulation session on h. coreOf maps a
// linear workgroup index to the physical core executing it; writeFactor
// scales store latencies (use StoreWriteFactor).
func NewSerial(h *Hierarchy, coreOf func(group int) int, writeFactor float64) *Serial {
	return &Serial{h: h, coreOf: coreOf, writeFactor: writeFactor, stalls: map[int]float64{}}
}

// BeginGroup implements ir.Tracer.
func (t *Serial) BeginGroup(g int) { t.core = t.h.clampCore(t.coreOf(g)) }

// Access implements ir.Tracer.
func (t *Serial) Access(addr, size int64, write bool) {
	lat := t.h.Access(t.core, addr, size, write)
	if write {
		lat *= t.writeFactor
	}
	t.stalls[t.core] += lat
}

// AccessBatch implements ir.BatchTracer as the plain per-access loop (no
// AccessRange batching — the oracle stays independent of the fast path it
// verifies). Non-global marker records (barriers) are not memory traffic
// and are skipped.
func (t *Serial) AccessBatch(_ int, recs []ir.Access) {
	for _, a := range recs {
		if a.Kind != ir.KindGlobal {
			continue
		}
		t.Access(a.Addr, a.Size, a.Write)
	}
}

// Finish implements Sim.
func (t *Serial) Finish() map[int]float64 { return t.stalls }

// accRec is the phase-1 result for one access: everything phase 2 needs
// to finish the latency without re-touching the private levels.
type accRec struct {
	// resolved is the worst latency among the access's lines that hit L1
	// or L2 (0 when every line missed both).
	resolved float64
	// extra is the number of lines beyond the first (each costs one extra
	// cycle).
	extra int32
	// npend is how many of the access's lines missed L2 and await the
	// shared-L3 replay; their line numbers sit consecutively in the
	// shard's pend stream.
	npend int32
	write bool
}

// span marks a batch boundary in a shard's output streams: cumulative
// end offsets into accs and pend after the batch.
type span struct {
	acc, pend int
}

// batch is one copied workgroup access batch in flight to a shard worker.
type batch struct {
	recs []ir.Access
}

// shardBufs bounds how many batches may be in flight to one shard worker:
// the feeder blocks once a worker falls this far behind, capping memory.
const shardBufs = 3

// shard is one physical core's private-level simulator.
type shard struct {
	l1, l2 *Cache
	in     chan batch
	free   chan []ir.Access

	// Written by the worker goroutine, read by Finish after done closes.
	accs  []accRec
	pend  []int64
	spans []span
	done  chan struct{}
}

// Sharded is the two-phase parallel simulation session. Feed it as the
// Tracer of an ir.ExecRange launch (batches arrive in ascending group
// order), then call Finish. One session may be active per Hierarchy at a
// time; the hierarchy's caches carry state across sessions as usual.
type Sharded struct {
	h           *Hierarchy
	coreOf      func(group int) int
	writeFactor float64

	shards []*shard
	// order records the routed core of every non-empty batch, in arrival
	// (== group) order: the phase-2 merge key.
	order []int32

	// inline short-circuits the worker pipeline when the process has a
	// single schedulable CPU (GOMAXPROCS=1): goroutine handoff can only
	// lose there, so batches run through the amortized AccessRange fast
	// path directly. Output is bit-identical either way — the property
	// tests pin both modes against the serial oracle.
	inline bool

	// Streaming-tracer fallback state (ir.Tracer without batching, e.g.
	// the oracle executor): accesses buffer in scratch until the group
	// ends, then flush as a batch.
	group   int
	scratch []ir.Access

	finished bool
	stalls   map[int]float64
}

// NewSharded returns a sharded simulation session on h. coreOf maps a
// linear workgroup index to the physical core executing it (out-of-range
// cores clamp to 0, as in Hierarchy.Access); writeFactor scales store
// latencies. With more than one schedulable CPU it starts one phase-1
// worker per physical core; on a single CPU it degrades to the inline
// AccessRange fast path (same results, no handoff overhead).
func NewSharded(h *Hierarchy, coreOf func(group int) int, writeFactor float64) *Sharded {
	return newSharded(h, coreOf, writeFactor, runtime.GOMAXPROCS(0) == 1)
}

// newSharded is the test seam: the property tests force both modes
// regardless of the host's CPU count.
func newSharded(h *Hierarchy, coreOf func(group int) int, writeFactor float64, inline bool) *Sharded {
	s := &Sharded{
		h:           h,
		coreOf:      coreOf,
		writeFactor: writeFactor,
		inline:      inline,
	}
	if inline {
		s.stalls = map[int]float64{}
		return s
	}
	s.shards = make([]*shard, h.Cores())
	for i := range s.shards {
		sh := &shard{
			l1:   h.l1[i],
			l2:   h.l2[i],
			in:   make(chan batch, shardBufs),
			free: make(chan []ir.Access, shardBufs),
			done: make(chan struct{}),
		}
		for b := 0; b < shardBufs; b++ {
			sh.free <- nil
		}
		s.shards[i] = sh
		go sh.run(h.lineShift)
	}
	return s
}

// run is the phase-1 worker: it owns the shard's private L1/L2 and output
// streams until the input channel closes.
func (sh *shard) run(lineShift uint8) {
	defer close(sh.done)
	l1, l2 := sh.l1, sh.l2
	l1lat, l2lat := l1.Latency(), l2.Latency()
	for b := range sh.in {
		for _, a := range b.recs {
			if a.Kind != ir.KindGlobal {
				// Barrier markers carry no memory traffic.
				continue
			}
			first := a.Addr >> lineShift
			last := (a.Addr + a.Size - 1) >> lineShift
			resolved := 0.0
			npend := int32(0)
			for la := first; la <= last; la++ {
				var lat float64
				switch {
				case l1.lookupLine(la):
					lat = l1lat
				case l2.lookupLine(la):
					lat = l2lat
				default:
					sh.pend = append(sh.pend, la)
					npend++
					continue
				}
				if lat > resolved {
					resolved = lat
				}
			}
			sh.accs = append(sh.accs, accRec{
				resolved: resolved,
				extra:    int32(last - first),
				npend:    npend,
				write:    a.Write,
			})
		}
		sh.spans = append(sh.spans, span{acc: len(sh.accs), pend: len(sh.pend)})
		sh.free <- b.recs
	}
}

// BeginGroup implements ir.Tracer.
func (s *Sharded) BeginGroup(g int) {
	s.flushScratch()
	s.group = g
}

// Access implements ir.Tracer (the streaming fallback): records buffer
// until the group ends.
func (s *Sharded) Access(addr, size int64, write bool) {
	s.scratch = append(s.scratch, ir.Access{Addr: addr, Size: size, Write: write})
}

// AccessBatch implements ir.BatchTracer: one workgroup's accesses, routed
// to the executing core's shard. The slice is copied (the engine recycles
// it after the call returns).
func (s *Sharded) AccessBatch(g int, recs []ir.Access) {
	if len(recs) == 0 {
		return
	}
	core := s.h.clampCore(s.coreOf(g))
	if s.inline {
		s.stalls[core] = s.h.AccessRange(core, recs, s.writeFactor, s.stalls[core])
		return
	}
	sh := s.shards[core]
	buf := <-sh.free
	buf = append(buf[:0], recs...)
	sh.in <- batch{recs: buf}
	s.order = append(s.order, int32(core))
}

func (s *Sharded) flushScratch() {
	if len(s.scratch) == 0 {
		return
	}
	s.AccessBatch(s.group, s.scratch)
	s.scratch = s.scratch[:0]
}

// Finish implements Sim: it joins the phase-1 workers, replays the merged
// per-core miss streams through the shared L3 in group order (phase 2),
// and returns the per-core stall cycles. Idempotent.
func (s *Sharded) Finish() map[int]float64 {
	if s.finished {
		return s.stalls
	}
	s.finished = true
	s.flushScratch()
	if s.inline {
		return s.stalls
	}
	for _, sh := range s.shards {
		close(sh.in)
	}
	for _, sh := range s.shards {
		<-sh.done
	}

	type cursor struct{ span, acc, pend int }
	cur := make([]cursor, len(s.shards))
	l3 := s.h.l3
	l3lat := l3.Latency()
	memLat := l3lat + s.h.memLat
	stalls := make(map[int]float64, len(s.shards))
	for _, core := range s.order {
		sh := s.shards[core]
		c := &cur[core]
		end := sh.spans[c.span].acc
		c.span++
		acc := stalls[int(core)]
		for ; c.acc < end; c.acc++ {
			r := &sh.accs[c.acc]
			worst := r.resolved
			for n := int32(0); n < r.npend; n++ {
				la := sh.pend[c.pend]
				c.pend++
				lat := memLat
				if l3.lookupLine(la) {
					lat = l3lat
				}
				if lat > worst {
					worst = lat
				}
			}
			lat := worst + float64(r.extra)
			if r.write {
				lat *= s.writeFactor
			}
			acc += lat
		}
		stalls[int(core)] = acc
	}
	s.stalls = stalls
	return stalls
}

// interface conformance
var (
	_ Sim = (*Serial)(nil)
	_ Sim = (*Sharded)(nil)
)
