package cache

import (
	"testing"
	"testing/quick"

	"clperf/internal/arch"
	"clperf/internal/units"
)

func smallGeom() arch.CacheGeom {
	return arch.CacheGeom{Size: 4 * units.Kibibyte, LineSize: 64, Assoc: 4, Latency: 4}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := New(smallGeom())
	if c.Lookup(0x1000) {
		t.Fatal("first access must miss")
	}
	if !c.Lookup(0x1000) {
		t.Fatal("second access must hit")
	}
	if !c.Lookup(0x1000 + 63) {
		t.Fatal("same-line access must hit")
	}
	if c.Lookup(0x1000 + 64) {
		t.Fatal("next-line access must miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 4 accesses 2 hits", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	g := smallGeom() // 16 sets x 4 ways
	c := New(g)
	sets := g.Sets()
	// Fill one set with assoc lines, then one more: the first goes.
	stride := sets * g.LineSize
	for i := int64(0); i < 4; i++ {
		c.Lookup(i * stride)
	}
	// Touch line 0 to make line 1 the LRU victim.
	if !c.Lookup(0) {
		t.Fatal("line 0 should still be resident")
	}
	c.Lookup(4 * stride) // evicts line 1
	if !c.Lookup(0) {
		t.Fatal("line 0 must survive (recently used)")
	}
	if c.Lookup(1 * stride) {
		t.Fatal("line 1 must have been evicted as LRU")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// Property: a working set within capacity hits 100% after one warmup
	// pass (power-of-two strides map uniformly).
	g := smallGeom()
	c := New(g)
	lines := int64(g.Size) / g.LineSize
	for i := int64(0); i < lines; i++ {
		c.Lookup(i * g.LineSize)
	}
	c.Reset()
	for pass := 0; pass < 3; pass++ {
		for i := int64(0); i < lines; i++ {
			hit := c.Lookup(i * g.LineSize)
			if pass > 0 && !hit {
				t.Fatalf("pass %d line %d missed although the set fits", pass, i)
			}
		}
	}
}

func TestCacheReset(t *testing.T) {
	c := New(smallGeom())
	c.Lookup(0)
	c.Reset()
	if c.Lookup(0) {
		t.Fatal("lookup after Reset must miss")
	}
	if st := c.Stats(); st.Accesses != 1 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	if c.Lookup(0) {
		t.Fatal("nil cache must always miss")
	}
	if c.Contains(0) {
		t.Fatal("nil cache contains nothing")
	}
	if New(arch.CacheGeom{}) != nil {
		t.Fatal("zero geometry must yield nil cache")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(arch.XeonE5645())
	const addr = 0x100000

	// Cold: all levels miss -> DRAM latency.
	lat := h.Access(0, addr, 4, false)
	if lat < 200 {
		t.Fatalf("cold access latency %v, want >= DRAM (200)", lat)
	}
	// Warm on the same core: L1 hit.
	if lat := h.Access(0, addr, 4, false); lat != 4 {
		t.Fatalf("warm same-core access latency %v, want 4 (L1)", lat)
	}
	// Another core: private caches miss, shared L3 hits.
	if lat := h.Access(1, addr, 4, false); lat != 40 {
		t.Fatalf("other-core access latency %v, want 40 (L3)", lat)
	}
	if lv := h.Level(0, addr); lv != 1 {
		t.Fatalf("Level(core0) = %d, want 1", lv)
	}
	if lv := h.Level(2, addr); lv != 3 {
		t.Fatalf("Level(core2) = %d, want 3 (shared L3 only)", lv)
	}
}

func TestHierarchyMultiLineAccess(t *testing.T) {
	h := NewHierarchy(arch.XeonE5645())
	// Warm two adjacent lines.
	h.Access(0, 0x2000, 4, false)
	h.Access(0, 0x2040, 4, false)
	// An access spanning both lines hits both: latency = L1 + 1 extra line.
	if lat := h.Access(0, 0x203c, 8, false); lat != 5 {
		t.Fatalf("spanning access latency %v, want 5", lat)
	}
}

func TestHierarchyStats(t *testing.T) {
	h := NewHierarchy(arch.XeonE5645())
	for i := int64(0); i < 100; i++ {
		h.Access(0, i*64, 4, i%2 == 0)
	}
	l1, _ := h.CoreStats(0)
	if l1.Accesses != 100 {
		t.Fatalf("L1 accesses = %d, want 100", l1.Accesses)
	}
	if h.L3Stats().Accesses == 0 {
		t.Fatal("L3 must see the misses")
	}
	h.Reset()
	l1, _ = h.CoreStats(0)
	if l1.Accesses != 0 {
		t.Fatal("Reset must clear stats")
	}
}

// Property: a second touch of any address on the same core is at least as
// fast as the first.
func TestRepeatedAccessNotSlower(t *testing.T) {
	h := NewHierarchy(arch.XeonE5645())
	prop := func(addrRaw uint32, core uint8) bool {
		addr := int64(addrRaw) & 0xFFFFFF
		c := int(core) % h.Cores()
		first := h.Access(c, addr, 4, false)
		second := h.Access(c, addr, 4, false)
		return second <= first
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStatsHitRate(t *testing.T) {
	s := Stats{Accesses: 10, Hits: 9}
	if s.HitRate() != 0.9 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	if s.Misses() != 1 {
		t.Errorf("Misses = %v", s.Misses())
	}
	if (Stats{}).HitRate() != 1 {
		t.Error("idle cache hit rate must be 1")
	}
}
