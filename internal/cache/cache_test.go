package cache

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"clperf/internal/arch"
	"clperf/internal/ir"
	"clperf/internal/units"
)

func smallGeom() arch.CacheGeom {
	return arch.CacheGeom{Size: 4 * units.Kibibyte, LineSize: 64, Assoc: 4, Latency: 4}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := New(smallGeom())
	if c.Lookup(0x1000) {
		t.Fatal("first access must miss")
	}
	if !c.Lookup(0x1000) {
		t.Fatal("second access must hit")
	}
	if !c.Lookup(0x1000 + 63) {
		t.Fatal("same-line access must hit")
	}
	if c.Lookup(0x1000 + 64) {
		t.Fatal("next-line access must miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 4 accesses 2 hits", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	g := smallGeom() // 16 sets x 4 ways
	c := New(g)
	sets := g.Sets()
	// Fill one set with assoc lines, then one more: the first goes.
	stride := sets * g.LineSize
	for i := int64(0); i < 4; i++ {
		c.Lookup(i * stride)
	}
	// Touch line 0 to make line 1 the LRU victim.
	if !c.Lookup(0) {
		t.Fatal("line 0 should still be resident")
	}
	c.Lookup(4 * stride) // evicts line 1
	if !c.Lookup(0) {
		t.Fatal("line 0 must survive (recently used)")
	}
	if c.Lookup(1 * stride) {
		t.Fatal("line 1 must have been evicted as LRU")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// Property: a working set within capacity hits 100% after one warmup
	// pass (power-of-two strides map uniformly).
	g := smallGeom()
	c := New(g)
	lines := int64(g.Size) / g.LineSize
	for i := int64(0); i < lines; i++ {
		c.Lookup(i * g.LineSize)
	}
	c.Reset()
	for pass := 0; pass < 3; pass++ {
		for i := int64(0); i < lines; i++ {
			hit := c.Lookup(i * g.LineSize)
			if pass > 0 && !hit {
				t.Fatalf("pass %d line %d missed although the set fits", pass, i)
			}
		}
	}
}

func TestCacheReset(t *testing.T) {
	c := New(smallGeom())
	c.Lookup(0)
	c.Reset()
	if c.Lookup(0) {
		t.Fatal("lookup after Reset must miss")
	}
	if st := c.Stats(); st.Accesses != 1 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	if c.Lookup(0) {
		t.Fatal("nil cache must always miss")
	}
	if c.Contains(0) {
		t.Fatal("nil cache contains nothing")
	}
	if New(arch.CacheGeom{}) != nil {
		t.Fatal("zero geometry must yield nil cache")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(arch.XeonE5645())
	const addr = 0x100000

	// Cold: all levels miss -> DRAM latency.
	lat := h.Access(0, addr, 4, false)
	if lat < 200 {
		t.Fatalf("cold access latency %v, want >= DRAM (200)", lat)
	}
	// Warm on the same core: L1 hit.
	if lat := h.Access(0, addr, 4, false); lat != 4 {
		t.Fatalf("warm same-core access latency %v, want 4 (L1)", lat)
	}
	// Another core: private caches miss, shared L3 hits.
	if lat := h.Access(1, addr, 4, false); lat != 40 {
		t.Fatalf("other-core access latency %v, want 40 (L3)", lat)
	}
	if lv := h.Level(0, addr); lv != 1 {
		t.Fatalf("Level(core0) = %d, want 1", lv)
	}
	if lv := h.Level(2, addr); lv != 3 {
		t.Fatalf("Level(core2) = %d, want 3 (shared L3 only)", lv)
	}
}

func TestHierarchyMultiLineAccess(t *testing.T) {
	h := NewHierarchy(arch.XeonE5645())
	// Warm two adjacent lines.
	h.Access(0, 0x2000, 4, false)
	h.Access(0, 0x2040, 4, false)
	// An access spanning both lines hits both: latency = L1 + 1 extra line.
	if lat := h.Access(0, 0x203c, 8, false); lat != 5 {
		t.Fatalf("spanning access latency %v, want 5", lat)
	}
}

func TestHierarchyStats(t *testing.T) {
	h := NewHierarchy(arch.XeonE5645())
	for i := int64(0); i < 100; i++ {
		h.Access(0, i*64, 4, i%2 == 0)
	}
	l1, _ := h.CoreStats(0)
	if l1.Accesses != 100 {
		t.Fatalf("L1 accesses = %d, want 100", l1.Accesses)
	}
	if h.L3Stats().Accesses == 0 {
		t.Fatal("L3 must see the misses")
	}
	h.Reset()
	l1, _ = h.CoreStats(0)
	if l1.Accesses != 0 {
		t.Fatal("Reset must clear stats")
	}
}

// Property: a second touch of any address on the same core is at least as
// fast as the first.
func TestRepeatedAccessNotSlower(t *testing.T) {
	h := NewHierarchy(arch.XeonE5645())
	prop := func(addrRaw uint32, core uint8) bool {
		addr := int64(addrRaw) & 0xFFFFFF
		c := int(core) % h.Cores()
		first := h.Access(c, addr, 4, false)
		second := h.Access(c, addr, 4, false)
		return second <= first
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStatsHitRate(t *testing.T) {
	s := Stats{Accesses: 10, Hits: 9}
	if s.HitRate() != 0.9 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	if s.Misses() != 1 {
		t.Errorf("Misses = %v", s.Misses())
	}
	if (Stats{}).HitRate() != 1 {
		t.Error("idle cache hit rate must be 1")
	}
}

// TestCacheEvictionOrderGolden pins the single-pass victim-selection
// semantics: invalid ways fill first (lowest index), then the
// least-recently-used way goes, lowest index winning ties. The golden
// sequence documents exactly which resident set each access leaves behind.
func TestCacheEvictionOrderGolden(t *testing.T) {
	g := smallGeom() // 16 sets x 4 ways
	c := New(g)
	stride := g.Sets() * g.LineSize // all addresses below land in set 0
	addr := func(i int64) int64 { return i * stride }

	steps := []struct {
		addr    int64
		hit     bool
		present []int64 // resident lines (by index) after the access
	}{
		{addr(0), false, []int64{0}},          // fill way 0
		{addr(1), false, []int64{0, 1}},       // fill way 1
		{addr(2), false, []int64{0, 1, 2}},    // fill way 2
		{addr(3), false, []int64{0, 1, 2, 3}}, // fill way 3 (set full)
		{addr(0), true, []int64{0, 1, 2, 3}},  // refresh 0: LRU is now 1
		{addr(4), false, []int64{0, 2, 3, 4}}, // evicts 1 (LRU)
		{addr(2), true, []int64{0, 2, 3, 4}},  // refresh 2: LRU is now 3
		{addr(5), false, []int64{0, 2, 4, 5}}, // evicts 3
		{addr(6), false, []int64{2, 4, 5, 6}}, // evicts 0 (oldest touch)
		{addr(1), false, []int64{1, 2, 5, 6}}, // 1 misses (was evicted), evicts 4
	}
	for step, s := range steps {
		if hit := c.Lookup(s.addr); hit != s.hit {
			t.Fatalf("step %d: Lookup(%#x) hit=%v, want %v", step, s.addr, hit, s.hit)
		}
		for i := int64(0); i < 8; i++ {
			want := false
			for _, p := range s.present {
				if p == i {
					want = true
				}
			}
			if got := c.Contains(addr(i)); got != want {
				t.Fatalf("step %d: Contains(line %d) = %v, want %v (after %#x)",
					step, i, got, want, s.addr)
			}
		}
	}
}

// TestNewValidatesGeometry: line sizes must be powers of two (the shift
// fast path depends on it); set counts need not be (the Xeon E5645 L3 has
// 12288 sets and takes the modulo path).
func TestNewValidatesGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on a non-power-of-two line size")
		}
	}()
	New(arch.CacheGeom{Size: 4 * units.Kibibyte, LineSize: 48, Assoc: 4, Latency: 4})
}

// TestNonPow2SetCount exercises the modulo set-index fallback with the
// real Xeon L3 geometry (12 MiB / 64 B / 16-way = 12288 sets).
func TestNonPow2SetCount(t *testing.T) {
	l3 := arch.XeonE5645().L3
	if s := l3.Sets(); s&(s-1) == 0 {
		t.Fatalf("test premise broken: L3 sets %d is a power of two", s)
	}
	c := New(l3)
	// Distinct sets stay distinct; refills hit.
	for i := int64(0); i < 1000; i++ {
		if c.Lookup(i * 64) {
			t.Fatalf("cold line %d hit", i)
		}
	}
	for i := int64(0); i < 1000; i++ {
		if !c.Lookup(i * 64) {
			t.Fatalf("warm line %d missed", i)
		}
	}
}

// TestAccessRangeMatchesAccess: the batched fast path must be bit-identical
// to the per-access loop it replaces, including the store scaling and the
// float accumulation order.
func TestAccessRangeMatchesAccess(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ha := NewHierarchy(arch.XeonE5645())
		hb := NewHierarchy(arch.XeonE5645())
		const wf = StoreWriteFactor
		recs := make([]ir.Access, 300)
		for i := range recs {
			size := int64(4 << rng.Intn(2))
			if rng.Intn(8) == 0 {
				size = 60 + rng.Int63n(70)
			}
			recs[i] = ir.Access{
				Addr:  rng.Int63n(1 << 22),
				Size:  size,
				Write: rng.Intn(3) == 0,
			}
		}
		core := rng.Intn(ha.Cores())
		want := 0.0
		for _, a := range recs {
			lat := ha.Access(core, a.Addr, a.Size, a.Write)
			if a.Write {
				lat *= wf
			}
			want += lat
		}
		got := hb.AccessRange(core, recs, wf, 0)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Logf("seed %d: AccessRange %v, Access-loop %v", seed, got, want)
			return false
		}
		a1, a2 := ha.CoreStats(core)
		b1, b2 := hb.CoreStats(core)
		return a1 == b1 && a2 == b2 && ha.L3Stats() == hb.L3Stats()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
