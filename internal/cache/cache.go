// Package cache implements a set-associative cache simulator and the
// private-L1/private-L2/shared-L3 hierarchy of the modeled CPU.
//
// The locality experiments (the paper's affinity study, Figure 9, and the
// Matrixmul workgroup-size study) feed real kernel access streams through a
// Hierarchy and convert hit levels into access latencies.
package cache

import (
	"fmt"

	"clperf/internal/arch"
	"clperf/internal/obs"
)

// Stats counts accesses and hits for one cache.
type Stats struct {
	Accesses uint64
	Hits     uint64
}

// Misses returns the miss count.
func (s Stats) Misses() uint64 { return s.Accesses - s.Hits }

// HitRate returns hits/accesses (1 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// String formats the stats.
func (s Stats) String() string {
	return fmt.Sprintf("%d accesses, %.1f%% hits", s.Accesses, 100*s.HitRate())
}

type line struct {
	tag   int64
	valid bool
	used  uint64 // LRU timestamp
}

// Cache is one set-associative, LRU, write-allocate cache level.
type Cache struct {
	sets     [][]line
	nsets    int64
	lineSize int64
	latency  float64
	tick     uint64
	stats    Stats
}

// New builds a cache from its geometry. Geometries with zero size return a
// nil cache, which Lookup treats as a permanent miss.
func New(g arch.CacheGeom) *Cache {
	nsets := g.Sets()
	if nsets <= 0 {
		return nil
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*int64(g.Assoc))
	for i := range sets {
		sets[i], backing = backing[:g.Assoc], backing[g.Assoc:]
	}
	return &Cache{sets: sets, nsets: nsets, lineSize: g.LineSize, latency: g.Latency}
}

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() float64 { return c.latency }

// Stats returns access statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.tick = 0
	c.stats = Stats{}
}

// Lookup probes the cache for the line containing addr, filling it on a
// miss (the victim is the LRU way). It reports whether the probe hit.
func (c *Cache) Lookup(addr int64) bool {
	if c == nil {
		return false
	}
	c.tick++
	c.stats.Accesses++
	lineAddr := addr / c.lineSize
	set := c.sets[lineAddr%c.nsets]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].used = c.tick
			c.stats.Hits++
			return true
		}
		if set[i].used < set[victim].used || !set[i].valid && set[victim].valid {
			victim = i
		}
	}
	// Prefer an invalid way over the LRU victim.
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	set[victim] = line{tag: lineAddr, valid: true, used: c.tick}
	return false
}

// Contains probes without updating LRU state or statistics.
func (c *Cache) Contains(addr int64) bool {
	if c == nil {
		return false
	}
	lineAddr := addr / c.lineSize
	set := c.sets[lineAddr%c.nsets]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// Hierarchy models per-core private L1D and L2 caches in front of a shared
// L3 and DRAM, as on the Xeon E5645.
type Hierarchy struct {
	l1, l2 []*Cache
	l3     *Cache
	memLat float64
	line   int64
}

// NewHierarchy builds the hierarchy for the given CPU description.
func NewHierarchy(c *arch.CPU) *Hierarchy {
	n := c.PhysicalCores()
	h := &Hierarchy{
		l1:     make([]*Cache, n),
		l2:     make([]*Cache, n),
		l3:     New(c.L3),
		memLat: c.MemLatency,
		line:   c.L1D.LineSize,
	}
	for i := 0; i < n; i++ {
		h.l1[i] = New(c.L1D)
		h.l2[i] = New(c.L2)
	}
	return h
}

// Cores returns the number of private cache slices.
func (h *Hierarchy) Cores() int { return len(h.l1) }

// Access simulates one access of size bytes at addr by the given physical
// core, returning the latency in cycles. Accesses spanning multiple lines
// cost the slowest line plus one cycle per extra line.
func (h *Hierarchy) Access(core int, addr, size int64, write bool) float64 {
	if core < 0 || core >= len(h.l1) {
		core = 0
	}
	first := addr / h.line
	last := (addr + size - 1) / h.line
	worst := 0.0
	for la := first; la <= last; la++ {
		lat := h.accessLine(core, la*h.line)
		if lat > worst {
			worst = lat
		}
	}
	return worst + float64(last-first)
}

func (h *Hierarchy) accessLine(core int, addr int64) float64 {
	if h.l1[core].Lookup(addr) {
		return h.l1[core].Latency()
	}
	if h.l2[core].Lookup(addr) {
		return h.l2[core].Latency()
	}
	if h.l3.Lookup(addr) {
		return h.l3.Latency()
	}
	return h.l3.Latency() + h.memLat
}

// Level reports the highest level containing addr for the core: 1, 2, 3 or
// 0 when the line is only in memory. It does not disturb cache state.
func (h *Hierarchy) Level(core int, addr int64) int {
	switch {
	case h.l1[core].Contains(addr):
		return 1
	case h.l2[core].Contains(addr):
		return 2
	case h.l3.Contains(addr):
		return 3
	default:
		return 0
	}
}

// Reset clears every cache in the hierarchy.
func (h *Hierarchy) Reset() {
	for i := range h.l1 {
		h.l1[i].Reset()
		h.l2[i].Reset()
	}
	h.l3.Reset()
}

// CoreStats returns (L1, L2) statistics for a core.
func (h *Hierarchy) CoreStats(core int) (Stats, Stats) {
	return h.l1[core].Stats(), h.l2[core].Stats()
}

// L3Stats returns the shared L3 statistics.
func (h *Hierarchy) L3Stats() Stats { return h.l3.Stats() }

// PublishMetrics writes the hierarchy's aggregate hit/miss statistics
// into the registry as gauges: per-level accesses, hits and hit rate
// (L1/L2 summed across cores). Safe on a nil registry.
func (h *Hierarchy) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	var l1, l2 Stats
	for i := range h.l1 {
		s1, s2 := h.CoreStats(i)
		l1.Accesses += s1.Accesses
		l1.Hits += s1.Hits
		l2.Accesses += s2.Accesses
		l2.Hits += s2.Hits
	}
	publish := func(level string, s Stats) {
		reg.Set("cache."+level+".accesses", float64(s.Accesses))
		reg.Set("cache."+level+".hits", float64(s.Hits))
		reg.Set("cache."+level+".hitrate", s.HitRate())
	}
	publish("l1", l1)
	publish("l2", l2)
	publish("l3", h.L3Stats())
}
