// Package cache implements a set-associative cache simulator and the
// private-L1/private-L2/shared-L3 hierarchy of the modeled CPU.
//
// The locality experiments (the paper's affinity study, Figure 9, and the
// Matrixmul workgroup-size study) feed real kernel access streams through a
// Hierarchy and convert hit levels into access latencies. Two simulators
// share the Hierarchy state: the serial reference (Access/AccessRange and
// the Serial tracer) and the two-phase sharded engine (Sharded), which
// exploits that L1/L2 are private per core to simulate them concurrently
// while replaying the merged miss stream through the shared L3 in
// deterministic group order. The serial simulator is the differential
// oracle for the sharded one, the same way ir.ExecRangeOracle anchors the
// compiled execution engine.
package cache

import (
	"fmt"

	"clperf/internal/arch"
	"clperf/internal/ir"
	"clperf/internal/obs"
)

// Stats counts accesses and hits for one cache.
type Stats struct {
	Accesses uint64
	Hits     uint64
}

// Misses returns the miss count.
func (s Stats) Misses() uint64 { return s.Accesses - s.Hits }

// HitRate returns hits/accesses (1 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// String formats the stats.
func (s Stats) String() string {
	return fmt.Sprintf("%d accesses, %.1f%% hits", s.Accesses, 100*s.HitRate())
}

// line is one cache line: a tag (the line address) and the LRU
// timestamp. tag < 0 marks an invalid way — simulated addresses are
// non-negative, so no real line can collide with the sentinel, and the
// hit scan needs a single compare per way.
type line struct {
	tag  int64
	used uint64 // LRU timestamp
}

// Cache is one set-associative, LRU, write-allocate cache level.
//
// The lines live in one flat array with the ways of a set contiguous
// (lines[set*assoc : (set+1)*assoc]), so a probe touches one region of
// memory. Line addresses come from a shift (line sizes are validated to be
// powers of two) and the set index from a mask when the set count is also
// a power of two; geometries with a non-power-of-two set count (the Xeon
// E5645's 12 MiB L3 has 12288 sets) keep the exact modulo mapping so the
// simulated contents stay identical to the historical slice-of-slices
// implementation.
type Cache struct {
	lines []line
	// mru indexes the way of the last hit or fill. Tags are full line
	// addresses (globally unique — a line maps to exactly one set), so a
	// tag match on the hinted way is always the right way; a stale hint
	// simply misses the compare and falls through to the set scan. Purely
	// a shortcut: LRU order and statistics are unchanged.
	mru       int64
	assoc     int64
	nsets     int64
	setMask   int64 // nsets-1 when nsets is a power of two, else -1
	lineShift uint8 // log2(lineSize)
	lineSize  int64
	latency   float64
	tick      uint64
	stats     Stats
}

// New builds a cache from its geometry. Geometries with zero size return a
// nil cache, which Lookup treats as a permanent miss. Line sizes must be
// powers of two (every real cache's is); anything else is a configuration
// bug and panics.
func New(g arch.CacheGeom) *Cache {
	nsets := g.Sets()
	if nsets <= 0 {
		return nil
	}
	if g.LineSize&(g.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d is not a power of two", g.LineSize))
	}
	c := &Cache{
		lines:    make([]line, nsets*int64(g.Assoc)),
		assoc:    int64(g.Assoc),
		nsets:    nsets,
		setMask:  -1,
		lineSize: g.LineSize,
		latency:  g.Latency,
	}
	for i := range c.lines {
		c.lines[i].tag = -1
	}
	for ls := g.LineSize; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	if nsets&(nsets-1) == 0 {
		c.setMask = nsets - 1
	}
	return c
}

// Latency returns the hit latency in cycles (0 for a nil cache, which
// never hits).
func (c *Cache) Latency() float64 {
	if c == nil {
		return 0
	}
	return c.latency
}

// Stats returns access statistics.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return c.stats
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	for i := range c.lines {
		c.lines[i] = line{tag: -1}
	}
	c.mru = 0
	c.tick = 0
	c.stats = Stats{}
}

// set returns the set index of a (non-negative) line address.
func (c *Cache) set(lineAddr int64) int64 {
	if c.setMask >= 0 {
		return lineAddr & c.setMask
	}
	return lineAddr % c.nsets
}

// Lookup probes the cache for the line containing addr (addr must be
// non-negative), filling it on a miss. The victim is an invalid way when
// one exists (lowest index first), otherwise the LRU way (lowest index on
// timestamp ties). It reports whether the probe hit.
func (c *Cache) Lookup(addr int64) bool {
	if c == nil {
		return false
	}
	return c.lookupLine(addr >> c.lineShift)
}

// lookupLine is Lookup on a line number (addr >> lineShift) — the
// internal entry point for callers that already work in line units
// (AccessRange, the shard workers, the L3 replay) and would otherwise
// multiply back to a byte address only for Lookup to shift it away.
func (c *Cache) lookupLine(lineAddr int64) bool {
	if c == nil {
		return false
	}
	c.tick++
	c.stats.Accesses++
	if w := &c.lines[c.mru]; w.tag == lineAddr {
		w.used = c.tick
		c.stats.Hits++
		return true
	}
	base := c.set(lineAddr) * c.assoc
	ways := c.lines[base : base+c.assoc]
	// Hit scan first: the common case pays one compare per way and no
	// victim bookkeeping.
	for i := range ways {
		if ways[i].tag == lineAddr {
			c.mru = base + int64(i)
			ways[i].used = c.tick
			c.stats.Hits++
			return true
		}
	}
	// Miss: the victim is the first invalid way if any (tag < 0; nothing
	// before it was invalid, so breaking keeps "lowest index first"),
	// otherwise the LRU way (strict < keeps the lowest index on ties).
	victim := 0
	for i := range ways {
		if ways[i].tag < 0 {
			victim = i
			break
		}
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	c.mru = base + int64(victim)
	ways[victim] = line{tag: lineAddr, used: c.tick}
	return false
}

// Contains probes without updating LRU state or statistics.
func (c *Cache) Contains(addr int64) bool {
	if c == nil {
		return false
	}
	lineAddr := addr >> c.lineShift
	base := c.set(lineAddr) * c.assoc
	ways := c.lines[base : base+c.assoc]
	for i := range ways {
		if ways[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// Hierarchy models per-core private L1D and L2 caches in front of a shared
// L3 and DRAM, as on the Xeon E5645.
type Hierarchy struct {
	l1, l2    []*Cache
	l3        *Cache
	memLat    float64
	line      int64
	lineShift uint8
}

// NewHierarchy builds the hierarchy for the given CPU description.
func NewHierarchy(c *arch.CPU) *Hierarchy {
	n := c.PhysicalCores()
	h := &Hierarchy{
		l1:     make([]*Cache, n),
		l2:     make([]*Cache, n),
		l3:     New(c.L3),
		memLat: c.MemLatency,
		line:   c.L1D.LineSize,
	}
	for ls := h.line; ls > 1; ls >>= 1 {
		h.lineShift++
	}
	for i := 0; i < n; i++ {
		h.l1[i] = New(c.L1D)
		h.l2[i] = New(c.L2)
	}
	return h
}

// Cores returns the number of private cache slices.
func (h *Hierarchy) Cores() int { return len(h.l1) }

// clampCore maps out-of-range cores to 0, as Access always has.
func (h *Hierarchy) clampCore(core int) int {
	if core < 0 || core >= len(h.l1) {
		return 0
	}
	return core
}

// Access simulates one access of size bytes at addr (non-negative) by the
// given physical core, returning the latency in cycles. Accesses spanning
// multiple lines cost the slowest line plus one cycle per extra line.
func (h *Hierarchy) Access(core int, addr, size int64, write bool) float64 {
	core = h.clampCore(core)
	first := addr >> h.lineShift
	last := (addr + size - 1) >> h.lineShift
	worst := 0.0
	for la := first; la <= last; la++ {
		lat := h.accessLine(core, la*h.line)
		if lat > worst {
			worst = lat
		}
	}
	return worst + float64(last-first)
}

// AccessRange simulates every access in recs by the given core and
// returns acc with each record's latency added in order, writes scaled by
// writeFactor (the store buffer hides part of a store miss). One call per
// workgroup batch amortizes the per-access call overhead of the fused
// affine gathers the execution engine emits; the accumulation sequence is
// bit-identical to calling Access per record and adding each scaled
// latency into acc.
func (h *Hierarchy) AccessRange(core int, recs []ir.Access, writeFactor, acc float64) float64 {
	core = h.clampCore(core)
	l1, l2, l3 := h.l1[core], h.l2[core], h.l3
	l1lat, l2lat, l3lat := l1.Latency(), l2.Latency(), l3.Latency()
	memLat := l3lat + h.memLat
	for _, a := range recs {
		if a.Kind != ir.KindGlobal {
			// Barrier markers carry no memory traffic.
			continue
		}
		first := a.Addr >> h.lineShift
		last := (a.Addr + a.Size - 1) >> h.lineShift
		var lat float64
		if first == last {
			// Single-line fast path: the dominant case skips the
			// worst-of-lines loop. Bit-identical: with one line, worst is
			// that line's latency and the extra-line term is +0.0, which
			// preserves every non-negative float.
			switch {
			case l1.lookupLine(first):
				lat = l1lat
			case l2.lookupLine(first):
				lat = l2lat
			case l3.lookupLine(first):
				lat = l3lat
			default:
				lat = memLat
			}
		} else {
			worst := 0.0
			for la := first; la <= last; la++ {
				var ll float64
				switch {
				case l1.lookupLine(la):
					ll = l1lat
				case l2.lookupLine(la):
					ll = l2lat
				case l3.lookupLine(la):
					ll = l3lat
				default:
					ll = memLat
				}
				if ll > worst {
					worst = ll
				}
			}
			lat = worst + float64(last-first)
		}
		if a.Write {
			lat *= writeFactor
		}
		acc += lat
	}
	return acc
}

func (h *Hierarchy) accessLine(core int, addr int64) float64 {
	if h.l1[core].Lookup(addr) {
		return h.l1[core].Latency()
	}
	if h.l2[core].Lookup(addr) {
		return h.l2[core].Latency()
	}
	if h.l3.Lookup(addr) {
		return h.l3.Latency()
	}
	return h.l3.Latency() + h.memLat
}

// Level reports the highest level containing addr for the core: 1, 2, 3 or
// 0 when the line is only in memory. It does not disturb cache state.
func (h *Hierarchy) Level(core int, addr int64) int {
	switch {
	case h.l1[core].Contains(addr):
		return 1
	case h.l2[core].Contains(addr):
		return 2
	case h.l3.Contains(addr):
		return 3
	default:
		return 0
	}
}

// Reset clears every cache in the hierarchy.
func (h *Hierarchy) Reset() {
	for i := range h.l1 {
		h.l1[i].Reset()
		h.l2[i].Reset()
	}
	h.l3.Reset()
}

// CoreStats returns (L1, L2) statistics for a core.
func (h *Hierarchy) CoreStats(core int) (Stats, Stats) {
	return h.l1[core].Stats(), h.l2[core].Stats()
}

// L3Stats returns the shared L3 statistics.
func (h *Hierarchy) L3Stats() Stats { return h.l3.Stats() }

// PublishMetrics writes the hierarchy's hit/miss statistics into the
// registry under the "cache" prefix. Safe on a nil registry.
func (h *Hierarchy) PublishMetrics(reg *obs.Registry) {
	h.PublishMetricsPrefix(reg, "cache")
}

// PublishMetricsPrefix writes the hierarchy's hit/miss statistics into the
// registry as gauges under the given prefix: per-level accesses, hits and
// hit rate (L1/L2 summed across cores), plus per-core L1/L2 accesses and
// hit rates (<prefix>.l1.core<N>.hitrate), which expose the affinity
// experiment's locality skew. Idle cores (zero accesses) are omitted from
// the per-core gauges. Safe on a nil registry.
func (h *Hierarchy) PublishMetricsPrefix(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	publish := func(level string, s Stats) {
		reg.Set(prefix+"."+level+".accesses", float64(s.Accesses))
		reg.Set(prefix+"."+level+".hits", float64(s.Hits))
		reg.Set(prefix+"."+level+".hitrate", s.HitRate())
	}
	var l1, l2 Stats
	for i := range h.l1 {
		s1, s2 := h.CoreStats(i)
		l1.Accesses += s1.Accesses
		l1.Hits += s1.Hits
		l2.Accesses += s2.Accesses
		l2.Hits += s2.Hits
		if s1.Accesses > 0 {
			publish(fmt.Sprintf("l1.core%d", i), s1)
		}
		if s2.Accesses > 0 {
			publish(fmt.Sprintf("l2.core%d", i), s2)
		}
	}
	publish("l1", l1)
	publish("l2", l2)
	publish("l3", h.L3Stats())
}
