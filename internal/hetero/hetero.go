// Package hetero implements CPU+GPU co-execution — the motivation the
// paper opens with ("CPUs can also be utilized to increase the performance
// of OpenCL applications by using both CPUs and GPUs") — via static task
// partitioning in the style of Grewe & O'Boyle (the paper's reference
// [16]): the device models price every split of the NDRange, the
// partitioner picks the one minimizing the makespan, and Execute really
// runs both halves.
//
// Partitioning is along dimension 0: the CPU takes the leading fraction of
// workgroups, the GPU the rest (plus its share of PCIe traffic).
package hetero

import (
	"fmt"

	"clperf/internal/cpu"
	"clperf/internal/gpu"
	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/predict"
	"clperf/internal/search"
	"clperf/internal/units"
)

// Split describes one partition of an NDRange between the two devices.
type Split struct {
	// CPUFrac is the fraction of dimension-0 workgroups on the CPU.
	CPUFrac float64
	// CPUItems and GPUItems are the resulting workitem counts.
	CPUItems, GPUItems int
	// CPUTime and GPUTime are each device's simulated busy time; GPUTime
	// includes the PCIe transfer for its share of the buffers.
	CPUTime, GPUTime units.Duration
	// Time is the makespan: the devices run concurrently.
	Time units.Duration
}

// String summarizes the split.
func (s *Split) String() string {
	return fmt.Sprintf("CPU %.0f%% (%d items, %v) | GPU %.0f%% (%d items, %v) -> %v",
		100*s.CPUFrac, s.CPUItems, s.CPUTime,
		100*(1-s.CPUFrac), s.GPUItems, s.GPUTime, s.Time)
}

// Partitioner prices splits against a CPU and a GPU model.
type Partitioner struct {
	CPU *cpu.Device
	GPU *gpu.Device
	// Steps is the granularity of the fraction search (default 16).
	Steps int
	// CPUEval and GPUEval memoize and parallelize the device estimates;
	// NewPartitioner attaches a pair sharing one cache (device
	// fingerprints keep the keys disjoint). Nil evaluators fall back to
	// direct serial estimation. Set .Cache = nil on both to disable
	// memoization (the -nocache A/B path), or .Workers = 1 to force
	// serial evaluation when the devices record onto an order-sensitive
	// recorder.
	CPUEval *search.Evaluator[*cpu.Result]
	GPUEval *search.Evaluator[*gpu.Result]
	// Pred, when set, prunes the split search: CPU shares are scored by
	// the learned cost predictor, GPU shares by scaling one exact
	// full-range estimate with the share's item fraction (plus the exact
	// PCIe term), and only the TopK splits with the best predicted
	// makespan — plus both endpoints — are priced exactly. Nil prices
	// every split (the -nopredict A/B path).
	Pred *predict.Predictor
	// TopK is the surviving split count (predict.DefaultK when 0).
	TopK int
}

// NewPartitioner returns a partitioner over the two devices, with
// memoized parallel evaluators and the default learned cost predictor
// attached.
func NewPartitioner(c *cpu.Device, g *gpu.Device) *Partitioner {
	shared := search.NewCache(0)
	return &Partitioner{
		CPU: c, GPU: g, Steps: 16,
		CPUEval: search.NewEvaluator(c.Fingerprint, c.Estimate, shared,
			func() *obs.Recorder { return c.Obs }),
		GPUEval: search.NewEvaluator(g.Fingerprint, g.Estimate, shared,
			func() *obs.Recorder { return g.Obs }),
		Pred: predict.Default(),
	}
}

// cpuEstimate prices one CPU launch through the evaluator when attached.
func (p *Partitioner) cpuEstimate(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*cpu.Result, error) {
	if p.CPUEval != nil {
		return p.CPUEval.Estimate(k, args, nd)
	}
	return p.CPU.Estimate(k, args, nd)
}

// gpuEstimate prices one GPU launch through the evaluator when attached.
func (p *Partitioner) gpuEstimate(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*gpu.Result, error) {
	if p.GPUEval != nil {
		return p.GPUEval.Estimate(k, args, nd)
	}
	return p.GPU.Estimate(k, args, nd)
}

// splitRange cuts nd's dimension 0 after cpuGroups workgroups, returning
// the two sub-ranges (either may be empty).
func splitRange(nd ir.NDRange, cpuGroups int) (cpuND, gpuND ir.NDRange, ok bool) {
	local := nd.Local[0]
	if local <= 0 {
		return nd, nd, false
	}
	total := nd.Global[0] / local
	if cpuGroups < 0 {
		cpuGroups = 0
	}
	if cpuGroups > total {
		cpuGroups = total
	}
	cpuND, gpuND = nd, nd
	cpuND.Global[0] = cpuGroups * local
	gpuND.Global[0] = (total - cpuGroups) * local
	return cpuND, gpuND, true
}

// gpuShareBytes estimates the bytes the GPU's share of the launch must
// move over PCIe (its fraction of every bound buffer).
func gpuShareBytes(args *ir.Args, frac float64) int64 {
	var total int64
	for _, b := range args.Buffers {
		if b != nil {
			total += b.Bytes()
		}
	}
	return int64(float64(total) * frac)
}

// point is one candidate split: the two device sub-ranges plus each
// side's index into the batched launch lists (-1 for an empty share).
type point struct {
	cpuND, gpuND ir.NDRange
	cpuIdx       int
	gpuIdx       int
}

// pruneSplits applies the learned cost predictor to the split search.
// CPU shares are scored through the regression model (one feature
// extraction for the whole search); GPU shares are predicted by scaling
// one exact full-range GPU estimate with the share's item fraction and
// adding the exact PCIe term — the GPU model is near-linear in items at
// fixed geometry, and the transfer term is exact either way. The TopK
// splits by predicted makespan survive, plus both endpoints (the
// all-GPU and all-CPU baselines), in index order. Any failure falls
// back to the full search.
func (p *Partitioner) pruneSplits(k *ir.Kernel, args *ir.Args, nd ir.NDRange, points []point) []point {
	if p.Pred == nil {
		return points
	}
	topk := p.TopK
	if topk <= 0 {
		topk = predict.DefaultK
	}
	// Endpoints always survive, so pruning only pays past topk+2.
	if len(points) <= topk+2 {
		return points
	}
	f, err := ir.ExtractFeatures(k, args, nd)
	if err != nil {
		return points
	}
	// One exact anchor: the GPU pricing the whole range. Its cache entry
	// is reused when the surviving i=0 endpoint is priced for real.
	fullGPU, err := p.gpuEstimate(k, args, nd)
	if err != nil {
		return points
	}
	totalItems := float64(nd.GlobalItems())
	footprint := predict.ArgBytes(args)

	scores := make([]float64, len(points))
	for i, pt := range points {
		var cpuT, gpuT float64
		if pt.cpuND.Global[0] > 0 {
			cpuT = p.Pred.Score(predict.Input{
				F: f, Arch: p.CPU.A, ND: pt.cpuND,
				Footprint: footprint, ForceScalar: p.CPU.ForceScalar,
			})
		}
		if pt.gpuND.Global[0] > 0 {
			frac := float64(pt.gpuND.Global[0]*maxi(nd.Global[1], 1)) / totalItems
			pcie := p.GPU.A.PCIeLatency +
				p.GPU.A.PCIeBandwidth.Transfer(units.ByteSize(gpuShareBytes(args, frac)))
			gpuT = float64(fullGPU.Time)*frac + float64(pcie)
		}
		scores[i] = cpuT
		if gpuT > scores[i] {
			scores[i] = gpuT
		}
	}
	keep := predict.TopK(scores, topk, 0, len(points)-1)
	out := make([]point, len(keep))
	for i, idx := range keep {
		out[i] = points[idx]
	}
	if p.CPUEval != nil {
		p.CPUEval.NotePruned(len(points), len(out))
	}
	return out
}

// Partition prices every split at the configured granularity and returns
// the best one. The local size must be explicit (it defines the cut
// points).
func (p *Partitioner) Partition(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*Split, error) {
	if nd.LocalNull() {
		nd = p.CPU.ResolveLocal(nd)
	}
	if err := nd.Validate(); err != nil {
		return nil, err
	}
	local := nd.Local[0]
	totalGroups := nd.Global[0] / local
	if totalGroups < 1 {
		return nil, fmt.Errorf("hetero: nothing to partition in %v", nd)
	}
	steps := p.Steps
	if steps < 1 {
		steps = 16
	}
	if steps > totalGroups {
		steps = totalGroups
	}

	// Batch every split's device estimates so the evaluators can price
	// them over their worker pools (and dedupe repeats via the cache).
	// The assembly below is pure arithmetic in index order, so the chosen
	// split is independent of evaluation scheduling.
	points := make([]point, 0, steps+1)
	for i := 0; i <= steps; i++ {
		cpuND, gpuND, ok := splitRange(nd, totalGroups*i/steps)
		if !ok {
			return nil, fmt.Errorf("hetero: unresolved local size in %v", nd)
		}
		points = append(points, point{cpuND: cpuND, gpuND: gpuND, cpuIdx: -1, gpuIdx: -1})
	}
	points = p.pruneSplits(k, args, nd, points)

	var cpuLaunches, gpuLaunches []search.Launch
	for pi := range points {
		pt := &points[pi]
		if pt.cpuND.Global[0] > 0 {
			pt.cpuIdx = len(cpuLaunches)
			cpuLaunches = append(cpuLaunches, search.Launch{Kernel: k, Args: args, ND: pt.cpuND})
		}
		if pt.gpuND.Global[0] > 0 {
			pt.gpuIdx = len(gpuLaunches)
			gpuLaunches = append(gpuLaunches, search.Launch{Kernel: k, Args: args, ND: pt.gpuND})
		}
	}
	cpuRes, cpuErrs := p.estimateCPUAll("partition-cpu:"+k.Name, cpuLaunches)
	gpuRes, gpuErrs := p.estimateGPUAll("partition-gpu:"+k.Name, gpuLaunches)

	var best *Split
	for _, pt := range points {
		s := &Split{
			CPUItems: pt.cpuND.Global[0] * maxi(nd.Global[1], 1),
			GPUItems: pt.gpuND.Global[0] * maxi(nd.Global[1], 1),
		}
		if total := s.CPUItems + s.GPUItems; total > 0 {
			s.CPUFrac = float64(s.CPUItems) / float64(total)
		}
		if pt.cpuIdx >= 0 {
			if err := cpuErrs[pt.cpuIdx]; err != nil {
				return nil, err
			}
			s.CPUTime = cpuRes[pt.cpuIdx].Time
		}
		if pt.gpuIdx >= 0 {
			if err := gpuErrs[pt.gpuIdx]; err != nil {
				return nil, err
			}
			bytes := gpuShareBytes(args, 1-s.CPUFrac)
			pcie := p.GPU.A.PCIeLatency +
				p.GPU.A.PCIeBandwidth.Transfer(units.ByteSize(bytes))
			s.GPUTime = gpuRes[pt.gpuIdx].Time + pcie
		}
		s.Time = s.CPUTime
		if s.GPUTime > s.Time {
			s.Time = s.GPUTime
		}
		if best == nil || s.Time < best.Time {
			best = s
		}
	}
	return best, nil
}

// estimateCPUAll prices a CPU candidate set through the evaluator
// (serially without one).
func (p *Partitioner) estimateCPUAll(label string, launches []search.Launch) ([]*cpu.Result, []error) {
	if p.CPUEval != nil {
		return p.CPUEval.EstimateAll(label, launches)
	}
	res := make([]*cpu.Result, len(launches))
	errs := make([]error, len(launches))
	for i, l := range launches {
		res[i], errs[i] = p.CPU.Estimate(l.Kernel, l.Args, l.ND)
	}
	return res, errs
}

// estimateGPUAll prices a GPU candidate set through the evaluator
// (serially without one).
func (p *Partitioner) estimateGPUAll(label string, launches []search.Launch) ([]*gpu.Result, []error) {
	if p.GPUEval != nil {
		return p.GPUEval.EstimateAll(label, launches)
	}
	res := make([]*gpu.Result, len(launches))
	errs := make([]error, len(launches))
	for i, l := range launches {
		res[i], errs[i] = p.GPU.Estimate(l.Kernel, l.Args, l.ND)
	}
	return res, errs
}

// price evaluates one split.
func (p *Partitioner) price(k *ir.Kernel, args *ir.Args, nd ir.NDRange, cpuGroups int) (*Split, error) {
	cpuND, gpuND, ok := splitRange(nd, cpuGroups)
	if !ok {
		return nil, fmt.Errorf("hetero: unresolved local size in %v", nd)
	}
	s := &Split{
		CPUItems: cpuND.Global[0] * maxi(nd.Global[1], 1),
		GPUItems: gpuND.Global[0] * maxi(nd.Global[1], 1),
	}
	total := s.CPUItems + s.GPUItems
	if total > 0 {
		s.CPUFrac = float64(s.CPUItems) / float64(total)
	}

	if s.CPUItems > 0 {
		res, err := p.cpuEstimate(k, args, cpuND)
		if err != nil {
			return nil, err
		}
		s.CPUTime = res.Time
	}
	if s.GPUItems > 0 {
		res, err := p.gpuEstimate(k, args, gpuND)
		if err != nil {
			return nil, err
		}
		bytes := gpuShareBytes(args, 1-s.CPUFrac)
		pcie := p.GPU.A.PCIeLatency +
			p.GPU.A.PCIeBandwidth.Transfer(units.ByteSize(bytes))
		s.GPUTime = res.Time + pcie
	}
	s.Time = s.CPUTime
	if s.GPUTime > s.Time {
		s.Time = s.GPUTime
	}
	return s, nil
}

// Execute functionally runs the split: the CPU's workgroups and the GPU's
// workgroups both execute against the shared buffers, covering the whole
// NDRange exactly once.
func (p *Partitioner) Execute(k *ir.Kernel, args *ir.Args, nd ir.NDRange, s *Split) error {
	if nd.LocalNull() {
		nd = p.CPU.ResolveLocal(nd)
	}
	local := nd.Local[0]
	if local <= 0 {
		return fmt.Errorf("hetero: unresolved local size")
	}
	cpuGroups := s.CPUItems / local / maxi(nd.Global[1], 1)
	// Execute the whole range once, with the group partition expressed via
	// the Groups filter: groups below the cut belong to the "CPU", the rest
	// to the "GPU" — functionally both compute against the same buffers.
	counts := nd.GroupCounts()
	cut := cpuGroups // dimension-0 cut applies per row
	runPart := func(isCPU bool) error {
		return ir.ExecRange(k, args, nd, ir.ExecOptions{
			Parallel: 8,
			Groups: func(g int) bool {
				coord := nd.GroupCoord(g)
				_ = counts
				if isCPU {
					return coord[0] < cut
				}
				return coord[0] >= cut
			},
		})
	}
	if err := runPart(true); err != nil {
		return err
	}
	return runPart(false)
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PriceFrac prices the split putting i/steps of the workgroups on the CPU
// (exposed for diagnostics and tests).
func (p *Partitioner) PriceFrac(k *ir.Kernel, args *ir.Args, nd ir.NDRange, i, steps int) (*Split, error) {
	if nd.LocalNull() {
		nd = p.CPU.ResolveLocal(nd)
	}
	totalGroups := nd.Global[0] / nd.Local[0]
	return p.price(k, args, nd, totalGroups*i/steps)
}
