package hetero

import (
	"testing"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/gpu"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

func newPartitioner() *Partitioner {
	return NewPartitioner(cpu.New(arch.XeonE5645()), gpu.New(arch.GTX580()))
}

func TestPartitionBeatsSingleDevice(t *testing.T) {
	p := newPartitioner()
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	args := app.Make(nd)

	best, err := p.Partition(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	cpuOnly, err := p.price(app.Kernel, args, nd, nd.Global[0]/nd.Local[0])
	if err != nil {
		t.Fatal(err)
	}
	gpuOnly, err := p.price(app.Kernel, args, nd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Time > cpuOnly.Time || best.Time > gpuOnly.Time {
		t.Fatalf("best split (%v) worse than single device (cpu %v, gpu %v)",
			best.Time, cpuOnly.Time, gpuOnly.Time)
	}
	if best.CPUItems+best.GPUItems != nd.GlobalItems() {
		t.Fatalf("split loses items: %d + %d != %d",
			best.CPUItems, best.GPUItems, nd.GlobalItems())
	}
}

// A compute-heavy massively-parallel kernel should lean GPU; a tiny range
// should lean CPU (no PCIe, no occupancy).
func TestPartitionLeansSensibly(t *testing.T) {
	p := newPartitioner()

	bs := kernels.BlackScholes()
	nd := bs.Configs[0]
	best, err := p.Partition(bs.Kernel, bs.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	if best.CPUFrac > 0.5 {
		t.Errorf("blackscholes should lean GPU, got CPU fraction %.2f", best.CPUFrac)
	}

	sq := kernels.Square()
	small := ir.Range1D(2048, 64)
	bestSmall, err := p.Partition(sq.Kernel, sq.Make(small), small)
	if err != nil {
		t.Fatal(err)
	}
	if bestSmall.CPUFrac < 0.5 {
		t.Errorf("a tiny square should lean CPU, got CPU fraction %.2f", bestSmall.CPUFrac)
	}
}

func TestExecuteCoversRangeOnce(t *testing.T) {
	p := newPartitioner()
	app := kernels.Square()
	nd := ir.Range1D(4096, 64)
	args := app.Make(nd)
	split, err := p.Partition(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Execute(app.Kernel, args, nd, split); err != nil {
		t.Fatal(err)
	}
	if err := app.Check(args, nd); err != nil {
		t.Fatalf("co-executed results wrong: %v", err)
	}
}

func TestExecute2D(t *testing.T) {
	p := newPartitioner()
	app := kernels.BlackScholes()
	nd := ir.Range2D(64, 32, 8, 8)
	args := app.Make(nd)
	split, err := p.Partition(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Execute(app.Kernel, args, nd, split); err != nil {
		t.Fatal(err)
	}
	if err := app.Check(args, nd); err != nil {
		t.Fatalf("2-D co-execution wrong: %v", err)
	}
}

func TestPartitionResolvesNullLocal(t *testing.T) {
	p := newPartitioner()
	app := kernels.Square()
	nd := ir.Range1D(10000, 0)
	if _, err := p.Partition(app.Kernel, app.Make(nd), nd); err != nil {
		t.Fatal(err)
	}
}

func TestSplitString(t *testing.T) {
	s := &Split{CPUFrac: 0.25, CPUItems: 10, GPUItems: 30}
	if got := s.String(); got == "" {
		t.Error("empty String")
	}
}
