package hetero

import (
	"testing"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/gpu"
	"clperf/internal/kernels"
)

func newPair() (*cpu.Device, *gpu.Device) {
	return cpu.New(arch.XeonE5645()), gpu.New(arch.GTX580())
}

// Property: the cached parallel partition search returns exactly the
// split the uncached serial search finds (runs under -race in CI).
func TestPartitionCacheOnOffIdentical(t *testing.T) {
	for _, app := range []*kernels.App{kernels.Square(), kernels.VectorAdd(), kernels.BlackScholes()} {
		nd := app.Configs[0]
		args := app.Make(nd)

		cached := NewPartitioner(newPair())
		sC, err := cached.Partition(app.Kernel, args, nd)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}

		uncached := NewPartitioner(newPair())
		uncached.CPUEval, uncached.GPUEval = nil, nil
		sU, err := uncached.Partition(app.Kernel, args, nd)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}

		if *sC != *sU {
			t.Errorf("%s: cache-on split %+v != cache-off %+v", app.Name, sC, sU)
		}
	}
}

// The endpoint splits PriceFrac re-prices after Partition must come out
// of the cache, not re-run the model.
func TestPartitionSharesCacheWithPriceFrac(t *testing.T) {
	p := NewPartitioner(newPair())
	app := kernels.Square()
	nd := app.Configs[0]
	args := app.Make(nd)
	if _, err := p.Partition(app.Kernel, args, nd); err != nil {
		t.Fatal(err)
	}
	before := p.CPUEval.Stats()
	if _, err := p.PriceFrac(app.Kernel, args, nd, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PriceFrac(app.Kernel, args, nd, 0, 1); err != nil {
		t.Fatal(err)
	}
	d := p.CPUEval.Stats().Sub(before)
	if d.Misses != 0 {
		t.Errorf("endpoint re-pricing missed the cache %d times", d.Misses)
	}
	if d.Hits == 0 {
		t.Error("endpoint re-pricing recorded no cache hits")
	}
}
