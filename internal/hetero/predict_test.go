package hetero

import (
	"testing"

	"clperf/internal/kernels"
)

// TestPrunedPartitionWithin5PctOfFullSearch checks the predictor-pruned
// split search against the exhaustive one (Pred == nil, the -nopredict
// path) on every 1-D app the extension experiment partitions: the pruned
// makespan must stay within 5% of the full search's.
func TestPrunedPartitionWithin5PctOfFullSearch(t *testing.T) {
	apps := []*kernels.App{
		kernels.Square(), kernels.VectorAdd(),
		kernels.BlackScholes(), kernels.MatrixMulNaive(),
	}
	for _, app := range apps {
		nd := app.DefaultConfig()
		args := app.Make(nd)

		full := newPartitioner()
		full.Pred = nil
		fs, err := full.Partition(app.Kernel, args, nd)
		if err != nil {
			t.Fatalf("%s: full partition: %v", app.Name, err)
		}

		pruned := newPartitioner()
		ps, err := pruned.Partition(app.Kernel, args, nd)
		if err != nil {
			t.Fatalf("%s: pruned partition: %v", app.Name, err)
		}

		if float64(ps.Time) > 1.05*float64(fs.Time) {
			t.Errorf("%s: pruned split %v (cpu %.0f%%) is %.1f%% above full-search makespan %v (cpu %.0f%%)",
				app.Name, ps.Time, 100*ps.CPUFrac,
				100*(float64(ps.Time)/float64(fs.Time)-1),
				fs.Time, 100*fs.CPUFrac)
		}
	}
}

// TestPrunedPartitionKeepsEndpoints pins that the all-CPU and all-GPU
// splits survive every cut: a wide-open k reproduces the full search
// exactly, and the default pruned search still prices both endpoints (so
// a device that dominates outright is never pruned away).
func TestPrunedPartitionKeepsEndpoints(t *testing.T) {
	app := kernels.BlackScholes()
	nd := app.DefaultConfig()
	args := app.Make(nd)

	full := newPartitioner()
	full.Pred = nil
	fs, err := full.Partition(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}

	wide := newPartitioner()
	wide.TopK = 1 << 20
	ws, err := wide.Partition(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Time != fs.Time || ws.CPUFrac != fs.CPUFrac {
		t.Errorf("k-covers-all partition diverged: got (%v, cpu %.3f), want (%v, cpu %.3f)",
			ws.Time, ws.CPUFrac, fs.Time, fs.CPUFrac)
	}

	// Degenerate k: even TopK = 1 must keep both endpoints alongside the
	// single cheapest interior split and return a valid result.
	tiny := newPartitioner()
	tiny.TopK = 1
	ts, err := tiny.Partition(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Time <= 0 {
		t.Fatalf("tiny-k partition returned non-positive makespan %v", ts.Time)
	}
}
