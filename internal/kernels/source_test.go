package kernels

import (
	"testing"

	"clperf/internal/ir"
)

// The Table II kernels, as the OpenCL C source a user would write. Each is
// compiled by the parser and must produce outputs identical to the
// hand-built IR the benchmarks use — the parser and the builders are two
// routes to the same kernel.
const squareSrc = `
__kernel void square(__global float *in, __global float *out) {
    int i = get_global_id(0);
    float x = in[i];
    out[i] = x * x;
}`

const vectorAddSrc = `
__kernel void vectoradd(__global float *a, __global float *b, __global float *c) {
    int i = get_global_id(0);
    c[i] = a[i] + b[i];
}`

const matMulNaiveSrc = `
__kernel void matrixMulNaive(__global float *A, __global float *B,
                             __global float *C, int K) {
    int col = get_global_id(0);
    int row = get_global_id(1);
    int wB = get_global_size(0);
    float acc = 0.0f;
    for (int k = 0; k < K; k++) {
        acc += A[row * K + k] * B[k * wB + col];
    }
    C[row * wB + col] = acc;
}`

const matMulTiledSrc = `
__kernel void matrixMul(__global float *A, __global float *B,
                        __global float *C, int K) {
    __local float As[64];
    __local float Bs[64];
    int col = get_global_id(0);
    int row = get_global_id(1);
    int wB = get_global_size(0);
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int edge = get_local_size(0);
    float acc = 0.0f;
    for (int t = 0; t < K / edge; t++) {
        As[ly * edge + lx] = A[row * K + t * edge + lx];
        Bs[ly * edge + lx] = B[(t * edge + ly) * wB + col];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < edge; k++) {
            acc += As[ly * edge + k] * Bs[k * edge + lx];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[row * wB + col] = acc;
}`

const reductionSrc = `
__kernel void reduce(__global float *in, __global float *partial, int levels) {
    __local float scratch[256];
    int lid = get_local_id(0);
    scratch[lid] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int lev = 0; lev < levels; lev++) {
        int s = get_local_size(0) >> (lev + 1);
        float tmp = 0.0f;
        if (lid < s) {
            tmp = scratch[lid] + scratch[lid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        if (lid < s) {
            scratch[lid] = tmp;
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        partial[get_group_id(0)] = scratch[0];
    }
}`

func diffRun(t *testing.T, parsed, built *ir.Kernel, args1, args2 *ir.Args,
	nd ir.NDRange, outputs []string) {
	t.Helper()
	if err := ir.ExecRange(parsed, args1, nd, ir.ExecOptions{}); err != nil {
		t.Fatalf("parsed: %v", err)
	}
	if err := ir.ExecRange(built, args2, nd, ir.ExecOptions{}); err != nil {
		t.Fatalf("built: %v", err)
	}
	for _, name := range outputs {
		a, b := args1.Buffers[name], args2.Buffers[name]
		for i := 0; i < a.Len(); i++ {
			if a.Get(i) != b.Get(i) {
				t.Fatalf("%s[%d]: parsed %v vs built %v", name, i, a.Get(i), b.Get(i))
			}
		}
	}
}

func TestSourceSquareMatchesBuilt(t *testing.T) {
	parsed, err := ir.ParseKernel(squareSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	nd := ir.Range1D(2048, 64)
	app := Square()
	a1, a2 := app.Make(nd), app.Make(nd)
	copy(a2.Buffers["in"].Data, a1.Buffers["in"].Data)
	diffRun(t, parsed, app.Kernel, a1, a2, nd, []string{"out"})
}

func TestSourceVectorAddMatchesBuilt(t *testing.T) {
	parsed, err := ir.ParseKernel(vectorAddSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	nd := ir.Range1D(2048, 64)
	app := VectorAdd()
	a1, a2 := app.Make(nd), app.Make(nd)
	copy(a2.Buffers["a"].Data, a1.Buffers["a"].Data)
	copy(a2.Buffers["b"].Data, a1.Buffers["b"].Data)
	diffRun(t, parsed, app.Kernel, a1, a2, nd, []string{"c"})
}

func TestSourceMatMulNaiveMatchesBuilt(t *testing.T) {
	parsed, err := ir.ParseKernel(matMulNaiveSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	nd := ir.Range2D(32, 16, 8, 8)
	const k = 24
	a1, a2 := MakeMatMulArgs(nd, k), MakeMatMulArgs(nd, k)
	copy(a2.Buffers["A"].Data, a1.Buffers["A"].Data)
	copy(a2.Buffers["B"].Data, a1.Buffers["B"].Data)
	diffRun(t, parsed, MatrixMulNaiveKernel(), a1, a2, nd, []string{"C"})
}

func TestSourceMatMulTiledMatchesBuilt(t *testing.T) {
	parsed, err := ir.ParseKernel(matMulTiledSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	nd := ir.Range2D(32, 16, 8, 8)
	const k = 24
	a1, a2 := MakeMatMulArgs(nd, k), MakeMatMulArgs(nd, k)
	copy(a2.Buffers["A"].Data, a1.Buffers["A"].Data)
	copy(a2.Buffers["B"].Data, a1.Buffers["B"].Data)
	diffRun(t, parsed, MatrixMulKernel(), a1, a2, nd, []string{"C"})
	// And against the reference.
	if err := CheckMatMul(a1, nd); err != nil {
		t.Fatal(err)
	}
}

func TestSourceReductionMatchesBuilt(t *testing.T) {
	parsed, err := ir.ParseKernel(reductionSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	nd := ir.Range1D(4096, 256)
	a1, a2 := makeReductionArgs(nd), makeReductionArgs(nd)
	copy(a2.Buffers["in"].Data, a1.Buffers["in"].Data)
	diffRun(t, parsed, ReductionKernel(), a1, a2, nd, []string{"partial"})
	if err := checkReduction(a1, nd); err != nil {
		t.Fatal(err)
	}
}

// Source-built kernels must earn the same vectorization verdicts.
func TestSourceKernelsAnalyzeLikeBuilt(t *testing.T) {
	nd := ir.Range1D(4096, 64)
	for _, src := range []string{squareSrc, vectorAddSrc} {
		parsed, err := ir.ParseKernel(src, "")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ir.VectorizeOpenCL(ir.Simplify(parsed), ir.NewArgs(), nd)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Vectorized || rep.PackedFrac != 1 {
			t.Errorf("%s: vectorized=%v packed=%v", parsed.Name, rep.Vectorized, rep.PackedFrac)
		}
	}
}

const blackScholesSrc = `
__kernel void blackScholes(__global float *price, __global float *strike,
                           __global float *years, __global float *call,
                           __global float *put) {
    int i = get_global_id(1) * get_global_size(0) + get_global_id(0);
    float S = price[i];
    float X = strike[i];
    float T = years[i];
    float sqrtT = sqrt(T);
    float d1 = (log(S / X) + (0.02f + 0.045f) * T) / (0.3f * sqrtT);
    float d2 = d1 - 0.3f * sqrtT;

    float abs1 = fabs(d1);
    float k1 = 1.0f / (1.0f + 0.2316419f * abs1);
    float poly1 = k1 * (0.31938153f + k1 * (-0.356563782f + k1 * (1.781477937f +
                  k1 * (-1.821255978f + k1 * 1.330274429f))));
    float w1 = 1.0f - 0.39894228040143267794f * exp(-0.5f * d1 * d1) * poly1;
    float cnd1 = (d1 < 0.0f) ? (1.0f - w1) : w1;

    float abs2 = fabs(d2);
    float k2 = 1.0f / (1.0f + 0.2316419f * abs2);
    float poly2 = k2 * (0.31938153f + k2 * (-0.356563782f + k2 * (1.781477937f +
                  k2 * (-1.821255978f + k2 * 1.330274429f))));
    float w2 = 1.0f - 0.39894228040143267794f * exp(-0.5f * d2 * d2) * poly2;
    float cnd2 = (d2 < 0.0f) ? (1.0f - w2) : w2;

    float expRT = exp(-0.02f * T);
    call[i] = S * cnd1 - X * expRT * cnd2;
    put[i] = X * expRT * (1.0f - cnd2) - S * (1.0f - cnd1);
}`

// The source Blackscholes (ternaries, libm calls, 2-D indexing) must match
// the reference formula. Coefficients mirror blackscholes.go exactly
// (0.02 + 0.045 = r + v^2/2 with v = 0.3).
func TestSourceBlackScholesMatchesReference(t *testing.T) {
	parsed, err := ir.ParseKernel(blackScholesSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.WorkDim != 2 {
		t.Fatalf("WorkDim = %d, want 2", parsed.WorkDim)
	}
	app := BlackScholes()
	nd := ir.Range2D(64, 32, 8, 8)
	args := app.Make(nd)
	if err := ir.ExecRange(parsed, args, nd, ir.ExecOptions{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if err := app.Check(args, nd); err != nil {
		t.Fatalf("source blackscholes wrong: %v", err)
	}
}

const binomialSrc = `
__kernel void binomialoption(__global float *price, __global float *strike,
                             __global float *out, int steps, float vsdt,
                             float pu, float pd) {
    __local float vals[255];
    int opt = get_group_id(0);
    int lid = get_local_id(0);
    float S = price[opt];
    float X = strike[opt];
    int up = 2 * lid - steps;
    float leaf = S * exp((float)(up) * vsdt) - X;
    vals[lid] = fmax(leaf, 0.0f);
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = 0; s < steps; s++) {
        int level = steps - s;
        float tmp = 0.0f;
        if (lid < level) {
            tmp = pu * vals[lid + 1] + pd * vals[lid];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        if (lid < level) {
            vals[lid] = tmp;
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        out[opt] = vals[0];
    }
}`

// The source binomial pricer (barriers, divergent ifs, scalar params,
// local memory) must match the CRR reference.
func TestSourceBinomialMatchesReference(t *testing.T) {
	parsed, err := ir.ParseKernel(binomialSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	nd := ir.Range1D(255*4, 255)
	args := MakeBinomialArgs(nd)
	if err := ir.ExecRange(parsed, args, nd, ir.ExecOptions{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if err := CheckBinomial(args, nd); err != nil {
		t.Fatalf("source binomial wrong: %v", err)
	}
}
