package kernels

import "clperf/internal/ir"

// MatMulK is the inner (reduction) dimension used for the paper-sized
// configurations; it is divisible by every workgroup edge in Table V.
const MatMulK = 160

// MatrixMulKernel returns the local-memory blocked matrix multiply
// (the NVIDIA SDK "matrixMul" the paper uses): C[row][col] =
// sum_k A[row][k] * B[k][col], with square tiles of the workgroup size
// staged through __local memory.
//
// Geometry: global = (wB, hA), gid0 = column, gid1 = row; scalar K is the
// inner dimension and must be a multiple of the tile edge.
func MatrixMulKernel() *ir.Kernel {
	lsz := ir.Lsz(0) // square tiles: local x == local y
	tileIdx := func(r, c ir.Expr) ir.Expr { return ir.Addi(ir.Muli(r, lsz), c) }
	return &ir.Kernel{
		Name:    "matrixMul",
		WorkDim: 2,
		Params:  []ir.Param{ir.Buf("A"), ir.Buf("B"), ir.Buf("C"), ir.ScalarI("K")},
		Locals: []ir.LocalArray{
			{Name: "As", Elem: ir.F32, Size: ir.Muli(ir.Lsz(0), ir.Lsz(1))},
			{Name: "Bs", Elem: ir.F32, Size: ir.Muli(ir.Lsz(0), ir.Lsz(1))},
		},
		Body: []ir.Stmt{
			ir.Set("col", ir.Gid(0)),
			ir.Set("row", ir.Gid(1)),
			ir.Set("wB", ir.Gsz(0)),
			ir.Set("acc", ir.F(0)),
			ir.Loop("t", ir.I(0), ir.Divi(ir.Pi("K"), lsz),
				// Stage one tile of A and one of B.
				ir.LStoreF("As", tileIdx(ir.Lid(1), ir.Lid(0)),
					ir.LoadF("A", ir.Addi(ir.Muli(ir.Vi("row"), ir.Pi("K")),
						ir.Addi(ir.Muli(ir.Vi("t"), lsz), ir.Lid(0))))),
				ir.LStoreF("Bs", tileIdx(ir.Lid(1), ir.Lid(0)),
					ir.LoadF("B", ir.Addi(
						ir.Muli(ir.Addi(ir.Muli(ir.Vi("t"), lsz), ir.Lid(1)), ir.Vi("wB")),
						ir.Vi("col")))),
				ir.Barrier{},
				ir.Loop("k", ir.I(0), lsz,
					ir.Set("acc", ir.Add(ir.V("acc"),
						ir.Mul(ir.LLoadF("As", tileIdx(ir.Lid(1), ir.Vi("k"))),
							ir.LLoadF("Bs", tileIdx(ir.Vi("k"), ir.Lid(0))))))),
				ir.Barrier{},
			),
			ir.StoreF("C", ir.Addi(ir.Muli(ir.Vi("row"), ir.Vi("wB")), ir.Vi("col")),
				ir.V("acc")),
		},
	}
}

// MatrixMulNaiveKernel returns the unblocked multiply: every workitem
// streams a full row of A and column of B from global memory.
func MatrixMulNaiveKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "matrixMulNaive",
		WorkDim: 2,
		Params:  []ir.Param{ir.Buf("A"), ir.Buf("B"), ir.Buf("C"), ir.ScalarI("K")},
		Body: []ir.Stmt{
			ir.Set("col", ir.Gid(0)),
			ir.Set("row", ir.Gid(1)),
			ir.Set("wB", ir.Gsz(0)),
			ir.Set("acc", ir.F(0)),
			ir.Loop("k", ir.I(0), ir.Pi("K"),
				ir.Set("acc", ir.Add(ir.V("acc"), ir.Mul(
					ir.LoadF("A", ir.Addi(ir.Muli(ir.Vi("row"), ir.Pi("K")), ir.Vi("k"))),
					ir.LoadF("B", ir.Addi(ir.Muli(ir.Vi("k"), ir.Vi("wB")), ir.Vi("col"))))))),
			ir.StoreF("C", ir.Addi(ir.Muli(ir.Vi("row"), ir.Vi("wB")), ir.Vi("col")),
				ir.V("acc")),
		},
	}
}

// matMulConfigs are the Table II global sizes (C dimensions) with 16x16
// workgroups.
func matMulConfigs() []ir.NDRange {
	return []ir.NDRange{
		ir.Range2D(800, 1600, 16, 16),
		ir.Range2D(1600, 3200, 16, 16),
		ir.Range2D(4000, 8000, 16, 16),
	}
}

// MakeMatMulArgs builds A (hA x K), B (K x wB) and C for the geometry.
func MakeMatMulArgs(nd ir.NDRange, k int) *ir.Args {
	wB, hA := nd.Global[0], nd.Global[1]
	a := ir.NewBufferF32("A", hA*k)
	b := ir.NewBufferF32("B", k*wB)
	FillUniform(a, 11, -1, 1)
	FillUniform(b, 12, -1, 1)
	return ir.NewArgs().
		Bind("A", a).Bind("B", b).Bind("C", ir.NewBufferF32("C", hA*wB)).
		SetScalar("K", float64(k))
}

// CheckMatMul validates C against a straightforward reference multiply.
func CheckMatMul(args *ir.Args, nd ir.NDRange) error {
	wB, hA := nd.Global[0], nd.Global[1]
	k := int(args.Scalars["K"])
	a, b := args.Buffers["A"], args.Buffers["B"]
	want := make([]float64, hA*wB)
	for row := 0; row < hA; row++ {
		for col := 0; col < wB; col++ {
			acc := float32(0)
			for kk := 0; kk < k; kk++ {
				acc += float32(a.Get(row*k+kk)) * float32(b.Get(kk*wB+col))
			}
			want[row*wB+col] = float64(acc)
		}
	}
	return Compare("C", args.Buffers["C"], want, 1e-3)
}

// MatrixMul returns the blocked Matrixmul application.
func MatrixMul() *App {
	return &App{
		Name:    "Matrixmul",
		Kernel:  MatrixMulKernel(),
		Configs: matMulConfigs(),
		Make:    func(nd ir.NDRange) *ir.Args { return MakeMatMulArgs(nd, MatMulK) },
		Check:   CheckMatMul,
	}
}

// MatrixMulNaive returns the naive MatrixmulNaive application.
func MatrixMulNaive() *App {
	return &App{
		Name:    "MatrixmulNaive",
		Kernel:  MatrixMulNaiveKernel(),
		Configs: matMulConfigs(),
		Make:    func(nd ir.NDRange) *ir.Args { return MakeMatMulArgs(nd, MatMulK) },
		Check:   CheckMatMul,
	}
}
