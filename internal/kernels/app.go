// Package kernels implements the paper's simple applications (Table II) as
// IR kernels with deterministic input generators and pure-Go reference
// implementations for correctness checking: Square, Vectoraddition,
// Matrixmul (local-memory blocked), MatrixmulNaive, Reduction,
// Histogram256, Prefixsum, Blackscholes and Binomialoption.
package kernels

import (
	"fmt"
	"math"

	"clperf/internal/ir"
)

// App is one benchmark application: its kernel, the paper's launch
// configurations, and functional input/validation hooks.
type App struct {
	// Name is the benchmark name as in Table II (e.g. "Square").
	Name string
	// Kernel is the OpenCL kernel.
	Kernel *ir.Kernel
	// Configs are the paper's (global, local) size combinations.
	Configs []ir.NDRange
	// Make builds deterministic input/output buffers for a geometry,
	// bound under the kernel's parameter names.
	Make func(nd ir.NDRange) *ir.Args
	// Check validates the output buffers after execution.
	Check func(args *ir.Args, nd ir.NDRange) error
}

// DefaultConfig returns the app's first (smallest) configuration.
func (a *App) DefaultConfig() ir.NDRange { return a.Configs[0] }

// Registry returns all simple applications in Table II order.
func Registry() []*App {
	return []*App{
		Square(),
		VectorAdd(),
		MatrixMul(),
		Reduction(),
		Histogram(),
		PrefixSum(),
		BlackScholes(),
		BinomialOption(),
		MatrixMulNaive(),
	}
}

// ByName returns the registered app with the given name.
func ByName(name string) (*App, error) {
	for _, a := range Registry() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown app %q", name)
}

// rng is a tiny deterministic generator (xorshift64*) for reproducible
// inputs without pulling in math/rand state.
type rng uint64

func newRng(seed uint64) *rng {
	r := rng(seed*2685821657736338717 + 1)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 2685821657736338717
}

// float returns a value in [lo, hi).
func (r *rng) float(lo, hi float64) float64 {
	return lo + (hi-lo)*float64(r.next()>>11)/float64(1<<53)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// FillUniform fills buf with values in [lo, hi).
func FillUniform(buf *ir.Buffer, seed uint64, lo, hi float64) {
	r := newRng(seed)
	for i := range buf.Data {
		buf.Set(i, r.float(lo, hi))
	}
}

// Compare checks got against want elementwise with a relative tolerance.
func Compare(name string, got *ir.Buffer, want []float64, relTol float64) error {
	if got.Len() != len(want) {
		return fmt.Errorf("%s: length %d, want %d", name, got.Len(), len(want))
	}
	for i, w := range want {
		g := got.Get(i)
		diff := math.Abs(g - w)
		scale := math.Max(math.Abs(w), 1)
		if diff > relTol*scale {
			return fmt.Errorf("%s[%d] = %v, want %v (tol %g)", name, i, g, w, relTol)
		}
	}
	return nil
}
