package kernels

// Differential test of both execution engines (v1 closure-compiled, v2
// lane-batched) against the retained tree-walking oracle on every
// registered application — the real kernels exercise barriers, __local
// arrays, atomics and 2D geometry that the ir fuzz corpus cannot reach.
// Buffers must match bit-for-bit and the traced global-access streams
// must be identical, serially and in parallel.

import (
	"math"
	"testing"

	"clperf/internal/ir"
)

type traceEvent struct {
	begin bool
	group int
	acc   ir.Access
}

type recTracer struct{ log []traceEvent }

func (r *recTracer) BeginGroup(g int) {
	r.log = append(r.log, traceEvent{begin: true, group: g})
}

func (r *recTracer) Access(addr, size int64, write bool) {
	r.log = append(r.log, traceEvent{acc: ir.Access{Addr: addr, Size: size, Write: write}})
}

// Mark records barrier markers so the engine/oracle comparison covers the
// full stream, not just global accesses — the real kernels are barrier-heavy.
func (r *recTracer) Mark(rec ir.Access) {
	r.log = append(r.log, traceEvent{acc: rec})
}

func cloneArgsDeep(a *ir.Args) *ir.Args {
	c := ir.NewArgs()
	for name, b := range a.Buffers {
		c.Buffers[name] = &ir.Buffer{
			Name: b.Name,
			Elem: b.Elem,
			Base: b.Base,
			Data: append([]float64(nil), b.Data...),
		}
	}
	for k, v := range a.Scalars {
		c.Scalars[k] = v
	}
	return c
}

func TestEngineMatchesOracleOnApps(t *testing.T) {
	type entry struct {
		app *App
		nd  ir.NDRange
	}
	var cases []entry
	for _, app := range Registry() {
		cases = append(cases, entry{app, testConfig(app)})
	}
	for _, app := range ExtraRegistry() {
		cases = append(cases, entry{app, extraTestConfig(app)})
	}

	for _, c := range cases {
		c := c
		t.Run(c.app.Name, func(t *testing.T) {
			proto := c.app.Make(c.nd)

			oracleArgs := cloneArgsDeep(proto)
			oracleTr := &recTracer{}
			if err := ir.ExecRangeOracle(c.app.Kernel, oracleArgs, c.nd,
				ir.ExecOptions{Tracer: oracleTr}); err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if err := c.app.Check(oracleArgs, c.nd); err != nil {
				t.Fatalf("oracle check: %v", err)
			}

			for _, run := range []struct {
				label  string
				par    int
				engine ir.EngineSel
			}{
				{"v1 serial", 0, ir.EngineV1},
				{"v1 parallel", 8, ir.EngineV1},
				{"v2 serial", 0, ir.EngineV2},
				{"v2 parallel", 8, ir.EngineV2},
			} {
				args := cloneArgsDeep(proto)
				tr := &recTracer{}
				err := ir.ExecRange(c.app.Kernel, args, c.nd,
					ir.ExecOptions{Tracer: tr, Parallel: run.par, Engine: run.engine})
				if err != nil {
					t.Fatalf("engine %s: %v", run.label, err)
				}
				if err := c.app.Check(args, c.nd); err != nil {
					t.Fatalf("engine %s check: %v", run.label, err)
				}
				for name, wb := range oracleArgs.Buffers {
					gb := args.Buffers[name]
					for i := range wb.Data {
						a, b := gb.Data[i], wb.Data[i]
						if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
							t.Fatalf("engine %s: %s[%d] = %v, oracle %v",
								run.label, name, i, a, b)
						}
					}
				}
				if len(tr.log) != len(oracleTr.log) {
					t.Fatalf("engine %s: %d trace events, oracle %d",
						run.label, len(tr.log), len(oracleTr.log))
				}
				for i := range oracleTr.log {
					if tr.log[i] != oracleTr.log[i] {
						t.Fatalf("engine %s: trace event %d = %+v, oracle %+v",
							run.label, i, tr.log[i], oracleTr.log[i])
					}
				}
			}
		})
	}
}
