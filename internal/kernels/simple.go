package kernels

import "clperf/internal/ir"

// SquareKernel returns the square kernel: out[i] = in[i]^2.
func SquareKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "square",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Set("i", ir.Gid(0)),
			ir.Set("x", ir.LoadF("in", ir.Vi("i"))),
			ir.StoreF("out", ir.Vi("i"), ir.Mul(ir.V("x"), ir.V("x"))),
		},
	}
}

// Square returns the Square application (Table II: 10^4..10^7 workitems,
// NULL local size).
func Square() *App {
	return &App{
		Name:   "Square",
		Kernel: SquareKernel(),
		Configs: []ir.NDRange{
			ir.Range1D(10000, 0),
			ir.Range1D(100000, 0),
			ir.Range1D(1000000, 0),
			ir.Range1D(10000000, 0),
		},
		Make: func(nd ir.NDRange) *ir.Args {
			n := nd.GlobalItems()
			in := ir.NewBufferF32("in", n)
			FillUniform(in, 1, -2, 2)
			return ir.NewArgs().Bind("in", in).Bind("out", ir.NewBufferF32("out", n))
		},
		Check: func(args *ir.Args, nd ir.NDRange) error {
			in := args.Buffers["in"]
			want := make([]float64, in.Len())
			for i := range want {
				x := float32(in.Get(i))
				want[i] = float64(x * x)
			}
			return Compare("out", args.Buffers["out"], want, 1e-6)
		},
	}
}

// VectorAddKernel returns c[i] = a[i] + b[i].
func VectorAddKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "vectoradd",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("a"), ir.Buf("b"), ir.Buf("c")},
		Body: []ir.Stmt{
			ir.Set("i", ir.Gid(0)),
			ir.StoreF("c", ir.Vi("i"),
				ir.Add(ir.LoadF("a", ir.Vi("i")), ir.LoadF("b", ir.Vi("i")))),
		},
	}
}

// VectorAdd returns the Vectoraddition application (Table II).
func VectorAdd() *App {
	return &App{
		Name:   "Vectoraddition",
		Kernel: VectorAddKernel(),
		Configs: []ir.NDRange{
			ir.Range1D(110000, 0),
			ir.Range1D(1100000, 0),
			ir.Range1D(5500000, 0),
			ir.Range1D(11445000, 0),
		},
		Make: func(nd ir.NDRange) *ir.Args {
			n := nd.GlobalItems()
			a := ir.NewBufferF32("a", n)
			b := ir.NewBufferF32("b", n)
			FillUniform(a, 2, -10, 10)
			FillUniform(b, 3, -10, 10)
			return ir.NewArgs().Bind("a", a).Bind("b", b).Bind("c", ir.NewBufferF32("c", n))
		},
		Check: func(args *ir.Args, nd ir.NDRange) error {
			a, b := args.Buffers["a"], args.Buffers["b"]
			want := make([]float64, a.Len())
			for i := range want {
				want[i] = float64(float32(a.Get(i)) + float32(b.Get(i)))
			}
			return Compare("c", args.Buffers["c"], want, 1e-6)
		},
	}
}

// VectorMulKernel returns c[i] = a[i] * b[i] (the second kernel of the
// paper's affinity experiment).
func VectorMulKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "vectormul",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("a"), ir.Buf("b"), ir.Buf("c")},
		Body: []ir.Stmt{
			ir.Set("i", ir.Gid(0)),
			ir.StoreF("c", ir.Vi("i"),
				ir.Mul(ir.LoadF("a", ir.Vi("i")), ir.LoadF("b", ir.Vi("i")))),
		},
	}
}
