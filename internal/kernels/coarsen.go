package kernels

import (
	"fmt"

	"clperf/internal/ir"
)

// Coarsen returns a kernel in which every workitem performs the work of
// factor original workitems — the paper's Figure 1/2 transformation
// ("we coalesce multiple workitems into a single workitem by forming a loop
// inside the kernel"). The caller launches it over global/factor items.
//
// The strided mapping is used (workitem g handles original items
// g, g+N', g+2N', ... with N' the reduced global size) so inter-workitem
// accesses stay unit-stride and the implicit vectorizer keeps packing —
// the coarsening a careful programmer applies.
//
// Kernels that read get_global_size(0) cannot be coarsened this way (the
// body would observe the reduced size) and are rejected.
func Coarsen(k *ir.Kernel, factor int) (*ir.Kernel, error) {
	if factor < 1 {
		return nil, fmt.Errorf("kernels: coarsening factor %d", factor)
	}
	if factor == 1 {
		return k, nil
	}
	usesGsz := false
	usesBarrier := false
	var scanStmts func([]ir.Stmt)
	scanExpr := func(e ir.Expr) {
		ir.WalkExpr(e, func(e ir.Expr) {
			if id, ok := e.(ir.ID); ok && id.Fn == ir.GlobalSize && id.Dim == 0 {
				usesGsz = true
			}
		})
	}
	scanStmts = func(stmts []ir.Stmt) {
		ir.WalkStmts(stmts, func(s ir.Stmt) {
			switch s := s.(type) {
			case ir.Assign:
				scanExpr(s.Val)
			case ir.Store:
				scanExpr(s.Index)
				scanExpr(s.Val)
			case ir.LocalStore:
				scanExpr(s.Index)
				scanExpr(s.Val)
			case ir.AtomicAdd:
				scanExpr(s.Index)
				scanExpr(s.Val)
			case ir.If:
				scanExpr(s.Cond)
			case ir.For:
				scanExpr(s.Start)
				scanExpr(s.End)
				scanExpr(s.Step)
			case ir.Barrier:
				usesBarrier = true
			}
		})
	}
	scanStmts(k.Body)
	if usesGsz {
		return nil, fmt.Errorf("kernels: %s reads get_global_size(0); cannot coarsen", k.Name)
	}
	if usesBarrier {
		return nil, fmt.Errorf("kernels: %s synchronizes with barriers; cannot coarsen", k.Name)
	}

	const cvar = "coarse_c"
	newGid := ir.Addi(ir.Gid(0), ir.Muli(ir.Vi(cvar), ir.Gsz(0)))
	body := ir.SubstGlobalID(k.Body, 0, newGid)
	return &ir.Kernel{
		Name:    fmt.Sprintf("%s_x%d", k.Name, factor),
		WorkDim: k.WorkDim,
		Params:  k.Params,
		Locals:  k.Locals,
		Body: []ir.Stmt{
			ir.For{Var: cvar, Start: ir.I(0), End: ir.I(int64(factor)), Step: ir.I(1), Body: body},
		},
	}, nil
}

// CoarsenRange divides an NDRange's dimension-0 global size by factor,
// keeping the local size policy (NULL stays NULL) and shrinking an explicit
// local size to the largest divisor of the reduced global size.
func CoarsenRange(nd ir.NDRange, factor int) (ir.NDRange, error) {
	if nd.Global[0]%factor != 0 {
		return nd, fmt.Errorf("kernels: global size %d not divisible by coarsening %d",
			nd.Global[0], factor)
	}
	nd.Global[0] /= factor
	if l := nd.Local[0]; l > 0 {
		if l > nd.Global[0] {
			l = nd.Global[0]
		}
		for nd.Global[0]%l != 0 {
			l--
		}
		nd.Local[0] = l
	}
	return nd, nil
}
