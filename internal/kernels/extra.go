package kernels

import (
	"fmt"
	"math"

	"clperf/internal/ir"
)

// ExtraRegistry returns applications beyond the paper's Table II suite.
// They cover access patterns the paper's workloads miss — transposed
// (maximally strided) stores, 2-D stencils, all-pairs O(n^2) compute, and
// a two-stage dot product — and serve the advisor/partitioner as further
// probes.
func ExtraRegistry() []*App {
	return []*App{
		Transpose(),
		Convolution(),
		NBody(),
		DotProduct(),
	}
}

// TransposeKernel returns out[x*h + y] = in[y*w + x]: unit-stride loads,
// h-stride stores — the canonical uncoalesced/unvectorizable store pattern.
func TransposeKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "transpose",
		WorkDim: 2,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Set("x", ir.Gid(0)),
			ir.Set("y", ir.Gid(1)),
			ir.StoreF("out", ir.Addi(ir.Muli(ir.Vi("x"), ir.Gsz(1)), ir.Vi("y")),
				ir.LoadF("in", ir.Addi(ir.Muli(ir.Vi("y"), ir.Gsz(0)), ir.Vi("x")))),
		},
	}
}

// Transpose returns the matrix-transpose application.
func Transpose() *App {
	return &App{
		Name:   "Transpose",
		Kernel: TransposeKernel(),
		Configs: []ir.NDRange{
			ir.Range2D(1024, 1024, 16, 16),
			ir.Range2D(4096, 4096, 16, 16),
		},
		Make: func(nd ir.NDRange) *ir.Args {
			w, h := nd.Global[0], nd.Global[1]
			in := ir.NewBufferF32("in", w*h)
			FillUniform(in, 301, -1, 1)
			return ir.NewArgs().Bind("in", in).Bind("out", ir.NewBufferF32("out", w*h))
		},
		Check: func(args *ir.Args, nd ir.NDRange) error {
			w, h := nd.Global[0], nd.Global[1]
			in, out := args.Buffers["in"], args.Buffers["out"]
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					if out.Get(x*h+y) != in.Get(y*w+x) {
						return fmt.Errorf("out[%d,%d] = %v, want %v",
							x, y, out.Get(x*h+y), in.Get(y*w+x))
					}
				}
			}
			return nil
		},
	}
}

// convRadius is the stencil half-width of the convolution kernel.
const convRadius = 2

// ConvolutionKernel returns a 1-D 5-point convolution along rows of a 2-D
// grid with clamped borders: a stencil with neighbour reuse.
func ConvolutionKernel() *ir.Kernel {
	// out[y*w+x] = sum_{d=-2..2} in[y*w + clamp(x+d)] * coef[d+2]
	idx := func(d int64) ir.Expr {
		x := ir.Addi(ir.Gid(0), ir.I(d))
		// clamp via min/max on ints through float min/max (exact for the
		// small integers involved)
		clamped := ir.ToInt{X: ir.Bin{Op: ir.MaxF, X: ir.F(0),
			Y: ir.Bin{Op: ir.MinF,
				X: ir.ToFloat{X: x},
				Y: ir.ToFloat{X: ir.Subi(ir.Gsz(0), ir.I(1))}}}}
		return ir.Addi(ir.Muli(ir.Gid(1), ir.Gsz(0)), clamped)
	}
	sum := ir.Expr(ir.F(0))
	for d := int64(-convRadius); d <= convRadius; d++ {
		sum = ir.Add(sum, ir.Mul(
			ir.LoadF("in", idx(d)),
			ir.LoadF("coef", ir.I(d+convRadius))))
	}
	return &ir.Kernel{
		Name:    "convolve",
		WorkDim: 2,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("coef"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.StoreF("out", ir.Addi(ir.Muli(ir.Gid(1), ir.Gsz(0)), ir.Gid(0)), sum),
		},
	}
}

// Convolution returns the row-convolution application.
func Convolution() *App {
	return &App{
		Name:   "Convolution",
		Kernel: ConvolutionKernel(),
		Configs: []ir.NDRange{
			ir.Range2D(1024, 1024, 64, 1),
			ir.Range2D(4096, 2048, 64, 1),
		},
		Make: func(nd ir.NDRange) *ir.Args {
			w, h := nd.Global[0], nd.Global[1]
			in := ir.NewBufferF32("in", w*h)
			FillUniform(in, 311, -1, 1)
			coef := ir.FromF32("coef", []float64{0.0625, 0.25, 0.375, 0.25, 0.0625})
			return ir.NewArgs().Bind("in", in).Bind("coef", coef).
				Bind("out", ir.NewBufferF32("out", w*h))
		},
		Check: func(args *ir.Args, nd ir.NDRange) error {
			w, h := nd.Global[0], nd.Global[1]
			in, coef, out := args.Buffers["in"], args.Buffers["coef"], args.Buffers["out"]
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					want := float32(0)
					for d := -convRadius; d <= convRadius; d++ {
						xx := x + d
						if xx < 0 {
							xx = 0
						}
						if xx > w-1 {
							xx = w - 1
						}
						want += float32(in.Get(y*w+xx)) * float32(coef.Get(d+convRadius))
					}
					if got := out.Get(y*w + x); math.Abs(got-float64(want)) > 1e-4 {
						return fmt.Errorf("out[%d,%d] = %v, want %v", x, y, got, want)
					}
				}
			}
			return nil
		},
	}
}

// nbodySoftening avoids the singularity in the all-pairs force sum.
const nbodySoftening = 0.01

// NBodyKernel returns one step of all-pairs gravity along one axis: for
// each body, sum softened inverse-square attractions — O(n) loads and
// heavy rsqrt work per workitem, the classic GPU showcase.
func NBodyKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "nbody",
		WorkDim: 1,
		Params: []ir.Param{
			ir.Buf("posx"), ir.Buf("posy"), ir.Buf("mass"), ir.Buf("accx"),
			ir.ScalarI("n"),
		},
		Body: []ir.Stmt{
			ir.Set("xi", ir.LoadF("posx", ir.Gid(0))),
			ir.Set("yi", ir.LoadF("posy", ir.Gid(0))),
			ir.Set("ax", ir.F(0)),
			ir.Loop("j", ir.I(0), ir.Pi("n"),
				ir.Set("dx", ir.Sub(ir.LoadF("posx", ir.Vi("j")), ir.V("xi"))),
				ir.Set("dy", ir.Sub(ir.LoadF("posy", ir.Vi("j")), ir.V("yi"))),
				ir.Set("r2", ir.Add(ir.Add(
					ir.Mul(ir.V("dx"), ir.V("dx")),
					ir.Mul(ir.V("dy"), ir.V("dy"))),
					ir.F(nbodySoftening))),
				ir.Set("inv", ir.Call1(ir.Rsqrt, ir.V("r2"))),
				ir.Set("inv3", ir.Mul(ir.Mul(ir.V("inv"), ir.V("inv")), ir.V("inv"))),
				ir.Set("ax", ir.Add(ir.V("ax"),
					ir.Mul(ir.Mul(ir.LoadF("mass", ir.Vi("j")), ir.V("inv3")), ir.V("dx")))),
			),
			ir.StoreF("accx", ir.Gid(0), ir.V("ax")),
		},
	}
}

// NBody returns the all-pairs n-body application.
func NBody() *App {
	return &App{
		Name:   "NBody",
		Kernel: NBodyKernel(),
		Configs: []ir.NDRange{
			ir.Range1D(4096, 256),
			ir.Range1D(16384, 256),
		},
		Make: func(nd ir.NDRange) *ir.Args {
			n := nd.GlobalItems()
			px := ir.NewBufferF32("posx", n)
			py := ir.NewBufferF32("posy", n)
			m := ir.NewBufferF32("mass", n)
			FillUniform(px, 321, -10, 10)
			FillUniform(py, 322, -10, 10)
			FillUniform(m, 323, 0.1, 2)
			return ir.NewArgs().
				Bind("posx", px).Bind("posy", py).Bind("mass", m).
				Bind("accx", ir.NewBufferF32("accx", n)).
				SetScalar("n", float64(n))
		},
		Check: func(args *ir.Args, nd ir.NDRange) error {
			n := nd.GlobalItems()
			px, py := args.Buffers["posx"], args.Buffers["posy"]
			m, ax := args.Buffers["mass"], args.Buffers["accx"]
			// Spot-check a sample of bodies (O(n^2) full check is costly).
			for i := 0; i < n; i += maxInt(1, n/64) {
				want := float32(0)
				xi, yi := float32(px.Get(i)), float32(py.Get(i))
				for j := 0; j < n; j++ {
					dx := float32(px.Get(j)) - xi
					dy := float32(py.Get(j)) - yi
					r2 := dx*dx + dy*dy + nbodySoftening
					inv := 1 / float32(math.Sqrt(float64(r2)))
					want += float32(m.Get(j)) * inv * inv * inv * dx
				}
				if got := ax.Get(i); math.Abs(got-float64(want)) > 2e-2*math.Max(1, math.Abs(float64(want))) {
					return fmt.Errorf("accx[%d] = %v, want %v", i, got, want)
				}
			}
			return nil
		},
	}
}

// DotProductKernel returns the first stage of a dot product: per-workgroup
// tree reduction of x[i]*y[i] into one partial per group.
func DotProductKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "dotproduct",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("x"), ir.Buf("y"), ir.Buf("partial"), ir.ScalarI("levels")},
		Locals:  []ir.LocalArray{{Name: "scratch", Elem: ir.F32, Size: ir.Lsz(0)}},
		Body: []ir.Stmt{
			ir.LStoreF("scratch", ir.Lid(0),
				ir.Mul(ir.LoadF("x", ir.Gid(0)), ir.LoadF("y", ir.Gid(0)))),
			ir.Barrier{},
			ir.Loop("lev", ir.I(0), ir.Pi("levels"),
				ir.Set("s", ir.Bin{Op: ir.ShrI, X: ir.Lsz(0), Y: ir.Addi(ir.Vi("lev"), ir.I(1))}),
				ir.When(ir.Bin{Op: ir.LtI, X: ir.Lid(0), Y: ir.Vi("s")},
					ir.Set("tmp", ir.Add(
						ir.LLoadF("scratch", ir.Lid(0)),
						ir.LLoadF("scratch", ir.Addi(ir.Lid(0), ir.Vi("s")))))),
				ir.Barrier{},
				ir.When(ir.Bin{Op: ir.LtI, X: ir.Lid(0), Y: ir.Vi("s")},
					ir.LStoreF("scratch", ir.Lid(0), ir.V("tmp"))),
				ir.Barrier{},
			),
			ir.When(ir.Bin{Op: ir.EqI, X: ir.Lid(0), Y: ir.I(0)},
				ir.StoreF("partial", ir.Grp(0), ir.LLoadF("scratch", ir.I(0)))),
		},
	}
}

// DotProduct returns the two-stage dot-product application (kernel stage +
// host-side partial sum, as Check performs).
func DotProduct() *App {
	return &App{
		Name:   "DotProduct",
		Kernel: DotProductKernel(),
		Configs: []ir.NDRange{
			ir.Range1D(1<<20, 256),
			ir.Range1D(1<<22, 256),
		},
		Make: func(nd ir.NDRange) *ir.Args {
			n := nd.GlobalItems()
			local := nd.Local[0]
			if local == 0 {
				local = 256
			}
			x := ir.NewBufferF32("x", n)
			y := ir.NewBufferF32("y", n)
			FillUniform(x, 331, -1, 1)
			FillUniform(y, 332, -1, 1)
			return ir.NewArgs().
				Bind("x", x).Bind("y", y).
				Bind("partial", ir.NewBufferF32("partial", (n+local-1)/local)).
				SetScalar("levels", float64(log2i(local)))
		},
		Check: func(args *ir.Args, nd ir.NDRange) error {
			x, y := args.Buffers["x"], args.Buffers["y"]
			var want float64
			for i := 0; i < x.Len(); i++ {
				want += float64(float32(x.Get(i)) * float32(y.Get(i)))
			}
			partial := args.Buffers["partial"]
			var got float64
			for i := 0; i < partial.Len(); i++ {
				got += partial.Get(i)
			}
			if math.Abs(got-want) > 1e-3*math.Max(1, math.Abs(want)) {
				return fmt.Errorf("dot = %v, want %v", got, want)
			}
			return nil
		},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
