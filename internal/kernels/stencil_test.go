package kernels

import (
	"testing"

	"clperf/internal/ir"
)

// TestStencilFunctional executes both stencil family members at a small
// geometry and validates against the host reference (clamped borders
// included: the grid edge exercises every clamp direction).
func TestStencilFunctional(t *testing.T) {
	for _, app := range StencilRegistry() {
		for _, nd := range []ir.NDRange{
			ir.Range2D(64, 64, 16, 16),
			ir.Range2D(128, 32, 32, 4),
		} {
			args := app.Make(nd)
			if err := ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{Parallel: 4}); err != nil {
				t.Fatalf("%s %v: exec: %v", app.Name, nd.Global, err)
			}
			if err := app.Check(args, nd); err != nil {
				t.Fatalf("%s %v: %v", app.Name, nd.Global, err)
			}
		}
	}
}

// TestStencilRegistrySeparate pins the registry contract: the stencil
// family must not leak into Registry (the frozen Table II suite) or
// ExtraRegistry (rendered into results.txt via ext-roofline).
func TestStencilRegistrySeparate(t *testing.T) {
	frozen := map[string]bool{}
	for _, a := range append(Registry(), ExtraRegistry()...) {
		frozen[a.Name] = true
	}
	for _, a := range StencilRegistry() {
		if frozen[a.Name] {
			t.Errorf("stencil app %s leaked into a frozen registry", a.Name)
		}
	}
	if n := len(StencilRegistry()); n != 2 {
		t.Errorf("StencilRegistry has %d apps, want 2", n)
	}
}

// TestStencilPointCounts pins the kernel shape: radius r loads 4r+1
// cells per workitem.
func TestStencilPointCounts(t *testing.T) {
	for _, tc := range []struct {
		radius, points int
	}{{1, 5}, {2, 9}} {
		k := StencilKernel(tc.radius)
		want := map[int]string{5: "stencil5", 9: "stencil9"}[tc.points]
		if k.Name != want {
			t.Errorf("radius %d: kernel name %s, want %s", tc.radius, k.Name, want)
		}
	}
}
