package kernels

import (
	"testing"
	"testing/quick"

	"clperf/internal/ir"
)

// testConfig returns a reduced-size NDRange for functional testing of each
// app (the paper-sized configs are exercised by the timing models, which
// need no execution).
func testConfig(app *App) ir.NDRange {
	switch app.Name {
	case "Square":
		return ir.Range1D(4096, 64)
	case "Vectoraddition":
		return ir.Range1D(4096, 64)
	case "Matrixmul", "MatrixmulNaive":
		return ir.Range2D(48, 32, 8, 8)
	case "Reduction":
		return ir.Range1D(8192, 256)
	case "Histogram":
		return ir.Range1D(16384, 128)
	case "Prefixsum":
		return ir.Range1D(1024, 1024)
	case "Blackscholes":
		return ir.Range2D(64, 48, 8, 8)
	case "Binomialoption":
		return ir.Range1D(255*4, 255)
	}
	return app.DefaultConfig()
}

// Every Table II application must produce reference-correct results.
func TestAllAppsFunctional(t *testing.T) {
	for _, app := range Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			nd := testConfig(app)
			args := app.Make(nd)
			if err := ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{Parallel: 4}); err != nil {
				t.Fatalf("execute: %v", err)
			}
			if err := app.Check(args, nd); err != nil {
				t.Fatalf("check: %v", err)
			}
		})
	}
}

// Every app's kernel must validate and carry the paper's launch configs.
func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, app := range Registry() {
		if seen[app.Name] {
			t.Errorf("duplicate app %q", app.Name)
		}
		seen[app.Name] = true
		if err := ir.Validate(app.Kernel); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
		if len(app.Configs) == 0 {
			t.Errorf("%s: no configs", app.Name)
		}
		for _, nd := range app.Configs {
			if err := nd.Validate(); err != nil {
				t.Errorf("%s %v: %v", app.Name, nd, err)
			}
		}
	}
	if _, err := ByName("Square"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName must reject unknown apps")
	}
}

// Table II geometry spot checks.
func TestTableIIGeometries(t *testing.T) {
	sq := Square()
	if got := sq.Configs[3].Global[0]; got != 10000000 {
		t.Errorf("Square largest size = %d, want 10000000", got)
	}
	if !sq.Configs[0].LocalNull() {
		t.Error("Square must use NULL local size")
	}
	va := VectorAdd()
	if got := va.Configs[3].Global[0]; got != 11445000 {
		t.Errorf("VectorAdd largest size = %d, want 11445000", got)
	}
	bo := BinomialOption()
	if bo.Configs[0].Local[0] != 255 || bo.Configs[0].Global[0] != 255000 {
		t.Errorf("Binomialoption geometry %v", bo.Configs[0])
	}
	ps := PrefixSum()
	if ps.Configs[0].Local[0] != 1024 {
		t.Errorf("Prefixsum local = %d, want 1024", ps.Configs[0].Local[0])
	}
}

// Property: coarsening preserves results exactly.
func TestCoarsenPreservesResults(t *testing.T) {
	app := Square()
	for _, factor := range []int{2, 4, 10, 16} {
		nd := ir.Range1D(4000, 0)
		args := app.Make(nd)
		base := app.Make(nd)
		// Copy inputs so both runs see identical data.
		copy(base.Buffers["in"].Data, args.Buffers["in"].Data)

		resolved := nd.WithLocal([3]int{50, 1, 1})
		if err := ir.ExecRange(app.Kernel, base, resolved, ir.ExecOptions{}); err != nil {
			t.Fatal(err)
		}

		ck, err := Coarsen(app.Kernel, factor)
		if err != nil {
			t.Fatal(err)
		}
		cnd, err := CoarsenRange(resolved, factor)
		if err != nil {
			t.Fatal(err)
		}
		if err := ir.ExecRange(ck, args, cnd, ir.ExecOptions{}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4000; i++ {
			if args.Buffers["out"].Get(i) != base.Buffers["out"].Get(i) {
				t.Fatalf("factor %d: out[%d] differs", factor, i)
			}
		}
	}
}

func TestCoarsenRejectsUnsupported(t *testing.T) {
	// Barrier kernels cannot be coarsened this way.
	if _, err := Coarsen(ReductionKernel(), 2); err == nil {
		t.Error("Coarsen must reject barrier kernels")
	}
	// Kernels reading get_global_size(0) cannot either.
	k := &ir.Kernel{Name: "g", WorkDim: 1, Params: []ir.Param{ir.Buf("o")},
		Body: []ir.Stmt{ir.StoreF("o", ir.Gid(0), ir.ToFloat{X: ir.Gsz(0)})}}
	if _, err := Coarsen(k, 2); err == nil {
		t.Error("Coarsen must reject global-size readers")
	}
	// Factor 1 is the identity.
	if ck, err := Coarsen(SquareKernel(), 1); err != nil || ck.Name != "square" {
		t.Errorf("Coarsen(1) = %v, %v", ck, err)
	}
	if _, err := CoarsenRange(ir.Range1D(100, 0), 3); err == nil {
		t.Error("CoarsenRange must demand divisibility")
	}
}

// Property: results are independent of the workgroup size for kernels
// without cross-item communication.
func TestWorkgroupSizeInvariance(t *testing.T) {
	app := VectorAdd()
	prop := func(seed uint8) bool {
		locals := []int{1, 2, 4, 8, 16, 32, 64}
		local := locals[int(seed)%len(locals)]
		const n = 1024
		nd := ir.Range1D(n, local)
		args := app.Make(nd)
		ref := app.Make(nd)
		copy(ref.Buffers["a"].Data, args.Buffers["a"].Data)
		copy(ref.Buffers["b"].Data, args.Buffers["b"].Data)
		if err := ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{}); err != nil {
			return false
		}
		if err := ir.ExecRange(app.Kernel, ref, ir.Range1D(n, 128), ir.ExecOptions{}); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if args.Buffers["c"].Get(i) != ref.Buffers["c"].Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: Reduction partial sums add up to the full input sum at any
// power-of-two workgroup size.
func TestReductionInvariant(t *testing.T) {
	app := Reduction()
	for _, local := range []int{64, 128, 256, 512} {
		nd := ir.Range1D(4096, local)
		args := app.Make(nd)
		if err := ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{}); err != nil {
			t.Fatal(err)
		}
		var whole, parts float64
		for i := 0; i < 4096; i++ {
			whole += args.Buffers["in"].Get(i)
		}
		for i := 0; i < args.Buffers["partial"].Len(); i++ {
			parts += args.Buffers["partial"].Get(i)
		}
		if diff := whole - parts; diff > 1e-2 || diff < -1e-2 {
			t.Fatalf("local %d: partial sums %v != input sum %v", local, parts, whole)
		}
	}
}

// Property: the histogram conserves its population for random inputs.
func TestHistogramConservation(t *testing.T) {
	app := Histogram()
	nd := ir.Range1D(8192, 128)
	args := app.Make(nd)
	if err := ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	partial := args.Buffers["partial"]
	for i := 0; i < partial.Len(); i++ {
		total += partial.Get(i)
	}
	if total != 8192 {
		t.Fatalf("histogram population = %v, want 8192", total)
	}
}

func TestFillUniformDeterministic(t *testing.T) {
	a := ir.NewBufferF32("a", 64)
	b := ir.NewBufferF32("b", 64)
	FillUniform(a, 7, -1, 1)
	FillUniform(b, 7, -1, 1)
	for i := 0; i < 64; i++ {
		if a.Get(i) != b.Get(i) {
			t.Fatal("FillUniform must be deterministic per seed")
		}
		if a.Get(i) < -1 || a.Get(i) >= 1 {
			t.Fatalf("value %v out of range", a.Get(i))
		}
	}
	FillUniform(b, 8, -1, 1)
	same := true
	for i := 0; i < 64; i++ {
		if a.Get(i) != b.Get(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

// extraTestConfig shrinks the extra apps for functional testing.
func extraTestConfig(app *App) ir.NDRange {
	switch app.Name {
	case "Transpose":
		return ir.Range2D(64, 32, 8, 8)
	case "Convolution":
		return ir.Range2D(64, 16, 16, 1)
	case "NBody":
		return ir.Range1D(512, 64)
	case "DotProduct":
		return ir.Range1D(8192, 256)
	}
	return app.DefaultConfig()
}

// Every extra application must also produce reference-correct results.
func TestExtraAppsFunctional(t *testing.T) {
	for _, app := range ExtraRegistry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			nd := extraTestConfig(app)
			args := app.Make(nd)
			if err := ir.ExecRange(app.Kernel, args, nd, ir.ExecOptions{Parallel: 4}); err != nil {
				t.Fatalf("execute: %v", err)
			}
			if err := app.Check(args, nd); err != nil {
				t.Fatalf("check: %v", err)
			}
			if err := ir.Validate(app.Kernel); err != nil {
				t.Fatalf("validate: %v", err)
			}
		})
	}
}

// Transpose stores are maximally strided: the vectorizer must see that.
func TestTransposeStridesDetected(t *testing.T) {
	app := Transpose()
	nd := ir.Range2D(256, 256, 16, 16)
	rep, err := ir.VectorizeOpenCL(app.Kernel, app.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PackedFrac > 0.75 {
		t.Fatalf("transpose PackedFrac = %v; the strided store should not be packed", rep.PackedFrac)
	}
}
