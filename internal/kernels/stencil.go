package kernels

import (
	"fmt"
	"math"

	"clperf/internal/ir"
)

// StencilRegistry returns the stencil family used by the portability
// matrix experiment. It is deliberately a separate registry: Registry is
// frozen as the paper's Table II suite and ExtraRegistry feeds the
// ext-roofline table in results.txt, so neither can grow without
// perturbing published output. The matrix experiment draws from all
// three.
func StencilRegistry() []*App {
	return []*App{
		Stencil5(),
		Stencil9(),
	}
}

// stencilCenterWeight is the self-coefficient of the stencil update; the
// 4r neighbour points share the remaining weight equally, so the update
// is a convex average (bounded, easy to validate).
const stencilCenterWeight = 0.5

// StencilKernel returns one Jacobi-style sweep of a 2-D von Neumann
// stencil of the given radius with clamped borders:
//
//	out[y,x] = wc*in[y,x] + wn * sum_{d=1..r} (in[y,x-d] + in[y,x+d] +
//	                                           in[y-d,x] + in[y+d,x])
//
// with wc = stencilCenterWeight and wn = (1-wc)/(4r). Radius 1 is the
// classic 5-point stencil, radius 2 the 9-point. Border cells clamp their
// neighbour coordinates into the grid (same idiom as ConvolutionKernel),
// so every workitem performs the identical 4r+1 loads — the access stream
// is uniform, only its locality varies with geometry.
func StencilKernel(radius int) *ir.Kernel {
	if radius < 1 {
		panic(fmt.Sprintf("kernels: stencil radius %d < 1", radius))
	}
	// clamp(gid(dim)+d, 0, gsz(dim)-1) via float min/max (exact for the
	// small integers involved).
	clamped := func(dim int, d int64) ir.Expr {
		x := ir.Addi(ir.Gid(dim), ir.I(d))
		return ir.ToInt{X: ir.Bin{Op: ir.MaxF, X: ir.F(0),
			Y: ir.Bin{Op: ir.MinF,
				X: ir.ToFloat{X: x},
				Y: ir.ToFloat{X: ir.Subi(ir.Gsz(dim), ir.I(1))}}}}
	}
	// idx(xe, ye) = ye*w + xe
	idx := func(xe, ye ir.Expr) ir.Expr {
		return ir.Addi(ir.Muli(ye, ir.Gsz(0)), xe)
	}
	wn := (1 - stencilCenterWeight) / float64(4*radius)
	sum := ir.Expr(ir.Mul(ir.F(stencilCenterWeight),
		ir.LoadF("in", idx(ir.Gid(0), ir.Gid(1)))))
	for d := int64(1); d <= int64(radius); d++ {
		cross := ir.Add(
			ir.Add(
				ir.LoadF("in", idx(clamped(0, -d), ir.Gid(1))),
				ir.LoadF("in", idx(clamped(0, d), ir.Gid(1)))),
			ir.Add(
				ir.LoadF("in", idx(ir.Gid(0), clamped(1, -d))),
				ir.LoadF("in", idx(ir.Gid(0), clamped(1, d)))))
		sum = ir.Add(sum, ir.Mul(ir.F(wn), cross))
	}
	return &ir.Kernel{
		Name:    fmt.Sprintf("stencil%d", 4*radius+1),
		WorkDim: 2,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.StoreF("out", idx(ir.Gid(0), ir.Gid(1)), sum),
		},
	}
}

// stencilApp builds the App shared by the stencil family members.
func stencilApp(radius int, seed uint64, configs []ir.NDRange) *App {
	points := 4*radius + 1
	wn := (1 - stencilCenterWeight) / float64(4*radius)
	return &App{
		Name:    fmt.Sprintf("Stencil%d", points),
		Kernel:  StencilKernel(radius),
		Configs: configs,
		Make: func(nd ir.NDRange) *ir.Args {
			w, h := nd.Global[0], nd.Global[1]
			in := ir.NewBufferF32("in", w*h)
			FillUniform(in, seed, -1, 1)
			return ir.NewArgs().Bind("in", in).Bind("out", ir.NewBufferF32("out", w*h))
		},
		Check: func(args *ir.Args, nd ir.NDRange) error {
			w, h := nd.Global[0], nd.Global[1]
			in, out := args.Buffers["in"], args.Buffers["out"]
			clamp := func(v, hi int) int {
				if v < 0 {
					return 0
				}
				if v > hi {
					return hi
				}
				return v
			}
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					want := float32(stencilCenterWeight) * float32(in.Get(y*w+x))
					for d := 1; d <= radius; d++ {
						cross := float32(in.Get(y*w+clamp(x-d, w-1))) +
							float32(in.Get(y*w+clamp(x+d, w-1))) +
							float32(in.Get(clamp(y-d, h-1)*w+x)) +
							float32(in.Get(clamp(y+d, h-1)*w+x))
						want += float32(wn) * cross
					}
					if got := out.Get(y*w + x); math.Abs(got-float64(want)) > 1e-4 {
						return fmt.Errorf("out[%d,%d] = %v, want %v", x, y, got, want)
					}
				}
			}
			return nil
		},
	}
}

// Stencil5 returns the radius-1 (5-point) stencil application.
func Stencil5() *App {
	return stencilApp(1, 341, []ir.NDRange{
		ir.Range2D(512, 512, 16, 16),
		ir.Range2D(2048, 2048, 16, 16),
	})
}

// Stencil9 returns the radius-2 (9-point) stencil application.
func Stencil9() *App {
	return stencilApp(2, 342, []ir.NDRange{
		ir.Range2D(512, 512, 16, 16),
		ir.Range2D(2048, 2048, 16, 16),
	})
}
