package kernels

import (
	"fmt"
	"math"

	"clperf/internal/ir"
)

// ReductionKernel returns the workgroup tree reduction: each group sums its
// slice of the input through local memory and writes one partial result.
// The scalar "levels" must equal log2(local size).
func ReductionKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "reduce",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("partial"), ir.ScalarI("levels")},
		Locals:  []ir.LocalArray{{Name: "scratch", Elem: ir.F32, Size: ir.Lsz(0)}},
		Body: []ir.Stmt{
			ir.LStoreF("scratch", ir.Lid(0), ir.LoadF("in", ir.Gid(0))),
			ir.Barrier{},
			ir.Loop("lev", ir.I(0), ir.Pi("levels"),
				// stride s halves every level: s = Lsz >> (lev+1)
				ir.Set("s", ir.Bin{Op: ir.ShrI, X: ir.Lsz(0), Y: ir.Addi(ir.Vi("lev"), ir.I(1))}),
				ir.When(ir.Bin{Op: ir.LtI, X: ir.Lid(0), Y: ir.Vi("s")},
					ir.Set("tmp", ir.Add(
						ir.LLoadF("scratch", ir.Lid(0)),
						ir.LLoadF("scratch", ir.Addi(ir.Lid(0), ir.Vi("s")))))),
				ir.Barrier{},
				ir.When(ir.Bin{Op: ir.LtI, X: ir.Lid(0), Y: ir.Vi("s")},
					ir.LStoreF("scratch", ir.Lid(0), ir.V("tmp"))),
				ir.Barrier{},
			),
			ir.When(ir.Bin{Op: ir.EqI, X: ir.Lid(0), Y: ir.I(0)},
				ir.StoreF("partial", ir.Grp(0), ir.LLoadF("scratch", ir.I(0)))),
		},
	}
}

// Reduction returns the Reduction application (Table II: 640K..10.24M
// items, workgroups of 256).
func Reduction() *App {
	return &App{
		Name:   "Reduction",
		Kernel: ReductionKernel(),
		Configs: []ir.NDRange{
			ir.Range1D(640000, 256),
			ir.Range1D(2560000, 256),
			ir.Range1D(10240000, 256),
		},
		Make:  makeReductionArgs,
		Check: checkReduction,
	}
}

func makeReductionArgs(nd ir.NDRange) *ir.Args {
	n := nd.GlobalItems()
	local := nd.Local[0]
	if local == 0 {
		local = 256
	}
	in := ir.NewBufferF32("in", n)
	FillUniform(in, 21, 0, 1)
	groups := (n + local - 1) / local
	return ir.NewArgs().
		Bind("in", in).
		Bind("partial", ir.NewBufferF32("partial", groups)).
		SetScalar("levels", float64(log2i(local)))
}

func checkReduction(args *ir.Args, nd ir.NDRange) error {
	in := args.Buffers["in"]
	local := nd.Local[0]
	partial := args.Buffers["partial"]
	for g := 0; g < partial.Len(); g++ {
		// Sum in the same pairwise order as the kernel for bit-comparable
		// float32 results; a plain sum with loose tolerance also passes.
		want := float32(0)
		for i := g * local; i < (g+1)*local && i < in.Len(); i++ {
			want += float32(in.Get(i))
		}
		got := partial.Get(g)
		if math.Abs(got-float64(want)) > 1e-3*math.Max(1, math.Abs(float64(want))) {
			return fmt.Errorf("partial[%d] = %v, want %v", g, got, want)
		}
	}
	return nil
}

func log2i(n int) int {
	l := 0
	for 1<<uint(l+1) <= n {
		l++
	}
	return l
}

// HistogramKernel returns histogram256: each workgroup accumulates a local
// 256-bin histogram with atomics and flushes it to a per-group slice of the
// partial buffer.
func HistogramKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "histogram256",
		WorkDim: 1,
		Params:  []ir.Param{ir.BufI("in"), ir.BufI("partial")},
		Locals:  []ir.LocalArray{{Name: "bins", Elem: ir.I32, Size: ir.I(256)}},
		Body: []ir.Stmt{
			ir.For{Var: "t", Start: ir.Lid(0), End: ir.I(256), Step: ir.Lsz(0), Body: []ir.Stmt{
				ir.LocalStore{Arr: "bins", Index: ir.Vi("t"), Val: ir.I(0)},
			}},
			ir.Barrier{},
			ir.AtomicAdd{Arr: "bins",
				Index: ir.Bin{Op: ir.AndI, X: ir.LoadI("in", ir.Gid(0)), Y: ir.I(255)},
				Val:   ir.I(1)},
			ir.Barrier{},
			ir.For{Var: "t", Start: ir.Lid(0), End: ir.I(256), Step: ir.Lsz(0), Body: []ir.Stmt{
				ir.Store{Buf: "partial",
					Index: ir.Addi(ir.Muli(ir.Grp(0), ir.I(256)), ir.Vi("t")),
					Val:   ir.LocalLoad{Arr: "bins", Index: ir.Vi("t"), Elem: ir.I32}},
			}},
		},
	}
}

// Histogram returns the Histogram application (Table II: 409600 items,
// workgroups of 128).
func Histogram() *App {
	return &App{
		Name:    "Histogram",
		Kernel:  HistogramKernel(),
		Configs: []ir.NDRange{ir.Range1D(409600, 128)},
		Make: func(nd ir.NDRange) *ir.Args {
			n := nd.GlobalItems()
			local := nd.Local[0]
			if local == 0 {
				local = 128
			}
			in := ir.NewBufferI32("in", n)
			r := newRng(31)
			for i := 0; i < n; i++ {
				in.Set(i, float64(r.intn(256)))
			}
			groups := (n + local - 1) / local
			return ir.NewArgs().
				Bind("in", in).
				Bind("partial", ir.NewBufferI32("partial", groups*256))
		},
		Check: func(args *ir.Args, nd ir.NDRange) error {
			in := args.Buffers["in"]
			want := make([]float64, 256)
			for i := 0; i < in.Len(); i++ {
				want[int(in.Get(i))&255]++
			}
			partial := args.Buffers["partial"]
			got := make([]float64, 256)
			for i := 0; i < partial.Len(); i++ {
				got[i%256] += partial.Get(i)
			}
			for b := range want {
				if got[b] != want[b] {
					return fmt.Errorf("bin %d = %v, want %v", b, got[b], want[b])
				}
			}
			return nil
		},
	}
}

// PrefixSumKernel returns the single-workgroup inclusive scan
// (Hillis-Steele) through local memory. The scalar "levels" must equal
// log2(local size).
func PrefixSumKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "prefixSum",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out"), ir.ScalarI("levels")},
		Locals:  []ir.LocalArray{{Name: "scratch", Elem: ir.F32, Size: ir.Lsz(0)}},
		Body: []ir.Stmt{
			ir.LStoreF("scratch", ir.Lid(0), ir.LoadF("in", ir.Gid(0))),
			ir.Barrier{},
			ir.Loop("d", ir.I(0), ir.Pi("levels"),
				ir.Set("off", ir.Bin{Op: ir.ShlI, X: ir.I(1), Y: ir.Vi("d")}),
				ir.If{
					Cond: ir.Bin{Op: ir.GeI, X: ir.Lid(0), Y: ir.Vi("off")},
					Then: []ir.Stmt{ir.Set("tmp", ir.Add(
						ir.LLoadF("scratch", ir.Lid(0)),
						ir.LLoadF("scratch", ir.Subi(ir.Lid(0), ir.Vi("off")))))},
					Else: []ir.Stmt{ir.Set("tmp", ir.LLoadF("scratch", ir.Lid(0)))},
				},
				ir.Barrier{},
				ir.LStoreF("scratch", ir.Lid(0), ir.V("tmp")),
				ir.Barrier{},
			),
			ir.StoreF("out", ir.Gid(0), ir.LLoadF("scratch", ir.Lid(0))),
		},
	}
}

// PrefixSum returns the Prefixsum application (Table II: one workgroup of
// 1024).
func PrefixSum() *App {
	return &App{
		Name:    "Prefixsum",
		Kernel:  PrefixSumKernel(),
		Configs: []ir.NDRange{ir.Range1D(1024, 1024)},
		Make: func(nd ir.NDRange) *ir.Args {
			n := nd.GlobalItems()
			local := nd.Local[0]
			if local == 0 {
				local = n
			}
			in := ir.NewBufferF32("in", n)
			FillUniform(in, 41, 0, 2)
			return ir.NewArgs().
				Bind("in", in).
				Bind("out", ir.NewBufferF32("out", n)).
				SetScalar("levels", float64(log2i(local)))
		},
		Check: func(args *ir.Args, nd ir.NDRange) error {
			in := args.Buffers["in"]
			local := nd.Local[0]
			want := make([]float64, in.Len())
			for g := 0; g*local < in.Len(); g++ {
				acc := float64(0)
				for l := 0; l < local && g*local+l < in.Len(); l++ {
					acc += in.Get(g*local + l)
					want[g*local+l] = acc
				}
			}
			return Compare("out", args.Buffers["out"], want, 1e-3)
		},
	}
}
