package kernels

import (
	"math"

	"clperf/internal/ir"
)

// Binomial option pricing parameters shared by the kernel and the
// reference (Cox-Ross-Rubinstein tree).
const (
	boRiskFree   = 0.02
	boVolatility = 0.30
	boYears      = 1.0
)

// BinomialOptionKernel returns the binomialoption kernel: one workgroup
// prices one European call option by backward induction over a CRR tree
// with (local size - 1) time steps, keeping the level values in local
// memory and synchronizing with barriers each step.
//
// Scalars: "steps" must equal local size - 1; "dt", "pu", "pd" and "df"
// are the per-step CRR coefficients (u = e^{v sqrt(dt)}, risk-neutral
// probability and discount), precomputed on the host exactly as the SDK
// sample does.
func BinomialOptionKernel() *ir.Kernel {
	lid := ir.Lid(0)
	return &ir.Kernel{
		Name:    "binomialoption",
		WorkDim: 1,
		Params: []ir.Param{
			ir.Buf("price"), ir.Buf("strike"), ir.Buf("out"),
			ir.ScalarI("steps"), ir.Scalar("vsdt"), ir.Scalar("pu"), ir.Scalar("pd"),
		},
		Locals: []ir.LocalArray{{Name: "vals", Elem: ir.F32, Size: ir.Lsz(0)}},
		Body: []ir.Stmt{
			ir.Set("opt", ir.Grp(0)),
			ir.Set("S", ir.LoadF("price", ir.Vi("opt"))),
			ir.Set("X", ir.LoadF("strike", ir.Vi("opt"))),
			// Leaf payoff at node lid: S * e^{(2*lid - steps) * v sqrt(dt)} - X.
			ir.Set("up", ir.Subi(ir.Muli(ir.I(2), lid), ir.Pi("steps"))),
			ir.Set("leaf", ir.Sub(
				ir.Mul(ir.V("S"),
					ir.Call1(ir.Exp, ir.Mul(ir.ToFloat{X: ir.Vi("up")}, ir.P("vsdt")))),
				ir.V("X"))),
			ir.LStoreF("vals", lid, ir.Bin{Op: ir.MaxF, X: ir.V("leaf"), Y: ir.F(0)}),
			ir.Barrier{},
			// Backward induction: level `steps - s` nodes remain after step s.
			ir.Loop("s", ir.I(0), ir.Pi("steps"),
				ir.Set("level", ir.Subi(ir.Pi("steps"), ir.Vi("s"))),
				ir.When(ir.Bin{Op: ir.LtI, X: lid, Y: ir.Vi("level")},
					ir.Set("tmp", ir.Add(
						ir.Mul(ir.P("pu"), ir.LLoadF("vals", ir.Addi(lid, ir.I(1)))),
						ir.Mul(ir.P("pd"), ir.LLoadF("vals", lid))))),
				ir.Barrier{},
				ir.When(ir.Bin{Op: ir.LtI, X: lid, Y: ir.Vi("level")},
					ir.LStoreF("vals", lid, ir.V("tmp"))),
				ir.Barrier{},
			),
			ir.When(ir.Bin{Op: ir.EqI, X: lid, Y: ir.I(0)},
				ir.StoreF("out", ir.Vi("opt"), ir.LLoadF("vals", ir.I(0)))),
		},
	}
}

// BinomialOption returns the Binomialoption application (Table II: 255000
// and 2550000 workitems in groups of 255, i.e. 1000 and 10000 options).
func BinomialOption() *App {
	return &App{
		Name:   "Binomialoption",
		Kernel: BinomialOptionKernel(),
		Configs: []ir.NDRange{
			ir.Range1D(255000, 255),
			ir.Range1D(2550000, 255),
		},
		Make:  MakeBinomialArgs,
		Check: CheckBinomial,
	}
}

// MakeBinomialArgs builds one option per workgroup plus the CRR scalars.
func MakeBinomialArgs(nd ir.NDRange) *ir.Args {
	local := nd.Local[0]
	if local == 0 {
		local = 255
	}
	options := nd.GlobalItems() / local
	steps := local - 1
	price := ir.NewBufferF32("price", options)
	strike := ir.NewBufferF32("strike", options)
	FillUniform(price, 61, 5, 30)
	FillUniform(strike, 62, 1, 100)

	dt := boYears / float64(steps)
	vsdt := boVolatility * math.Sqrt(dt)
	u := math.Exp(vsdt)
	d := 1 / u
	p := (math.Exp(boRiskFree*dt) - d) / (u - d)
	df := math.Exp(-boRiskFree * dt)

	return ir.NewArgs().
		Bind("price", price).Bind("strike", strike).
		Bind("out", ir.NewBufferF32("out", options)).
		SetScalar("steps", float64(steps)).
		SetScalar("vsdt", vsdt).
		SetScalar("pu", df*p).
		SetScalar("pd", df*(1-p))
}

// CheckBinomial validates against a host-side CRR backward induction.
func CheckBinomial(args *ir.Args, nd ir.NDRange) error {
	price := args.Buffers["price"]
	strike := args.Buffers["strike"]
	steps := int(args.Scalars["steps"])
	vsdt := args.Scalars["vsdt"]
	pu := args.Scalars["pu"]
	pd := args.Scalars["pd"]

	want := make([]float64, price.Len())
	vals := make([]float64, steps+1)
	for o := range want {
		s, x := price.Get(o), strike.Get(o)
		for j := 0; j <= steps; j++ {
			vals[j] = math.Max(s*math.Exp(float64(2*j-steps)*vsdt)-x, 0)
		}
		for level := steps; level >= 1; level-- {
			for j := 0; j < level; j++ {
				vals[j] = pu*vals[j+1] + pd*vals[j]
			}
		}
		want[o] = vals[0]
	}
	return Compare("out", args.Buffers["out"], want, 2e-3)
}
