package kernels

import (
	"math"

	"clperf/internal/ir"
)

// Black-Scholes risk-free rate and volatility used by both the kernel and
// the reference implementation.
const (
	bsRiskFree   = 0.02
	bsVolatility = 0.30
)

// cndStmts emits statements computing the cumulative normal distribution of
// the float variable src into dst using the Abramowitz-Stegun polynomial,
// with a Select (not a branch) for the negative tail so the kernel keeps a
// straight control-flow graph.
func cndStmts(dst, src string) []ir.Stmt {
	const (
		a1, a2, a3 = 0.31938153, -0.356563782, 1.781477937
		a4, a5     = -1.821255978, 1.330274429
		rsqrt2pi   = 0.39894228040143267794
	)
	d := ir.V(src)
	abs := "abs_" + dst
	kv := "k_" + dst
	poly := "poly_" + dst
	w := "w_" + dst
	return []ir.Stmt{
		ir.Set(abs, ir.Call1(ir.Fabs, d)),
		ir.Set(kv, ir.Div(ir.F(1), ir.Add(ir.F(1), ir.Mul(ir.F(0.2316419), ir.V(abs))))),
		// Horner evaluation of the fifth-order polynomial in k.
		ir.Set(poly, ir.Mul(ir.V(kv),
			ir.Add(ir.F(a1), ir.Mul(ir.V(kv),
				ir.Add(ir.F(a2), ir.Mul(ir.V(kv),
					ir.Add(ir.F(a3), ir.Mul(ir.V(kv),
						ir.Add(ir.F(a4), ir.Mul(ir.V(kv), ir.F(a5))))))))))),
		ir.Set(w, ir.Sub(ir.F(1),
			ir.Mul(ir.Mul(ir.F(rsqrt2pi),
				ir.Call1(ir.Exp, ir.Mul(ir.F(-0.5), ir.Mul(d, d)))),
				ir.V(poly)))),
		ir.Set(dst, ir.Select{
			Cond: ir.Bin{Op: ir.LtF, X: d, Y: ir.F(0)},
			Then: ir.Sub(ir.F(1), ir.V(w)),
			Else: ir.V(w),
		}),
	}
}

func cndRef(d float64) float64 {
	const (
		a1, a2, a3 = 0.31938153, -0.356563782, 1.781477937
		a4, a5     = -1.821255978, 1.330274429
		rsqrt2pi   = 0.39894228040143267794
	)
	abs := math.Abs(d)
	k := 1 / (1 + 0.2316419*abs)
	poly := k * (a1 + k*(a2+k*(a3+k*(a4+k*a5))))
	w := 1 - rsqrt2pi*math.Exp(-0.5*d*d)*poly
	if d < 0 {
		return 1 - w
	}
	return w
}

// BlackScholesKernel returns the blackScholes kernel: a 2-D range of
// independent option valuations with a long straight-line body (the paper's
// example of a kernel whose per-workitem work dwarfs scheduling overhead).
func BlackScholesKernel() *ir.Kernel {
	idx := ir.Addi(ir.Muli(ir.Gid(1), ir.Gsz(0)), ir.Gid(0))
	body := []ir.Stmt{
		ir.Set("i", idx),
		ir.Set("S", ir.LoadF("price", ir.Vi("i"))),
		ir.Set("X", ir.LoadF("strike", ir.Vi("i"))),
		ir.Set("T", ir.LoadF("years", ir.Vi("i"))),
		ir.Set("sqrtT", ir.Call1(ir.Sqrt, ir.V("T"))),
		ir.Set("d1", ir.Div(
			ir.Add(ir.Call1(ir.Log, ir.Div(ir.V("S"), ir.V("X"))),
				ir.Mul(ir.Add(ir.F(bsRiskFree), ir.F(0.5*bsVolatility*bsVolatility)), ir.V("T"))),
			ir.Mul(ir.F(bsVolatility), ir.V("sqrtT")))),
		ir.Set("d2", ir.Sub(ir.V("d1"), ir.Mul(ir.F(bsVolatility), ir.V("sqrtT")))),
	}
	body = append(body, cndStmts("cnd1", "d1")...)
	body = append(body, cndStmts("cnd2", "d2")...)
	body = append(body,
		ir.Set("expRT", ir.Call1(ir.Exp, ir.Mul(ir.F(-bsRiskFree), ir.V("T")))),
		ir.StoreF("call", ir.Vi("i"),
			ir.Sub(ir.Mul(ir.V("S"), ir.V("cnd1")),
				ir.Mul(ir.Mul(ir.V("X"), ir.V("expRT")), ir.V("cnd2")))),
		ir.StoreF("put", ir.Vi("i"),
			ir.Sub(ir.Mul(ir.Mul(ir.V("X"), ir.V("expRT")), ir.Sub(ir.F(1), ir.V("cnd2"))),
				ir.Mul(ir.V("S"), ir.Sub(ir.F(1), ir.V("cnd1"))))),
	)
	return &ir.Kernel{
		Name:    "blackScholes",
		WorkDim: 2,
		Params: []ir.Param{
			ir.Buf("price"), ir.Buf("strike"), ir.Buf("years"),
			ir.Buf("call"), ir.Buf("put"),
		},
		Body: body,
	}
}

// BlackScholes returns the Blackscholes application (Table II: 1280x1280
// and 2560x2560 with 16x16 workgroups).
func BlackScholes() *App {
	return &App{
		Name:   "Blackscholes",
		Kernel: BlackScholesKernel(),
		Configs: []ir.NDRange{
			ir.Range2D(1280, 1280, 16, 16),
			ir.Range2D(2560, 2560, 16, 16),
		},
		Make: func(nd ir.NDRange) *ir.Args {
			n := nd.GlobalItems()
			price := ir.NewBufferF32("price", n)
			strike := ir.NewBufferF32("strike", n)
			years := ir.NewBufferF32("years", n)
			FillUniform(price, 51, 5, 30)
			FillUniform(strike, 52, 1, 100)
			FillUniform(years, 53, 0.25, 10)
			return ir.NewArgs().
				Bind("price", price).Bind("strike", strike).Bind("years", years).
				Bind("call", ir.NewBufferF32("call", n)).
				Bind("put", ir.NewBufferF32("put", n))
		},
		Check: func(args *ir.Args, nd ir.NDRange) error {
			price := args.Buffers["price"]
			strike := args.Buffers["strike"]
			years := args.Buffers["years"]
			n := price.Len()
			wantCall := make([]float64, n)
			wantPut := make([]float64, n)
			for i := 0; i < n; i++ {
				s, x, t := price.Get(i), strike.Get(i), years.Get(i)
				sqrtT := math.Sqrt(t)
				d1 := (math.Log(s/x) + (bsRiskFree+0.5*bsVolatility*bsVolatility)*t) /
					(bsVolatility * sqrtT)
				d2 := d1 - bsVolatility*sqrtT
				expRT := math.Exp(-bsRiskFree * t)
				wantCall[i] = s*cndRef(d1) - x*expRT*cndRef(d2)
				wantPut[i] = x*expRT*(1-cndRef(d2)) - s*(1-cndRef(d1))
			}
			if err := Compare("call", args.Buffers["call"], wantCall, 1e-3); err != nil {
				return err
			}
			return Compare("put", args.Buffers["put"], wantPut, 1e-3)
		},
	}
}
