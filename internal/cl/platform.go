package cl

import (
	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/gpu"
	"clperf/internal/units"
)

// DeviceType distinguishes compute devices.
type DeviceType int

// Device types.
const (
	DeviceCPU DeviceType = iota
	DeviceGPU
)

// String returns the CL-style name.
func (t DeviceType) String() string {
	if t == DeviceGPU {
		return "CL_DEVICE_TYPE_GPU"
	}
	return "CL_DEVICE_TYPE_CPU"
}

// Device is a compute device: the CPU or GPU model behind a platform.
type Device struct {
	Type DeviceType
	CPU  *cpu.Device // set when Type == DeviceCPU
	GPU  *gpu.Device // set when Type == DeviceGPU
}

// Name returns the device name string.
func (d *Device) Name() string {
	if d.Type == DeviceGPU {
		return d.GPU.Name()
	}
	return d.CPU.Name()
}

// ComputeUnits returns CL_DEVICE_MAX_COMPUTE_UNITS: hardware threads on the
// CPU, SMs on the GPU.
func (d *Device) ComputeUnits() int {
	if d.Type == DeviceGPU {
		return d.GPU.A.SMs
	}
	return d.CPU.A.LogicalCores()
}

// PeakFlops returns the device's peak single-precision throughput.
func (d *Device) PeakFlops() units.Throughput {
	if d.Type == DeviceGPU {
		return d.GPU.A.PeakFlops()
	}
	return d.CPU.A.PeakFlops()
}

// Extensions returns the device's extension strings
// (CL_DEVICE_EXTENSIONS). The CPU device exposes the workgroup-affinity
// extension the paper proposes; no real 2012 platform did.
func (d *Device) Extensions() []string {
	base := []string{"cl_khr_global_int32_base_atomics"}
	if d.Type == DeviceCPU {
		return append(base, "clperf_workgroup_affinity", "clperf_out_of_order_queue")
	}
	return append(base, "clperf_out_of_order_queue")
}

// Platform is an OpenCL platform exposing one device, like the Intel CPU
// and NVIDIA GPU platforms of the paper's Table I.
type Platform struct {
	Name    string
	Vendor  string
	Devices []*Device
}

// Platforms returns the simulated platforms of the paper's testbed: the
// Intel OpenCL platform fronting the dual Xeon E5645 and the NVIDIA
// platform fronting the GTX 580.
func Platforms() []*Platform {
	return []*Platform{
		{
			Name:    "Intel(R) OpenCL (simulated)",
			Vendor:  "clperf",
			Devices: []*Device{{Type: DeviceCPU, CPU: cpu.New(arch.XeonE5645())}},
		},
		{
			Name:    "NVIDIA CUDA (simulated)",
			Vendor:  "clperf",
			Devices: []*Device{{Type: DeviceGPU, GPU: gpu.New(arch.GTX580())}},
		},
	}
}

// CPUDevice returns the default CPU device.
func CPUDevice() *Device { return Platforms()[0].Devices[0] }

// GPUDevice returns the default GPU device.
func GPUDevice() *Device { return Platforms()[1].Devices[0] }
