package cl

import (
	"strconv"
	"sync/atomic"

	"clperf/internal/cpu"
	"clperf/internal/gpu"
	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/units"
)

// Event carries profiling timestamps for one enqueued command, as with
// CL_QUEUE_PROFILING_ENABLE.
type Event struct {
	Command string
	Queued  units.Duration
	Start   units.Duration
	End     units.Duration
}

// Duration returns the command's simulated execution time.
func (e *Event) Duration() units.Duration { return e.End - e.Start }

// CommandQueue executes commands in order against a simulated clock. The
// paper measures with blocking calls throughout, so every enqueue here
// completes synchronously: functional effects apply immediately and the
// clock advances by the device model's cost.
type CommandQueue struct {
	ctx *Context
	now units.Duration
	// functional controls whether NDRange launches execute the kernel or
	// only price it; harness sweeps over large geometries disable it.
	functional bool
	events     []*Event
	// enqLat is the modeled host-side submission latency: the gap between
	// CL_PROFILING_COMMAND_QUEUED and CL_PROFILING_COMMAND_START. Zero by
	// default (the paper measures with blocking calls, where the two
	// coincide); SetEnqueueLatency makes queued != start observable and
	// exposes the lag as the cl.queue.lag.ns metric.
	enqLat units.Duration
	// lastSpan is the span id of the most recent command, the parent for
	// kernel phase child spans.
	lastSpan int

	// LastKernel records the device result of the most recent NDRange
	// launch for inspection by the harness.
	LastKernel *KernelEvent
}

// KernelEvent pairs an event with the device-model result of the launch.
type KernelEvent struct {
	Event     *Event
	CPUResult *cpu.Result
	GPUResult *gpu.Result
}

// Time returns the launch's simulated kernel time.
func (ke *KernelEvent) Time() units.Duration { return ke.Event.Duration() }

// NewQueue creates a command queue on the context's device.
func NewQueue(ctx *Context) *CommandQueue {
	return &CommandQueue{ctx: ctx, functional: true}
}

// SetFunctional toggles functional execution of kernels (on by default).
// Timing is identical either way; sweeps over very large NDRanges disable
// execution to keep wall-clock reasonable.
func (q *CommandQueue) SetFunctional(on bool) { q.functional = on }

// SetEnqueueLatency models the host-side cost of submitting a command:
// every subsequent event's Start lags its Queued timestamp by d.
// Negative values clamp to zero.
func (q *CommandQueue) SetEnqueueLatency(d units.Duration) {
	if d < 0 {
		d = 0
	}
	q.enqLat = d
}

// Now returns the queue's simulated clock.
func (q *CommandQueue) Now() units.Duration { return q.now }

// Events returns all recorded events in order.
func (q *CommandQueue) Events() []*Event { return q.events }

// Finish drains the queue. Commands complete synchronously, so it only
// exists for API fidelity.
func (q *CommandQueue) Finish() {}

// record times a command on the queue's simulated clock and mirrors it
// into the context's recorder. The recorder may be nil (SetObs(nil)
// disables observability): every obs entry point is a no-op on a nil
// receiver, so record, noteBytes, and observeKernel all lean on that
// contract uniformly instead of guarding — a nil recorder leaves
// q.lastSpan at obs.NoParent and skips nothing else.
func (q *CommandQueue) record(cmd string, cost units.Duration) *Event {
	queued := q.now
	start := queued + q.enqLat
	ev := &Event{Command: cmd, Queued: queued, Start: start, End: start + cost}
	q.now = ev.End
	q.events = append(q.events, ev)
	rec := q.ctx.rec
	q.lastSpan = rec.Record(obs.NoParent, obs.KindCommand, cmd, ev.Start, ev.End)
	rec.SetTrack(q.lastSpan, "queue")
	reg := rec.Registry()
	reg.Add("cl.commands", 1)
	reg.Observe("cl.queue.lag.ns", float64(ev.Start-ev.Queued))
	return ev
}

// noteBytes counts a transfer's bytes against the per-API and total
// counters and annotates the command's span.
func (q *CommandQueue) noteBytes(api string, n int64) {
	rec := q.ctx.rec
	reg := rec.Registry()
	reg.Add("cl.bytes."+api, float64(n))
	reg.Add("cl.bytes.total", float64(n))
	rec.Annotate(q.lastSpan, "bytes", strconv.FormatInt(n, 10))
}

// copyCost prices an explicit transfer (clEnqueueRead/WriteBuffer): the
// runtime allocates a bounce object and copies bytes.
func (q *CommandQueue) copyCost(b *Buffer, bytes int64) units.Duration {
	dev := q.ctx.Device
	if dev.Type == DeviceCPU {
		a := dev.CPU.A
		return a.CopyOverhead + a.CopyBandwidth.Transfer(units.ByteSize(bytes))
	}
	a := dev.GPU.A
	bw := a.PCIeBandwidth
	if b.HostResident() {
		bw = a.PinnedBandwidth
	}
	return a.PCIeLatency + bw.Transfer(units.ByteSize(bytes))
}

// mapCost prices clEnqueueMapBuffer: on the CPU device host and device
// share memory, so mapping returns a pointer; on the GPU the buffer
// contents cross PCIe once — at pinned rate only when the buffer was
// allocated host-resident (AllocHostPtr), matching copyCost and the
// paper's Figure 7/8 allocation-flag distinction.
func (q *CommandQueue) mapCost(b *Buffer, bytes int64) units.Duration {
	dev := q.ctx.Device
	if dev.Type == DeviceCPU {
		return dev.CPU.A.MapOverhead
	}
	a := dev.GPU.A
	bw := a.PCIeBandwidth
	if b.HostResident() {
		bw = a.PinnedBandwidth
	}
	return a.MapOverhead + bw.Transfer(units.ByteSize(bytes))
}

// EnqueueWriteBuffer copies src into the buffer (host -> device).
func (q *CommandQueue) EnqueueWriteBuffer(b *Buffer, src []float64) (*Event, error) {
	if b == nil || b.ctx != q.ctx {
		return nil, wrap(ErrInvalidMemObject, "write buffer")
	}
	if len(src) > b.Len() {
		return nil, wrap(ErrInvalidValue, "write of %d elements into buffer of %d", len(src), b.Len())
	}
	b.data.CopyFrom(src)
	n := int64(len(src)) * b.data.Elem.Size()
	ev := q.record("clEnqueueWriteBuffer", q.copyCost(b, n))
	q.noteBytes("write", n)
	return ev, nil
}

// EnqueueReadBuffer copies the buffer into dst (device -> host).
func (q *CommandQueue) EnqueueReadBuffer(b *Buffer, dst []float64) (*Event, error) {
	if b == nil || b.ctx != q.ctx {
		return nil, wrap(ErrInvalidMemObject, "read buffer")
	}
	if len(dst) > b.Len() {
		return nil, wrap(ErrInvalidValue, "read of %d elements from buffer of %d", len(dst), b.Len())
	}
	copy(dst, b.data.Data[:len(dst)])
	n := int64(len(dst)) * b.data.Elem.Size()
	ev := q.record("clEnqueueReadBuffer", q.copyCost(b, n))
	q.noteBytes("read", n)
	return ev, nil
}

// EnqueueMapBuffer maps the buffer and returns a live view of its
// contents: writes through the view are visible to subsequent kernels
// without any copy — the behaviour (and the cost advantage) the paper
// measures for mapping APIs.
func (q *CommandQueue) EnqueueMapBuffer(b *Buffer, flags MapFlags) ([]float64, *Event, error) {
	if b == nil || b.ctx != q.ctx {
		return nil, nil, wrap(ErrInvalidMemObject, "map buffer")
	}
	if flags&(MapRead|MapWrite) == 0 {
		return nil, nil, wrap(ErrInvalidValue, "map flags %v", flags)
	}
	if !atomic.CompareAndSwapInt32(&b.mapped, 0, 1) {
		return nil, nil, wrap(ErrMapFailure, "buffer already mapped")
	}
	atomic.StoreUint32(&b.mapFlags, uint32(flags))
	ev := q.record("clEnqueueMapBuffer", q.mapCost(b, b.Bytes()))
	if q.ctx.Device.Type == DeviceGPU {
		// Only the GPU moves the contents across PCIe; a CPU map is a
		// pointer return, the zero-copy behaviour the paper recommends.
		q.noteBytes("map", b.Bytes())
	}
	return b.data.Data, ev, nil
}

// EnqueueUnmapBuffer releases a mapping. Only a mapping that could have
// been written (MapWrite) owes the PCIe write-back flush on the GPU; a
// MapRead-only mapping has nothing dirty to flush and unmaps for free.
func (q *CommandQueue) EnqueueUnmapBuffer(b *Buffer) (*Event, error) {
	if b == nil || b.ctx != q.ctx {
		return nil, wrap(ErrInvalidMemObject, "unmap buffer")
	}
	flags := MapFlags(atomic.LoadUint32(&b.mapFlags))
	if !atomic.CompareAndSwapInt32(&b.mapped, 1, 0) {
		return nil, wrap(ErrInvalidValue, "buffer not mapped")
	}
	cost := units.Duration(0)
	flush := q.ctx.Device.Type == DeviceGPU && flags&MapWrite != 0
	if flush {
		// Unmapping a written buffer flushes it back over PCIe, at pinned
		// rate only for host-resident allocations (as in mapCost).
		a := q.ctx.Device.GPU.A
		bw := a.PCIeBandwidth
		if b.HostResident() {
			bw = a.PinnedBandwidth
		}
		cost = bw.Transfer(units.ByteSize(b.Bytes()))
	}
	ev := q.record("clEnqueueUnmapBuffer", cost)
	if flush {
		q.noteBytes("unmap", b.Bytes())
	}
	return ev, nil
}

// EnqueueCopyBuffer copies src into dst device-side (clEnqueueCopyBuffer):
// no host round trip, so on any device it costs one device-memory move.
func (q *CommandQueue) EnqueueCopyBuffer(src, dst *Buffer, n int) (*Event, error) {
	if src == nil || dst == nil || src.ctx != q.ctx || dst.ctx != q.ctx {
		return nil, wrap(ErrInvalidMemObject, "copy buffer")
	}
	if n < 0 || n > src.Len() || n > dst.Len() {
		return nil, wrap(ErrInvalidValue, "copy of %d elements (src %d, dst %d)", n, src.Len(), dst.Len())
	}
	if src.data.Elem != dst.data.Elem {
		return nil, wrap(ErrInvalidMemObject, "copy between %v and %v buffers", src.data.Elem, dst.data.Elem)
	}
	copy(dst.data.Data[:n], src.data.Data[:n])
	bytes := units.ByteSize(int64(n) * src.data.Elem.Size())
	var cost units.Duration
	if q.ctx.Device.Type == DeviceCPU {
		a := q.ctx.Device.CPU.A
		// Device-side memcpy: read + write through DRAM.
		cost = a.MemBandwidth.Transfer(2 * bytes)
	} else {
		a := q.ctx.Device.GPU.A
		cost = a.MemBandwidth.Transfer(2 * bytes)
	}
	ev := q.record("clEnqueueCopyBuffer", cost)
	q.noteBytes("copy", int64(bytes))
	return ev, nil
}

// EnqueueFillBuffer fills the buffer with a value (clEnqueueFillBuffer).
func (q *CommandQueue) EnqueueFillBuffer(b *Buffer, v float64) (*Event, error) {
	if b == nil || b.ctx != q.ctx {
		return nil, wrap(ErrInvalidMemObject, "fill buffer")
	}
	b.data.Fill(v)
	bytes := units.ByteSize(b.Bytes())
	var cost units.Duration
	if q.ctx.Device.Type == DeviceCPU {
		cost = q.ctx.Device.CPU.A.MemBandwidth.Transfer(bytes)
	} else {
		cost = q.ctx.Device.GPU.A.MemBandwidth.Transfer(bytes)
	}
	ev := q.record("clEnqueueFillBuffer", cost)
	q.noteBytes("fill", int64(bytes))
	return ev, nil
}

// EnqueueNDRangeKernel launches the kernel over the NDRange (local size may
// be NULL — all zero — to let the implementation choose).
func (q *CommandQueue) EnqueueNDRangeKernel(k *Kernel, nd ir.NDRange) (*KernelEvent, error) {
	if k.ctx != q.ctx {
		return nil, wrap(ErrInvalidValue, "kernel from another context")
	}
	for _, p := range k.k.Params {
		if p.Kind == ir.BufferParam {
			if _, ok := k.args.Buffers[p.Name]; !ok {
				return nil, wrap(ErrInvalidKernelArgs, "kernel %s: argument %q not set", k.k.Name, p.Name)
			}
		} else if _, ok := k.args.Scalars[p.Name]; !ok {
			return nil, wrap(ErrInvalidKernelArgs, "kernel %s: argument %q not set", k.k.Name, p.Name)
		}
	}
	if err := nd.Validate(); err != nil {
		return nil, wrap(ErrInvalidWorkGroup, "%v", err)
	}

	dev := q.ctx.Device
	var resolved ir.NDRange
	if dev.Type == DeviceCPU {
		resolved = dev.CPU.ResolveLocal(nd)
	} else {
		resolved = dev.GPU.ResolveLocal(nd)
	}
	if err := k.checkAccess(resolved); err != nil {
		return nil, err
	}

	ke := &KernelEvent{}
	var cost units.Duration
	if dev.Type == DeviceCPU {
		res, err := dev.CPU.Launch(k.k, k.args, resolved, cpu.LaunchOptions{SkipFunctional: !q.functional})
		if err != nil {
			return nil, err
		}
		ke.CPUResult = res
		cost = res.Time
	} else {
		res, err := dev.GPU.Launch(k.k, k.args, resolved, gpu.LaunchOptions{SkipFunctional: !q.functional})
		if err != nil {
			return nil, err
		}
		ke.GPUResult = res
		cost = res.Time
	}
	ke.Event = q.record("clEnqueueNDRangeKernel:"+k.k.Name, cost)
	q.observeKernel(k.k.Name, ke)
	q.LastKernel = ke
	return ke, nil
}

// observeKernel attaches the device model's cost breakdown to the just
// recorded command span as phase child spans (queue -> kernel -> phase)
// and feeds the per-kernel time histogram. Phases overlap by design:
// the models take max(compute, memory floor), they do not sum.
func (q *CommandQueue) observeKernel(name string, ke *KernelEvent) {
	rec := q.ctx.rec
	ev := ke.Event
	parent := q.lastSpan
	rec.Registry().Observe("cl.kernel.ns:"+name, float64(ev.Duration()))
	s := ev.Start
	switch {
	case ke.CPUResult != nil:
		res := ke.CPUResult
		rec.Annotate(parent, "workers", strconv.Itoa(res.Workers))
		rec.Annotate(parent, "groups", strconv.Itoa(res.Groups))
		if res.Cost != nil {
			rec.Annotate(parent, "simd_lanes", strconv.Itoa(res.Cost.Width))
		}
		rec.Record(parent, obs.KindPhase, "dispatch", s, s+res.Dispatch)
		rec.Record(parent, obs.KindPhase, "compute", s, s+res.Compute)
		rec.Record(parent, obs.KindPhase, "mem_floor", s, s+res.MemFloor)
	case ke.GPUResult != nil:
		res := ke.GPUResult
		rec.Annotate(parent, "occupancy", strconv.FormatFloat(res.Occupancy, 'g', 4, 64))
		rec.Record(parent, obs.KindPhase, "compute", s, s+res.Compute)
		rec.Record(parent, obs.KindPhase, "mem_floor", s, s+res.MemFloor)
	}
}
