package cl

import (
	"sort"

	"clperf/internal/ir"
)

// Program is a cl_program: kernels compiled from OpenCL C source (the
// subset documented at ir.Parse).
type Program struct {
	ctx     *Context
	kernels map[string]*ir.Kernel
}

// CreateProgramWithSource compiles source into a program, as
// clCreateProgramWithSource + clBuildProgram: parse, then the standard
// simplification passes (constant folding, identity elimination, dead-code
// removal), so source-built kernels are priced like hand-optimized IR.
func (c *Context) CreateProgramWithSource(src string) (*Program, error) {
	ks, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	p := &Program{ctx: c, kernels: map[string]*ir.Kernel{}}
	for _, k := range ks {
		p.kernels[k.Name] = ir.Simplify(k)
	}
	return p, nil
}

// KernelNames lists the program's kernels, sorted.
func (p *Program) KernelNames() []string {
	names := make([]string, 0, len(p.kernels))
	for n := range p.kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateKernel instantiates the named kernel (clCreateKernel).
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	k, ok := p.kernels[name]
	if !ok {
		return nil, wrap(ErrInvalidValue, "program has no kernel %q (have %v)", name, p.KernelNames())
	}
	return p.ctx.CreateKernel(k)
}
