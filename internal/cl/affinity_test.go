package cl

import (
	"testing"

	"clperf/internal/ir"
)

// The clperf_workgroup_affinity extension: an aligned consumer launch
// beats a misaligned one, reproducing the paper's Figure 9 inside the
// OpenCL API — the improvement the paper proposes.
func TestPinnedLaunchAffinityBenefit(t *testing.T) {
	mulKernel := &ir.Kernel{
		Name:    "scale",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.StoreF("out", ir.Gid(0), ir.Mul(ir.LoadF("in", ir.Gid(0)), ir.F(2))),
		},
	}
	run := func(misalign bool) float64 {
		ctx := NewContext(CPUDevice())
		q := NewQueue(ctx)
		const (
			cores = 8
			local = 2048
			n     = cores * local
		)
		a, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		b, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		c, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		k1, _ := ctx.CreateKernel(mulKernel)
		_ = k1.SetBufferArg("in", a)
		_ = k1.SetBufferArg("out", b)
		if _, err := q.EnqueueNDRangeKernelPinned(k1, ir.Range1D(n, local),
			func(g int) int { return g }); err != nil {
			t.Fatal(err)
		}
		k2, _ := ctx.CreateKernel(mulKernel)
		_ = k2.SetBufferArg("in", b) // consumes the first launch's output
		_ = k2.SetBufferArg("out", c)
		aff := func(g int) int { return g }
		if misalign {
			aff = func(g int) int { return (g + 1) % cores }
		}
		ke, err := q.EnqueueNDRangeKernelPinned(k2, ir.Range1D(n, local), aff)
		if err != nil {
			t.Fatal(err)
		}
		return float64(ke.Time())
	}
	aligned := run(false)
	misaligned := run(true)
	if misaligned <= aligned {
		t.Fatalf("misaligned pinned launch (%v) must be slower than aligned (%v)",
			misaligned, aligned)
	}
}

func TestPinnedLaunchFunctional(t *testing.T) {
	ctx := NewContext(CPUDevice())
	q := NewQueue(ctx)
	const n = 1024
	in, _ := ctx.CreateBuffer(MemReadOnly, ir.F32, n)
	out, _ := ctx.CreateBuffer(MemWriteOnly, ir.F32, n)
	view, _, _ := q.EnqueueMapBuffer(in, MapWrite)
	for i := range view {
		view[i] = float64(i)
	}
	_, _ = q.EnqueueUnmapBuffer(in)

	k, _ := ctx.CreateKernel(squareKernel())
	_ = k.SetBufferArg("in", in)
	_ = k.SetBufferArg("out", out)
	ke, err := q.EnqueueNDRangeKernelPinned(k, ir.Range1D(n, 128), RoundRobinAffinity(12))
	if err != nil {
		t.Fatal(err)
	}
	if ke.Time() <= 0 {
		t.Fatal("pinned launch must take time")
	}
	res, _, _ := q.EnqueueMapBuffer(out, MapRead)
	for i := 0; i < n; i++ {
		if res[i] != float64(i*i) {
			t.Fatalf("out[%d] = %v", i, res[i])
		}
	}
	_, _ = q.EnqueueUnmapBuffer(out)
}

func TestPinnedLaunchRejectsGPU(t *testing.T) {
	ctx := NewContext(GPUDevice())
	q := NewQueue(ctx)
	k, _ := ctx.CreateKernel(squareKernel())
	b, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, 64)
	_ = k.SetBufferArg("in", b)
	_ = k.SetBufferArg("out", b)
	if _, err := q.EnqueueNDRangeKernelPinned(k, ir.Range1D(64, 8), RoundRobinAffinity(8)); !IsCode(err, ErrInvalidOperation) {
		t.Fatalf("GPU pinned launch: %v, want CL_INVALID_OPERATION", err)
	}
}

func TestAffinityHelpers(t *testing.T) {
	rr := RoundRobinAffinity(4)
	if rr(5) != 1 {
		t.Errorf("round robin: %d", rr(5))
	}
	blk := BlockAffinity(16, 4)
	if blk(0) != 0 || blk(7) != 1 || blk(15) != 3 {
		t.Errorf("block affinity wrong: %d %d %d", blk(0), blk(7), blk(15))
	}
}
