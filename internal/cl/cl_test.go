package cl

import (
	"testing"

	"clperf/internal/ir"
)

func squareKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "square",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Set("x", ir.LoadF("in", ir.Gid(0))),
			ir.StoreF("out", ir.Gid(0), ir.Mul(ir.V("x"), ir.V("x"))),
		},
	}
}

func TestPlatforms(t *testing.T) {
	ps := Platforms()
	if len(ps) != 2 {
		t.Fatalf("platforms = %d, want 2", len(ps))
	}
	if CPUDevice().Type != DeviceCPU || GPUDevice().Type != DeviceGPU {
		t.Fatal("device types wrong")
	}
	if CPUDevice().ComputeUnits() != 24 {
		t.Fatalf("CPU compute units = %d, want 24", CPUDevice().ComputeUnits())
	}
	if GPUDevice().ComputeUnits() != 16 {
		t.Fatalf("GPU compute units = %d, want 16", GPUDevice().ComputeUnits())
	}
}

func TestBufferCreation(t *testing.T) {
	ctx := NewContext(CPUDevice())
	b, err := ctx.CreateBuffer(MemReadWrite, ir.F32, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1024 || b.Bytes() != 4096 {
		t.Fatalf("len/bytes = %d/%d", b.Len(), b.Bytes())
	}
	if b.Data().Base == 0 {
		t.Fatal("buffer must get a nonzero simulated base address")
	}

	b2, _ := ctx.CreateBuffer(MemReadOnly, ir.F32, 16)
	if b2.Data().Base < b.Data().Base+b.Bytes() {
		t.Fatal("buffers must not overlap")
	}

	if _, err := ctx.CreateBuffer(MemReadOnly|MemWriteOnly, ir.F32, 4); !IsCode(err, ErrInvalidValue) {
		t.Fatalf("conflicting flags: err = %v, want CL_INVALID_VALUE", err)
	}
	if _, err := ctx.CreateBuffer(MemReadWrite, ir.F32, 0); !IsCode(err, ErrInvalidValue) {
		t.Fatalf("zero size: err = %v", err)
	}
}

func TestMemFlagsString(t *testing.T) {
	if s := (MemReadOnly | MemAllocHostPtr).String(); s != "CL_MEM_READ_ONLY|CL_MEM_ALLOC_HOST_PTR" {
		t.Errorf("String = %q", s)
	}
	if s := MemFlags(0).String(); s != "CL_MEM_READ_WRITE" {
		t.Errorf("default flags String = %q", s)
	}
}

func TestKernelArgErrors(t *testing.T) {
	ctx := NewContext(CPUDevice())
	k, err := ctx.CreateKernel(squareKernel())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, 64)

	if err := k.SetBufferArg("nope", b); !IsCode(err, ErrInvalidKernelArgs) {
		t.Fatalf("unknown arg: %v", err)
	}
	if err := k.SetBufferArg("in", nil); !IsCode(err, ErrInvalidMemObject) {
		t.Fatalf("nil buffer: %v", err)
	}
	other := NewContext(CPUDevice())
	ob, _ := other.CreateBuffer(MemReadWrite, ir.F32, 64)
	if err := k.SetBufferArg("in", ob); !IsCode(err, ErrInvalidMemObject) {
		t.Fatalf("cross-context buffer: %v", err)
	}
	ib, _ := ctx.CreateBuffer(MemReadWrite, ir.I32, 64)
	if err := k.SetBufferArg("in", ib); !IsCode(err, ErrInvalidKernelArgs) {
		t.Fatalf("type mismatch: %v", err)
	}
	if err := k.SetScalarArg("in", 1); !IsCode(err, ErrInvalidKernelArgs) {
		t.Fatalf("buffer as scalar: %v", err)
	}

	// Launch with unbound args fails.
	q := NewQueue(ctx)
	if _, err := q.EnqueueNDRangeKernel(k, ir.Range1D(64, 8)); !IsCode(err, ErrInvalidKernelArgs) {
		t.Fatalf("unbound launch: %v", err)
	}
}

func TestBuildRejectsInvalidKernel(t *testing.T) {
	ctx := NewContext(CPUDevice())
	bad := &ir.Kernel{Name: "bad", WorkDim: 1, Params: []ir.Param{ir.Buf("o")},
		Body: []ir.Stmt{ir.StoreF("o", ir.Gid(0), ir.V("undefined"))}}
	if _, err := ctx.CreateKernel(bad); err == nil {
		t.Fatal("CreateKernel must validate")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	ctx := NewContext(CPUDevice())
	q := NewQueue(ctx)
	b, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, 128)
	src := make([]float64, 128)
	for i := range src {
		src[i] = float64(i) * 0.25
	}
	wev, err := q.EnqueueWriteBuffer(b, src)
	if err != nil {
		t.Fatal(err)
	}
	if wev.Duration() <= 0 {
		t.Fatal("write must take simulated time")
	}
	dst := make([]float64, 128)
	if _, err := q.EnqueueReadBuffer(b, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], src[i])
		}
	}
	// Oversized transfers are rejected.
	if _, err := q.EnqueueWriteBuffer(b, make([]float64, 129)); !IsCode(err, ErrInvalidValue) {
		t.Fatalf("oversized write: %v", err)
	}
}

func TestMapSemantics(t *testing.T) {
	ctx := NewContext(CPUDevice())
	q := NewQueue(ctx)
	b, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, 16)

	view, mev, err := q.EnqueueMapBuffer(b, MapWrite)
	if err != nil {
		t.Fatal(err)
	}
	// Mapping twice fails.
	if _, _, err := q.EnqueueMapBuffer(b, MapRead); !IsCode(err, ErrMapFailure) {
		t.Fatalf("double map: %v", err)
	}
	view[3] = 42
	if _, err := q.EnqueueUnmapBuffer(b); err != nil {
		t.Fatal(err)
	}
	// Unmapping again fails.
	if _, err := q.EnqueueUnmapBuffer(b); !IsCode(err, ErrInvalidValue) {
		t.Fatalf("double unmap: %v", err)
	}
	// Writes through the view are visible: the paper's zero-copy semantics.
	dst := make([]float64, 16)
	if _, err := q.EnqueueReadBuffer(b, dst); err != nil {
		t.Fatal(err)
	}
	if dst[3] != 42 {
		t.Fatalf("mapped write lost: dst[3] = %v", dst[3])
	}
	// Map flags must be provided.
	if _, _, err := q.EnqueueMapBuffer(b, 0); !IsCode(err, ErrInvalidValue) {
		t.Fatalf("empty map flags: %v", err)
	}
	_ = mev
}

// The paper's Figure 7/8 premise at the API level: mapping is cheaper than
// copying, and the gap grows with size.
func TestMapCheaperThanCopy(t *testing.T) {
	ctx := NewContext(CPUDevice())
	q := NewQueue(ctx)
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		b, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		src := make([]float64, n)
		wev, err := q.EnqueueWriteBuffer(b, src)
		if err != nil {
			t.Fatal(err)
		}
		_, mev, err := q.EnqueueMapBuffer(b, MapRead)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueUnmapBuffer(b); err != nil {
			t.Fatal(err)
		}
		if mev.Duration() >= wev.Duration() {
			t.Fatalf("n=%d: map (%v) not cheaper than copy (%v)", n, mev.Duration(), wev.Duration())
		}
	}
}

func TestAccessFlagEnforcement(t *testing.T) {
	ctx := NewContext(CPUDevice())
	q := NewQueue(ctx)
	k, _ := ctx.CreateKernel(squareKernel())
	in, _ := ctx.CreateBuffer(MemWriteOnly, ir.F32, 64) // wrong: kernel reads it
	out, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, 64)
	if err := k.SetBufferArg("in", in); err != nil {
		t.Fatal(err)
	}
	if err := k.SetBufferArg("out", out); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRangeKernel(k, ir.Range1D(64, 8)); !IsCode(err, ErrInvalidOperation) {
		t.Fatalf("reading a write-only buffer: %v", err)
	}

	// And writing a read-only buffer.
	k2, _ := ctx.CreateKernel(squareKernel())
	in2, _ := ctx.CreateBuffer(MemReadOnly, ir.F32, 64)
	out2, _ := ctx.CreateBuffer(MemReadOnly, ir.F32, 64) // wrong: kernel writes it
	_ = k2.SetBufferArg("in", in2)
	_ = k2.SetBufferArg("out", out2)
	if _, err := q.EnqueueNDRangeKernel(k2, ir.Range1D(64, 8)); !IsCode(err, ErrInvalidOperation) {
		t.Fatalf("writing a read-only buffer: %v", err)
	}
}

func TestNDRangeLaunchFunctionalAndClock(t *testing.T) {
	for _, dev := range []*Device{CPUDevice(), GPUDevice()} {
		ctx := NewContext(dev)
		q := NewQueue(ctx)
		k, err := ctx.CreateKernel(squareKernel())
		if err != nil {
			t.Fatal(err)
		}
		const n = 256
		in, _ := ctx.CreateBuffer(MemReadOnly, ir.F32, n)
		out, _ := ctx.CreateBuffer(MemWriteOnly, ir.F32, n)
		src := make([]float64, n)
		for i := range src {
			src[i] = float64(i)
		}
		if _, err := q.EnqueueWriteBuffer(in, src); err != nil {
			t.Fatal(err)
		}
		_ = k.SetBufferArg("in", in)
		_ = k.SetBufferArg("out", out)

		before := q.Now()
		ke, err := q.EnqueueNDRangeKernel(k, ir.Range1D(n, 0)) // NULL local size
		if err != nil {
			t.Fatal(err)
		}
		if q.Now() <= before {
			t.Fatal("queue clock must advance")
		}
		if ke.Time() <= 0 {
			t.Fatal("kernel event must have duration")
		}
		dst := make([]float64, n)
		if _, err := q.EnqueueReadBuffer(out, dst); err != nil {
			t.Fatal(err)
		}
		for i := range dst {
			if dst[i] != float64(i*i) {
				t.Fatalf("%s: out[%d] = %v, want %v", dev.Name(), i, dst[i], i*i)
			}
		}
		// Events are recorded in order with consistent timestamps.
		evs := q.Events()
		if len(evs) != 3 {
			t.Fatalf("events = %d, want 3", len(evs))
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End {
				t.Fatal("event timestamps must be ordered")
			}
		}
	}
}

func TestInvalidGeometry(t *testing.T) {
	ctx := NewContext(CPUDevice())
	q := NewQueue(ctx)
	k, _ := ctx.CreateKernel(squareKernel())
	b, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, 100)
	_ = k.SetBufferArg("in", b)
	_ = k.SetBufferArg("out", b)
	// Local size does not divide global.
	if _, err := q.EnqueueNDRangeKernel(k, ir.Range1D(100, 7)); !IsCode(err, ErrInvalidWorkGroup) {
		t.Fatalf("indivisible local size: %v", err)
	}
}

func TestPinnedBuffersOnGPU(t *testing.T) {
	ctx := NewContext(GPUDevice())
	q := NewQueue(ctx)
	norm, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, 1<<20)
	pinned, _ := ctx.CreateBuffer(MemReadWrite|MemAllocHostPtr, ir.F32, 1<<20)
	src := make([]float64, 1<<20)
	e1, err := q.EnqueueWriteBuffer(norm, src)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := q.EnqueueWriteBuffer(pinned, src)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Duration() >= e1.Duration() {
		t.Fatalf("pinned transfer (%v) should beat pageable (%v)", e2.Duration(), e1.Duration())
	}
}

func TestCopyAndFillBuffer(t *testing.T) {
	ctx := NewContext(CPUDevice())
	q := NewQueue(ctx)
	src, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, 64)
	dst, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, 64)

	if _, err := q.EnqueueFillBuffer(src, 3.5); err != nil {
		t.Fatal(err)
	}
	ev, err := q.EnqueueCopyBuffer(src, dst, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Duration() <= 0 {
		t.Fatal("device copy must take time")
	}
	out := make([]float64, 64)
	if _, err := q.EnqueueReadBuffer(dst, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if out[i] != 3.5 {
			t.Fatalf("dst[%d] = %v, want 3.5", i, out[i])
		}
	}
	for i := 32; i < 64; i++ {
		if out[i] != 0 {
			t.Fatalf("dst[%d] = %v, want untouched 0", i, out[i])
		}
	}

	// Errors.
	if _, err := q.EnqueueCopyBuffer(src, dst, 100); !IsCode(err, ErrInvalidValue) {
		t.Fatalf("oversized copy: %v", err)
	}
	ibuf, _ := ctx.CreateBuffer(MemReadWrite, ir.I32, 64)
	if _, err := q.EnqueueCopyBuffer(src, ibuf, 8); !IsCode(err, ErrInvalidMemObject) {
		t.Fatalf("type-mismatched copy: %v", err)
	}
}

func TestProgramFromSource(t *testing.T) {
	ctx := NewContext(CPUDevice())
	q := NewQueue(ctx)
	prog, err := ctx.CreateProgramWithSource(`
		__kernel void triple(__global float *a, __global float *out) {
			int i = get_global_id(0);
			out[i] = 3.0f * a[i];
		}
		__kernel void offset(__global float *a, __global float *out, float d) {
			out[get_global_id(0)] = a[get_global_id(0)] + d;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	if names := prog.KernelNames(); len(names) != 2 || names[0] != "offset" {
		t.Fatalf("KernelNames = %v", names)
	}

	k, err := prog.CreateKernel("triple")
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	a, _ := ctx.CreateBuffer(MemReadOnly, ir.F32, n)
	out, _ := ctx.CreateBuffer(MemWriteOnly, ir.F32, n)
	view, _, _ := q.EnqueueMapBuffer(a, MapWrite)
	for i := range view {
		view[i] = float64(i)
	}
	_, _ = q.EnqueueUnmapBuffer(a)
	_ = k.SetBufferArg("a", a)
	_ = k.SetBufferArg("out", out)
	if _, err := q.EnqueueNDRangeKernel(k, ir.Range1D(n, 32)); err != nil {
		t.Fatal(err)
	}
	res := make([]float64, n)
	_, _ = q.EnqueueReadBuffer(out, res)
	for i := 0; i < n; i++ {
		if res[i] != float64(3*i) {
			t.Fatalf("out[%d] = %v, want %v", i, res[i], 3*i)
		}
	}

	if _, err := prog.CreateKernel("nope"); !IsCode(err, ErrInvalidValue) {
		t.Fatalf("missing kernel: %v", err)
	}
	if _, err := ctx.CreateProgramWithSource("not a kernel"); err == nil {
		t.Fatal("bad source must fail to build")
	}
}

func TestDeviceExtensions(t *testing.T) {
	cpuExt := CPUDevice().Extensions()
	found := false
	for _, e := range cpuExt {
		if e == "clperf_workgroup_affinity" {
			found = true
		}
	}
	if !found {
		t.Errorf("CPU device must expose clperf_workgroup_affinity: %v", cpuExt)
	}
	for _, e := range GPUDevice().Extensions() {
		if e == "clperf_workgroup_affinity" {
			t.Error("GPU device must not expose the affinity extension")
		}
	}
}

func TestSubBuffer(t *testing.T) {
	ctx := NewContext(CPUDevice())
	q := NewQueue(ctx)
	parent, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, 256)
	sub, err := parent.CreateSubBuffer(64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 128 {
		t.Fatalf("sub len = %d", sub.Len())
	}
	if sub.Data().Base != parent.Data().Addr(64) {
		t.Fatal("sub-buffer base address must offset into the parent")
	}

	// A kernel writing the sub-buffer is visible through the parent.
	k, _ := ctx.CreateKernel(squareKernel())
	_ = k.SetBufferArg("in", sub)
	_ = k.SetBufferArg("out", sub)
	view, _, _ := q.EnqueueMapBuffer(parent, MapWrite)
	for i := range view {
		view[i] = 2
	}
	_, _ = q.EnqueueUnmapBuffer(parent)
	if _, err := q.EnqueueNDRangeKernel(k, ir.Range1D(128, 32)); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 256)
	_, _ = q.EnqueueReadBuffer(parent, got)
	for i := 0; i < 256; i++ {
		want := 2.0
		if i >= 64 && i < 192 {
			want = 4
		}
		if got[i] != want {
			t.Fatalf("parent[%d] = %v, want %v", i, got[i], want)
		}
	}

	// Bounds errors.
	if _, err := parent.CreateSubBuffer(200, 100); !IsCode(err, ErrInvalidValue) {
		t.Fatalf("oversized sub-buffer: %v", err)
	}
	if _, err := parent.CreateSubBuffer(-1, 10); !IsCode(err, ErrInvalidValue) {
		t.Fatalf("negative origin: %v", err)
	}
}
