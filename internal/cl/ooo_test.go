package cl

import (
	"testing"

	"clperf/internal/ir"
)

// The out-of-order queue must overlap independent transfers with compute:
// a double-buffered pipeline beats its in-order equivalent.
func TestOOOOverlapsTransferWithCompute(t *testing.T) {
	const n = 1 << 20

	runInOrder := func() float64 {
		ctx := NewContext(CPUDevice())
		q := NewQueue(ctx)
		q.SetFunctional(false)
		k, _ := ctx.CreateKernel(squareKernel())
		a, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		b, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		outA, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		outB, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		src := make([]float64, n)
		_, _ = q.EnqueueWriteBuffer(a, src)
		_ = k.SetBufferArg("in", a)
		_ = k.SetBufferArg("out", outA)
		_, _ = q.EnqueueNDRangeKernel(k, ir.Range1D(n, 256))
		_, _ = q.EnqueueWriteBuffer(b, src)
		_ = k.SetBufferArg("in", b)
		_ = k.SetBufferArg("out", outB)
		_, _ = q.EnqueueNDRangeKernel(k, ir.Range1D(n, 256))
		return float64(q.Now())
	}

	runOOO := func() float64 {
		ctx := NewContext(CPUDevice())
		q := NewOOOQueue(ctx)
		k, _ := ctx.CreateKernel(squareKernel())
		a, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		b, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		outA, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		outB, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		src := make([]float64, n)
		wa, err := q.EnqueueWriteBuffer(a, src)
		if err != nil {
			t.Fatal(err)
		}
		// The second upload depends on nothing: it overlaps kernel A.
		wb, err := q.EnqueueWriteBuffer(b, src)
		if err != nil {
			t.Fatal(err)
		}
		_ = k.SetBufferArg("in", a)
		_ = k.SetBufferArg("out", outA)
		ka, err := q.EnqueueNDRangeKernel(k, ir.Range1D(n, 256), wa)
		if err != nil {
			t.Fatal(err)
		}
		_ = k.SetBufferArg("in", b)
		_ = k.SetBufferArg("out", outB)
		if _, err := q.EnqueueNDRangeKernel(k, ir.Range1D(n, 256), wb, ka); err != nil {
			t.Fatal(err)
		}
		return float64(q.Finish())
	}

	inOrder := runInOrder()
	ooo := runOOO()
	if ooo >= inOrder {
		t.Fatalf("out-of-order pipeline (%v) must beat in-order (%v)", ooo, inOrder)
	}
}

func TestOOODependenciesRespected(t *testing.T) {
	ctx := NewContext(CPUDevice())
	q := NewOOOQueue(ctx)
	k, _ := ctx.CreateKernel(squareKernel())
	const n = 4096
	in, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
	out, _ := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i)
	}
	w, err := q.EnqueueWriteBuffer(in, src)
	if err != nil {
		t.Fatal(err)
	}
	_ = k.SetBufferArg("in", in)
	_ = k.SetBufferArg("out", out)
	ke, err := q.EnqueueNDRangeKernel(k, ir.Range1D(n, 256), w)
	if err != nil {
		t.Fatal(err)
	}
	if ke.Start < w.End {
		t.Fatalf("kernel started (%v) before its dependency finished (%v)", ke.Start, w.End)
	}
	dst := make([]float64, n)
	r, err := q.EnqueueReadBuffer(out, dst, ke)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start < ke.End {
		t.Fatal("read started before the kernel it depends on")
	}
	for i := 0; i < n; i++ {
		if dst[i] != float64(i*i) {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], i*i)
		}
	}
	if q.Finish() != r.End {
		t.Fatalf("Finish = %v, want %v", q.Finish(), r.End)
	}
	if len(q.Events()) != 3 {
		t.Fatalf("events = %d", len(q.Events()))
	}
}
