package cl

import (
	"testing"

	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/units"
)

// vecaddKernel builds a minimal vector-add kernel for observability
// tests.
func vecaddKernel(t *testing.T, ctx *Context) *Kernel {
	t.Helper()
	p, err := ctx.CreateProgramWithSource(`
__kernel void vadd(__global float *a, __global float *b, __global float *c) {
    int i = get_global_id(0);
    c[i] = a[i] + b[i];
}`)
	if err != nil {
		t.Fatal(err)
	}
	k, err := p.CreateKernel("vadd")
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func setupVecadd(t *testing.T, n int) (*Context, *CommandQueue, *Kernel) {
	t.Helper()
	ctx := NewContext(CPUDevice())
	q := NewQueue(ctx)
	k := vecaddKernel(t, ctx)
	for _, name := range []string{"a", "b", "c"} {
		b, err := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetBufferArg(name, b); err != nil {
			t.Fatal(err)
		}
	}
	return ctx, q, k
}

func TestEnqueueLatencySeparatesQueuedFromStart(t *testing.T) {
	ctx := NewContext(CPUDevice())
	q := NewQueue(ctx)
	b, err := ctx.CreateBuffer(MemReadWrite, ir.F32, 1024)
	if err != nil {
		t.Fatal(err)
	}

	// Default: blocking submission, queued == start.
	ev, err := q.EnqueueWriteBuffer(b, make([]float64, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Queued != ev.Start {
		t.Fatalf("default queued %v != start %v", ev.Queued, ev.Start)
	}

	const lag = 750 * units.Nanosecond
	q.SetEnqueueLatency(lag)
	before := q.Now()
	ev, err = q.EnqueueWriteBuffer(b, make([]float64, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Queued != before {
		t.Fatalf("queued = %v, want enqueue time %v", ev.Queued, before)
	}
	if got := ev.Start - ev.Queued; got != lag {
		t.Fatalf("start-queued = %v, want %v", got, lag)
	}
	if ev.End-ev.Start <= 0 {
		t.Fatal("transfer lost its cost")
	}

	// The lag lands in the cl.queue.lag.ns histogram.
	snap := ctx.Obs().Registry().Snapshot()
	var found bool
	for _, h := range snap.Hists {
		if h.Name == "cl.queue.lag.ns" {
			found = true
			if h.Max < float64(lag) {
				t.Fatalf("lag histogram max = %g, want >= %g", h.Max, float64(lag))
			}
		}
	}
	if !found {
		t.Fatal("cl.queue.lag.ns not recorded")
	}

	q.SetEnqueueLatency(-5)
	ev, err = q.EnqueueWriteBuffer(b, make([]float64, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Queued != ev.Start {
		t.Fatal("negative latency should clamp to zero")
	}
}

func TestQueueRecordsSpansAndBytes(t *testing.T) {
	const n = 4096
	ctx, q, _ := setupVecadd(t, n)
	b, err := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float64, n)
	if _, err := q.EnqueueWriteBuffer(b, src); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueReadBuffer(b, src); err != nil {
		t.Fatal(err)
	}

	reg := ctx.Obs().Registry()
	wantBytes := float64(n * 4)
	if got := reg.Counter("cl.bytes.write"); got != wantBytes {
		t.Fatalf("cl.bytes.write = %g, want %g", got, wantBytes)
	}
	if got := reg.Counter("cl.bytes.read"); got != wantBytes {
		t.Fatalf("cl.bytes.read = %g, want %g", got, wantBytes)
	}
	if got := reg.Counter("cl.bytes.total"); got != 2*wantBytes {
		t.Fatalf("cl.bytes.total = %g, want %g", got, 2*wantBytes)
	}
	if got := reg.Counter("cl.commands"); got != 2 {
		t.Fatalf("cl.commands = %g, want 2", got)
	}

	spans := ctx.Obs().Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Kind != obs.KindCommand || s.Track != "queue" {
			t.Fatalf("span = %+v", s)
		}
	}
	// Span times mirror the profiling event times.
	evs := q.Events()
	for i, s := range spans {
		if s.Start != evs[i].Start || s.End != evs[i].End {
			t.Fatalf("span %d times %v..%v != event %v..%v", i, s.Start, s.End, evs[i].Start, evs[i].End)
		}
	}
}

func TestKernelSpanTreeAndHistogram(t *testing.T) {
	const n = 1 << 14
	ctx, q, k := setupVecadd(t, n)
	ke, err := q.EnqueueNDRangeKernel(k, ir.Range1D(n, 256))
	if err != nil {
		t.Fatal(err)
	}

	spans := ctx.Obs().Spans()
	var root *obs.Span
	phases := map[string]*obs.Span{}
	for i := range spans {
		s := &spans[i]
		switch s.Kind {
		case obs.KindCommand:
			root = s
		case obs.KindPhase:
			phases[s.Name] = s
		}
	}
	if root == nil {
		t.Fatal("no command span recorded")
	}
	for _, name := range []string{"dispatch", "compute", "mem_floor"} {
		p := phases[name]
		if p == nil {
			t.Fatalf("missing phase span %q", name)
		}
		if p.Parent != root.ID {
			t.Fatalf("phase %q parent = %d, want %d", name, p.Parent, root.ID)
		}
		if p.Start < root.Start || p.End > root.End {
			t.Fatalf("phase %q [%v,%v] escapes parent [%v,%v]", name, p.Start, p.End, root.Start, root.End)
		}
	}
	if d := phases["compute"].Duration(); d != ke.CPUResult.Compute {
		t.Fatalf("compute phase = %v, want %v", d, ke.CPUResult.Compute)
	}

	snap := ctx.Obs().Registry().Snapshot()
	var hist *obs.HistStat
	for i := range snap.Hists {
		if snap.Hists[i].Name == "cl.kernel.ns:vadd" {
			hist = &snap.Hists[i]
		}
	}
	if hist == nil {
		t.Fatal("cl.kernel.ns:vadd histogram missing")
	}
	if hist.Count != 1 || hist.Sum != float64(ke.Event.Duration()) {
		t.Fatalf("kernel histogram = %+v, want one sample of %v", hist, ke.Event.Duration())
	}
}

func TestSetObsNilDisablesRecording(t *testing.T) {
	const n = 1024
	ctx, q, k := setupVecadd(t, n)
	ctx.SetObs(nil)
	if _, err := q.EnqueueNDRangeKernel(k, ir.Range1D(n, 256)); err != nil {
		t.Fatal(err)
	}
	if ctx.Obs().Len() != 0 {
		t.Fatal("nil recorder should swallow spans")
	}
}

func TestPinnedLaunchPublishesCacheMetrics(t *testing.T) {
	const n = 1 << 12
	ctx, q, k := setupVecadd(t, n)
	if _, err := q.EnqueueNDRangeKernelPinned(k, ir.Range1D(n, 256), RoundRobinAffinity(4)); err != nil {
		t.Fatal(err)
	}
	reg := ctx.Obs().Registry()
	if reg.Gauge("cache.l1.accesses") <= 0 {
		t.Fatal("pinned launch should publish cache access counts")
	}
	hr := reg.Gauge("cache.l1.hitrate")
	if hr < 0 || hr > 1 {
		t.Fatalf("cache.l1.hitrate = %g", hr)
	}
}
