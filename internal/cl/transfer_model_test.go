package cl

import (
	"testing"

	"clperf/internal/ir"
	"clperf/internal/units"
)

// The paper's Figure 7/8 allocation-flag distinction: a map of a
// non-host-resident buffer crosses plain PCIe; only AllocHostPtr
// buffers move at the pinned rate. copyCost always honoured this —
// these tests pin mapCost and the unmap write-back to the same model.

func gpuMapEvent(t *testing.T, flags MemFlags, mapFlags MapFlags) (mapEv, unmapEv *Event, bytes int64) {
	t.Helper()
	ctx := NewContext(GPUDevice())
	q := NewQueue(ctx)
	b, err := ctx.CreateBuffer(flags, ir.F32, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	_, mev, err := q.EnqueueMapBuffer(b, mapFlags)
	if err != nil {
		t.Fatal(err)
	}
	uev, err := q.EnqueueUnmapBuffer(b)
	if err != nil {
		t.Fatal(err)
	}
	return mev, uev, b.Bytes()
}

func TestMapCostAllocationFlag(t *testing.T) {
	a := GPUDevice().GPU.A
	mevDev, _, n := gpuMapEvent(t, MemReadWrite, MapWrite)
	mevHost, _, _ := gpuMapEvent(t, MemReadWrite|MemAllocHostPtr, MapWrite)

	wantDev := a.MapOverhead + a.PCIeBandwidth.Transfer(units.ByteSize(n))
	if got := mevDev.Duration(); got != wantDev {
		t.Errorf("device-resident map cost = %v, want PCIe rate %v", got, wantDev)
	}
	wantHost := a.MapOverhead + a.PinnedBandwidth.Transfer(units.ByteSize(n))
	if got := mevHost.Duration(); got != wantHost {
		t.Errorf("host-resident map cost = %v, want pinned rate %v", got, wantHost)
	}
	// Pinned bandwidth exceeds plain PCIe, so the host-resident map must
	// be strictly cheaper.
	if mevHost.Duration() >= mevDev.Duration() {
		t.Errorf("host-resident map (%v) not cheaper than device-resident (%v)",
			mevHost.Duration(), mevDev.Duration())
	}
}

func TestUnmapFlushMatchesAllocation(t *testing.T) {
	a := GPUDevice().GPU.A
	_, uevDev, n := gpuMapEvent(t, MemReadWrite, MapWrite)
	_, uevHost, _ := gpuMapEvent(t, MemReadWrite|MemAllocHostPtr, MapWrite)

	if want := a.PCIeBandwidth.Transfer(units.ByteSize(n)); uevDev.Duration() != want {
		t.Errorf("device-resident unmap flush = %v, want PCIe rate %v", uevDev.Duration(), want)
	}
	if want := a.PinnedBandwidth.Transfer(units.ByteSize(n)); uevHost.Duration() != want {
		t.Errorf("host-resident unmap flush = %v, want pinned rate %v", uevHost.Duration(), want)
	}
}

// A MapRead-only mapping has nothing dirty: unmap must not charge the
// PCIe write-back flush (regression: it used to flush unconditionally).
func TestUnmapReadOnlyFree(t *testing.T) {
	ctx := NewContext(GPUDevice())
	q := NewQueue(ctx)
	b, err := ctx.CreateBuffer(MemReadWrite, ir.F32, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.EnqueueMapBuffer(b, MapRead); err != nil {
		t.Fatal(err)
	}
	before := ctx.Obs().Registry().Counter("cl.bytes.unmap")
	uev, err := q.EnqueueUnmapBuffer(b)
	if err != nil {
		t.Fatal(err)
	}
	if uev.Duration() != 0 {
		t.Errorf("read-only unmap cost = %v, want 0", uev.Duration())
	}
	if after := ctx.Obs().Registry().Counter("cl.bytes.unmap"); after != before {
		t.Errorf("read-only unmap counted %v transfer bytes, want none", after-before)
	}

	// A writable mapping of the same buffer still owes the flush and the
	// byte accounting.
	if _, _, err := q.EnqueueMapBuffer(b, MapRead|MapWrite); err != nil {
		t.Fatal(err)
	}
	uev, err = q.EnqueueUnmapBuffer(b)
	if err != nil {
		t.Fatal(err)
	}
	if uev.Duration() == 0 {
		t.Error("writable unmap must charge the write-back flush")
	}
	if got := ctx.Obs().Registry().Counter("cl.bytes.unmap"); got != float64(b.Bytes()) {
		t.Errorf("writable unmap counted %v bytes, want %v", got, b.Bytes())
	}
}
