package cl

import (
	"sync/atomic"

	"clperf/internal/ir"
	"clperf/internal/units"
)

// OOOQueue is an out-of-order command queue
// (CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE): commands declare their
// dependencies through event wait lists, and independent commands overlap
// in simulated time. The model has two engines, as real devices do — a
// compute engine executing kernels and a DMA engine moving buffers — so a
// transfer can hide behind an unrelated kernel, the classic double-buffer
// optimization.
//
// Functional effects apply in enqueue order (the host side is still one
// thread); wait lists govern timing only, so callers must declare every
// true dependency for the timeline to be meaningful — exactly the contract
// of the real API.
type OOOQueue struct {
	ctx   *Context
	costs *CommandQueue // reused for its cost model only

	computeFree  units.Duration
	transferFree units.Duration
	events       []*Event

	// seq numbers every event in enqueue order and records maps each
	// command's buffer read/write sets plus its declared wait-list edges —
	// the event-graph export internal/san builds its happens-before
	// relation from.
	seq     map[*Event]int
	records []CommandRecord
}

// CommandRecord is the analyzable shadow of one enqueued command: what it
// touched and which events it declared it waits on. Reads and Writes name
// context buffers (unique per context); Waits holds the Seq of every
// wait-list event enqueued on this queue. Because functional effects
// apply in enqueue order while wait lists alone govern simulated timing,
// a conflicting pair of commands with no declared happens-before path is
// a silent hazard — exactly what internal/san flags.
type CommandRecord struct {
	Seq     int      `json:"seq"`
	Command string   `json:"command"`
	Engine  string   `json:"engine"` // "compute" or "transfer"
	Reads   []string `json:"reads,omitempty"`
	Writes  []string `json:"writes,omitempty"`
	Waits   []int    `json:"waits,omitempty"`
}

// NewOOOQueue creates an out-of-order queue on the context's device.
func NewOOOQueue(ctx *Context) *OOOQueue {
	return &OOOQueue{
		ctx:   ctx,
		costs: &CommandQueue{ctx: ctx, functional: false},
		seq:   map[*Event]int{},
	}
}

// Events returns every recorded event in enqueue order.
func (q *OOOQueue) Events() []*Event { return q.events }

// Commands returns the analyzable record of every enqueued command, in
// enqueue order.
func (q *OOOQueue) Commands() []CommandRecord { return q.records }

// note records the just-scheduled event's analyzable shadow.
func (q *OOOQueue) note(ev *Event, engine string, reads, writes []string, waitList []*Event) {
	n := len(q.events) - 1
	q.seq[ev] = n
	rec := CommandRecord{Seq: n, Command: ev.Command, Engine: engine,
		Reads: reads, Writes: writes}
	for _, w := range waitList {
		if w == nil {
			continue
		}
		if s, ok := q.seq[w]; ok {
			rec.Waits = append(rec.Waits, s)
		}
	}
	q.records = append(q.records, rec)
}

// Finish returns the makespan: the time all enqueued commands complete.
func (q *OOOQueue) Finish() units.Duration {
	var end units.Duration
	for _, ev := range q.events {
		if ev.End > end {
			end = ev.End
		}
	}
	return end
}

func ready(waitList []*Event) units.Duration {
	var r units.Duration
	for _, ev := range waitList {
		if ev != nil && ev.End > r {
			r = ev.End
		}
	}
	return r
}

// schedule places a command on an engine no earlier than its dependencies.
func (q *OOOQueue) schedule(cmd string, engineFree *units.Duration,
	cost units.Duration, waitList []*Event) *Event {
	start := ready(waitList)
	if *engineFree > start {
		start = *engineFree
	}
	ev := &Event{Command: cmd, Queued: start, Start: start, End: start + cost}
	*engineFree = ev.End
	q.events = append(q.events, ev)
	return ev
}

// EnqueueWriteBuffer copies src into the buffer after waitList completes
// (DMA engine).
func (q *OOOQueue) EnqueueWriteBuffer(b *Buffer, src []float64, waitList ...*Event) (*Event, error) {
	if b == nil || b.ctx != q.ctx {
		return nil, wrap(ErrInvalidMemObject, "write buffer")
	}
	if len(src) > b.Len() {
		return nil, wrap(ErrInvalidValue, "write of %d elements into buffer of %d", len(src), b.Len())
	}
	b.data.CopyFrom(src)
	cost := q.costs.copyCost(b, int64(len(src))*b.data.Elem.Size())
	ev := q.schedule("clEnqueueWriteBuffer", &q.transferFree, cost, waitList)
	q.note(ev, "transfer", nil, []string{b.data.Name}, waitList)
	return ev, nil
}

// EnqueueReadBuffer copies the buffer into dst after waitList completes
// (DMA engine).
func (q *OOOQueue) EnqueueReadBuffer(b *Buffer, dst []float64, waitList ...*Event) (*Event, error) {
	if b == nil || b.ctx != q.ctx {
		return nil, wrap(ErrInvalidMemObject, "read buffer")
	}
	if len(dst) > b.Len() {
		return nil, wrap(ErrInvalidValue, "read of %d elements from buffer of %d", len(dst), b.Len())
	}
	copy(dst, b.data.Data[:len(dst)])
	cost := q.costs.copyCost(b, int64(len(dst))*b.data.Elem.Size())
	ev := q.schedule("clEnqueueReadBuffer", &q.transferFree, cost, waitList)
	q.note(ev, "transfer", []string{b.data.Name}, nil, waitList)
	return ev, nil
}

// EnqueueNDRangeKernel launches the kernel after waitList completes
// (compute engine).
func (q *OOOQueue) EnqueueNDRangeKernel(k *Kernel, nd ir.NDRange, waitList ...*Event) (*Event, error) {
	if k.ctx != q.ctx {
		return nil, wrap(ErrInvalidValue, "kernel from another context")
	}
	ke, err := q.costs.EnqueueNDRangeKernel(k, nd) // prices and validates; no functional run
	if err != nil {
		return nil, err
	}
	// Re-run functionally (the costs queue skips it) so results are real.
	dev := q.ctx.Device
	var resolved ir.NDRange
	if dev.Type == DeviceCPU {
		resolved = dev.CPU.ResolveLocal(nd)
	} else {
		resolved = dev.GPU.ResolveLocal(nd)
	}
	if err := ir.ExecRange(k.k, k.args, resolved, ir.ExecOptions{Parallel: 8}); err != nil {
		return nil, err
	}
	cost := ke.Event.Duration()
	ev := q.schedule("clEnqueueNDRangeKernel:"+k.k.Name, &q.computeFree, cost, waitList)
	q.note(ev, "compute", k.bufferNames(false), k.bufferNames(true), waitList)
	return ev, nil
}

// bufferNames maps the kernel's IR-level read or write set (parameter
// names) through its argument bindings to context buffer names.
func (k *Kernel) bufferNames(writes bool) []string {
	rd, wr := ir.BufferAccess(k.k)
	set := rd
	if writes {
		set = wr
	}
	names := make([]string, 0, len(set))
	for _, param := range set {
		if b, ok := k.bufs[param]; ok && b != nil {
			names = append(names, b.data.Name)
		}
	}
	return names
}

// EnqueueMapBuffer maps the buffer after waitList completes (DMA engine)
// and returns a live view of its contents, as CommandQueue.EnqueueMapBuffer
// does. For hazard analysis the map event is where host access begins: it
// reads the buffer under MapRead and claims it for writing under MapWrite,
// so kernels and transfers touching the buffer must be ordered against it
// by wait-list edges.
func (q *OOOQueue) EnqueueMapBuffer(b *Buffer, flags MapFlags, waitList ...*Event) ([]float64, *Event, error) {
	if b == nil || b.ctx != q.ctx {
		return nil, nil, wrap(ErrInvalidMemObject, "map buffer")
	}
	if flags&(MapRead|MapWrite) == 0 {
		return nil, nil, wrap(ErrInvalidValue, "map flags %v", flags)
	}
	if !atomic.CompareAndSwapInt32(&b.mapped, 0, 1) {
		return nil, nil, wrap(ErrMapFailure, "buffer already mapped")
	}
	atomic.StoreUint32(&b.mapFlags, uint32(flags))
	cost := q.costs.mapCost(b, b.Bytes())
	ev := q.schedule("clEnqueueMapBuffer", &q.transferFree, cost, waitList)
	var reads, writes []string
	if flags&MapRead != 0 {
		reads = []string{b.data.Name}
	}
	if flags&MapWrite != 0 {
		writes = []string{b.data.Name}
	}
	q.note(ev, "transfer", reads, writes, waitList)
	return b.data.Data, ev, nil
}

// EnqueueUnmapBuffer releases a mapping after waitList completes (DMA
// engine). A MapWrite mapping's unmap publishes the host's writes (the
// write-back flush), so it carries the buffer in its write set; a
// MapRead-only unmap is flush-free and touches nothing.
func (q *OOOQueue) EnqueueUnmapBuffer(b *Buffer, waitList ...*Event) (*Event, error) {
	if b == nil || b.ctx != q.ctx {
		return nil, wrap(ErrInvalidMemObject, "unmap buffer")
	}
	flags := MapFlags(atomic.LoadUint32(&b.mapFlags))
	if !atomic.CompareAndSwapInt32(&b.mapped, 1, 0) {
		return nil, wrap(ErrInvalidValue, "buffer not mapped")
	}
	cost := units.Duration(0)
	if q.ctx.Device.Type == DeviceGPU && flags&MapWrite != 0 {
		a := q.ctx.Device.GPU.A
		bw := a.PCIeBandwidth
		if b.HostResident() {
			bw = a.PinnedBandwidth
		}
		cost = bw.Transfer(units.ByteSize(b.Bytes()))
	}
	ev := q.schedule("clEnqueueUnmapBuffer", &q.transferFree, cost, waitList)
	var writes []string
	if flags&MapWrite != 0 {
		writes = []string{b.data.Name}
	}
	q.note(ev, "transfer", nil, writes, waitList)
	return ev, nil
}
