package cl

import (
	"clperf/internal/ir"
	"clperf/internal/units"
)

// OOOQueue is an out-of-order command queue
// (CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE): commands declare their
// dependencies through event wait lists, and independent commands overlap
// in simulated time. The model has two engines, as real devices do — a
// compute engine executing kernels and a DMA engine moving buffers — so a
// transfer can hide behind an unrelated kernel, the classic double-buffer
// optimization.
//
// Functional effects apply in enqueue order (the host side is still one
// thread); wait lists govern timing only, so callers must declare every
// true dependency for the timeline to be meaningful — exactly the contract
// of the real API.
type OOOQueue struct {
	ctx   *Context
	costs *CommandQueue // reused for its cost model only

	computeFree  units.Duration
	transferFree units.Duration
	events       []*Event
}

// NewOOOQueue creates an out-of-order queue on the context's device.
func NewOOOQueue(ctx *Context) *OOOQueue {
	return &OOOQueue{ctx: ctx, costs: &CommandQueue{ctx: ctx, functional: false}}
}

// Events returns every recorded event in enqueue order.
func (q *OOOQueue) Events() []*Event { return q.events }

// Finish returns the makespan: the time all enqueued commands complete.
func (q *OOOQueue) Finish() units.Duration {
	var end units.Duration
	for _, ev := range q.events {
		if ev.End > end {
			end = ev.End
		}
	}
	return end
}

func ready(waitList []*Event) units.Duration {
	var r units.Duration
	for _, ev := range waitList {
		if ev != nil && ev.End > r {
			r = ev.End
		}
	}
	return r
}

// schedule places a command on an engine no earlier than its dependencies.
func (q *OOOQueue) schedule(cmd string, engineFree *units.Duration,
	cost units.Duration, waitList []*Event) *Event {
	start := ready(waitList)
	if *engineFree > start {
		start = *engineFree
	}
	ev := &Event{Command: cmd, Queued: start, Start: start, End: start + cost}
	*engineFree = ev.End
	q.events = append(q.events, ev)
	return ev
}

// EnqueueWriteBuffer copies src into the buffer after waitList completes
// (DMA engine).
func (q *OOOQueue) EnqueueWriteBuffer(b *Buffer, src []float64, waitList ...*Event) (*Event, error) {
	if b == nil || b.ctx != q.ctx {
		return nil, wrap(ErrInvalidMemObject, "write buffer")
	}
	if len(src) > b.Len() {
		return nil, wrap(ErrInvalidValue, "write of %d elements into buffer of %d", len(src), b.Len())
	}
	b.data.CopyFrom(src)
	cost := q.costs.copyCost(b, int64(len(src))*b.data.Elem.Size())
	return q.schedule("clEnqueueWriteBuffer", &q.transferFree, cost, waitList), nil
}

// EnqueueReadBuffer copies the buffer into dst after waitList completes
// (DMA engine).
func (q *OOOQueue) EnqueueReadBuffer(b *Buffer, dst []float64, waitList ...*Event) (*Event, error) {
	if b == nil || b.ctx != q.ctx {
		return nil, wrap(ErrInvalidMemObject, "read buffer")
	}
	if len(dst) > b.Len() {
		return nil, wrap(ErrInvalidValue, "read of %d elements from buffer of %d", len(dst), b.Len())
	}
	copy(dst, b.data.Data[:len(dst)])
	cost := q.costs.copyCost(b, int64(len(dst))*b.data.Elem.Size())
	return q.schedule("clEnqueueReadBuffer", &q.transferFree, cost, waitList), nil
}

// EnqueueNDRangeKernel launches the kernel after waitList completes
// (compute engine).
func (q *OOOQueue) EnqueueNDRangeKernel(k *Kernel, nd ir.NDRange, waitList ...*Event) (*Event, error) {
	if k.ctx != q.ctx {
		return nil, wrap(ErrInvalidValue, "kernel from another context")
	}
	ke, err := q.costs.EnqueueNDRangeKernel(k, nd) // prices and validates; no functional run
	if err != nil {
		return nil, err
	}
	// Re-run functionally (the costs queue skips it) so results are real.
	dev := q.ctx.Device
	var resolved ir.NDRange
	if dev.Type == DeviceCPU {
		resolved = dev.CPU.ResolveLocal(nd)
	} else {
		resolved = dev.GPU.ResolveLocal(nd)
	}
	if err := ir.ExecRange(k.k, k.args, resolved, ir.ExecOptions{Parallel: 8}); err != nil {
		return nil, err
	}
	cost := ke.Event.Duration()
	return q.schedule("clEnqueueNDRangeKernel:"+k.k.Name, &q.computeFree, cost, waitList), nil
}
