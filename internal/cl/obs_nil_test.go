package cl

import (
	"testing"

	"clperf/internal/ir"
)

// driveQueue exercises every CommandQueue command against the context and
// returns the read-back output of a square kernel over n elements. It is
// run twice by TestNilRecorderAllCommands — once with the default recorder
// and once after SetObs(nil) — so the two paths must stay identical.
func driveQueue(t *testing.T, ctx *Context, n int) ([]float64, []*Event) {
	t.Helper()
	q := NewQueue(ctx)

	in, err := ctx.CreateBuffer(MemReadOnly, ir.F32, n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.CreateBuffer(MemReadWrite, ir.F32, n)
	if err != nil {
		t.Fatal(err)
	}
	spare, err := ctx.CreateBuffer(MemReadWrite|MemAllocHostPtr, ir.F32, n)
	if err != nil {
		t.Fatal(err)
	}

	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i)
	}
	if _, err := q.EnqueueWriteBuffer(in, src); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := q.EnqueueFillBuffer(out, 0); err != nil {
		t.Fatalf("fill: %v", err)
	}

	k, err := ctx.CreateKernel(squareKernel())
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetBufferArg("in", in); err != nil {
		t.Fatal(err)
	}
	if err := k.SetBufferArg("out", out); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRangeKernel(k, ir.Range1D(n, 0)); err != nil {
		t.Fatalf("kernel: %v", err)
	}

	if _, err := q.EnqueueCopyBuffer(out, spare, n); err != nil {
		t.Fatalf("copy: %v", err)
	}
	view, _, err := q.EnqueueMapBuffer(spare, MapRead|MapWrite)
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	view[0] = -1
	if _, err := q.EnqueueUnmapBuffer(spare); err != nil {
		t.Fatalf("unmap: %v", err)
	}

	if ctx.Device.Type == DeviceCPU {
		// The affinity extension path (pinned launch + CacheMetrics).
		if _, err := q.EnqueueNDRangeKernelPinned(k, ir.Range1D(n, 64),
			func(g int) int { return g }); err != nil {
			t.Fatalf("pinned kernel: %v", err)
		}
	}

	dst := make([]float64, n)
	if _, err := q.EnqueueReadBuffer(spare, dst); err != nil {
		t.Fatalf("read: %v", err)
	}
	q.Finish()
	return dst, q.Events()
}

// TestNilRecorderAllCommands covers the queue's observability contract:
// after SetObs(nil) every command must run as a pure no-op on the obs
// side — no panic, and byte-identical functional results and event
// timings versus the recorded run. record, noteBytes, and observeKernel
// all rely on obs's nil-receiver safety rather than guarding individually.
func TestNilRecorderAllCommands(t *testing.T) {
	const n = 256
	for _, dev := range []*Device{CPUDevice(), GPUDevice()} {
		t.Run(dev.Type.String(), func(t *testing.T) {
			recorded := NewContext(dev)
			got, evs := driveQueue(t, recorded, n)

			silent := NewContext(dev)
			silent.SetObs(nil)
			if silent.Obs() != nil {
				t.Fatal("SetObs(nil) did not clear the recorder")
			}
			gotNil, evsNil := driveQueue(t, silent, n)
			silent.CacheMetrics() // publish path must also tolerate nil

			for i := range gotNil {
				want := float64(i) * float64(i)
				if i == 0 {
					want = -1 // poked through the mapping
				}
				if gotNil[i] != want {
					t.Fatalf("out[%d] = %v, want %v", i, gotNil[i], want)
				}
				if gotNil[i] != got[i] {
					t.Fatalf("out[%d] differs with nil recorder: %v vs %v", i, gotNil[i], got[i])
				}
			}

			if len(evs) != len(evsNil) {
				t.Fatalf("event count %d with recorder, %d without", len(evs), len(evsNil))
			}
			for i := range evs {
				if *evs[i] != *evsNil[i] {
					t.Fatalf("event %d differs: %+v vs %+v", i, *evs[i], *evsNil[i])
				}
			}
			if recorded.Obs().Len() == 0 {
				t.Fatal("recorded run produced no spans")
			}
		})
	}
}
