package cl

import (
	"fmt"
	"sync/atomic"

	"clperf/internal/cache"
	"clperf/internal/ir"
	"clperf/internal/obs"
)

// Context owns memory objects and kernels for one device.
type Context struct {
	Device   *Device
	nextBase int64
	nextID   int64
	// hier is the persistent simulated cache hierarchy used by the
	// clperf_workgroup_affinity extension (affinity.go); nil until the
	// first pinned launch.
	hier *cache.Hierarchy
	// rec is the context's observability recorder: every command-queue
	// command on this context records a span tree and metrics into it.
	rec *obs.Recorder
}

// NewContext creates a context on the device.
func NewContext(dev *Device) *Context {
	// Buffer base addresses start away from zero so address arithmetic bugs
	// surface; allocations are line-aligned.
	return &Context{Device: dev, nextBase: 1 << 20, rec: obs.NewRecorder()}
}

// Obs returns the context's observability recorder.
func (c *Context) Obs() *obs.Recorder { return c.rec }

// SetObs replaces the context's recorder; pass nil to disable recording
// (every obs entry point is nil-safe and becomes a no-op).
func (c *Context) SetObs(r *obs.Recorder) { c.rec = r }

// CacheMetrics publishes the context's persistent cache-hierarchy
// statistics (populated by pinned launches) into the recorder's
// registry. It is a no-op until the first pinned launch.
func (c *Context) CacheMetrics() {
	if c.hier != nil {
		c.hier.PublishMetrics(c.rec.Registry())
	}
}

// Buffer is a cl_mem object: a device-side linear allocation plus its
// creation flags.
type Buffer struct {
	ctx   *Context
	flags MemFlags
	data  *ir.Buffer
	// hostPtr is the host-visible mirror for copy semantics. For the CPU
	// device host and device share memory, so reads/writes against it are
	// modeled copies; contents are always kept coherent functionally.
	mapped int32
	// mapFlags holds the MapFlags of the live mapping (stored atomically
	// after the mapped CAS succeeds): EnqueueUnmapBuffer reads them to
	// decide whether a write-back flush is owed — a MapRead-only mapping
	// unmaps for free.
	mapFlags uint32
}

// CreateBuffer allocates an n-element buffer of elem type. It mirrors
// clCreateBuffer: flags select kernel access rights and the allocation
// location.
func (c *Context) CreateBuffer(flags MemFlags, elem ir.Type, n int) (*Buffer, error) {
	if !flags.valid() {
		return nil, wrap(ErrInvalidValue, "conflicting access flags %v", flags)
	}
	if n <= 0 {
		return nil, wrap(ErrInvalidValue, "buffer size %d", n)
	}
	id := atomic.AddInt64(&c.nextID, 1)
	data := ir.NewBuffer(fmt.Sprintf("mem%d", id), elem, n)
	data.Base = c.nextBase
	size := (data.Bytes() + 63) &^ 63
	c.nextBase += size
	return &Buffer{ctx: c, flags: flags, data: data}, nil
}

// CreateSubBuffer returns a view of n elements starting at origin
// (clCreateSubBuffer with CL_BUFFER_CREATE_TYPE_REGION): the sub-buffer
// shares the parent's storage, so kernels writing through either see one
// memory object. Flags default to the parent's.
func (b *Buffer) CreateSubBuffer(origin, n int) (*Buffer, error) {
	if origin < 0 || n <= 0 || origin+n > b.Len() {
		return nil, wrap(ErrInvalidValue, "sub-buffer [%d, %d) of %d elements", origin, origin+n, b.Len())
	}
	sub := &ir.Buffer{
		Name: fmt.Sprintf("%s+%d", b.data.Name, origin),
		Elem: b.data.Elem,
		Data: b.data.Data[origin : origin+n : origin+n],
		Base: b.data.Addr(origin),
	}
	return &Buffer{ctx: b.ctx, flags: b.flags, data: sub}, nil
}

// Flags returns the creation flags.
func (b *Buffer) Flags() MemFlags { return b.flags }

// Len returns the element count.
func (b *Buffer) Len() int { return b.data.Len() }

// Bytes returns the allocation size in bytes.
func (b *Buffer) Bytes() int64 { return b.data.Bytes() }

// Data exposes the backing ir buffer for binding to kernel arguments.
func (b *Buffer) Data() *ir.Buffer { return b.data }

// HostResident reports whether the buffer was allocated in host-accessible
// memory (CL_MEM_ALLOC_HOST_PTR).
func (b *Buffer) HostResident() bool { return b.flags&MemAllocHostPtr != 0 }

// Kernel is a cl_kernel: a program kernel plus its bound arguments.
type Kernel struct {
	ctx  *Context
	k    *ir.Kernel
	args *ir.Args
	bufs map[string]*Buffer
}

// CreateKernel wraps an IR kernel for launching in this context, validating
// it once (clBuildProgram + clCreateKernel).
func (c *Context) CreateKernel(k *ir.Kernel) (*Kernel, error) {
	if err := ir.Validate(k); err != nil {
		return nil, fmt.Errorf("cl: build %s: %w", k.Name, err)
	}
	return &Kernel{ctx: c, k: k, args: ir.NewArgs(), bufs: map[string]*Buffer{}}, nil
}

// Name returns the kernel name.
func (k *Kernel) Name() string { return k.k.Name }

// IR returns the underlying kernel definition.
func (k *Kernel) IR() *ir.Kernel { return k.k }

// SetBufferArg binds a memory object to the named buffer parameter
// (clSetKernelArg with a cl_mem).
func (k *Kernel) SetBufferArg(name string, b *Buffer) error {
	p, ok := k.k.Param(name)
	if !ok || p.Kind != ir.BufferParam {
		return wrap(ErrInvalidKernelArgs, "kernel %s has no buffer parameter %q", k.k.Name, name)
	}
	if b == nil {
		return wrap(ErrInvalidMemObject, "nil buffer for %q", name)
	}
	if b.ctx != k.ctx {
		return wrap(ErrInvalidMemObject, "buffer for %q belongs to another context", name)
	}
	if b.data.Elem != p.Elem {
		return wrap(ErrInvalidKernelArgs, "buffer for %q is %v, kernel wants %v", name, b.data.Elem, p.Elem)
	}
	k.args.Bind(name, b.data)
	k.bufs[name] = b
	return nil
}

// SetScalarArg binds a scalar value to the named parameter.
func (k *Kernel) SetScalarArg(name string, v float64) error {
	p, ok := k.k.Param(name)
	if !ok || p.Kind != ir.ScalarParam {
		return wrap(ErrInvalidKernelArgs, "kernel %s has no scalar parameter %q", k.k.Name, name)
	}
	k.args.SetScalar(name, v)
	return nil
}

// Args returns the bound argument set.
func (k *Kernel) Args() *ir.Args { return k.args }

// checkAccess enforces the buffers' access flags against the kernel's
// actual reads and writes, as derived by static analysis.
func (k *Kernel) checkAccess(nd ir.NDRange) error {
	prof, err := ir.ProfileKernel(k.k, k.args, nd, ir.LatencyTable{}, ir.MaxBranch)
	if err != nil {
		return err
	}
	for _, a := range prof.Accesses {
		b, ok := k.bufs[a.Buf]
		if !ok {
			continue
		}
		if a.Write && b.flags.access() == MemReadOnly {
			return wrap(ErrInvalidOperation, "kernel %s writes read-only buffer %q", k.k.Name, a.Buf)
		}
		if !a.Write && b.flags.access() == MemWriteOnly {
			return wrap(ErrInvalidOperation, "kernel %s reads write-only buffer %q", k.k.Name, a.Buf)
		}
	}
	return nil
}
