// Package cl is the OpenCL-shaped runtime layer of clperf: platforms,
// devices, contexts, command queues, memory objects with allocation flags,
// kernels and events, with the semantics (and the cost structure) of the
// host API the paper exercises — clCreateBuffer, clEnqueueNDRangeKernel,
// clEnqueueRead/WriteBuffer and clEnqueueMapBuffer.
//
// Execution is functional (buffers really receive results) and timing is
// simulated: each command queue advances a simulated clock by the device
// model's cost for every command, and every enqueue returns an Event
// carrying profiling timestamps, mirroring CL_QUEUE_PROFILING_ENABLE.
package cl

import (
	"errors"
	"fmt"
)

// Error is an OpenCL-style error code.
type Error string

// Error codes (the subset this runtime raises).
const (
	ErrInvalidValue      Error = "CL_INVALID_VALUE"
	ErrInvalidMemObject  Error = "CL_INVALID_MEM_OBJECT"
	ErrInvalidKernelArgs Error = "CL_INVALID_KERNEL_ARGS"
	ErrInvalidWorkGroup  Error = "CL_INVALID_WORK_GROUP_SIZE"
	ErrInvalidOperation  Error = "CL_INVALID_OPERATION"
	ErrMapFailure        Error = "CL_MAP_FAILURE"
)

// Error implements the error interface.
func (e Error) Error() string { return string(e) }

// wrap attaches context to a code.
func wrap(code Error, format string, args ...any) error {
	return fmt.Errorf("cl: %s: %w", fmt.Sprintf(format, args...), code)
}

// IsCode reports whether err carries the given OpenCL error code.
func IsCode(err error, code Error) bool { return errors.Is(err, code) }

// MemFlags are clCreateBuffer allocation and access flags.
type MemFlags uint32

// Memory object flags.
const (
	// MemReadWrite lets kernels read and write the object (the default).
	MemReadWrite MemFlags = 1 << iota
	// MemReadOnly marks the object read-only inside kernels.
	MemReadOnly
	// MemWriteOnly marks the object write-only inside kernels.
	MemWriteOnly
	// MemAllocHostPtr allocates host-accessible (pinned) memory.
	MemAllocHostPtr
)

func (f MemFlags) access() MemFlags {
	a := f & (MemReadWrite | MemReadOnly | MemWriteOnly)
	if a == 0 {
		return MemReadWrite
	}
	return a
}

func (f MemFlags) valid() bool {
	a := f.access()
	return a == MemReadWrite || a == MemReadOnly || a == MemWriteOnly
}

// String formats the flags like the C constants.
func (f MemFlags) String() string {
	s := ""
	switch f.access() {
	case MemReadOnly:
		s = "CL_MEM_READ_ONLY"
	case MemWriteOnly:
		s = "CL_MEM_WRITE_ONLY"
	default:
		s = "CL_MEM_READ_WRITE"
	}
	if f&MemAllocHostPtr != 0 {
		s += "|CL_MEM_ALLOC_HOST_PTR"
	}
	return s
}

// MapFlags select the access mode of EnqueueMapBuffer.
type MapFlags uint32

// Map flags.
const (
	MapRead MapFlags = 1 << iota
	MapWrite
)
