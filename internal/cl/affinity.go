package cl

import (
	"clperf/internal/cache"
	"clperf/internal/cpu"
	"clperf/internal/ir"
)

// This file is the clperf_workgroup_affinity extension: the improvement the
// paper proposes in section III-E. Standard OpenCL offers no way to couple
// workgroups with physical cores; here the host may pass a
// workgroup->core mapping with the launch, and consecutive pinned launches
// in one context share simulated cache state, so producer/consumer kernels
// pinned alike communicate through private caches.

// AffinityFunc maps a linear workgroup index to a physical core index.
type AffinityFunc = cpu.AffinityFunc

// RoundRobinAffinity pins workgroup g to core g % cores.
func RoundRobinAffinity(cores int) AffinityFunc {
	return func(g int) int { return g % cores }
}

// BlockAffinity splits the workgroup range into `cores` contiguous blocks.
func BlockAffinity(groups, cores int) AffinityFunc {
	per := (groups + cores - 1) / cores
	return func(g int) int { return g / per }
}

// hierarchyFor lazily creates the context's persistent cache hierarchy.
func (c *Context) hierarchyFor(dev *cpu.Device) *cache.Hierarchy {
	if c.hier == nil {
		c.hier = cache.NewHierarchy(dev.A)
	}
	return c.hier
}

// EnqueueNDRangeKernelPinned launches the kernel with an explicit
// workgroup->core affinity (clperf_workgroup_affinity). Only the CPU device
// supports it; on other devices it fails with CL_INVALID_OPERATION, which
// is exactly the portability/efficiency trade-off the paper discusses.
// The cache-accurate trace behind the launch runs workgroups in parallel:
// the execution engine buffers each group's accesses and replays them to
// the shared hierarchy in deterministic group order.
func (q *CommandQueue) EnqueueNDRangeKernelPinned(k *Kernel, nd ir.NDRange, aff AffinityFunc) (*KernelEvent, error) {
	if k.ctx != q.ctx {
		return nil, wrap(ErrInvalidValue, "kernel from another context")
	}
	dev := q.ctx.Device
	if dev.Type != DeviceCPU {
		return nil, wrap(ErrInvalidOperation,
			"clperf_workgroup_affinity is only supported on CPU devices")
	}
	if aff == nil {
		return nil, wrap(ErrInvalidValue, "nil affinity function")
	}
	for _, p := range k.k.Params {
		if p.Kind == ir.BufferParam {
			if _, ok := k.args.Buffers[p.Name]; !ok {
				return nil, wrap(ErrInvalidKernelArgs, "kernel %s: argument %q not set", k.k.Name, p.Name)
			}
		} else if _, ok := k.args.Scalars[p.Name]; !ok {
			return nil, wrap(ErrInvalidKernelArgs, "kernel %s: argument %q not set", k.k.Name, p.Name)
		}
	}
	if err := nd.Validate(); err != nil {
		return nil, wrap(ErrInvalidWorkGroup, "%v", err)
	}
	resolved := dev.CPU.ResolveLocal(nd)
	if err := k.checkAccess(resolved); err != nil {
		return nil, err
	}

	res, err := dev.CPU.LaunchPinned(k.k, k.args, resolved, aff, q.ctx.hierarchyFor(dev.CPU))
	if err != nil {
		return nil, err
	}
	ke := &KernelEvent{CPUResult: &res.Result}
	ke.Event = q.record("clEnqueueNDRangeKernelPinned:"+k.k.Name, res.Time)
	q.observeKernel(k.k.Name, ke)
	q.ctx.CacheMetrics()
	q.LastKernel = ke
	return ke, nil
}
