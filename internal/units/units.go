// Package units provides the simulated physical quantities used throughout
// clperf: time, data size, clock frequency and computational throughput.
//
// All device models report simulated time as units.Duration (nanoseconds held
// in a float64 so that sub-nanosecond per-item costs accumulate without
// rounding). The package mirrors the small slice of time.Duration's API the
// rest of the repository needs, plus formatting helpers for harness output.
package units

import (
	"fmt"
	"math"
)

// Duration is a span of simulated time in nanoseconds.
//
// A float64 is used instead of an integer tick count because per-workitem
// costs are routinely fractions of a nanosecond (a 2.4 GHz core retires
// several instructions per ns) and experiments sum millions of them.
type Duration float64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration in milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds returns the duration in microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Nanoseconds returns the duration in nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) }

// String formats the duration with an auto-selected unit, e.g. "1.25ms".
func (d Duration) String() string {
	abs := math.Abs(float64(d))
	switch {
	case abs >= float64(Second):
		return fmt.Sprintf("%.4gs", d.Seconds())
	case abs >= float64(Millisecond):
		return fmt.Sprintf("%.4gms", d.Milliseconds())
	case abs >= float64(Microsecond):
		return fmt.Sprintf("%.4gus", d.Microseconds())
	default:
		return fmt.Sprintf("%.4gns", float64(d))
	}
}

// Frequency is a clock rate in hertz.
type Frequency float64

// Common frequencies.
const (
	Hertz     Frequency = 1
	Kilohertz           = 1000 * Hertz
	Megahertz           = 1000 * Kilohertz
	Gigahertz           = 1000 * Megahertz
)

// Period returns the duration of one clock cycle.
func (f Frequency) Period() Duration {
	if f <= 0 {
		return 0
	}
	return Duration(float64(Second) / float64(f))
}

// Cycles converts a cycle count at this frequency into simulated time.
func (f Frequency) Cycles(n float64) Duration {
	return Duration(n) * f.Period()
}

// String formats the frequency, e.g. "2.4GHz".
func (f Frequency) String() string {
	switch {
	case f >= Gigahertz:
		return fmt.Sprintf("%.4gGHz", float64(f)/float64(Gigahertz))
	case f >= Megahertz:
		return fmt.Sprintf("%.4gMHz", float64(f)/float64(Megahertz))
	case f >= Kilohertz:
		return fmt.Sprintf("%.4gkHz", float64(f)/float64(Kilohertz))
	default:
		return fmt.Sprintf("%.4gHz", float64(f))
	}
}

// ByteSize is a data size in bytes.
type ByteSize int64

// Common sizes.
const (
	Byte     ByteSize = 1
	Kibibyte          = 1024 * Byte
	Mebibyte          = 1024 * Kibibyte
	Gibibyte          = 1024 * Mebibyte
)

// String formats the size with a binary unit, e.g. "256KiB".
func (s ByteSize) String() string {
	switch {
	case s >= Gibibyte && s%Gibibyte == 0:
		return fmt.Sprintf("%dGiB", s/Gibibyte)
	case s >= Mebibyte && s%Mebibyte == 0:
		return fmt.Sprintf("%dMiB", s/Mebibyte)
	case s >= Kibibyte && s%Kibibyte == 0:
		return fmt.Sprintf("%dKiB", s/Kibibyte)
	case s >= Gibibyte:
		return fmt.Sprintf("%.4gGiB", float64(s)/float64(Gibibyte))
	case s >= Mebibyte:
		return fmt.Sprintf("%.4gMiB", float64(s)/float64(Mebibyte))
	case s >= Kibibyte:
		return fmt.Sprintf("%.4gKiB", float64(s)/float64(Kibibyte))
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// Common bandwidths.
const (
	BytePerSecond Bandwidth = 1
	KBPerSecond             = 1e3 * BytePerSecond
	MBPerSecond             = 1e6 * BytePerSecond
	GBPerSecond             = 1e9 * BytePerSecond
)

// Transfer returns the time to move n bytes at this bandwidth.
func (b Bandwidth) Transfer(n ByteSize) Duration {
	if b <= 0 {
		return 0
	}
	return Duration(float64(n) / float64(b) * float64(Second))
}

// String formats the bandwidth, e.g. "5.2GB/s".
func (b Bandwidth) String() string {
	switch {
	case b >= GBPerSecond:
		return fmt.Sprintf("%.4gGB/s", float64(b)/float64(GBPerSecond))
	case b >= MBPerSecond:
		return fmt.Sprintf("%.4gMB/s", float64(b)/float64(MBPerSecond))
	default:
		return fmt.Sprintf("%.4gB/s", float64(b))
	}
}

// Throughput is a computational rate in floating-point operations per second.
type Throughput float64

// Common throughputs.
const (
	Flops  Throughput = 1
	MFlops            = 1e6 * Flops
	GFlops            = 1e9 * Flops
	TFlops            = 1e12 * Flops
)

// ThroughputOf returns the rate of performing ops operations in d.
func ThroughputOf(ops float64, d Duration) Throughput {
	if d <= 0 {
		return 0
	}
	return Throughput(ops / d.Seconds())
}

// GFlops returns the throughput in GFlop/s.
func (t Throughput) GFlops() float64 { return float64(t) / float64(GFlops) }

// String formats the throughput, e.g. "35.2GFlop/s".
func (t Throughput) String() string {
	switch {
	case t >= TFlops:
		return fmt.Sprintf("%.4gTFlop/s", float64(t)/float64(TFlops))
	case t >= GFlops:
		return fmt.Sprintf("%.4gGFlop/s", float64(t)/float64(GFlops))
	case t >= MFlops:
		return fmt.Sprintf("%.4gMFlop/s", float64(t)/float64(MFlops))
	default:
		return fmt.Sprintf("%.4gFlop/s", float64(t))
	}
}
