package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if got := d.Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds = %v, want 1.5", got)
	}
	if got := d.Seconds(); got != 0.0015 {
		t.Errorf("Seconds = %v, want 0.0015", got)
	}
	if got := d.Microseconds(); got != 1500 {
		t.Errorf("Microseconds = %v, want 1500", got)
	}
	if got := d.Nanoseconds(); got != 1.5e6 {
		t.Errorf("Nanoseconds = %v, want 1.5e6", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{2 * Second, "2s"},
		{1.5 * Millisecond, "1.5ms"},
		{250 * Microsecond, "250us"},
		{42 * Nanosecond, "42ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%v ns).String() = %q, want %q", float64(c.d), got, c.want)
		}
	}
}

func TestFrequencyPeriodAndCycles(t *testing.T) {
	f := 2.4 * Gigahertz
	period := f.Period()
	want := 1e9 / 2.4e9 // ns
	if math.Abs(float64(period)-want) > 1e-12 {
		t.Errorf("Period = %v ns, want %v", float64(period), want)
	}
	if got := f.Cycles(2.4e9); math.Abs(got.Seconds()-1) > 1e-9 {
		t.Errorf("2.4e9 cycles at 2.4GHz = %v, want 1s", got)
	}
	if (Frequency(0)).Period() != 0 {
		t.Error("zero frequency must have zero period")
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		s    ByteSize
		want string
	}{
		{64 * Kibibyte, "64KiB"},
		{12 * Mebibyte, "12MiB"},
		{2 * Gibibyte, "2GiB"},
		{100 * Byte, "100B"},
		{1536 * Byte, "1.5KiB"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.s), got, c.want)
		}
	}
}

func TestBandwidthTransfer(t *testing.T) {
	bw := 1 * GBPerSecond
	if got := bw.Transfer(1e9 * Byte); math.Abs(got.Seconds()-1) > 1e-9 {
		t.Errorf("1GB at 1GB/s = %v, want 1s", got)
	}
	if got := (Bandwidth(0)).Transfer(100); got != 0 {
		t.Errorf("zero bandwidth transfer = %v, want 0", got)
	}
}

func TestThroughput(t *testing.T) {
	thr := ThroughputOf(1e9, Second)
	if thr.GFlops() != 1 {
		t.Errorf("1e9 flops in 1s = %v GFlop/s, want 1", thr.GFlops())
	}
	if got := ThroughputOf(1, 0); got != 0 {
		t.Errorf("throughput over zero time = %v, want 0", got)
	}
	if s := (230.4 * GFlops).String(); s != "230.4GFlop/s" {
		t.Errorf("String = %q", s)
	}
	if s := (1.56 * TFlops).String(); s != "1.56TFlop/s" {
		t.Errorf("String = %q", s)
	}
}

// Property: cycles at a frequency scale linearly.
func TestCyclesLinearity(t *testing.T) {
	f := 2.4 * Gigahertz
	prop := func(a, b uint32) bool {
		x, y := float64(a%1e6), float64(b%1e6)
		sum := f.Cycles(x + y)
		parts := f.Cycles(x) + f.Cycles(y)
		return math.Abs(float64(sum-parts)) <= 1e-6*math.Max(1, math.Abs(float64(sum)))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: transfer time is monotone in bytes.
func TestTransferMonotonic(t *testing.T) {
	bw := 5 * GBPerSecond
	prop := func(a, b uint32) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return bw.Transfer(ByteSize(lo)) <= bw.Transfer(ByteSize(hi))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
