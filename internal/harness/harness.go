// Package harness provides the experiment framework that regenerates the
// paper's tables and figures: result containers, the paper's normalized
// throughput metrics, and text/CSV renderers for cmd/oclbench and the
// benchmark suite.
package harness

import (
	"context"
	"fmt"
	"io"
	"strings"

	"clperf/internal/obs"
	"clperf/internal/units"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = toCell(c)
	}
	t.Rows = append(t.Rows, row)
}

func toCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return fmt.Sprintf("%.3g", v)
	case units.Duration:
		return v.String()
	case units.Throughput:
		return v.String()
	default:
		return fmt.Sprint(v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV.
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	quoted := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		quoted[i] = c
	}
	fmt.Fprintln(w, strings.Join(quoted, ","))
}

// Series is one plotted line/bar group of a figure.
type Series struct {
	Name   string
	Values []float64
}

// Figure is a titled set of series over shared x labels, rendered as a
// table (one column per series).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Labels []string
	Series []Series
}

// Add appends a series.
func (f *Figure) Add(name string, values []float64) {
	f.Series = append(f.Series, Series{Name: name, Values: values})
}

// Table converts the figure into its tabular form. A ragged figure is
// rendered losslessly: series values beyond len(f.Labels) get generated
// "[i]" x labels instead of being dropped, and series shorter than the
// label axis render empty cells.
func (f *Figure) Table() *Table {
	t := &Table{Title: fmt.Sprintf("%s  [%s vs %s]", f.Title, f.YLabel, f.XLabel)}
	t.Columns = append([]string{f.XLabel}, seriesNames(f.Series)...)
	rows := len(f.Labels)
	for _, s := range f.Series {
		if len(s.Values) > rows {
			rows = len(s.Values)
		}
	}
	for i := 0; i < rows; i++ {
		lbl := fmt.Sprintf("[%d]", i)
		if i < len(f.Labels) {
			lbl = f.Labels[i]
		}
		row := []any{lbl}
		for _, s := range f.Series {
			if i < len(s.Values) {
				row = append(row, s.Values[i])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

func seriesNames(ss []Series) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}

// Render writes the figure as aligned text.
func (f *Figure) Render(w io.Writer) { f.Table().Render(w) }

// Report is an experiment's output: the regenerated tables and figures
// plus free-form notes about the observed shape.
type Report struct {
	ID      string
	Title   string
	Tables  []*Table
	Figures []*Figure
	Notes   []string
}

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the whole report as text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		t.Render(w)
	}
	for _, f := range r.Figures {
		f.Render(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Normalize divides values by base (returns zeros when base is 0).
func Normalize(values []float64, base float64) []float64 {
	out := make([]float64, len(values))
	if base == 0 {
		return out
	}
	for i, v := range values {
		out[i] = v / base
	}
	return out
}

// AppThroughput implements the paper's Equation (1): application
// throughput includes data transfer time.
//
//	Throughput_app = flops / (kernel_time + transfer_time)
func AppThroughput(flops float64, kernel, transfer units.Duration) units.Throughput {
	return units.ThroughputOf(flops, kernel+transfer)
}

// Options tunes experiment execution.
type Options struct {
	// Functional executes kernels (validating results) where sizes permit;
	// off, only the timing models run. The harness always prices the
	// paper's full geometries either way.
	Functional bool
	// Verbose includes extra per-point diagnostics in reports.
	Verbose bool
	// Obs, when set, is attached to the experiment's devices so every
	// priced launch records spans and metrics into it (see internal/obs);
	// nil runs without observability. Under the suite Runner each
	// experiment receives its own private recorder so concurrent
	// experiments never share a span clock.
	Obs *obs.Recorder
	// Ctx, when set, carries the runner's cancellation signal:
	// long-running experiments should poll Ctx.Err() at iteration
	// boundaries and bail out. Nil means no deadline.
	Ctx context.Context
	// NoCache disables the memoized model-evaluation layer
	// (internal/search) for the experiment's devices, re-pricing every
	// launch from scratch — the A/B baseline for the cached path.
	NoCache bool
	// NoPredict disables the learned cost predictor (internal/predict):
	// every launch-parameter search evaluates its full candidate set
	// exhaustively — the A/B baseline for the pruned path, byte-identical
	// to the pre-predictor behavior.
	NoPredict bool
	// TopK overrides the predictor-pruned search's surviving candidate
	// count (0 keeps the default, predict.DefaultK).
	TopK int
	// NoReplay disables the trace-once / replay-many pipeline
	// (internal/replay): matrix-style sweeps execute every kernel once
	// per device again — the A/B baseline for the replay path,
	// byte-identical output by construction.
	NoReplay bool
	// MatrixN, when positive, truncates the portability-matrix grid to
	// its first N kernels and N devices (the CI smoke size); 0 runs the
	// full grid.
	MatrixN int
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the artifact id: "table1".."table5", "fig1".."fig11".
	ID string
	// Title describes the artifact.
	Title string
	// Run produces the report.
	Run func(opts Options) (*Report, error)
}
