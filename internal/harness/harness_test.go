package harness

import (
	"strings"
	"testing"

	"clperf/internal/units"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "b"}}
	tbl.AddRow("x", 1.23456)
	tbl.AddRow("yy", 2*units.Millisecond)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== T ==", "a", "b", "x", "1.23", "2ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "b"}}
	tbl.AddRow(`quo"te`, "with,comma")
	var sb strings.Builder
	tbl.RenderCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"quo""te"`) {
		t.Errorf("CSV quoting broken:\n%s", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("CSV comma quoting broken:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header broken:\n%s", out)
	}
}

func TestFigureToTable(t *testing.T) {
	fig := &Figure{Title: "F", XLabel: "x", YLabel: "y", Labels: []string{"p", "q"}}
	fig.Add("s1", []float64{1, 2})
	fig.Add("s2", []float64{3}) // ragged: missing cell renders empty
	tbl := fig.Table()
	if len(tbl.Columns) != 3 {
		t.Fatalf("columns = %v", tbl.Columns)
	}
	if tbl.Rows[1][2] != "" {
		t.Errorf("ragged cell = %q, want empty", tbl.Rows[1][2])
	}
	var sb strings.Builder
	fig.Render(&sb)
	if !strings.Contains(sb.String(), "s1") {
		t.Error("figure render missing series name")
	}
}

// A series longer than the label axis must round-trip losslessly:
// values beyond len(Labels) get generated "[i]" labels instead of being
// silently dropped (regression).
func TestFigureRaggedLossless(t *testing.T) {
	fig := &Figure{Title: "F", XLabel: "x", YLabel: "y", Labels: []string{"p"}}
	fig.Add("short", []float64{1})
	fig.Add("long", []float64{10, 20, 30})
	tbl := fig.Table()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (longest series)", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "p" || tbl.Rows[1][0] != "[1]" || tbl.Rows[2][0] != "[2]" {
		t.Errorf("labels = %q, %q, %q", tbl.Rows[0][0], tbl.Rows[1][0], tbl.Rows[2][0])
	}
	// Every value of every series appears; short series pad with empties.
	if tbl.Rows[2][2] != "30" {
		t.Errorf("dropped value: row 2 = %v", tbl.Rows[2])
	}
	if tbl.Rows[1][1] != "" || tbl.Rows[2][1] != "" {
		t.Errorf("short series must pad empty: %v / %v", tbl.Rows[1], tbl.Rows[2])
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v", got)
		}
	}
	if z := Normalize([]float64{1, 2}, 0); z[0] != 0 || z[1] != 0 {
		t.Error("zero base must normalize to zeros")
	}
}

func TestAppThroughput(t *testing.T) {
	// Equation (1): transfer time counts.
	thr := AppThroughput(1e9, 500*units.Millisecond, 500*units.Millisecond)
	if thr.GFlops() != 1 {
		t.Errorf("app throughput = %v, want 1 GFlop/s", thr.GFlops())
	}
	kernelOnly := AppThroughput(1e9, 500*units.Millisecond, 0)
	if kernelOnly <= thr {
		t.Error("removing transfer time must raise app throughput")
	}
}

func TestReportRender(t *testing.T) {
	rep := &Report{ID: "figX", Title: "demo"}
	rep.AddNote("hello %d", 42)
	fig := &Figure{Title: "F", XLabel: "x", YLabel: "y", Labels: []string{"a"}}
	fig.Add("s", []float64{1})
	rep.Figures = append(rep.Figures, fig)
	var sb strings.Builder
	rep.Render(&sb)
	out := sb.String()
	for _, want := range []string{"figX", "demo", "hello 42", "F"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
