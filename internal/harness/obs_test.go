package harness

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"strings"
	"testing"

	"clperf/internal/obs"
	"clperf/internal/units"
)

func TestMetricsTable(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Add("cl.bytes.total", 1<<20)
	reg.Set("sched.util.mean", 0.875)
	reg.Observe("cl.kernel.ns:vadd", 1500)
	tbl := MetricsTable(reg.Snapshot())
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	// Histograms render the quantile ladder, not raw bucket dumps.
	for _, col := range []string{"p50", "p99"} {
		found := false
		for _, c := range tbl.Columns {
			if c == col {
				found = true
			}
		}
		if !found {
			t.Fatalf("columns %v missing %q", tbl.Columns, col)
		}
	}
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	for _, want := range []string{"cl.bytes.total", "counter", "sched.util.mean", "gauge", "cl.kernel.ns:vadd", "hist", "1.5us"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics table missing %q:\n%s", want, out)
		}
	}
	// Rendering the same snapshot twice is byte-identical (determinism).
	var b2 strings.Builder
	MetricsTable(reg.Snapshot()).Render(&b2)
	if b2.String() != out {
		t.Fatal("metrics table not deterministic")
	}
}

func TestDurationMetricConvention(t *testing.T) {
	cases := map[string]bool{
		"cl.queue.lag.ns":    true,
		"cpu.kernel.ns:vadd": true,
		"sched.makespan.ns":  true,
		"cl.bytes.total":     false,
		"cache.l1.hitrate":   false,
		"answer":             false,
	}
	for name, want := range cases {
		if got := durationMetric(name); got != want {
			t.Fatalf("durationMetric(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestRunQuickstartTrace covers the oclbench -trace acceptance path:
// the quickstart replay must produce a valid Chrome trace whose
// per-worker slice durations sum to the simulated makespan, and the
// registry must hold the kernel-time histogram and transfer counters.
func TestRunQuickstartTrace(t *testing.T) {
	rec := obs.NewRecorder()
	tl, err := RunQuickstart(rec, 100*units.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan <= 0 {
		t.Fatal("empty timeline")
	}

	ct := rec.Chrome(1, "clperf")
	tl.AppendChrome(ct, 2)
	var b bytes.Buffer
	if err := ct.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			TS  float64 `json:"ts"`
			Dur float64 `json:"dur"`
			PID int     `json:"pid"`
			TID int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON does not unmarshal: %v", err)
	}

	// Worker tracks (pid 2): per-track slices are gap-free, so summed
	// durations equal the track end; the busiest track is the makespan.
	type slice struct{ start, end float64 }
	perTrack := map[int][]slice{}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "X" && ev.PID == 2 {
			perTrack[ev.TID] = append(perTrack[ev.TID], slice{ev.TS, ev.TS + ev.Dur})
		}
	}
	if len(perTrack) == 0 {
		t.Fatal("no worker tracks in trace")
	}
	var maxSum float64
	for tid, ss := range perTrack {
		sort.Slice(ss, func(i, j int) bool { return ss[i].start < ss[j].start })
		var sum float64
		for i, s := range ss {
			if i > 0 && s.start < ss[i-1].end-1e-9 {
				t.Fatalf("track %d overlaps at slice %d", tid, i)
			}
			sum += s.end - s.start
		}
		if sum > maxSum {
			maxSum = sum
		}
	}
	want := tl.Makespan.Microseconds()
	if math.Abs(maxSum-want) > 1e-6*want {
		t.Fatalf("worker slices sum to %gus, want makespan %gus", maxSum, want)
	}

	// Metrics: kernel-time histogram, transfer bytes, queue lag.
	reg := rec.Registry()
	snap := reg.Snapshot()
	names := map[string]bool{}
	for _, h := range snap.Hists {
		names[h.Name] = true
	}
	for _, want := range []string{"cl.kernel.ns:vectoradd", "cl.queue.lag.ns"} {
		if !names[want] {
			t.Fatalf("histogram %q missing; have %v", want, names)
		}
	}
	if reg.Counter("cl.commands") < 6 {
		t.Fatalf("cl.commands = %g, want the full map/launch/read sequence", reg.Counter("cl.commands"))
	}
	if reg.Gauge("sched.makespan.ns") != float64(tl.Makespan) {
		t.Fatal("timeline metrics not published")
	}
	if rec.Len() == 0 {
		t.Fatal("no spans recorded")
	}
}

func TestCacheStatsTable(t *testing.T) {
	reg := obs.NewRegistry()
	// The shape cache.Hierarchy.PublishMetricsPrefix produces.
	for _, pre := range []string{"cache.l1", "cache.l1.core0", "cache.l1.core3", "cache.l3"} {
		reg.Set(pre+".accesses", 100)
		reg.Set(pre+".hits", 75)
		reg.Set(pre+".hitrate", 0.75)
	}
	reg.Set("cache.fig9.aligned.l2.core1.hitrate", 0.5)
	reg.Set("cache.fig9.aligned.l2.core1.accesses", 8)
	reg.Set("cache.fig9.aligned.l2.core1.hits", 4)
	// Non-cache gauges and malformed names are ignored.
	reg.Set("sched.util.mean", 0.9)
	reg.Set("cachesomethingelse.l1.hitrate", 1)
	reg.Set("cache.l1.core0.unknownfield", 1)

	tbl := CacheStatsTable(reg.Snapshot())
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5: %v", len(tbl.Rows), tbl.Rows)
	}
	// Name-sorted gauges put the scoped fig9 row first, then the "all"
	// aggregate of cache.l1 before its per-core rows.
	want := [][]string{
		{"cache.fig9.aligned", "l2", "1", "8", "4", "0.500"},
		{"cache", "l1", "all", "100", "75", "0.750"},
		{"cache", "l1", "0", "100", "75", "0.750"},
		{"cache", "l1", "3", "100", "75", "0.750"},
		{"cache", "l3", "all", "100", "75", "0.750"},
	}
	for i, w := range want {
		for j, cell := range w {
			if tbl.Rows[i][j] != cell {
				t.Fatalf("row %d = %v, want %v", i, tbl.Rows[i], w)
			}
		}
	}
}
