package harness

import (
	"fmt"
	"strings"

	"clperf/internal/obs"
	"clperf/internal/units"
)

// MetricsTable renders a metrics snapshot as a harness table: counters
// and gauges one row each, histograms with their distribution summary
// and quantile columns (p50/p99 derived deterministically from the
// log2 buckets — never a raw bucket dump). Rows arrive name-sorted
// from the snapshot, so the table is stable across runs. Duration-
// valued metrics (names ending in ".ns" or containing ".ns:") format
// through units.Duration.
func MetricsTable(s obs.Snapshot) *Table {
	t := &Table{
		Title:   "metrics",
		Columns: []string{"metric", "kind", "count", "value/sum", "min", "mean", "p50", "p99", "max"},
	}
	for _, m := range s.Counters {
		t.AddRow(m.Name, "counter", "", fmtMetric(m.Name, m.Value), "", "", "", "", "")
	}
	for _, m := range s.Gauges {
		t.AddRow(m.Name, "gauge", "", fmtMetric(m.Name, m.Value), "", "", "", "", "")
	}
	for _, h := range s.Hists {
		t.AddRow(h.Name, "hist", fmt.Sprint(h.Count), fmtMetric(h.Name, h.Sum),
			fmtMetric(h.Name, h.Min), fmtMetric(h.Name, h.Mean),
			fmtMetric(h.Name, h.P50), fmtMetric(h.Name, h.P99), fmtMetric(h.Name, h.Max))
	}
	return t
}

// CacheStatsTable filters the cache-hierarchy gauges out of a metrics
// snapshot (cache.<scope...>.l1.core3.hitrate and the per-level
// aggregates published by cache.Hierarchy.PublishMetricsPrefix) and
// renders them as one row per (scope, level, core). Returns a table with
// no rows when the snapshot carries no cache gauges (cache simulation
// off).
func CacheStatsTable(s obs.Snapshot) *Table {
	t := &Table{
		Title:   "cache hierarchy",
		Columns: []string{"scope", "level", "core", "accesses", "hits", "hitrate"},
	}
	type key struct{ scope, level, core string }
	rows := map[key]map[string]float64{}
	var order []key
	for _, m := range s.Gauges {
		scope, level, core, field, ok := parseCacheGauge(m.Name)
		if !ok {
			continue
		}
		k := key{scope, level, core}
		if rows[k] == nil {
			rows[k] = map[string]float64{}
			order = append(order, k)
		}
		rows[k][field] = m.Value
	}
	// Gauges arrive name-sorted, so "all" aggregates (no core suffix)
	// precede the per-core rows of the same level.
	for _, k := range order {
		r := rows[k]
		t.AddRow(k.scope, k.level, k.core,
			fmt.Sprintf("%.0f", r["accesses"]),
			fmt.Sprintf("%.0f", r["hits"]),
			fmt.Sprintf("%.3f", r["hitrate"]))
	}
	return t
}

// parseCacheGauge decomposes a hierarchy gauge name of the form
// <scope>.l<N>[.core<M>].<field> where scope starts with "cache". core is
// "all" for the per-level aggregates.
func parseCacheGauge(name string) (scope, level, core, field string, ok bool) {
	if name != "cache" && !strings.HasPrefix(name, "cache.") {
		return "", "", "", "", false
	}
	parts := strings.Split(name, ".")
	if len(parts) < 3 {
		return "", "", "", "", false
	}
	field = parts[len(parts)-1]
	if field != "accesses" && field != "hits" && field != "hitrate" {
		return "", "", "", "", false
	}
	rest := parts[1 : len(parts)-1]
	core = "all"
	if last := rest[len(rest)-1]; strings.HasPrefix(last, "core") {
		core = last[len("core"):]
		rest = rest[:len(rest)-1]
	}
	if len(rest) == 0 {
		return "", "", "", "", false
	}
	level = rest[len(rest)-1]
	if len(level) != 2 || level[0] != 'l' || level[1] < '1' || level[1] > '3' {
		return "", "", "", "", false
	}
	scope = strings.Join(append([]string{"cache"}, rest[:len(rest)-1]...), ".")
	return scope, level, core, field, true
}

// durationMetric reports whether the metric name carries nanoseconds by
// convention.
func durationMetric(name string) bool {
	for i := 0; i+3 <= len(name); i++ {
		if name[i:i+3] == ".ns" && (i+3 == len(name) || name[i+3] == ':') {
			return true
		}
	}
	return false
}

func fmtMetric(name string, v float64) string {
	if durationMetric(name) {
		return units.Duration(v).String()
	}
	return fmt.Sprintf("%.6g", v)
}
