package harness

import (
	"fmt"

	"clperf/internal/obs"
	"clperf/internal/units"
)

// MetricsTable renders a metrics snapshot as a harness table: counters
// and gauges one row each, histograms with their distribution summary.
// Duration-valued metrics (names ending in ".ns" or containing ".ns:")
// format through units.Duration.
func MetricsTable(s obs.Snapshot) *Table {
	t := &Table{
		Title:   "metrics",
		Columns: []string{"metric", "kind", "count", "value/sum", "min", "mean", "p95", "max"},
	}
	for _, m := range s.Counters {
		t.AddRow(m.Name, "counter", "", fmtMetric(m.Name, m.Value), "", "", "", "")
	}
	for _, m := range s.Gauges {
		t.AddRow(m.Name, "gauge", "", fmtMetric(m.Name, m.Value), "", "", "", "")
	}
	for _, h := range s.Hists {
		t.AddRow(h.Name, "hist", fmt.Sprint(h.Count), fmtMetric(h.Name, h.Sum),
			fmtMetric(h.Name, h.Min), fmtMetric(h.Name, h.Mean),
			fmtMetric(h.Name, h.P95), fmtMetric(h.Name, h.Max))
	}
	return t
}

// durationMetric reports whether the metric name carries nanoseconds by
// convention.
func durationMetric(name string) bool {
	for i := 0; i+3 <= len(name); i++ {
		if name[i:i+3] == ".ns" && (i+3 == len(name) || name[i+3] == ':') {
			return true
		}
	}
	return false
}

func fmtMetric(name string, v float64) string {
	if durationMetric(name) {
		return units.Duration(v).String()
	}
	return fmt.Sprintf("%.6g", v)
}
