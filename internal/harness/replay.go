package harness

import (
	"fmt"

	"clperf/internal/cl"
	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/trace"
	"clperf/internal/units"
)

// This file replays the quickstart workload (examples/quickstart) under
// full observability for cmd/oclbench -trace and cmd/clprof: the same
// vector-add host program, with every command spanned, metrics
// registered, and the CPU schedule reconstructed for per-worker trace
// tracks.

const quickstartSource = `
__kernel void vectoradd(__global float *a, __global float *b, __global float *c) {
    int i = get_global_id(0);
    c[i] = a[i] + b[i];
}
`

// QuickstartN and QuickstartLocal are the replayed launch geometry.
const (
	QuickstartN     = 1 << 16
	QuickstartLocal = 256
)

// RunQuickstart replays the quickstart vector-add workload on the CPU
// device with rec attached to the context (and the device model), using
// the given enqueue latency, and returns the reconstructed workgroup
// schedule of the kernel launch. The timeline's metrics (makespan,
// per-worker utilization) and the context's span tree both land in rec.
func RunQuickstart(rec *obs.Recorder, enqLat units.Duration) (*trace.Timeline, error) {
	dev := cl.CPUDevice()
	ctx := cl.NewContext(dev)
	if rec != nil {
		ctx.SetObs(rec)
		dev.CPU.Obs = rec
	}
	q := cl.NewQueue(ctx)
	q.SetEnqueueLatency(enqLat)

	program, err := ctx.CreateProgramWithSource(quickstartSource)
	if err != nil {
		return nil, err
	}
	kernel, err := program.CreateKernel("vectoradd")
	if err != nil {
		return nil, err
	}
	mk := func(flags cl.MemFlags) (*cl.Buffer, error) {
		return ctx.CreateBuffer(flags, ir.F32, QuickstartN)
	}
	a, err := mk(cl.MemReadOnly)
	if err != nil {
		return nil, err
	}
	b, err := mk(cl.MemReadOnly)
	if err != nil {
		return nil, err
	}
	c, err := mk(cl.MemWriteOnly)
	if err != nil {
		return nil, err
	}

	va, _, err := q.EnqueueMapBuffer(a, cl.MapWrite)
	if err != nil {
		return nil, err
	}
	vb, _, err := q.EnqueueMapBuffer(b, cl.MapWrite)
	if err != nil {
		return nil, err
	}
	for i := 0; i < QuickstartN; i++ {
		va[i] = float64(i)
		vb[i] = float64(2 * i)
	}
	if _, err := q.EnqueueUnmapBuffer(a); err != nil {
		return nil, err
	}
	if _, err := q.EnqueueUnmapBuffer(b); err != nil {
		return nil, err
	}

	for name, buf := range map[string]*cl.Buffer{"a": a, "b": b, "c": c} {
		if err := kernel.SetBufferArg(name, buf); err != nil {
			return nil, err
		}
	}
	nd := ir.Range1D(QuickstartN, QuickstartLocal)
	if _, err := q.EnqueueNDRangeKernel(kernel, nd); err != nil {
		return nil, err
	}

	vc, _, err := q.EnqueueMapBuffer(c, cl.MapRead)
	if err != nil {
		return nil, err
	}
	for i := 0; i < QuickstartN; i++ {
		if vc[i] != float64(3*i) {
			return nil, fmt.Errorf("harness: quickstart validation failed at %d: got %v", i, vc[i])
		}
	}
	if _, err := q.EnqueueUnmapBuffer(c); err != nil {
		return nil, err
	}

	// The schedule reconstruction re-prices the launch just recorded;
	// detach the device recorder so the replay isn't double-counted.
	dev.CPU.Obs = nil
	tl, err := trace.CPU(dev.CPU, kernel.IR(), kernel.Args(), nd)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		tl.PublishMetrics(rec.Registry())
	}
	return tl, nil
}
