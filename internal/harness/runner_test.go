package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"clperf/internal/obs"
	"clperf/internal/units"
)

// fakeExp builds a synthetic experiment for runner tests.
func fakeExp(id string, run func(Options) (*Report, error)) Experiment {
	return Experiment{ID: id, Title: "synthetic " + id, Run: run}
}

// okExp returns a report and records deterministic spans/metrics into
// the experiment's private recorder.
func okExp(id string, n int) Experiment {
	return fakeExp(id, func(opts Options) (*Report, error) {
		for i := 0; i < n; i++ {
			s := units.Duration(i) * units.Microsecond
			sp := opts.Obs.Record(obs.NoParent, obs.KindRegion, id, s, s+units.Microsecond)
			opts.Obs.SetTrack(sp, "work")
			opts.Obs.Registry().Add("exp.iterations", 1)
			opts.Obs.Registry().Observe("exp.step.ns", float64(i+1))
		}
		opts.Obs.Registry().Set("exp.last:"+id, float64(n))
		rep := &Report{ID: id, Title: id}
		rep.AddNote("ran %d steps", n)
		return rep, nil
	})
}

func TestRunnerFailureIsolation(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		okExp("a", 1),
		fakeExp("b", func(Options) (*Report, error) { return nil, boom }),
		fakeExp("c", func(Options) (*Report, error) { panic("kaboom") }),
		okExp("d", 2),
	}
	for _, par := range []int{1, 4} {
		sum := NewRunner(RunnerOptions{Parallel: par}).Run(context.Background(), exps)
		if len(sum.Results) != len(exps) {
			t.Fatalf("par=%d: %d results, want %d", par, len(sum.Results), len(exps))
		}
		// Results stay in submission order regardless of completion order.
		for i, e := range exps {
			if sum.Results[i].ID != e.ID {
				t.Fatalf("par=%d: result[%d] = %s, want %s", par, i, sum.Results[i].ID, e.ID)
			}
		}
		if sum.OK() {
			t.Fatalf("par=%d: summary must not be OK", par)
		}
		failed := sum.Failed()
		if len(failed) != 2 || failed[0].ID != "b" || failed[1].ID != "c" {
			t.Fatalf("par=%d: failed = %+v", par, failed)
		}
		if !errors.Is(failed[0].Err, boom) {
			t.Errorf("par=%d: b's error = %v", par, failed[0].Err)
		}
		if !strings.Contains(failed[1].Err.Error(), "panicked") {
			t.Errorf("par=%d: panic not isolated: %v", par, failed[1].Err)
		}
		// The survivors completed even though earlier experiments failed.
		if sum.Results[3].Err != nil || sum.Results[3].Report == nil {
			t.Errorf("par=%d: d did not survive: %+v", par, sum.Results[3])
		}
		ft := sum.FailureTable()
		if len(ft.Rows) != 2 || ft.Rows[0][0] != "b" {
			t.Errorf("par=%d: failure table rows = %v", par, ft.Rows)
		}
	}
}

func TestRunnerTimeout(t *testing.T) {
	started := make(chan struct{})
	exps := []Experiment{
		fakeExp("slow", func(opts Options) (*Report, error) {
			close(started)
			// Cooperative experiments wait on Options.Ctx.
			<-opts.Ctx.Done()
			return nil, opts.Ctx.Err()
		}),
		okExp("fast", 1),
	}
	sum := NewRunner(RunnerOptions{Parallel: 2, Timeout: 20 * time.Millisecond}).
		Run(context.Background(), exps)
	<-started
	if err := sum.Results[0].Err; !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("slow experiment error = %v, want deadline exceeded", err)
	}
	if sum.Results[1].Err != nil {
		t.Errorf("fast experiment failed: %v", sum.Results[1].Err)
	}
}

func TestRunnerContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum := NewRunner(RunnerOptions{Parallel: 2}).Run(ctx, []Experiment{okExp("a", 1), okExp("b", 1)})
	for _, r := range sum.Results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want canceled", r.ID, r.Err)
		}
	}
}

// filterRunner drops the runner's host wall-clock self-metrics, which
// legitimately differ run to run, leaving only simulated-clock metrics.
func filterRunner(s obs.Snapshot) obs.Snapshot {
	var out obs.Snapshot
	for _, m := range s.Counters {
		if !strings.HasPrefix(m.Name, "runner.") {
			out.Counters = append(out.Counters, m)
		}
	}
	for _, m := range s.Gauges {
		if !strings.HasPrefix(m.Name, "runner.") {
			out.Gauges = append(out.Gauges, m)
		}
	}
	for _, h := range s.Hists {
		if !strings.HasPrefix(h.Name, "runner.") {
			out.Hists = append(out.Hists, h)
		}
	}
	return out
}

// TestRunnerDeterministicMerge is the core determinism property: for
// any worker count, the merged recorder holds identical spans (same
// ids, parents, tracks, order) and identical experiment metrics.
func TestRunnerDeterministicMerge(t *testing.T) {
	var exps []Experiment
	for i := 0; i < 9; i++ {
		exps = append(exps, okExp(fmt.Sprintf("e%d", i), i+1))
	}
	base := NewRunner(RunnerOptions{Parallel: 1, Observe: true}).Run(context.Background(), exps)
	baseSpans := base.Rec.Spans()
	baseSnap := filterRunner(base.Rec.Registry().Snapshot())
	if len(baseSpans) == 0 {
		t.Fatal("serial run recorded no spans")
	}
	for _, par := range []int{2, 8} {
		sum := NewRunner(RunnerOptions{Parallel: par, Observe: true}).Run(context.Background(), exps)
		if !reflect.DeepEqual(sum.Rec.Spans(), baseSpans) {
			t.Errorf("par=%d: merged spans differ from serial run", par)
		}
		if snap := filterRunner(sum.Rec.Registry().Snapshot()); !reflect.DeepEqual(snap, baseSnap) {
			t.Errorf("par=%d: merged metrics differ from serial run:\n%+v\nvs\n%+v", par, snap, baseSnap)
		}
	}
	// Tracks are namespaced per experiment, so suites never interleave.
	for _, s := range baseSpans {
		if s.Track != "" && !strings.Contains(s.Track, "/") {
			t.Fatalf("span %q track %q lacks an experiment namespace", s.Name, s.Track)
		}
	}
}

func TestRunnerMetrics(t *testing.T) {
	exps := []Experiment{
		okExp("a", 1),
		fakeExp("b", func(Options) (*Report, error) { return nil, errors.New("nope") }),
	}
	sum := NewRunner(RunnerOptions{Parallel: 2, Observe: true}).Run(context.Background(), exps)
	reg := sum.Rec.Registry()
	if got := reg.Counter("runner.experiments"); got != 2 {
		t.Errorf("runner.experiments = %v, want 2", got)
	}
	if got := reg.Counter("runner.failures"); got != 1 {
		t.Errorf("runner.failures = %v, want 1", got)
	}
	snap := reg.Snapshot()
	var wall, wait bool
	for _, h := range snap.Hists {
		switch h.Name {
		case "runner.exp.wall.ns":
			wall = h.Count == 2
		case "runner.exp.wait.ns":
			wait = h.Count == 2
		}
	}
	if !wall || !wait {
		t.Errorf("per-experiment wall/wait histograms missing or short: %+v", snap.Hists)
	}
}

// TestRunnerLive exercises the scrape view: Live is empty before any
// run, safe to call concurrently while experiments execute (the serve
// endpoints scrape mid-suite), and converges to the final merged
// recorder minus the runner.* self-metrics once the run completes.
func TestRunnerLive(t *testing.T) {
	r := NewRunner(RunnerOptions{Parallel: 4, Observe: true})
	if got := len(r.Live().Spans()); got != 0 {
		t.Fatalf("Live before any run has %d spans, want 0", got)
	}

	release := make(chan struct{})
	exps := []Experiment{okExp("a", 3), okExp("b", 2),
		fakeExp("hold", func(opts Options) (*Report, error) {
			<-release
			return &Report{ID: "hold", Title: "hold"}, nil
		})}

	done := make(chan *Summary, 1)
	go func() { done <- r.Run(context.Background(), exps) }()

	// Scrape while the suite is provably mid-run ("hold" blocks it).
	deadline := time.After(5 * time.Second)
	for {
		live := r.Live()
		if len(live.Spans()) >= 5 { // a(3) + b(2) recorded, hold still going
			break
		}
		select {
		case <-deadline:
			t.Fatal("live view never showed the completed experiments' spans")
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	sum := <-done

	// After completion the live merge matches the summary recorder:
	// identical spans (same paper-order merge) and identical metrics
	// apart from the runner.* host wall-clock self-metrics, which only
	// the final merge adds.
	live := r.Live()
	if !reflect.DeepEqual(live.Spans(), sum.Rec.Spans()) {
		t.Errorf("post-run Live spans differ from summary recorder")
	}
	got := filterRunner(live.Registry().Snapshot())
	want := filterRunner(sum.Rec.Registry().Snapshot())
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-run Live metrics differ:\n%+v\nvs\n%+v", got, want)
	}
}
