package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"clperf/internal/obs"
)

// This file implements the concurrent suite runner: a bounded worker
// pool that runs independent experiments in parallel with failure
// isolation. The paper's evaluation is 22 independent artifacts, so the
// suite parallelizes across host threads the same way pocl fans
// independent work units out across a thread pool — while keeping the
// emitted reports byte-identical to a serial run.

// RunnerOptions configures a Runner.
type RunnerOptions struct {
	// Parallel is the worker count; values below 1 run serially on a
	// single worker. Output order is paper order regardless.
	Parallel int
	// Timeout bounds each experiment's wall-clock run time; 0 means no
	// limit. A timed-out experiment is reported as failed (its goroutine
	// is abandoned, cooperative cancellation arrives via Options.Ctx).
	Timeout time.Duration
	// Observe gives every experiment a private obs.Recorder. The private
	// recorders are merged in paper order into Summary.Rec after the run,
	// each on a track namespace named after its experiment id, so span
	// tracks never interleave across experiments and the merged snapshot
	// is deterministic regardless of completion order.
	Observe bool
	// Base is the per-experiment option set. Base.Obs is ignored — set
	// Observe instead; the runner owns recorder lifecycles so that
	// concurrent experiments never share one span clock.
	Base Options
}

// ExpResult is the outcome of one experiment in a suite run.
type ExpResult struct {
	// ID and Title identify the experiment.
	ID    string
	Title string
	// Report is the experiment's output; nil when Err is set.
	Report *Report
	// Err is the failure, if any: the experiment's own error, a wrapped
	// panic, or context.DeadlineExceeded on timeout.
	Err error
	// Wall is the experiment's host wall-clock run time.
	Wall time.Duration
	// Wait is how long the experiment sat queued before a worker picked
	// it up.
	Wait time.Duration
	// Rec is the experiment's private recorder (nil unless
	// RunnerOptions.Observe).
	Rec *obs.Recorder
}

// Summary is the outcome of a whole suite run: one ExpResult per
// experiment, in submission (paper) order.
type Summary struct {
	Results []ExpResult
	// Wall is the whole run's host wall-clock time.
	Wall time.Duration
	// Rec holds the deterministic merge of every experiment's private
	// recorder (nil unless RunnerOptions.Observe). Its registry also
	// carries the runner's own metrics — runner.exp.wall.ns and
	// runner.exp.wait.ns histograms plus runner.experiments and
	// runner.failures counters; those are host wall-clock quantities and
	// vary run to run, unlike the simulated-clock experiment metrics.
	Rec *obs.Recorder
}

// Failed returns the results that carry an error, in paper order.
func (s *Summary) Failed() []ExpResult {
	var out []ExpResult
	for _, r := range s.Results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// OK reports whether every experiment succeeded.
func (s *Summary) OK() bool { return len(s.Failed()) == 0 }

// FailureTable summarizes the failed experiments as a harness table.
func (s *Summary) FailureTable() *Table {
	t := &Table{Title: "failed experiments", Columns: []string{"id", "error"}}
	for _, r := range s.Failed() {
		t.AddRow(r.ID, r.Err.Error())
	}
	return t
}

// Runner runs experiment suites on a bounded worker pool.
type Runner struct {
	opts RunnerOptions

	// liveMu guards the live-scrape state of the most recent Run: the
	// per-experiment private recorders in paper order. The recorders
	// themselves are internally locked, so Live can merge them while
	// workers are still writing.
	liveMu   sync.Mutex
	liveIDs  []string
	liveRecs []*obs.Recorder
}

// NewRunner returns a runner with the given options.
func NewRunner(opts RunnerOptions) *Runner {
	if opts.Parallel < 1 {
		opts.Parallel = 1
	}
	return &Runner{opts: opts}
}

// Run executes every experiment and returns a summary with one result
// per experiment in submission order. Failures are isolated: a failing
// (or panicking, or timed-out) experiment yields an error entry and the
// remaining experiments still run. Cancelling ctx stops the suite:
// experiments not yet started fail with the context's error, started
// ones are cut short like a timeout.
func (r *Runner) Run(ctx context.Context, exps []Experiment) *Summary {
	if ctx == nil {
		ctx = context.Background()
	}
	sum := &Summary{Results: make([]ExpResult, len(exps))}
	var recs []*obs.Recorder
	if r.opts.Observe {
		sum.Rec = obs.NewRecorder()
		// Private recorders are created up front and published for Live
		// before any experiment starts, so a mid-suite scrape sees every
		// experiment's recorder (possibly still empty) in paper order.
		recs = make([]*obs.Recorder, len(exps))
		ids := make([]string, len(exps))
		for i, e := range exps {
			recs[i] = obs.NewRecorder()
			ids[i] = e.ID
		}
		r.liveMu.Lock()
		r.liveIDs, r.liveRecs = ids, recs
		r.liveMu.Unlock()
	}

	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := r.opts.Parallel
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var rec *obs.Recorder
				if recs != nil {
					rec = recs[i]
				}
				sum.Results[i] = r.runOne(ctx, exps[i], start, rec)
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	sum.Wall = time.Since(start)

	// Deterministic merge: paper order, each experiment's spans on its
	// own track namespace (id/...), so the merged recorder is identical
	// for any worker count and completion order.
	reg := sum.Rec.Registry()
	for i := range sum.Results {
		res := &sum.Results[i]
		sum.Rec.Merge(res.Rec, res.ID)
		reg.Observe("runner.exp.wall.ns", float64(res.Wall.Nanoseconds()))
		reg.Observe("runner.exp.wait.ns", float64(res.Wait.Nanoseconds()))
		reg.Add("runner.experiments", 1)
		if res.Err != nil {
			reg.Add("runner.failures", 1)
		}
	}
	return sum
}

// runOne executes a single experiment with panic isolation and the
// configured timeout. rec is the experiment's pre-published private
// recorder (nil when observability is off).
func (r *Runner) runOne(ctx context.Context, e Experiment, submitted time.Time, rec *obs.Recorder) ExpResult {
	res := ExpResult{ID: e.ID, Title: e.Title, Wait: time.Since(submitted), Rec: rec}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	runCtx := ctx
	if r.opts.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, r.opts.Timeout)
		defer cancel()
	}
	opts := r.opts.Base
	opts.Obs = res.Rec
	opts.Ctx = runCtx

	began := time.Now()
	type outcome struct {
		rep *Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{err: fmt.Errorf("experiment %s panicked: %v", e.ID, p)}
			}
		}()
		rep, err := e.Run(opts)
		done <- outcome{rep: rep, err: err}
	}()
	select {
	case o := <-done:
		res.Report, res.Err = o.rep, o.err
	case <-runCtx.Done():
		// The experiment goroutine is abandoned; it sees the cancellation
		// through opts.Ctx if it cooperates. Its private recorder may keep
		// filling, which is why a timed-out result is never merged.
		res.Err = runCtx.Err()
		res.Rec = nil
	}
	res.Wall = time.Since(began)
	return res
}

// Live returns a point-in-time merge of the most recent Run's
// per-experiment recorders, in paper order on the same id/track
// namespaces as the final Summary.Rec. It is safe to call while the
// suite is still running — each private recorder is internally locked
// and copied under that lock — which is what backs the obs/serve
// scrape endpoints mid-suite. Before any observed Run (or with
// Observe off) it returns an empty recorder. Unlike Summary.Rec the
// live view carries no runner.* wall/wait metrics (those exist only
// once experiments finish) and includes recorders of experiments that
// later time out.
func (r *Runner) Live() *obs.Recorder {
	out := obs.NewRecorder()
	r.liveMu.Lock()
	ids, recs := r.liveIDs, r.liveRecs
	r.liveMu.Unlock()
	for i, rec := range recs {
		out.Merge(rec, ids[i])
	}
	return out
}
