// Package arch describes the simulated hardware: the parameters of the CPU
// and GPU timing models and presets matching the paper's Table I
// experimental environment (a dual-socket Intel Xeon E5645 system and an
// NVIDIA GeForce GTX 580).
//
// Every number here is a model parameter, not a measurement: the presets
// are calibrated so the *shapes* of the paper's figures reproduce, with
// absolute magnitudes in the right order of magnitude for the 2012-era
// hardware.
package arch

import (
	"clperf/internal/ir"
	"clperf/internal/units"
)

// CacheGeom describes one cache level.
type CacheGeom struct {
	Size     units.ByteSize
	LineSize int64
	Assoc    int
	// Latency is the access (hit) latency in core cycles.
	Latency float64
}

// Sets returns the number of sets.
func (g CacheGeom) Sets() int64 {
	if g.LineSize == 0 || g.Assoc == 0 {
		return 0
	}
	return int64(g.Size) / (g.LineSize * int64(g.Assoc))
}

// CPU parameterizes the out-of-order multicore CPU model.
type CPU struct {
	Name    string
	Sockets int
	// CoresPerSocket is the number of physical cores per socket.
	CoresPerSocket int
	// SMTWays is the number of logical threads per physical core.
	SMTWays int
	Clock   units.Frequency

	// IssueWidth is the maximum micro-ops issued per cycle per core.
	IssueWidth float64
	// FPPipes is the number of floating-point operations issued per cycle
	// per core (vector units count one vector op).
	FPPipes float64
	// MemPipes is the number of load/store operations issued per cycle.
	MemPipes float64
	// SIMDWidth is the number of single-precision lanes per vector register.
	SIMDWidth int
	SIMDName  string
	// OoOWindow approximates the out-of-order instruction window in
	// micro-ops; it bounds how much of adjacent workitems' work the core can
	// overlap to hide a dependence chain.
	OoOWindow float64
	// MaxWorkgroup is CL_DEVICE_MAX_WORK_GROUP_SIZE: the largest workgroup
	// the runtime accepts, and the ceiling of any workgroup-size search.
	MaxWorkgroup int
	// SMTYield is the per-thread issue share when both SMT siblings of a
	// core are busy (two threads at 0.62 ≈ the familiar ~1.25x SMT gain).
	SMTYield float64

	// Lat prices each op class in core cycles.
	Lat ir.LatencyTable

	L1D, L2, L3 CacheGeom
	// MemLatency is the DRAM access latency in cycles.
	MemLatency float64
	// MemBandwidth is the aggregate DRAM bandwidth of the machine.
	MemBandwidth units.Bandwidth
	// L3Bandwidth is the aggregate bandwidth of the shared last-level
	// cache, used when a kernel's working set is L3-resident (the paper
	// iterates kernels for 90 seconds, so steady-state data is cached).
	L3Bandwidth units.Bandwidth

	// Runtime (OpenCL-on-CPU implementation) parameters.

	// GroupDispatch is the per-workgroup scheduling cost: enqueueing the
	// group as a task, waking a worker, and the associated context switch.
	GroupDispatch units.Duration
	// ItemOverhead is the per-workitem bookkeeping in the runtime's workitem
	// loop, in cycles. Vectorized kernels pay it once per vector packet,
	// which is part of why implicit vectorization helps on CPUs.
	ItemOverhead float64
	// BarrierCost is the fixed per-barrier, per-workgroup cost in cycles
	// (loop fission in the workitem loop).
	BarrierCost float64
	// BarrierItemCost is the additional per-workitem cost of carrying state
	// across a barrier, in cycles.
	BarrierItemCost float64
	// BarrierContext is the per-workitem live state preserved across a
	// barrier, in bytes. When items*BarrierContext plus the local-memory
	// footprint exceeds a cache level, crossings get more expensive — the
	// mechanism behind the CPU's smaller optimal Matrixmul workgroup.
	BarrierContext int64
	// LaunchOverhead is the fixed host-side cost of one
	// clEnqueueNDRangeKernel, independent of geometry.
	LaunchOverhead units.Duration

	// Host-side transfer parameters (CPU device: host and device share DRAM).

	// CopyBandwidth is effective memcpy bandwidth for buffer copies.
	CopyBandwidth units.Bandwidth
	// CopyOverhead is the fixed cost of a copy command (allocation of the
	// runtime-side object, command processing).
	CopyOverhead units.Duration
	// MapOverhead is the cost of clEnqueueMapBuffer: returning a pointer.
	MapOverhead units.Duration
}

// PhysicalCores returns the machine's physical core count.
func (c *CPU) PhysicalCores() int { return c.Sockets * c.CoresPerSocket }

// LogicalCores returns the number of hardware threads (OpenCL compute
// units on the Intel CPU platform).
func (c *CPU) LogicalCores() int { return c.PhysicalCores() * c.SMTWays }

// PeakFlops returns peak single-precision throughput: every core issuing
// FPPipes vector ops of SIMDWidth lanes per cycle.
func (c *CPU) PeakFlops() units.Throughput {
	return units.Throughput(float64(c.PhysicalCores()) * c.FPPipes *
		float64(c.SIMDWidth) * float64(c.Clock))
}

// XeonE5645 returns the paper's CPU: a dual-socket Intel Xeon E5645
// (Westmere-EP, 6 cores + HyperThreading per socket, SSE 4.2, 2.40 GHz,
// L1D/L2/L3 64K/256K/12M, 230.4 GFlop/s peak single precision).
func XeonE5645() *CPU {
	var lat ir.LatencyTable
	lat[ir.OpFAdd] = 3
	lat[ir.OpFMul] = 5
	lat[ir.OpFDiv] = 22
	lat[ir.OpFMA] = 8 // no FMA unit: priced as dependent mul+add
	lat[ir.OpSpecial] = 22
	lat[ir.OpInt] = 1
	lat[ir.OpCmp] = 1
	lat[ir.OpSelect] = 2
	lat[ir.OpLoad] = 4 // L1 hit; misses are priced by the memory model
	lat[ir.OpStore] = 1
	lat[ir.OpLocalLoad] = 4
	lat[ir.OpLocalStore] = 1
	lat[ir.OpAtomic] = 22
	lat[ir.OpBarrier] = 0
	lat[ir.OpLibm] = 140 // scalar exp/log/sin/cos through libm

	return &CPU{
		Name:           "Intel(R) Xeon(R) CPU E5645",
		Sockets:        2,
		CoresPerSocket: 6,
		SMTWays:        2,
		Clock:          2.40 * units.Gigahertz,
		IssueWidth:     4,
		FPPipes:        2, // separate multiply and add ports
		MemPipes:       1,
		SIMDWidth:      4,
		SIMDName:       "SSE 4.2",
		OoOWindow:      64,
		MaxWorkgroup:   1024,
		SMTYield:       0.62,
		Lat:            lat,
		L1D:            CacheGeom{Size: 64 * units.Kibibyte, LineSize: 64, Assoc: 8, Latency: 4},
		L2:             CacheGeom{Size: 256 * units.Kibibyte, LineSize: 64, Assoc: 8, Latency: 10},
		L3:             CacheGeom{Size: 12 * units.Mebibyte, LineSize: 64, Assoc: 16, Latency: 40},
		MemLatency:     200,
		MemBandwidth:   65 * units.GBPerSecond,
		L3Bandwidth:    130 * units.GBPerSecond,

		GroupDispatch:   0.045 * units.Microsecond,
		ItemOverhead:    40,
		BarrierCost:     150,
		BarrierItemCost: 4,
		BarrierContext:  288,
		LaunchOverhead:  1.2 * units.Microsecond,

		CopyBandwidth: 9 * units.GBPerSecond,
		CopyOverhead:  4 * units.Microsecond,
		MapOverhead:   1.5 * units.Microsecond,
	}
}

// SandyBridge returns the 8-wide-AVX CPU the paper's introduction mentions
// as the heterogeneous trend-setter: a single-socket Core i7-2600-class
// part. Against the Westmere preset it isolates the effect of SIMD width
// (and of having no second socket).
func SandyBridge() *CPU {
	c := XeonE5645()
	c.Name = "Intel(R) Core(TM) i7-2600 (Sandy Bridge)"
	c.Sockets = 1
	c.CoresPerSocket = 4
	c.Clock = 3.4 * units.Gigahertz
	c.SIMDWidth = 8
	c.SIMDName = "AVX"
	c.L3 = CacheGeom{Size: 8 * units.Mebibyte, LineSize: 64, Assoc: 16, Latency: 36}
	c.MemBandwidth = 21 * units.GBPerSecond
	c.L3Bandwidth = 80 * units.GBPerSecond
	return c
}

// GPU parameterizes the SM/warp occupancy timing model.
type GPU struct {
	Name     string
	SMs      int
	WarpSize int
	// LanesPerSM is the number of scalar cores (lanes) per SM.
	LanesPerSM int
	// MaxWarpsPerSM caps resident warps per SM (occupancy).
	MaxWarpsPerSM int
	// MaxGroupsPerSM caps resident workgroups per SM.
	MaxGroupsPerSM int
	// MaxWorkgroup is CL_DEVICE_MAX_WORK_GROUP_SIZE.
	MaxWorkgroup int
	// SharedMemPerSM is the scratchpad (__local) capacity per SM.
	SharedMemPerSM units.ByteSize
	Clock          units.Frequency // shader clock

	// Lat prices each op class in shader cycles (the dominant entries are
	// the long global-memory and pipeline latencies warps must hide).
	Lat ir.LatencyTable

	MemBandwidth units.Bandwidth
	// MemLatency is the global-memory round trip in shader cycles; with
	// MLPPerWarp it bounds achievable bandwidth by Little's law when few
	// warps are resident.
	MemLatency float64
	// MLPPerWarp is the number of cache lines a warp keeps outstanding.
	MLPPerWarp float64
	// LineSize is the memory transaction size in bytes.
	LineSize int64

	// PCIe transfer model for host<->device buffers.
	PCIeBandwidth units.Bandwidth
	// PinnedBandwidth applies to buffers created with AllocHostPtr.
	PinnedBandwidth units.Bandwidth
	PCIeLatency     units.Duration
	// MapOverhead prices clEnqueueMapBuffer of a pinned buffer.
	MapOverhead units.Duration

	// KernelLaunch is the fixed host-side launch cost.
	KernelLaunch units.Duration
}

// PeakFlops returns peak throughput with every lane doing an FMA each cycle.
func (g *GPU) PeakFlops() units.Throughput {
	return units.Throughput(float64(g.SMs*g.LanesPerSM) * 2 * float64(g.Clock))
}

// GTX580 returns the paper's GPU: an NVIDIA GeForce GTX 580 (Fermi GF110,
// 16 SMs, 1544 MHz shader clock, 16KB L1 / 768KB L2, 1.56 TFlop/s).
func GTX580() *GPU {
	var lat ir.LatencyTable
	lat[ir.OpFAdd] = 18
	lat[ir.OpFMul] = 18
	lat[ir.OpFDiv] = 40
	lat[ir.OpFMA] = 18
	lat[ir.OpSpecial] = 44
	lat[ir.OpInt] = 18
	lat[ir.OpCmp] = 18
	lat[ir.OpSelect] = 18
	lat[ir.OpLoad] = 40 // issue-to-use slack; DRAM latency lives in MemLatency
	lat[ir.OpStore] = 18
	lat[ir.OpLocalLoad] = 30 // shared memory
	lat[ir.OpLocalStore] = 30
	lat[ir.OpAtomic] = 60
	lat[ir.OpBarrier] = 20
	lat[ir.OpLibm] = 44 // SFU-backed transcendentals

	return &GPU{
		Name:            "NVIDIA GeForce GTX 580",
		SMs:             16,
		WarpSize:        32,
		LanesPerSM:      32,
		MaxWarpsPerSM:   48,
		MaxGroupsPerSM:  8,
		MaxWorkgroup:    1024,
		SharedMemPerSM:  48 * units.Kibibyte,
		Clock:           1544 * units.Megahertz,
		Lat:             lat,
		MemBandwidth:    192 * units.GBPerSecond,
		MemLatency:      440,
		MLPPerWarp:      4,
		LineSize:        128,
		PCIeBandwidth:   5.2 * units.GBPerSecond,
		PinnedBandwidth: 6.2 * units.GBPerSecond,
		PCIeLatency:     12 * units.Microsecond,
		MapOverhead:     3 * units.Microsecond,
		KernelLaunch:    8 * units.Microsecond,
	}
}
