package arch

import "clperf/internal/units"

// CPUZoo returns the deterministic CPU device zoo: the two paper-era
// presets plus synthetic variants spanning the axes the cost model is
// sensitive to — core count, SIMD width, cache geometry, and memory
// bandwidth. The zoo is the training and property-test population of
// the learned cost predictor (internal/predict): coefficients are fit
// over every (kernel, device) pair, and the pruned-search quality bound
// is asserted on each zoo member. Order and parameters are fixed; a new
// variant appended here automatically joins both.
func CPUZoo() []*CPU {
	return []*CPU{
		XeonE5645(),
		SandyBridge(),
		wideServer(),
		narrowClient(),
	}
}

// wideServer is a synthetic many-core AVX-512-class part: it stresses
// the scheduling terms (many workers, deep SMT) and the widest SIMD
// packing the model supports.
func wideServer() *CPU {
	c := XeonE5645()
	c.Name = "Synthetic 2S x 16C AVX-512 server"
	c.Sockets = 2
	c.CoresPerSocket = 16
	c.Clock = 2.0 * units.Gigahertz
	c.IssueWidth = 5
	c.SIMDWidth = 16
	c.SIMDName = "AVX-512"
	c.OoOWindow = 224
	c.L1D = CacheGeom{Size: 48 * units.Kibibyte, LineSize: 64, Assoc: 12, Latency: 5}
	c.L2 = CacheGeom{Size: 1 * units.Mebibyte, LineSize: 64, Assoc: 16, Latency: 14}
	c.L3 = CacheGeom{Size: 44 * units.Mebibyte, LineSize: 64, Assoc: 11, Latency: 50}
	c.MemBandwidth = 180 * units.GBPerSecond
	c.L3Bandwidth = 400 * units.GBPerSecond
	return c
}

// MatrixZoo returns the 8-device CPU zoo of the portability-matrix
// experiment: the four CPUZoo members plus four further synthetic
// variants stretching the same axes (mid-range AVX2 server, manycore
// throughput part, L3-heavy cache machine, bandwidth-starved embedded
// client). It is a strict superset of CPUZoo but a separate population:
// the learned cost predictor's frozen fit (internal/predict) trains on
// CPUZoo only, so appending devices here never perturbs the checked-in
// coefficients. Order and parameters are fixed — the matrix experiment's
// columns, the replay differential tests and the perfbaseline matrix
// workload all iterate this list.
func MatrixZoo() []*CPU {
	return append(CPUZoo(),
		midServerAVX2(),
		manycoreThroughput(),
		cacheHeavyDesktop(),
		embeddedClient(),
	)
}

// midServerAVX2 is a contemporary mid-range two-socket AVX2 server: the
// common ground between the paper-era Xeon and the AVX-512 extreme.
func midServerAVX2() *CPU {
	c := XeonE5645()
	c.Name = "Synthetic 2S x 8C AVX2 server"
	c.Sockets = 2
	c.CoresPerSocket = 8
	c.Clock = 2.6 * units.Gigahertz
	c.IssueWidth = 4
	c.SIMDWidth = 8
	c.SIMDName = "AVX2"
	c.OoOWindow = 192
	c.L2 = CacheGeom{Size: 256 * units.Kibibyte, LineSize: 64, Assoc: 8, Latency: 12}
	c.L3 = CacheGeom{Size: 20 * units.Mebibyte, LineSize: 64, Assoc: 20, Latency: 40}
	c.MemBandwidth = 68 * units.GBPerSecond
	c.L3Bandwidth = 250 * units.GBPerSecond
	return c
}

// manycoreThroughput is a single-socket manycore throughput part: many
// modestly clocked SMT cores behind small private caches, the
// GPU-adjacent corner of the CPU spectrum.
func manycoreThroughput() *CPU {
	c := XeonE5645()
	c.Name = "Synthetic 1S x 24C throughput"
	c.Sockets = 1
	c.CoresPerSocket = 24
	c.SMTWays = 4
	c.SMTYield = 0.4
	c.Clock = 1.4 * units.Gigahertz
	c.IssueWidth = 2
	c.SIMDWidth = 8
	c.SIMDName = "AVX2"
	c.OoOWindow = 72
	c.L1D = CacheGeom{Size: 16 * units.Kibibyte, LineSize: 64, Assoc: 4, Latency: 3}
	c.L2 = CacheGeom{Size: 256 * units.Kibibyte, LineSize: 64, Assoc: 8, Latency: 15}
	c.L3 = CacheGeom{Size: 16 * units.Mebibyte, LineSize: 64, Assoc: 16, Latency: 60}
	c.MemBandwidth = 100 * units.GBPerSecond
	c.L3Bandwidth = 220 * units.GBPerSecond
	return c
}

// cacheHeavyDesktop is an eight-core desktop with an outsized victim-
// style L3: working sets that stream from DRAM everywhere else turn
// L3-resident here, isolating the cache-capacity axis.
func cacheHeavyDesktop() *CPU {
	c := XeonE5645()
	c.Name = "Synthetic 1S x 8C big-L3 desktop"
	c.Sockets = 1
	c.CoresPerSocket = 8
	c.Clock = 3.4 * units.Gigahertz
	c.IssueWidth = 4
	c.SIMDWidth = 8
	c.SIMDName = "AVX2"
	c.OoOWindow = 160
	c.L2 = CacheGeom{Size: 512 * units.Kibibyte, LineSize: 64, Assoc: 8, Latency: 13}
	c.L3 = CacheGeom{Size: 96 * units.Mebibyte, LineSize: 64, Assoc: 16, Latency: 46}
	c.MemBandwidth = 50 * units.GBPerSecond
	c.L3Bandwidth = 300 * units.GBPerSecond
	return c
}

// embeddedClient is a bandwidth-starved quad-core embedded part: narrow
// SIMD, tiny caches, single-channel memory — the floor of the zoo's
// memory system axis.
func embeddedClient() *CPU {
	c := XeonE5645()
	c.Name = "Synthetic 1S x 4C embedded"
	c.Sockets = 1
	c.CoresPerSocket = 4
	c.SMTWays = 1
	c.Clock = 1.8 * units.Gigahertz
	c.IssueWidth = 2
	c.SIMDWidth = 4
	c.SIMDName = "SIMD128"
	c.OoOWindow = 40
	c.MaxWorkgroup = 256
	c.L1D = CacheGeom{Size: 32 * units.Kibibyte, LineSize: 64, Assoc: 4, Latency: 3}
	c.L2 = CacheGeom{Size: 256 * units.Kibibyte, LineSize: 64, Assoc: 8, Latency: 11}
	c.L3 = CacheGeom{Size: 1 * units.Mebibyte, LineSize: 64, Assoc: 8, Latency: 25}
	c.MemBandwidth = 6 * units.GBPerSecond
	c.L3Bandwidth = 25 * units.GBPerSecond
	return c
}

// narrowClient is a synthetic small laptop-class part with no SMT and a
// scalar-leaning core: it stresses the few-worker, dispatch-dominated
// corner where large workgroups win on overhead alone.
func narrowClient() *CPU {
	c := XeonE5645()
	c.Name = "Synthetic 1S x 2C SSE client"
	c.Sockets = 1
	c.CoresPerSocket = 2
	c.SMTWays = 1
	c.Clock = 1.6 * units.Gigahertz
	c.IssueWidth = 3
	c.SIMDWidth = 4
	c.SIMDName = "SSE"
	c.OoOWindow = 32
	c.MaxWorkgroup = 256
	c.L2 = CacheGeom{Size: 512 * units.Kibibyte, LineSize: 64, Assoc: 8, Latency: 12}
	c.L3 = CacheGeom{Size: 2 * units.Mebibyte, LineSize: 64, Assoc: 16, Latency: 30}
	c.MemBandwidth = 12 * units.GBPerSecond
	c.L3Bandwidth = 40 * units.GBPerSecond
	return c
}
