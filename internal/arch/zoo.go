package arch

import "clperf/internal/units"

// CPUZoo returns the deterministic CPU device zoo: the two paper-era
// presets plus synthetic variants spanning the axes the cost model is
// sensitive to — core count, SIMD width, cache geometry, and memory
// bandwidth. The zoo is the training and property-test population of
// the learned cost predictor (internal/predict): coefficients are fit
// over every (kernel, device) pair, and the pruned-search quality bound
// is asserted on each zoo member. Order and parameters are fixed; a new
// variant appended here automatically joins both.
func CPUZoo() []*CPU {
	return []*CPU{
		XeonE5645(),
		SandyBridge(),
		wideServer(),
		narrowClient(),
	}
}

// wideServer is a synthetic many-core AVX-512-class part: it stresses
// the scheduling terms (many workers, deep SMT) and the widest SIMD
// packing the model supports.
func wideServer() *CPU {
	c := XeonE5645()
	c.Name = "Synthetic 2S x 16C AVX-512 server"
	c.Sockets = 2
	c.CoresPerSocket = 16
	c.Clock = 2.0 * units.Gigahertz
	c.IssueWidth = 5
	c.SIMDWidth = 16
	c.SIMDName = "AVX-512"
	c.OoOWindow = 224
	c.L1D = CacheGeom{Size: 48 * units.Kibibyte, LineSize: 64, Assoc: 12, Latency: 5}
	c.L2 = CacheGeom{Size: 1 * units.Mebibyte, LineSize: 64, Assoc: 16, Latency: 14}
	c.L3 = CacheGeom{Size: 44 * units.Mebibyte, LineSize: 64, Assoc: 11, Latency: 50}
	c.MemBandwidth = 180 * units.GBPerSecond
	c.L3Bandwidth = 400 * units.GBPerSecond
	return c
}

// narrowClient is a synthetic small laptop-class part with no SMT and a
// scalar-leaning core: it stresses the few-worker, dispatch-dominated
// corner where large workgroups win on overhead alone.
func narrowClient() *CPU {
	c := XeonE5645()
	c.Name = "Synthetic 1S x 2C SSE client"
	c.Sockets = 1
	c.CoresPerSocket = 2
	c.SMTWays = 1
	c.Clock = 1.6 * units.Gigahertz
	c.IssueWidth = 3
	c.SIMDWidth = 4
	c.SIMDName = "SSE"
	c.OoOWindow = 32
	c.MaxWorkgroup = 256
	c.L2 = CacheGeom{Size: 512 * units.Kibibyte, LineSize: 64, Assoc: 8, Latency: 12}
	c.L3 = CacheGeom{Size: 2 * units.Mebibyte, LineSize: 64, Assoc: 16, Latency: 30}
	c.MemBandwidth = 12 * units.GBPerSecond
	c.L3Bandwidth = 40 * units.GBPerSecond
	return c
}
