package arch

import (
	"testing"

	"clperf/internal/ir"
	"clperf/internal/units"
)

func TestXeonE5645MatchesTableI(t *testing.T) {
	c := XeonE5645()
	// Table I: 230.4 GFlop/s single-precision peak.
	if got := c.PeakFlops(); got != 230.4*units.GFlops {
		t.Errorf("PeakFlops = %v, want 230.4 GFlop/s", got)
	}
	if c.Clock != 2.40*units.Gigahertz {
		t.Errorf("Clock = %v, want 2.4GHz", c.Clock)
	}
	if c.SIMDWidth != 4 {
		t.Errorf("SIMDWidth = %d, want 4 (SSE single precision)", c.SIMDWidth)
	}
	if c.L1D.Size != 64*units.Kibibyte || c.L2.Size != 256*units.Kibibyte || c.L3.Size != 12*units.Mebibyte {
		t.Errorf("cache sizes %v/%v/%v, want 64K/256K/12M", c.L1D.Size, c.L2.Size, c.L3.Size)
	}
	if c.PhysicalCores() != 12 || c.LogicalCores() != 24 {
		t.Errorf("cores = %d/%d, want 12 physical / 24 logical", c.PhysicalCores(), c.LogicalCores())
	}
}

func TestGTX580MatchesTableI(t *testing.T) {
	g := GTX580()
	if g.SMs != 16 {
		t.Errorf("SMs = %d, want 16", g.SMs)
	}
	if g.Clock != 1544*units.Megahertz {
		t.Errorf("Clock = %v, want 1544MHz", g.Clock)
	}
	// Table I: 1.56 TFlop/s ~= 16*32*2*1.544GHz.
	peak := g.PeakFlops()
	if peak < 1.5e12 || peak > 1.6e12 {
		t.Errorf("PeakFlops = %v, want ~1.56 TFlop/s", peak)
	}
}

func TestLatencyTablesComplete(t *testing.T) {
	for _, tc := range []struct {
		name string
		lat  ir.LatencyTable
	}{
		{"cpu", XeonE5645().Lat},
		{"gpu", GTX580().Lat},
	} {
		for c := ir.OpClass(0); c < ir.NumOpClasses; c++ {
			if c == ir.OpBarrier {
				continue // may legitimately be free
			}
			if tc.lat[c] <= 0 {
				t.Errorf("%s: latency for %v is %v, want > 0", tc.name, c, tc.lat[c])
			}
		}
	}
}

func TestCacheGeomSets(t *testing.T) {
	g := CacheGeom{Size: 32 * units.Kibibyte, LineSize: 64, Assoc: 8}
	if got := g.Sets(); got != 64 {
		t.Errorf("Sets = %d, want 64", got)
	}
	if (CacheGeom{}).Sets() != 0 {
		t.Error("zero geometry must have zero sets")
	}
}
