package search

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheShardCount pins the striping policy: small capacities keep
// the exact single-LRU semantics (TestCacheEvictsLRU depends on it),
// larger ones stripe over shardCount segments.
func TestCacheShardCount(t *testing.T) {
	cases := []struct {
		cap, want int
	}{
		{2, 1},
		{minShardedCap - 1, 1},
		{minShardedCap, shardCount},
		{0, shardCount}, // DefaultCap
		{DefaultCap, shardCount},
	}
	for _, tc := range cases {
		if got := NewCache(tc.cap).Shards(); got != tc.want {
			t.Errorf("NewCache(%d).Shards() = %d, want %d", tc.cap, got, tc.want)
		}
	}
	if got := (*Cache)(nil).Shards(); got != 0 {
		t.Errorf("nil cache Shards() = %d, want 0", got)
	}
}

// TestCacheShardCapacitySum pins that striping preserves the total
// entry bound exactly, including capacities that do not divide evenly.
func TestCacheShardCapacitySum(t *testing.T) {
	for _, capacity := range []int{64, 100, 4096, 4099} {
		c := NewCache(capacity)
		sum := 0
		for _, s := range c.shards {
			sum += s.cap
		}
		if sum != capacity {
			t.Errorf("NewCache(%d): shard capacities sum to %d", capacity, sum)
		}
	}
}

// TestCacheShardedCountersMergeExact hammers a sharded cache from many
// goroutines and checks the summed counters account for every lookup
// exactly: hits+misses == lookups, and misses == distinct keys actually
// evaluated (no evictions occur below the bound, so every re-lookup of a
// key is a hit).
func TestCacheShardedCountersMergeExact(t *testing.T) {
	c := NewCache(1024)
	if c.Shards() < 2 {
		t.Fatalf("want a sharded cache, got %d shard(s)", c.Shards())
	}
	const (
		workers = 16
		keys    = 256
		rounds  = 8
	)
	var evals atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < keys; i++ {
					key := fmt.Sprintf("k%03d", (i+w)%keys)
					v, _, _, err := c.Do(key, func() (any, error) {
						evals.Add(1)
						return key, nil
					})
					if err != nil || v.(string) != key {
						t.Errorf("Do(%q) = %v, %v", key, v, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	lookups := uint64(workers * keys * rounds)
	if st.Hits+st.Misses != lookups {
		t.Errorf("hits(%d)+misses(%d) = %d, want %d lookups",
			st.Hits, st.Misses, st.Hits+st.Misses, lookups)
	}
	if st.Misses != evals.Load() {
		t.Errorf("misses = %d but fn ran %d times", st.Misses, evals.Load())
	}
	if st.Misses != keys {
		t.Errorf("misses = %d, want %d (one per distinct key)", st.Misses, keys)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (working set below bound)", st.Evictions)
	}
	if c.Len() != keys {
		t.Errorf("Len = %d, want %d", c.Len(), keys)
	}
}

// TestCacheShardedEvictionBound pins that a sharded cache stays within
// its total bound under a churn workload that overflows every shard.
func TestCacheShardedEvictionBound(t *testing.T) {
	const capacity = 128
	c := NewCache(capacity)
	const keys = capacity * 4
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("churn%04d", i)
		if _, _, _, err := c.Do(key, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > capacity {
		t.Errorf("Len = %d exceeds bound %d after churn", c.Len(), capacity)
	}
	st := c.Stats()
	if st.Misses != keys {
		t.Errorf("misses = %d, want %d", st.Misses, keys)
	}
	if want := uint64(keys - c.Len()); st.Evictions != want {
		t.Errorf("evictions = %d, want misses-resident = %d", st.Evictions, want)
	}
}

// TestCacheShardRoutingStable pins that a key always routes to the same
// shard, so repeated lookups hit.
func TestCacheShardRoutingStable(t *testing.T) {
	c := NewCache(DefaultCap)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("route%02d", i)
		if c.shard(key) != c.shard(key) {
			t.Fatalf("key %q routed to different shards", key)
		}
		c.Do(key, func() (any, error) { return i, nil })
		_, hit, _, _ := c.Do(key, func() (any, error) { return nil, nil })
		if !hit {
			t.Fatalf("second lookup of %q missed", key)
		}
	}
}

// BenchmarkCacheContention measures parallel hit-path throughput on a
// warm cache — the clperfd regime where many tunes price overlapping
// candidate sets. Compare the sharded default against a single-shard
// cache of the same total capacity to see the striping payoff.
func BenchmarkCacheContention(b *testing.B) {
	for _, bc := range []struct {
		name   string
		shards bool
	}{
		{"sharded", true},
		{"single", false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			capacity := DefaultCap
			if !bc.shards {
				capacity = minShardedCap - 1 // forces one shard
			}
			c := NewCache(capacity)
			const keys = 48 // one Binomialoption candidate set
			for i := 0; i < keys; i++ {
				c.Do(fmt.Sprintf("wg%02d", i), func() (any, error) { return i, nil })
			}
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					key := fmt.Sprintf("wg%02d", i%keys)
					i++
					if _, hit, _, _ := c.Do(key, func() (any, error) { return nil, nil }); !hit {
						b.Fatal("unexpected miss on warm cache")
					}
				}
			})
		})
	}
}
