package search

import (
	"testing"

	"clperf/internal/ir"
	"clperf/internal/kernels"
)

func BenchmarkKey(b *testing.B) {
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	args := app.Make(nd)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Key("cpu|x", app.Kernel, args, nd)
	}
}

func BenchmarkFormatOnly(b *testing.B) {
	app := kernels.BlackScholes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ir.Format(app.Kernel)
	}
}
