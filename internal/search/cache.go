package search

import (
	"container/list"
	"sync"
)

// DefaultCap is the entry bound of a Cache built with NewCache(0). Model
// evaluations are a few microseconds and a few KB each; 4096 entries cover
// the largest joint Tune search (11 coarsening factors x ~100 workgroup
// candidates) with room for a whole experiment sweep.
const DefaultCap = 4096

// Stats counts cache outcomes. Hits include calls that joined an
// in-flight evaluation of the same key (the work ran once either way).
type Stats struct {
	Hits, Misses, Evictions uint64
}

// Sub returns the change from an earlier snapshot.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Evictions: s.Evictions - prev.Evictions,
	}
}

// HitRate returns hits over lookups (0 before the first lookup).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one memoized evaluation. done is closed when val/err are
// final, so concurrent callers of the same key wait instead of
// re-evaluating (single-flight).
type entry struct {
	key  string
	done chan struct{}
	val  any
	err  error
}

// Cache is a bounded, concurrency-safe memo table from content-addressed
// launch keys (see Key) to model-evaluation results. Lookups of a key
// being computed by another goroutine block until that evaluation
// finishes; completed entries are evicted least-recently-used once the
// bound is reached. A nil *Cache is a valid pass-through: Do simply
// calls fn.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // of *entry
	lru     *list.List               // front = most recently used
	stats   Stats
}

// NewCache returns a cache bounded to capacity entries (DefaultCap when
// capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Cache{
		cap:     capacity,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of resident entries (including in-flight ones).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Do returns the memoized result for key, evaluating fn exactly once per
// resident key. The outcome reports whether the call was served from the
// cache (joining an in-flight evaluation counts) and how many entries
// were evicted to make room. Errors are memoized too: a deterministic
// model returns the same error for the same launch.
func (c *Cache) Do(key string, fn func() (any, error)) (val any, hit bool, evicted int, err error) {
	if c == nil {
		v, err := fn()
		return v, false, 0, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*entry)
		c.stats.Hits++
		c.mu.Unlock()
		<-e.done
		return e.val, true, 0, e.err
	}
	e := &entry{key: key, done: make(chan struct{})}
	c.entries[key] = c.lru.PushFront(e)
	c.stats.Misses++
	evicted = c.evictLocked()
	c.mu.Unlock()

	defer func() {
		// Publish even if fn panics, so waiters never deadlock; the panic
		// still propagates to this caller.
		if r := recover(); r != nil {
			e.err = errPanic{r}
			close(e.done)
			panic(r)
		}
		e.val, e.err = val, err
		close(e.done)
	}()
	val, err = fn()
	return val, false, evicted, err
}

// errPanic marks an entry whose evaluation panicked.
type errPanic struct{ v any }

func (e errPanic) Error() string { return "search: evaluation panicked" }

// evictLocked drops completed least-recently-used entries until the
// cache is within bound. In-flight entries are skipped: their callers
// hold references and will publish into them.
func (c *Cache) evictLocked() int {
	evicted := 0
	for el := c.lru.Back(); el != nil && len(c.entries) > c.cap; {
		prev := el.Prev()
		e := el.Value.(*entry)
		select {
		case <-e.done:
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.stats.Evictions++
			evicted++
		default:
			// still being computed
		}
		el = prev
	}
	return evicted
}
