package search

import (
	"container/list"
	"sync"
)

// DefaultCap is the entry bound of a Cache built with NewCache(0). Model
// evaluations are a few microseconds and a few KB each; 4096 entries cover
// the largest joint Tune search (11 coarsening factors x ~100 workgroup
// candidates) with room for a whole experiment sweep.
const DefaultCap = 4096

// Sharding: keys are spread over shardCount independently locked
// segments so concurrent tunes (the clperfd regime: many goroutines
// pricing candidate sets against one shared cache) stop serializing on a
// single mutex. Caches smaller than minShardedCap entries stay
// single-shard: striping a tiny capacity would change which entries an
// eviction targets, and the exact-LRU semantics of small caches are
// pinned by tests and by callers that size the cache to a known search.
const (
	shardCount    = 8 // power of two (shard index is a hash mask)
	minShardedCap = 64
)

// Stats counts cache outcomes. Hits include calls that joined an
// in-flight evaluation of the same key (the work ran once either way).
type Stats struct {
	Hits, Misses, Evictions uint64
}

// Sub returns the change from an earlier snapshot.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Evictions: s.Evictions - prev.Evictions,
	}
}

// HitRate returns hits over lookups (0 before the first lookup).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one memoized evaluation. done is closed when val/err are
// final, so concurrent callers of the same key wait instead of
// re-evaluating (single-flight).
type entry struct {
	key  string
	done chan struct{}
	val  any
	err  error
}

// Cache is a bounded, concurrency-safe memo table from content-addressed
// launch keys (see Key) to model-evaluation results, striped over
// mutex-sharded LRU segments (key-hash -> shard). Lookups of a key being
// computed by another goroutine block until that evaluation finishes;
// completed entries are evicted least-recently-used within their shard
// once the shard's bound is reached. Counters are kept per shard and
// summed on read, so totals are merge-exact: every lookup lands in
// exactly one shard's counters. A nil *Cache is a valid pass-through: Do
// simply calls fn.
type Cache struct {
	shards []*cacheShard
	mask   uint32
}

// cacheShard is one independently locked LRU segment.
type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // of *entry
	lru     *list.List               // front = most recently used
	stats   Stats
}

// NewCache returns a cache bounded to capacity entries in total
// (DefaultCap when capacity <= 0), striped over shardCount segments;
// capacities below minShardedCap stay single-shard with exact global
// LRU order.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	n := shardCount
	if capacity < minShardedCap {
		n = 1
	}
	c := &Cache{shards: make([]*cacheShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		// Distribute the bound across shards; earlier shards absorb the
		// remainder so the total stays exactly capacity.
		per := capacity / n
		if i < capacity%n {
			per++
		}
		if per < 1 {
			per = 1
		}
		c.shards[i] = &cacheShard{
			cap:     per,
			entries: map[string]*list.Element{},
			lru:     list.New(),
		}
	}
	return c
}

// shard routes a key to its segment (FNV-1a over the key bytes).
func (c *Cache) shard(key string) *cacheShard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h&c.mask]
}

// Stats returns a snapshot of the summed per-shard counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	var total Stats
	for _, s := range c.shards {
		s.mu.Lock()
		total.Hits += s.stats.Hits
		total.Misses += s.stats.Misses
		total.Evictions += s.stats.Evictions
		s.mu.Unlock()
	}
	return total
}

// Len returns the number of resident entries (including in-flight ones).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Shards returns the number of segments the cache is striped over
// (exposed for tests and capacity planning).
func (c *Cache) Shards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

// Do returns the memoized result for key, evaluating fn exactly once per
// resident key. The outcome reports whether the call was served from the
// cache (joining an in-flight evaluation counts) and how many entries
// were evicted to make room. Errors are memoized too: a deterministic
// model returns the same error for the same launch.
func (c *Cache) Do(key string, fn func() (any, error)) (val any, hit bool, evicted int, err error) {
	if c == nil {
		v, err := fn()
		return v, false, 0, err
	}
	return c.shard(key).do(key, fn)
}

func (s *cacheShard) do(key string, fn func() (any, error)) (val any, hit bool, evicted int, err error) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*entry)
		s.stats.Hits++
		s.mu.Unlock()
		<-e.done
		return e.val, true, 0, e.err
	}
	e := &entry{key: key, done: make(chan struct{})}
	s.entries[key] = s.lru.PushFront(e)
	s.stats.Misses++
	evicted = s.evictLocked()
	s.mu.Unlock()

	defer func() {
		// Publish even if fn panics, so waiters never deadlock; the panic
		// still propagates to this caller.
		if r := recover(); r != nil {
			e.err = errPanic{r}
			close(e.done)
			panic(r)
		}
		e.val, e.err = val, err
		close(e.done)
	}()
	val, err = fn()
	return val, false, evicted, err
}

// errPanic marks an entry whose evaluation panicked.
type errPanic struct{ v any }

func (e errPanic) Error() string { return "search: evaluation panicked" }

// evictLocked drops completed least-recently-used entries until the
// shard is within bound. In-flight entries are skipped: their callers
// hold references and will publish into them.
func (s *cacheShard) evictLocked() int {
	evicted := 0
	for el := s.lru.Back(); el != nil && len(s.entries) > s.cap; {
		prev := el.Prev()
		e := el.Value.(*entry)
		select {
		case <-e.done:
			s.lru.Remove(el)
			delete(s.entries, e.key)
			s.stats.Evictions++
			evicted++
		default:
			// still being computed
		}
		el = prev
	}
	return evicted
}
