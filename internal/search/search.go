// Package search is the shared model-evaluation layer behind every
// launch-parameter search in clperf: core.BestWorkgroup / core.Tune,
// hetero.Partition and the experiment sweeps. The device models are
// pure functions of (kernel, args, NDRange, device parameters), so
// search content-addresses each Device.Estimate result by a canonical
// fingerprint of exactly those inputs, memoizes it in a bounded
// single-flight Cache, and prices whole candidate sets over a bounded
// worker pool (the harness.Runner pattern; the mutex-guarded device
// clocks make concurrent Estimate safe). Hit/miss/eviction counters and
// one region span per search flow through internal/obs.
//
// Everything the layer records is deterministic — counters derive from
// the set of distinct launches, spans lie on a logical per-evaluator
// clock (one tick per candidate), never wall time — so the suite's
// parallel-determinism invariant survives caching.
package search

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/units"
)

// Key returns the content address of one model evaluation: a hash over
// the device fingerprint (arch parameters plus any estimate-shaping
// knobs — callers must include everything Estimate reads), a digest of
// the kernel's canonical printed form, the argument shape (buffer
// bindings with element type, length and base address; every scalar
// value, since the static profiler evaluates loop bounds from them),
// and the NDRange. Two launches with equal keys are priced identically
// by the model.
func Key(deviceFP string, k *ir.Kernel, args *ir.Args, nd ir.NDRange) string {
	var b strings.Builder
	b.Grow(1 << 10)
	b.WriteString(deviceFP)
	b.WriteByte('\n')
	// ir.Digest is the same pointer-memoized canonical-print digest the
	// execution engine keys its compiled-program cache on, so a tuner
	// sweep shares one digest computation per kernel across both layers.
	b.WriteString(ir.Digest(k))
	b.WriteByte('\n')
	if args != nil {
		names := make([]string, 0, len(args.Buffers))
		for n := range args.Buffers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			buf := args.Buffers[n]
			fmt.Fprintf(&b, "buf %s=%s:%v:%d:%d\n", n, buf.Name, buf.Elem, buf.Len(), buf.Base)
		}
		for _, n := range args.ScalarNames() {
			fmt.Fprintf(&b, "scalar %s=%g\n", n, args.Scalars[n])
		}
	}
	b.WriteString(nd.String())
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Launch is one candidate configuration to price: a kernel (possibly a
// coarsened variant), its arguments, and the geometry to launch over.
type Launch struct {
	Kernel *ir.Kernel
	Args   *ir.Args
	ND     ir.NDRange
}

// Evaluator memoizes and parallelizes one device's Estimate. R is the
// device's result type (*cpu.Result or *gpu.Result). The zero Workers
// means GOMAXPROCS; Workers == 1 forces serial evaluation, which keeps
// the order of device-side observe spans reproducible — required when
// the underlying device records onto a determinism-checked recorder.
// A nil Cache disables memoization (every call evaluates), which is the
// -nocache A/B path.
type Evaluator[R any] struct {
	// Fn performs one uncached model evaluation (typically Device.Estimate).
	Fn func(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (R, error)
	// DeviceFP returns the device fingerprint folded into every Key. It is
	// consulted per call because device knobs (e.g. cpu.Device.ForceScalar)
	// can change between searches and must miss the cache when they do.
	DeviceFP func() string
	// Cache memoizes results; may be shared across evaluators of different
	// result types (values are stored as any) and may be nil.
	Cache *Cache
	// Workers bounds EstimateAll's pool (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Rec returns the recorder receiving search spans and counters; nil
	// (or a nil recorder) disables recording. Resolved per call so
	// evaluators built once follow later SetObs-style rewiring.
	Rec func() *obs.Recorder

	mu    sync.Mutex
	clock units.Duration // logical search clock: one tick per candidate
}

// NewEvaluator builds an evaluator over fn with the given fingerprint
// source, cache and recorder source (each may be nil).
func NewEvaluator[R any](deviceFP func() string, fn func(*ir.Kernel, *ir.Args, ir.NDRange) (R, error), c *Cache, rec func() *obs.Recorder) *Evaluator[R] {
	return &Evaluator[R]{Fn: fn, DeviceFP: deviceFP, Cache: c, Rec: rec}
}

// Stats returns the underlying cache's counters (zero when uncached).
func (e *Evaluator[R]) Stats() Stats { return e.Cache.Stats() }

func (e *Evaluator[R]) recorder() *obs.Recorder {
	if e.Rec == nil {
		return nil
	}
	return e.Rec()
}

// Estimate prices one launch through the cache.
func (e *Evaluator[R]) Estimate(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (R, error) {
	r, _, err := e.estimateOne(k, args, nd)
	return r, err
}

func (e *Evaluator[R]) estimateOne(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (R, bool, error) {
	key := Key(e.DeviceFP(), k, args, nd)
	val, hit, evicted, err := e.Cache.Do(key, func() (any, error) {
		return e.Fn(k, args, nd)
	})
	reg := e.recorder().Registry()
	if hit {
		reg.Add("search.cache.hits", 1)
	} else {
		reg.Add("search.cache.misses", 1)
		reg.Add("search.evals", 1)
	}
	if evicted > 0 {
		reg.Add("search.cache.evictions", float64(evicted))
	}
	var zero R
	if err != nil {
		return zero, hit, err
	}
	r, ok := val.(R)
	if !ok {
		return zero, hit, fmt.Errorf("search: cached value for %s.. has wrong type %T", key[:12], val)
	}
	return r, hit, nil
}

// EstimateAll prices every launch, returning results and errors aligned
// by index (a launch either has a result or an error). Evaluation runs
// on a bounded worker pool; output order is independent of scheduling.
// One KindRegion span named "search:"+label covers the whole set on the
// evaluator's logical clock, annotated with candidate/hit/miss counts.
func (e *Evaluator[R]) EstimateAll(label string, launches []Launch) ([]R, []error) {
	res := make([]R, len(launches))
	errs := make([]error, len(launches))
	before := e.Cache.Stats()
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(launches) {
		workers = len(launches)
	}
	if workers <= 1 {
		for i, l := range launches {
			res[i], _, errs[i] = e.estimateOne(l.Kernel, l.Args, l.ND)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					l := launches[i]
					res[i], _, errs[i] = e.estimateOne(l.Kernel, l.Args, l.ND)
				}
			}()
		}
		for i := range launches {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	e.noteSearch(label, len(launches), e.Cache.Stats().Sub(before))
	return res, errs
}

// NotePruned records one predictor-pruned candidate cut against the
// evaluator's recorder: scored is the full candidate-set size, kept the
// surviving count that went on to exact evaluation. The counters make
// the pruned search's miss-rate legible next to the cache counters —
// search.pruned over search.predictor.scored is the fraction of exact
// evaluations the predictor saved.
func (e *Evaluator[R]) NotePruned(scored, kept int) {
	reg := e.recorder().Registry()
	reg.Add("search.predictor.scored", float64(scored))
	reg.Add("search.predictor.kept", float64(kept))
	reg.Add("search.pruned", float64(scored-kept))
}

// noteSearch emits the per-search span and counters. The span occupies
// one logical tick per candidate so consecutive searches tile the
// "search" track end to end regardless of wall time.
func (e *Evaluator[R]) noteSearch(label string, candidates int, delta Stats) {
	dur := units.Duration(candidates)
	if dur < 1 {
		dur = 1
	}
	e.mu.Lock()
	start := e.clock
	e.clock += dur
	e.mu.Unlock()

	rec := e.recorder()
	id := rec.Record(obs.NoParent, obs.KindRegion, "search:"+label, start, start+dur)
	rec.SetTrack(id, "search")
	rec.Annotate(id, "candidates", strconv.Itoa(candidates))
	if e.Cache != nil {
		rec.Annotate(id, "hits", strconv.FormatUint(delta.Hits, 10))
		rec.Annotate(id, "misses", strconv.FormatUint(delta.Misses, 10))
	}
	reg := rec.Registry()
	reg.Add("search.searches", 1)
	reg.Add("search.candidates", float64(candidates))
}
