package search

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/obs"
)

func TestCacheMemoizes(t *testing.T) {
	c := NewCache(0)
	calls := 0
	fn := func() (any, error) { calls++; return 42, nil }
	v, hit, _, err := c.Do("k", fn)
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("first Do = %v hit=%v err=%v", v, hit, err)
	}
	v, hit, _, err = c.Do("k", fn)
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("second Do = %v hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Evictions != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheMemoizesErrors(t *testing.T) {
	c := NewCache(0)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, _, _, err := c.Do("k", func() (any, error) { calls++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("Do err = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1 (errors must be memoized)", calls)
	}
}

func TestCacheNilPassthrough(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 2; i++ {
		v, hit, _, err := c.Do("k", func() (any, error) { calls++; return "x", nil })
		if err != nil || hit || v.(string) != "x" {
			t.Fatalf("nil cache Do = %v hit=%v err=%v", v, hit, err)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache memoized (calls=%d)", calls)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	fill := func(k string) { c.Do(k, func() (any, error) { return k, nil }) }
	fill("a")
	fill("b")
	fill("a") // a now most recent
	fill("c") // evicts b
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	calls := 0
	c.Do("a", func() (any, error) { calls++; return nil, nil })
	c.Do("b", func() (any, error) { calls++; return nil, nil })
	if calls != 1 {
		t.Fatalf("want a resident and b evicted, got %d re-evaluations", calls)
	}
	if s := c.Stats(); s.Evictions != 2 { // c's insert evicted b; b's re-insert evicted something again
		t.Logf("stats = %+v", s)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(0)
	var mu sync.Mutex
	calls := 0
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, _, err := c.Do("k", func() (any, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				<-release
				return 7, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v.(int)
		}(i)
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times under concurrency, want 1", calls)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
	if s := c.Stats(); s.Hits+s.Misses != waiters || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss and %d lookups", s, waiters)
	}
}

func TestKeySensitivity(t *testing.T) {
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	args := app.Make(nd)
	base := Key("dev", app.Kernel, args, nd)

	if k2 := Key("dev", app.Kernel, args, nd); k2 != base {
		t.Fatal("key not deterministic")
	}
	if k2 := Key("other-dev", app.Kernel, args, nd); k2 == base {
		t.Fatal("device fingerprint not in key")
	}
	if k2 := Key("dev", kernels.VectorAdd().Kernel, args, nd); k2 == base {
		t.Fatal("kernel not in key")
	}
	nd2 := nd.WithLocal([3]int{1, 1, 1})
	if k2 := Key("dev", app.Kernel, args, nd2); k2 == base {
		t.Fatal("NDRange not in key")
	}
	args2 := args.Clone()
	args2.SetScalar("extra", 3)
	if k2 := Key("dev", app.Kernel, args2, nd); k2 == base {
		t.Fatal("scalars not in key")
	}
}

func newCPUEvaluator(d *cpu.Device, c *Cache, rec *obs.Recorder) *Evaluator[*cpu.Result] {
	return NewEvaluator(d.Fingerprint, d.Estimate, c, func() *obs.Recorder { return rec })
}

func TestEvaluatorMatchesDirectEstimate(t *testing.T) {
	d := cpu.New(arch.XeonE5645())
	e := newCPUEvaluator(d, NewCache(0), nil)
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	args := app.Make(nd)

	want, err := d.Estimate(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // miss then hit
		got, err := e.Estimate(app.Kernel, args, nd)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: cached result differs from direct Estimate", i)
		}
	}
	if s := e.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEvaluatorFingerprintInvalidates(t *testing.T) {
	d := cpu.New(arch.XeonE5645())
	e := newCPUEvaluator(d, NewCache(0), nil)
	app := kernels.VectorAdd()
	nd := ir.Range1D(1<<16, 256)
	args := app.Make(nd)

	vec, err := e.Estimate(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	d.ForceScalar = true // the ablation knob must miss the cache
	scalar, err := e.Estimate(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Misses != 2 || s.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses (fingerprint change must invalidate)", s)
	}
	if vec.Cost.Width <= 1 {
		t.Fatalf("vectorized width = %d, want > 1", vec.Cost.Width)
	}
	if scalar.Cost.Width != 1 {
		t.Fatalf("ForceScalar width = %d, want 1 (stale cached result?)", scalar.Cost.Width)
	}
}

func TestEstimateAllParallelMatchesSerial(t *testing.T) {
	app := kernels.BlackScholes()
	var launches []Launch
	for _, local := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		launches = append(launches, Launch{app.Kernel, app.Make(app.Configs[0]), ir.Range1D(1<<16, local)})
	}
	// A couple of invalid geometries: errors must stay index-aligned.
	launches = append(launches, Launch{app.Kernel, app.Make(app.Configs[0]), ir.Range1D(100, 33)})

	run := func(workers int, c *Cache) ([]*cpu.Result, []error) {
		e := newCPUEvaluator(cpu.New(arch.XeonE5645()), c, nil)
		e.Workers = workers
		return e.EstimateAll("test", launches)
	}
	serial, serialErrs := run(1, NewCache(0))
	parallel, parallelErrs := run(8, NewCache(0))
	uncached, uncachedErrs := run(8, nil)

	for i := range launches {
		if (serialErrs[i] == nil) != (parallelErrs[i] == nil) || (serialErrs[i] == nil) != (uncachedErrs[i] == nil) {
			t.Fatalf("launch %d: error mismatch: serial=%v parallel=%v uncached=%v",
				i, serialErrs[i], parallelErrs[i], uncachedErrs[i])
		}
		if serialErrs[i] != nil {
			continue
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("launch %d: parallel result differs from serial", i)
		}
		if !reflect.DeepEqual(serial[i], uncached[i]) {
			t.Fatalf("launch %d: cached result differs from uncached", i)
		}
	}
	if serialErrs[len(launches)-1] == nil {
		t.Fatal("invalid geometry did not error")
	}
}

func TestEvaluatorObservability(t *testing.T) {
	rec := obs.NewRecorder()
	d := cpu.New(arch.XeonE5645())
	e := newCPUEvaluator(d, NewCache(0), rec)
	app := kernels.BlackScholes()

	var launches []Launch
	for _, local := range []int{32, 64, 32} { // one duplicate -> one hit
		launches = append(launches, Launch{app.Kernel, app.Make(app.Configs[0]), ir.Range1D(1<<12, local)})
	}
	e.EstimateAll("wg:blackscholes", launches)

	reg := rec.Registry()
	if got := reg.Counter("search.cache.misses"); got != 2 {
		t.Errorf("misses counter = %v, want 2", got)
	}
	if got := reg.Counter("search.cache.hits"); got != 1 {
		t.Errorf("hits counter = %v, want 1", got)
	}
	if got := reg.Counter("search.searches"); got != 1 {
		t.Errorf("searches counter = %v, want 1", got)
	}
	if got := reg.Counter("search.candidates"); got != 3 {
		t.Errorf("candidates counter = %v, want 3", got)
	}

	var span *obs.Span
	for _, s := range rec.Spans() {
		if s.Kind == obs.KindRegion && s.Name == "search:wg:blackscholes" {
			sp := s
			span = &sp
		}
	}
	if span == nil {
		t.Fatal("no search span recorded")
	}
	if span.Track != "search" {
		t.Errorf("span track = %q", span.Track)
	}
	attrs := map[string]string{}
	for _, a := range span.Attrs {
		attrs[a.Key] = a.Val
	}
	if attrs["candidates"] != "3" || attrs["hits"] != "1" || attrs["misses"] != "2" {
		t.Errorf("span attrs = %v", attrs)
	}
}

func TestEvaluatorSharedCacheAcrossResultTypes(t *testing.T) {
	// One Cache may back evaluators of different R; keys differ by device
	// fingerprint so entries never collide, but a wrong-type hit must be
	// reported as an error, not a panic.
	c := NewCache(0)
	app := kernels.BlackScholes()
	nd := app.Configs[0]
	args := app.Make(nd)

	eInt := NewEvaluator(func() string { return "same" },
		func(*ir.Kernel, *ir.Args, ir.NDRange) (int, error) { return 1, nil }, c, nil)
	eStr := NewEvaluator(func() string { return "same" },
		func(*ir.Kernel, *ir.Args, ir.NDRange) (string, error) { return "x", nil }, c, nil)

	if _, err := eInt.Estimate(app.Kernel, args, nd); err != nil {
		t.Fatal(err)
	}
	if _, err := eStr.Estimate(app.Kernel, args, nd); err == nil {
		t.Fatal("wrong-type cache hit did not error")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Hits: 9, Misses: 1}
	if got := s.HitRate(); got != 0.9 {
		t.Errorf("HitRate = %v", got)
	}
	if got := (Stats{}).HitRate(); got != 0 {
		t.Errorf("empty HitRate = %v", got)
	}
	d := Stats{Hits: 10, Misses: 4, Evictions: 1}.Sub(Stats{Hits: 9, Misses: 1})
	if d != (Stats{Hits: 1, Misses: 3, Evictions: 1}) {
		t.Errorf("Sub = %+v", d)
	}
}
