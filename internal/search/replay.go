package search

import (
	"crypto/sha256"
	"encoding/hex"

	"clperf/internal/ir"
)

// Trace-once / replay-many content addressing (internal/replay).
//
// A captured execution trace is device-independent: the access/op stream
// depends only on the kernel, its arguments and the launch geometry —
// exactly the non-device part of Key. TraceKey is therefore Key with a
// fixed pseudo-fingerprint in the device slot, so a trace and the model
// evaluations derived from it share one canonicalization (buffer shapes,
// scalar values, the pointer-memoized kernel digest).

// traceFP occupies Key's device-fingerprint slot for device-independent
// trace digests. No real device fingerprint collides with it: cpu and gpu
// fingerprints embed their full parameter structs.
const traceFP = "trace/v1"

// TraceKey content-addresses one device-independent execution trace: the
// digest under which internal/replay stores a captured access stream.
// Two launches with equal TraceKeys execute identical access streams.
func TraceKey(k *ir.Kernel, args *ir.Args, nd ir.NDRange) string {
	return Key(traceFP, k, args, nd)
}

// ReplayKey content-addresses one replayed estimate: a captured trace
// (by its TraceKey digest) priced on one device (by its fingerprint).
// The replay layer memoizes per-device replay results under this key, so
// a matrix sweep revisiting a (kernel, device) cell never re-simulates.
func ReplayKey(traceDigest, deviceFP string) string {
	sum := sha256.Sum256([]byte("replay/v1\n" + traceDigest + "\n" + deviceFP))
	return hex.EncodeToString(sum[:])
}
