// Package parboil implements the Parboil benchmarks the paper evaluates
// (Table III, by way of Grewe et al.): CP's cenergy kernel and the MRI-Q /
// MRI-FHD kernel families, each with the paper's launch geometry,
// deterministic inputs and pure-Go reference implementations.
package parboil

import (
	"math"

	"clperf/internal/ir"
	"clperf/internal/kernels"
)

// Default problem-size parameters for the inner loops (the Parboil "small"
// class is of this order; the paper reports geometry, not dataset, so the
// values are chosen to keep kernel time dominated by the loop as in the
// original).
const (
	// CPAtoms is the atom count cenergy iterates over.
	CPAtoms = 1024
	// MRISamples is the k-space sample count computeQ/FH iterate over.
	MRISamples = 512
)

// twoPi is the angular factor in the MRI kernels.
const twoPi = 2 * math.Pi

// CPEnergyKernel returns CP's cenergy: each workitem computes the Coulomb
// potential at one 2-D grid point over all atoms (Table III: 64x512 global,
// 16x8 local).
func CPEnergyKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "cenergy",
		WorkDim: 2,
		Params: []ir.Param{
			ir.Buf("atomx"), ir.Buf("atomy"), ir.Buf("atomz"), ir.Buf("atomq"),
			ir.Buf("energy"),
			ir.ScalarI("natoms"), ir.Scalar("spacing"), ir.ScalarI("width"),
		},
		Body: []ir.Stmt{
			ir.Set("cx", ir.Mul(ir.ToFloat{X: ir.Gid(0)}, ir.P("spacing"))),
			ir.Set("cy", ir.Mul(ir.ToFloat{X: ir.Gid(1)}, ir.P("spacing"))),
			ir.Set("en", ir.F(0)),
			ir.Loop("a", ir.I(0), ir.Pi("natoms"),
				ir.Set("dx", ir.Sub(ir.V("cx"), ir.LoadF("atomx", ir.Vi("a")))),
				ir.Set("dy", ir.Sub(ir.V("cy"), ir.LoadF("atomy", ir.Vi("a")))),
				ir.Set("dz", ir.LoadF("atomz", ir.Vi("a"))),
				ir.Set("r2", ir.Add(ir.Add(
					ir.Mul(ir.V("dx"), ir.V("dx")),
					ir.Mul(ir.V("dy"), ir.V("dy"))),
					ir.Mul(ir.V("dz"), ir.V("dz")))),
				ir.Set("en", ir.Add(ir.V("en"),
					ir.Mul(ir.LoadF("atomq", ir.Vi("a")), ir.Call1(ir.Rsqrt, ir.V("r2"))))),
			),
			ir.StoreF("energy",
				ir.Addi(ir.Muli(ir.Gid(1), ir.Pi("width")), ir.Gid(0)),
				ir.V("en")),
		},
	}
}

// CP returns the CP benchmark.
func CP() *kernels.App {
	return &kernels.App{
		Name:    "CP",
		Kernel:  CPEnergyKernel(),
		Configs: []ir.NDRange{ir.Range2D(64, 512, 16, 8)},
		Make: func(nd ir.NDRange) *ir.Args {
			return MakeCPArgs(nd, CPAtoms)
		},
		Check: CheckCP,
	}
}

// MakeCPArgs builds the atom arrays and energy grid.
func MakeCPArgs(nd ir.NDRange, natoms int) *ir.Args {
	w, h := nd.Global[0], nd.Global[1]
	ax := ir.NewBufferF32("atomx", natoms)
	ay := ir.NewBufferF32("atomy", natoms)
	az := ir.NewBufferF32("atomz", natoms)
	aq := ir.NewBufferF32("atomq", natoms)
	FillUniform(ax, 71, 0, float64(w)*0.1)
	FillUniform(ay, 72, 0, float64(h)*0.1)
	FillUniform(az, 73, 0.5, 4)
	FillUniform(aq, 74, -1, 1)
	return ir.NewArgs().
		Bind("atomx", ax).Bind("atomy", ay).Bind("atomz", az).Bind("atomq", aq).
		Bind("energy", ir.NewBufferF32("energy", w*h)).
		SetScalar("natoms", float64(natoms)).
		SetScalar("spacing", 0.1).
		SetScalar("width", float64(w))
}

// CheckCP validates the energy grid.
func CheckCP(args *ir.Args, nd ir.NDRange) error {
	w, h := nd.Global[0], nd.Global[1]
	natoms := int(args.Scalars["natoms"])
	spacing := args.Scalars["spacing"]
	ax, ay := args.Buffers["atomx"], args.Buffers["atomy"]
	az, aq := args.Buffers["atomz"], args.Buffers["atomq"]
	want := make([]float64, w*h)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			cx, cy := float64(i)*spacing, float64(j)*spacing
			en := 0.0
			for a := 0; a < natoms; a++ {
				dx := cx - ax.Get(a)
				dy := cy - ay.Get(a)
				dz := az.Get(a)
				en += aq.Get(a) / math.Sqrt(dx*dx+dy*dy+dz*dz)
			}
			want[j*w+i] = en
		}
	}
	return Compare("energy", args.Buffers["energy"], want, 2e-3)
}

// PhiMagKernel returns MRI-Q's computePhiMag: phiMag[i] = phiR^2 + phiI^2
// (Table III: 3072 global, 512 local).
func PhiMagKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "computePhiMag",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("phiR"), ir.Buf("phiI"), ir.Buf("phiMag")},
		Body: []ir.Stmt{
			ir.Set("r", ir.LoadF("phiR", ir.Gid(0))),
			ir.Set("im", ir.LoadF("phiI", ir.Gid(0))),
			ir.StoreF("phiMag", ir.Gid(0),
				ir.Add(ir.Mul(ir.V("r"), ir.V("r")), ir.Mul(ir.V("im"), ir.V("im")))),
		},
	}
}

// computeQBody builds the shared structure of MRI-Q's computeQ and
// MRI-FHD's FH: accumulate cos/sin phases over the k-space samples.
func computeQBody(outRe, outIm string) []ir.Stmt {
	return []ir.Stmt{
		ir.Set("px", ir.LoadF("x", ir.Gid(0))),
		ir.Set("py", ir.LoadF("y", ir.Gid(0))),
		ir.Set("pz", ir.LoadF("z", ir.Gid(0))),
		ir.Set("qr", ir.F(0)),
		ir.Set("qi", ir.F(0)),
		ir.Loop("s", ir.I(0), ir.Pi("nsamples"),
			ir.Set("arg", ir.Mul(ir.F(twoPi), ir.Add(ir.Add(
				ir.Mul(ir.LoadF("kx", ir.Vi("s")), ir.V("px")),
				ir.Mul(ir.LoadF("ky", ir.Vi("s")), ir.V("py"))),
				ir.Mul(ir.LoadF("kz", ir.Vi("s")), ir.V("pz"))))),
			ir.Set("m", ir.LoadF("mag", ir.Vi("s"))),
			ir.Set("qr", ir.Add(ir.V("qr"), ir.Mul(ir.V("m"), ir.Call1(ir.Cos, ir.V("arg"))))),
			ir.Set("qi", ir.Add(ir.V("qi"), ir.Mul(ir.V("m"), ir.Call1(ir.Sin, ir.V("arg"))))),
		),
		ir.StoreF(outRe, ir.Gid(0), ir.V("qr")),
		ir.StoreF(outIm, ir.Gid(0), ir.V("qi")),
	}
}

func computeQParams(outRe, outIm string) []ir.Param {
	return []ir.Param{
		ir.Buf("x"), ir.Buf("y"), ir.Buf("z"),
		ir.Buf("kx"), ir.Buf("ky"), ir.Buf("kz"), ir.Buf("mag"),
		ir.Buf(outRe), ir.Buf(outIm), ir.ScalarI("nsamples"),
	}
}

// ComputeQKernel returns MRI-Q's computeQ (Table III: 32768 global, 256
// local).
func ComputeQKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "computeQ",
		WorkDim: 1,
		Params:  computeQParams("Qr", "Qi"),
		Body:    computeQBody("Qr", "Qi"),
	}
}

// RhoPhiKernel returns MRI-FHD's RhoPhi: an elementwise complex multiply
// (Table III: 3072 global, 512 local).
func RhoPhiKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "RhoPhi",
		WorkDim: 1,
		Params: []ir.Param{
			ir.Buf("phiR"), ir.Buf("phiI"), ir.Buf("dR"), ir.Buf("dI"),
			ir.Buf("rRho"), ir.Buf("iRho"),
		},
		Body: []ir.Stmt{
			ir.Set("pr", ir.LoadF("phiR", ir.Gid(0))),
			ir.Set("pi", ir.LoadF("phiI", ir.Gid(0))),
			ir.Set("dr", ir.LoadF("dR", ir.Gid(0))),
			ir.Set("di", ir.LoadF("dI", ir.Gid(0))),
			ir.StoreF("rRho", ir.Gid(0),
				ir.Add(ir.Mul(ir.V("pr"), ir.V("dr")), ir.Mul(ir.V("pi"), ir.V("di")))),
			ir.StoreF("iRho", ir.Gid(0),
				ir.Sub(ir.Mul(ir.V("pr"), ir.V("di")), ir.Mul(ir.V("pi"), ir.V("dr")))),
		},
	}
}

// FHKernel returns MRI-FHD's FH kernel, structurally computeQ over the rho
// weights (Table III: 32768 global, 256 local).
func FHKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "FH",
		WorkDim: 1,
		Params:  computeQParams("rFH", "iFH"),
		Body:    computeQBody("rFH", "iFH"),
	}
}

// MakePhiMagArgs builds inputs for computePhiMag (and RhoPhi's phi part).
func MakePhiMagArgs(nd ir.NDRange) *ir.Args {
	n := nd.GlobalItems()
	r := ir.NewBufferF32("phiR", n)
	im := ir.NewBufferF32("phiI", n)
	FillUniform(r, 81, -1, 1)
	FillUniform(im, 82, -1, 1)
	return ir.NewArgs().Bind("phiR", r).Bind("phiI", im).
		Bind("phiMag", ir.NewBufferF32("phiMag", n))
}

// CheckPhiMag validates computePhiMag.
func CheckPhiMag(args *ir.Args, nd ir.NDRange) error {
	r, im := args.Buffers["phiR"], args.Buffers["phiI"]
	want := make([]float64, r.Len())
	for i := range want {
		want[i] = r.Get(i)*r.Get(i) + im.Get(i)*im.Get(i)
	}
	return Compare("phiMag", args.Buffers["phiMag"], want, 1e-5)
}

// MakeComputeQArgs builds inputs for computeQ/FH.
func MakeComputeQArgs(nd ir.NDRange, nsamples int, outRe, outIm string) *ir.Args {
	n := nd.GlobalItems()
	args := ir.NewArgs().SetScalar("nsamples", float64(nsamples))
	for i, name := range []string{"x", "y", "z"} {
		b := ir.NewBufferF32(name, n)
		FillUniform(b, uint64(91+i), -0.5, 0.5)
		args.Bind(name, b)
	}
	for i, name := range []string{"kx", "ky", "kz", "mag"} {
		b := ir.NewBufferF32(name, nsamples)
		FillUniform(b, uint64(95+i), -0.5, 0.5)
		args.Bind(name, b)
	}
	args.Bind(outRe, ir.NewBufferF32(outRe, n))
	args.Bind(outIm, ir.NewBufferF32(outIm, n))
	return args
}

// CheckComputeQ validates computeQ/FH outputs.
func CheckComputeQ(args *ir.Args, nd ir.NDRange, outRe, outIm string) error {
	n := args.Buffers["x"].Len()
	ns := int(args.Scalars["nsamples"])
	wantR := make([]float64, n)
	wantI := make([]float64, n)
	for i := 0; i < n; i++ {
		px := args.Buffers["x"].Get(i)
		py := args.Buffers["y"].Get(i)
		pz := args.Buffers["z"].Get(i)
		var qr, qi float64
		for s := 0; s < ns; s++ {
			arg := twoPi * (args.Buffers["kx"].Get(s)*px +
				args.Buffers["ky"].Get(s)*py +
				args.Buffers["kz"].Get(s)*pz)
			mag := args.Buffers["mag"].Get(s)
			qr += mag * math.Cos(arg)
			qi += mag * math.Sin(arg)
		}
		wantR[i], wantI[i] = qr, qi
	}
	if err := Compare(outRe, args.Buffers[outRe], wantR, 2e-3); err != nil {
		return err
	}
	return Compare(outIm, args.Buffers[outIm], wantI, 2e-3)
}

// Kernels lists every Parboil kernel with its Table III geometry.
type Entry struct {
	Bench  string // CP, MRI-Q, MRI-FHD
	Kernel *ir.Kernel
	ND     ir.NDRange
	Make   func() *ir.Args
	Check  func(args *ir.Args) error
}

// Entries returns every Parboil kernel in Table III order.
func Entries() []Entry {
	return []Entry{
		{
			Bench:  "CP",
			Kernel: CPEnergyKernel(),
			ND:     ir.Range2D(64, 512, 16, 8),
			Make:   func() *ir.Args { return MakeCPArgs(ir.Range2D(64, 512, 16, 8), CPAtoms) },
			Check:  func(a *ir.Args) error { return CheckCP(a, ir.Range2D(64, 512, 16, 8)) },
		},
		{
			Bench:  "MRI-Q",
			Kernel: PhiMagKernel(),
			ND:     ir.Range1D(3072, 512),
			Make:   func() *ir.Args { return MakePhiMagArgs(ir.Range1D(3072, 512)) },
			Check:  func(a *ir.Args) error { return CheckPhiMag(a, ir.Range1D(3072, 512)) },
		},
		{
			Bench:  "MRI-Q",
			Kernel: ComputeQKernel(),
			ND:     ir.Range1D(32768, 256),
			Make: func() *ir.Args {
				return MakeComputeQArgs(ir.Range1D(32768, 256), MRISamples, "Qr", "Qi")
			},
			Check: func(a *ir.Args) error {
				return CheckComputeQ(a, ir.Range1D(32768, 256), "Qr", "Qi")
			},
		},
		{
			Bench:  "MRI-FHD",
			Kernel: RhoPhiKernel(),
			ND:     ir.Range1D(3072, 512),
			Make:   func() *ir.Args { return MakeRhoPhiArgs(ir.Range1D(3072, 512)) },
			Check:  func(a *ir.Args) error { return CheckRhoPhi(a, ir.Range1D(3072, 512)) },
		},
		{
			Bench:  "MRI-FHD",
			Kernel: FHKernel(),
			ND:     ir.Range1D(32768, 256),
			Make: func() *ir.Args {
				return MakeComputeQArgs(ir.Range1D(32768, 256), MRISamples, "rFH", "iFH")
			},
			Check: func(a *ir.Args) error {
				return CheckComputeQ(a, ir.Range1D(32768, 256), "rFH", "iFH")
			},
		},
	}
}

// MakeRhoPhiArgs builds inputs for RhoPhi.
func MakeRhoPhiArgs(nd ir.NDRange) *ir.Args {
	n := nd.GlobalItems()
	args := ir.NewArgs()
	for i, name := range []string{"phiR", "phiI", "dR", "dI"} {
		b := ir.NewBufferF32(name, n)
		FillUniform(b, uint64(101+i), -1, 1)
		args.Bind(name, b)
	}
	args.Bind("rRho", ir.NewBufferF32("rRho", n))
	args.Bind("iRho", ir.NewBufferF32("iRho", n))
	return args
}

// CheckRhoPhi validates RhoPhi.
func CheckRhoPhi(args *ir.Args, nd ir.NDRange) error {
	pr, pi := args.Buffers["phiR"], args.Buffers["phiI"]
	dr, di := args.Buffers["dR"], args.Buffers["dI"]
	n := pr.Len()
	wantR := make([]float64, n)
	wantI := make([]float64, n)
	for i := 0; i < n; i++ {
		wantR[i] = pr.Get(i)*dr.Get(i) + pi.Get(i)*di.Get(i)
		wantI[i] = pr.Get(i)*di.Get(i) - pi.Get(i)*dr.Get(i)
	}
	if err := Compare("rRho", args.Buffers["rRho"], wantR, 1e-4); err != nil {
		return err
	}
	return Compare("iRho", args.Buffers["iRho"], wantI, 1e-4)
}

// FillUniform and Compare re-export the kernels package helpers for use by
// this package's input builders and checkers.
var (
	FillUniform = kernels.FillUniform
	Compare     = kernels.Compare
)
