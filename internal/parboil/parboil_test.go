package parboil

import (
	"testing"

	"clperf/internal/ir"
	"clperf/internal/kernels"
)

// Reduced geometries keep the O(items x inner-loop) reference computations
// fast while exercising every kernel.
func TestCPFunctional(t *testing.T) {
	nd := ir.Range2D(16, 32, 16, 8)
	args := MakeCPArgs(nd, 64)
	if err := ir.ExecRange(CPEnergyKernel(), args, nd, ir.ExecOptions{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if err := CheckCP(args, nd); err != nil {
		t.Fatal(err)
	}
}

func TestPhiMagFunctional(t *testing.T) {
	nd := ir.Range1D(3072, 512) // full Table III size: the kernel is tiny
	args := MakePhiMagArgs(nd)
	if err := ir.ExecRange(PhiMagKernel(), args, nd, ir.ExecOptions{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if err := CheckPhiMag(args, nd); err != nil {
		t.Fatal(err)
	}
}

func TestComputeQFunctional(t *testing.T) {
	nd := ir.Range1D(512, 256)
	args := MakeComputeQArgs(nd, 64, "Qr", "Qi")
	if err := ir.ExecRange(ComputeQKernel(), args, nd, ir.ExecOptions{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if err := CheckComputeQ(args, nd, "Qr", "Qi"); err != nil {
		t.Fatal(err)
	}
}

func TestRhoPhiFunctional(t *testing.T) {
	nd := ir.Range1D(3072, 512) // full Table III size
	args := MakeRhoPhiArgs(nd)
	if err := ir.ExecRange(RhoPhiKernel(), args, nd, ir.ExecOptions{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if err := CheckRhoPhi(args, nd); err != nil {
		t.Fatal(err)
	}
}

func TestFHFunctional(t *testing.T) {
	nd := ir.Range1D(512, 256)
	args := MakeComputeQArgs(nd, 64, "rFH", "iFH")
	if err := ir.ExecRange(FHKernel(), args, nd, ir.ExecOptions{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if err := CheckComputeQ(args, nd, "rFH", "iFH"); err != nil {
		t.Fatal(err)
	}
}

// Entries must match Table III geometry exactly.
func TestEntriesMatchTableIII(t *testing.T) {
	want := []struct {
		bench, kernel  string
		global, local0 int
	}{
		{"CP", "cenergy", 64 * 512, 16},
		{"MRI-Q", "computePhiMag", 3072, 512},
		{"MRI-Q", "computeQ", 32768, 256},
		{"MRI-FHD", "RhoPhi", 3072, 512},
		{"MRI-FHD", "FH", 32768, 256},
	}
	entries := Entries()
	if len(entries) != len(want) {
		t.Fatalf("entries = %d, want %d", len(entries), len(want))
	}
	for i, w := range want {
		e := entries[i]
		if e.Bench != w.bench || e.Kernel.Name != w.kernel {
			t.Errorf("entry %d = %s:%s, want %s:%s", i, e.Bench, e.Kernel.Name, w.bench, w.kernel)
		}
		if e.ND.GlobalItems() != w.global {
			t.Errorf("%s global items = %d, want %d", w.kernel, e.ND.GlobalItems(), w.global)
		}
		if e.ND.Local[0] != w.local0 {
			t.Errorf("%s local0 = %d, want %d", w.kernel, e.ND.Local[0], w.local0)
		}
		if err := ir.Validate(e.Kernel); err != nil {
			t.Errorf("%s: %v", w.kernel, err)
		}
	}
}

// Every entry must be coarsenable (the Figure 2 transformation applies).
func TestEntriesCoarsenable(t *testing.T) {
	for _, e := range Entries() {
		for _, f := range []int{2, 4} {
			if _, err := kernels.Coarsen(e.Kernel, f); err != nil {
				t.Errorf("%s x%d: %v", e.Kernel.Name, f, err)
			}
			if _, err := kernels.CoarsenRange(e.ND, f); err != nil {
				t.Errorf("%s range x%d: %v", e.Kernel.Name, f, err)
			}
		}
	}
}

// Coarsened cenergy must agree with the uncoarsened result.
func TestCoarsenedCPMatches(t *testing.T) {
	nd := ir.Range2D(16, 16, 16, 8)
	base := MakeCPArgs(nd, 32)
	coarse := MakeCPArgs(nd, 32)
	if err := ir.ExecRange(CPEnergyKernel(), base, nd, ir.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	ck, err := kernels.Coarsen(CPEnergyKernel(), 4)
	if err != nil {
		t.Fatal(err)
	}
	cnd, err := kernels.CoarsenRange(nd, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.ExecRange(ck, coarse, cnd, ir.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	be := base.Buffers["energy"]
	ce := coarse.Buffers["energy"]
	for i := 0; i < be.Len(); i++ {
		if be.Get(i) != ce.Get(i) {
			t.Fatalf("energy[%d]: base %v vs coarse %v", i, be.Get(i), ce.Get(i))
		}
	}
}
