package san

import (
	"fmt"
	"sort"

	"clperf/internal/ir"
)

// maxFindings caps the findings kept per workload; the rest are counted
// in WorkloadReport.Suppressed so a pathological kernel cannot flood the
// report.
const maxFindings = 16

// cellKey identifies one memory cell: the __local address space is
// disjoint from __global, so the two never alias.
type cellKey struct {
	local bool
	addr  int64
}

// cellState summarizes one cell's accesses within the current
// barrier-delimited epoch. Lanes are workitem indices within the group;
// -1 means "none yet". Two distinct lanes per side are enough to decide
// every conflict exactly: any further lane either matches a stored one
// or pairs with it.
type cellState struct {
	firstW, secondW int32
	firstR, secondR int32
	// atomicOnly stays true while every write so far was atomic;
	// same-cell atomic/atomic pairs are not races.
	atomicOnly bool
}

// groupAnalyzer consumes the oracle's hazard-mode trace stream
// (ir.MarkTracer) and detects intra-workgroup races and barrier
// divergence. Within an epoch — the records between two barriers of one
// workgroup — lockstep order carries no synchronization guarantee, so
// any same-cell cross-lane conflict with at least one non-atomic write
// is a race.
type groupAnalyzer struct {
	workload string
	// groupItems is the full workgroup size; a barrier record with a
	// smaller active count is divergence.
	groupItems int
	// resolve renders a cell address for diagnostics ("out[3]").
	resolve func(local bool, addr int64) string

	group   int
	started bool
	epoch   int
	cells   map[cellKey]*cellState

	records    int64
	findings   []Finding
	seen       map[string]bool
	suppressed int
}

func newGroupAnalyzer(workload string, groupItems int,
	resolve func(local bool, addr int64) string) *groupAnalyzer {
	return &groupAnalyzer{
		workload:   workload,
		groupItems: groupItems,
		resolve:    resolve,
		cells:      map[cellKey]*cellState{},
		seen:       map[string]bool{},
	}
}

// BeginGroup implements ir.Tracer: a new workgroup closes the previous
// group's final epoch.
func (a *groupAnalyzer) BeginGroup(g int) {
	a.flushEpoch()
	a.group = g
	a.started = true
	a.epoch = 0
}

// Access implements ir.Tracer. In hazard mode the oracle routes every
// record through Mark (Access carries no lane), so nothing to do here.
func (a *groupAnalyzer) Access(addr, size int64, write bool) {}

// Mark implements ir.MarkTracer: one lane-attributed trace record.
func (a *groupAnalyzer) Mark(rec ir.Access) {
	a.records++
	if rec.Kind == ir.KindBarrier {
		a.flushEpoch()
		a.epoch++
		if int(rec.Size) < a.groupItems {
			a.emit(Finding{
				Class:    ClassDivergence,
				Workload: a.workload,
				Group:    a.group,
				Detail: fmt.Sprintf("group %d: barrier %d reached by %d of %d workitems",
					a.group, rec.Addr, rec.Size, a.groupItems),
			})
		}
		return
	}
	key := cellKey{local: rec.Kind != ir.KindGlobal, addr: rec.Addr}
	c := a.cells[key]
	if c == nil {
		c = &cellState{firstW: -1, secondW: -1, firstR: -1, secondR: -1, atomicOnly: true}
		a.cells[key] = c
	}
	if rec.Write {
		if rec.Kind != ir.KindLocalAtomic {
			c.atomicOnly = false
		}
		switch {
		case c.firstW == -1:
			c.firstW = rec.Lane
		case c.firstW != rec.Lane && c.secondW == -1:
			c.secondW = rec.Lane
		}
		return
	}
	switch {
	case c.firstR == -1:
		c.firstR = rec.Lane
	case c.firstR != rec.Lane && c.secondR == -1:
		c.secondR = rec.Lane
	}
}

// finish closes the last epoch; call after the oracle run returns.
func (a *groupAnalyzer) finish() { a.flushEpoch() }

// flushEpoch scans the epoch's cells for conflicts and resets them.
// Racy cells are reported in (address-space, address) order so output is
// deterministic despite map iteration.
func (a *groupAnalyzer) flushEpoch() {
	if len(a.cells) == 0 {
		return
	}
	var racy []cellKey
	for k, c := range a.cells {
		if a.raceKind(c) != "" {
			racy = append(racy, k)
		}
	}
	sort.Slice(racy, func(i, j int) bool {
		if racy[i].local != racy[j].local {
			return !racy[i].local // global cells first
		}
		return racy[i].addr < racy[j].addr
	})
	for _, k := range racy {
		c := a.cells[k]
		kind, l1, l2 := a.racePair(c)
		a.emit(Finding{
			Class:    ClassRace,
			Workload: a.workload,
			Group:    a.group,
			Detail: fmt.Sprintf("group %d epoch %d: %s race on %s between workitems %d and %d",
				a.group, a.epoch, kind, a.resolve(k.local, k.addr), l1, l2),
		})
	}
	a.cells = map[cellKey]*cellState{}
}

// raceKind classifies the cell's conflict, "" if none.
func (a *groupAnalyzer) raceKind(c *cellState) string {
	k, _, _ := a.racePair(c)
	return k
}

// racePair returns the conflict kind and a witness pair of lanes.
// write/write wins over read/write when both apply (it is the stronger
// diagnosis).
func (a *groupAnalyzer) racePair(c *cellState) (kind string, l1, l2 int32) {
	if c.secondW != -1 && !c.atomicOnly {
		return "write/write", c.firstW, c.secondW
	}
	if c.firstW == -1 {
		return "", -1, -1
	}
	// A read/write conflict needs a reader lane distinct from a writer
	// lane; with up to two distinct lanes stored per side the check is
	// exact.
	for _, r := range []int32{c.firstR, c.secondR} {
		if r == -1 {
			continue
		}
		for _, w := range []int32{c.firstW, c.secondW} {
			if w != -1 && w != r {
				return "read/write", r, w
			}
		}
	}
	return "", -1, -1
}

// emit records a finding, de-duplicating identical details and honoring
// the per-workload cap.
func (a *groupAnalyzer) emit(f Finding) {
	if a.seen[f.Detail] {
		return
	}
	a.seen[f.Detail] = true
	if len(a.findings) >= maxFindings {
		a.suppressed++
		return
	}
	a.findings = append(a.findings, f)
}

// AnalyzeKernel replays one kernel launch through the hazard-tracing
// oracle and returns its workgroup-level findings. The args buffers are
// assigned distinct non-overlapping base addresses first (apps allocate
// at Base 0, which would alias every buffer onto every other); callers
// passing buffers they reuse afterwards should pass a fresh Make.
func AnalyzeKernel(workload string, k *ir.Kernel, args *ir.Args, nd ir.NDRange) (WorkloadReport, error) {
	type bufRange struct {
		name      string
		base, end int64
		elem      int64
	}
	names := make([]string, 0, len(args.Buffers))
	for n := range args.Buffers {
		names = append(names, n)
	}
	sort.Strings(names)
	var ranges []bufRange
	var cur int64
	for _, n := range names {
		b := args.Buffers[n]
		b.Base = cur
		end := cur + b.Bytes()
		ranges = append(ranges, bufRange{name: n, base: cur, end: end, elem: b.Elem.Size()})
		cur = (end + 63) &^ 63 // keep buffers cache-line separated
	}
	resolve := func(local bool, addr int64) string {
		if local {
			idx := int(addr >> 32)
			j := addr & 0xffffffff
			if idx >= 0 && idx < len(k.Locals) {
				return fmt.Sprintf("__local %s[%d]", k.Locals[idx].Name, j)
			}
			return fmt.Sprintf("__local cell %#x", addr)
		}
		for _, r := range ranges {
			if addr >= r.base && addr < r.end {
				return fmt.Sprintf("%s[%d]", r.name, (addr-r.base)/r.elem)
			}
		}
		return fmt.Sprintf("global cell %#x", addr)
	}
	items := 1
	for d := 0; d < 3; d++ {
		if nd.Local[d] > 0 {
			items *= nd.Local[d]
		}
	}
	ga := newGroupAnalyzer(workload, items, resolve)
	if err := ir.ExecRangeOracle(k, args, nd, ir.ExecOptions{Tracer: ga, Hazards: true}); err != nil {
		return WorkloadReport{Name: workload}, err
	}
	ga.finish()
	return WorkloadReport{
		Name:       workload,
		Records:    ga.records,
		Findings:   ga.findings,
		Suppressed: ga.suppressed,
	}, nil
}
