// Package san is clperf's dynamic hazard analyzer ("clsan"): it replays
// workloads through the deterministic trace streams the execution engine
// already emits and checks the synchronization properties the simulator
// otherwise trusts silently.
//
// Three hazard classes are detected:
//
//   - Intra-workgroup data races: two workitems of one group touch the
//     same __global or __local cell, at least one writes, and no barrier
//     separates the accesses. The per-group stream is segmented into
//     barrier-delimited epochs (the KindBarrier markers of PR 7); within
//     an epoch lockstep order is not a synchronization guarantee, so any
//     cross-lane conflict is a race. Same-cell atomic/atomic pairs are
//     exempt.
//   - Barrier divergence: a barrier reached by fewer lanes than the
//     workgroup holds — non-uniform control flow around a barrier, which
//     is undefined behaviour in OpenCL and a classic CPU-runtime hang.
//   - Async command hazards: conflicting commands (kernel launches,
//     Read/Write/Map transfers) on an out-of-order queue whose ordering
//     is not covered by a declared event wait-list edge. The OOOQueue
//     applies functional effects in enqueue order while wait lists alone
//     govern simulated timing, so a missing edge yields correct buffers
//     and a wrong timeline — the silent kind of bug. The analyzer builds
//     the happens-before relation from the queue's CommandRecord export
//     and flags RAW/WAR/WAW pairs with no transitive declared path.
//
// Workgroup analysis runs on the tree-walk oracle in hazard mode
// (ir.ExecOptions.Hazards), which attributes every record to its lane;
// the analyzer itself is execution-agnostic and consumes only the trace
// stream. Everything is deterministic: same workload, same findings, in
// the same order.
package san

import (
	"encoding/json"
	"fmt"
	"io"

	"clperf/internal/obs"
	"clperf/internal/units"
)

// Class is a hazard category.
type Class string

// Hazard classes.
const (
	ClassRace       Class = "data-race"
	ClassDivergence Class = "barrier-divergence"
	ClassAsync      Class = "async-hazard"
)

// Finding is one detected hazard.
type Finding struct {
	// Class is the hazard category.
	Class Class `json:"class"`
	// Workload names the analyzed kernel or queue.
	Workload string `json:"workload"`
	// Group is the linear workgroup index (workgroup classes only).
	Group int `json:"group"`
	// Detail is the human-readable one-line diagnosis.
	Detail string `json:"detail"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Class, f.Workload, f.Detail)
}

// WorkloadReport is the analysis result of one workload.
type WorkloadReport struct {
	// Name identifies the workload (kernel app or queue).
	Name string `json:"name"`
	// Records is the number of trace records analyzed.
	Records int64 `json:"records"`
	// Findings holds the de-duplicated findings, in detection order.
	Findings []Finding `json:"findings,omitempty"`
	// Suppressed counts duplicate findings beyond the per-workload cap.
	Suppressed int `json:"suppressed,omitempty"`
}

// Report is a full analysis run.
type Report struct {
	// Schema versions the JSON layout.
	Schema int `json:"schema"`
	// Workloads holds one entry per analyzed workload, in analysis order.
	Workloads []WorkloadReport `json:"workloads"`
	// Records is the total number of trace records analyzed.
	Records int64 `json:"records"`
	// Clean reports whether no workload produced any finding.
	Clean bool `json:"clean"`
}

// Schema is the current Report JSON schema version.
const Schema = 1

// Finalize recomputes the roll-up fields from the per-workload results.
func (r *Report) Finalize() {
	r.Schema = Schema
	r.Records = 0
	r.Clean = true
	for _, w := range r.Workloads {
		r.Records += w.Records
		if len(w.Findings) > 0 {
			r.Clean = false
		}
	}
}

// Findings returns every finding across all workloads, in analysis order.
func (r *Report) Findings() []Finding {
	var out []Finding
	for _, w := range r.Workloads {
		out = append(out, w.Findings...)
	}
	return out
}

// WriteJSON emits the machine-readable report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteText renders the findings table: one row per finding, then a
// one-line verdict. Deterministic (analysis order).
func (r *Report) WriteText(w io.Writer) {
	for _, f := range r.Findings() {
		fmt.Fprintf(w, "%-19s %-16s %s\n", f.Class, f.Workload, f.Detail)
	}
	n := len(r.Findings())
	verdict := "clean"
	if n > 0 {
		verdict = fmt.Sprintf("%d finding(s)", n)
	}
	fmt.Fprintf(w, "clsan: %d workloads, %d trace records: %s\n",
		len(r.Workloads), r.Records, verdict)
}

// Record wires the report into the observability plane: per-class finding
// counters, a records-analyzed counter, and one logical-clock span per
// workload (1 trace record = 1ns) on the "san" track, annotated with its
// finding count — so -serve scrapes and cldiff attribution see the
// analyzer like any other subsystem. Safe on a nil recorder.
func (r *Report) Record(rec *obs.Recorder) {
	reg := rec.Registry()
	byClass := map[Class]float64{ClassRace: 0, ClassDivergence: 0, ClassAsync: 0}
	for _, f := range r.Findings() {
		byClass[f.Class]++
	}
	reg.Add("san.findings.race", byClass[ClassRace])
	reg.Add("san.findings.barrier_divergence", byClass[ClassDivergence])
	reg.Add("san.findings.async_hazard", byClass[ClassAsync])
	reg.Add("san.records.analyzed", float64(r.Records))
	var clock units.Duration
	for _, w := range r.Workloads {
		d := units.Duration(w.Records)
		if d == 0 {
			d = 1 // zero-record workloads still get a visible span
		}
		id := rec.Record(obs.NoParent, obs.KindRegion, "san."+w.Name, clock, clock+d)
		rec.SetTrack(id, "san")
		rec.Annotate(id, "findings", fmt.Sprint(len(w.Findings)))
		clock += d
	}
}
