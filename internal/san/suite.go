package san

import (
	"fmt"

	"clperf/internal/cl"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

// analysisConfig returns the geometry a registered app is analyzed at.
// These mirror the differential-test geometries (apps_test.go): small
// enough that the lane-attributed oracle replay stays fast, while still
// covering every barrier phase, __local tile and atomic the kernel has.
// Apps not listed analyze at their smallest paper configuration.
func analysisConfig(app *kernels.App) ir.NDRange {
	switch app.Name {
	case "Square", "Vectoraddition":
		return ir.Range1D(4096, 64)
	case "Matrixmul", "MatrixmulNaive":
		return ir.Range2D(48, 32, 8, 8)
	case "Reduction", "DotProduct":
		return ir.Range1D(8192, 256)
	case "Histogram":
		return ir.Range1D(16384, 128)
	case "Prefixsum":
		return ir.Range1D(1024, 1024)
	case "Blackscholes":
		return ir.Range2D(64, 48, 8, 8)
	case "Binomialoption":
		return ir.Range1D(255*4, 255)
	case "Transpose":
		return ir.Range2D(64, 32, 8, 8)
	case "Convolution":
		return ir.Range2D(64, 16, 16, 1)
	case "NBody":
		return ir.Range1D(512, 64)
	}
	return app.DefaultConfig()
}

// AnalyzeSuite replays every registered application (Table II plus the
// extra set) through the workgroup hazard analyzer and a double-buffered
// out-of-order transfer/compute pipeline through the async analyzer —
// the full surface oclbench measures, under analysis instead of timing.
func AnalyzeSuite() (*Report, error) {
	rep := &Report{}
	apps := append(kernels.Registry(), kernels.ExtraRegistry()...)
	for _, app := range apps {
		nd := analysisConfig(app)
		wr, err := AnalyzeKernel(app.Name, app.Kernel, app.Make(nd), nd)
		if err != nil {
			return nil, fmt.Errorf("san: %s: %w", app.Name, err)
		}
		rep.Workloads = append(rep.Workloads, wr)
	}
	recs, err := PipelineCommands(false)
	if err != nil {
		return nil, fmt.Errorf("san: ooo pipeline: %w", err)
	}
	rep.Workloads = append(rep.Workloads, AnalyzeCommands("OOOPipeline", recs))
	rep.Finalize()
	return rep, nil
}

// PipelineCommands builds the double-buffered out-of-order pipeline —
// two independent write→square→read chains overlapping transfer with
// compute, plus a MapRead round-trip on the first result — and returns
// its command log for analysis. With every true dependency declared the
// log is hazard-free; injectBug drops the second chain's write→kernel
// edge, the classic missing-wait-list bug: results stay correct
// (functional effects apply in enqueue order) while the simulated
// timeline silently overlaps a kernel with the transfer feeding it.
func PipelineCommands(injectBug bool) ([]cl.CommandRecord, error) {
	const n = 4096
	ctx := cl.NewContext(cl.CPUDevice())
	q := cl.NewOOOQueue(ctx)
	k, err := ctx.CreateKernel(kernels.SquareKernel())
	if err != nil {
		return nil, err
	}
	mkBuf := func() (*cl.Buffer, error) {
		return ctx.CreateBuffer(cl.MemReadWrite, ir.F32, n)
	}
	a, err := mkBuf()
	if err != nil {
		return nil, err
	}
	outA, err := mkBuf()
	if err != nil {
		return nil, err
	}
	b, err := mkBuf()
	if err != nil {
		return nil, err
	}
	outB, err := mkBuf()
	if err != nil {
		return nil, err
	}
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i % 17)
	}
	wa, err := q.EnqueueWriteBuffer(a, src)
	if err != nil {
		return nil, err
	}
	wb, err := q.EnqueueWriteBuffer(b, src)
	if err != nil {
		return nil, err
	}
	nd := ir.Range1D(n, 64)
	if err := k.SetBufferArg("in", a); err != nil {
		return nil, err
	}
	if err := k.SetBufferArg("out", outA); err != nil {
		return nil, err
	}
	ka, err := q.EnqueueNDRangeKernel(k, nd, wa)
	if err != nil {
		return nil, err
	}
	if err := k.SetBufferArg("in", b); err != nil {
		return nil, err
	}
	if err := k.SetBufferArg("out", outB); err != nil {
		return nil, err
	}
	kbWaits := []*cl.Event{wb}
	if injectBug {
		kbWaits = nil // the seeded bug: launch without waiting for b's upload
	}
	kb, err := q.EnqueueNDRangeKernel(k, nd, kbWaits...)
	if err != nil {
		return nil, err
	}
	dst := make([]float64, n)
	ra, err := q.EnqueueReadBuffer(outA, dst, ka)
	if err != nil {
		return nil, err
	}
	if _, err := q.EnqueueReadBuffer(outB, dst, kb); err != nil {
		return nil, err
	}
	_, ma, err := q.EnqueueMapBuffer(outA, cl.MapRead, ka, ra)
	if err != nil {
		return nil, err
	}
	if _, err := q.EnqueueUnmapBuffer(outA, ma); err != nil {
		return nil, err
	}
	return q.Commands(), nil
}
