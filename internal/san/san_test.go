package san

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"clperf/internal/cl"
	"clperf/internal/ir"
	"clperf/internal/obs"
)

// The full registered suite must analyze clean: every finding here is a
// false positive. Runs under -race in CI via the race target.
func TestSuiteIsClean(t *testing.T) {
	rep, err := AnalyzeSuite()
	if err != nil {
		t.Fatalf("AnalyzeSuite: %v", err)
	}
	for _, f := range rep.Findings() {
		t.Errorf("false positive: %s", f)
	}
	if !rep.Clean {
		t.Errorf("Clean = false on the clean suite")
	}
	if rep.Records == 0 {
		t.Fatalf("suite analysis consumed no trace records")
	}
	if len(rep.Workloads) != 14 { // 9 + 4 apps + the async pipeline
		t.Errorf("analyzed %d workloads, want 14", len(rep.Workloads))
	}
}

// The seeded-bug corpus must trip all three hazard classes.
func TestCorpusDetectsAllClasses(t *testing.T) {
	rep, err := AnalyzeCorpus()
	if err != nil {
		t.Fatalf("AnalyzeCorpus: %v", err)
	}
	got := map[Class]int{}
	for _, f := range rep.Findings() {
		got[f.Class]++
	}
	for _, c := range []Class{ClassRace, ClassDivergence, ClassAsync} {
		if got[c] == 0 {
			t.Errorf("corpus produced no %s finding; findings: %v", c, rep.Findings())
		}
	}
	if rep.Clean {
		t.Errorf("Clean = true on the injected corpus")
	}
}

// The race kernel's diagnosis names the racing cell and a lane pair.
func TestInjectedRaceDiagnosis(t *testing.T) {
	k, args, nd := InjectedRaceKernel()
	wr, err := AnalyzeKernel(k.Name, k, args, nd)
	if err != nil {
		t.Fatalf("AnalyzeKernel: %v", err)
	}
	if len(wr.Findings) == 0 {
		t.Fatalf("no findings on the injected race kernel")
	}
	f := wr.Findings[0]
	if f.Class != ClassRace {
		t.Errorf("class = %s, want %s", f.Class, ClassRace)
	}
	if !strings.Contains(f.Detail, "write/write race on out[") {
		t.Errorf("detail %q does not name the racing cell", f.Detail)
	}
}

// The divergence kernel diverges only in the workgroup whose lanes
// straddle the gid < 5 split: exactly one group, exactly once per epoch.
func TestInjectedDivergenceDiagnosis(t *testing.T) {
	k, args, nd := InjectedDivergenceKernel()
	wr, err := AnalyzeKernel(k.Name, k, args, nd)
	if err != nil {
		t.Fatalf("AnalyzeKernel: %v", err)
	}
	if len(wr.Findings) != 1 {
		t.Fatalf("findings = %v, want exactly one divergence", wr.Findings)
	}
	f := wr.Findings[0]
	if f.Class != ClassDivergence || f.Group != 0 {
		t.Errorf("finding = %+v, want divergence in group 0", f)
	}
	if !strings.Contains(f.Detail, "reached by 5 of 8 workitems") {
		t.Errorf("detail %q does not report the 5-of-8 active count", f.Detail)
	}
}

// Atomic/atomic same-cell traffic is synchronization, not a race.
func TestAtomicsAreNotRaces(t *testing.T) {
	k := &ir.Kernel{
		Name:    "san_atomic_ok",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("out")},
		Locals:  []ir.LocalArray{{Name: "acc", Elem: ir.F32, Size: ir.I(1)}},
		Body: []ir.Stmt{
			ir.When(ir.Bin{Op: ir.EqI, X: ir.Lid(0), Y: ir.I(0)},
				ir.LStoreF("acc", ir.I(0), ir.F(0))),
			ir.Barrier{},
			ir.AtomicAdd{Arr: "acc", Index: ir.I(0), Val: ir.F(1)},
			ir.Barrier{},
			ir.StoreF("out", ir.Gid(0), ir.LLoadF("acc", ir.I(0))),
		},
	}
	args := ir.NewArgs().Bind("out", ir.NewBufferF32("out", 8))
	wr, err := AnalyzeKernel(k.Name, k, args, ir.Range1D(8, 8))
	if err != nil {
		t.Fatalf("AnalyzeKernel: %v", err)
	}
	for _, f := range wr.Findings {
		t.Errorf("false positive on atomic accumulation: %s", f)
	}
}

// A cross-lane conflict separated by a barrier is not a race; the same
// conflict without the barrier is. The pair pins the epoch semantics.
func TestBarrierSeparatesEpochs(t *testing.T) {
	makeKernel := func(name string, withBarrier bool) *ir.Kernel {
		// Lane l writes cell l, then reads cell (l+1) mod n — a classic
		// neighbor exchange, racy iff the barrier is missing.
		read := ir.StoreF("out", ir.Lid(0),
			ir.LLoadF("buf", ir.Modi(ir.Addi(ir.Lid(0), ir.I(1)), ir.Lsz(0))))
		body := []ir.Stmt{
			ir.LStoreF("buf", ir.Lid(0), ir.F(2)),
		}
		if withBarrier {
			body = append(body, ir.Barrier{})
		}
		body = append(body, read)
		return &ir.Kernel{
			Name:    name,
			WorkDim: 1,
			Params:  []ir.Param{ir.Buf("out")},
			Locals:  []ir.LocalArray{{Name: "buf", Elem: ir.F32, Size: ir.Lsz(0)}},
			Body:    body,
		}
	}
	nd := ir.Range1D(8, 8)
	ok, err := AnalyzeKernel("sync", makeKernel("san_sync", true),
		ir.NewArgs().Bind("out", ir.NewBufferF32("out", 8)), nd)
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if len(ok.Findings) != 0 {
		t.Errorf("barrier-separated exchange flagged: %v", ok.Findings)
	}
	bad, err := AnalyzeKernel("racy", makeKernel("san_racy", false),
		ir.NewArgs().Bind("out", ir.NewBufferF32("out", 8)), nd)
	if err != nil {
		t.Fatalf("racy: %v", err)
	}
	if len(bad.Findings) == 0 {
		t.Errorf("unsynchronized neighbor exchange not flagged")
	}
	for _, f := range bad.Findings {
		if f.Class != ClassRace {
			t.Errorf("unexpected class %s: %s", f.Class, f)
		}
	}
}

// Async analysis honors transitive happens-before: an a→b→c chain
// covers an a→c conflict with no direct edge.
func TestAsyncTransitiveEdges(t *testing.T) {
	recs := []cl.CommandRecord{
		{Seq: 0, Command: "write", Writes: []string{"m"}},
		{Seq: 1, Command: "kernel", Reads: []string{"m"}, Writes: []string{"o"}, Waits: []int{0}},
		{Seq: 2, Command: "read", Reads: []string{"m", "o"}, Waits: []int{1}},
	}
	wr := AnalyzeCommands("chain", recs)
	if len(wr.Findings) != 0 {
		t.Errorf("transitively ordered chain flagged: %v", wr.Findings)
	}
	// Drop the middle edge: #2's read of o now overlaps #1's write.
	recs[2].Waits = nil
	wr = AnalyzeCommands("broken", recs)
	if len(wr.Findings) == 0 {
		t.Fatalf("undeclared read-after-write not flagged")
	}
	if !strings.Contains(wr.Findings[0].Detail, "read-after-write") {
		t.Errorf("detail %q, want a read-after-write diagnosis", wr.Findings[0].Detail)
	}
}

// Report serialization: JSON round-trips, text is deterministic, obs
// wiring exposes the counters.
func TestReportOutputs(t *testing.T) {
	rep, err := AnalyzeCorpus()
	if err != nil {
		t.Fatalf("AnalyzeCorpus: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Schema != Schema || back.Clean || back.Records != rep.Records {
		t.Errorf("round-tripped report = %+v, want schema %d, dirty, %d records",
			back, Schema, rep.Records)
	}
	var t1, t2 bytes.Buffer
	rep.WriteText(&t1)
	rep.WriteText(&t2)
	if t1.String() != t2.String() {
		t.Errorf("WriteText is not deterministic")
	}
	if !strings.Contains(t1.String(), "finding(s)") {
		t.Errorf("text verdict missing finding count:\n%s", t1.String())
	}

	rec := obs.NewRecorder()
	rep.Record(rec)
	snap := rec.Registry().Snapshot()
	counters := map[string]float64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{
		"san.findings.race", "san.findings.barrier_divergence",
		"san.findings.async_hazard", "san.records.analyzed",
	} {
		if counters[name] == 0 {
			t.Errorf("counter %s = 0 after recording the corpus report", name)
		}
	}
}
