package san

import (
	"fmt"

	"clperf/internal/ir"
)

// This file is the injected-bug regression corpus: one seeded workload
// per hazard class, each passing static validation and producing correct
// enough output that nothing else in the stack objects — only the
// analyzer sees the bug. The corpus pins clsan's detection behaviour;
// the clean suite pins its false-positive rate.

// InjectedRaceKernel returns a kernel where workitems 2k and 2k+1 both
// store to out[k] with no barrier between them — an intra-workgroup
// write/write race. The stores happen to agree on the value, which is
// exactly why only a happens-before check catches it: results are
// deterministic, the schedule is not.
func InjectedRaceKernel() (*ir.Kernel, *ir.Args, ir.NDRange) {
	k := &ir.Kernel{
		Name:    "san_injected_race",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("out")},
		Body: []ir.Stmt{
			ir.StoreF("out", ir.Divi(ir.Gid(0), ir.I(2)), ir.F(1)),
		},
	}
	const n = 16
	args := ir.NewArgs().Bind("out", ir.NewBufferF32("out", n/2))
	return k, args, ir.Range1D(n, 8)
}

// InjectedDivergenceKernel returns a kernel whose barrier sits behind a
// loop-carried condition: uniform on iteration 0 (so static validation,
// which checks the loop body once, accepts it), divergent from iteration
// 1 on — workitems with gid < 5 reach the barrier, the rest never do.
// On a real runtime this hangs the workgroup.
func InjectedDivergenceKernel() (*ir.Kernel, *ir.Args, ir.NDRange) {
	k := &ir.Kernel{
		Name:    "san_injected_divergence",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Set("x", ir.I(0)),
			ir.Loop("i", ir.I(0), ir.I(2),
				ir.When(ir.Bin{Op: ir.NeI, X: ir.Vi("x"), Y: ir.I(0)},
					ir.Barrier{}),
				ir.When(ir.Bin{Op: ir.LtI, X: ir.Gid(0), Y: ir.I(5)},
					ir.Set("x", ir.I(1))),
			),
			ir.StoreF("out", ir.Gid(0), ir.F(1)),
		},
	}
	const n = 16
	args := ir.NewArgs().Bind("out", ir.NewBufferF32("out", n))
	return k, args, ir.Range1D(n, 8)
}

// AnalyzeCorpus runs the analyzer over the three seeded-bug workloads —
// intra-group race, divergent barrier, missing wait-list edge — and
// returns the report. A healthy analyzer finds at least one hazard of
// each class; `clsan -inject` and the san-smoke CI target assert that.
func AnalyzeCorpus() (*Report, error) {
	rep := &Report{}
	rk, rargs, rnd := InjectedRaceKernel()
	wr, err := AnalyzeKernel(rk.Name, rk, rargs, rnd)
	if err != nil {
		return nil, fmt.Errorf("san: corpus race: %w", err)
	}
	rep.Workloads = append(rep.Workloads, wr)
	dk, dargs, dnd := InjectedDivergenceKernel()
	wr, err = AnalyzeKernel(dk.Name, dk, dargs, dnd)
	if err != nil {
		return nil, fmt.Errorf("san: corpus divergence: %w", err)
	}
	rep.Workloads = append(rep.Workloads, wr)
	recs, err := PipelineCommands(true)
	if err != nil {
		return nil, fmt.Errorf("san: corpus pipeline: %w", err)
	}
	rep.Workloads = append(rep.Workloads, AnalyzeCommands("san_injected_pipeline", recs))
	rep.Finalize()
	return rep, nil
}
