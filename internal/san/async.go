package san

import (
	"fmt"
	"sort"

	"clperf/internal/cl"
)

// conflict classifies the (i, j) command pair's strongest buffer
// conflict, i enqueued before j. Returns "" when the pair is
// independent. RAW is checked first, then WAW, then WAR — the order a
// reader of the report cares about.
func conflict(i, j cl.CommandRecord) (kind, buffer string) {
	in := func(set []string, name string) bool {
		for _, s := range set {
			if s == name {
				return true
			}
		}
		return false
	}
	first := func(a, b []string) string {
		var hits []string
		for _, n := range a {
			if in(b, n) {
				hits = append(hits, n)
			}
		}
		if len(hits) == 0 {
			return ""
		}
		sort.Strings(hits)
		return hits[0]
	}
	if b := first(j.Reads, i.Writes); b != "" {
		return "read-after-write", b
	}
	if b := first(j.Writes, i.Writes); b != "" {
		return "write-after-write", b
	}
	if b := first(j.Writes, i.Reads); b != "" {
		return "write-after-read", b
	}
	return "", ""
}

// AnalyzeCommands checks an out-of-order queue's command log for
// conflicting pairs with no declared happens-before path. The relation
// is the transitive closure of the wait-list edges exported in each
// cl.CommandRecord; on an OOOQueue a conflicting pair outside it runs
// correctly (functional effects apply in enqueue order) but overlaps in
// simulated time — the timeline silently stops meaning anything, which
// is why the analyzer flags it rather than the queue failing.
func AnalyzeCommands(workload string, recs []cl.CommandRecord) WorkloadReport {
	rep := WorkloadReport{Name: workload, Records: int64(len(recs))}
	// reach[j] = set of earlier seqs ordered before j by declared edges.
	reach := make([]map[int]bool, len(recs))
	for j, r := range recs {
		set := map[int]bool{}
		for _, w := range r.Waits {
			if w < 0 || w >= j {
				continue
			}
			set[w] = true
			for s := range reach[w] {
				set[s] = true
			}
		}
		reach[j] = set
		for i := 0; i < j; i++ {
			kind, buffer := conflict(recs[i], r)
			if kind == "" || set[i] {
				continue
			}
			if len(rep.Findings) >= maxFindings {
				rep.Suppressed++
				continue
			}
			rep.Findings = append(rep.Findings, Finding{
				Class:    ClassAsync,
				Workload: workload,
				Detail: fmt.Sprintf("%s hazard on %s: command #%d (%s) and #%d (%s) have no declared event edge",
					kind, buffer, i, recs[i].Command, j, r.Command),
			})
		}
	}
	return rep
}
