// Package omp is the conventional-parallel-programming-model counterpart
// the paper compares OpenCL against: an OpenMP-style runtime with
//
//   - parallel-for over loop iterations (the workitem dimension mapped to a
//     loop, exactly the porting of section III-F);
//   - static and dynamic schedules;
//   - thread affinity in the style of OMP_PROC_BIND / GOMP_CPU_AFFINITY,
//     the feature the paper argues OpenCL lacks (section III-E);
//   - a conservative loop auto-vectorizer (ir.VectorizeLoop) implementing
//     the Intel legality rules, so the programming-model difference in
//     vectorization (Figures 10-11) falls out of the analysis.
//
// The runtime shares the CPU timing substrate (internal/cpu) and may run
// with a persistent cache hierarchy (internal/cache) so that consecutive
// parallel regions observe each other's cache residency — the mechanism of
// the affinity experiment (Figure 9).
package omp

import (
	"fmt"

	"clperf/internal/arch"
	"clperf/internal/cache"
	"clperf/internal/cpu"
	"clperf/internal/ir"
	"clperf/internal/units"
)

// Schedule selects iteration-to-thread assignment.
type Schedule int

// Schedules.
const (
	// Static splits the iteration space into one contiguous chunk per
	// thread (schedule(static)).
	Static Schedule = iota
	// Dynamic hands out chunks on demand (schedule(dynamic)); it adds
	// per-chunk dispatch cost like the OpenCL runtime's workgroup tasks.
	Dynamic
	// Guided hands out geometrically shrinking chunks
	// (schedule(guided)): fewer dispatches than Dynamic, better tail
	// balance than Static.
	Guided
)

// Runtime is an OpenMP-style runtime instance.
type Runtime struct {
	A   *arch.CPU
	dev *cpu.Device

	// NumThreads is the team size (default: all logical cores).
	NumThreads int
	// ProcBind pins threads to cores for the process lifetime
	// (OMP_PROC_BIND=true); without it the scheduler may migrate threads
	// between regions and cache affinity is lost.
	ProcBind bool
	// CPUAffinity maps thread id -> physical core (GOMP_CPU_AFFINITY).
	// Empty means identity.
	CPUAffinity []int

	// hier persists across parallel regions when cache simulation is on.
	hier *cache.Hierarchy
	// CacheSimOracle simulates the caches with the serial reference
	// simulator instead of the sharded engine (the differential oracle;
	// results are bit-identical either way).
	CacheSimOracle bool
	// LoopOverhead is the per-iteration bookkeeping of the compiled loop
	// (far below the OpenCL runtime's per-workitem overhead).
	LoopOverhead float64
	// ForkJoin is the fixed cost of entering and leaving a parallel region.
	ForkJoin units.Duration
	// ChunkDispatch is the per-chunk cost under the dynamic schedule.
	ChunkDispatch units.Duration

	// regions counts parallel regions, driving the thread-migration model
	// when ProcBind is off.
	regions int
}

// New returns a runtime on the given CPU with OpenMP-ish defaults.
func New(a *arch.CPU) *Runtime {
	return &Runtime{
		A:             a,
		dev:           cpu.New(a),
		NumThreads:    a.LogicalCores(),
		LoopOverhead:  2,
		ForkJoin:      4 * units.Microsecond,
		ChunkDispatch: 0.2 * units.Microsecond,
	}
}

// EnableCacheSim attaches a fresh cache hierarchy that persists across
// parallel regions.
func (r *Runtime) EnableCacheSim() { r.hier = cache.NewHierarchy(r.A) }

// Hierarchy returns the persistent cache hierarchy (nil unless enabled).
func (r *Runtime) Hierarchy() *cache.Hierarchy { return r.hier }

// threadCore returns the physical core executing thread t for this region.
// With ProcBind unset the OS is free to migrate; we model migration as a
// rotation so consecutive regions land on different cores (the worst case
// the paper's misaligned configuration constructs deliberately).
func (r *Runtime) threadCore(t, region int) int {
	phys := r.A.PhysicalCores()
	if len(r.CPUAffinity) > 0 {
		return r.CPUAffinity[t%len(r.CPUAffinity)] % phys
	}
	if r.ProcBind {
		return t % phys
	}
	return (t + region) % phys
}

// ForResult reports one parallel-for region.
type ForResult struct {
	Name string
	// Iterations is the loop trip count.
	Iterations int
	// Time is the simulated region time (fork to join).
	Time units.Duration
	// Vec is the loop vectorizer's verdict.
	Vec *ir.LoopVecReport
	// Width is the SIMD width the loop actually ran at.
	Width int
	// PerThread is each thread's busy time.
	PerThread []units.Duration
	// MemStallCycles is the cache-simulated stall total (cache sim only).
	MemStallCycles float64
}

// Throughput returns flops per second over the region, given per-iteration
// flops.
func (fr *ForResult) Throughput(flopsPerIter float64) units.Throughput {
	return units.ThroughputOf(flopsPerIter*float64(fr.Iterations), fr.Time)
}

// ParallelFor executes "#pragma omp parallel for" over kernel k's global
// dimension 0: iterations are workitems, the body is the kernel body with
// get_global_id(0) replaced by the induction variable. Buffers in args are
// really written (functional execution) and the region is priced by the
// CPU model with the OpenMP vectorization verdict.
func (r *Runtime) ParallelFor(k *ir.Kernel, args *ir.Args, n int, sched Schedule) (*ForResult, error) {
	return r.parallelFor(k, args, n, sched, true)
}

// EstimateFor prices a parallel-for region without executing it.
func (r *Runtime) EstimateFor(k *ir.Kernel, args *ir.Args, n int) (*ForResult, error) {
	return r.parallelFor(k, args, n, Static, false)
}

func (r *Runtime) parallelFor(k *ir.Kernel, args *ir.Args, n int, sched Schedule, functional bool) (*ForResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("omp: empty loop for %s", k.Name)
	}
	if k.WorkDim > 1 {
		return nil, fmt.Errorf("omp: kernel %s is %d-dimensional; port it with Collapse2D first",
			k.Name, k.WorkDim)
	}
	threads := r.NumThreads
	if threads > n {
		threads = n
	}
	r.regions++

	// Port: workitems -> loop iterations.
	const induction = "omp_i"
	analysisND := ir.Range1D(n, largestDivisorLE(n, chunkOf(n, threads)))
	body := ir.SubstGlobalID(k.Body, 0, ir.Vi(induction))
	env := ir.NewStaticEnv(analysisND, args)
	vec := ir.VectorizeLoop(body, induction, env, args.Scalars)
	width := 1
	if vec.Vectorized {
		width = r.A.SIMDWidth
	}

	// Price one iteration with the shared CPU cost model. The launch
	// geometry only positions the representative workitem.
	nd := analysisND
	cost, err := r.dev.AnalyzeWidth(k, args, nd, width)
	if err != nil {
		return nil, err
	}
	cost.Overhead = r.LoopOverhead

	// Functional execution, optionally through the persistent caches. The
	// execution geometry needs a local size that divides n; iteration g of
	// the resulting group range belongs to the thread owning that chunk.
	var coreCycles map[int]float64
	if functional {
		chunk := chunkOf(n, threads)
		execLocal := largestDivisorLE(n, chunk)
		execND := ir.Range1D(n, execLocal)
		var sim cache.Sim
		if r.hier != nil {
			groupCore := func(g int) int {
				thread := g * execLocal / chunk
				if thread >= threads {
					thread = threads - 1
				}
				return r.threadCore(thread, r.regions)
			}
			// The sharded engine simulates each core's private L1/L2
			// concurrently with execution and replays the merged miss
			// stream through the shared L3 in group order; the serial
			// reference is the differential oracle (CacheSimOracle).
			if r.CacheSimOracle {
				sim = cache.NewSerial(r.hier, groupCore, cache.StoreWriteFactor)
			} else {
				sim = cache.NewSharded(r.hier, groupCore, cache.StoreWriteFactor)
			}
		}
		// Tracing no longer costs the parallelism: the engine buffers each
		// group's accesses and flushes them in group order, so the cache
		// hierarchy sees the serial stream while groups execute on all
		// threads.
		execOpts := ir.ExecOptions{Parallel: threads}
		if sim != nil {
			execOpts.Tracer = sim
		}
		execErr := ir.ExecRange(k, args, execND, execOpts)
		if sim != nil {
			coreCycles = sim.Finish() // always join the shard workers
		}
		if execErr != nil {
			return nil, fmt.Errorf("omp: %s: %w", k.Name, execErr)
		}
	}

	// Timing: each thread runs its share of iterations.
	share := 1.0
	if threads > r.A.PhysicalCores() {
		share = r.A.SMTYield
	}
	perIter := cost.PacketCycles(share) / float64(width)
	perThread := make([]units.Duration, threads)
	chunk := chunkOf(n, threads)
	var memStall float64
	for t := 0; t < threads; t++ {
		iters := chunk
		if t == threads-1 {
			iters = n - chunk*(threads-1)
		}
		cycles := float64(iters) * perIter
		if coreCycles != nil {
			core := r.threadCore(t, r.regions)
			cycles += coreCycles[core]
			memStall += coreCycles[core]
		}
		perThread[t] = r.A.Clock.Cycles(cycles)
		switch sched {
		case Dynamic:
			perThread[t] += r.ChunkDispatch
		case Guided:
			// Chunks halve from n/threads down to 1: each thread serves
			// about log2(chunk) dispatches.
			d := 1.0
			for c := chunk; c > 1; c /= 2 {
				d++
			}
			perThread[t] += units.Duration(d) * r.ChunkDispatch
		}
	}

	slowest := units.Duration(0)
	for _, d := range perThread {
		if d > slowest {
			slowest = d
		}
	}
	// Bandwidth floor, as in the OpenCL path.
	traffic := cost.TrafficPerItem * float64(n)
	bw := r.A.MemBandwidth
	if fp := totalBytes(args); fp > 0 && fp <= int64(r.A.L3.Size) {
		bw = r.A.L3Bandwidth
	}
	floor := bw.Transfer(units.ByteSize(traffic))
	time := slowest
	if r.hier == nil && floor > time {
		// The cache simulation already accounts for memory time.
		time = floor
	}
	time += r.ForkJoin

	return &ForResult{
		Name:           k.Name,
		Iterations:     n,
		Time:           time,
		Vec:            vec,
		Width:          width,
		PerThread:      perThread,
		MemStallCycles: memStall,
	}, nil
}

func chunkOf(n, threads int) int {
	c := (n + threads - 1) / threads
	if c < 1 {
		c = 1
	}
	return c
}

func largestDivisorLE(n, limit int) int {
	if limit >= n {
		return n
	}
	for v := limit; v >= 1; v-- {
		if n%v == 0 {
			return v
		}
	}
	return 1
}

func totalBytes(args *ir.Args) int64 {
	var b int64
	for _, buf := range args.Buffers {
		if buf != nil {
			b += buf.Bytes()
		}
	}
	return b
}

// Collapse2D ports a 2-dimensional kernel to a single collapsed loop, as
// "#pragma omp parallel for collapse(2)" would: iteration i maps to
// get_global_id(0) = i %% width and get_global_id(1) = i / width, and the
// 2-D sizes become the given constants. The returned kernel runs over
// width*height iterations with ParallelFor.
func Collapse2D(k *ir.Kernel, width, height int) *ir.Kernel {
	body := ir.SubstID(k.Body, ir.GlobalSize, 0, ir.I(int64(width)))
	body = ir.SubstID(body, ir.GlobalSize, 1, ir.I(int64(height)))
	// Substitute dimension 0 first: the dimension-1 replacement introduces
	// fresh get_global_id(0) nodes that must survive.
	body = ir.SubstID(body, ir.GlobalID, 0, ir.Modi(ir.Gid(0), ir.I(int64(width))))
	body = ir.SubstID(body, ir.GlobalID, 1, ir.Divi(ir.Gid(0), ir.I(int64(width))))
	return &ir.Kernel{
		Name:    k.Name + "_collapsed",
		WorkDim: 1,
		Params:  k.Params,
		Locals:  k.Locals,
		Body:    body,
	}
}
