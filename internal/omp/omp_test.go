package omp

import (
	"math"
	"testing"

	"clperf/internal/arch"
	"clperf/internal/cache"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

func TestParallelForFunctional(t *testing.T) {
	rt := New(arch.XeonE5645())
	const n = 4096
	a := ir.NewBufferF32("a", n)
	b := ir.NewBufferF32("b", n)
	c := ir.NewBufferF32("c", n)
	for i := 0; i < n; i++ {
		a.Set(i, float64(i))
		b.Set(i, 1)
	}
	args := ir.NewArgs().Bind("a", a).Bind("b", b).Bind("c", c)
	res, err := rt.ParallelFor(kernels.VectorAddKernel(), args, n, Static)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if c.Get(i) != float64(i+1) {
			t.Fatalf("c[%d] = %v, want %v", i, c.Get(i), i+1)
		}
	}
	if res.Time <= 0 {
		t.Fatal("region time must be positive")
	}
	if !res.Vec.Vectorized || res.Width != 4 {
		t.Fatalf("vectoradd loop should vectorize at width 4: %+v width=%d", res.Vec, res.Width)
	}
	if len(res.PerThread) == 0 || len(res.PerThread) > rt.NumThreads {
		t.Fatalf("PerThread has %d entries", len(res.PerThread))
	}
}

func TestParallelForRejectsEmpty(t *testing.T) {
	rt := New(arch.XeonE5645())
	if _, err := rt.ParallelFor(kernels.VectorAddKernel(), ir.NewArgs(), 0, Static); err == nil {
		t.Fatal("empty loop must error")
	}
}

// The Figure 10 premise: a loop the vectorizer rejects runs scalar and
// slower than the vectorizable form of the same arithmetic.
func TestScalarLoopSlower(t *testing.T) {
	rt := New(arch.XeonE5645())
	const n = 1 << 20

	vectorizable := kernels.VectorMulKernel() // c[i] = a[i]*b[i]
	rmw := &ir.Kernel{                        // a[i] = a[i]*b[i], twice: assumed dependence
		Name:    "rmw",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("a"), ir.Buf("b")},
		Body: []ir.Stmt{
			ir.StoreF("a", ir.Gid(0), ir.Mul(ir.LoadF("a", ir.Gid(0)), ir.LoadF("b", ir.Gid(0)))),
			ir.StoreF("a", ir.Gid(0), ir.Mul(ir.LoadF("a", ir.Gid(0)), ir.LoadF("b", ir.Gid(0)))),
		},
	}
	mkArgs := func() *ir.Args {
		a := ir.NewBufferF32("a", n)
		b := ir.NewBufferF32("b", n)
		c := ir.NewBufferF32("c", n)
		a.Fill(1.0001)
		b.Fill(0.9999)
		return ir.NewArgs().Bind("a", a).Bind("b", b).Bind("c", c)
	}
	vres, err := rt.EstimateFor(vectorizable, mkArgs(), n)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := rt.EstimateFor(rmw, mkArgs(), n)
	if err != nil {
		t.Fatal(err)
	}
	if vres.Width != 4 || rres.Width != 1 {
		t.Fatalf("widths = %d/%d, want 4/1", vres.Width, rres.Width)
	}
	// Per unit of arithmetic (rmw does 2 muls), scalar must be slower.
	if float64(rres.Time)/2 <= float64(vres.Time) {
		t.Fatalf("scalar loop per-mul time (%v/2) should exceed vector (%v)", rres.Time, vres.Time)
	}
}

// The affinity mechanism: with the persistent cache simulation, a second
// region aligned with the first is faster than a misaligned one.
func TestAffinityCacheEffect(t *testing.T) {
	run := func(second []int) float64 {
		rt := New(arch.XeonE5645())
		rt.NumThreads = 8
		rt.ProcBind = true
		rt.CPUAffinity = []int{0, 1, 2, 3, 4, 5, 6, 7}
		rt.EnableCacheSim()
		const n = 8 * 8192
		a := ir.NewBufferF32("a", n)
		b := ir.NewBufferF32("b", n)
		c := ir.NewBufferF32("c", n)
		d := ir.NewBufferF32("d", n)
		base := int64(1 << 22)
		for _, buf := range []*ir.Buffer{a, b, c, d} {
			buf.Base = base
			base += buf.Bytes() + 4096
		}
		args := ir.NewArgs().Bind("a", a).Bind("b", b).Bind("c", c)
		if _, err := rt.ParallelFor(kernels.VectorAddKernel(), args, n, Static); err != nil {
			t.Fatal(err)
		}
		rt.CPUAffinity = second
		args2 := ir.NewArgs().Bind("a", c).Bind("b", c).Bind("c", d)
		res, err := rt.ParallelFor(kernels.VectorMulKernel(), args2, n, Static)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Time)
	}
	aligned := run([]int{0, 1, 2, 3, 4, 5, 6, 7})
	misaligned := run([]int{1, 2, 3, 4, 5, 6, 7, 0})
	if misaligned <= aligned {
		t.Fatalf("misaligned (%v) must be slower than aligned (%v)", misaligned, aligned)
	}
	if misaligned > 2*aligned {
		t.Fatalf("misalignment penalty implausibly large: %v vs %v", misaligned, aligned)
	}
}

func TestThreadCoreMapping(t *testing.T) {
	rt := New(arch.XeonE5645())
	rt.CPUAffinity = []int{3, 1}
	if rt.threadCore(0, 7) != 3 || rt.threadCore(1, 7) != 1 {
		t.Fatal("explicit affinity must win")
	}
	rt.CPUAffinity = nil
	rt.ProcBind = true
	if rt.threadCore(2, 0) != rt.threadCore(2, 5) {
		t.Fatal("ProcBind must pin threads across regions")
	}
	rt.ProcBind = false
	if rt.threadCore(2, 0) == rt.threadCore(2, 1) {
		t.Fatal("unbound threads must migrate between regions")
	}
}

func TestDynamicScheduleCostsMore(t *testing.T) {
	rt := New(arch.XeonE5645())
	const n = 1 << 14
	mk := func() *ir.Args {
		a := ir.NewBufferF32("a", n)
		b := ir.NewBufferF32("b", n)
		c := ir.NewBufferF32("c", n)
		return ir.NewArgs().Bind("a", a).Bind("b", b).Bind("c", c)
	}
	sres, err := rt.ParallelFor(kernels.VectorAddKernel(), mk(), n, Static)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := rt.ParallelFor(kernels.VectorAddKernel(), mk(), n, Dynamic)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Time < sres.Time {
		t.Fatalf("dynamic (%v) should not beat static (%v) on a uniform loop", dres.Time, sres.Time)
	}
}

func TestGuidedScheduleBetweenStaticAndDynamic(t *testing.T) {
	rt := New(arch.XeonE5645())
	const n = 1 << 14
	mk := func() *ir.Args {
		a := ir.NewBufferF32("a", n)
		b := ir.NewBufferF32("b", n)
		c := ir.NewBufferF32("c", n)
		return ir.NewArgs().Bind("a", a).Bind("b", b).Bind("c", c)
	}
	sres, err := rt.ParallelFor(kernels.VectorAddKernel(), mk(), n, Static)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := rt.ParallelFor(kernels.VectorAddKernel(), mk(), n, Guided)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Time < sres.Time {
		t.Fatalf("guided (%v) should not beat static (%v) on a uniform loop", gres.Time, sres.Time)
	}
}

func TestParallelForRejects2D(t *testing.T) {
	rt := New(arch.XeonE5645())
	app := kernels.BlackScholes()
	if _, err := rt.EstimateFor(app.Kernel, app.Make(app.Configs[0]), 1024); err == nil {
		t.Fatal("2-D kernels must be rejected until collapsed")
	}
}

func TestCollapse2D(t *testing.T) {
	rt := New(arch.XeonE5645())
	nd := ir.Range2D(64, 32, 8, 8)
	app := kernels.BlackScholes()
	args := app.Make(nd)

	// The collapsed port must compute the same results as the 2-D kernel.
	// Blackscholes indexes out[y*W+x], so the collapsed loop covers W*H.
	collapsed := Collapse2D(app.Kernel, 64, 32)
	res, err := rt.ParallelFor(collapsed, args, nd.GlobalItems(), Static)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("collapsed region must take time")
	}
	if err := app.Check(args, nd); err != nil {
		t.Fatalf("collapsed port computed wrong results: %v", err)
	}
}

// TestParallelForOracleBitIdentical: a cache-simulated parallel-for
// through the sharded engine must match the serial oracle bitwise —
// region Time, PerThread, MemStallCycles, and hierarchy stats.
func TestParallelForOracleBitIdentical(t *testing.T) {
	run := func(oracle bool) (*ForResult, *cache.Hierarchy) {
		rt := New(arch.XeonE5645())
		rt.NumThreads = 8
		rt.ProcBind = true
		rt.CacheSimOracle = oracle
		rt.EnableCacheSim()
		const n = 8 * 8192
		a := ir.NewBufferF32("a", n)
		b := ir.NewBufferF32("b", n)
		c := ir.NewBufferF32("c", n)
		base := int64(1 << 22)
		for _, buf := range []*ir.Buffer{a, b, c} {
			buf.Base = base
			base += buf.Bytes() + 4096
		}
		args := ir.NewArgs().Bind("a", a).Bind("b", b).Bind("c", c)
		var res *ForResult
		for pass := 0; pass < 2; pass++ { // second region sees warm caches
			var err error
			res, err = rt.ParallelFor(kernels.VectorAddKernel(), args, n, Static)
			if err != nil {
				t.Fatal(err)
			}
		}
		return res, rt.Hierarchy()
	}
	want, hs := run(true)
	got, hp := run(false)

	if got.Time != want.Time {
		t.Fatalf("Time %v, oracle %v", got.Time, want.Time)
	}
	if math.Float64bits(got.MemStallCycles) != math.Float64bits(want.MemStallCycles) {
		t.Fatalf("MemStallCycles %v, oracle %v", got.MemStallCycles, want.MemStallCycles)
	}
	if len(got.PerThread) != len(want.PerThread) {
		t.Fatalf("PerThread sizes differ: %d vs %d", len(got.PerThread), len(want.PerThread))
	}
	for i := range want.PerThread {
		if got.PerThread[i] != want.PerThread[i] {
			t.Fatalf("PerThread[%d] = %v, oracle %v", i, got.PerThread[i], want.PerThread[i])
		}
	}
	for c := 0; c < hs.Cores(); c++ {
		w1, w2 := hs.CoreStats(c)
		g1, g2 := hp.CoreStats(c)
		if g1 != w1 || g2 != w2 {
			t.Fatalf("core %d cache stats diverge: L1 %+v vs %+v, L2 %+v vs %+v",
				c, g1, w1, g2, w2)
		}
	}
	if hp.L3Stats() != hs.L3Stats() {
		t.Fatalf("L3 stats %+v, oracle %+v", hp.L3Stats(), hs.L3Stats())
	}
}
