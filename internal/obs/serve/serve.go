// Package serve exposes a live observability plane over HTTP: an
// embeddable handler set that renders a recorder's current state as
// OpenMetrics text, a JSON metrics snapshot, or a Chrome trace — the
// scrape surface the ROADMAP's clperfd daemon requires, usable today
// from `oclbench -serve` and `advisor -serve`.
//
// The handlers are backed by a Source callback returning a recorder
// view (e.g. harness.Runner.Live): every request takes a fresh
// mutex-snapshotted copy, so scraping is safe while a suite is still
// running and never blocks the workers beyond the recorder's own
// short critical sections.
//
// Endpoints:
//
//	/metrics   OpenMetrics/Prometheus text exposition (counters,
//	           gauges, histograms with cumulative log2 buckets)
//	/snapshot  JSON obs.Snapshot (counters, gauges, histogram stats
//	           incl. p50/p90/p95/p99 and cumulative buckets)
//	/trace     Chrome trace-event JSON of the recorded spans
//	           (Perfetto / chrome://tracing / cldiff input)
//	/healthz   liveness probe, "ok"
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"clperf/internal/obs"
)

// Source yields the recorder view a request should render. It is
// called once per request; returning nil renders an empty (but valid)
// document. Implementations must be safe for concurrent use.
type Source func() *obs.Recorder

// NewMux returns the handler set mounted on a fresh mux.
func NewMux(src Source) *http.ServeMux {
	mux := http.NewServeMux()
	rec := func() *obs.Recorder {
		if src == nil {
			return nil
		}
		return src()
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		rec().Registry().Snapshot().WriteOpenMetrics(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(rec().Registry().Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rec().Chrome(1, "clperf").WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	// Addr is the bound listen address (resolved, so ":0" requests
	// report the picked port).
	Addr string

	srv  *http.Server
	ln   net.Listener
	err  chan error
	once sync.Once
}

// Start listens on addr and serves the handler set in a background
// goroutine until Close. addr follows net.Listen's "host:port" form;
// port 0 picks a free port (see Server.Addr).
func Start(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs/serve: listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv: &http.Server{
			Handler:           NewMux(src),
			ReadHeaderTimeout: 5 * time.Second,
		},
		ln:  ln,
		err: make(chan error, 1),
	}
	go func() { s.err <- s.srv.Serve(ln) }()
	return s, nil
}

// URL returns the endpoint base URL (http://host:port).
func (s *Server) URL() string { return "http://" + s.Addr }

// Close stops the listener and waits for the serve loop to exit.
// In-flight requests are cut off; the observability plane has no
// state to flush. Close is idempotent.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	var err error
	s.once.Do(func() {
		err = s.srv.Close()
		<-s.err // Serve always returns after Close (http.ErrServerClosed)
	})
	return err
}
