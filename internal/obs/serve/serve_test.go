package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"clperf/internal/obs"
	"clperf/internal/units"
)

func testRecorder() *obs.Recorder {
	rec := obs.NewRecorder()
	id := rec.Record(obs.NoParent, obs.KindKernel, "square", 0, 100*units.Microsecond)
	rec.SetTrack(id, "dev0")
	rec.Registry().Add("cl.commands", 3)
	rec.Registry().Set("sched.workers", 4)
	for _, v := range []float64{10, 20, 40, 80000} {
		rec.Registry().Observe("kernel.ns:square", v)
	}
	return rec
}

func get(t *testing.T, srv *httptest.Server, path string) (string, *http.Response) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d:\n%s", path, resp.StatusCode, body)
	}
	return string(body), resp
}

func TestEndpoints(t *testing.T) {
	rec := testRecorder()
	srv := httptest.NewServer(NewMux(func() *obs.Recorder { return rec }))
	defer srv.Close()

	body, _ := get(t, srv, "/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}

	body, resp := get(t, srv, "/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		"cl_commands_total 3",
		"sched_workers 4",
		`kernel_ns:square_bucket{le="+Inf"} 4`,
		"kernel_ns:square_count 4",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, _ = get(t, srv, "/snapshot")
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v\n%s", err, body)
	}
	if len(snap.Counters) != 1 || len(snap.Gauges) != 1 || len(snap.Hists) != 1 {
		t.Fatalf("/snapshot shape = %+v", snap)
	}
	h := snap.Hists[0]
	if h.Name != "kernel.ns:square" || h.Count != 4 || h.P50 == 0 || h.P99 == 0 || len(h.Buckets) == 0 {
		t.Fatalf("/snapshot histogram = %+v", h)
	}

	body, _ = get(t, srv, "/trace")
	var ct obs.ChromeTrace
	if err := json.Unmarshal([]byte(body), &ct); err != nil {
		t.Fatalf("/trace not JSON: %v\n%s", err, body)
	}
	var slices int
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" {
			slices++
			if ev.Name != "square" {
				t.Fatalf("/trace slice = %+v", ev)
			}
		}
	}
	if slices != 1 {
		t.Fatalf("/trace slices = %d, want 1", slices)
	}
}

// TestNilSource: a nil source (or a source returning nil) must serve
// valid, empty documents rather than crash — scraping before the suite
// starts is legal.
func TestNilSource(t *testing.T) {
	for name, src := range map[string]Source{
		"nil source":   nil,
		"nil recorder": func() *obs.Recorder { return nil },
		"empty":        func() *obs.Recorder { return obs.NewRecorder() },
	} {
		srv := httptest.NewServer(NewMux(src))
		body, _ := get(t, srv, "/metrics")
		if !strings.Contains(body, "# EOF") {
			t.Errorf("%s: /metrics missing EOF:\n%s", name, body)
		}
		body, _ = get(t, srv, "/snapshot")
		var snap obs.Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Errorf("%s: /snapshot: %v", name, err)
		}
		get(t, srv, "/healthz")
		get(t, srv, "/trace")
		srv.Close()
	}
}

// TestStartClose exercises the background server lifecycle on a
// kernel-picked port, including concurrent scrapes against a recorder
// that is being written at the same time.
func TestStartClose(t *testing.T) {
	rec := obs.NewRecorder()
	s, err := Start("127.0.0.1:0", func() *obs.Recorder { return rec })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent writer: the mid-suite scrape scenario
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec.Registry().Observe("w.ns", float64(i+1))
			rec.Record(obs.NoParent, obs.KindRegion, "w", units.Duration(i), units.Duration(i+1))
		}
	}()

	for i := 0; i < 10; i++ {
		resp, err := http.Get(s.URL() + "/metrics")
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		// ParseExposition, not ValidateExposition: the very first scrape
		// may legitimately race ahead of the writer's first sample.
		if _, err := obs.ParseExposition(strings.NewReader(string(body))); err != nil {
			t.Fatalf("scrape %d: invalid exposition: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if err := s.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get(s.URL() + "/healthz"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
