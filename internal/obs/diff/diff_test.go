package diff

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"clperf/internal/obs"
	"clperf/internal/units"
)

// writeSnapshot records the given histogram samples and writes the
// registry snapshot JSON to a temp file.
func writeSnapshot(t *testing.T, name string, hists map[string][]float64) string {
	t.Helper()
	g := obs.NewRegistry()
	for h, vals := range hists {
		for _, v := range vals {
			g.Observe(h, v)
		}
	}
	g.Add("runner.experiments", 2)
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(f).Encode(g.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeTrace records spans on named tracks and writes the Chrome trace
// JSON to a temp file.
func writeTrace(t *testing.T, name string, spans map[string]units.Duration) string {
	t.Helper()
	rec := obs.NewRecorder()
	for key, dur := range spans {
		track, spanName, _ := strings.Cut(key, "/")
		id := rec.Record(obs.NoParent, obs.KindKernel, spanName, 0, dur)
		rec.SetTrack(id, track)
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Chrome(1, "clperf").WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAttributeSnapshots(t *testing.T) {
	oldPath := writeSnapshot(t, "old.json", map[string][]float64{
		"kernel.ns:matmul": {1000, 1000}, // sum 2000
		"kernel.ns:vadd":   {500},        // sum 500
		"kernel.ns:gone":   {100},        // disappears in new
		"runner.exp.ns":    {999999},     // excluded via -ignore
	})
	newPath := writeSnapshot(t, "new.json", map[string][]float64{
		"kernel.ns:matmul": {2000, 2000}, // +2000 (the regression)
		"kernel.ns:vadd":   {400},        // -100 (improved)
		"kernel.ns:fresh":  {300},        // appears
		"runner.exp.ns":    {1},
	})

	res, err := AttributeFiles(oldPath, newPath, regexp.MustCompile(`^runner\.`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Basis != "histogram sums" {
		t.Fatalf("basis = %q", res.Basis)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d (%+v), want 4", len(res.Rows), res.Rows)
	}
	// Sorted by DeltaNs descending: matmul +2000, fresh +300, gone -100, vadd -100.
	if res.Rows[0].Key != "kernel.ns:matmul" || res.Rows[0].DeltaNs != 2000 {
		t.Fatalf("top row = %+v", res.Rows[0])
	}
	if res.Rows[1].Key != "kernel.ns:fresh" || !math.IsInf(res.Rows[1].DeltaPct, 1) {
		t.Fatalf("appeared row = %+v", res.Rows[1])
	}
	// gone and vadd tie at -100; key order breaks the tie.
	if res.Rows[2].Key != "kernel.ns:gone" || res.Rows[3].Key != "kernel.ns:vadd" {
		t.Fatalf("tie-break order = %q, %q", res.Rows[2].Key, res.Rows[3].Key)
	}
	// Shares: matmul 2000/2300, fresh 300/2300, improvements 0.
	if got := res.Rows[0].Share; math.Abs(got-2000.0/2300) > 1e-12 {
		t.Fatalf("matmul share = %g", got)
	}
	if res.Rows[2].Share != 0 || res.Rows[3].Share != 0 {
		t.Fatal("improved rows must carry zero share")
	}
	// Totals: old 2600, new 4700, delta +2100.
	if res.OldTotalNs != 2600 || res.NewTotalNs != 4700 || res.DeltaNs != 2100 {
		t.Fatalf("totals = %+v", res)
	}
	if !res.Exceeds(20) {
		t.Fatalf("gate must trip at +%.1f%% > 20%%", res.DeltaPct)
	}
	if res.Exceeds(100) {
		t.Fatalf("gate must hold at +%.1f%% <= 100%%", res.DeltaPct)
	}

	var b strings.Builder
	res.WriteText(&b, 2)
	out := b.String()
	for _, want := range []string{"kernel.ns:matmul", "total", "2 more keys elided"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "kernel.ns:vadd") {
		t.Fatalf("-top 2 must elide the tail:\n%s", out)
	}

	// Deterministic: attributing the same files twice renders identically.
	res2, err := AttributeFiles(oldPath, newPath, regexp.MustCompile(`^runner\.`))
	if err != nil {
		t.Fatal(err)
	}
	var b2 strings.Builder
	res2.WriteText(&b2, 2)
	if b2.String() != out {
		t.Fatal("attribution not deterministic")
	}
}

func TestAttributeTraces(t *testing.T) {
	oldPath := writeTrace(t, "old.json", map[string]units.Duration{
		"fig7/matmul": 4 * units.Millisecond,
		"fig7/vadd":   1 * units.Millisecond,
	})
	newPath := writeTrace(t, "new.json", map[string]units.Duration{
		"fig7/matmul": 6 * units.Millisecond,
		"fig7/vadd":   1 * units.Millisecond,
	})
	res, err := AttributeFiles(oldPath, newPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Basis != "spans" {
		t.Fatalf("basis = %q", res.Basis)
	}
	if res.Rows[0].Key != "fig7/matmul" {
		t.Fatalf("top row = %+v", res.Rows[0])
	}
	// 4ms -> 6ms on a 5ms total: +40% total, all of it matmul's.
	if math.Abs(res.DeltaPct-40) > 1e-9 || math.Abs(res.Rows[0].Share-1) > 1e-12 {
		t.Fatalf("delta%%=%g share=%g", res.DeltaPct, res.Rows[0].Share)
	}
}

func TestAttributeRejectsMixedKinds(t *testing.T) {
	snap := writeSnapshot(t, "s.json", map[string][]float64{"h": {1}})
	tr := writeTrace(t, "t.json", map[string]units.Duration{"a/b": units.Microsecond})
	if _, err := AttributeFiles(snap, tr, nil); err == nil {
		t.Fatal("mixed snapshot/trace attribution must error")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadFileSniffsKinds(t *testing.T) {
	snap := writeSnapshot(t, "s.json", map[string][]float64{"h": {1, 2}})
	r, err := LoadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != "snapshot" || r.Hists["h"].Count != 2 || r.Counters["runner.experiments"] != 2 {
		t.Fatalf("snapshot run = %+v", r)
	}
	tr := writeTrace(t, "t.json", map[string]units.Duration{"trk/sp": 3 * units.Microsecond})
	r, err = LoadFile(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != "trace" {
		t.Fatalf("kind = %q", r.Kind)
	}
	agg := r.Spans["trk/sp"]
	if agg.Count != 1 || math.Abs(agg.Ns-3000) > 1e-9 {
		t.Fatalf("span agg = %+v", agg)
	}
}

// TestAttributeIdenticalRuns pins the old == new degenerate case the
// share-of-regression guard exists for: a zero total delta must yield an
// all-zero, NaN-free table that renders identically on every call —
// cldiff and benchcompare -explain lean on this when two runs agree.
func TestAttributeIdenticalRuns(t *testing.T) {
	hists := map[string][]float64{
		"kernel.ns:matmul": {1000, 2500},
		"kernel.ns:vadd":   {500},
	}
	oldPath := writeSnapshot(t, "old.json", hists)
	newPath := writeSnapshot(t, "new.json", hists)

	res, err := AttributeFiles(oldPath, newPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaNs != 0 || res.DeltaPct != 0 || res.RegressionNs != 0 {
		t.Fatalf("identical runs: delta=%g pct=%g regression=%g, want all 0",
			res.DeltaNs, res.DeltaPct, res.RegressionNs)
	}
	for _, row := range res.Rows {
		if row.DeltaNs != 0 || row.Share != 0 {
			t.Fatalf("row %s: delta=%g share=%g, want 0", row.Key, row.DeltaNs, row.Share)
		}
		if math.IsNaN(row.DeltaPct) || math.IsInf(row.DeltaPct, 0) {
			t.Fatalf("row %s: DeltaPct = %g", row.Key, row.DeltaPct)
		}
	}
	var a, b strings.Builder
	res.WriteText(&a, 0)
	res.WriteText(&b, 0)
	if a.String() != b.String() {
		t.Fatal("identical-run table not deterministic across renders")
	}
	if strings.Contains(a.String(), "NaN") {
		t.Fatalf("table contains NaN:\n%s", a.String())
	}
	if res.Exceeds(0) {
		t.Fatal("zero delta must not exceed a 0%% gate")
	}
}

// TestAttributeZeroBaseline pins the other degenerate denominators: keys
// (and a whole run) whose old sums are zero must not divide to NaN or
// flip signs — only a genuinely positive baseline yields a percentage.
func TestAttributeZeroBaseline(t *testing.T) {
	oldPath := writeSnapshot(t, "old.json", map[string][]float64{
		"kernel.ns:a": {0},
		"kernel.ns:b": {0},
	})
	newPath := writeSnapshot(t, "new.json", map[string][]float64{
		"kernel.ns:a": {0},
		"kernel.ns:b": {100},
	})
	res, err := AttributeFiles(oldPath, newPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if math.IsNaN(row.DeltaPct) {
			t.Fatalf("row %s: DeltaPct NaN", row.Key)
		}
	}
	if !math.IsInf(res.DeltaPct, 1) {
		t.Fatalf("zero->positive total should report +Inf (rendered 'new'), got %g", res.DeltaPct)
	}
	var sb strings.Builder
	res.WriteText(&sb, 0)
	if strings.Contains(sb.String(), "NaN") {
		t.Fatalf("table contains NaN:\n%s", sb.String())
	}
}
