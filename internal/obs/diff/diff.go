// Package diff implements run-to-run regression attribution over
// recorded observability artifacts: it loads two runs (metrics
// snapshot JSON from /snapshot or `-snapshot-json`, or Chrome
// trace-event JSON from /trace or `-trace-json`), aligns spans by
// track/name path and metrics by key, and ranks where the time went.
// The paper's contribution is attributing performance to causes
// (vectorization, workgroup sizing, cache behavior); diff gives every
// future perf PR the same discipline — a regression is attributed to
// the spans or histograms that slowed down, not eyeballed from suite
// wall time. cmd/cldiff and `benchcompare -explain` are the CLI
// surfaces.
package diff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"

	"clperf/internal/obs"
	"clperf/internal/units"
)

// Run is one recorded run loaded from an observability artifact.
type Run struct {
	Path string
	// Kind is "snapshot" (obs.Snapshot JSON) or "trace" (Chrome
	// trace-event JSON).
	Kind string
	// Spans aggregates completed trace slices by "track/name" key:
	// total nanoseconds and slice count (trace runs only).
	Spans map[string]SpanAgg
	// Hists, Counters and Gauges index the snapshot by metric name
	// (snapshot runs only).
	Hists    map[string]obs.HistStat
	Counters map[string]float64
	Gauges   map[string]float64
}

// SpanAgg is the per-key span aggregate of a trace run.
type SpanAgg struct {
	Ns    float64
	Count int
}

// LoadFile reads an observability artifact, sniffing the format from
// its top-level JSON keys.
func LoadFile(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: not a JSON object: %w", path, err)
	}
	if _, ok := probe["traceEvents"]; ok {
		return loadTrace(path, data)
	}
	return loadSnapshot(path, data)
}

func loadSnapshot(path string, data []byte) (*Run, error) {
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: bad snapshot JSON: %w", path, err)
	}
	r := &Run{
		Path: path, Kind: "snapshot",
		Hists:    make(map[string]obs.HistStat, len(snap.Hists)),
		Counters: make(map[string]float64, len(snap.Counters)),
		Gauges:   make(map[string]float64, len(snap.Gauges)),
	}
	for _, h := range snap.Hists {
		r.Hists[h.Name] = h
	}
	for _, m := range snap.Counters {
		r.Counters[m.Name] = m.Value
	}
	for _, m := range snap.Gauges {
		r.Gauges[m.Name] = m.Value
	}
	if len(r.Hists)+len(r.Counters)+len(r.Gauges) == 0 {
		return nil, fmt.Errorf("%s: snapshot carries no metrics", path)
	}
	return r, nil
}

// loadTrace aggregates the trace's complete ("X") events by track/name
// path. Track resolution mirrors the Chrome format: thread_name
// metadata events label each (pid, tid) row.
func loadTrace(path string, data []byte) (*Run, error) {
	var ct obs.ChromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		return nil, fmt.Errorf("%s: bad Chrome trace JSON: %w", path, err)
	}
	type tidKey struct{ pid, tid int }
	tracks := map[tidKey]string{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			tracks[tidKey{ev.PID, ev.TID}] = ev.Args["name"]
		}
	}
	r := &Run{Path: path, Kind: "trace", Spans: map[string]SpanAgg{}}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		track := tracks[tidKey{ev.PID, ev.TID}]
		if track == "" {
			track = fmt.Sprintf("pid%d.tid%d", ev.PID, ev.TID)
		}
		key := track + "/" + ev.Name
		agg := r.Spans[key]
		agg.Ns += ev.Dur * 1e3 // trace durations are microseconds
		agg.Count++
		r.Spans[key] = agg
	}
	if len(r.Spans) == 0 {
		return nil, fmt.Errorf("%s: trace carries no complete spans", path)
	}
	return r, nil
}

// Row is one aligned key in an attribution result, with its
// contribution to the total regression.
type Row struct {
	Key          string
	OldNs, NewNs float64
	DeltaNs      float64
	// DeltaPct is the per-key relative change (+Inf for keys absent
	// from the old run).
	DeltaPct float64
	// Share is this key's fraction of the summed positive regression
	// (0 for keys that improved).
	Share float64
}

// Result is a full attribution: per-key rows sorted by regression
// (largest Δns first, key as tiebreak) plus run-level totals.
type Result struct {
	// Basis names what was aligned: "spans" (trace runs) or
	// "histogram sums" (snapshot runs).
	Basis string
	Rows  []Row
	// Totals over every aligned key.
	OldTotalNs, NewTotalNs float64
	DeltaNs                float64
	// DeltaPct is the total relative change (what -gate checks).
	DeltaPct float64
	// RegressionNs is the sum of positive per-key deltas — the
	// denominator of each row's Share.
	RegressionNs float64
}

// Exceeds reports whether the total regression crossed gatePct percent
// — the CI gate cldiff exits non-zero on.
func (r *Result) Exceeds(gatePct float64) bool {
	return r.DeltaPct > gatePct
}

// entries flattens a run onto its attribution basis.
func entries(r *Run) (basis string, vals map[string]float64, err error) {
	switch r.Kind {
	case "trace":
		vals = make(map[string]float64, len(r.Spans))
		for k, a := range r.Spans {
			vals[k] = a.Ns
		}
		return "spans", vals, nil
	case "snapshot":
		vals = make(map[string]float64, len(r.Hists))
		for k, h := range r.Hists {
			vals[k] = h.Sum
		}
		return "histogram sums", vals, nil
	}
	return "", nil, fmt.Errorf("%s: unknown run kind %q", r.Path, r.Kind)
}

// Attribute aligns two runs and attributes the total change across
// keys. Both runs must be the same kind (span paths and metric keys
// are not comparable across formats). Keys present in only one run
// participate with the other side at 0, so added or removed work is
// attributed too. ignore, when non-nil, drops matching keys before
// alignment — e.g. `^runner\.` to exclude host-wall-clock metrics that
// vary run to run. The result is deterministic for given inputs.
func Attribute(old, new *Run, ignore *regexp.Regexp) (*Result, error) {
	oldBasis, oldVals, err := entries(old)
	if err != nil {
		return nil, err
	}
	newBasis, newVals, err := entries(new)
	if err != nil {
		return nil, err
	}
	if oldBasis != newBasis {
		return nil, fmt.Errorf("cannot align %s (%s) with %s (%s): record both runs with the same artifact type",
			old.Path, old.Kind, new.Path, new.Kind)
	}
	keys := map[string]bool{}
	for k := range oldVals {
		keys[k] = true
	}
	for k := range newVals {
		keys[k] = true
	}
	res := &Result{Basis: oldBasis}
	for k := range keys {
		if ignore != nil && ignore.MatchString(k) {
			continue
		}
		o, n := oldVals[k], newVals[k]
		row := Row{Key: k, OldNs: o, NewNs: n, DeltaNs: n - o}
		// Positive-only denominators: a zero or (pathological) negative
		// baseline would flip the sign of the percentage or divide to
		// ±Inf/NaN, so those rows report 0% (or "new" when the key only
		// exists in the new run) and let DeltaNs carry the story.
		switch {
		case o > 0:
			row.DeltaPct = 100 * (n - o) / o
		case o == 0 && n > 0:
			row.DeltaPct = math.Inf(1)
		}
		res.OldTotalNs += o
		res.NewTotalNs += n
		res.DeltaNs += row.DeltaNs
		if row.DeltaNs > 0 {
			res.RegressionNs += row.DeltaNs
		}
		res.Rows = append(res.Rows, row)
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("no aligned keys between %s and %s", old.Path, new.Path)
	}
	if res.OldTotalNs > 0 {
		res.DeltaPct = 100 * res.DeltaNs / res.OldTotalNs
	} else if res.NewTotalNs > 0 {
		res.DeltaPct = math.Inf(1)
	}
	// Share is only attributed when there is a positive regression to
	// apportion: with a zero or negative total delta (old == new, or an
	// improvement) every Share stays exactly 0 and the table renders
	// deterministically with no NaN from a 0/0 division.
	if res.RegressionNs > 0 {
		for i := range res.Rows {
			if d := res.Rows[i].DeltaNs; d > 0 {
				res.Rows[i].Share = d / res.RegressionNs
			}
		}
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		if res.Rows[i].DeltaNs != res.Rows[j].DeltaNs {
			return res.Rows[i].DeltaNs > res.Rows[j].DeltaNs
		}
		return res.Rows[i].Key < res.Rows[j].Key
	})
	return res, nil
}

// WriteText renders the attribution as an aligned, deterministic
// table: the top rows by regression, one total line, and — when rows
// were elided — an explicit count of what was dropped. top <= 0 prints
// every row.
func (r *Result) WriteText(w io.Writer, top int) {
	rows := r.Rows
	elided := 0
	if top > 0 && len(rows) > top {
		elided = len(rows) - top
		rows = rows[:top]
	}
	width := len("total")
	for _, row := range rows {
		if len(row.Key) > width {
			width = len(row.Key)
		}
	}
	fmt.Fprintf(w, "%-*s  %14s  %14s  %14s  %8s  %6s\n",
		width, "key ("+r.Basis+")", "old", "new", "delta", "delta%", "share")
	for _, row := range rows {
		fmt.Fprintf(w, "%-*s  %14s  %14s  %14s  %8s  %6s\n",
			width, row.Key,
			fmtNs(row.OldNs), fmtNs(row.NewNs), fmtDeltaNs(row.DeltaNs),
			fmtPct(row.DeltaPct), fmtShare(row.Share))
	}
	if elided > 0 {
		fmt.Fprintf(w, "%-*s  (%d more keys elided; rerun with -top 0 for all)\n", width, "...", elided)
	}
	fmt.Fprintf(w, "%-*s  %14s  %14s  %14s  %8s\n",
		width, "total", fmtNs(r.OldTotalNs), fmtNs(r.NewTotalNs),
		fmtDeltaNs(r.DeltaNs), fmtPct(r.DeltaPct))
}

func fmtNs(ns float64) string { return units.Duration(ns).String() }

func fmtDeltaNs(ns float64) string {
	if ns >= 0 {
		return "+" + units.Duration(ns).String()
	}
	return "-" + units.Duration(-ns).String()
}

func fmtPct(p float64) string {
	if math.IsInf(p, 1) {
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", p)
}

func fmtShare(s float64) string {
	if s == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*s)
}

// AttributeFiles is the one-call form: load both paths and attribute.
func AttributeFiles(oldPath, newPath string, ignore *regexp.Regexp) (*Result, error) {
	old, err := LoadFile(oldPath)
	if err != nil {
		return nil, err
	}
	new, err := LoadFile(newPath)
	if err != nil {
		return nil, err
	}
	return Attribute(old, new, ignore)
}
