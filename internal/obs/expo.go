package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements OpenMetrics/Prometheus text exposition for the
// registry, so any scrape-based collector can pull the same quantities
// the in-process reports print. Counters expose as `<name>_total`,
// gauges as `<name>`, and histograms as cumulative `<name>_bucket{le=…}`
// series plus `_sum`/`_count` — p50/p99 are derivable by any backend
// that understands classic histogram buckets (e.g. PromQL's
// histogram_quantile). The encoder is deterministic: snapshots are
// name-sorted and the bucket `le` bounds are the fixed log2 grid.

// ContentType is the HTTP Content-Type of the exposition written by
// WriteOpenMetrics.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// ExpoName sanitizes a registry metric name into a valid exposition
// metric name: characters outside [a-zA-Z0-9_:] become '_' and a
// leading digit gains a '_' prefix. The original name is preserved in
// the HELP line.
func ExpoName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func expoFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteOpenMetrics writes the snapshot as an OpenMetrics text
// exposition, terminated by the mandatory "# EOF" line. Distinct
// registry names that sanitize to the same exposition name are
// disambiguated with a numeric suffix so the output never carries
// duplicate metric families.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	used := map[string]int{}
	unique := func(name string) string {
		en := ExpoName(name)
		used[en]++
		if n := used[en]; n > 1 {
			en = fmt.Sprintf("%s_dup%d", en, n-1)
		}
		return en
	}
	for _, m := range s.Counters {
		en := unique(m.Name)
		fmt.Fprintf(bw, "# HELP %s clperf counter %q\n", en, m.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", en)
		fmt.Fprintf(bw, "%s_total %s\n", en, expoFloat(m.Value))
	}
	for _, m := range s.Gauges {
		en := unique(m.Name)
		fmt.Fprintf(bw, "# HELP %s clperf gauge %q\n", en, m.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", en)
		fmt.Fprintf(bw, "%s %s\n", en, expoFloat(m.Value))
	}
	for _, h := range s.Hists {
		en := unique(h.Name)
		fmt.Fprintf(bw, "# HELP %s clperf histogram %q\n", en, h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", en)
		for _, b := range h.Buckets {
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", en, expoFloat(b.LE), b.Count)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", en, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", en, expoFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", en, h.Count)
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// ExpoFamily is one parsed metric family from an exposition.
type ExpoFamily struct {
	Name    string
	Type    string // "counter", "gauge", "histogram"
	Samples int
}

// ParseExposition parses and validates an OpenMetrics text exposition
// of the subset WriteOpenMetrics emits, returning the metric families
// in document order. It enforces the invariants a scraper relies on:
// every sample belongs to a declared family, family names are unique,
// histogram buckets are cumulative (monotonically non-decreasing in le
// order) and end with a +Inf bucket equal to the _count sample, and the
// document terminates with "# EOF".
func ParseExposition(r io.Reader) ([]ExpoFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var fams []ExpoFamily
	types := map[string]string{}
	type histState struct {
		haveBucket bool
		lastLE     float64
		lastCount  uint64
		haveInf    bool
		infCount   uint64
		count      uint64
		haveCount  bool
	}
	hists := map[string]*histState{}
	cur := -1 // index into fams of the family being filled
	eof := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if eof {
			return nil, fmt.Errorf("exposition line %d: content after # EOF", lineNo)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "EOF" {
				eof = true
				continue
			}
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				if _, dup := types[name]; dup {
					return nil, fmt.Errorf("exposition line %d: duplicate family %s", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram":
				default:
					return nil, fmt.Errorf("exposition line %d: unknown type %q", lineNo, typ)
				}
				types[name] = typ
				fams = append(fams, ExpoFamily{Name: name, Type: typ})
				cur = len(fams) - 1
				if typ == "histogram" {
					hists[name] = &histState{}
				}
			}
			continue // HELP and other comments
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("exposition line %d: malformed sample %q", lineNo, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		name, labels := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return nil, fmt.Errorf("exposition line %d: unterminated labels in %q", lineNo, series)
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("exposition line %d: bad value %q: %v", lineNo, valStr, err)
		}
		fam, suffix := familyOf(name, types)
		if fam == "" {
			return nil, fmt.Errorf("exposition line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if cur < 0 || fams[cur].Name != fam {
			return nil, fmt.Errorf("exposition line %d: sample %q outside its family block", lineNo, name)
		}
		fams[cur].Samples++
		typ := types[fam]
		switch typ {
		case "counter":
			if suffix != "_total" {
				return nil, fmt.Errorf("exposition line %d: counter sample %q lacks _total", lineNo, name)
			}
			if val < 0 {
				return nil, fmt.Errorf("exposition line %d: negative counter %q", lineNo, name)
			}
		case "histogram":
			hs := hists[fam]
			switch suffix {
			case "_bucket":
				le, err := labelValue(labels, "le")
				if err != nil {
					return nil, fmt.Errorf("exposition line %d: %v", lineNo, err)
				}
				c := uint64(val)
				if le == "+Inf" {
					hs.haveInf, hs.infCount = true, c
					break
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("exposition line %d: bad le %q", lineNo, le)
				}
				if hs.haveInf {
					return nil, fmt.Errorf("exposition line %d: bucket after +Inf in %s", lineNo, fam)
				}
				if hs.haveBucket && bound <= hs.lastLE {
					return nil, fmt.Errorf("exposition line %d: bucket bounds not increasing in %s", lineNo, fam)
				}
				if c < hs.lastCount {
					return nil, fmt.Errorf("exposition line %d: bucket counts not cumulative in %s", lineNo, fam)
				}
				hs.haveBucket, hs.lastLE, hs.lastCount = true, bound, c
			case "_sum":
			case "_count":
				hs.haveCount, hs.count = true, uint64(val)
			default:
				return nil, fmt.Errorf("exposition line %d: unexpected histogram sample %q", lineNo, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !eof {
		return nil, fmt.Errorf("exposition missing # EOF terminator")
	}
	for name, hs := range hists {
		if !hs.haveInf || !hs.haveCount {
			return nil, fmt.Errorf("histogram %s missing +Inf bucket or _count", name)
		}
		if hs.infCount != hs.count {
			return nil, fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", name, hs.infCount, hs.count)
		}
		if hs.lastCount > hs.infCount {
			return nil, fmt.Errorf("histogram %s: finite bucket exceeds +Inf", name)
		}
	}
	return fams, nil
}

// ValidateExposition checks r against the invariants ParseExposition
// enforces and additionally requires at least one metric family.
func ValidateExposition(r io.Reader) error {
	fams, err := ParseExposition(r)
	if err != nil {
		return err
	}
	if len(fams) == 0 {
		return fmt.Errorf("exposition carries no metric families")
	}
	return nil
}

// familyOf resolves a sample name to its declared family: exact match
// first (gauges), then the histogram/counter suffixes.
func familyOf(name string, types map[string]string) (fam, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if _, declared := types[base]; declared {
				return base, suf
			}
		}
	}
	return "", ""
}

// labelValue extracts the named label from a label body like
// `le="128",job="x"`. Only the quoted-value form WriteOpenMetrics emits
// is supported.
func labelValue(labels, key string) (string, error) {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok || k != key {
			continue
		}
		unq, err := strconv.Unquote(v)
		if err != nil {
			return "", fmt.Errorf("label %s has unquotable value %s", key, v)
		}
		return unq, nil
	}
	return "", fmt.Errorf("label %q missing in {%s}", key, labels)
}
