package obs

import (
	"math"
	"sort"
	"sync"
)

// Registry is a process-local metrics registry: counters (monotonic
// sums), gauges (last value wins) and histograms (log2-bucketed
// distributions, used for per-kernel time). A nil *Registry is a valid
// no-op sink.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		hists:    map[string]*histogram{},
	}
}

// Add increments the named counter by delta.
func (g *Registry) Add(name string, delta float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.counters[name] += delta
	g.mu.Unlock()
}

// Set sets the named gauge.
func (g *Registry) Set(name string, v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.gauges[name] = v
	g.mu.Unlock()
}

// Observe records one sample into the named histogram.
func (g *Registry) Observe(name string, v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	h := g.hists[name]
	if h == nil {
		h = &histogram{min: math.Inf(1), max: math.Inf(-1)}
		g.hists[name] = h
	}
	h.observe(v)
	g.mu.Unlock()
}

// Counter returns the counter's current value (0 when absent).
func (g *Registry) Counter(name string) float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.counters[name]
}

// Gauge returns the gauge's current value (0 when absent).
func (g *Registry) Gauge(name string) float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gauges[name]
}

// Merge folds src's metrics into g: counters add, histograms combine
// bucket-wise (counts, sums and exact min/max all survive), and gauges
// take src's value — last merge wins, so callers that need determinism
// must merge in a fixed order. Both registries stay usable; src is not
// modified. Nil src or g is a no-op.
func (g *Registry) Merge(src *Registry) {
	if g == nil || src == nil || g == src {
		return
	}
	// Copy src under its own lock first so the two locks are never held
	// together (no ordering to get wrong).
	src.mu.Lock()
	counters := make(map[string]float64, len(src.counters))
	for n, v := range src.counters {
		counters[n] = v
	}
	gauges := make(map[string]float64, len(src.gauges))
	for n, v := range src.gauges {
		gauges[n] = v
	}
	hists := make(map[string]*histogram, len(src.hists))
	for n, h := range src.hists {
		c := *h
		hists[n] = &c
	}
	src.mu.Unlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	for n, v := range counters {
		g.counters[n] += v
	}
	for n, v := range gauges {
		g.gauges[n] = v
	}
	for n, h := range hists {
		dst := g.hists[n]
		if dst == nil {
			g.hists[n] = h
			continue
		}
		dst.merge(h)
	}
}

// Reset clears every metric.
func (g *Registry) Reset() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.counters = map[string]float64{}
	g.gauges = map[string]float64{}
	g.hists = map[string]*histogram{}
	g.mu.Unlock()
}

// numBuckets covers [1ns, 2^62ns) in powers of two; values below 1
// land in bucket 0.
const numBuckets = 63

// histogram is a log2-bucketed distribution. Buckets hold sample
// counts for [2^i, 2^(i+1)); exact sum/min/max ride along so means are
// not quantized.
type histogram struct {
	count    uint64
	sum      float64
	min, max float64
	buckets  [numBuckets]uint64
}

func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Floor(math.Log2(v)))
	if b < 0 {
		b = 0
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

func (h *histogram) observe(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

// merge folds other into h bucket-wise.
func (h *histogram) merge(other *histogram) {
	if other.count == 0 {
		return
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
}

// bucketBounds returns bucket i's value range. Bucket 0 holds [0, 2)
// (sub-1 values are clamped in), bucket i>0 holds [2^i, 2^(i+1)).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 2
	}
	return math.Exp2(float64(i)), math.Exp2(float64(i + 1))
}

// quantile estimates the q-quantile from the log2 buckets: it finds the
// bucket where the cumulative count reaches ceil(q*count) and linearly
// interpolates the rank position inside that bucket's value range,
// clamping to the exact recorded min/max. The estimate depends only on
// (buckets, count, min, max), all of which merge losslessly, so the
// quantile of a merged histogram equals the quantile of the
// concatenated sample stream — deterministic regardless of merge or
// observation order.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := bucketBounds(i)
			// Rank position inside the bucket, in (0, 1].
			pos := float64(target-cum) / float64(n)
			est := lo + pos*(hi-lo)
			return math.Min(math.Max(est, h.min), h.max)
		}
		cum += n
	}
	return h.max
}

// Quantile estimates the q-quantile (q in [0,1]) of the named
// histogram from its log2 buckets; see histogram.quantile for the
// estimator's determinism contract. Returns 0 for an absent histogram
// or a nil registry.
func (g *Registry) Quantile(name string, q float64) float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	h := g.hists[name]
	if h == nil {
		return 0
	}
	return h.quantile(q)
}

// Metric is one named scalar in a snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Bucket is one cumulative histogram bucket in a snapshot: Count
// samples were <= LE (exposition-style "le" upper bound).
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistStat summarizes one histogram in a snapshot.
type HistStat struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets are the cumulative non-empty log2 buckets in increasing LE
	// order; the final implicit +Inf bucket equals Count.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of the registry, sorted by name.
type Snapshot struct {
	Counters []Metric   `json:"counters,omitempty"`
	Gauges   []Metric   `json:"gauges,omitempty"`
	Hists    []HistStat `json:"hists,omitempty"`
}

// Snapshot captures the registry. Safe on a nil registry (empty
// snapshot).
func (g *Registry) Snapshot() Snapshot {
	var s Snapshot
	if g == nil {
		return s
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for n, v := range g.counters {
		s.Counters = append(s.Counters, Metric{Name: n, Value: v})
	}
	for n, v := range g.gauges {
		s.Gauges = append(s.Gauges, Metric{Name: n, Value: v})
	}
	for n, h := range g.hists {
		hs := HistStat{Name: n, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		if h.count > 0 {
			hs.Mean = h.sum / float64(h.count)
			hs.P50 = h.quantile(0.50)
			hs.P90 = h.quantile(0.90)
			hs.P95 = h.quantile(0.95)
			hs.P99 = h.quantile(0.99)
			var cum uint64
			for i, n := range h.buckets {
				if n == 0 {
					continue
				}
				cum += n
				_, hi := bucketBounds(i)
				hs.Buckets = append(hs.Buckets, Bucket{LE: hi, Count: cum})
			}
		} else {
			hs.Min, hs.Max = 0, 0
		}
		s.Hists = append(s.Hists, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}
