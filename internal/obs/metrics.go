package obs

import (
	"math"
	"sort"
	"sync"
)

// Registry is a process-local metrics registry: counters (monotonic
// sums), gauges (last value wins) and histograms (log2-bucketed
// distributions, used for per-kernel time). A nil *Registry is a valid
// no-op sink.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		hists:    map[string]*histogram{},
	}
}

// Add increments the named counter by delta.
func (g *Registry) Add(name string, delta float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.counters[name] += delta
	g.mu.Unlock()
}

// Set sets the named gauge.
func (g *Registry) Set(name string, v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.gauges[name] = v
	g.mu.Unlock()
}

// Observe records one sample into the named histogram.
func (g *Registry) Observe(name string, v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	h := g.hists[name]
	if h == nil {
		h = &histogram{min: math.Inf(1), max: math.Inf(-1)}
		g.hists[name] = h
	}
	h.observe(v)
	g.mu.Unlock()
}

// Counter returns the counter's current value (0 when absent).
func (g *Registry) Counter(name string) float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.counters[name]
}

// Gauge returns the gauge's current value (0 when absent).
func (g *Registry) Gauge(name string) float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gauges[name]
}

// Merge folds src's metrics into g: counters add, histograms combine
// bucket-wise (counts, sums and exact min/max all survive), and gauges
// take src's value — last merge wins, so callers that need determinism
// must merge in a fixed order. Both registries stay usable; src is not
// modified. Nil src or g is a no-op.
func (g *Registry) Merge(src *Registry) {
	if g == nil || src == nil || g == src {
		return
	}
	// Copy src under its own lock first so the two locks are never held
	// together (no ordering to get wrong).
	src.mu.Lock()
	counters := make(map[string]float64, len(src.counters))
	for n, v := range src.counters {
		counters[n] = v
	}
	gauges := make(map[string]float64, len(src.gauges))
	for n, v := range src.gauges {
		gauges[n] = v
	}
	hists := make(map[string]*histogram, len(src.hists))
	for n, h := range src.hists {
		c := *h
		hists[n] = &c
	}
	src.mu.Unlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	for n, v := range counters {
		g.counters[n] += v
	}
	for n, v := range gauges {
		g.gauges[n] = v
	}
	for n, h := range hists {
		dst := g.hists[n]
		if dst == nil {
			g.hists[n] = h
			continue
		}
		dst.merge(h)
	}
}

// Reset clears every metric.
func (g *Registry) Reset() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.counters = map[string]float64{}
	g.gauges = map[string]float64{}
	g.hists = map[string]*histogram{}
	g.mu.Unlock()
}

// numBuckets covers [1ns, 2^62ns) in powers of two; values below 1
// land in bucket 0.
const numBuckets = 63

// histogram is a log2-bucketed distribution. Buckets hold sample
// counts for [2^i, 2^(i+1)); exact sum/min/max ride along so means are
// not quantized.
type histogram struct {
	count    uint64
	sum      float64
	min, max float64
	buckets  [numBuckets]uint64
}

func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Floor(math.Log2(v)))
	if b < 0 {
		b = 0
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

func (h *histogram) observe(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

// merge folds other into h bucket-wise.
func (h *histogram) merge(other *histogram) {
	if other.count == 0 {
		return
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
}

// quantile returns the upper bound of the bucket where the cumulative
// count first reaches q*count — an upper estimate quantized to powers
// of two, clamped to the exact max.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			return math.Min(math.Exp2(float64(i+1)), h.max)
		}
	}
	return h.max
}

// Metric is one named scalar in a snapshot.
type Metric struct {
	Name  string
	Value float64
}

// HistStat summarizes one histogram in a snapshot.
type HistStat struct {
	Name  string
	Count uint64
	Sum   float64
	Min   float64
	Max   float64
	Mean  float64
	P50   float64
	P95   float64
}

// Snapshot is a point-in-time copy of the registry, sorted by name.
type Snapshot struct {
	Counters []Metric
	Gauges   []Metric
	Hists    []HistStat
}

// Snapshot captures the registry. Safe on a nil registry (empty
// snapshot).
func (g *Registry) Snapshot() Snapshot {
	var s Snapshot
	if g == nil {
		return s
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for n, v := range g.counters {
		s.Counters = append(s.Counters, Metric{Name: n, Value: v})
	}
	for n, v := range g.gauges {
		s.Gauges = append(s.Gauges, Metric{Name: n, Value: v})
	}
	for n, h := range g.hists {
		hs := HistStat{Name: n, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		if h.count > 0 {
			hs.Mean = h.sum / float64(h.count)
			hs.P50 = h.quantile(0.50)
			hs.P95 = h.quantile(0.95)
		} else {
			hs.Min, hs.Max = 0, 0
		}
		s.Hists = append(s.Hists, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}
