package obs

import (
	"reflect"
	"testing"

	"clperf/internal/units"
)

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Add("c", 2)
	b.Add("c", 3)
	b.Add("only.b", 1)
	a.Set("g", 1)
	b.Set("g", 9)
	for _, v := range []float64{1, 100} {
		a.Observe("h", v)
	}
	for _, v := range []float64{50, 7000} {
		b.Observe("h", v)
	}
	b.Observe("h.only.b", 5)

	a.Merge(b)
	if got := a.Counter("c"); got != 5 {
		t.Errorf("merged counter = %v, want 5", got)
	}
	if got := a.Counter("only.b"); got != 1 {
		t.Errorf("src-only counter = %v, want 1", got)
	}
	if got := a.Gauge("g"); got != 9 {
		t.Errorf("merged gauge = %v, want src value 9", got)
	}
	snap := a.Snapshot()
	var h *HistStat
	for i := range snap.Hists {
		if snap.Hists[i].Name == "h" {
			h = &snap.Hists[i]
		}
	}
	if h == nil {
		t.Fatal("merged histogram missing")
	}
	if h.Count != 4 || h.Sum != 7151 || h.Min != 1 || h.Max != 7000 {
		t.Errorf("merged hist = %+v", h)
	}
	// src is untouched.
	if got := b.Counter("c"); got != 3 {
		t.Errorf("merge mutated src counter: %v", got)
	}
	// Merging into a fresh registry reproduces src exactly.
	c := NewRegistry()
	c.Merge(b)
	if !reflect.DeepEqual(c.Snapshot(), b.Snapshot()) {
		t.Error("merge into empty registry is not a faithful copy")
	}
	// Nil endpoints are no-ops.
	var nilReg *Registry
	nilReg.Merge(b)
	a.Merge(nil)
	a.Merge(a)
}

func TestRecorderMerge(t *testing.T) {
	dst := NewRecorder()
	root := dst.Record(NoParent, KindCommand, "pre", 0, units.Microsecond)
	dst.SetTrack(root, "queue")

	src := NewRecorder()
	s0 := src.Record(NoParent, KindKernel, "launch", 0, 2*units.Microsecond)
	src.SetTrack(s0, "cpu")
	src.Annotate(s0, "k", "v")
	src.Record(s0, KindPhase, "compute", 0, units.Microsecond)
	bare := src.Record(NoParent, KindRegion, "bare", 0, units.Microsecond)
	src.Registry().Add("n", 1)

	dst.Merge(src, "fig1")
	spans := dst.Spans()
	if len(spans) != 4 {
		t.Fatalf("merged span count = %d, want 4", len(spans))
	}
	got := spans[1]
	if got.ID != 1 || got.Parent != NoParent || got.Track != "fig1/cpu" {
		t.Errorf("remapped root = %+v", got)
	}
	if child := spans[2]; child.Parent != got.ID {
		t.Errorf("child parent = %d, want %d", child.Parent, got.ID)
	}
	// A trackless root gets the namespace's main track so merged suites
	// never share an export track.
	if b := spans[3]; b.Track != "fig1/main" {
		t.Errorf("bare root track = %q, want fig1/main", b.Track)
	}
	if dst.Registry().Counter("n") != 1 {
		t.Error("metrics did not merge")
	}
	// Annotations are deep-copied: mutating src afterwards must not leak.
	src.Annotate(s0, "k2", "v2")
	if got := dst.Spans()[1]; len(got.Attrs) != 1 {
		t.Errorf("attrs aliased across merge: %+v", got.Attrs)
	}
	// src keeps its own ids.
	if ss := src.Spans(); ss[0].ID != 0 || ss[2].ID != bare {
		t.Errorf("merge mutated src spans: %+v", ss)
	}
}
