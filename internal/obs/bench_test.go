package obs

// Benchmarks for the recording hot path: observability must stay O(ns)
// per event and allocation-bounded so it never skews the simulated
// numbers. Run with
//
//	go test ./internal/obs -bench=. -benchmem
//
// Span recording amortizes to ~0 allocs/op (slice growth only) and a
// metric update is a map write under a mutex.

import (
	"testing"

	"clperf/internal/units"
)

func BenchmarkRecordSpan(b *testing.B) {
	rec := NewRecorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(NoParent, KindCommand, "clEnqueueNDRangeKernel:square",
			units.Duration(i), units.Duration(i+1))
		if rec.Len() >= 1<<16 {
			b.StopTimer()
			rec.Reset() // keeps capacity: steady-state appends stay allocation-free
			b.StartTimer()
		}
	}
}

func BenchmarkRecordNestedSpan(b *testing.B) {
	rec := NewRecorder()
	root := rec.Record(NoParent, KindKernel, "launch", 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(root, KindPhase, "compute", units.Duration(i), units.Duration(i+1))
		if rec.Len() >= 1<<16 {
			b.StopTimer()
			rec.Reset()
			root = rec.Record(NoParent, KindKernel, "launch", 0, 1)
			b.StartTimer()
		}
	}
}

func BenchmarkNilRecorder(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record(NoParent, KindCommand, "cmd", 0, 1)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	g := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add("cl.bytes.total", 64)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	g := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Observe("kernel.ns:square", float64(i%4096+1))
	}
}
