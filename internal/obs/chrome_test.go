package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestChromeExportUnmarshals(t *testing.T) {
	rec := NewRecorder()
	root := rec.Record(NoParent, KindCommand, "clEnqueueWriteBuffer", 0, 1000)
	rec.SetTrack(root, "queue")
	rec.Annotate(root, "bytes", "4096")
	k := rec.Record(NoParent, KindKernel, "clEnqueueNDRangeKernel:square", 1000, 5000)
	rec.SetTrack(k, "queue")
	rec.Record(k, KindPhase, "compute", 1000, 4500)

	var b bytes.Buffer
	if err := rec.Chrome(1, "clperf").WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &parsed); err != nil {
		t.Fatalf("emitted JSON does not unmarshal: %v", err)
	}
	if parsed.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}

	var slices, meta int
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur < 0 || ev.TS < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if slices != 3 {
		t.Fatalf("slices = %d, want 3", slices)
	}
	if meta < 2 { // process_name + at least the queue track
		t.Fatalf("metadata events = %d, want >= 2", meta)
	}

	// The phase child inherits the queue track: same tid as its parent.
	byName := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "X" {
			byName[ev.Name] = ev.TID
		}
	}
	if byName["compute"] != byName["clEnqueueNDRangeKernel:square"] {
		t.Fatalf("child on different track: %v", byName)
	}
}

func TestChromeTidStablePerTrack(t *testing.T) {
	ct := NewChromeTrace()
	a := ct.Tid(1, "worker-0")
	b := ct.Tid(1, "worker-1")
	if a == b {
		t.Fatal("distinct tracks share a tid")
	}
	if again := ct.Tid(1, "worker-0"); again != a {
		t.Fatalf("tid not stable: %d != %d", again, a)
	}
	if other := ct.Tid(2, "worker-0"); other == a {
		t.Fatal("same track name under another pid must get its own tid")
	}
}
